// Dashboard (§5.1): compute the BirdBrain daily summary — sessions, users,
// client / country / duration drill-downs — entirely from the compact
// session sequences, plus the §3.2 automatic rollup metrics from the raw
// logs.
//
// Run: go run ./examples/dashboard
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"unilog/internal/analytics"
	"unilog/internal/birdbrain"
	"unilog/internal/dataflow"
	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/session"
	"unilog/internal/workload"
)

func main() {
	day := time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)
	cfg := workload.DefaultConfig(day)
	cfg.Users = 250
	evs, _ := workload.New(cfg).Generate()
	fs := hdfs.New(0)
	if err := workload.WriteWarehouse(fs, evs); err != nil {
		log.Fatal(err)
	}
	if _, _, _, err := session.BuildDay(fs, day, 0); err != nil {
		log.Fatal(err)
	}

	// The dashboard proper: one cheap scan of the session store.
	summary, err := birdbrain.Build(fs, day, 8)
	if err != nil {
		log.Fatal(err)
	}
	summary.Render(os.Stdout)

	// The §3.2 automatic aggregates: top-level metrics at the coarsest
	// rollup, (client, *, *, *, *, action), split by login status.
	job := dataflow.NewJob("rollups", fs)
	rollups, err := analytics.Rollups(job, day)
	if err != nil {
		log.Fatal(err)
	}
	type row struct {
		name  string
		in    int64
		out   int64
		total int64
	}
	agg := map[string]*row{}
	for k, n := range rollups {
		if k.Level != events.RollupLevel(4) {
			continue
		}
		r := agg[k.Name]
		if r == nil {
			r = &row{name: k.Name}
			agg[k.Name] = r
		}
		if k.LoggedIn {
			r.in += n
		} else {
			r.out += n
		}
		r.total += n
	}
	rows := make([]*row, 0, len(agg))
	for _, r := range agg {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].total > rows[j].total })
	fmt.Printf("\n  top-level metrics (client, *, *, *, *, action) — logged in / out:\n")
	if len(rows) > 10 {
		rows = rows[:10]
	}
	for _, r := range rows {
		fmt.Printf("    %-44s %8d / %-8d\n", r.name, r.in, r.out)
	}
}

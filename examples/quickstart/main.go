// Quickstart: generate a small day of client events, materialize session
// sequences, and run the paper's canonical counting query both ways.
//
// This is the §5.2 Pig script in Go clothing:
//
//	define CountClientEvents CountClientEvents('$EVENTS');
//	raw = load '/session_sequences/$DATE/' using SessionSequencesLoader();
//	generated = foreach raw generate CountClientEvents(symbols);
//	grouped = group generated all;
//	count = foreach grouped generate SUM(generated);
//	dump count;
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"unilog/internal/analytics"
	"unilog/internal/dataflow"
	"unilog/internal/hdfs"
	"unilog/internal/session"
	"unilog/internal/workload"
)

func main() {
	day := time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)

	// 1. A day of synthetic traffic, written straight into warehouse layout
	//    (/logs/client_events/YYYY/MM/DD/HH/part-*.gz).
	cfg := workload.DefaultConfig(day)
	cfg.Users = 100
	evs, truth := workload.New(cfg).Generate()
	fs := hdfs.New(0)
	if err := workload.WriteWarehouse(fs, evs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warehouse: %d client events\n", truth.Events)

	// 2. The two-pass daily job: histogram -> dictionary -> session
	//    sequences (§4.2).
	dict, _, stats, err := session.BuildDay(fs, day, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized %d session sequences, %.1fx smaller than the raw logs\n\n",
		stats.Sessions, stats.Ratio())

	// 3. The counting query over session sequences: how many profile
	//    clicks, and what fraction of sessions contain one?
	matcher, err := analytics.MatcherFromPattern("*:profile_click")
	if err != nil {
		log.Fatal(err)
	}
	job := dataflow.NewJob("quickstart", fs)
	rep, err := analytics.CountSequencesDay(job, day, dict, matcher)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query *:profile_click over sequences:\n")
	fmt.Printf("  SUM   (total events):            %d\n", rep.Events)
	fmt.Printf("  COUNT (sessions with >=1 match): %d of %d\n", rep.Sessions, rep.TotalSessions)
	fmt.Printf("  cost: %d map task(s), %d bytes scanned\n\n",
		job.Stats().MapTasks, job.Stats().BytesRead)

	// 4. The same query from the raw logs: identical answer, very
	//    different cost — the reason session sequences exist.
	rawJob := dataflow.NewJob("quickstart-raw", fs)
	rawRep, err := analytics.CountRawDay(rawJob, day, matcher)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same query from raw logs: identical answer = %v\n", rep == rawRep)
	fmt.Printf("  cost: %d map tasks, %d bytes scanned, %d shuffle bytes\n",
		rawJob.Stats().MapTasks, rawJob.Stats().BytesRead, rawJob.Stats().ShuffleBytes)
}

// Exploratory user modeling (§6 "ongoing work"): the three speculative
// directions the paper sketches, run against real session sequences —
//
//   - query-by-example via sequence alignment ("What users exhibit similar
//     behavioral patterns?");
//   - grammar induction to find "smaller units that exhibit a great deal
//     of cohesion" inside sessions;
//   - a LifeFlow-style aggregated flow view of how sessions begin.
//
// Run: go run ./examples/explore
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"unilog/internal/align"
	"unilog/internal/flowviz"
	"unilog/internal/grammar"
	"unilog/internal/hdfs"
	"unilog/internal/session"
	"unilog/internal/workload"
)

func main() {
	day := time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)
	cfg := workload.DefaultConfig(day)
	cfg.Users = 250
	evs, _ := workload.New(cfg).Generate()
	fs := hdfs.New(0)
	if err := workload.WriteWarehouse(fs, evs); err != nil {
		log.Fatal(err)
	}
	dict, _, _, err := session.BuildDay(fs, day, 0)
	if err != nil {
		log.Fatal(err)
	}
	var recs []session.Record
	if err := session.ScanDay(fs, day, func(r *session.Record) error {
		recs = append(recs, *r)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	seqs := make([]string, len(recs))
	for i := range recs {
		seqs[i] = recs[i].Sequence
	}
	fmt.Printf("exploring %d sessions over a %d-event alphabet\n", len(seqs), dict.Len())

	// --- 1. Query by example (sequence alignment). ---
	// Take the longest session as the exemplar "engaged user" and find
	// behavioral neighbors.
	qi := 0
	for i := range seqs {
		if len(seqs[i]) > len(seqs[qi]) {
			qi = i
		}
	}
	fmt.Printf("\nquery-by-example: sessions most similar to user %d's %d-event session\n",
		recs[qi].UserID, recs[qi].EventCount())
	results := align.QueryByExample(seqs[qi], seqs, align.DefaultScoring, 6)
	for _, r := range results {
		if r.Index == qi {
			continue // the exemplar itself
		}
		fmt.Printf("  user %-8d session of %3d events  similarity %.2f (score %d)\n",
			recs[r.Index].UserID, recs[r.Index].EventCount(), r.Similarity, r.Score)
	}

	// --- 2. Grammar induction (Re-Pair). ---
	g := grammar.Induce(seqs, 2)
	fmt.Printf("\ngrammar induction: %d rules explain the corpus at %.2fx symbol compression\n",
		len(g.Rules), g.CompressionRatio())
	fmt.Println("most cohesive behavioral units (top rules by support):")
	for _, ri := range g.TopRules(3, 3) {
		fmt.Printf("  rule %d: used %d times, %d events:\n", ri.Rule, ri.Uses, ri.Length)
		names, err := dict.Decode(ri.Expansion)
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range names {
			fmt.Printf("      %s\n", n)
		}
	}

	// --- 3. LifeFlow-style session flow. ---
	fmt.Println("\nhow sessions begin (prefix flow, first 3 events):")
	tree := flowviz.Build(seqs, 3)
	tree.Render(os.Stdout, dict.Name, flowviz.RenderOptions{MinCount: 10, MaxChildren: 3, BarWidth: 24})
}

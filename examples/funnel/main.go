// Funnel analytics (§5.3): measure the signup flow with the
// ClientEventsFunnel UDF over materialized session sequences, in the
// paper's output format:
//
//	define Funnel ClientEventsFunnel('$EVENT1', '$EVENT2', ...);
//	...
//	(0, 490123)
//	(1, 297071)
//
// Run: go run ./examples/funnel
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"unilog/internal/analytics"
	"unilog/internal/dataflow"
	"unilog/internal/hdfs"
	"unilog/internal/session"
	"unilog/internal/workload"
)

func main() {
	day := time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)

	// Plant a known funnel: 65%, 75%, 80%, 90% per-stage continuation.
	cfg := workload.DefaultConfig(day)
	cfg.Users = 150
	cfg.LoggedOutSessions = 800 // lots of signup traffic
	evs, truth := workload.New(cfg).Generate()
	fs := hdfs.New(0)
	if err := workload.WriteWarehouse(fs, evs); err != nil {
		log.Fatal(err)
	}
	dict, _, _, err := session.BuildDay(fs, day, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Define the funnel: the five signup stages, across every client.
	stageNames := workload.FunnelStages("web")
	stages := make([]analytics.Matcher, len(stageNames))
	for i, full := range stageNames {
		suffix := full[len("web"):]
		stages[i] = func(name string) bool { return strings.HasSuffix(name, suffix) }
	}
	funnel := analytics.NewFunnel(dict, stages...)

	job := dataflow.NewJob("signup-funnel", fs)
	rep, err := analytics.FunnelSequencesDay(job, day, funnel)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("signup funnel over %d sessions:\n\n", rep.Examined)
	labels := []string{"start:view", "form:submit", "interests:select", "follow_suggestions:view", "complete:view"}
	for i, n := range rep.Completed {
		fmt.Printf("  (%d, %d)    %-24s planted truth: %d\n", i, n, labels[i], truth.FunnelStage[i])
	}
	fmt.Printf("\nper-stage abandonment:\n")
	for i, a := range rep.Abandonment() {
		fmt.Printf("  stage %d -> %d: %5.1f%% abandoned (planted continuation %.0f%%)\n",
			i, i+1, 100*a, 100*cfg.FunnelContinue[i])
	}

	// The §5.3 variant: unique users per stage instead of sessions.
	users, err := analytics.UniqueUsersPerStage(dataflow.NewJob("uu", fs), day, funnel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistinct user ids per stage (signups are logged-out, so id 0): %v\n", users)

	// Under the hood the funnel is a regular expression over the unicode
	// sequence string — exactly the paper's implementation.
	re, err := funnel.Regexp(funnel.NumStages())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull-funnel regexp over session sequences:\n  %s\n", re.String())
}

// User modeling (§5.4): treat session sequences as sentences from a finite
// alphabet and apply NLP machinery — n-gram language models to quantify
// temporal signal in user behavior, and collocation extraction (PMI and
// Dunning's G²) to surface "activity collocates".
//
// Run: go run ./examples/usermodel
package main

import (
	"fmt"
	"log"
	"time"

	"unilog/internal/colloc"
	"unilog/internal/hdfs"
	"unilog/internal/ngram"
	"unilog/internal/session"
	"unilog/internal/workload"
)

func main() {
	day := time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)
	cfg := workload.DefaultConfig(day)
	cfg.Users = 400
	evs, _ := workload.New(cfg).Generate()
	fs := hdfs.New(0)
	if err := workload.WriteWarehouse(fs, evs); err != nil {
		log.Fatal(err)
	}
	dict, _, _, err := session.BuildDay(fs, day, 0)
	if err != nil {
		log.Fatal(err)
	}
	var seqs []string
	if err := session.ScanDay(fs, day, func(r *session.Record) error {
		seqs = append(seqs, r.Sequence)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	split := len(seqs) * 4 / 5
	train, test := seqs[:split], seqs[split:]
	fmt.Printf("%d sessions (%d train, %d held out), alphabet of %d event types\n\n",
		len(seqs), len(train), len(test), dict.Len())

	// --- Language models: perplexity by order. ---
	fmt.Println("how much temporal signal is in user behavior?")
	fmt.Printf("  %8s %12s %14s\n", "order", "perplexity", "cross-entropy")
	for order := 1; order <= 4; order++ {
		m := ngram.NewModel(order)
		m.TrainAll(train)
		p, err := m.Perplexity(test)
		if err != nil {
			log.Fatal(err)
		}
		h, err := m.CrossEntropy(test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %8d %12.2f %14.3f\n", order, p, h)
	}
	fmt.Println("  (a big unigram->bigram drop means the next action strongly depends")
	fmt.Println("   on the previous one; flattening beyond bigram bounds the memory)")

	// --- Collocations: which actions co-occur far beyond chance? ---
	stats := colloc.Collect(seqs)
	fmt.Println("\ntop activity collocates by log-likelihood ratio (G², min count 10):")
	for _, p := range stats.TopLLR(8, 10) {
		a, _ := dict.Name(p.A)
		b, _ := dict.Name(p.B)
		fmt.Printf("  G²=%9.1f  PMI=%5.2f  n=%-5d %s -> %s\n", p.Score, stats.PMI(p.A, p.B), p.Count, a, b)
	}
	fmt.Println("\ntop by PMI (overweights rare pairs — hence the count floor):")
	for _, p := range stats.TopPMI(5, 10) {
		a, _ := dict.Name(p.A)
		b, _ := dict.Name(p.B)
		fmt.Printf("  PMI=%5.2f  n=%-5d %s -> %s\n", p.Score, p.Count, a, b)
	}
}

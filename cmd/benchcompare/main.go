// Command benchcompare guards the benchmark trajectory: it compares the
// gated fields of freshly generated benchmark JSON files
// (BENCH_realtime.json, BENCH_dataflow.json) against the baselines
// committed under ci/baseline/ and exits non-zero when any regresses more
// than the allowed fraction — so a perf regression fails CI loudly instead
// of drifting.
//
// The comparison is direction-aware. Numeric fields ending in "_per_sec"
// are throughput: higher is better, and a drop beyond -max-regress fails.
// Numeric fields ending in "_ns" are latency percentiles from the
// pipeline's telemetry histograms: LOWER is better, and a rise beyond
// -max-latency-regress fails. The latency gate defaults much looser than
// the throughput gate because p95/p99 over the small CI workload are
// noisy single-run order statistics, not averaged rates; it exists to
// catch order-of-magnitude cliffs, not percent drift. All other fields
// are informational. Metrics present in only one of current/baseline are
// reported as "new" (a just-added experiment) or "removed" (a retired
// one) instead of failing the job, so adding or dropping a metric never
// requires a lockstep baseline update.
//
// An argument may also be a directory — an experiment-grid output from
// `benchrunner -grid` — in which case every *.json cell inside it is
// compared against the same-named cell under <baseline-dir>/<dirname>.
// Cells present on only one side are reported as new or removed cells,
// never errors, so growing or shrinking the scenario matrix does not
// require a lockstep baseline update either.
//
// Usage:
//
//	benchcompare [-baseline-dir ci/baseline] [-max-regress 0.30] [-max-latency-regress 2.0] FILE|DIR...
//
// Baselines regenerate with the same command CI runs:
//
//	go run ./cmd/benchrunner -users 60 -loggedout 40 -only e14,e15,e16,e17
//	cp BENCH_realtime.json BENCH_dataflow.json ci/baseline/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// gates carries the regression thresholds through the compare calls.
type gates struct {
	maxRegress    float64
	maxLatRegress float64
}

func main() {
	baselineDir := flag.String("baseline-dir", "ci/baseline", "directory holding committed baseline JSON files")
	maxRegress := flag.Float64("max-regress", 0.30, "maximum allowed fractional throughput regression (_per_sec keys, higher is better)")
	maxLatRegress := flag.Float64("max-latency-regress", 2.0, "maximum allowed fractional latency regression (_ns keys, lower is better)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchcompare: no benchmark files given")
		os.Exit(2)
	}
	g := gates{maxRegress: *maxRegress, maxLatRegress: *maxLatRegress}

	failed := false
	for _, path := range flag.Args() {
		info, err := os.Stat(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
			os.Exit(2)
		}
		var bad bool
		if info.IsDir() {
			bad, err = compareGridDir(path, filepath.Join(*baselineDir, filepath.Base(path)), g)
		} else {
			bad, err = compareFile(path, filepath.Join(*baselineDir, filepath.Base(path)), g)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
			os.Exit(2)
		}
		failed = failed || bad
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchcompare: metrics regressed beyond the allowed bounds versus the committed baseline\n")
		os.Exit(1)
	}
	fmt.Println("benchcompare: all gated metrics within bounds")
}

// compareFile gates one current JSON file against its committed baseline,
// reporting whether anything regressed.
func compareFile(path, basePath string, g gates) (failed bool, err error) {
	cur, err := load(path)
	if err != nil {
		return false, err
	}
	base, err := load(basePath)
	if err != nil {
		return false, err
	}
	fmt.Printf("## %s vs %s (max regression: throughput %.0f%%, latency %.0f%%)\n",
		path, basePath, g.maxRegress*100, g.maxLatRegress*100)
	fmt.Printf("%-32s %14s %14s %9s\n", "metric", "baseline", "current", "delta")
	seen := map[string]bool{}
	for _, key := range gatedKeys(cur) {
		seen[key] = true
		curV := cur[key].(float64)
		baseV, ok := base[key].(float64)
		if !ok || baseV <= 0 {
			// A metric the baseline predates: report it, don't gate on it.
			fmt.Printf("%-32s %14s %14.0f %9s\n", key, "(none)", curV, "new")
			continue
		}
		delta := curV/baseV - 1
		verdict := "ok"
		if lowerIsBetter(key) {
			if curV > baseV*(1+g.maxLatRegress) {
				verdict = "REGRESSED"
				failed = true
			}
		} else if curV < baseV*(1-g.maxRegress) {
			verdict = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-32s %14.0f %14.0f %+8.1f%% %s\n", key, baseV, curV, delta*100, verdict)
	}
	for _, key := range gatedKeys(base) {
		if seen[key] {
			continue
		}
		// A baseline metric the current run no longer emits: a retired
		// experiment, not a regression.
		fmt.Printf("%-32s %14.0f %14s %9s\n", key, base[key].(float64), "(none)", "removed")
	}
	fmt.Println()
	return failed, nil
}

// compareGridDir diffs a grid output directory cell by cell against the
// same-named directory under the baseline. Cells on only one side are
// informational — a grown matrix reports new cells, a shrunk one reports
// removed cells — and only cells present on both sides gate.
func compareGridDir(dir, baseDir string, g gates) (failed bool, err error) {
	curCells, err := listCells(dir)
	if err != nil {
		return false, err
	}
	baseCells, err := listCells(baseDir)
	if err != nil && !os.IsNotExist(err) {
		return false, err
	}
	fmt.Printf("# grid %s vs %s — %d current cells, %d baseline cells\n\n",
		dir, baseDir, len(curCells), len(baseCells))

	union := map[string]bool{}
	for _, c := range curCells {
		union[c] = true
	}
	for _, c := range baseCells {
		union[c] = true
	}
	names := make([]string, 0, len(union))
	for c := range union {
		names = append(names, c)
	}
	sort.Strings(names)

	curSet := toSet(curCells)
	baseSet := toSet(baseCells)
	for _, name := range names {
		switch {
		case curSet[name] && baseSet[name]:
			bad, err := compareFile(filepath.Join(dir, name), filepath.Join(baseDir, name), g)
			if err != nil {
				return failed, err
			}
			failed = failed || bad
		case curSet[name]:
			fmt.Printf("## %s: new cell (no baseline) — informational\n\n", name)
		default:
			fmt.Printf("## %s: removed cell (baseline only) — informational\n\n", name)
		}
	}
	return failed, nil
}

// listCells returns the basenames of the *.json cells in dir.
func listCells(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			out = append(out, e.Name())
		}
	}
	return out, nil
}

func toSet(names []string) map[string]bool {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return set
}

func load(path string) (map[string]any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]any{}
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// lowerIsBetter reports the gating direction of a key: latency series
// (nanosecond percentiles) regress upward, throughput regresses downward.
func lowerIsBetter(key string) bool {
	return strings.HasSuffix(key, "_ns")
}

// gatedKeys returns the sorted gated metric names present in m: top-level
// numeric fields ending in _per_sec (throughput) or _ns (latency). The
// nested "telemetry" snapshot object is not a float64 and falls out here.
func gatedKeys(m map[string]any) []string {
	var keys []string
	for k, v := range m {
		if _, ok := v.(float64); !ok {
			continue
		}
		if strings.HasSuffix(k, "_per_sec") || strings.HasSuffix(k, "_ns") {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

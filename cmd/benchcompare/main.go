// Command benchcompare guards the benchmark trajectory: it compares the
// gated fields of freshly generated benchmark JSON files
// (BENCH_realtime.json, BENCH_dataflow.json) against the baselines
// committed under ci/baseline/ and exits non-zero when any regresses more
// than the allowed fraction — so a perf regression fails CI loudly instead
// of drifting.
//
// The comparison is direction-aware. Numeric fields ending in "_per_sec"
// are throughput: higher is better, and a drop beyond -max-regress fails.
// Numeric fields ending in "_ns" are latency percentiles from the
// pipeline's telemetry histograms: LOWER is better, and a rise beyond
// -max-latency-regress fails. The latency gate defaults much looser than
// the throughput gate because p95/p99 over the small CI workload are
// noisy single-run order statistics, not averaged rates; it exists to
// catch order-of-magnitude cliffs, not percent drift. All other fields
// are informational. Metrics present in only one of current/baseline are
// reported as "new" (a just-added experiment) or "removed" (a retired
// one) instead of failing the job, so adding or dropping a metric never
// requires a lockstep baseline update.
//
// Usage:
//
//	benchcompare [-baseline-dir ci/baseline] [-max-regress 0.30] [-max-latency-regress 2.0] FILE...
//
// Baselines regenerate with the same command CI runs:
//
//	go run ./cmd/benchrunner -users 60 -loggedout 40 -only e14,e15,e16,e17
//	cp BENCH_realtime.json BENCH_dataflow.json ci/baseline/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	baselineDir := flag.String("baseline-dir", "ci/baseline", "directory holding committed baseline JSON files")
	maxRegress := flag.Float64("max-regress", 0.30, "maximum allowed fractional throughput regression (_per_sec keys, higher is better)")
	maxLatRegress := flag.Float64("max-latency-regress", 2.0, "maximum allowed fractional latency regression (_ns keys, lower is better)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchcompare: no benchmark files given")
		os.Exit(2)
	}

	failed := false
	for _, path := range flag.Args() {
		cur, err := load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
			os.Exit(2)
		}
		basePath := filepath.Join(*baselineDir, filepath.Base(path))
		base, err := load(basePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("## %s vs %s (max regression: throughput %.0f%%, latency %.0f%%)\n",
			path, basePath, *maxRegress*100, *maxLatRegress*100)
		fmt.Printf("%-32s %14s %14s %9s\n", "metric", "baseline", "current", "delta")
		seen := map[string]bool{}
		for _, key := range gatedKeys(cur) {
			seen[key] = true
			curV := cur[key].(float64)
			baseV, ok := base[key].(float64)
			if !ok || baseV <= 0 {
				// A metric the baseline predates: report it, don't gate on it.
				fmt.Printf("%-32s %14s %14.0f %9s\n", key, "(none)", curV, "new")
				continue
			}
			delta := curV/baseV - 1
			verdict := "ok"
			if lowerIsBetter(key) {
				if curV > baseV*(1+*maxLatRegress) {
					verdict = "REGRESSED"
					failed = true
				}
			} else if curV < baseV*(1-*maxRegress) {
				verdict = "REGRESSED"
				failed = true
			}
			fmt.Printf("%-32s %14.0f %14.0f %+8.1f%% %s\n", key, baseV, curV, delta*100, verdict)
		}
		for _, key := range gatedKeys(base) {
			if seen[key] {
				continue
			}
			// A baseline metric the current run no longer emits: a retired
			// experiment, not a regression.
			fmt.Printf("%-32s %14.0f %14s %9s\n", key, base[key].(float64), "(none)", "removed")
		}
		fmt.Println()
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchcompare: metrics regressed beyond the allowed bounds versus the committed baseline\n")
		os.Exit(1)
	}
	fmt.Println("benchcompare: all gated metrics within bounds")
}

func load(path string) (map[string]any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]any{}
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// lowerIsBetter reports the gating direction of a key: latency series
// (nanosecond percentiles) regress upward, throughput regresses downward.
func lowerIsBetter(key string) bool {
	return strings.HasSuffix(key, "_ns")
}

// gatedKeys returns the sorted gated metric names present in m: top-level
// numeric fields ending in _per_sec (throughput) or _ns (latency). The
// nested "telemetry" snapshot object is not a float64 and falls out here.
func gatedKeys(m map[string]any) []string {
	var keys []string
	for k, v := range m {
		if _, ok := v.(float64); !ok {
			continue
		}
		if strings.HasSuffix(k, "_per_sec") || strings.HasSuffix(k, "_ns") {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

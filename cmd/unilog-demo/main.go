// Command unilog-demo runs Figure 1 end to end: Scribe daemons on
// production hosts in two datacenters deliver a day of client events
// through ZooKeeper-discovered aggregators onto per-datacenter staging
// clusters; the log mover slides sealed hours into the main warehouse; the
// daily jobs build the dictionary, session sequences, catalog, and the
// BirdBrain dashboard. Faults are injected mid-run to demonstrate §2's
// robustness story.
//
// The pipeline's own telemetry (internal/telemetry) is live for the whole
// run: -http serves the /debug/unilog endpoint (expvar-style text, or
// JSON with ?format=json) while the day replays, -telemetry-every logs a
// one-line summary of changed series on that cadence, and -hold keeps the
// process (and the endpoint) up after the run finishes so a scraper can
// read the final counters — which is exactly what the CI metrics-smoke
// step does.
//
// Usage:
//
//	unilog-demo [-users N] [-seed S] [-faults=false] [-http addr] [-hold d]
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"unilog/internal/analytics"
	"unilog/internal/birdbrain"
	"unilog/internal/catalog"
	"unilog/internal/dataflow"
	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/logmover"
	"unilog/internal/realtime"
	"unilog/internal/scribe"
	"unilog/internal/session"
	"unilog/internal/telemetry"
	"unilog/internal/warehouse"
	"unilog/internal/workload"
	"unilog/internal/zk"
)

var day = time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)

func main() {
	users := flag.Int("users", 300, "logged-in user population")
	seed := flag.Int64("seed", 2012, "workload seed")
	faults := flag.Bool("faults", true, "inject an aggregator restart and a staging outage")
	live := flag.Bool("live", true, "print realtime counters mid-run")
	crash := flag.Bool("crash", true, "kill and recover the realtime counters mid-run (WAL + snapshot durability)")
	httpAddr := flag.String("http", "", "serve the /debug/unilog telemetry endpoint on this address (e.g. 127.0.0.1:8080)")
	hold := flag.Duration("hold", 0, "keep the process (and telemetry endpoint) up this long after the run")
	sumEvery := flag.Duration("telemetry-every", 0, "log a one-line telemetry summary on this cadence (0 disables)")
	flag.Parse()

	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		check(err)
		mux := http.NewServeMux()
		mux.Handle("/debug/unilog", telemetry.Handler())
		go func() { _ = http.Serve(ln, mux) }()
		fmt.Printf("telemetry: serving http://%s/debug/unilog\n", ln.Addr())
	}
	var sumLog *telemetry.SummaryLogger
	if *sumEvery > 0 {
		sumLog = telemetry.Default.StartSummaryLogger(os.Stdout, *sumEvery)
	}

	cfg := workload.DefaultConfig(day)
	cfg.Users = *users
	cfg.Seed = *seed
	evs, truth := workload.New(cfg).Generate()
	fmt.Printf("generated %d events across %d sessions (%d logged-in users)\n\n",
		truth.Events, truth.Sessions, truth.UniqueUsers)

	// --- Figure 1 topology: two datacenters, shared virtual clock. ---
	clock := zk.NewManualClock(day)
	dc1 := mustDC("dc1", clock, 2, 4, *seed+1)
	dc2 := mustDC("dc2", clock, 2, 4, *seed+2)
	dcs := []*scribe.Datacenter{dc1, dc2}
	wh := hdfs.New(0)
	mover := logmover.New(wh,
		logmover.Source{Datacenter: "dc1", FS: dc1.Staging},
		logmover.Source{Datacenter: "dc2", FS: dc2.Staging})

	// The realtime subsystem taps every aggregator: accepted client events
	// fan into sharded counters and are queryable seconds later, a day
	// before the warehouse path publishes the same numbers. The counters
	// are durable: every drained batch hits a per-shard write-ahead log,
	// and periodic snapshots bound recovery time, so a crashed shard
	// remembers "today so far".
	walDir, err := os.MkdirTemp("", "unilog-rt-wal-")
	check(err)
	defer os.RemoveAll(walDir)
	rtCfg := realtime.Config{Shards: 4}
	rt, err := realtime.Open(walDir, rtCfg)
	check(err)
	rt.Publish(nil)
	defer func() { rt.Close() }()
	retap := func() {
		for _, dc := range dcs {
			for _, a := range dc.Aggregators {
				a.Tap = rt.TapBatch
			}
		}
	}
	retap()
	lambda := birdbrain.NewLambda(wh, rt, clock.Now)

	fmt.Println("replaying the day hour by hour through the delivery pipeline:")
	i := 0
	for hr := 0; hr < 24; hr++ {
		hour := day.Add(time.Duration(hr) * time.Hour)
		if *faults && hr == 6 {
			fmt.Println("  hour 06: administrator restarts dc1-agg00 (ephemeral znode drops, daemons re-discover)")
			check(dc1.Aggregators[0].Stop())
		}
		if *faults && hr == 10 {
			fmt.Println("  hour 10: dc2 staging HDFS outage begins (aggregators buffer locally)")
			dc2.Staging.SetAvailable(false)
		}
		if *faults && hr == 12 {
			fmt.Println("  hour 12: dc2 staging HDFS recovers (buffered files flush)")
			dc2.Staging.SetAvailable(true)
		}
		if *crash && hr == 10 {
			rt.Sync()
			check(rt.Snapshot())
			fmt.Println("  hour 10: realtime snapshot cut (stripe rings serialized, WAL truncated)")
		}
		if *crash && hr == 14 {
			rt.Sync()
			before := rt.Stats().Observed
			rt.Crash()
			fmt.Printf("  hour 14: realtime counters killed without graceful close (%d events in memory)\n", before)
			rt, err = realtime.Open(walDir, rtCfg)
			check(err)
			rt.Publish(nil) // repoint the stats gauges at the recovered instance
			retap()
			lambda = birdbrain.NewLambda(wh, rt, clock.Now)
			fmt.Printf("  hour 14: recovered from snapshot + WAL tail: %d of %d events survive (exact: %v)\n",
				rt.Stats().Observed, before, rt.Stats().Observed == before)
		}
		n := 0
		for ; i < len(evs) && evs[i].Timestamp < hour.Add(time.Hour).UnixMilli(); i++ {
			e := &evs[i]
			dc := dcs[int(e.UserID+int64(len(e.SessionID)))%2]
			dc.Daemons[int(e.Timestamp)%len(dc.Daemons)].Log(events.Category, e.Marshal())
			n++
		}
		clock.Advance(time.Hour)
		for _, dc := range dcs {
			// Sealing fails while a staging cluster is down; resealed later.
			_ = dc.SealHour([]string{events.Category}, hour)
		}
		moved, err := mover.MoveAllSealed()
		check(err)
		if n > 0 || len(moved) > 0 {
			fmt.Printf("  hour %02d: %5d events logged, %d category-hours moved to warehouse\n", hr, n, len(moved))
		}
		if *live && (hr == 8 || hr == 16) {
			rt.Sync()
			fmt.Printf("  realtime: %d events in the counters; top clients:", rt.Stats().Observed)
			for _, pc := range rt.TopK("", 3, day, hour.Add(time.Hour)) {
				fmt.Printf(" %s=%d", pc.Path, pc.Count)
			}
			n, src, err := lambda.EventTotal(day, 4, "web:*:*:*:*:profile_click")
			check(err)
			fmt.Printf("; web profile_clicks today so far = %d (served from %s)\n", n, src)
		}
	}
	// Recovery pass for the outage hours.
	for hr := 0; hr < 24; hr++ {
		for _, dc := range dcs {
			check(dc.SealHour([]string{events.Category}, day.Add(time.Duration(hr)*time.Hour)))
		}
	}
	moved, err := mover.MoveAllSealed()
	check(err)
	if len(moved) > 0 {
		fmt.Printf("  recovery: %d deferred category-hours moved after staging recovered\n", len(moved))
	}

	// --- Delivery accounting. ---
	var accepted, delivered, redisc int64
	for _, dc := range dcs {
		for _, d := range dc.Daemons {
			s := d.Stats()
			accepted += s.Accepted
			delivered += s.Delivered
			redisc += s.Rediscoveries
		}
	}
	var inWarehouse int64
	check(warehouse.ScanDay(wh, events.Category, day, func(*events.ClientEvent) error {
		inWarehouse++
		return nil
	}))
	fmt.Printf("\ndelivery: accepted %d, delivered %d, in warehouse %d (exactly once: %v), zk rediscoveries %d\n",
		accepted, delivered, inWarehouse, inWarehouse == truth.Events, redisc)
	var filesIn, filesOut int
	for _, a := range mover.Audits() {
		filesIn += a.FilesIn
		filesOut += a.FilesOut
	}
	fmt.Printf("log mover audit: %d moves, %d small staging files merged into %d warehouse files\n\n",
		len(mover.Audits()), filesIn, filesOut)

	// --- Daily jobs: dictionary + session sequences + catalog + dashboard. ---
	dict, _, stats, err := session.BuildDay(wh, day, 3)
	check(err)
	fmt.Printf("session sequences: %d sessions from %d events, alphabet %d, %.1fx smaller than raw logs\n",
		stats.Sessions, stats.Events, stats.Alphabet, stats.Ratio())
	_ = dict

	cat, err := catalog.Rebuild(wh, day, 3)
	check(err)
	fmt.Printf("client event catalog: %d event types; top of the hierarchy:\n", cat.Len())
	clients, err := cat.Children(nil)
	check(err)
	for _, cc := range clients {
		fmt.Printf("  %-12s %8d events\n", cc.Value, cc.Count)
	}
	fmt.Println()

	summary, err := birdbrain.Build(wh, day, 5)
	check(err)
	summary.Render(os.Stdout)

	// Re-run the dashboard rollup under a deliberately tight memory
	// budget: the group-by spills sorted runs and the merge-reduce streams
	// them back, exercising the external dataflow path end to end so the
	// dataflow.spill.* telemetry series reflect a real out-of-core job.
	spillJob := dataflow.NewJob("demo-rollups-budgeted", wh)
	spillJob.MemoryBudget = 32 << 10
	budgeted, err := analytics.Rollups(spillJob, day)
	check(err)
	js := spillJob.Stats()
	fmt.Printf("\nbudgeted rollup (32 KiB): %d rows via %d spill runs, %d spilled bytes, merge fan-in %d\n",
		len(budgeted), js.SpillRuns, js.SpilledBytes, js.PeakRunFanIn)

	// --- Lambda reconciliation: the streaming and batch paths must agree. ---
	rt.Sync()
	rts := rt.Stats()
	fmt.Printf("\nrealtime tap: %d entries tapped, %d events counted, in warehouse %d (streams agree: %v)\n",
		rts.TapEntries, rts.Observed, inWarehouse, rts.Observed == inWarehouse)
	rep, err := realtime.Reconcile(wh, day, realtime.Config{Shards: 4})
	check(err)
	fmt.Println(rep)

	// The clock is past midnight, so BirdBrain hands the day over to the
	// warehouse path; the number must not jump.
	const metric = "web:*:*:*:*:profile_click"
	wasLive := rt.RollupTotal(4, metric, day, day.Add(24*time.Hour))
	sealed, src, err := lambda.EventTotal(day, 4, metric)
	check(err)
	fmt.Printf("lambda handover: %s = %d from %s after midnight (realtime served %d — jump-free: %v)\n",
		metric, sealed, src, wasLive, sealed == wasLive)

	if sumLog != nil {
		sumLog.Stop()
	}
	fmt.Println("\n" + telemetry.Default.Summary())
	if *hold > 0 {
		fmt.Printf("holding %s: telemetry endpoint stays up for scraping\n", *hold)
		time.Sleep(*hold)
	}
}

func mustDC(name string, clock zk.Clock, aggs, daemons int, seed int64) *scribe.Datacenter {
	dc, err := scribe.NewDatacenter(name, hdfs.New(0), clock, aggs, daemons, seed)
	check(err)
	return dc
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "unilog-demo:", err)
		os.Exit(1)
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"unilog/internal/scenario"
)

// gridSpec is the experiments.json shape: a (scenario × config) matrix
// with repeats. Scenario paths are relative to the grid file, so a grid
// and its scenarios travel together as a directory.
type gridSpec struct {
	Name    string `json:"name"`
	Repeats int    `json:"repeats,omitempty"`
	// OutputDir receives one CELL_*.json per (scenario, config, repeat);
	// the -grid-out flag overrides it.
	OutputDir string               `json:"output_dir,omitempty"`
	Scenarios []string             `json:"scenarios"`
	Configs   []scenario.RunConfig `json:"configs,omitempty"`
}

// runGrid executes every cell of the grid and writes one machine-readable
// JSON per cell. It returns an error if any cell fails to run or finishes
// with a failed invariant, after running every cell — CI sees the whole
// matrix, not just the first failure.
func runGrid(gridPath, outOverride string) error {
	data, err := os.ReadFile(gridPath)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var g gridSpec
	if err := dec.Decode(&g); err != nil {
		return fmt.Errorf("%s: %v", gridPath, err)
	}
	if len(g.Scenarios) == 0 {
		return fmt.Errorf("%s: no scenarios", gridPath)
	}
	if g.Repeats <= 0 {
		g.Repeats = 1
	}
	if len(g.Configs) == 0 {
		g.Configs = []scenario.RunConfig{{Name: "default"}}
	}
	outDir := g.OutputDir
	if outOverride != "" {
		outDir = outOverride
	}
	if outDir == "" {
		outDir = "grid_out"
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	baseDir := filepath.Dir(gridPath)

	specs := make([]*scenario.Spec, len(g.Scenarios))
	for i, rel := range g.Scenarios {
		p := rel
		if !filepath.IsAbs(p) {
			p = filepath.Join(baseDir, p)
		}
		sp, err := scenario.Load(p)
		if err != nil {
			return err
		}
		specs[i] = sp
	}

	fmt.Printf("# Experiment grid %s — %d scenarios × %d configs × %d repeats\n\n",
		g.Name, len(specs), len(g.Configs), g.Repeats)
	fmt.Printf("  %-20s %-12s %3s %9s %7s %9s %6s  %s\n",
		"scenario", "config", "rep", "events", "crowd", "warehouse", "spill", "verdict")

	var failed []string
	for _, sp := range specs {
		for _, rc := range g.Configs {
			for rep := 1; rep <= g.Repeats; rep++ {
				// Each repeat perturbs the seed so repeats sample run-to-run
				// variance instead of replaying the identical stream.
				cell := *sp
				cell.Seed += int64(rep - 1)
				res, err := scenario.Run(&cell, rc)
				if err != nil {
					return fmt.Errorf("cell %s/%s r%d: %w", sp.Name, rc.Name, rep, err)
				}
				res.Repeat = rep
				name := cellName(sp.Name, rc.Name, rep)
				if err := writeCell(filepath.Join(outDir, name), res); err != nil {
					return err
				}
				verdict := "ok"
				if !res.OK {
					verdict = "FAILED: " + failedInvariants(res)
					failed = append(failed, fmt.Sprintf("%s (%s)", name, failedInvariants(res)))
				}
				fmt.Printf("  %-20s %-12s %3d %9d %7d %9d %6d  %s\n",
					sp.Name, rc.Name, rep, res.Events, res.CrowdEvents,
					res.InWarehouse, res.SpillRuns, verdict)
			}
		}
	}
	fmt.Printf("\ncells written to %s/\n", outDir)
	if len(failed) > 0 {
		return fmt.Errorf("%d cell(s) failed invariants: %s", len(failed), strings.Join(failed, "; "))
	}
	return nil
}

// cellName builds the per-cell filename: CELL_<scenario>__<config>__r<rep>.json.
func cellName(scenarioName, configName string, rep int) string {
	return fmt.Sprintf("CELL_%s__%s__r%d.json", sanitize(scenarioName), sanitize(configName), rep)
}

// sanitize keeps cell filenames shell- and artifact-safe.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, s)
}

func writeCell(path string, res *scenario.Result) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func failedInvariants(res *scenario.Result) string {
	var names []string
	for _, c := range res.Invariants {
		if !c.OK {
			names = append(names, c.Name+" ("+c.Detail+")")
		}
	}
	return strings.Join(names, ", ")
}

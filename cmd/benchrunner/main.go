// Command benchrunner regenerates every experiment in DESIGN.md §2 (E1–E12)
// and prints paper-claim-versus-measured tables; EXPERIMENTS.md is produced
// from its output.
//
// Usage:
//
//	benchrunner [-users N] [-loggedout N] [-seed S] [-only e1,e4]
//	benchrunner -grid ci/scenarios/smoke.json [-grid-out DIR]
//
// All experiments share one generated day of traffic with planted ground
// truth, a warehouse populated through the direct writer, and a session
// store built by the two-pass daily job.
//
// With -grid, benchrunner instead runs a scenario experiment grid: every
// (scenario × config) cell in the grid file executes a declarative
// workload spec (internal/scenario) through the full pipeline and writes
// one machine-readable JSON per cell; the run exits nonzero if any
// cell's spec-declared invariants fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"time"

	"unilog/internal/analytics"
	"unilog/internal/colloc"
	"unilog/internal/columnar"
	"unilog/internal/dataflow"
	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/legacy"
	"unilog/internal/logmover"
	"unilog/internal/ngram"
	"unilog/internal/realtime"
	"unilog/internal/recordio"
	"unilog/internal/scribe"
	"unilog/internal/session"
	"unilog/internal/telemetry"
	"unilog/internal/twin"
	"unilog/internal/users"
	"unilog/internal/warehouse"
	"unilog/internal/workload"
	"unilog/internal/zk"
)

var day = time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)

// realtimeMetrics is the machine-readable summary of the realtime
// experiments (E14/E15), written as JSON so the perf trajectory of the
// streaming subsystem is tracked run over run instead of scraped from
// stdout. Zero-valued fields mean the experiment that measures them was
// skipped via -only.
type realtimeMetrics struct {
	GeneratedAt           string  `json:"generated_at"`
	Events                int64   `json:"events"`
	IngestEventsPerSec    float64 `json:"ingest_events_per_sec"`
	IngestAllocsPerEvent  float64 `json:"ingest_allocs_per_event"`
	WALIngestEventsPerSec float64 `json:"wal_ingest_events_per_sec"`
	WALBytesPerEvent      float64 `json:"wal_bytes_per_event"`
	WALOverheadX          float64 `json:"wal_overhead_x"`
	RecoveryMillis        float64 `json:"recovery_ms"`
	RecoveryEventsPerSec  float64 `json:"recovery_events_per_sec"`
	ReconcileOK           bool    `json:"reconcile_ok"`

	// Latency percentiles from the pipeline's own telemetry histograms,
	// recorded over everything the selected experiments ran. Flat _ns keys
	// so benchcompare's direction-aware gate (lower is better) sees them.
	IngestApplyP50Ns  int64 `json:"ingest_apply_p50_ns"`
	IngestApplyP95Ns  int64 `json:"ingest_apply_p95_ns"`
	IngestApplyP99Ns  int64 `json:"ingest_apply_p99_ns"`
	WALAppendP50Ns    int64 `json:"wal_append_p50_ns"`
	WALAppendP95Ns    int64 `json:"wal_append_p95_ns"`
	WALAppendP99Ns    int64 `json:"wal_append_p99_ns"`
	QueryPathSumP50Ns int64 `json:"query_pathsum_p50_ns"`
	QueryPathSumP95Ns int64 `json:"query_pathsum_p95_ns"`
	QueryPathSumP99Ns int64 `json:"query_pathsum_p99_ns"`

	// Telemetry is the full registry snapshot at write time: every series
	// and histogram summary, for forensics beyond the flat keys above.
	Telemetry telemetry.Snap `json:"telemetry"`

	measured bool
}

var metrics realtimeMetrics

// dataflowMetrics is the machine-readable summary of the out-of-core
// dataflow experiments (E16/E17), written as BENCH_dataflow.json. The
// spill figures are the peak-RSS proxy: what the engine staged on disk
// instead of holding in memory; the run/fan-in figures are the sort-merge
// reduce-memory proxy. Zero-valued fields mean the experiment that
// measures them was skipped via -only.
type dataflowMetrics struct {
	GeneratedAt             string  `json:"generated_at"`
	Events                  int64   `json:"events"`
	BaselineEvents          int64   `json:"baseline_events"`
	ScaleX                  float64 `json:"scale_x"`
	MemoryBudgetBytes       int64   `json:"memory_budget_bytes"`
	RollupRows              int     `json:"rollup_rows"`
	RollupEventsPerSec      float64 `json:"rollup_events_per_sec"`
	InMemRollupEventsPerSec float64 `json:"inmem_rollup_events_per_sec"`
	SpilledBytes            int64   `json:"spilled_bytes"`
	SpilledRecords          int64   `json:"spilled_records"`
	SpillFlushes            int     `json:"spill_flushes"`
	SpilledPartitions       int     `json:"spilled_partitions"`
	MergePasses             int     `json:"merge_passes"`
	ShuffleBytes            int64   `json:"shuffle_bytes"`
	SessionGroups           int     `json:"session_groups"`
	Identical               bool    `json:"identical"`

	// E17: sort-merge reduce + external OrderBy at day scale.
	E17Events                int64   `json:"e17_events"`
	E17SpillRuns             int     `json:"e17_spill_runs"`
	E17MergeRuns             int     `json:"e17_merge_runs"`
	E17PeakRunFanIn          int     `json:"e17_peak_run_fan_in"`
	E17RollupIdentical       bool    `json:"e17_rollup_identical"`
	SessionizeEventsPerSec   float64 `json:"sessionize_events_per_sec"`
	InMemSessionizePerSec    float64 `json:"inmem_sessionize_events_per_sec"`
	OrderByEventsPerSec      float64 `json:"orderby_events_per_sec"`
	OrderBySpilledBytes      int64   `json:"orderby_spilled_bytes"`
	OrderedSessionsIdentical bool    `json:"ordered_sessions_identical"`
	OrderBySortedAndComplete bool    `json:"orderby_sorted_and_complete"`

	// Stage-latency percentiles from the dataflow telemetry histograms
	// (flat _ns keys for benchcompare's lower-is-better gate), plus the
	// full registry snapshot for forensics.
	// E18: columnar sealed-day storage — zone-map pruning + projection
	// pushdown vs the row scan, plus the full-scan equivalence proof.
	E18Events                      int64   `json:"e18_events"`
	E18Chunks                      int     `json:"e18_chunks"`
	E18RowScanEventsPerSec         float64 `json:"e18_rowscan_events_per_sec"`
	E18ColumnarScanEventsPerSec    float64 `json:"e18_columnar_scan_events_per_sec"`
	E18SelectiveRowEventsPerSec    float64 `json:"e18_selective_row_events_per_sec"`
	E18SelectivePrunedEventsPerSec float64 `json:"e18_selective_pruned_events_per_sec"`
	E18SelectiveRowBytes           int64   `json:"e18_selective_row_bytes"`
	E18SelectivePrunedBytes        int64   `json:"e18_selective_pruned_bytes"`
	E18BytesRatio                  float64 `json:"e18_bytes_ratio"`
	E18SpeedupX                    float64 `json:"e18_speedup_x"`
	E18ChunksScanned               int64   `json:"e18_chunks_scanned"`
	E18ChunksPruned                int64   `json:"e18_chunks_pruned"`
	E18RollupIdentical             bool    `json:"e18_rollup_identical"`

	// E19: parallel dataflow — the day-scale rollup and the selective
	// columnar query at Job.Parallelism 1 vs 4, plus concurrent hour
	// sealing. The speedup fields carry an _x suffix on purpose: they
	// depend on the runner's core count, so benchcompare must not gate
	// them; the per-leg _per_sec fields track absolute throughput.
	E19Events             int64   `json:"e19_events"`
	E19Workers            int     `json:"e19_workers"`
	E19SerialRollupPerSec float64 `json:"e19_serial_rollup_events_per_sec"`
	E19ParRollupPerSec    float64 `json:"e19_parallel_rollup_events_per_sec"`
	E19RollupSpeedupX     float64 `json:"e19_rollup_speedup_x"`
	E19SerialQueryPerSec  float64 `json:"e19_serial_query_events_per_sec"`
	E19ParQueryPerSec     float64 `json:"e19_parallel_query_events_per_sec"`
	E19QuerySpeedupX      float64 `json:"e19_query_speedup_x"`
	E19SealChunks         int     `json:"e19_seal_chunks"`
	E19SealEventsPerSec   float64 `json:"e19_seal_events_per_sec"`
	E19RollupIdentical    bool    `json:"e19_rollup_identical"`
	E19QueryIdentical     bool    `json:"e19_query_identical"`

	MergePassP50Ns  int64 `json:"merge_pass_p50_ns"`
	MergePassP95Ns  int64 `json:"merge_pass_p95_ns"`
	MergePassP99Ns  int64 `json:"merge_pass_p99_ns"`
	SpillFlushP50Ns int64 `json:"spill_flush_p50_ns"`
	SpillFlushP95Ns int64 `json:"spill_flush_p95_ns"`
	SpillFlushP99Ns int64 `json:"spill_flush_p99_ns"`

	Telemetry telemetry.Snap `json:"telemetry"`

	measured bool
}

var dfMetrics dataflowMetrics

type env struct {
	fs    *hdfs.FS
	dict  *session.Dictionary
	truth *workload.Truth
	stats session.DayStats
	evs   []events.ClientEvent
	seqs  []string
	cfg   workload.Config
}

func main() {
	users := flag.Int("users", 400, "logged-in user population")
	loggedOut := flag.Int("loggedout", 400, "logged-out sessions (funnel traffic)")
	seed := flag.Int64("seed", 2012, "workload seed")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	benchJSON := flag.String("benchjson", "BENCH_realtime.json",
		"write machine-readable realtime metrics (e14/e15) to this file; empty disables")
	benchJSONDataflow := flag.String("benchjson-dataflow", "BENCH_dataflow.json",
		"write machine-readable dataflow metrics (e16/e17) to this file; empty disables")
	grid := flag.String("grid", "",
		"run the scenario experiment grid in this JSON file (see ci/scenarios/) and exit")
	gridOut := flag.String("grid-out", "", "override the grid's output_dir")
	flag.Parse()

	if *grid != "" {
		if err := runGrid(*grid, *gridOut); err != nil {
			fatal(err)
		}
		return
	}

	cfg := workload.DefaultConfig(day)
	cfg.Users = *users
	cfg.LoggedOutSessions = *loggedOut
	cfg.Seed = *seed

	fmt.Printf("# Experiment harness — %d users, %d logged-out sessions, seed %d\n\n",
		cfg.Users, cfg.LoggedOutSessions, cfg.Seed)

	start := time.Now()
	evs, truth := workload.New(cfg).Generate()
	fs := hdfs.New(0)
	w := warehouse.NewWriter(fs, events.Category)
	w.RollRecords = 4000
	for i := range evs {
		if err := w.Append(&evs[i]); err != nil {
			fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
	dict, _, stats, err := session.BuildDay(fs, day, 3)
	if err != nil {
		fatal(err)
	}
	var seqs []string
	if err := session.ScanDay(fs, day, func(r *session.Record) error {
		seqs = append(seqs, r.Sequence)
		return nil
	}); err != nil {
		fatal(err)
	}
	e := &env{fs: fs, dict: dict, truth: truth, stats: stats, evs: evs, seqs: seqs, cfg: cfg}
	fmt.Printf("corpus: %d events, %d sessions, %d event types (built in %v)\n\n",
		truth.Events, truth.Sessions, dict.Len(), time.Since(start).Round(time.Millisecond))

	experiments := []struct {
		id   string
		name string
		run  func(*env)
	}{
		{"e1", "session-sequence compression (§4.2 'about fifty times smaller')", e1},
		{"e2", "query latency: raw scan vs session sequences (§4.2)", e2},
		{"e3", "session reconstruction: legacy join vs unified vs materialized (§3.1/§4.1)", e3},
		{"e4", "map-task and scan reduction (§4.1 'tens of thousands of mappers')", e4},
		{"e5", "automatic rollup aggregation (§3.2)", e5},
		{"e6", "funnel analytics (§5.3 worked example)", e6},
		{"e7", "CTR/FTR recovery (§5.2, §4.1)", e7},
		{"e8", "n-gram language models over sessions (§5.4)", e8},
		{"e9", "activity collocations, PMI and G² (§5.4)", e9},
		{"e10", "pipeline fault tolerance (§2)", e10},
		{"e11", "Elephant Twin selective queries (§6)", e11},
		{"e12", "dictionary ordering ablation (§4.2 variable-length coding)", e12},
		{"e13", "ad-hoc segment queries via users-table join (§4.1, §5.2)", e13},
		{"e14", "realtime streaming counters: ingest, queries, lambda reconciliation (§6)", e14},
		{"e15", "realtime durability: WAL ingest overhead, crash recovery of ~1M events", e15},
		{"e16", "out-of-core dataflow: day-scale rollups under a spilling memory budget", e16},
		{"e17", "sort-merge dataflow: streaming merge-reduce, ordered groups, external OrderBy", e17},
		{"e18", "columnar sealed-day storage: zone-map pruning and pushdown vs row scan", e18},
		{"e19", "parallel dataflow: multi-core scan/reduce and concurrent sealing vs serial", e19},
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	for _, ex := range experiments {
		if len(want) > 0 && !want[ex.id] {
			continue
		}
		fmt.Printf("## %s — %s\n\n", strings.ToUpper(ex.id), ex.name)
		ex.run(e)
		fmt.Println()
	}

	if metrics.measured && *benchJSON != "" {
		metrics.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
		metrics.IngestApplyP50Ns, metrics.IngestApplyP95Ns, metrics.IngestApplyP99Ns = pcts("realtime.apply.batch.ns")
		metrics.WALAppendP50Ns, metrics.WALAppendP95Ns, metrics.WALAppendP99Ns = pcts("realtime.wal.append.ns")
		metrics.QueryPathSumP50Ns, metrics.QueryPathSumP95Ns, metrics.QueryPathSumP99Ns = pcts("realtime.query.pathsum.ns")
		metrics.Telemetry = telemetry.Snapshot()
		data, err := json.MarshalIndent(&metrics, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("realtime metrics written to %s\n", *benchJSON)
	}
	if dfMetrics.measured && *benchJSONDataflow != "" {
		dfMetrics.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
		dfMetrics.MergePassP50Ns, dfMetrics.MergePassP95Ns, dfMetrics.MergePassP99Ns = pcts("dataflow.stage.merge.ns")
		dfMetrics.SpillFlushP50Ns, dfMetrics.SpillFlushP95Ns, dfMetrics.SpillFlushP99Ns = pcts("dataflow.stage.spill.ns")
		dfMetrics.Telemetry = telemetry.Snapshot()
		data, err := json.MarshalIndent(&dfMetrics, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*benchJSONDataflow, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("dataflow metrics written to %s\n", *benchJSONDataflow)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrunner:", err)
	os.Exit(1)
}

// pcts reads the p50/p95/p99 summary of one telemetry histogram; zeros if
// no experiment that feeds it ran.
func pcts(name string) (p50, p95, p99 int64) {
	s := telemetry.GetHistogram(name).Summary()
	return s.P50, s.P95, s.P99
}

func e1(e *env) {
	fmt.Printf("  raw client-event logs (gzipped):   %10d bytes\n", e.stats.RawBytes)
	fmt.Printf("  materialized session sequences:    %10d bytes\n", e.stats.SeqBytes)
	fmt.Printf("  ratio:                             %10.1fx smaller (paper: ~50x)\n", e.stats.Ratio())
}

func timeIt(fn func()) time.Duration {
	t0 := time.Now()
	fn()
	return time.Since(t0)
}

func e2(e *env) {
	m, err := analytics.MatcherFromPattern("*:profile_click")
	if err != nil {
		fatal(err)
	}
	var rawRep, seqRep analytics.CountReport
	rawJob := dataflow.NewJob("raw", e.fs)
	rawT := timeIt(func() { rawRep, err = analytics.CountRawDay(rawJob, day, m) })
	if err != nil {
		fatal(err)
	}
	seqJob := dataflow.NewJob("seq", e.fs)
	seqT := timeIt(func() { seqRep, err = analytics.CountSequencesDay(seqJob, day, e.dict, m) })
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  query: count *:profile_click events and sessions containing one\n")
	fmt.Printf("  %-22s %12s %12s %10s %12s %10s\n", "path", "events", "sessions", "latency", "bytes-read", "cluster-s")
	rs, ss := rawJob.Stats(), seqJob.Stats()
	fmt.Printf("  %-22s %12d %12d %10v %12d %10.1f\n", "raw logs", rawRep.Events, rawRep.Sessions, rawT.Round(time.Millisecond), rs.BytesRead, rs.ClusterSeconds())
	fmt.Printf("  %-22s %12d %12d %10v %12d %10.1f\n", "session sequences", seqRep.Events, seqRep.Sessions, seqT.Round(time.Millisecond), ss.BytesRead, ss.ClusterSeconds())
	fmt.Printf("  speedup: %.0fx latency, %.0fx bytes, answers identical: %v\n",
		float64(rawT)/float64(seqT), float64(rs.BytesRead)/float64(ss.BytesRead), rawRep == seqRep)
}

func e3(e *env) {
	// Legacy: write the same traffic as application-specific logs.
	lfs := hdfs.New(0)
	type sink struct {
		buf *memBuf
		w   *recordio.GzipWriter
	}
	sinks := map[string]*sink{}
	for i := range e.evs {
		cat, rec := legacy.FromClientEvent(&e.evs[i])
		s := sinks[cat]
		if s == nil {
			mb := &memBuf{}
			s = &sink{buf: mb, w: recordio.NewGzipWriter(mb)}
			sinks[cat] = s
		}
		if err := s.w.Append(rec); err != nil {
			fatal(err)
		}
	}
	dirs := map[string][]string{}
	for cat, s := range sinks {
		if err := s.w.Close(); err != nil {
			fatal(err)
		}
		dir := warehouse.HourDir(cat, day)
		if err := lfs.WriteFile(dir+"/part-00000.gz", s.buf.data); err != nil {
			fatal(err)
		}
		dirs[cat] = []string{dir}
	}

	legacyJob := dataflow.NewJob("legacy", lfs)
	var legacySessions int64
	legacyT := timeIt(func() {
		var err error
		legacySessions, err = legacy.ReconstructSessions(legacyJob, dirs, session.InactivityGap)
		if err != nil {
			fatal(err)
		}
	})

	unifiedJob := dataflow.NewJob("unified", e.fs)
	var unifiedGroups int
	unifiedT := timeIt(func() {
		d, err := unifiedJob.LoadClientEventsDay(day)
		if err != nil {
			fatal(err)
		}
		p, err := d.Project("user_id", "session_id", "name", "timestamp")
		if err != nil {
			fatal(err)
		}
		g, err := p.GroupBy("user_id", "session_id")
		if err != nil {
			fatal(err)
		}
		defer g.Close()
		unifiedGroups, err = g.NumGroups()
		if err != nil {
			fatal(err)
		}
	})

	matJob := dataflow.NewJob("materialized", e.fs)
	var matSessions int64
	matT := timeIt(func() {
		d, err := matJob.LoadSessionSequencesDay(day)
		if err != nil {
			fatal(err)
		}
		matSessions, err = d.Count()
		if err != nil {
			fatal(err)
		}
	})

	fmt.Printf("  task: reconstruct user sessions for one day\n")
	fmt.Printf("  %-34s %10s %12s %14s\n", "approach", "latency", "bytes-read", "shuffle-bytes")
	fmt.Printf("  %-34s %10v %12d %14d   (%d sessions via user-id+time join)\n",
		"legacy app-specific logs (3 joins)", legacyT.Round(time.Millisecond), legacyJob.Stats().BytesRead, legacyJob.Stats().ShuffleBytes, legacySessions)
	fmt.Printf("  %-34s %10v %12d %14d   (%d groups via one group-by)\n",
		"unified client events", unifiedT.Round(time.Millisecond), unifiedJob.Stats().BytesRead, unifiedJob.Stats().ShuffleBytes, unifiedGroups)
	fmt.Printf("  %-34s %10v %12d %14d   (%d sessions pre-materialized)\n",
		"session sequences", matT.Round(time.Millisecond), matJob.Stats().BytesRead, matJob.Stats().ShuffleBytes, matSessions)
	fmt.Printf("  ground truth: %d sessions. The legacy path undercounts: without a\n", e.truth.Sessions)
	fmt.Printf("  consistent session id it joins on user id alone, merging interleaved\n")
	fmt.Printf("  anonymous traffic — the accuracy problem §3.2 says unified logging fixed.\n")
}

func e4(e *env) {
	// Loads are lazy now: driving the scan (Count) is what spawns the map
	// tasks and charges the bytes.
	rawJob := dataflow.NewJob("raw", e.fs)
	rawDS, err := rawJob.LoadClientEventsDay(day)
	if err != nil {
		fatal(err)
	}
	if _, err := rawDS.Count(); err != nil {
		fatal(err)
	}
	seqJob := dataflow.NewJob("seq", e.fs)
	seqDS, err := seqJob.LoadSessionSequencesDay(day)
	if err != nil {
		fatal(err)
	}
	if _, err := seqDS.Count(); err != nil {
		fatal(err)
	}
	rs, ss := rawJob.Stats(), seqJob.Stats()
	fmt.Printf("  %-22s %10s %12s %12s %10s\n", "input", "map-tasks", "bytes", "blocks", "cluster-s")
	fmt.Printf("  %-22s %10d %12d %12d %10.1f\n", "raw logs", rs.MapTasks, rs.BytesRead, rs.BlocksRead, rs.ClusterSeconds())
	fmt.Printf("  %-22s %10d %12d %12d %10.1f\n", "session sequences", ss.MapTasks, ss.BytesRead, ss.BlocksRead, ss.ClusterSeconds())
	fmt.Printf("  reduction: %.0fx tasks, %.0fx bytes\n",
		float64(rs.MapTasks)/float64(ss.MapTasks), float64(rs.BytesRead)/float64(ss.BytesRead))
}

func e5(e *env) {
	j := dataflow.NewJob("rollups", e.fs)
	rollups, err := analytics.Rollups(j, day)
	if err != nil {
		fatal(err)
	}
	perLevel := make([]int64, events.NumRollupLevels)
	rows := make([]int, events.NumRollupLevels)
	for k, n := range rollups {
		perLevel[k.Level] += n
		rows[k.Level]++
	}
	fmt.Printf("  %-54s %8s %12s\n", "rollup schema", "rows", "events")
	labels := []string{
		"(client, page, section, component, element, action)",
		"(client, page, section, component, *, action)",
		"(client, page, section, *, *, action)",
		"(client, page, *, *, *, action)",
		"(client, *, *, *, *, action)",
	}
	for lvl := 0; lvl < events.NumRollupLevels; lvl++ {
		fmt.Printf("  %-54s %8d %12d\n", labels[lvl], rows[lvl], perLevel[lvl])
	}
	fmt.Printf("  every level conserves the %d daily events; example top-level metric:\n", e.truth.Events)
	name := "web:*:*:*:*:profile_click"
	fmt.Printf("    %s = %d (by country & login status in the full table)\n",
		name, analytics.RollupTotal(rollups, 4, name))
}

func e6(e *env) {
	stages := make([]analytics.Matcher, 5)
	stageNames := workload.FunnelStages("web")
	for i, full := range stageNames {
		suffix := full[len("web"):]
		stages[i] = func(name string) bool { return strings.HasSuffix(name, suffix) }
	}
	f := analytics.NewFunnel(e.dict, stages...)
	j := dataflow.NewJob("funnel", e.fs)
	rep, err := analytics.FunnelSequencesDay(j, day, f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  signup funnel over %d sessions (paper's §5.3 output format):\n", rep.Examined)
	for i, n := range rep.Completed {
		fmt.Printf("    (%d, %d)   truth: %d\n", i, n, e.truth.FunnelStage[i])
	}
	fmt.Printf("  measured per-stage continuation vs planted:\n")
	for i := 0; i+1 < len(rep.Completed); i++ {
		got := 0.0
		if rep.Completed[i] > 0 {
			got = float64(rep.Completed[i+1]) / float64(rep.Completed[i])
		}
		fmt.Printf("    stage %d->%d: measured %.3f, planted %.3f\n", i, i+1, got, e.cfg.FunnelContinue[i])
	}
}

func e7(e *env) {
	fmt.Printf("  %-18s %12s %10s %10s %10s\n", "feature", "impressions", "clicks", "ctr", "planted")
	features := []string{workload.FeatureWhoToFollow, workload.FeatureSearch, workload.FeatureTrends, workload.FeatureDiscover}
	for _, feature := range features {
		impSuffix := workload.FeatureImpressionName("web", feature)[len("web"):]
		clkSuffix := workload.FeatureClickName("web", feature)[len("web"):]
		imp := func(n string) bool { return strings.HasSuffix(n, impSuffix) }
		clk := func(n string) bool { return strings.HasSuffix(n, clkSuffix) }
		rep, err := analytics.RateOverSequences(e.fs, day, e.dict, imp, clk)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %-18s %12d %10d %10.3f %10.3f\n", feature, rep.Impressions, rep.Actions, rep.Rate(), e.cfg.CTR[feature])
	}
	// FTR for who-to-follow.
	impSuffix := workload.FeatureImpressionName("web", workload.FeatureWhoToFollow)[len("web"):]
	folSuffix := workload.FeatureFollowName("web", workload.FeatureWhoToFollow)[len("web"):]
	rep, err := analytics.RateOverSequences(e.fs, day, e.dict,
		func(n string) bool { return strings.HasSuffix(n, impSuffix) },
		func(n string) bool { return strings.HasSuffix(n, folSuffix) })
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  %-18s %12d %10d %10.3f %10.3f  (follow-through)\n",
		"who_to_follow FTR", rep.Impressions, rep.Actions, rep.Rate(), e.cfg.FTR[workload.FeatureWhoToFollow])
}

func e8(e *env) {
	split := len(e.seqs) * 4 / 5
	train, test := e.seqs[:split], e.seqs[split:]
	fmt.Printf("  perplexity of held-out sessions by n-gram order (%d train / %d test):\n", len(train), len(test))
	fmt.Printf("  %8s %12s %14s\n", "order", "perplexity", "cross-entropy")
	for order := 1; order <= 4; order++ {
		m := ngram.NewModel(order)
		m.TrainAll(train)
		h, err := m.CrossEntropy(test)
		if err != nil {
			fatal(err)
		}
		p, err := m.Perplexity(test)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %8d %12.2f %14.3f\n", order, p, h)
	}
	fmt.Printf("  decreasing perplexity = real temporal signal in user behavior (§5.4)\n")
}

func e9(e *env) {
	s := colloc.Collect(e.seqs)
	fmt.Printf("  top adjacent-event collocates by Dunning G² (min count 5):\n")
	fmt.Printf("  %10s %8s %10s  %s\n", "G²", "count", "PMI", "pair")
	for _, p := range s.TopLLR(5, 5) {
		a, _ := e.dict.Name(p.A)
		b, _ := e.dict.Name(p.B)
		fmt.Printf("  %10.1f %8d %10.2f  %s -> %s\n", p.Score, p.Count, s.PMI(p.A, p.B), a, b)
	}
	ex, _ := e.dict.Symbol("web:home:timeline:stream:tweet:expand")
	pc, _ := e.dict.Symbol("web:home:timeline:stream:avatar:profile_click")
	fmt.Printf("  planted pair (expand -> profile_click, p=%.2f): G²=%.1f, PMI=%.2f\n",
		e.cfg.CollocationProb, s.LLR(ex, pc), s.PMI(ex, pc))
}

func e10(e *env) {
	// A compact replay of the integration scenario with counters printed.
	clock := zk.NewManualClock(day)
	dc1, err := scribe.NewDatacenter("dc1", hdfs.New(0), clock, 2, 3, 11)
	if err != nil {
		fatal(err)
	}
	dc2, err := scribe.NewDatacenter("dc2", hdfs.New(0), clock, 2, 3, 22)
	if err != nil {
		fatal(err)
	}
	dcs := []*scribe.Datacenter{dc1, dc2}
	wh := hdfs.New(0)
	mover := logmover.New(wh,
		logmover.Source{Datacenter: "dc1", FS: dc1.Staging},
		logmover.Source{Datacenter: "dc2", FS: dc2.Staging})
	i := 0
	var accepted int64
	for hr := 0; hr < 24; hr++ {
		hour := day.Add(time.Duration(hr) * time.Hour)
		if hr == 6 {
			_ = dc1.Aggregators[0].Stop() // graceful restart
		}
		if hr == 10 {
			dc2.Staging.SetAvailable(false)
		}
		if hr == 12 {
			dc2.Staging.SetAvailable(true)
		}
		for ; i < len(e.evs) && e.evs[i].Timestamp < hour.Add(time.Hour).UnixMilli(); i++ {
			ev := &e.evs[i]
			dc := dcs[int(ev.UserID+int64(len(ev.SessionID)))%2]
			dc.Daemons[int(ev.Timestamp)%len(dc.Daemons)].Log(events.Category, ev.Marshal())
			accepted++
		}
		clock.Advance(time.Hour)
		for _, dc := range dcs {
			_ = dc.SealHour([]string{events.Category}, hour) // fails during outage; resealed below
		}
		if _, err := mover.MoveAllSealed(); err != nil {
			fatal(err)
		}
	}
	for hr := 0; hr < 24; hr++ {
		for _, dc := range dcs {
			if err := dc.SealHour([]string{events.Category}, day.Add(time.Duration(hr)*time.Hour)); err != nil {
				fatal(err)
			}
		}
	}
	if _, err := mover.MoveAllSealed(); err != nil {
		fatal(err)
	}
	var inWarehouse int64
	if err := warehouse.ScanDay(wh, events.Category, day, func(*events.ClientEvent) error {
		inWarehouse++
		return nil
	}); err != nil {
		fatal(err)
	}
	var redisc, sendFail, flushFail, dropped int64
	for _, dc := range dcs {
		for _, d := range dc.Daemons {
			s := d.Stats()
			redisc += s.Rediscoveries
			sendFail += s.SendFailures
		}
		for _, a := range dc.Aggregators {
			s := a.Stats()
			flushFail += s.FlushFailures
			dropped += s.MessagesDropped
		}
	}
	fmt.Printf("  faults injected: 1 aggregator restart (hour 6), staging outage hours 10-12\n")
	fmt.Printf("  accepted by daemons:   %d\n", accepted)
	fmt.Printf("  landed in warehouse:   %d (exactly once: %v)\n", inWarehouse, inWarehouse == accepted)
	fmt.Printf("  zk rediscoveries: %d, send failures: %d, staging flush failures: %d, dropped: %d\n",
		redisc, sendFail, flushFail, dropped)
	mv := mover.Audits()
	var filesIn, filesOut int
	for _, a := range mv {
		filesIn += a.FilesIn
		filesOut += a.FilesOut
	}
	fmt.Printf("  log mover: %d hourly moves, %d staging files merged into %d warehouse files\n",
		len(mv), filesIn, filesOut)
}

func e11(e *env) {
	if _, err := twin.IndexDay(e.fs, events.Category, day); err != nil {
		fatal(err)
	}
	defer func() {
		if _, err := twin.DropIndexes(e.fs, warehouse.CategoryDir(events.Category)); err != nil {
			fatal(err)
		}
	}()
	// Selectivity sweep: from a common event to a very rare one.
	targets := []struct {
		label string
		match func(string) bool
	}{
		{"~common: page opens", func(n string) bool { return strings.HasSuffix(n, ":page:open") }},
		{"selective: funnel complete", func(n string) bool { return strings.HasSuffix(n, ":signup:flow:step:complete:view") }},
		{"rare: ipad funnel complete", func(n string) bool { return n == "ipad:signup:flow:step:complete:view" }},
	}
	fmt.Printf("  %-28s %10s %12s %12s %12s\n", "query", "matches", "files-read", "files-skip", "bytes-read")
	for _, tgt := range targets {
		f := &twin.IndexedFormat{Match: tgt.match}
		j := dataflow.NewJob("twin", e.fs)
		d, err := j.LoadDirs(dataflow.HourDirs(e.fs, events.Category, day), f)
		if err != nil {
			fatal(err)
		}
		matches, err := d.Count()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %-28s %10d %12d %12d %12d\n", tgt.label, matches, j.Stats().FilesRead, f.SkippedFiles(), j.Stats().BytesRead)
	}
	full := dataflow.NewJob("full", e.fs)
	fullDS, err := full.LoadClientEventsDay(day)
	if err != nil {
		fatal(err)
	}
	if _, err := fullDS.Count(); err != nil {
		fatal(err)
	}
	fmt.Printf("  %-28s %10s %12d %12d %12d\n", "full scan baseline", "-", full.Stats().FilesRead, 0, full.Stats().BytesRead)
}

func e12(e *env) {
	// Re-encode the day's sessions under shuffled code-point assignment.
	names := e.dict.Names()
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(len(names))
	h := make(map[string]int64, len(names))
	for i, name := range names {
		h[name] = int64(len(names) - perm[i])
	}
	shuffled, err := session.Build(h)
	if err != nil {
		fatal(err)
	}
	var freqBytes, shufBytes int64
	for _, seq := range e.seqs {
		ns, err := e.dict.Decode(seq)
		if err != nil {
			fatal(err)
		}
		freqBytes += int64(len(seq))
		enc, err := shuffled.Encode(ns)
		if err != nil {
			fatal(err)
		}
		shufBytes += int64(len(enc))
	}
	fmt.Printf("  UTF-8 bytes of all %d session sequences:\n", len(e.seqs))
	fmt.Printf("    frequency-ordered dictionary: %10d\n", freqBytes)
	fmt.Printf("    shuffled dictionary:          %10d\n", shufBytes)
	fmt.Printf("    saving from frequency order:  %9.1f%%\n", 100*(1-float64(freqBytes)/float64(shufBytes)))
}

func e13(e *env) {
	if err := users.Write(e.fs, e.truth); err != nil {
		fatal(err)
	}
	uj := dataflow.NewJob("users", e.fs)
	usersDS, err := uj.Load(users.Dir, users.Format())
	if err != nil {
		fatal(err)
	}
	impSuffix := workload.FeatureImpressionName("web", workload.FeatureWhoToFollow)[len("web"):]
	clkSuffix := workload.FeatureClickName("web", workload.FeatureWhoToFollow)[len("web"):]
	imp := func(n string) bool { return strings.HasSuffix(n, impSuffix) }
	clk := func(n string) bool { return strings.HasSuffix(n, clkSuffix) }
	fmt.Printf("  who-to-follow CTR per user segment (join users table + select, then count):\n")
	fmt.Printf("  %-10s %12s %10s %10s\n", "segment", "impressions", "clicks", "ctr")
	for _, country := range []string{"us", "jp", "uk", "br", "in"} {
		j := dataflow.NewJob("segment-"+country, e.fs)
		rep, err := analytics.RateForSegment(j, day, e.dict, imp, clk, usersDS, analytics.ColumnEquals("country", country))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %-10s %12d %10d %10.3f\n", country, rep.Impressions, rep.Actions, rep.Rate())
	}
	fmt.Printf("  planted CTR %.3f is country-independent; every sizable segment recovers it\n",
		e.cfg.CTR[workload.FeatureWhoToFollow])
}

func e14(e *env) {
	// Ingest throughput: replay the day through the sharded counters until
	// at least one million events have been fanned out, four producers in
	// parallel — the scale the subsystem is built for.
	const producers = 4
	target := 1_000_000
	reps := (target + len(e.evs) - 1) / len(e.evs)
	rt := realtime.New(realtime.Config{Shards: 4})
	defer rt.Close()
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			b := rt.NewBatcher()
			for r := p; r < reps; r += producers {
				for i := range e.evs {
					b.Add(&e.evs[i])
				}
			}
			b.Flush()
		}(p)
	}
	wg.Wait()
	rt.Sync()
	ingestT := time.Since(start)
	runtime.ReadMemStats(&msAfter)
	st := rt.Stats()
	allocsPerEvent := float64(msAfter.Mallocs-msBefore.Mallocs) / float64(st.Observed)
	fmt.Printf("  ingest: %d events (day replayed %dx) through %d shards in %v — %.0f events/s, %.3f allocs/event\n",
		st.Observed, reps, rt.Shards(), ingestT.Round(time.Millisecond), float64(st.Observed)/ingestT.Seconds(), allocsPerEvent)
	fmt.Printf("  backpressure: %d full-queue waits; dropped-old %d, decode errors %d\n",
		st.QueueFull, st.DroppedOld, st.DecodeErrors)
	metrics.measured = true
	metrics.Events = st.Observed
	metrics.IngestEventsPerSec = float64(st.Observed) / ingestT.Seconds()
	metrics.IngestAllocsPerEvent = allocsPerEvent

	// Query latency over the populated windows.
	end := day.Add(24 * time.Hour)
	lat := func(name string, n int, fn func()) {
		t0 := time.Now()
		for i := 0; i < n; i++ {
			fn()
		}
		fmt.Printf("  %-34s %10v/op\n", name, (time.Since(t0) / time.Duration(n)).Round(time.Microsecond))
	}
	lat("point lookup PathSum(web, day)", 200, func() { rt.PathSum("web", day, end) })
	lat("windowed sum PathSum(web, 1h)", 200, func() { rt.PathSum("web", day.Add(12*time.Hour), day.Add(13*time.Hour)) })
	lat("prefix top-5 TopK(web:home)", 50, func() { rt.TopK("web:home", 5, day, end) })
	lat("rollup total (level 4)", 200, func() { rt.RollupTotal(4, "web:*:*:*:*:profile_click", day, end) })
	fmt.Printf("  consistency: PathSum(web) = %d over %d replays (per-replay %d)\n",
		rt.PathSum("web", day, end), reps, rt.PathSum("web", day, end)/int64(reps))

	// Lambda reconciliation: the streaming path must agree exactly with
	// the batch rollup job on a sealed day.
	start = time.Now()
	rep, err := realtime.Reconcile(e.fs, day, realtime.Config{Shards: 4})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  %s (replay+diff in %v)\n", rep, time.Since(start).Round(time.Millisecond))
	metrics.ReconcileOK = rep.OK()
}

func e15(e *env) {
	// The durability question: what does write-ahead logging cost the
	// ingest hot path, and how fast does a killed counter come back? Same
	// setup as E14 — replay the day until ~1M events, four producers —
	// once memory-only and once with the WAL on, then kill the durable
	// counter and time realtime.Open.
	const producers = 4
	target := 1_000_000
	reps := (target + len(e.evs) - 1) / len(e.evs)
	ingest := func(rt *realtime.Counter) (int64, time.Duration) {
		start := time.Now()
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				b := rt.NewBatcher()
				for r := p; r < reps; r += producers {
					for i := range e.evs {
						b.Add(&e.evs[i])
					}
				}
				b.Flush()
			}(p)
		}
		wg.Wait()
		rt.Sync()
		return rt.Stats().Observed, time.Since(start)
	}

	mem := realtime.New(realtime.Config{Shards: 4})
	memN, memT := ingest(mem)
	mem.Close()
	memRate := float64(memN) / memT.Seconds()
	fmt.Printf("  %-34s %12d events %10v %12.0f events/s\n", "WAL off (memory only)", memN, memT.Round(time.Millisecond), memRate)

	dir, err := os.MkdirTemp("", "benchrunner-wal-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	// Snapshots disabled for the run so recovery replays the full WAL —
	// the worst case the snapshotter normally bounds.
	cfg := realtime.Config{Shards: 4, SnapshotEvery: time.Hour}
	dur, err := realtime.Open(dir, cfg)
	if err != nil {
		fatal(err)
	}
	durN, durT := ingest(dur)
	durRate := float64(durN) / durT.Seconds()
	st := dur.Stats()
	fmt.Printf("  %-34s %12d events %10v %12.0f events/s\n", "WAL on (batch fsync)", durN, durT.Round(time.Millisecond), durRate)
	fmt.Printf("  overhead: %.2fx slower with the WAL (%d batches, %.1f MiB logged, %d fsyncs, %.1f B/event)\n",
		memRate/durRate, st.WALBatches, float64(st.WALBytes)/(1<<20), st.Fsyncs, float64(st.WALBytes)/float64(durN))

	dur.Crash()
	start := time.Now()
	rec, err := realtime.Open(dir, cfg)
	if err != nil {
		fatal(err)
	}
	recT := time.Since(start)
	end := day.Add(24 * time.Hour)
	fmt.Printf("  crash recovery: %d events rebuilt in %v (%.0f events/s replay), exact: %v\n",
		rec.Stats().Observed, recT.Round(time.Millisecond),
		float64(rec.Stats().Observed)/recT.Seconds(), rec.Stats().Observed == durN)
	fmt.Printf("  recovered PathSum(web) = %d (live engine served %d)\n",
		rec.PathSum("web", day, end), mem.PathSum("web", day, end))
	rec.Close()

	metrics.measured = true
	if metrics.Events == 0 {
		metrics.Events = durN
	}
	metrics.WALIngestEventsPerSec = durRate
	metrics.WALBytesPerEvent = float64(st.WALBytes) / float64(durN)
	metrics.WALOverheadX = memRate / durRate
	metrics.RecoveryMillis = float64(recT.Milliseconds())
	metrics.RecoveryEventsPerSec = float64(durN) / recT.Seconds()
}

func e16(e *env) {
	// The out-of-core question: can the batch vertical roll up a synthetic
	// day an order of magnitude past the shared corpus while the group-by
	// is forbidden from holding the shuffle in memory? The run executes
	// twice — once under a deliberately tiny Job.MemoryBudget (forcing the
	// hash partitions to spill and merge partition-at-a-time) and once
	// unbudgeted — and the two rollup tables must be identical.
	cfg := e.cfg
	cfg.Users = e.cfg.Users * 12
	cfg.LoggedOutSessions = e.cfg.LoggedOutSessions * 12
	cfg.Seed = e.cfg.Seed + 16
	bigFS, truth := synthesizeDay(cfg)
	scale := float64(truth.Events) / float64(e.truth.Events)
	fmt.Printf("  synthetic day: %d events (%.1fx the shared E-series corpus)\n", truth.Events, scale)
	if scale < 10 {
		fatal(fmt.Errorf("e16: synthetic day only %.1fx the shared corpus, want >= 10x", scale))
	}

	const budget = 32 << 10 // 32 KiB: far below the shuffle, so spilling is mandatory
	spillDir, err := os.MkdirTemp("", "benchrunner-spill-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(spillDir)

	bj := dataflow.NewJob("rollups-budget", bigFS)
	bj.MemoryBudget = budget
	bj.SpillDir = spillDir
	var budgeted map[analytics.RollupKey]int64
	bt := timeIt(func() {
		var err error
		budgeted, err = analytics.Rollups(bj, day)
		if err != nil {
			fatal(err)
		}
	})
	bst := bj.Stats()

	mj := dataflow.NewJob("rollups-inmem", bigFS)
	var inmem map[analytics.RollupKey]int64
	mt := timeIt(func() {
		var err error
		inmem, err = analytics.Rollups(mj, day)
		if err != nil {
			fatal(err)
		}
	})

	identical := len(budgeted) == len(inmem)
	if identical {
		for k, v := range inmem {
			if budgeted[k] != v {
				identical = false
				break
			}
		}
	}
	fmt.Printf("  %-26s %10s %12s %14s %10s\n", "rollup run", "latency", "rows", "spilled-bytes", "events/s")
	fmt.Printf("  %-26s %10v %12d %14d %10.0f\n", fmt.Sprintf("budget %d KiB", budget>>10),
		bt.Round(time.Millisecond), len(budgeted), bst.SpilledBytes, float64(truth.Events)/bt.Seconds())
	fmt.Printf("  %-26s %10v %12d %14d %10.0f\n", "unbudgeted (in-memory)",
		mt.Round(time.Millisecond), len(inmem), mj.Stats().SpilledBytes, float64(truth.Events)/mt.Seconds())
	fmt.Printf("  peak-RSS proxy under budget: %d spilled partitions, %d flush waves, %d spilled records, %d merge passes\n",
		bst.SpilledPartitions, bst.SpillFlushes, bst.SpilledRecords, bst.MergePasses)
	fmt.Printf("  rollup tables identical: %v\n", identical)
	if !identical {
		fatal(fmt.Errorf("e16: spilling and in-memory rollups diverged"))
	}
	if bst.SpilledPartitions < 2 {
		fatal(fmt.Errorf("e16: only %d spilled partitions — the budget did not force external grouping", bst.SpilledPartitions))
	}
	if mj.Stats().SpilledBytes != 0 {
		fatal(fmt.Errorf("e16: unbudgeted run spilled"))
	}

	// The raw sessionization group-by at the same scale — the operator the
	// budget really protects, since its shuffle input is every event (the
	// rollup job's combiner already shrank its shuffle to distinct rows).
	countGroups := func(budgeted bool) (int, dataflow.Stats) {
		j := dataflow.NewJob("sessions", bigFS)
		if budgeted {
			j.MemoryBudget = budget
			j.SpillDir = spillDir
		}
		d, err := j.LoadClientEventsDay(day)
		if err != nil {
			fatal(err)
		}
		p, err := d.Project("user_id", "session_id")
		if err != nil {
			fatal(err)
		}
		g, err := p.GroupBy("user_id", "session_id")
		if err != nil {
			fatal(err)
		}
		defer g.Close()
		n, err := g.NumGroups()
		if err != nil {
			fatal(err)
		}
		return n, j.Stats()
	}
	bg, bgs := countGroups(true)
	mg, _ := countGroups(false)
	fmt.Printf("  session group-by: %d groups budgeted vs %d in-memory (equal: %v); spilled %.1f MiB over %d partitions\n",
		bg, mg, bg == mg, float64(bgs.SpilledBytes)/(1<<20), bgs.SpilledPartitions)
	if bg != mg {
		fatal(fmt.Errorf("e16: session group-by diverged under budget"))
	}
	if bgs.SpilledPartitions < 2 {
		fatal(fmt.Errorf("e16: session group-by spilled %d partitions, want >= 2", bgs.SpilledPartitions))
	}

	dfMetrics.measured = true
	dfMetrics.Events = truth.Events
	dfMetrics.BaselineEvents = e.truth.Events
	dfMetrics.ScaleX = scale
	dfMetrics.MemoryBudgetBytes = budget
	dfMetrics.RollupRows = len(budgeted)
	dfMetrics.RollupEventsPerSec = float64(truth.Events) / bt.Seconds()
	dfMetrics.InMemRollupEventsPerSec = float64(truth.Events) / mt.Seconds()
	dfMetrics.SpilledBytes = bst.SpilledBytes + bgs.SpilledBytes
	dfMetrics.SpilledRecords = bst.SpilledRecords + bgs.SpilledRecords
	dfMetrics.SpillFlushes = bst.SpillFlushes + bgs.SpillFlushes
	dfMetrics.SpilledPartitions = bst.SpilledPartitions + bgs.SpilledPartitions
	dfMetrics.MergePasses = bst.MergePasses + bgs.MergePasses
	dfMetrics.ShuffleBytes = bst.ShuffleBytes + bgs.ShuffleBytes
	dfMetrics.SessionGroups = bg
	dfMetrics.Identical = identical
}

// synthesizeDay streams a synthetic day straight into a fresh warehouse —
// generator events flow into the writer one at a time, so day scale is no
// longer bounded by a materialized []events.ClientEvent.
func synthesizeDay(cfg workload.Config) (*hdfs.FS, *workload.Truth) {
	fs := hdfs.New(0)
	w := warehouse.NewWriter(fs, events.Category)
	w.RollRecords = 4000
	truth, err := workload.New(cfg).GenerateTo(func(ev *events.ClientEvent) error {
		return w.Append(ev)
	})
	if err != nil {
		fatal(err)
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
	return fs, truth
}

func e17(e *env) {
	// The sort-merge question: with the shuffle spilling *sorted runs* and
	// the reduce side a streaming k-way merge, reduce memory is bounded by
	// run fan-in instead of group count — while producing byte-identical
	// relations. Three legs, all on a streamed synthetic day an order of
	// magnitude past the shared corpus, all under a deliberately tiny
	// budget: the §3.2 rollup table (vs the in-memory path), an
	// ordered-group sessionization (GroupByOrdered delivers each session's
	// events time-sorted, no reducer re-sort), and a day-scale external
	// OrderBy that never materializes its input.
	cfg := e.cfg
	cfg.Users = e.cfg.Users * 12
	cfg.LoggedOutSessions = e.cfg.LoggedOutSessions * 12
	cfg.Seed = e.cfg.Seed + 17
	bigFS, truth := synthesizeDay(cfg)
	fmt.Printf("  synthetic day: %d events (%.1fx the shared corpus), streamed into the warehouse\n",
		truth.Events, float64(truth.Events)/float64(e.truth.Events))

	const budget = 32 << 10
	spillDir, err := os.MkdirTemp("", "benchrunner-sortmerge-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(spillDir)
	budgeted := func(name string) *dataflow.Job {
		j := dataflow.NewJob(name, bigFS)
		j.MemoryBudget = budget
		j.SpillDir = spillDir
		return j
	}

	// Leg 1: rollups under budget vs in memory — byte-identical tables.
	bj := budgeted("rollups-sortmerge")
	var bRoll map[analytics.RollupKey]int64
	bt := timeIt(func() {
		var err error
		bRoll, err = analytics.Rollups(bj, day)
		if err != nil {
			fatal(err)
		}
	})
	mj := dataflow.NewJob("rollups-inmem", bigFS)
	var mRoll map[analytics.RollupKey]int64
	mt := timeIt(func() {
		var err error
		mRoll, err = analytics.Rollups(mj, day)
		if err != nil {
			fatal(err)
		}
	})
	rollIdentical := len(bRoll) == len(mRoll)
	if rollIdentical {
		for k, v := range mRoll {
			if bRoll[k] != v {
				rollIdentical = false
				break
			}
		}
	}
	bst := bj.Stats()
	fmt.Printf("  rollups: budgeted %v vs in-memory %v over %d rows; identical: %v\n",
		bt.Round(time.Millisecond), mt.Round(time.Millisecond), len(bRoll), rollIdentical)
	fmt.Printf("  reduce memory proxy: %d sorted runs spilled, %d run cursors merged, peak fan-in %d (one buffered tuple per run)\n",
		bst.SpillRuns, bst.MergeRuns, bst.PeakRunFanIn)
	if !rollIdentical {
		fatal(fmt.Errorf("e17: sort-merge and in-memory rollups diverged"))
	}
	if bst.SpillRuns == 0 || bst.PeakRunFanIn < 2 {
		fatal(fmt.Errorf("e17: budget did not force a multi-run merge (runs=%d fan-in=%d)", bst.SpillRuns, bst.PeakRunFanIn))
	}

	// Leg 2: ordered-group sessionization — the raw-log count with the
	// shuffle's secondary sort, budgeted vs in-memory.
	m, err := analytics.MatcherFromPattern("*:profile_click")
	if err != nil {
		fatal(err)
	}
	sj := budgeted("sessionize-sortmerge")
	var bRep analytics.CountReport
	sbt := timeIt(func() {
		var err error
		bRep, err = analytics.CountRawDay(sj, day, m)
		if err != nil {
			fatal(err)
		}
	})
	smj := dataflow.NewJob("sessionize-inmem", bigFS)
	var mRep analytics.CountReport
	smt := timeIt(func() {
		var err error
		mRep, err = analytics.CountRawDay(smj, day, m)
		if err != nil {
			fatal(err)
		}
	})
	fmt.Printf("  ordered sessionization: %d sessions, %d matching events; budgeted %v (%.0f events/s) vs in-memory %v; identical: %v\n",
		bRep.TotalSessions, bRep.Events, sbt.Round(time.Millisecond),
		float64(truth.Events)/sbt.Seconds(), smt.Round(time.Millisecond), bRep == mRep)
	if bRep != mRep {
		fatal(fmt.Errorf("e17: ordered-group sessionization diverged under budget"))
	}
	if sj.Stats().SpillRuns == 0 {
		fatal(fmt.Errorf("e17: sessionization never spilled a sorted run"))
	}

	// Leg 3: external OrderBy over the day (projected first, §4.1) — the
	// sort streams through sorted runs, never through Tuples().
	oj := budgeted("orderby-sortmerge")
	d, err := oj.LoadClientEventsDay(day)
	if err != nil {
		fatal(err)
	}
	p, err := d.Project("timestamp", "name", "user_id")
	if err != nil {
		fatal(err)
	}
	var sorted *dataflow.Dataset
	var rows int64
	ordered := true
	ot := timeIt(func() {
		var err error
		sorted, err = p.OrderBy("timestamp", true)
		if err != nil {
			fatal(err)
		}
		prev := int64(0)
		if err := sorted.Each(func(t dataflow.Tuple) error {
			ts := t[0].(int64)
			if ts < prev {
				ordered = false
			}
			prev = ts
			rows++
			return nil
		}); err != nil {
			fatal(err)
		}
	})
	ost := oj.Stats()
	if err := sorted.Close(); err != nil {
		fatal(err)
	}
	complete := rows == truth.Events
	fmt.Printf("  external OrderBy: %d rows in %v (%.0f events/s), %.1f MiB of sorted runs, fan-in %d; ordered: %v, complete: %v\n",
		rows, ot.Round(time.Millisecond), float64(rows)/ot.Seconds(),
		float64(ost.SpilledBytes)/(1<<20), ost.PeakRunFanIn, ordered, complete)
	if !ordered || !complete {
		fatal(fmt.Errorf("e17: external OrderBy produced a wrong relation (ordered=%v rows=%d want=%d)", ordered, rows, truth.Events))
	}
	if ost.SpilledRecords == 0 {
		fatal(fmt.Errorf("e17: OrderBy under budget never spilled — not an external sort"))
	}

	dfMetrics.measured = true
	dfMetrics.E17Events = truth.Events
	dfMetrics.E17SpillRuns = bst.SpillRuns
	dfMetrics.E17MergeRuns = bst.MergeRuns
	dfMetrics.E17PeakRunFanIn = bst.PeakRunFanIn
	dfMetrics.E17RollupIdentical = rollIdentical
	dfMetrics.SessionizeEventsPerSec = float64(truth.Events) / sbt.Seconds()
	dfMetrics.InMemSessionizePerSec = float64(truth.Events) / smt.Seconds()
	dfMetrics.OrderByEventsPerSec = float64(rows) / ot.Seconds()
	dfMetrics.OrderBySpilledBytes = ost.SpilledBytes
	dfMetrics.OrderedSessionsIdentical = bRep == mRep
	dfMetrics.OrderBySortedAndComplete = ordered && complete
}

func e18(e *env) {
	// The columnar question: once a warehouse day is sealed into column
	// chunks, what does a selective query stop paying for? Four legs over
	// a streamed synthetic day: (1) the full §3.2 rollup over rows, (2)
	// the same selective query over rows — filter and project applied
	// tuple-side, every byte of the day decoded — then the day is sealed
	// and (3) the rollup re-runs over chunks to prove byte-identical
	// output, and (4) the selective query re-runs with the name/time
	// predicate pruning whole chunks via zone maps and the projection
	// reading only its column files.
	cfg := e.cfg
	cfg.Users = e.cfg.Users * 12
	cfg.LoggedOutSessions = e.cfg.LoggedOutSessions * 12
	cfg.Seed = e.cfg.Seed + 18
	bigFS, truth := synthesizeDay(cfg)
	fmt.Printf("  synthetic day: %d events (%.1fx the shared corpus), streamed into the warehouse\n",
		truth.Events, float64(truth.Events)/float64(e.truth.Events))

	// The selective query: web home-page traffic in a six-hour window,
	// three columns of eight. Head-anchored name prefix + time range is
	// exactly the shape the chunk zone maps can prune.
	sel := dataflow.Selection{
		Columns:     []string{"name", "user_id", "timestamp"},
		NamePattern: "web:home:*",
		TimeMin:     day.Add(9 * time.Hour).UnixMilli(),
		TimeMax:     day.Add(15 * time.Hour).UnixMilli(),
	}
	dirs := dataflow.HourDirs(bigFS, events.Category, day)
	scanSelective := func(d *dataflow.Dataset, err error) (rows int64, sum int64) {
		if err != nil {
			fatal(err)
		}
		if err := d.Each(func(t dataflow.Tuple) error {
			rows++
			sum += t[1].(int64)
			return nil
		}); err != nil {
			fatal(err)
		}
		if err := d.Close(); err != nil {
			fatal(err)
		}
		return rows, sum
	}

	// Leg 1: full rollups over rows (the day is not sealed yet, so the
	// pushdown-aware load falls through to the row files).
	rj := dataflow.NewJob("e18-rollups-rows", bigFS)
	var rowRoll map[analytics.RollupKey]int64
	rt := timeIt(func() {
		var err error
		rowRoll, err = analytics.Rollups(rj, day)
		if err != nil {
			fatal(err)
		}
	})

	// Leg 2: the selective query over rows — ClientEventFormat is not
	// pushdown-aware, so filter and projection run tuple-side after a
	// full decode.
	srj := dataflow.NewJob("e18-selective-rows", bigFS)
	var rowN, rowSum int64
	srt := timeIt(func() {
		d, err := srj.LoadDirsSelective(dirs, dataflow.ClientEventFormat{}, sel)
		rowN, rowSum = scanSelective(d, err)
	})
	rowBytes := srj.Stats().BytesRead

	// Seal the day: every hour re-encoded into column chunks alongside
	// the row files (which stay authoritative for non-pushdown readers).
	var chunks int
	st := timeIt(func() {
		var err error
		chunks, err = columnar.SealDay(bigFS, events.Category, day)
		if err != nil {
			fatal(err)
		}
	})
	fmt.Printf("  sealed: %d column chunks across the day in %v\n", chunks, st.Round(time.Millisecond))

	// Leg 3: the same rollup over chunks — byte-identical table or bust.
	cj := dataflow.NewJob("e18-rollups-columnar", bigFS)
	var colRoll map[analytics.RollupKey]int64
	ct := timeIt(func() {
		var err error
		colRoll, err = analytics.Rollups(cj, day)
		if err != nil {
			fatal(err)
		}
	})
	rollIdentical := len(rowRoll) == len(colRoll)
	if rollIdentical {
		for k, v := range rowRoll {
			if colRoll[k] != v {
				rollIdentical = false
				break
			}
		}
	}
	fmt.Printf("  full rollups: rows %v (%.0f events/s) vs columnar %v (%.0f events/s) over %d rows; identical: %v\n",
		rt.Round(time.Millisecond), float64(truth.Events)/rt.Seconds(),
		ct.Round(time.Millisecond), float64(truth.Events)/ct.Seconds(), len(colRoll), rollIdentical)
	if !rollIdentical {
		fatal(fmt.Errorf("e18: columnar and row rollups diverged"))
	}

	// Leg 4: the selective query over chunks, zone maps pruning.
	scanned0 := telemetry.GetCounter("columnar.chunks.scanned").Value()
	pruned0 := telemetry.GetCounter("columnar.chunks.pruned").Value()
	pj := dataflow.NewJob("e18-selective-columnar", bigFS)
	var colN, colSum int64
	pt := timeIt(func() {
		d, err := columnar.LoadDay(pj, day, sel)
		colN, colSum = scanSelective(d, err)
	})
	prunedBytes := pj.Stats().BytesRead
	chunksScanned := telemetry.GetCounter("columnar.chunks.scanned").Value() - scanned0
	chunksPruned := telemetry.GetCounter("columnar.chunks.pruned").Value() - pruned0

	if colN != rowN || colSum != rowSum {
		fatal(fmt.Errorf("e18: selective query diverged (columnar %d rows sum %d, rows %d rows sum %d)",
			colN, colSum, rowN, rowSum))
	}
	bytesRatio := float64(rowBytes) / float64(prunedBytes)
	speedup := srt.Seconds() / pt.Seconds()
	fmt.Printf("  selective query (%d of %d events): rows %v reading %.1f MiB vs pruned+projected %v reading %.1f MiB\n",
		rowN, truth.Events, srt.Round(time.Millisecond), float64(rowBytes)/(1<<20),
		pt.Round(time.Millisecond), float64(prunedBytes)/(1<<20))
	fmt.Printf("  pruning: %d chunks scanned, %d pruned by zone maps; %.1fx fewer bytes, %.1fx faster\n",
		chunksScanned, chunksPruned, bytesRatio, speedup)
	if chunksPruned == 0 || chunksScanned == 0 {
		fatal(fmt.Errorf("e18: zone maps pruned %d and scanned %d chunks — pruning not exercised", chunksPruned, chunksScanned))
	}
	if bytesRatio < 5 {
		fatal(fmt.Errorf("e18: pruned path read only %.1fx fewer bytes, want >= 5x", bytesRatio))
	}
	if speedup < 2 {
		fatal(fmt.Errorf("e18: pruned path only %.1fx faster, want >= 2x", speedup))
	}

	dfMetrics.measured = true
	dfMetrics.E18Events = truth.Events
	dfMetrics.E18Chunks = chunks
	dfMetrics.E18RowScanEventsPerSec = float64(truth.Events) / rt.Seconds()
	dfMetrics.E18ColumnarScanEventsPerSec = float64(truth.Events) / ct.Seconds()
	dfMetrics.E18SelectiveRowEventsPerSec = float64(truth.Events) / srt.Seconds()
	dfMetrics.E18SelectivePrunedEventsPerSec = float64(truth.Events) / pt.Seconds()
	dfMetrics.E18SelectiveRowBytes = rowBytes
	dfMetrics.E18SelectivePrunedBytes = prunedBytes
	dfMetrics.E18BytesRatio = bytesRatio
	dfMetrics.E18SpeedupX = speedup
	dfMetrics.E18ChunksScanned = chunksScanned
	dfMetrics.E18ChunksPruned = chunksPruned
	dfMetrics.E18RollupIdentical = rollIdentical
}

func e19(e *env) {
	// The parallelism question: does Job.Parallelism buy wall-clock on the
	// day-scale work without changing a single output byte? Three legs on
	// a streamed synthetic day: (1) the §3.2 rollup under the same tiny
	// spill budget as E16/E17, once at Parallelism 1 and once at 4 — the
	// two tables must be exactly equal; (2) the day sealed into column
	// chunks with four concurrent hour workers; (3) E18's selective
	// pruned+projected query at Parallelism 1 vs 4 — the delivered row
	// streams must be identical, order included, because the parallel
	// scan reorders splits back to serial order. The >=1.8x speedup
	// assertion only fires on machines with >= 4 CPUs; the outputs are
	// asserted identical everywhere.
	const workers = 4
	cfg := e.cfg
	cfg.Users = e.cfg.Users * 12
	cfg.LoggedOutSessions = e.cfg.LoggedOutSessions * 12
	cfg.Seed = e.cfg.Seed + 19
	bigFS, truth := synthesizeDay(cfg)
	fmt.Printf("  synthetic day: %d events (%.1fx the shared corpus), streamed into the warehouse\n",
		truth.Events, float64(truth.Events)/float64(e.truth.Events))

	const budget = 32 << 10
	spillDir, err := os.MkdirTemp("", "benchrunner-parallel-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(spillDir)

	// Leg 1: spilling rollups, serial vs parallel.
	runRollup := func(par int) (map[analytics.RollupKey]int64, time.Duration) {
		j := dataflow.NewJob(fmt.Sprintf("e19-rollups-p%d", par), bigFS)
		j.MemoryBudget = budget
		j.SpillDir = spillDir
		j.Parallelism = par
		var roll map[analytics.RollupKey]int64
		t := timeIt(func() {
			var err error
			roll, err = analytics.Rollups(j, day)
			if err != nil {
				fatal(err)
			}
		})
		return roll, t
	}
	serialRoll, st := runRollup(1)
	parRoll, pt := runRollup(workers)
	rollIdentical := reflect.DeepEqual(serialRoll, parRoll)
	rollSpeedup := st.Seconds() / pt.Seconds()
	fmt.Printf("  rollups under %d KiB budget: serial %v (%.0f events/s) vs %d workers %v (%.0f events/s) — %.2fx, identical: %v\n",
		budget>>10, st.Round(time.Millisecond), float64(truth.Events)/st.Seconds(),
		workers, pt.Round(time.Millisecond), float64(truth.Events)/pt.Seconds(), rollSpeedup, rollIdentical)
	if !rollIdentical {
		fatal(fmt.Errorf("e19: parallel rollup diverged from serial"))
	}

	// Leg 2: concurrent sealing — 24 hour directories, four workers.
	var chunks int
	sealT := timeIt(func() {
		var err error
		chunks, err = columnar.SealDayParallel(bigFS, events.Category, day, workers)
		if err != nil {
			fatal(err)
		}
	})
	fmt.Printf("  sealed: %d column chunks with %d workers in %v (%.0f events/s)\n",
		chunks, workers, sealT.Round(time.Millisecond), float64(truth.Events)/sealT.Seconds())

	// Leg 3: the selective pruned query, serial vs parallel, row streams
	// compared in delivery order.
	sel := dataflow.Selection{
		Columns:     []string{"name", "user_id", "timestamp"},
		NamePattern: "web:home:*",
		TimeMin:     day.Add(9 * time.Hour).UnixMilli(),
		TimeMax:     day.Add(15 * time.Hour).UnixMilli(),
	}
	runQuery := func(par int) ([]string, time.Duration) {
		j := dataflow.NewJob(fmt.Sprintf("e19-selective-p%d", par), bigFS)
		j.Parallelism = par
		var rows []string
		t := timeIt(func() {
			d, err := columnar.LoadDay(j, day, sel)
			if err != nil {
				fatal(err)
			}
			if err := d.Each(func(t dataflow.Tuple) error {
				rows = append(rows, fmt.Sprint(t))
				return nil
			}); err != nil {
				fatal(err)
			}
			if err := d.Close(); err != nil {
				fatal(err)
			}
		})
		return rows, t
	}
	serialRows, sqt := runQuery(1)
	parRows, pqt := runQuery(workers)
	queryIdentical := reflect.DeepEqual(serialRows, parRows)
	querySpeedup := sqt.Seconds() / pqt.Seconds()
	fmt.Printf("  selective query (%d rows): serial %v vs %d workers %v — %.2fx, identical row streams: %v\n",
		len(serialRows), sqt.Round(time.Millisecond), workers, pqt.Round(time.Millisecond), querySpeedup, queryIdentical)
	if !queryIdentical {
		fatal(fmt.Errorf("e19: parallel selective query diverged from serial (%d vs %d rows)", len(parRows), len(serialRows)))
	}
	if len(serialRows) == 0 {
		fatal(fmt.Errorf("e19: selective query matched no rows — not a meaningful comparison"))
	}

	if runtime.NumCPU() >= workers {
		if rollSpeedup < 1.8 {
			fatal(fmt.Errorf("e19: rollup speedup %.2fx at %d workers on %d CPUs, want >= 1.8x", rollSpeedup, workers, runtime.NumCPU()))
		}
	} else {
		fmt.Printf("  (speedup floor not asserted: only %d CPUs, need >= %d)\n", runtime.NumCPU(), workers)
	}

	dfMetrics.measured = true
	dfMetrics.E19Events = truth.Events
	dfMetrics.E19Workers = workers
	dfMetrics.E19SerialRollupPerSec = float64(truth.Events) / st.Seconds()
	dfMetrics.E19ParRollupPerSec = float64(truth.Events) / pt.Seconds()
	dfMetrics.E19RollupSpeedupX = rollSpeedup
	dfMetrics.E19SerialQueryPerSec = float64(truth.Events) / sqt.Seconds()
	dfMetrics.E19ParQueryPerSec = float64(truth.Events) / pqt.Seconds()
	dfMetrics.E19QuerySpeedupX = querySpeedup
	dfMetrics.E19SealChunks = chunks
	dfMetrics.E19SealEventsPerSec = float64(truth.Events) / sealT.Seconds()
	dfMetrics.E19RollupIdentical = rollIdentical
	dfMetrics.E19QueryIdentical = queryIdentical
}

type memBuf struct{ data []byte }

func (m *memBuf) Write(p []byte) (int, error) {
	m.data = append(m.data, p...)
	return len(p), nil
}

// Command catalog builds the client event catalog (§4.3) for a generated
// day and serves queries against it from the command line: hierarchical
// browsing, wildcard-pattern and regexp search, and sample display.
//
// Usage:
//
//	catalog                              top of the hierarchy
//	catalog browse web home              children of web:home:*
//	catalog search '*:profile_click'     wildcard-pattern search
//	catalog regexp '^web:.*click$'       regular-expression search
//	catalog show <full:event:name>       one entry with samples
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"unilog/internal/catalog"
	"unilog/internal/hdfs"
	"unilog/internal/workload"
)

var day = time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)

func main() {
	users := flag.Int("users", 150, "logged-in user population")
	seed := flag.Int64("seed", 2012, "workload seed")
	flag.Parse()

	cfg := workload.DefaultConfig(day)
	cfg.Users = *users
	cfg.Seed = *seed
	evs, _ := workload.New(cfg).Generate()
	fs := hdfs.New(0)
	check(workload.WriteWarehouse(fs, evs))
	c, err := catalog.Rebuild(fs, day, 2)
	check(err)

	args := flag.Args()
	if len(args) == 0 {
		fmt.Printf("catalog for %s: %d event types\n\nclients:\n", day.Format("2006-01-02"), c.Len())
		printChildren(c, nil)
		fmt.Println("\n(try: catalog browse web | catalog search '*:impression' | catalog show <name>)")
		return
	}
	switch args[0] {
	case "browse":
		printChildren(c, args[1:])
	case "search":
		if len(args) < 2 {
			check(fmt.Errorf("search needs a pattern"))
		}
		entries, err := c.SearchPattern(args[1])
		check(err)
		catalog.Render(os.Stdout, entries, false)
	case "regexp":
		if len(args) < 2 {
			check(fmt.Errorf("regexp needs an expression"))
		}
		entries, err := c.SearchRegexp(args[1])
		check(err)
		catalog.Render(os.Stdout, entries, false)
	case "show":
		if len(args) < 2 {
			check(fmt.Errorf("show needs an event name"))
		}
		e, err := c.Get(args[1])
		check(err)
		catalog.Render(os.Stdout, []*catalog.Entry{e}, true)
	default:
		check(fmt.Errorf("unknown subcommand %q", args[0]))
	}
}

func printChildren(c *catalog.Catalog, prefix []string) {
	kids, err := c.Children(prefix)
	check(err)
	for _, cc := range kids {
		label := cc.Value
		if label == "" {
			label = "(empty)"
		}
		fmt.Printf("  %-24s %10d events\n", label, cc.Count)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "catalog:", err)
		os.Exit(1)
	}
}

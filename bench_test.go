// Benchmarks regenerating the paper's quantified claims, one per experiment
// row in DESIGN.md §2. Custom metrics carry the paper-facing numbers:
// compression ratios, map-task counts, bytes scanned, and shuffle volumes —
// the quantities the paper's performance argument is made of — alongside
// the usual ns/op.
//
// Run: go test -bench=. -benchmem .
package unilog_test

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"unilog/internal/align"
	"unilog/internal/analytics"
	"unilog/internal/colloc"
	"unilog/internal/dataflow"
	"unilog/internal/events"
	"unilog/internal/flowviz"
	"unilog/internal/grammar"
	"unilog/internal/hdfs"
	"unilog/internal/legacy"
	"unilog/internal/ngram"
	"unilog/internal/realtime"
	"unilog/internal/recordio"
	"unilog/internal/scribe"
	"unilog/internal/session"
	"unilog/internal/thrift"
	"unilog/internal/warehouse"
	"unilog/internal/workload"
	"unilog/internal/zk"
)

// benchCorpus is a lazily-built shared fixture: one generated day in
// warehouse layout with materialized session sequences.
type benchCorpus struct {
	fs    *hdfs.FS
	dict  *session.Dictionary
	truth *workload.Truth
	stats session.DayStats
	evs   []events.ClientEvent
	seqs  []string
}

var (
	corpusOnce sync.Once
	corpus     *benchCorpus
)

func getCorpus(b *testing.B) *benchCorpus {
	b.Helper()
	corpusOnce.Do(func() {
		cfg := workload.DefaultConfig(day)
		cfg.Users = 400
		cfg.LoggedOutSessions = 300
		evs, truth := workload.New(cfg).Generate()
		fs := hdfs.New(0)
		w := warehouse.NewWriter(fs, events.Category)
		w.RollRecords = 4000 // several part files per hour, as the mover would leave
		for i := range evs {
			if err := w.Append(&evs[i]); err != nil {
				panic(err)
			}
		}
		if err := w.Close(); err != nil {
			panic(err)
		}
		dict, _, stats, err := session.BuildDay(fs, day, 0)
		if err != nil {
			panic(err)
		}
		var seqs []string
		if err := session.ScanDay(fs, day, func(r *session.Record) error {
			seqs = append(seqs, r.Sequence)
			return nil
		}); err != nil {
			panic(err)
		}
		corpus = &benchCorpus{fs: fs, dict: dict, truth: truth, stats: stats, evs: evs, seqs: seqs}
	})
	return corpus
}

// --- E1: session sequences ≈ 50x smaller than raw client event logs ---

func BenchmarkCompressionRatio(b *testing.B) {
	c := getCorpus(b)
	b.ReportMetric(0, "ns/op") // size experiment; time is incidental
	for i := 0; i < b.N; i++ {
		if c.stats.Ratio() < 2 {
			b.Fatalf("ratio = %.1f", c.stats.Ratio())
		}
	}
	b.ReportMetric(c.stats.Ratio(), "x-smaller")
	b.ReportMetric(float64(c.stats.RawBytes), "raw-bytes")
	b.ReportMetric(float64(c.stats.SeqBytes), "seq-bytes")
}

// BenchmarkSessionSequenceBuild times the two-pass daily materialization
// job itself.
func BenchmarkSessionSequenceBuild(b *testing.B) {
	c := getCorpus(b)
	for i := 0; i < b.N; i++ {
		fs := c.fs
		// Rebuild into a scratch day so each iteration writes fresh output.
		hist, err := session.HistogramDay(fs, day, 0)
		if err != nil {
			b.Fatal(err)
		}
		dict, err := session.Build(hist.Counts)
		if err != nil {
			b.Fatal(err)
		}
		builder := session.NewBuilder(dict)
		err = warehouse.ScanDay(fs, events.Category, day, func(e *events.ClientEvent) error {
			builder.Add(e)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		recs, err := builder.Finish()
		if err != nil {
			b.Fatal(err)
		}
		if int64(len(recs)) != c.truth.Sessions {
			b.Fatalf("sessions = %d", len(recs))
		}
	}
	b.ReportMetric(float64(c.truth.Events), "events")
}

// --- E2: counting queries — raw scan vs session sequences ---

func countMatcher(b *testing.B) analytics.Matcher {
	m, err := analytics.MatcherFromPattern("*:profile_click")
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkCountRawLogs(b *testing.B) {
	c := getCorpus(b)
	m := countMatcher(b)
	var st dataflow.Stats
	for i := 0; i < b.N; i++ {
		j := dataflow.NewJob("bench-raw", c.fs)
		rep, err := analytics.CountRawDay(j, day, m)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Events == 0 {
			b.Fatal("no events counted")
		}
		st = j.Stats()
	}
	b.ReportMetric(float64(st.BytesRead), "bytes-scanned")
	b.ReportMetric(float64(st.MapTasks), "map-tasks")
	b.ReportMetric(float64(st.ShuffleBytes), "shuffle-bytes")
	b.ReportMetric(st.ClusterSeconds(), "cluster-s")
}

func BenchmarkCountSessionSequences(b *testing.B) {
	c := getCorpus(b)
	m := countMatcher(b)
	var st dataflow.Stats
	for i := 0; i < b.N; i++ {
		j := dataflow.NewJob("bench-seq", c.fs)
		rep, err := analytics.CountSequencesDay(j, day, c.dict, m)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Events == 0 {
			b.Fatal("no events counted")
		}
		st = j.Stats()
	}
	b.ReportMetric(float64(st.BytesRead), "bytes-scanned")
	b.ReportMetric(float64(st.MapTasks), "map-tasks")
	b.ReportMetric(float64(st.ShuffleBytes), "shuffle-bytes")
	b.ReportMetric(st.ClusterSeconds(), "cluster-s")
}

// --- E3: session reconstruction — legacy join vs unified vs materialized ---

var (
	legacyOnce sync.Once
	legacyFS   *hdfs.FS
	legacyDirs map[string][]string
)

func getLegacy(b *testing.B) (*hdfs.FS, map[string][]string) {
	c := getCorpus(b)
	legacyOnce.Do(func() {
		legacyFS = hdfs.New(0)
		type sink struct {
			buf *bufWriter
			w   *recordio.GzipWriter
		}
		sinks := map[string]*sink{}
		for i := range c.evs {
			cat, rec := legacy.FromClientEvent(&c.evs[i])
			s := sinks[cat]
			if s == nil {
				bw := &bufWriter{}
				s = &sink{buf: bw, w: recordio.NewGzipWriter(bw)}
				sinks[cat] = s
			}
			if err := s.w.Append(rec); err != nil {
				panic(err)
			}
		}
		legacyDirs = map[string][]string{}
		for cat, s := range sinks {
			if err := s.w.Close(); err != nil {
				panic(err)
			}
			dir := warehouse.HourDir(cat, day)
			if err := legacyFS.WriteFile(dir+"/part-00000.gz", s.buf.data); err != nil {
				panic(err)
			}
			legacyDirs[cat] = []string{dir}
		}
	})
	return legacyFS, legacyDirs
}

type bufWriter struct{ data []byte }

func (w *bufWriter) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

func BenchmarkSessionReconstructionLegacy(b *testing.B) {
	fs, dirs := getLegacy(b)
	var st dataflow.Stats
	for i := 0; i < b.N; i++ {
		j := dataflow.NewJob("legacy", fs)
		n, err := legacy.ReconstructSessions(j, dirs, session.InactivityGap)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("no sessions")
		}
		st = j.Stats()
	}
	b.ReportMetric(float64(st.ShuffleBytes), "shuffle-bytes")
	b.ReportMetric(float64(st.BytesRead), "bytes-scanned")
}

func BenchmarkSessionReconstructionUnified(b *testing.B) {
	c := getCorpus(b)
	var st dataflow.Stats
	for i := 0; i < b.N; i++ {
		j := dataflow.NewJob("unified", c.fs)
		d, err := j.LoadClientEventsDay(day)
		if err != nil {
			b.Fatal(err)
		}
		p, err := d.Project("user_id", "session_id", "name", "timestamp")
		if err != nil {
			b.Fatal(err)
		}
		g, err := p.GroupBy("user_id", "session_id")
		if err != nil {
			b.Fatal(err)
		}
		if n, err := g.NumGroups(); err != nil || n == 0 {
			b.Fatalf("no groups: %v", err)
		}
		g.Close()
		st = j.Stats()
	}
	b.ReportMetric(float64(st.ShuffleBytes), "shuffle-bytes")
	b.ReportMetric(float64(st.BytesRead), "bytes-scanned")
}

func BenchmarkSessionReconstructionMaterialized(b *testing.B) {
	c := getCorpus(b)
	var st dataflow.Stats
	for i := 0; i < b.N; i++ {
		j := dataflow.NewJob("materialized", c.fs)
		d, err := j.LoadSessionSequencesDay(day)
		if err != nil {
			b.Fatal(err)
		}
		if n, err := d.Count(); err != nil || n == 0 {
			b.Fatalf("no sessions: %v", err)
		}
		st = j.Stats()
	}
	b.ReportMetric(float64(st.ShuffleBytes), "shuffle-bytes")
	b.ReportMetric(float64(st.BytesRead), "bytes-scanned")
}

// --- E4: map-task reduction ---

func BenchmarkMapTaskReduction(b *testing.B) {
	c := getCorpus(b)
	var rawTasks, seqTasks int
	for i := 0; i < b.N; i++ {
		rawJob := dataflow.NewJob("raw", c.fs)
		rawDS, err := rawJob.LoadClientEventsDay(day)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rawDS.Count(); err != nil {
			b.Fatal(err)
		}
		seqJob := dataflow.NewJob("seq", c.fs)
		seqDS, err := seqJob.LoadSessionSequencesDay(day)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := seqDS.Count(); err != nil {
			b.Fatal(err)
		}
		rawTasks, seqTasks = rawJob.Stats().MapTasks, seqJob.Stats().MapTasks
	}
	b.ReportMetric(float64(rawTasks), "raw-map-tasks")
	b.ReportMetric(float64(seqTasks), "seq-map-tasks")
	b.ReportMetric(float64(rawTasks)/float64(seqTasks), "task-reduction-x")
}

// --- E5: the five rollup schemas ---

func BenchmarkRollups(b *testing.B) {
	c := getCorpus(b)
	var n int
	for i := 0; i < b.N; i++ {
		j := dataflow.NewJob("rollups", c.fs)
		rollups, err := analytics.Rollups(j, day)
		if err != nil {
			b.Fatal(err)
		}
		n = len(rollups)
	}
	b.ReportMetric(float64(n), "metric-rows")
}

// --- E6: funnel analytics — raw vs sequences ---

func funnelStages() []analytics.Matcher {
	stages := make([]analytics.Matcher, 5)
	for i, full := range workload.FunnelStages("web") {
		suffix := full[len("web"):]
		stages[i] = func(name string) bool { return strings.HasSuffix(name, suffix) }
	}
	return stages
}

func BenchmarkFunnelSequences(b *testing.B) {
	c := getCorpus(b)
	f := analytics.NewFunnel(c.dict, funnelStages()...)
	for i := 0; i < b.N; i++ {
		j := dataflow.NewJob("funnel-seq", c.fs)
		rep, err := analytics.FunnelSequencesDay(j, day, f)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed[0] != c.truth.FunnelStage[0] {
			b.Fatalf("stage0 = %d, truth %d", rep.Completed[0], c.truth.FunnelStage[0])
		}
	}
}

func BenchmarkFunnelRawLogs(b *testing.B) {
	c := getCorpus(b)
	stages := funnelStages()
	for i := 0; i < b.N; i++ {
		j := dataflow.NewJob("funnel-raw", c.fs)
		rep, err := analytics.FunnelRawDay(j, day, stages)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed[0] != c.truth.FunnelStage[0] {
			b.Fatalf("stage0 = %d, truth %d", rep.Completed[0], c.truth.FunnelStage[0])
		}
	}
}

// --- E7: CTR computation over sequences ---

func BenchmarkCTROverSequences(b *testing.B) {
	c := getCorpus(b)
	imp, err := analytics.MatcherFromRegexp(`:home:who_to_follow:module:user:impression$`)
	if err != nil {
		b.Fatal(err)
	}
	clk, err := analytics.MatcherFromRegexp(`:home:who_to_follow:module:user:click$`)
	if err != nil {
		b.Fatal(err)
	}
	var rate float64
	for i := 0; i < b.N; i++ {
		rep, err := analytics.RateOverSequences(c.fs, day, c.dict, imp, clk)
		if err != nil {
			b.Fatal(err)
		}
		rate = rep.Rate()
	}
	b.ReportMetric(rate, "ctr")
}

// --- E8: n-gram language models ---

func BenchmarkNgramTrain(b *testing.B) {
	c := getCorpus(b)
	for i := 0; i < b.N; i++ {
		m := ngram.NewModel(2)
		m.TrainAll(c.seqs)
		if m.Vocabulary() == 0 {
			b.Fatal("empty model")
		}
	}
	b.ReportMetric(float64(len(c.seqs)), "sessions")
}

func BenchmarkNgramPerplexity(b *testing.B) {
	c := getCorpus(b)
	m := ngram.NewModel(2)
	m.TrainAll(c.seqs)
	b.ResetTimer()
	var p float64
	for i := 0; i < b.N; i++ {
		var err error
		p, err = m.Perplexity(c.seqs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p, "perplexity")
}

// --- E9: collocation extraction ---

func BenchmarkCollocations(b *testing.B) {
	c := getCorpus(b)
	var top []colloc.Pair
	for i := 0; i < b.N; i++ {
		s := colloc.Collect(c.seqs)
		top = s.TopLLR(10, 5)
		if len(top) == 0 {
			b.Fatal("no collocations")
		}
	}
	b.ReportMetric(top[0].Score, "top-llr")
}

// --- E10 / F1: delivery pipeline throughput ---

func BenchmarkScribeDelivery(b *testing.B) {
	clock := zk.NewManualClock(day)
	dc, err := scribe.NewDatacenter("bench", hdfs.New(0), clock, 2, 4, 99)
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("web:home:timeline:stream:tweet:impression payload payload payload")
	b.SetBytes(int64(len(msg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dc.Daemons[i%len(dc.Daemons)].Log(events.Category, msg)
	}
	b.StopTimer()
	if err := dc.FlushAll(); err != nil {
		b.Fatal(err)
	}
}

// --- E11: Elephant Twin index push-down (see internal/twin benches for the
// selectivity sweep; this is the headline comparison) ---

func BenchmarkTwinComparison(b *testing.B) {
	// Covered in cmd/benchrunner e11 and internal/twin tests; here we keep
	// the full-scan baseline measurable at the root for the harness.
	c := getCorpus(b)
	m := func(name string) bool { return strings.HasSuffix(name, ":signup:flow:step:complete:view") }
	for i := 0; i < b.N; i++ {
		j := dataflow.NewJob("fullscan", c.fs)
		d, err := j.LoadClientEventsDay(day)
		if err != nil {
			b.Fatal(err)
		}
		nameIdx := d.Schema().MustIndex("name")
		n, err := d.Filter(func(tp dataflow.Tuple) bool { return m(tp[nameIdx].(string)) }).Count()
		if err != nil || n == 0 {
			b.Fatalf("no matches: %v", err)
		}
	}
}

// --- E12: dictionary ordering ablation ---

func BenchmarkDictionaryFrequencyOrdered(b *testing.B) {
	c := getCorpus(b)
	benchDictionaryEncoding(b, c, false)
}

func BenchmarkDictionaryShuffled(b *testing.B) {
	c := getCorpus(b)
	benchDictionaryEncoding(b, c, true)
}

// benchDictionaryEncoding measures the UTF-8 size of the day's sequences
// under the real (frequency-ordered) dictionary versus one with shuffled
// assignments — isolating the paper's variable-length-coding trick.
func benchDictionaryEncoding(b *testing.B, c *benchCorpus, shuffled bool) {
	dict := c.dict
	if shuffled {
		// Rebuild with a permuted histogram: same alphabet, arbitrary order.
		names := c.dict.Names()
		rng := rand.New(rand.NewSource(42))
		perm := rng.Perm(len(names))
		h := make(map[string]int64, len(names))
		for i, name := range names {
			h[name] = int64(len(names) - perm[i])
		}
		var err error
		dict, err = session.Build(h)
		if err != nil {
			b.Fatal(err)
		}
	}
	var bytesOut int64
	for i := 0; i < b.N; i++ {
		bytesOut = 0
		for _, seq := range c.seqs {
			names, err := c.dict.Decode(seq)
			if err != nil {
				b.Fatal(err)
			}
			enc, err := dict.Encode(names)
			if err != nil {
				b.Fatal(err)
			}
			bytesOut += int64(len(enc))
		}
	}
	b.ReportMetric(float64(bytesOut), "utf8-bytes")
}

// --- substrate micro-benchmarks: Thrift protocols ---

func benchEvent() *events.ClientEvent {
	return &events.ClientEvent{
		Initiator: events.InitiatorClientUser,
		Name:      events.MustParseName("web:home:mentions:stream:avatar:profile_click"),
		UserID:    1234567,
		SessionID: "ck-00012345",
		IP:        "10.12.34.56",
		Timestamp: day.UnixMilli(),
		Details:   map[string]string{"profile_id": "998877", "rank": "3"},
	}
}

func BenchmarkThriftCompactEncode(b *testing.B) {
	e := benchEvent()
	enc := thrift.NewCompactEncoder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc.Reset()
		e.Encode(enc)
	}
	b.SetBytes(int64(enc.Len()))
}

func BenchmarkThriftBinaryEncode(b *testing.B) {
	e := benchEvent()
	enc := thrift.NewBinaryEncoder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc.Reset()
		e.Encode(enc)
	}
	b.SetBytes(int64(enc.Len()))
}

func BenchmarkThriftCompactDecode(b *testing.B) {
	data := benchEvent().Marshal()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e events.ClientEvent
		if err := e.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThriftBinaryDecode(b *testing.B) {
	data := thrift.EncodeBinary(benchEvent())
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e events.ClientEvent
		if err := thrift.DecodeBinary(data, &e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCounterUDF isolates the CountClientEvents string scan.
func BenchmarkCounterUDF(b *testing.B) {
	c := getCorpus(b)
	counter := analytics.NewCounter(c.dict, func(n string) bool {
		return strings.HasSuffix(n, ":impression")
	})
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		total = 0
		for _, s := range c.seqs {
			total += counter.Count(s)
		}
	}
	if total == 0 {
		b.Fatal("nothing counted")
	}
	b.ReportMetric(float64(total), "events")
}

// --- E14: realtime streaming counters (§6 real-time direction) ---

// BenchmarkRealtimeIngest measures the streaming hot path: decoded events
// fanned across four counter shards through a Batcher, ns per event
// end-to-end (digest, enqueue, amortized drain).
func BenchmarkRealtimeIngest(b *testing.B) {
	c := getCorpus(b)
	rt := realtime.New(realtime.Config{Shards: 4})
	defer rt.Close()
	batcher := rt.NewBatcher()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batcher.Add(&c.evs[i%len(c.evs)])
	}
	batcher.Flush()
	rt.Sync()
	b.StopTimer()
	b.ReportMetric(float64(rt.Shards()), "shards")
	if rt.Stats().Observed != int64(b.N) {
		b.Fatalf("observed %d, want %d", rt.Stats().Observed, b.N)
	}
}

// BenchmarkRealtimeWALIngest measures the same hot path with durability
// on: every drained batch is CRC-framed into a per-shard write-ahead log
// (batch fsync cadence) before it is applied. Compare against
// BenchmarkRealtimeIngest for the durability overhead; E15 requires it to
// stay within 2x.
func BenchmarkRealtimeWALIngest(b *testing.B) {
	c := getCorpus(b)
	rt, err := realtime.Open(b.TempDir(), realtime.Config{Shards: 4, SnapshotEvery: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	batcher := rt.NewBatcher()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batcher.Add(&c.evs[i%len(c.evs)])
	}
	batcher.Flush()
	rt.Sync()
	b.StopTimer()
	st := rt.Stats()
	if st.Observed != int64(b.N) || st.WALErrors != 0 {
		b.Fatalf("observed %d (want %d), wal errors %d", st.Observed, b.N, st.WALErrors)
	}
	b.ReportMetric(float64(st.WALBytes)/float64(b.N), "walB/event")
}

// BenchmarkRealtimeRecover measures crash recovery: a WAL holding the
// corpus is replayed into a fresh counter by realtime.Open.
func BenchmarkRealtimeRecover(b *testing.B) {
	c := getCorpus(b)
	dir := b.TempDir()
	rt, err := realtime.Open(dir, realtime.Config{Shards: 4, SnapshotEvery: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	batcher := rt.NewBatcher()
	for i := range c.evs {
		batcher.Add(&c.evs[i])
	}
	batcher.Flush()
	rt.Sync()
	want := rt.Stats().Observed
	rt.Crash()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := realtime.Open(dir, realtime.Config{Shards: 4, SnapshotEvery: time.Hour})
		if err != nil {
			b.Fatal(err)
		}
		if rec.Stats().Observed != want {
			b.Fatalf("recovered %d events, want %d", rec.Stats().Observed, want)
		}
		rec.Crash()
	}
	b.ReportMetric(float64(len(c.evs)), "events")
}

// BenchmarkRealtimeTapIngest measures the same path from the aggregator
// tap: Thrift decode included, as entries arrive from Scribe daemons.
func BenchmarkRealtimeTapIngest(b *testing.B) {
	c := getCorpus(b)
	const batchSize = 200
	batch := make([]scribe.Entry, batchSize)
	for i := range batch {
		batch[i] = scribe.Entry{Category: events.Category, Message: c.evs[i%len(c.evs)].Marshal()}
	}
	rt := realtime.New(realtime.Config{Shards: 4})
	defer rt.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += batchSize {
		rt.TapBatch(batch)
	}
	rt.Sync()
}

// realtimeCorpus returns a counter pre-loaded with the benchmark day.
var (
	rtOnce   sync.Once
	rtLoaded *realtime.Counter
)

func getRealtime(b *testing.B) *realtime.Counter {
	c := getCorpus(b)
	rtOnce.Do(func() {
		rtLoaded = realtime.New(realtime.Config{Shards: 4})
		batcher := rtLoaded.NewBatcher()
		for i := range c.evs {
			batcher.Add(&c.evs[i])
		}
		batcher.Flush()
		rtLoaded.Sync()
	})
	return rtLoaded
}

// BenchmarkRealtimeQueryPoint measures the point-lookup latency BirdBrain
// pays for a "today so far" number, full-day window.
func BenchmarkRealtimeQueryPoint(b *testing.B) {
	rt := getRealtime(b)
	end := day.Add(24 * time.Hour)
	var n int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n = rt.PathSum("web", day, end)
	}
	if n == 0 {
		b.Fatal("nothing counted")
	}
	b.ReportMetric(float64(n), "events")
}

// BenchmarkRealtimeQueryTopK measures the prefix drill-down (top pages of
// the web client) over the full day.
func BenchmarkRealtimeQueryTopK(b *testing.B) {
	rt := getRealtime(b)
	end := day.Add(24 * time.Hour)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if top := rt.TopK("web", 5, day, end); len(top) == 0 {
			b.Fatal("no children")
		}
	}
}

// BenchmarkRealtimeReconcile runs the full lambda check: batch rollups
// plus a streaming replay of the day, diffed to exact agreement.
func BenchmarkRealtimeReconcile(b *testing.B) {
	c := getCorpus(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := realtime.Reconcile(c.fs, day, realtime.Config{Shards: 4})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK() {
			b.Fatalf("diverged: %s", rep)
		}
	}
}

// --- §6 ongoing-work extensions ---

// BenchmarkQueryByExample measures behavioral similarity search over the
// whole day's sessions (§6 sequence-alignment direction).
func BenchmarkQueryByExample(b *testing.B) {
	c := getCorpus(b)
	// The longest session is the exemplar.
	qi := 0
	for i := range c.seqs {
		if len(c.seqs[i]) > len(c.seqs[qi]) {
			qi = i
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := align.QueryByExample(c.seqs[qi], c.seqs, align.DefaultScoring, 10)
		if len(res) == 0 {
			b.Fatal("no similar sessions")
		}
	}
	b.ReportMetric(float64(len(c.seqs)), "sessions")
}

// BenchmarkGrammarInduction measures Re-Pair over the day's sessions (§6
// grammar-induction direction), reporting the structural compression the
// grammar achieves.
func BenchmarkGrammarInduction(b *testing.B) {
	c := getCorpus(b)
	// Re-Pair rescans the corpus per rule; bench a 300-session slice so the
	// harness stays fast (the full-corpus run is in examples/explore).
	seqs := c.seqs
	if len(seqs) > 300 {
		seqs = seqs[:300]
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		g := grammar.Induce(seqs, 2)
		if len(g.Rules) == 0 {
			b.Fatal("no rules")
		}
		ratio = g.CompressionRatio()
	}
	b.ReportMetric(ratio, "grammar-compression-x")
}

// BenchmarkFlowTree measures LifeFlow-style prefix aggregation (§6
// visualization direction).
func BenchmarkFlowTree(b *testing.B) {
	c := getCorpus(b)
	for i := 0; i < b.N; i++ {
		tree := flowviz.Build(c.seqs, 5)
		if tree.Sessions != len(c.seqs) {
			b.Fatal("tree lost sessions")
		}
	}
}

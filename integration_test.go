package unilog_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"unilog/internal/analytics"
	"unilog/internal/birdbrain"
	"unilog/internal/catalog"
	"unilog/internal/dataflow"
	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/logmover"
	"unilog/internal/oink"
	"unilog/internal/scribe"
	"unilog/internal/session"
	"unilog/internal/warehouse"
	"unilog/internal/workload"
	"unilog/internal/zk"
)

var day = time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)

// TestPipelineFaultTolerance is experiment E10 and Figure 1 end to end: two
// datacenters deliver a day of traffic through daemons and aggregators
// while one aggregator is gracefully restarted mid-run and the staging
// cluster of the other datacenter suffers a transient outage. The
// invariant: every message accepted by a daemon appears in the warehouse
// exactly once after the hours slide.
func TestPipelineFaultTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	cfg := workload.DefaultConfig(day)
	cfg.Users = 200
	evs, truth := workload.New(cfg).Generate()

	clock := zk.NewManualClock(day)
	dc1, err := scribe.NewDatacenter("dc1", hdfs.New(0), clock, 2, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	dc2, err := scribe.NewDatacenter("dc2", hdfs.New(0), clock, 2, 3, 22)
	if err != nil {
		t.Fatal(err)
	}
	dcs := []*scribe.Datacenter{dc1, dc2}

	wh := hdfs.New(0)
	mover := logmover.New(wh,
		logmover.Source{Datacenter: "dc1", FS: dc1.Staging},
		logmover.Source{Datacenter: "dc2", FS: dc2.Staging},
	)

	// Replay the day hour by hour, interleaving fault injection.
	categories := []string{events.Category}
	i := 0
	var accepted int64
	for hr := 0; hr < 24; hr++ {
		hour := day.Add(time.Duration(hr) * time.Hour)
		// Fault injection at fixed hours.
		if hr == 6 {
			// Graceful restart of one dc1 aggregator: its buffers flush,
			// its ephemeral znode disappears, daemons rediscover.
			if err := dc1.Aggregators[0].Stop(); err != nil {
				t.Fatalf("stop aggregator: %v", err)
			}
		}
		if hr == 10 {
			dc2.Staging.SetAvailable(false) // staging outage begins
		}
		if hr == 12 {
			dc2.Staging.SetAvailable(true) // staging recovers
		}
		for ; i < len(evs) && evs[i].Timestamp < hour.Add(time.Hour).UnixMilli(); i++ {
			e := &evs[i]
			dc := dcs[int(e.UserID)%2]
			if e.UserID == 0 {
				dc = dcs[len(e.SessionID)%2]
			}
			d := dc.Daemons[int(e.Timestamp)%len(dc.Daemons)]
			d.Log(events.Category, e.Marshal())
			accepted++
		}
		clock.Advance(time.Hour)
		// Seal the hour on both datacenters. During the dc2 outage sealing
		// fails; those hours seal after recovery.
		for _, dc := range dcs {
			if err := dc.SealHour(categories, hour); err != nil &&
				!errors.Is(err, scribe.ErrSpilled) && !errors.Is(err, hdfs.ErrUnavailable) {
				t.Fatalf("seal %v: %v", hour, err)
			}
		}
		if _, err := mover.MoveAllSealed(); err != nil {
			t.Fatalf("mover: %v", err)
		}
	}
	// Recovery pass: reseal everything (dc2's outage hours) and move.
	for hr := 0; hr < 24; hr++ {
		hour := day.Add(time.Duration(hr) * time.Hour)
		for _, dc := range dcs {
			if err := dc.SealHour(categories, hour); err != nil {
				t.Fatalf("final seal: %v", err)
			}
		}
	}
	if _, err := mover.MoveAllSealed(); err != nil {
		t.Fatal(err)
	}

	if accepted != truth.Events {
		t.Fatalf("routed %d of %d events", accepted, truth.Events)
	}
	// Zero loss, zero duplication: every accepted message is in the
	// warehouse exactly once.
	seen := make(map[string]int)
	var total int64
	err = warehouse.ScanDay(wh, events.Category, day, func(e *events.ClientEvent) error {
		total++
		key := fmt.Sprintf("%d|%s|%d|%s", e.UserID, e.SessionID, e.Timestamp, e.Name.String())
		seen[key]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != truth.Events {
		t.Fatalf("warehouse has %d events, accepted %d (loss or duplication)", total, truth.Events)
	}
	// No daemon kept anything spooled; no aggregator dropped anything.
	for _, dc := range dcs {
		for _, d := range dc.Daemons {
			if s := d.Stats(); s.Spooled != 0 || s.Delivered != s.Accepted {
				t.Fatalf("daemon %s stats = %+v", d.Host, s)
			}
		}
		for _, a := range dc.Aggregators {
			if s := a.Stats(); s.MessagesDropped != 0 {
				t.Fatalf("aggregator %s dropped %d", a.ID, s.MessagesDropped)
			}
		}
	}
	// The fault actually exercised the paths under test.
	rediscoveries := int64(0)
	for _, d := range dc1.Daemons {
		rediscoveries += d.Stats().Rediscoveries
	}
	if rediscoveries < 4 {
		t.Fatalf("dc1 rediscoveries = %d; aggregator restart not exercised", rediscoveries)
	}
	flushFailures := int64(0)
	for _, a := range dc2.Aggregators {
		flushFailures += a.Stats().FlushFailures
	}
	if flushFailures == 0 {
		t.Fatal("dc2 staging outage not exercised")
	}

	// Downstream still works on the moved data: sessions and analytics
	// agree with ground truth.
	dict, _, stats, err := session.BuildDay(wh, day, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sessions != truth.Sessions {
		t.Fatalf("sessions = %d, truth %d", stats.Sessions, truth.Sessions)
	}
	stages := make([]analytics.Matcher, 5)
	for i, full := range workload.FunnelStages("web") {
		want := events.MustParseName(full)
		want.Client = ""
		w := want
		stages[i] = func(name string) bool {
			n, err := events.ParseName(name)
			if err != nil {
				return false
			}
			n.Client = ""
			return n == w
		}
	}
	f := analytics.NewFunnel(dict, stages...)
	j := dataflow.NewJob("funnel", wh)
	rep, err := analytics.FunnelSequencesDay(j, day, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Completed {
		if rep.Completed[i] != truth.FunnelStage[i] {
			t.Fatalf("funnel stage %d = %d, truth %d", i, rep.Completed[i], truth.FunnelStage[i])
		}
	}
}

// TestOinkDrivesDailyPipeline wires the production workflow of the paper in
// Oink: hourly log-mover runs gated on the all-datacenter seal barrier,
// then the daily session-sequence build, then the dashboard, and replays a
// day against it.
func TestOinkDrivesDailyPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	cfg := workload.DefaultConfig(day)
	cfg.Users = 100
	evs, truth := workload.New(cfg).Generate()

	clock := zk.NewManualClock(day)
	dc, err := scribe.NewDatacenter("dc1", hdfs.New(0), clock, 1, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	wh := hdfs.New(0)
	mover := logmover.New(wh, logmover.Source{Datacenter: "dc1", FS: dc.Staging})

	sched := oink.NewScheduler(day)
	if err := sched.Add(&oink.Job{
		Name:  "log_mover",
		Every: time.Hour,
		Ready: func(p time.Time) bool { return mover.HourSealed(events.Category, p) },
		Run: func(p time.Time) error {
			_, err := mover.MoveHour(events.Category, p)
			if errors.Is(err, logmover.ErrAlreadyMoved) {
				return nil
			}
			return err
		},
	}); err != nil {
		t.Fatal(err)
	}
	var built bool
	if err := sched.Add(&oink.Job{
		Name:      "session_sequences",
		Every:     24 * time.Hour,
		DependsOn: []string{"log_mover"},
		Run: func(p time.Time) error {
			_, _, _, err := session.BuildDay(wh, p, 3)
			built = err == nil
			return err
		},
	}); err != nil {
		t.Fatal(err)
	}
	var summary *birdbrain.Summary
	if err := sched.Add(&oink.Job{
		Name:      "birdbrain",
		Every:     24 * time.Hour,
		DependsOn: []string{"session_sequences"},
		Run: func(p time.Time) error {
			var err error
			summary, err = birdbrain.Build(wh, p, 5)
			return err
		},
	}); err != nil {
		t.Fatal(err)
	}

	i := 0
	for hr := 0; hr < 25; hr++ {
		hour := day.Add(time.Duration(hr) * time.Hour)
		for ; i < len(evs) && evs[i].Timestamp < hour.Add(time.Hour).UnixMilli(); i++ {
			dc.Daemons[i%2].Log(events.Category, evs[i].Marshal())
		}
		clock.Advance(time.Hour)
		if err := dc.SealHour([]string{events.Category}, hour); err != nil {
			t.Fatal(err)
		}
		sched.AdvanceTo(hour.Add(time.Hour))
	}

	if !built {
		t.Fatal("session sequences never built")
	}
	if summary == nil || summary.Sessions != truth.Sessions {
		t.Fatalf("dashboard = %+v, want %d sessions", summary, truth.Sessions)
	}
	// Audit traces recorded every execution.
	succeeded := 0
	for _, tr := range sched.Traces() {
		if tr.Status == oink.StatusSucceeded {
			succeeded++
		}
	}
	if succeeded < 26 { // 24 hourly movers + sessions + birdbrain
		t.Fatalf("only %d successful traces", succeeded)
	}
}

// TestThreeDayProduction replays three days of growing traffic through the
// Oink-scheduled daily jobs: session sequences, the catalog (with developer
// descriptions carrying forward across rebuilds), and the BirdBrain trend
// that §5.1 uses to "monitor the growth of the service over time".
func TestThreeDayProduction(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day run")
	}
	wh := hdfs.New(0)
	sched := oink.NewScheduler(day)

	var builtDays []time.Time
	if err := sched.Add(&oink.Job{
		Name:  "session_sequences",
		Every: 24 * time.Hour,
		Ready: func(p time.Time) bool {
			// Gate on the day's logs being present in the warehouse.
			return len(dataflow.HourDirs(wh, events.Category, p)) > 0
		},
		Run: func(p time.Time) error {
			_, _, _, err := session.BuildDay(wh, p, 3)
			if err == nil {
				builtDays = append(builtDays, p)
			}
			return err
		},
	}); err != nil {
		t.Fatal(err)
	}
	var lastCatalog *catalog.Catalog
	if err := sched.Add(&oink.Job{
		Name:      "event_catalog",
		Every:     24 * time.Hour,
		DependsOn: []string{"session_sequences"},
		Run: func(p time.Time) error {
			c, err := catalog.Rebuild(wh, p, 2)
			if err == nil {
				lastCatalog = c
			}
			return err
		},
	}); err != nil {
		t.Fatal(err)
	}

	perDay := make([]*workload.Truth, 3)
	for i := 0; i < 3; i++ {
		d := day.AddDate(0, 0, i)
		cfg := workload.DefaultConfig(d)
		cfg.Users = 60 * (i + 1) // growth
		cfg.Seed = int64(500 + i)
		evs, truth := workload.New(cfg).Generate()
		perDay[i] = truth
		if err := workload.WriteWarehouse(wh, evs); err != nil {
			t.Fatal(err)
		}
		// Day 1: a data scientist documents the top event.
		if i == 1 && lastCatalog != nil {
			name := lastCatalog.All()[0].Name
			if err := lastCatalog.Describe(name, "documented on day 0"); err != nil {
				t.Fatal(err)
			}
			if err := lastCatalog.Save(wh); err != nil {
				t.Fatal(err)
			}
		}
		sched.AdvanceTo(d.AddDate(0, 0, 1))
	}

	if len(builtDays) != 3 {
		t.Fatalf("built %d days", len(builtDays))
	}
	// The description survived the day-2 rebuild.
	if lastCatalog == nil {
		t.Fatal("no catalog")
	}
	found := false
	for _, e := range lastCatalog.All() {
		if e.Description == "documented on day 0" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("developer description lost across daily rebuilds")
	}
	// The trend shows growth and matches per-day ground truth.
	tr, err := birdbrain.BuildTrend(wh, day, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Days) != 3 {
		t.Fatalf("trend days = %d", len(tr.Days))
	}
	for i, s := range tr.Days {
		if s.Sessions != perDay[i].Sessions {
			t.Fatalf("day %d sessions = %d, truth %d", i, s.Sessions, perDay[i].Sessions)
		}
	}
	if !(tr.Days[0].Sessions < tr.Days[1].Sessions && tr.Days[1].Sessions < tr.Days[2].Sessions) {
		t.Fatalf("growth not visible: %d %d %d", tr.Days[0].Sessions, tr.Days[1].Sessions, tr.Days[2].Sessions)
	}
}

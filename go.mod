module unilog

go 1.24

package session

import (
	"fmt"
	"time"

	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/recordio"
	"unilog/internal/thrift"
	"unilog/internal/warehouse"
)

// Histogram is the output of the first daily pass (§4.2): event counts plus
// a few sample messages per event type, which feed the client event catalog.
type Histogram struct {
	Counts map[string]int64
	// Samples holds up to SampleLimit serialized client events per name.
	Samples map[string][][]byte
	// SampleLimit caps samples retained per event type.
	SampleLimit int
	// Events is the total number of events scanned.
	Events int64
}

// NewHistogram returns an empty histogram retaining sampleLimit samples per
// event type.
func NewHistogram(sampleLimit int) *Histogram {
	return &Histogram{
		Counts:      make(map[string]int64),
		Samples:     make(map[string][][]byte),
		SampleLimit: sampleLimit,
	}
}

// Observe counts one event and retains it as a sample if quota remains.
func (h *Histogram) Observe(e *events.ClientEvent) {
	name := e.Name.String()
	h.Counts[name]++
	h.Events++
	if h.SampleLimit > 0 && len(h.Samples[name]) < h.SampleLimit {
		h.Samples[name] = append(h.Samples[name], e.Marshal())
	}
}

// HistogramDay scans one day of client events in the warehouse and returns
// the event histogram — the first pass of the daily session-sequence job.
func HistogramDay(fs *hdfs.FS, day time.Time, sampleLimit int) (*Histogram, error) {
	h := NewHistogram(sampleLimit)
	err := warehouse.ScanDay(fs, events.Category, day, func(e *events.ClientEvent) error {
		h.Observe(e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return h, nil
}

// dictionaryFile is where a day's dictionary is persisted.
func dictionaryFile(day time.Time) string {
	return warehouse.DictionaryDir(day) + "/dictionary.gz"
}

// SaveDictionary persists the day's dictionary to its known HDFS location.
func SaveDictionary(fs *hdfs.FS, day time.Time, d *Dictionary) error {
	data, err := d.Marshal()
	if err != nil {
		return err
	}
	return fs.WriteFile(dictionaryFile(day), data)
}

// LoadDictionary reads the day's dictionary back.
func LoadDictionary(fs *hdfs.FS, day time.Time) (*Dictionary, error) {
	data, err := fs.ReadFile(dictionaryFile(day))
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}

// WriteDay materializes session records into the day's partition,
// /session_sequences/YYYY/MM/DD/part-*.gz.
func WriteDay(fs *hdfs.FS, day time.Time, recs []Record, rollRecords int) error {
	if rollRecords <= 0 {
		rollRecords = 100000
	}
	dir := warehouse.SessionDayDir(day)
	buf := &sliceBuf{}
	w := recordio.NewGzipWriter(buf)
	seq := 0
	inFile := 0
	flush := func() error {
		if inFile == 0 {
			return nil
		}
		if err := w.Close(); err != nil {
			return err
		}
		path := fmt.Sprintf("%s/part-%05d.gz", dir, seq)
		seq++
		if err := fs.WriteFile(path, buf.data); err != nil {
			return err
		}
		buf = &sliceBuf{}
		w = recordio.NewGzipWriter(buf)
		inFile = 0
		return nil
	}
	for i := range recs {
		if err := w.Append(thrift.EncodeCompact(&recs[i])); err != nil {
			return err
		}
		inFile++
		if inFile >= rollRecords {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if seq == 0 {
		// An empty day still gets its directory so readers can distinguish
		// "no sessions" from "not built yet".
		return fs.MkdirAll(dir)
	}
	return nil
}

// ScanDay iterates every materialized session record of the day.
func ScanDay(fs *hdfs.FS, day time.Time, fn func(*Record) error) error {
	infos, err := fs.Walk(warehouse.SessionDayDir(day))
	if err != nil {
		return err
	}
	for _, fi := range infos {
		data, err := fs.ReadFile(fi.Path)
		if err != nil {
			return err
		}
		err = recordio.ScanGzipFile(data, func(rec []byte) error {
			var r Record
			if err := thrift.DecodeCompact(rec, &r); err != nil {
				return fmt.Errorf("session: %s: %w", fi.Path, err)
			}
			return fn(&r)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// DayStats summarizes one BuildDay run, including the paper's headline
// compression ratio (§4.2: sequences are "about fifty times smaller than
// the original client event logs").
type DayStats struct {
	Events   int64
	Sessions int64
	Alphabet int
	RawBytes int64 // size of the day's raw client-event logs on HDFS
	SeqBytes int64 // size of the materialized session sequences on HDFS
}

// Ratio returns RawBytes / SeqBytes.
func (s DayStats) Ratio() float64 {
	if s.SeqBytes == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(s.SeqBytes)
}

// BuildDay runs the full two-pass daily job (§4.2): histogram + dictionary
// construction, then session reconstruction and materialization. The
// dictionary is persisted to its known HDFS location; the records land in
// the day's session-sequence partition.
func BuildDay(fs *hdfs.FS, day time.Time, sampleLimit int) (*Dictionary, *Histogram, DayStats, error) {
	var stats DayStats
	// Pass 1: histogram and dictionary.
	h, err := HistogramDay(fs, day, sampleLimit)
	if err != nil {
		return nil, nil, stats, err
	}
	dict, err := Build(h.Counts)
	if err != nil {
		return nil, nil, stats, err
	}
	if err := SaveDictionary(fs, day, dict); err != nil {
		return nil, nil, stats, err
	}
	// Pass 2: reconstruct and materialize sessions.
	b := NewBuilder(dict)
	err = warehouse.ScanDay(fs, events.Category, day, func(e *events.ClientEvent) error {
		b.Add(e)
		return nil
	})
	if err != nil {
		return nil, nil, stats, err
	}
	recs, err := b.Finish()
	if err != nil {
		return nil, nil, stats, err
	}
	if err := WriteDay(fs, day, recs, 0); err != nil {
		return nil, nil, stats, err
	}

	stats.Events = h.Events
	stats.Sessions = int64(len(recs))
	stats.Alphabet = dict.Len()
	if raw, err := rawDaySize(fs, day); err == nil {
		stats.RawBytes = raw
	}
	if sz, err := fs.TotalSize(warehouse.SessionDayDir(day)); err == nil {
		stats.SeqBytes = sz
	}
	return dict, h, stats, nil
}

// rawDaySize sums the on-disk size of the day's raw client-event logs.
func rawDaySize(fs *hdfs.FS, day time.Time) (int64, error) {
	day = day.UTC().Truncate(24 * time.Hour)
	var total int64
	for hr := 0; hr < 24; hr++ {
		dir := warehouse.HourDir(events.Category, day.Add(time.Duration(hr)*time.Hour))
		if !fs.Exists(dir) {
			continue
		}
		sz, err := warehouse.DataSize(fs, dir)
		if err != nil {
			return 0, err
		}
		total += sz
	}
	return total, nil
}

package session

import (
	"testing"
	"time"

	"unilog/internal/events"
	"unilog/internal/workload"
)

// TestGapAblation sweeps the inactivity threshold. The paper fixes 30
// minutes as "standard practice" (§4.2); this ablation shows the design
// sensitivity: session counts decrease monotonically as the gap grows, and
// every event is conserved at every setting.
func TestGapAblation(t *testing.T) {
	cfg := workload.DefaultConfig(day)
	cfg.Users = 100
	evs, truth := workload.New(cfg).Generate()
	hist := make(map[string]int64)
	for i := range evs {
		hist[evs[i].Name.String()]++
	}
	dict, err := Build(hist)
	if err != nil {
		t.Fatal(err)
	}

	gaps := []time.Duration{
		1 * time.Minute, 5 * time.Minute, 15 * time.Minute,
		30 * time.Minute, 60 * time.Minute, 6 * time.Hour,
	}
	var prevSessions int64 = 1 << 62
	for _, gap := range gaps {
		b := NewBuilder(dict)
		b.SetGap(gap)
		for i := range evs {
			b.Add(&evs[i])
		}
		recs, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		var eventsSeen int64
		for _, r := range recs {
			eventsSeen += int64(r.EventCount())
		}
		if eventsSeen != truth.Events {
			t.Fatalf("gap %v: %d events in sessions, want %d", gap, eventsSeen, truth.Events)
		}
		if int64(len(recs)) > prevSessions {
			t.Fatalf("gap %v: sessions %d > previous %d (not monotone)", gap, len(recs), prevSessions)
		}
		prevSessions = int64(len(recs))
		// At the paper's 30-minute setting the count matches ground truth.
		if gap == InactivityGap && int64(len(recs)) != truth.Sessions {
			t.Fatalf("30m gap: %d sessions, truth %d", len(recs), truth.Sessions)
		}
	}
}

// TestSessionSpanningMidnight documents the daily-build boundary behavior:
// a session crossing the day boundary splits across the two daily builds,
// as it does in the paper's daily production job.
func TestSessionSpanningMidnight(t *testing.T) {
	d1 := day
	d2 := day.AddDate(0, 0, 1)
	mk := func(at time.Time) *events.ClientEvent {
		return &events.ClientEvent{
			Name:      events.MustParseName("web:home:::tweet:impression"),
			UserID:    1,
			SessionID: "s",
			IP:        "10.0.0.1",
			Timestamp: at.UnixMilli(),
		}
	}
	dict, err := Build(map[string]int64{"web:home:::tweet:impression": 10})
	if err != nil {
		t.Fatal(err)
	}
	// Events at 23:55 of day 1 and 00:05 of day 2: within the gap, but the
	// daily job processes each day independently.
	for _, evs := range [][]*events.ClientEvent{
		{mk(d1.Add(23*time.Hour + 55*time.Minute))},
		{mk(d2.Add(5 * time.Minute))},
	} {
		b := NewBuilder(dict)
		for _, e := range evs {
			b.Add(e)
		}
		recs, err := b.Finish()
		if err != nil || len(recs) != 1 {
			t.Fatalf("recs = %v, %v", recs, err)
		}
	}
}

// TestDurationSemantics: duration is the whole-second interval between
// first and last event; single-event sessions have duration zero.
func TestDurationSemantics(t *testing.T) {
	dict, err := Build(map[string]int64{"web:home:::tweet:impression": 10})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(dict)
	base := day.Add(2 * time.Hour)
	e1 := &events.ClientEvent{Name: events.MustParseName("web:home:::tweet:impression"),
		UserID: 1, SessionID: "a", Timestamp: base.UnixMilli()}
	b.Add(e1)
	e2 := &events.ClientEvent{Name: e1.Name, UserID: 1, SessionID: "a",
		Timestamp: base.Add(90500 * time.Millisecond).UnixMilli()}
	b.Add(e2)
	e3 := &events.ClientEvent{Name: e1.Name, UserID: 2, SessionID: "b",
		Timestamp: base.UnixMilli()}
	b.Add(e3)
	recs, err := b.Finish()
	if err != nil || len(recs) != 2 {
		t.Fatalf("recs = %v, %v", recs, err)
	}
	if recs[0].Duration != 90 {
		t.Fatalf("duration = %d, want 90 (millis truncated)", recs[0].Duration)
	}
	if recs[1].Duration != 0 {
		t.Fatalf("single-event duration = %d", recs[1].Duration)
	}
	// Only relative order survives; no per-event timestamps in the record.
	if recs[0].EventCount() != 2 {
		t.Fatalf("events = %d", recs[0].EventCount())
	}
}

// TestEmptyDayBuild: building a day with no logs yields an empty store and
// an empty dictionary rather than an error.
func TestEmptyDayBuild(t *testing.T) {
	b := NewBuilder(mustDict(t))
	recs, err := b.Finish()
	if err != nil || len(recs) != 0 {
		t.Fatalf("recs = %v, %v", recs, err)
	}
}

func mustDict(t *testing.T) *Dictionary {
	t.Helper()
	d, err := Build(map[string]int64{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

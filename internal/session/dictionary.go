// Package session implements the paper's session sequences (§4): compact,
// pre-materialized digests of user sessions.
//
// A session sequence is a unicode string in which each code point stands for
// one client event name. The dictionary assigns smaller code points to more
// frequent events, so the UTF-8 encoding of a sequence is a form of
// variable-length coding: the most common events cost one or two bytes.
// Sessions are reconstructed from the raw client event logs by grouping on
// (user id, session id), ordering by timestamp, and splitting on 30-minute
// inactivity gaps; the materialized relation is
//
//	user_id, session_id, ip, session_sequence, duration
//
// exactly as in §4.2. Construction is the paper's two-pass daily job: pass
// one computes the event histogram (and samples for the catalog) and builds
// the dictionary; pass two reconstructs sessions and encodes them.
package session

import (
	"errors"
	"fmt"
	"sort"
	"unicode/utf8"

	"unilog/internal/recordio"
	"unilog/internal/thrift"
)

// Dictionary errors.
var (
	ErrUnknownEvent   = errors.New("session: event name not in dictionary")
	ErrUnknownSymbol  = errors.New("session: code point not in dictionary")
	ErrDictionaryFull = errors.New("session: alphabet exhausted")
)

// firstCodePoint is where symbol assignment starts. Control characters
// (U+0000–U+001F, U+007F) are skipped so sequences remain friendly to text
// tooling; the paper's example symbol ȵ sits in this range's
// neighbourhood.
const firstCodePoint rune = 0x20

// maxCodePoint is the last assignable unicode scalar value. "Unicode
// comprises 1.1 million available code points, and it is unlikely that the
// cardinality of our alphabet will exceed this" (§4.2).
const maxCodePoint rune = 0x10FFFF

// nextCodePoint returns the next valid symbol after r, skipping surrogates,
// the replacement character, and noncharacters.
func nextCodePoint(r rune) rune {
	r++
	for {
		switch {
		case r == 0x7F: // DEL
			r++
		case r >= 0xD800 && r <= 0xDFFF: // UTF-16 surrogates: not scalar values
			r = 0xE000
		case r == utf8.RuneError: // U+FFFD would be ambiguous with decode errors
			r++
		case r&0xFFFE == 0xFFFE: // noncharacters U+xxFFFE and U+xxFFFF
			r++
		case r >= 0xFDD0 && r <= 0xFDEF: // noncharacter block
			r = 0xFDF0
		default:
			return r
		}
	}
}

// Dictionary is the bijective mapping between event names and unicode code
// points (§4.2), with frequent events assigned smaller code points.
type Dictionary struct {
	toSymbol map[string]rune
	toName   map[rune]string
	// names holds event names in assignment (descending frequency) order.
	names []string
	// counts holds the histogram the dictionary was built from, aligned
	// with names.
	counts []int64
}

// Build constructs a dictionary from an event-count histogram. Names are
// assigned code points in descending count order (ties broken
// lexicographically so builds are deterministic).
func Build(histogram map[string]int64) (*Dictionary, error) {
	names := make([]string, 0, len(histogram))
	for name := range histogram {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		ci, cj := histogram[names[i]], histogram[names[j]]
		if ci != cj {
			return ci > cj
		}
		return names[i] < names[j]
	})
	d := &Dictionary{
		toSymbol: make(map[string]rune, len(names)),
		toName:   make(map[rune]string, len(names)),
		names:    names,
		counts:   make([]int64, len(names)),
	}
	r := firstCodePoint
	for i, name := range names {
		if r > maxCodePoint {
			return nil, ErrDictionaryFull
		}
		d.toSymbol[name] = r
		d.toName[r] = name
		d.counts[i] = histogram[name]
		r = nextCodePoint(r)
	}
	return d, nil
}

// Len returns the alphabet size.
func (d *Dictionary) Len() int { return len(d.names) }

// Symbol returns the code point assigned to the event name.
func (d *Dictionary) Symbol(name string) (rune, bool) {
	r, ok := d.toSymbol[name]
	return r, ok
}

// Name returns the event name assigned to the code point.
func (d *Dictionary) Name(r rune) (string, bool) {
	n, ok := d.toName[r]
	return n, ok
}

// Names returns event names in assignment (descending frequency) order.
// The returned slice is shared; do not modify it.
func (d *Dictionary) Names() []string { return d.names }

// Count returns the histogram count the name had at build time.
func (d *Dictionary) Count(name string) int64 {
	for i, n := range d.names {
		if n == name {
			return d.counts[i]
		}
	}
	return 0
}

// Encode translates a sequence of event names into a session-sequence
// string.
func (d *Dictionary) Encode(names []string) (string, error) {
	buf := make([]rune, len(names))
	for i, n := range names {
		r, ok := d.toSymbol[n]
		if !ok {
			return "", fmt.Errorf("%w: %q", ErrUnknownEvent, n)
		}
		buf[i] = r
	}
	return string(buf), nil
}

// Decode translates a session-sequence string back into event names.
func (d *Dictionary) Decode(seq string) ([]string, error) {
	out := make([]string, 0, len(seq))
	for _, r := range seq {
		n, ok := d.toName[r]
		if !ok {
			return nil, fmt.Errorf("%w: %U", ErrUnknownSymbol, r)
		}
		out = append(out, n)
	}
	return out, nil
}

// SymbolsWhere returns the code points of every event name accepted by the
// predicate. This is the dictionary-expansion step behind the paper's UDFs:
// "an arbitrary regular expression can be supplied which is automatically
// expanded to include all matching events" (§5.2).
func (d *Dictionary) SymbolsWhere(pred func(name string) bool) []rune {
	var out []rune
	for _, name := range d.names {
		if pred(name) {
			out = append(out, d.toSymbol[name])
		}
	}
	return out
}

// Marshal serializes the dictionary as a gzipped record stream of
// (name, count) entries in assignment order.
func (d *Dictionary) Marshal() ([]byte, error) {
	buf := &sliceBuf{}
	w := recordio.NewGzipWriter(buf)
	enc := thrift.NewCompactEncoder()
	for i, name := range d.names {
		enc.Reset()
		enc.WriteStructBegin()
		enc.WriteFieldBegin(thrift.STRING, 1)
		enc.WriteString(name)
		enc.WriteFieldBegin(thrift.I64, 2)
		enc.WriteI64(d.counts[i])
		enc.WriteFieldStop()
		enc.WriteStructEnd()
		if err := w.Append(enc.Bytes()); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.data, nil
}

// Unmarshal reconstructs a dictionary serialized by Marshal. Assignment
// order is preserved, so symbols are identical to the original's.
func Unmarshal(data []byte) (*Dictionary, error) {
	d := &Dictionary{
		toSymbol: make(map[string]rune),
		toName:   make(map[rune]string),
	}
	r := firstCodePoint
	err := recordio.ScanGzipFile(data, func(rec []byte) error {
		dec := thrift.NewCompactDecoder(rec)
		var name string
		var count int64
		if err := dec.ReadStructBegin(); err != nil {
			return err
		}
		for {
			ft, id, err := dec.ReadFieldBegin()
			if err != nil {
				return err
			}
			if ft == thrift.STOP {
				break
			}
			switch id {
			case 1:
				name, err = dec.ReadString()
			case 2:
				count, err = dec.ReadI64()
			default:
				err = dec.Skip(ft)
			}
			if err != nil {
				return err
			}
		}
		if r > maxCodePoint {
			return ErrDictionaryFull
		}
		d.toSymbol[name] = r
		d.toName[r] = name
		d.names = append(d.names, name)
		d.counts = append(d.counts, count)
		r = nextCodePoint(r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

type sliceBuf struct{ data []byte }

func (b *sliceBuf) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

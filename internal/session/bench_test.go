package session

import (
	"fmt"
	"testing"
	"time"

	"unilog/internal/events"
)

func benchDictionary(b *testing.B, n int) *Dictionary {
	b.Helper()
	h := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		h[fmt.Sprintf("web:p%04d:::e:act", i)] = int64(n - i)
	}
	d, err := Build(h)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkDictionaryBuild(b *testing.B) {
	h := make(map[string]int64, 1000)
	for i := 0; i < 1000; i++ {
		h[fmt.Sprintf("web:p%04d:::e:act", i)] = int64(1000 - i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	d := benchDictionary(b, 1000)
	names := make([]string, 200)
	for i := range names {
		names[i] = fmt.Sprintf("web:p%04d:::e:act", i%1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Encode(names); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	d := benchDictionary(b, 1000)
	names := make([]string, 200)
	for i := range names {
		names[i] = fmt.Sprintf("web:p%04d:::e:act", i%1000)
	}
	seq, err := d.Encode(names)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Decode(seq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionize(b *testing.B) {
	d := benchDictionary(b, 50)
	base := time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)
	evs := make([]events.ClientEvent, 0, 10000)
	for u := int64(0); u < 100; u++ {
		for i := 0; i < 100; i++ {
			evs = append(evs, events.ClientEvent{
				Name:      events.MustParseName(fmt.Sprintf("web:p%04d:::e:act", (int(u)+i)%50)),
				UserID:    u,
				SessionID: "s",
				Timestamp: base.Add(time.Duration(u)*time.Minute + time.Duration(i)*time.Second).UnixMilli(),
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bu := NewBuilder(d)
		for j := range evs {
			bu.Add(&evs[j])
		}
		recs, err := bu.Finish()
		if err != nil || len(recs) != 100 {
			b.Fatalf("recs = %d, %v", len(recs), err)
		}
	}
	b.ReportMetric(float64(len(evs)), "events")
}

package session

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"
	"unicode/utf8"

	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/warehouse"
)

func TestDictionaryFrequencyOrder(t *testing.T) {
	d, err := Build(map[string]int64{
		"web:home:::tweet:impression": 1000,
		"web:home:::tweet:click":      100,
		"iphone:home:::tweet:open":    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	imp, _ := d.Symbol("web:home:::tweet:impression")
	clk, _ := d.Symbol("web:home:::tweet:click")
	opn, _ := d.Symbol("iphone:home:::tweet:open")
	if !(imp < clk && clk < opn) {
		t.Fatalf("code points not frequency ordered: %U %U %U", imp, clk, opn)
	}
	if imp != firstCodePoint {
		t.Fatalf("most frequent event = %U, want %U", imp, firstCodePoint)
	}
}

func TestDictionaryRoundTrip(t *testing.T) {
	d, err := Build(map[string]int64{"a:::::x": 5, "b:::::y": 3, "c:::::z": 1})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a:::::x", "c:::::z", "a:::::x", "b:::::y"}
	seq, err := d.Encode(names)
	if err != nil {
		t.Fatal(err)
	}
	if !utf8.ValidString(seq) {
		t.Fatal("sequence is not valid unicode")
	}
	back, err := d.Decode(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(names) {
		t.Fatalf("decode length = %d", len(back))
	}
	for i := range names {
		if back[i] != names[i] {
			t.Fatalf("decode[%d] = %q, want %q", i, back[i], names[i])
		}
	}
}

func TestDictionaryUnknowns(t *testing.T) {
	d, err := Build(map[string]int64{"a:::::x": 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Encode([]string{"nope:::::x"}); !errors.Is(err, ErrUnknownEvent) {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.Decode("￰"); !errors.Is(err, ErrUnknownSymbol) {
		t.Fatalf("err = %v", err)
	}
}

// TestVariableLengthCoding verifies the paper's trick: "more frequent
// events are assigned smaller code points ... smaller unicode points
// require fewer bytes to physically represent" (§4.2).
func TestVariableLengthCoding(t *testing.T) {
	// 3000 names: frequent ones must get shorter UTF-8 encodings.
	h := make(map[string]int64, 3000)
	for i := 0; i < 3000; i++ {
		h[fmt.Sprintf("web:p%04d:::e:act", i)] = int64(3000 - i)
	}
	d, err := Build(h)
	if err != nil {
		t.Fatal(err)
	}
	top, _ := d.Symbol("web:p0000:::e:act")
	bottom, _ := d.Symbol("web:p2999:::e:act")
	if utf8.RuneLen(top) != 1 {
		t.Fatalf("most frequent symbol %U encodes in %d bytes, want 1", top, utf8.RuneLen(top))
	}
	if utf8.RuneLen(bottom) <= utf8.RuneLen(top) {
		t.Fatalf("rare symbol %U not longer than frequent %U", bottom, top)
	}
}

// TestSurrogateAvoidance builds an alphabet large enough to cross the
// UTF-16 surrogate range and checks every symbol is a valid scalar value.
func TestSurrogateAvoidance(t *testing.T) {
	n := 60000
	h := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		h[fmt.Sprintf("c%05d:::::a", i)] = int64(n - i)
	}
	d, err := Build(h)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != n {
		t.Fatalf("Len = %d", d.Len())
	}
	for _, name := range d.Names() {
		r, _ := d.Symbol(name)
		if r >= 0xD800 && r <= 0xDFFF {
			t.Fatalf("symbol %U is a surrogate", r)
		}
		if r == utf8.RuneError {
			t.Fatalf("symbol is U+FFFD")
		}
		if r&0xFFFE == 0xFFFE || (r >= 0xFDD0 && r <= 0xFDEF) {
			t.Fatalf("symbol %U is a noncharacter", r)
		}
		if !utf8.ValidRune(r) {
			t.Fatalf("symbol %U not a valid rune", r)
		}
	}
}

func TestDictionaryMarshalRoundTrip(t *testing.T) {
	h := map[string]int64{"a:::::x": 9, "b:::::y": 5, "c:::::z": 5}
	d, err := Build(h)
	if err != nil {
		t.Fatal(err)
	}
	data, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("Len = %d", d2.Len())
	}
	for _, name := range d.Names() {
		r1, _ := d.Symbol(name)
		r2, ok := d2.Symbol(name)
		if !ok || r1 != r2 {
			t.Fatalf("symbol mismatch for %q: %U vs %U", name, r1, r2)
		}
		if d.Count(name) != d2.Count(name) {
			t.Fatalf("count mismatch for %q", name)
		}
	}
}

func TestSymbolsWhere(t *testing.T) {
	d, err := Build(map[string]int64{
		"web:home:::tweet:impression":    100,
		"web:home:::tweet:click":         50,
		"iphone:home:::tweet:impression": 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := events.MustParsePattern("*:impression")
	syms := d.SymbolsWhere(p.MatchesString)
	if len(syms) != 2 {
		t.Fatalf("SymbolsWhere = %d symbols, want 2", len(syms))
	}
}

// --- sessionizer ---

var day = time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)

func ev(user int64, sess string, name string, at time.Time) *events.ClientEvent {
	return &events.ClientEvent{
		Name:      events.MustParseName(name),
		UserID:    user,
		SessionID: sess,
		IP:        "10.0.0.1",
		Timestamp: at.UnixMilli(),
	}
}

func testDict(t *testing.T) *Dictionary {
	t.Helper()
	d, err := Build(map[string]int64{
		"web:home:::tweet:impression": 100,
		"web:home:::tweet:click":      50,
		"web:search:::result:click":   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSessionizeGroupsAndOrders(t *testing.T) {
	d := testDict(t)
	b := NewBuilder(d)
	// Two users interleaved; events arrive out of order.
	b.Add(ev(2, "s2", "web:home:::tweet:click", day.Add(2*time.Minute)))
	b.Add(ev(1, "s1", "web:home:::tweet:impression", day))
	b.Add(ev(1, "s1", "web:search:::result:click", day.Add(5*time.Minute)))
	b.Add(ev(1, "s1", "web:home:::tweet:click", day.Add(1*time.Minute)))
	b.Add(ev(2, "s2", "web:home:::tweet:impression", day.Add(1*time.Minute)))
	recs, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("sessions = %d, want 2", len(recs))
	}
	got1, err := d.Decode(recs[0].Sequence)
	if err != nil {
		t.Fatal(err)
	}
	want1 := []string{"web:home:::tweet:impression", "web:home:::tweet:click", "web:search:::result:click"}
	for i := range want1 {
		if got1[i] != want1[i] {
			t.Fatalf("user1 sequence[%d] = %q, want %q", i, got1[i], want1[i])
		}
	}
	if recs[0].Duration != 300 {
		t.Fatalf("user1 duration = %d, want 300s", recs[0].Duration)
	}
	if recs[1].UserID != 2 || recs[1].EventCount() != 2 {
		t.Fatalf("user2 record = %+v", recs[1])
	}
}

// TestInactivityGapSplits: a gap greater than 30 minutes starts a new
// session for the same (user, session id) pair.
func TestInactivityGapSplits(t *testing.T) {
	d := testDict(t)
	b := NewBuilder(d)
	b.Add(ev(1, "cookie", "web:home:::tweet:impression", day))
	b.Add(ev(1, "cookie", "web:home:::tweet:click", day.Add(10*time.Minute)))
	// 31-minute silence.
	b.Add(ev(1, "cookie", "web:home:::tweet:impression", day.Add(41*time.Minute)))
	recs, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("sessions = %d, want 2 (gap split)", len(recs))
	}
	if recs[0].EventCount() != 2 || recs[1].EventCount() != 1 {
		t.Fatalf("session sizes = %d, %d", recs[0].EventCount(), recs[1].EventCount())
	}
	// A gap of exactly 30 minutes does NOT split.
	b2 := NewBuilder(d)
	b2.Add(ev(1, "c", "web:home:::tweet:impression", day))
	b2.Add(ev(1, "c", "web:home:::tweet:click", day.Add(30*time.Minute)))
	recs2, err := b2.Finish()
	if err != nil || len(recs2) != 1 {
		t.Fatalf("exact-gap sessions = %d, %v", len(recs2), err)
	}
}

func TestSameUserDifferentSessionIDs(t *testing.T) {
	d := testDict(t)
	b := NewBuilder(d)
	b.Add(ev(1, "laptop", "web:home:::tweet:impression", day))
	b.Add(ev(1, "phone", "web:home:::tweet:impression", day))
	recs, err := b.Finish()
	if err != nil || len(recs) != 2 {
		t.Fatalf("recs = %d, %v", len(recs), err)
	}
}

func TestEventConservationProperty(t *testing.T) {
	// Every event fed to the builder appears in exactly one session record.
	d := testDict(t)
	names := d.Names()
	f := func(userIDs []uint8, minutes []uint16) bool {
		if len(userIDs) == 0 {
			return true
		}
		if len(minutes) > len(userIDs) {
			minutes = minutes[:len(userIDs)]
		}
		b := NewBuilder(d)
		total := 0
		for i, u := range userIDs {
			min := 0
			if i < len(minutes) {
				min = int(minutes[i] % 1440)
			}
			b.Add(ev(int64(u%8), "s", names[i%len(names)], day.Add(time.Duration(min)*time.Minute)))
			total++
		}
		recs, err := b.Finish()
		if err != nil {
			return false
		}
		got := 0
		for _, r := range recs {
			got += r.EventCount()
			if r.Duration < 0 {
				return false
			}
		}
		return got == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordThriftRoundTrip(t *testing.T) {
	in := Record{UserID: 42, SessionID: "cookie", IP: "1.2.3.4", Sequence: "ȵ!Z", Duration: 1234, Start: day.UnixMilli()}
	fs := hdfs.New(0)
	if err := WriteDay(fs, day, []Record{in}, 0); err != nil {
		t.Fatal(err)
	}
	var out []Record
	if err := ScanDay(fs, day, func(r *Record) error {
		out = append(out, *r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}

func TestWriteDayRolling(t *testing.T) {
	fs := hdfs.New(0)
	recs := make([]Record, 250)
	for i := range recs {
		recs[i] = Record{UserID: int64(i), SessionID: "s", Sequence: " ", Start: day.UnixMilli()}
	}
	if err := WriteDay(fs, day, recs, 100); err != nil {
		t.Fatal(err)
	}
	infos, err := fs.Walk(warehouse.SessionDayDir(day))
	if err != nil || len(infos) != 3 {
		t.Fatalf("part files = %d, %v", len(infos), err)
	}
	n := 0
	if err := ScanDay(fs, day, func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 250 {
		t.Fatalf("scanned %d records", n)
	}
}

// TestBuildDayEndToEnd exercises the full two-pass job against a warehouse
// populated through the direct writer.
func TestBuildDayEndToEnd(t *testing.T) {
	fs := hdfs.New(0)
	w := warehouse.NewWriter(fs, events.Category)
	nEvents := 0
	for u := int64(1); u <= 20; u++ {
		for i := 0; i < 30; i++ {
			name := "web:home:::tweet:impression"
			if i%5 == 0 {
				name = "web:home:::tweet:click"
			}
			e := ev(u, fmt.Sprintf("sess-%d", u), name, day.Add(time.Duration(u)*time.Hour).Add(time.Duration(i)*time.Minute))
			if err := w.Append(e); err != nil {
				t.Fatal(err)
			}
			nEvents++
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	dict, hist, stats, err := BuildDay(fs, day, 3)
	if err != nil {
		t.Fatal(err)
	}
	if hist.Events != int64(nEvents) || stats.Events != int64(nEvents) {
		t.Fatalf("events = %d / %d, want %d", hist.Events, stats.Events, nEvents)
	}
	if dict.Len() != 2 {
		t.Fatalf("alphabet = %d", dict.Len())
	}
	// 30 events per user with 1-minute spacing => one session per user.
	if stats.Sessions != 20 {
		t.Fatalf("sessions = %d, want 20", stats.Sessions)
	}
	// The dictionary is persisted and reloadable.
	d2, err := LoadDictionary(fs, day)
	if err != nil || d2.Len() != 2 {
		t.Fatalf("LoadDictionary = %v, %v", d2, err)
	}
	// Samples were retained for the catalog.
	if len(hist.Samples["web:home:::tweet:impression"]) != 3 {
		t.Fatalf("samples = %d", len(hist.Samples["web:home:::tweet:impression"]))
	}
	// The materialized day is much smaller than the raw logs.
	if stats.SeqBytes == 0 || stats.RawBytes == 0 {
		t.Fatalf("sizes not measured: %+v", stats)
	}
	if stats.Ratio() < 2 {
		t.Fatalf("compression ratio = %.1f, expected sequences to be much smaller", stats.Ratio())
	}
	// Scanning the day returns every session with decodable sequences.
	n := 0
	if err := ScanDay(fs, day, func(r *Record) error {
		if _, err := dict.Decode(r.Sequence); err != nil {
			return err
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("scanned %d sessions", n)
	}
}

func TestEncodeDecodePropertyOverDictionary(t *testing.T) {
	d := testDict(t)
	names := d.Names()
	f := func(idx []uint8) bool {
		in := make([]string, len(idx))
		for i, x := range idx {
			in[i] = names[int(x)%len(names)]
		}
		seq, err := d.Encode(in)
		if err != nil {
			return false
		}
		out, err := d.Decode(seq)
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package session

import (
	"testing"

	"unilog/internal/events"
	"unilog/internal/workload"
)

// TestAnonymizedLogsSessionizeIdentically: §3.2's consistent anonymization
// policy must preserve the analyses sessions exist for — pseudonymized
// identifiers keep joinability, so session structure is unchanged.
func TestAnonymizedLogsSessionizeIdentically(t *testing.T) {
	cfg := workload.DefaultConfig(day)
	cfg.Users = 80
	evs, truth := workload.New(cfg).Generate()
	hist := make(map[string]int64)
	for i := range evs {
		hist[evs[i].Name.String()]++
	}
	dict, err := Build(hist)
	if err != nil {
		t.Fatal(err)
	}

	plain := NewBuilder(dict)
	for i := range evs {
		plain.Add(&evs[i])
	}
	plainRecs, err := plain.Finish()
	if err != nil {
		t.Fatal(err)
	}

	anon := events.NewAnonymizer([]byte("gdpr-era-1"))
	anonymized := NewBuilder(dict)
	for i := range evs {
		e := evs[i] // copy; Apply mutates
		e.Details = copyMap(e.Details)
		anon.Apply(&e)
		anonymized.Add(&e)
	}
	anonRecs, err := anonymized.Finish()
	if err != nil {
		t.Fatal(err)
	}

	if len(anonRecs) != len(plainRecs) || int64(len(anonRecs)) != truth.Sessions {
		t.Fatalf("anonymized sessions = %d, plain = %d, truth = %d",
			len(anonRecs), len(plainRecs), truth.Sessions)
	}
	// The multiset of session sequences is identical (order may differ
	// because pseudonymized keys sort differently).
	plainSeqs := make(map[string]int)
	for _, r := range plainRecs {
		plainSeqs[r.Sequence]++
	}
	for _, r := range anonRecs {
		plainSeqs[r.Sequence]--
	}
	for seq, n := range plainSeqs {
		if n != 0 {
			t.Fatalf("sequence %q count differs by %d after anonymization", seq, n)
		}
	}
	// Identifiers actually changed.
	for i := range anonRecs {
		if anonRecs[i].UserID != 0 {
			found := false
			for j := range plainRecs {
				if plainRecs[j].UserID == anonRecs[i].UserID {
					found = true
					break
				}
			}
			if found {
				t.Fatal("pseudonymized user id collides with a real one")
			}
			break
		}
	}
}

func copyMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

package session

import (
	"sort"
	"time"

	"unilog/internal/events"
	"unilog/internal/thrift"
)

// InactivityGap delimits user sessions: "following standard practices, we
// use a 30-minute inactivity interval" (§4.2).
const InactivityGap = 30 * time.Minute

// Record is the materialized session relation of §4.2:
//
//	user_id: long, session_id: string, ip: string,
//	session_sequence: string, duration: int
//
// Start is an implementation extra used to assign a record to its day
// partition; the paper's relation is "slightly simplified".
type Record struct {
	UserID    int64
	SessionID string
	IP        string
	// Sequence is the unicode session-sequence string. Other than overall
	// duration, no temporal information survives — only relative order.
	Sequence string
	// Duration is the whole-second interval between the first and last
	// event of the session.
	Duration int32
	// Start is the timestamp of the first event, in ms since the epoch.
	Start int64
}

// EventCount returns the number of events in the session.
func (r *Record) EventCount() int {
	n := 0
	for range r.Sequence {
		n++
	}
	return n
}

// Thrift field ids for Record.
const (
	rfUserID    = 1
	rfSessionID = 2
	rfIP        = 3
	rfSequence  = 4
	rfDuration  = 5
	rfStart     = 6
)

// Encode writes the record as a Thrift struct.
func (r *Record) Encode(enc thrift.Encoder) {
	enc.WriteStructBegin()
	enc.WriteFieldBegin(thrift.I64, rfUserID)
	enc.WriteI64(r.UserID)
	enc.WriteFieldBegin(thrift.STRING, rfSessionID)
	enc.WriteString(r.SessionID)
	enc.WriteFieldBegin(thrift.STRING, rfIP)
	enc.WriteString(r.IP)
	enc.WriteFieldBegin(thrift.STRING, rfSequence)
	enc.WriteString(r.Sequence)
	enc.WriteFieldBegin(thrift.I32, rfDuration)
	enc.WriteI32(r.Duration)
	enc.WriteFieldBegin(thrift.I64, rfStart)
	enc.WriteI64(r.Start)
	enc.WriteFieldStop()
	enc.WriteStructEnd()
}

// Decode reads the record from a Thrift struct.
func (r *Record) Decode(dec thrift.Decoder) error {
	if err := dec.ReadStructBegin(); err != nil {
		return err
	}
	for {
		ft, id, err := dec.ReadFieldBegin()
		if err != nil {
			return err
		}
		if ft == thrift.STOP {
			break
		}
		switch id {
		case rfUserID:
			r.UserID, err = dec.ReadI64()
		case rfSessionID:
			r.SessionID, err = dec.ReadString()
		case rfIP:
			r.IP, err = dec.ReadString()
		case rfSequence:
			r.Sequence, err = dec.ReadString()
		case rfDuration:
			r.Duration, err = dec.ReadI32()
		case rfStart:
			r.Start, err = dec.ReadI64()
		default:
			err = dec.Skip(ft)
		}
		if err != nil {
			return err
		}
	}
	return dec.ReadStructEnd()
}

// sessionKey identifies one (user, session-id) group.
type sessionKey struct {
	userID    int64
	sessionID string
}

// pendingEvent is the projection of a client event the sessionizer keeps:
// name, timestamp, IP — everything else is discarded early, mirroring the
// early-projection Pig idiom of §4.1.
type pendingEvent struct {
	name string
	ts   int64
	ip   string
}

// Builder reconstructs sessions from a stream of client events. Feed every
// event of the day with Add, then call Finish.
//
// This is the materialization of the group-by the paper wants to avoid
// doing per-query: "essentially, a large group-by across potentially
// terabytes of data" (§4.1) — done once here, so queries don't have to.
type Builder struct {
	dict   *Dictionary
	gap    time.Duration
	groups map[sessionKey][]pendingEvent
	errs   []error
}

// NewBuilder returns a Builder encoding with the given dictionary and the
// standard 30-minute gap.
func NewBuilder(dict *Dictionary) *Builder {
	return &Builder{
		dict:   dict,
		gap:    InactivityGap,
		groups: make(map[sessionKey][]pendingEvent),
	}
}

// SetGap overrides the inactivity gap (used by ablation experiments).
func (b *Builder) SetGap(gap time.Duration) { b.gap = gap }

// Add feeds one client event.
func (b *Builder) Add(e *events.ClientEvent) {
	k := sessionKey{userID: e.UserID, sessionID: e.SessionID}
	b.groups[k] = append(b.groups[k], pendingEvent{name: e.Name.String(), ts: e.Timestamp, ip: e.IP})
}

// Finish orders each group by timestamp, splits it on inactivity gaps, and
// encodes each resulting session. Records are returned sorted by
// (UserID, SessionID, Start) for deterministic output.
func (b *Builder) Finish() ([]Record, error) {
	keys := make([]sessionKey, 0, len(b.groups))
	for k := range b.groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].userID != keys[j].userID {
			return keys[i].userID < keys[j].userID
		}
		return keys[i].sessionID < keys[j].sessionID
	})
	var out []Record
	gapMillis := b.gap.Milliseconds()
	for _, k := range keys {
		evs := b.groups[k]
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].ts != evs[j].ts {
				return evs[i].ts < evs[j].ts
			}
			return evs[i].name < evs[j].name
		})
		start := 0
		for i := 1; i <= len(evs); i++ {
			if i < len(evs) && evs[i].ts-evs[i-1].ts <= gapMillis {
				continue
			}
			seg := evs[start:i]
			rec, err := b.encodeSegment(k, seg)
			if err != nil {
				return nil, err
			}
			out = append(out, rec)
			start = i
		}
	}
	return out, nil
}

func (b *Builder) encodeSegment(k sessionKey, seg []pendingEvent) (Record, error) {
	names := make([]string, len(seg))
	for i, e := range seg {
		names[i] = e.name
	}
	seq, err := b.dict.Encode(names)
	if err != nil {
		return Record{}, err
	}
	return Record{
		UserID:    k.userID,
		SessionID: k.sessionID,
		IP:        seg[0].ip,
		Sequence:  seq,
		Duration:  int32((seg[len(seg)-1].ts - seg[0].ts) / 1000),
		Start:     seg[0].ts,
	}, nil
}

// Package catalog implements the automatically-generated client event
// catalog of §4.3: a browsable, searchable index of every event type,
// rebuilt daily from the histogram job, with sample messages and
// developer-attachable descriptions.
//
// "Since the event catalog is rebuilt every day, it is always up to date
// ... the catalog remains immensely useful as a single point of entry for
// understanding log contents."
package catalog

import (
	"errors"
	"fmt"
	"io"
	"regexp"
	"sort"

	"time"

	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/recordio"
	"unilog/internal/session"
	"unilog/internal/thrift"
	"unilog/internal/warehouse"
)

// ErrNoEntry reports a lookup of an unknown event name.
var ErrNoEntry = errors.New("catalog: no such event")

// Entry describes one event type.
type Entry struct {
	Name  string
	Count int64
	// Samples holds a few full decoded messages, "a few illustrative
	// examples of the complete Thrift structure".
	Samples []*events.ClientEvent
	// Description is developer-attached documentation; empty until someone
	// writes one.
	Description string
}

// Catalog is one day's event catalog.
type Catalog struct {
	Day     time.Time
	entries map[string]*Entry
	// order lists names by descending count (the dictionary order).
	order []string
}

// BuildFromHistogram constructs the catalog from the daily histogram job's
// output.
func BuildFromHistogram(day time.Time, h *session.Histogram) (*Catalog, error) {
	c := &Catalog{Day: day.UTC().Truncate(24 * time.Hour), entries: make(map[string]*Entry)}
	for name, count := range h.Counts {
		e := &Entry{Name: name, Count: count}
		for _, raw := range h.Samples[name] {
			var ev events.ClientEvent
			if err := ev.Unmarshal(raw); err != nil {
				return nil, fmt.Errorf("catalog: bad sample for %s: %w", name, err)
			}
			e.Samples = append(e.Samples, &ev)
		}
		c.entries[name] = e
		c.order = append(c.order, name)
	}
	sort.Slice(c.order, func(i, j int) bool {
		ci, cj := c.entries[c.order[i]].Count, c.entries[c.order[j]].Count
		if ci != cj {
			return ci > cj
		}
		return c.order[i] < c.order[j]
	})
	return c, nil
}

// Len returns the number of event types.
func (c *Catalog) Len() int { return len(c.entries) }

// Get returns the entry for an exact event name.
func (c *Catalog) Get(name string) (*Entry, error) {
	e, ok := c.entries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoEntry, name)
	}
	return e, nil
}

// Describe attaches (or replaces) the developer description of an event.
func (c *Catalog) Describe(name, description string) error {
	e, ok := c.entries[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoEntry, name)
	}
	e.Description = description
	return nil
}

// All returns every entry, most frequent first.
func (c *Catalog) All() []*Entry {
	out := make([]*Entry, len(c.order))
	for i, n := range c.order {
		out[i] = c.entries[n]
	}
	return out
}

// SearchPattern returns entries matching a wildcard pattern, most frequent
// first — "the interface lets users browse and search through the client
// events ... hierarchically, by each of the namespace components".
func (c *Catalog) SearchPattern(pattern string) ([]*Entry, error) {
	p, err := events.ParsePattern(pattern)
	if err != nil {
		return nil, err
	}
	var out []*Entry
	for _, name := range c.order {
		if p.MatchesString(name) {
			out = append(out, c.entries[name])
		}
	}
	return out, nil
}

// SearchRegexp returns entries whose name matches the regular expression.
func (c *Catalog) SearchRegexp(expr string) ([]*Entry, error) {
	re, err := regexp.Compile(expr)
	if err != nil {
		return nil, err
	}
	var out []*Entry
	for _, name := range c.order {
		if re.MatchString(name) {
			out = append(out, c.entries[name])
		}
	}
	return out, nil
}

// Children enumerates the distinct values of the component at depth
// len(prefix) among events whose leading components equal prefix — the
// hierarchical browsing view. Values are returned sorted with their event
// counts aggregated.
func (c *Catalog) Children(prefix []string) ([]ComponentCount, error) {
	if len(prefix) >= events.NumComponents {
		return nil, fmt.Errorf("catalog: prefix depth %d exceeds hierarchy", len(prefix))
	}
	agg := make(map[string]int64)
	for name, e := range c.entries {
		n, err := events.ParseName(name)
		if err != nil {
			continue
		}
		match := true
		for i, p := range prefix {
			if n.At(i) != p {
				match = false
				break
			}
		}
		if match {
			agg[n.At(len(prefix))] += e.Count
		}
	}
	out := make([]ComponentCount, 0, len(agg))
	for v, n := range agg {
		out = append(out, ComponentCount{Value: v, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out, nil
}

// ComponentCount is one value of a hierarchy level with its event count.
type ComponentCount struct {
	Value string
	Count int64
}

// Render writes a human-readable listing of entries to w.
func Render(w io.Writer, entries []*Entry, withSamples bool) {
	for _, e := range entries {
		fmt.Fprintf(w, "%12d  %s\n", e.Count, e.Name)
		if e.Description != "" {
			fmt.Fprintf(w, "              # %s\n", e.Description)
		}
		if withSamples {
			for _, s := range e.Samples {
				fmt.Fprintf(w, "              sample: user=%d session=%s ip=%s details=%v\n",
					s.UserID, s.SessionID, s.IP, s.Details)
			}
		}
	}
}

// catalogFile is the daily persisted catalog location, beside the
// dictionary.
func catalogFile(day time.Time) string {
	return warehouse.DictionaryDir(day) + "/catalog.gz"
}

// Save persists the catalog (counts, samples, and descriptions).
func (c *Catalog) Save(fs *hdfs.FS) error {
	buf := &memBuf{}
	w := recordio.NewGzipWriter(buf)
	enc := thrift.NewCompactEncoder()
	for _, name := range c.order {
		e := c.entries[name]
		enc.Reset()
		enc.WriteStructBegin()
		enc.WriteFieldBegin(thrift.STRING, 1)
		enc.WriteString(e.Name)
		enc.WriteFieldBegin(thrift.I64, 2)
		enc.WriteI64(e.Count)
		enc.WriteFieldBegin(thrift.STRING, 3)
		enc.WriteString(e.Description)
		enc.WriteFieldBegin(thrift.LIST, 4)
		enc.WriteListBegin(thrift.STRING, len(e.Samples))
		for _, s := range e.Samples {
			enc.WriteBinary(s.Marshal())
		}
		enc.WriteFieldStop()
		enc.WriteStructEnd()
		if err := w.Append(enc.Bytes()); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	path := catalogFile(c.Day)
	if fs.Exists(path) {
		if err := fs.Delete(path, false); err != nil {
			return err
		}
	}
	return fs.WriteFile(path, buf.data)
}

// Load reads the persisted catalog of a day.
func Load(fs *hdfs.FS, day time.Time) (*Catalog, error) {
	data, err := fs.ReadFile(catalogFile(day))
	if err != nil {
		return nil, err
	}
	c := &Catalog{Day: day.UTC().Truncate(24 * time.Hour), entries: make(map[string]*Entry)}
	err = recordio.ScanGzipFile(data, func(rec []byte) error {
		dec := thrift.NewCompactDecoder(rec)
		e := &Entry{}
		if err := dec.ReadStructBegin(); err != nil {
			return err
		}
		for {
			ft, id, err := dec.ReadFieldBegin()
			if err != nil {
				return err
			}
			if ft == thrift.STOP {
				break
			}
			switch id {
			case 1:
				e.Name, err = dec.ReadString()
			case 2:
				e.Count, err = dec.ReadI64()
			case 3:
				e.Description, err = dec.ReadString()
			case 4:
				var n int
				if _, n, err = dec.ReadListBegin(); err == nil {
					for i := 0; i < n; i++ {
						raw, rerr := dec.ReadBinary()
						if rerr != nil {
							return rerr
						}
						var ev events.ClientEvent
						if rerr := ev.Unmarshal(raw); rerr != nil {
							return rerr
						}
						e.Samples = append(e.Samples, &ev)
					}
				}
			default:
				err = dec.Skip(ft)
			}
			if err != nil {
				return err
			}
		}
		if err := dec.ReadStructEnd(); err != nil {
			return err
		}
		c.entries[e.Name] = e
		c.order = append(c.order, e.Name)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Rebuild runs the full daily catalog job: histogram scan, catalog
// construction, and persistence — carrying descriptions forward from the
// previous day's catalog when event names persist.
func Rebuild(fs *hdfs.FS, day time.Time, sampleLimit int) (*Catalog, error) {
	h, err := session.HistogramDay(fs, day, sampleLimit)
	if err != nil {
		return nil, err
	}
	c, err := BuildFromHistogram(day, h)
	if err != nil {
		return nil, err
	}
	if prev, err := Load(fs, day.AddDate(0, 0, -1)); err == nil {
		for name, e := range c.entries {
			if pe, ok := prev.entries[name]; ok && pe.Description != "" {
				e.Description = pe.Description
			}
		}
	}
	if err := c.Save(fs); err != nil {
		return nil, err
	}
	return c, nil
}

type memBuf struct{ data []byte }

func (m *memBuf) Write(p []byte) (int, error) {
	m.data = append(m.data, p...)
	return len(p), nil
}

package catalog

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"unilog/internal/hdfs"
	"unilog/internal/session"
	"unilog/internal/workload"
)

var day = time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)

func buildFS(t *testing.T) *hdfs.FS {
	t.Helper()
	cfg := workload.DefaultConfig(day)
	cfg.Users = 80
	evs, _ := workload.New(cfg).Generate()
	fs := hdfs.New(0)
	if err := workload.WriteWarehouse(fs, evs); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestRebuildAndQuery(t *testing.T) {
	fs := buildFS(t)
	c, err := Rebuild(fs, day, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() == 0 {
		t.Fatal("empty catalog")
	}
	// Entries are ordered by count descending.
	all := c.All()
	for i := 1; i < len(all); i++ {
		if all[i].Count > all[i-1].Count {
			t.Fatalf("catalog not count-ordered at %d", i)
		}
	}
	// Samples are full decoded messages.
	if len(all[0].Samples) == 0 || all[0].Samples[0].SessionID == "" {
		t.Fatalf("top entry lacks samples: %+v", all[0])
	}
	// Exact lookup.
	if _, err := c.Get(all[0].Name); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("web:never:::x:seen"); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("err = %v", err)
	}
}

func TestSearch(t *testing.T) {
	fs := buildFS(t)
	c, err := Rebuild(fs, day, 0)
	if err != nil {
		t.Fatal(err)
	}
	byPattern, err := c.SearchPattern("*:impression")
	if err != nil || len(byPattern) == 0 {
		t.Fatalf("pattern search = %d, %v", len(byPattern), err)
	}
	for _, e := range byPattern {
		if !strings.HasSuffix(e.Name, ":impression") {
			t.Fatalf("pattern matched %s", e.Name)
		}
	}
	byRe, err := c.SearchRegexp(`^web:home:.*click$`)
	if err != nil || len(byRe) == 0 {
		t.Fatalf("regexp search = %d, %v", len(byRe), err)
	}
	if _, err := c.SearchRegexp("(bad"); err == nil {
		t.Fatal("bad regexp accepted")
	}
	if _, err := c.SearchPattern("Bad Pattern"); err == nil {
		t.Fatal("bad pattern accepted")
	}
}

func TestHierarchicalBrowsing(t *testing.T) {
	fs := buildFS(t)
	c, err := Rebuild(fs, day, 0)
	if err != nil {
		t.Fatal(err)
	}
	clients, err := c.Children(nil)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, cc := range clients {
		names[cc.Value] = true
		if cc.Count <= 0 {
			t.Fatalf("client %q count %d", cc.Value, cc.Count)
		}
	}
	if !names["web"] || !names["iphone"] {
		t.Fatalf("clients = %v", clients)
	}
	pages, err := c.Children([]string{"web"})
	if err != nil || len(pages) == 0 {
		t.Fatalf("pages = %v, %v", pages, err)
	}
	if _, err := c.Children([]string{"a", "b", "c", "d", "e", "f"}); err == nil {
		t.Fatal("over-deep prefix accepted")
	}
}

func TestDescriptionsPersistAcrossRebuilds(t *testing.T) {
	fs := buildFS(t)
	c1, err := Rebuild(fs, day, 0)
	if err != nil {
		t.Fatal(err)
	}
	name := c1.All()[0].Name
	if err := c1.Describe(name, "the main timeline impression"); err != nil {
		t.Fatal(err)
	}
	if err := c1.Describe("no:such:::event:x", "y"); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("err = %v", err)
	}
	if err := c1.Save(fs); err != nil {
		t.Fatal(err)
	}

	// The next day's traffic reuses the same events; descriptions carry
	// forward through Rebuild.
	day2 := day.AddDate(0, 0, 1)
	cfg := workload.DefaultConfig(day2)
	cfg.Users = 80
	evs, _ := workload.New(cfg).Generate()
	if err := workload.WriteWarehouse(fs, evs); err != nil {
		t.Fatal(err)
	}
	c2, err := Rebuild(fs, day2, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := c2.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	if e.Description != "the main timeline impression" {
		t.Fatalf("description lost: %q", e.Description)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	fs := buildFS(t)
	h, err := session.HistogramDay(fs, day, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := BuildFromHistogram(day, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Save(fs); err != nil {
		t.Fatal(err)
	}
	c2, err := Load(fs, day)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != c.Len() {
		t.Fatalf("Len = %d, want %d", c2.Len(), c.Len())
	}
	for _, e := range c.All() {
		e2, err := c2.Get(e.Name)
		if err != nil || e2.Count != e.Count || len(e2.Samples) != len(e.Samples) {
			t.Fatalf("entry %s mismatched after reload", e.Name)
		}
	}
}

func TestRender(t *testing.T) {
	fs := buildFS(t)
	c, err := Rebuild(fs, day, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	Render(&buf, c.All()[:3], true)
	out := buf.String()
	if !strings.Contains(out, c.All()[0].Name) || !strings.Contains(out, "sample:") {
		t.Fatalf("render output:\n%s", out)
	}
}

package zk

import (
	"fmt"
	"testing"
	"time"
)

func BenchmarkCreateEphemeral(b *testing.B) {
	srv := NewServer(nil)
	c := srv.Connect(time.Hour)
	if _, err := c.Create("/agg", nil, Persistent); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Create(fmt.Sprintf("/agg/n%09d", i), nil, Ephemeral); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChildrenDiscovery(b *testing.B) {
	srv := NewServer(nil)
	c := srv.Connect(time.Hour)
	if _, err := c.Create("/agg", nil, Persistent); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := c.Create(fmt.Sprintf("/agg/a%02d", i), []byte("id"), Ephemeral); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kids, err := c.Children("/agg")
		if err != nil || len(kids) != 16 {
			b.Fatal(err)
		}
	}
}

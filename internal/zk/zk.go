// Package zk is an in-process reimplementation of the subset of Apache
// ZooKeeper that Twitter's Scribe infrastructure relies on (§2 of the paper):
// a hierarchical namespace of znodes, ephemeral and sequential nodes,
// sessions with expiry, and one-shot watches.
//
// Scribe aggregators register themselves under a fixed path using ephemeral
// znodes; Scribe daemons list that path to discover a live aggregator and
// re-list it when their aggregator disappears. This package reproduces those
// semantics exactly: closing or expiring a session deletes its ephemeral
// nodes and fires child watches on their parents.
//
// The server is purely in-memory and synchronized with a mutex; time is
// injected through a Clock so session expiry is deterministic in tests.
package zk

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Errors returned by znode operations, mirroring ZooKeeper's error codes.
var (
	ErrNoNode                  = errors.New("zk: node does not exist")
	ErrNodeExists              = errors.New("zk: node already exists")
	ErrNotEmpty                = errors.New("zk: node has children")
	ErrBadVersion              = errors.New("zk: version conflict")
	ErrNoChildrenForEphemerals = errors.New("zk: ephemeral nodes may not have children")
	ErrSessionExpired          = errors.New("zk: session expired")
	ErrClosed                  = errors.New("zk: connection closed")
	ErrInvalidPath             = errors.New("zk: invalid path")
)

// CreateMode selects the lifetime and naming behaviour of a new znode.
type CreateMode int

// Create modes, as in ZooKeeper.
const (
	// Persistent nodes outlive the creating session.
	Persistent CreateMode = iota
	// Ephemeral nodes are deleted when the creating session ends.
	Ephemeral
	// PersistentSequential appends a monotonically increasing, zero-padded
	// counter to the node name.
	PersistentSequential
	// EphemeralSequential combines Ephemeral and PersistentSequential.
	EphemeralSequential
)

func (m CreateMode) ephemeral() bool {
	return m == Ephemeral || m == EphemeralSequential
}

func (m CreateMode) sequential() bool {
	return m == PersistentSequential || m == EphemeralSequential
}

// EventType classifies watch events.
type EventType int

// Watch event types.
const (
	EventCreated EventType = iota
	EventDeleted
	EventDataChanged
	EventChildrenChanged
	EventSessionExpired
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EventCreated:
		return "created"
	case EventDeleted:
		return "deleted"
	case EventDataChanged:
		return "data-changed"
	case EventChildrenChanged:
		return "children-changed"
	case EventSessionExpired:
		return "session-expired"
	}
	return fmt.Sprintf("event(%d)", int(t))
}

// Event is delivered on watch channels when a watched znode changes.
type Event struct {
	Type EventType
	Path string
}

// Clock abstracts time for deterministic session-expiry testing.
type Clock interface {
	Now() time.Time
}

// SystemClock is the wall clock.
type SystemClock struct{}

// Now returns time.Now.
func (SystemClock) Now() time.Time { return time.Now() }

// ManualClock is an explicitly advanced clock for tests.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewManualClock returns a manual clock starting at t.
func NewManualClock(t time.Time) *ManualClock { return &ManualClock{t: t} }

// Now returns the current manual time.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

type znode struct {
	data           []byte
	ephemeralOwner int64 // session id, 0 for persistent nodes
	version        int32
	seq            int64 // sequential-child counter
	children       map[string]struct{}
	dataWatches    []chan Event
	childWatches   []chan Event
}

type session struct {
	id         int64
	timeout    time.Duration
	lastSeen   time.Time
	ephemerals map[string]struct{}
	events     chan Event
	expired    bool
}

// Server is an in-memory coordination service.
type Server struct {
	mu          sync.Mutex
	clock       Clock
	nodes       map[string]*znode
	sessions    map[int64]*session
	nextSession int64
}

// NewServer returns a server with an empty namespace rooted at "/".
// A nil clock defaults to the system clock.
func NewServer(clock Clock) *Server {
	if clock == nil {
		clock = SystemClock{}
	}
	s := &Server{
		clock:    clock,
		nodes:    make(map[string]*znode),
		sessions: make(map[int64]*session),
	}
	s.nodes["/"] = &znode{children: make(map[string]struct{})}
	return s
}

// Connect opens a new session with the given timeout. Sessions that do not
// issue an operation (or Ping) within the timeout are expired lazily on the
// next server interaction or CheckSessions call.
func (s *Server) Connect(timeout time.Duration) *Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSession++
	sess := &session{
		id:         s.nextSession,
		timeout:    timeout,
		lastSeen:   s.clock.Now(),
		ephemerals: make(map[string]struct{}),
		events:     make(chan Event, 16),
	}
	s.sessions[sess.id] = sess
	return &Conn{srv: s, sess: sess}
}

// CheckSessions expires every session whose timeout has elapsed, deleting
// its ephemeral nodes and firing the associated watches. It returns the
// number of sessions expired.
func (s *Server) CheckSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	n := 0
	for _, sess := range s.sessions {
		if now.Sub(sess.lastSeen) > sess.timeout {
			s.expireLocked(sess)
			n++
		}
	}
	return n
}

func (s *Server) expireLocked(sess *session) {
	if sess.expired {
		return
	}
	sess.expired = true
	for path := range sess.ephemerals {
		s.deleteLocked(path)
	}
	delete(s.sessions, sess.id)
	notify(sess.events, Event{Type: EventSessionExpired})
}

// parent returns the parent path of p ("/a/b" -> "/a", "/a" -> "/").
func parent(p string) string {
	i := strings.LastIndexByte(p, '/')
	if i <= 0 {
		return "/"
	}
	return p[:i]
}

func validPath(p string) error {
	if p == "/" {
		return nil
	}
	if p == "" || p[0] != '/' || strings.HasSuffix(p, "/") {
		return fmt.Errorf("%w: %q", ErrInvalidPath, p)
	}
	for _, part := range strings.Split(p[1:], "/") {
		if part == "" || part == "." || part == ".." {
			return fmt.Errorf("%w: %q", ErrInvalidPath, p)
		}
	}
	return nil
}

// notify delivers e without blocking; watch channels are buffered and a full
// channel drops the event (watches are advisory, as in ZooKeeper clients
// that fall behind).
func notify(ch chan Event, e Event) {
	select {
	case ch <- e:
	default:
	}
}

func (s *Server) fireDataWatches(path string, t EventType) {
	n := s.nodes[path]
	if n == nil {
		return
	}
	for _, ch := range n.dataWatches {
		notify(ch, Event{Type: t, Path: path})
	}
	n.dataWatches = nil
}

func (s *Server) fireChildWatches(path string) {
	n := s.nodes[path]
	if n == nil {
		return
	}
	for _, ch := range n.childWatches {
		notify(ch, Event{Type: EventChildrenChanged, Path: path})
	}
	n.childWatches = nil
}

func (s *Server) deleteLocked(path string) {
	if _, ok := s.nodes[path]; !ok {
		return
	}
	s.fireDataWatches(path, EventDeleted)
	s.fireChildWatches(path)
	delete(s.nodes, path)
	p := parent(path)
	if pn, ok := s.nodes[p]; ok {
		delete(pn.children, path[strings.LastIndexByte(path, '/')+1:])
		s.fireChildWatches(p)
	}
}

// Conn is a client handle bound to one session.
type Conn struct {
	srv    *Server
	sess   *session
	mu     sync.Mutex
	closed bool
}

// Events exposes session-level events (currently only EventSessionExpired).
func (c *Conn) Events() <-chan Event { return c.sess.events }

// SessionID returns the server-assigned session identifier.
func (c *Conn) SessionID() int64 { return c.sess.id }

// touch validates the session and refreshes its activity timestamp.
// Callers must hold srv.mu.
func (c *Conn) touchLocked() error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	now := c.srv.clock.Now()
	if c.sess.expired || now.Sub(c.sess.lastSeen) > c.sess.timeout {
		c.srv.expireLocked(c.sess)
		return ErrSessionExpired
	}
	c.sess.lastSeen = now
	return nil
}

// Ping refreshes the session so it does not expire.
func (c *Conn) Ping() error {
	c.srv.mu.Lock()
	defer c.srv.mu.Unlock()
	return c.touchLocked()
}

// Create adds a znode at path with the given data and mode. For sequential
// modes the returned path carries the appended counter suffix.
func (c *Conn) Create(path string, data []byte, mode CreateMode) (string, error) {
	if err := validPath(path); err != nil {
		return "", err
	}
	if path == "/" {
		return "", ErrNodeExists
	}
	c.srv.mu.Lock()
	defer c.srv.mu.Unlock()
	if err := c.touchLocked(); err != nil {
		return "", err
	}
	pp := parent(path)
	pn, ok := c.srv.nodes[pp]
	if !ok {
		return "", fmt.Errorf("%w: parent %s", ErrNoNode, pp)
	}
	if pn.ephemeralOwner != 0 {
		return "", ErrNoChildrenForEphemerals
	}
	actual := path
	if mode.sequential() {
		actual = fmt.Sprintf("%s%010d", path, pn.seq)
		pn.seq++
	}
	if _, exists := c.srv.nodes[actual]; exists {
		return "", fmt.Errorf("%w: %s", ErrNodeExists, actual)
	}
	n := &znode{
		data:     append([]byte(nil), data...),
		children: make(map[string]struct{}),
	}
	if mode.ephemeral() {
		n.ephemeralOwner = c.sess.id
		c.sess.ephemerals[actual] = struct{}{}
	}
	c.srv.nodes[actual] = n
	pn.children[actual[strings.LastIndexByte(actual, '/')+1:]] = struct{}{}
	c.srv.fireDataWatches(actual, EventCreated)
	c.srv.fireChildWatches(pp)
	return actual, nil
}

// Get returns the data and version of the znode at path.
func (c *Conn) Get(path string) ([]byte, int32, error) {
	data, ver, _, err := c.get(path, false)
	return data, ver, err
}

// GetW is Get plus a one-shot watch that fires when the node's data changes
// or the node is deleted.
func (c *Conn) GetW(path string) ([]byte, int32, <-chan Event, error) {
	return c.get(path, true)
}

func (c *Conn) get(path string, watch bool) ([]byte, int32, <-chan Event, error) {
	if err := validPath(path); err != nil {
		return nil, 0, nil, err
	}
	c.srv.mu.Lock()
	defer c.srv.mu.Unlock()
	if err := c.touchLocked(); err != nil {
		return nil, 0, nil, err
	}
	n, ok := c.srv.nodes[path]
	if !ok {
		return nil, 0, nil, fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	var ch chan Event
	if watch {
		ch = make(chan Event, 4)
		n.dataWatches = append(n.dataWatches, ch)
	}
	return append([]byte(nil), n.data...), n.version, ch, nil
}

// Set replaces the data of the znode at path. version -1 skips the
// optimistic concurrency check; otherwise it must match the node's version.
func (c *Conn) Set(path string, data []byte, version int32) (int32, error) {
	if err := validPath(path); err != nil {
		return 0, err
	}
	c.srv.mu.Lock()
	defer c.srv.mu.Unlock()
	if err := c.touchLocked(); err != nil {
		return 0, err
	}
	n, ok := c.srv.nodes[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	if version != -1 && version != n.version {
		return 0, fmt.Errorf("%w: have %d, want %d", ErrBadVersion, n.version, version)
	}
	n.data = append([]byte(nil), data...)
	n.version++
	c.srv.fireDataWatches(path, EventDataChanged)
	return n.version, nil
}

// Delete removes the znode at path. It fails if the node has children or the
// version (when not -1) does not match.
func (c *Conn) Delete(path string, version int32) error {
	if err := validPath(path); err != nil {
		return err
	}
	if path == "/" {
		return ErrNotEmpty
	}
	c.srv.mu.Lock()
	defer c.srv.mu.Unlock()
	if err := c.touchLocked(); err != nil {
		return err
	}
	n, ok := c.srv.nodes[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	if len(n.children) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, path)
	}
	if version != -1 && version != n.version {
		return fmt.Errorf("%w: have %d, want %d", ErrBadVersion, n.version, version)
	}
	if n.ephemeralOwner != 0 {
		if sess, ok := c.srv.sessions[n.ephemeralOwner]; ok {
			delete(sess.ephemerals, path)
		}
	}
	c.srv.deleteLocked(path)
	return nil
}

// Exists reports whether a znode exists at path.
func (c *Conn) Exists(path string) (bool, error) {
	ok, _, err := c.exists(path, false)
	return ok, err
}

// ExistsW is Exists plus a one-shot watch that fires on creation, deletion,
// or data change of the node at path.
func (c *Conn) ExistsW(path string) (bool, <-chan Event, error) {
	return c.exists(path, true)
}

func (c *Conn) exists(path string, watch bool) (bool, <-chan Event, error) {
	if err := validPath(path); err != nil {
		return false, nil, err
	}
	c.srv.mu.Lock()
	defer c.srv.mu.Unlock()
	if err := c.touchLocked(); err != nil {
		return false, nil, err
	}
	n, ok := c.srv.nodes[path]
	var ch chan Event
	if watch {
		ch = make(chan Event, 4)
		if ok {
			n.dataWatches = append(n.dataWatches, ch)
		} else {
			// Watch for creation: attach to a placeholder on the parent; we
			// model it by attaching a child watch to the parent which fires
			// on any child change, matching ZooKeeper's exists-watch utility
			// for discovery loops.
			if pn, pok := c.srv.nodes[parent(path)]; pok {
				pn.childWatches = append(pn.childWatches, ch)
			}
		}
	}
	return ok, ch, nil
}

// Children returns the sorted names of the children of the znode at path.
func (c *Conn) Children(path string) ([]string, error) {
	names, _, err := c.children(path, false)
	return names, err
}

// ChildrenW is Children plus a one-shot watch that fires when the child set
// of path changes.
func (c *Conn) ChildrenW(path string) ([]string, <-chan Event, error) {
	return c.children(path, true)
}

func (c *Conn) children(path string, watch bool) ([]string, <-chan Event, error) {
	if err := validPath(path); err != nil {
		return nil, nil, err
	}
	c.srv.mu.Lock()
	defer c.srv.mu.Unlock()
	if err := c.touchLocked(); err != nil {
		return nil, nil, err
	}
	n, ok := c.srv.nodes[path]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	var ch chan Event
	if watch {
		ch = make(chan Event, 4)
		n.childWatches = append(n.childWatches, ch)
	}
	return names, ch, nil
}

// Close ends the session, deleting its ephemeral nodes and firing watches,
// exactly as a crashed or restarted client would after session teardown.
func (c *Conn) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.srv.mu.Lock()
	c.srv.expireLocked(c.sess)
	c.srv.mu.Unlock()
}

package zk

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func newTestServer() (*Server, *ManualClock) {
	clock := NewManualClock(time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC))
	return NewServer(clock), clock
}

func TestCreateGetSetDelete(t *testing.T) {
	srv, _ := newTestServer()
	c := srv.Connect(time.Minute)
	defer c.Close()

	if _, err := c.Create("/a", []byte("one"), Persistent); err != nil {
		t.Fatal(err)
	}
	data, ver, err := c.Get("/a")
	if err != nil || string(data) != "one" || ver != 0 {
		t.Fatalf("Get = %q v%d, %v", data, ver, err)
	}
	if _, err := c.Set("/a", []byte("two"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Set("/a", []byte("three"), 0); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("stale version Set err = %v", err)
	}
	if _, err := c.Set("/a", []byte("three"), -1); err != nil {
		t.Fatalf("unconditional Set: %v", err)
	}
	if err := c.Delete("/a", -1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("/a"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("Get deleted err = %v", err)
	}
}

func TestCreateRequiresParent(t *testing.T) {
	srv, _ := newTestServer()
	c := srv.Connect(time.Minute)
	if _, err := c.Create("/a/b", nil, Persistent); !errors.Is(err, ErrNoNode) {
		t.Fatalf("err = %v, want ErrNoNode", err)
	}
	mustCreate(t, c, "/a")
	if _, err := c.Create("/a/b", nil, Persistent); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("/a", -1); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("delete non-empty err = %v", err)
	}
}

func mustCreate(t *testing.T, c *Conn, path string) string {
	t.Helper()
	p, err := c.Create(path, nil, Persistent)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	return p
}

func TestInvalidPaths(t *testing.T) {
	srv, _ := newTestServer()
	c := srv.Connect(time.Minute)
	for _, p := range []string{"", "a", "/a/", "//", "/a//b", "/a/./b", "/a/../b"} {
		if _, err := c.Create(p, nil, Persistent); !errors.Is(err, ErrInvalidPath) {
			t.Errorf("Create(%q) err = %v, want ErrInvalidPath", p, err)
		}
	}
}

func TestSequentialNodes(t *testing.T) {
	srv, _ := newTestServer()
	c := srv.Connect(time.Minute)
	mustCreate(t, c, "/agg")
	p1, err := c.Create("/agg/node-", nil, PersistentSequential)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Create("/agg/node-", nil, PersistentSequential)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != "/agg/node-0000000000" || p2 != "/agg/node-0000000001" {
		t.Fatalf("sequential paths = %s, %s", p1, p2)
	}
	kids, err := c.Children("/agg")
	if err != nil || len(kids) != 2 {
		t.Fatalf("children = %v, %v", kids, err)
	}
	if kids[0] != "node-0000000000" || kids[1] != "node-0000000001" {
		t.Fatalf("children not sorted: %v", kids)
	}
}

// TestEphemeralLifecycle is the paper's aggregator-discovery mechanism:
// "Aggregators register themselves ... using an 'ephemeral' znode, which
// exists only for the duration of a client session" (§2).
func TestEphemeralLifecycle(t *testing.T) {
	srv, _ := newTestServer()
	owner := srv.Connect(time.Minute)
	watcher := srv.Connect(time.Minute)
	mustCreate(t, watcher, "/scribe")
	mustCreate(t, watcher, "/scribe/aggregators")

	if _, err := owner.Create("/scribe/aggregators/agg1", []byte("dc1:host1"), Ephemeral); err != nil {
		t.Fatal(err)
	}
	kids, ch, err := watcher.ChildrenW("/scribe/aggregators")
	if err != nil || len(kids) != 1 {
		t.Fatalf("children = %v, %v", kids, err)
	}

	owner.Close() // simulated crash

	select {
	case ev := <-ch:
		if ev.Type != EventChildrenChanged {
			t.Fatalf("event = %v", ev)
		}
	default:
		t.Fatal("no child watch fired on ephemeral deletion")
	}
	kids, err = watcher.Children("/scribe/aggregators")
	if err != nil || len(kids) != 0 {
		t.Fatalf("after close children = %v, %v", kids, err)
	}
}

func TestEphemeralCannotHaveChildren(t *testing.T) {
	srv, _ := newTestServer()
	c := srv.Connect(time.Minute)
	if _, err := c.Create("/e", nil, Ephemeral); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("/e/child", nil, Persistent); !errors.Is(err, ErrNoChildrenForEphemerals) {
		t.Fatalf("err = %v", err)
	}
}

func TestSessionExpiry(t *testing.T) {
	srv, clock := newTestServer()
	c := srv.Connect(30 * time.Second)
	if _, err := c.Create("/live", nil, Ephemeral); err != nil {
		t.Fatal(err)
	}
	obs := srv.Connect(time.Hour)

	clock.Advance(10 * time.Second)
	if err := c.Ping(); err != nil {
		t.Fatalf("ping within timeout: %v", err)
	}
	clock.Advance(31 * time.Second)
	if n := srv.CheckSessions(); n != 1 {
		t.Fatalf("expired %d sessions, want 1", n)
	}
	if ok, _ := obs.Exists("/live"); ok {
		t.Fatal("ephemeral survived session expiry")
	}
	if err := c.Ping(); !errors.Is(err, ErrSessionExpired) && !errors.Is(err, ErrClosed) {
		t.Fatalf("ping after expiry err = %v", err)
	}
	select {
	case ev := <-c.Events():
		if ev.Type != EventSessionExpired {
			t.Fatalf("event = %v", ev)
		}
	default:
		t.Fatal("no session-expired event delivered")
	}
}

func TestLazyExpiryOnOperation(t *testing.T) {
	srv, clock := newTestServer()
	c := srv.Connect(time.Second)
	clock.Advance(2 * time.Second)
	if _, err := c.Create("/x", nil, Persistent); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("err = %v, want ErrSessionExpired", err)
	}
}

func TestDataWatch(t *testing.T) {
	srv, _ := newTestServer()
	c := srv.Connect(time.Minute)
	mustCreate(t, c, "/cfg")
	_, _, ch, err := c.GetW("/cfg")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Set("/cfg", []byte("v2"), -1); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-ch:
		if ev.Type != EventDataChanged || ev.Path != "/cfg" {
			t.Fatalf("event = %+v", ev)
		}
	default:
		t.Fatal("data watch did not fire")
	}
	// Watches are one-shot: a second Set must not deliver another event.
	if _, err := c.Set("/cfg", []byte("v3"), -1); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-ch:
		t.Fatalf("one-shot watch fired twice: %+v", ev)
	default:
	}
}

func TestExistsWatchOnMissingNode(t *testing.T) {
	srv, _ := newTestServer()
	c := srv.Connect(time.Minute)
	mustCreate(t, c, "/parent")
	ok, ch, err := c.ExistsW("/parent/future")
	if err != nil || ok {
		t.Fatalf("ExistsW = %v, %v", ok, err)
	}
	mustCreate(t, c, "/parent/future")
	select {
	case <-ch:
	default:
		t.Fatal("exists watch did not fire on creation")
	}
}

func TestClosedConnRejectsOps(t *testing.T) {
	srv, _ := newTestServer()
	c := srv.Connect(time.Minute)
	c.Close()
	if _, err := c.Create("/x", nil, Persistent); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	c.Close() // double close must be safe
}

func TestConcurrentSequentialCreates(t *testing.T) {
	srv, _ := newTestServer()
	setup := srv.Connect(time.Minute)
	mustCreate(t, setup, "/q")
	const workers, per = 8, 25
	done := make(chan string, workers*per)
	for w := 0; w < workers; w++ {
		go func() {
			c := srv.Connect(time.Minute)
			defer c.Close()
			for i := 0; i < per; i++ {
				p, err := c.Create("/q/item-", nil, PersistentSequential)
				if err != nil {
					done <- ""
					continue
				}
				done <- p
			}
		}()
	}
	seen := make(map[string]bool)
	for i := 0; i < workers*per; i++ {
		p := <-done
		if p == "" {
			t.Fatal("concurrent create failed")
		}
		if seen[p] {
			t.Fatalf("duplicate sequential path %s", p)
		}
		seen[p] = true
	}
	kids, err := setup.Children("/q")
	if err != nil || len(kids) != workers*per {
		t.Fatalf("children = %d, %v", len(kids), err)
	}
}

// TestParentProperty checks parent() against a reference over generated paths.
func TestParentProperty(t *testing.T) {
	f := func(depth uint8, segment uint16) bool {
		d := int(depth%5) + 1
		p := ""
		for i := 0; i < d; i++ {
			p += fmt.Sprintf("/s%d", segment)
		}
		par := parent(p)
		if d == 1 {
			return par == "/"
		}
		return p == par+fmt.Sprintf("/s%d", segment)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEphemeralDeleteClearsSessionTracking(t *testing.T) {
	srv, _ := newTestServer()
	c := srv.Connect(time.Minute)
	if _, err := c.Create("/tmp", nil, Ephemeral); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("/tmp", -1); err != nil {
		t.Fatal(err)
	}
	// Re-create persistently; closing the session must not delete it.
	obs := srv.Connect(time.Minute)
	mustCreate(t, obs, "/tmp")
	c.Close()
	if ok, _ := obs.Exists("/tmp"); !ok {
		t.Fatal("persistent node deleted by stale ephemeral tracking")
	}
}

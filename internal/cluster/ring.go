package cluster

import (
	"fmt"
	"sort"

	"unilog/internal/events"
)

// ring places a fixed set of namespace partitions on the nodes,
// Dynamo-style: every node contributes several virtual points hashed
// onto a circle, and partition p's replica set is the first R distinct
// nodes found walking clockwise from hash("partition/<p>"). Event names
// map to partitions by plain hash modulo — the *placement* is what the
// consistent ring smooths, so partition counts per node stay balanced
// and growing the cluster would move only the partitions that land near
// new points.
//
// The ring is immutable after construction: membership changes in this
// simulation are crashes and restarts of known nodes, not resizes, so
// replica sets are computed once and a crash never re-routes a
// partition — it hints instead, which is what keeps replays exact.
type ring struct {
	partitions int
	// replicas[p] lists the node ids holding partition p, primary first.
	replicas [][]int
	// hosted[id] lists the partitions node id replicates, ascending.
	hosted [][]int
}

type ringPoint struct {
	hash uint64
	node int
}

func newRing(nodes, vpoints, partitions, rf int) *ring {
	points := make([]ringPoint, 0, nodes*vpoints)
	for id := 0; id < nodes; id++ {
		for v := 0; v < vpoints; v++ {
			points = append(points, ringPoint{
				hash: mix64(hash64(fmt.Sprintf("node/%d/point/%d", id, v))),
				node: id,
			})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].node < points[j].node
	})
	r := &ring{
		partitions: partitions,
		replicas:   make([][]int, partitions),
		hosted:     make([][]int, nodes),
	}
	for p := 0; p < partitions; p++ {
		h := mix64(hash64(fmt.Sprintf("partition/%d", p)))
		start := sort.Search(len(points), func(i int) bool { return points[i].hash >= h })
		set := make([]int, 0, rf)
		seen := make(map[int]bool, rf)
		for i := 0; len(set) < rf && i < len(points); i++ {
			pt := points[(start+i)%len(points)]
			if !seen[pt.node] {
				seen[pt.node] = true
				set = append(set, pt.node)
			}
		}
		r.replicas[p] = set
		for _, id := range set {
			r.hosted[id] = append(r.hosted[id], p)
		}
	}
	return r
}

// partitionOf maps a rendered event name to its partition.
func (r *ring) partitionOf(name string) int {
	return int(mix64(hash64(name)) % uint64(r.partitions))
}

// partitionOfName maps a structured event name to its partition without
// rendering it: the six components hash through the same ':'-separated
// byte stream EventName.String would produce, so
// partitionOfName(n) == partitionOf(n.String()) with zero allocations
// on the ingest path.
func (r *ring) partitionOfName(n events.EventName) int {
	h := uint64(fnvOffset64)
	for i := 0; i < events.NumComponents; i++ {
		if i > 0 {
			h = fnvByte(h, ':')
		}
		h = fnvString(h, n.At(i))
	}
	return int(mix64(h) % uint64(r.partitions))
}

// hostedBy returns the partitions node id replicates, ascending.
func (r *ring) hostedBy(id int) []int { return r.hosted[id] }

// FNV-1a, inlined to keep routing allocation-free (the stdlib hash/fnv
// forces the input through an io.Writer).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func hash64(s string) uint64 { return fnvString(fnvOffset64, s) }

// mix64 is the splitmix64 finalizer. Raw FNV-1a over near-identical
// strings ("node/0/point/1", "node/0/point/2", ...) produces *ordered*
// hashes — ring points from one node clump together and entire nodes
// end up hosting nothing. The finalizer avalanches those low-entropy
// differences across all 64 bits, which is what makes the virtual-point
// placement actually balance.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

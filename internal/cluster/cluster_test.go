package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"unilog/internal/events"
	"unilog/internal/geo"
	"unilog/internal/realtime"
	"unilog/internal/zk"
)

var t0 = time.Date(2012, 8, 21, 14, 0, 0, 0, time.UTC)

func ev(name string, at time.Time, user int64, country string) *events.ClientEvent {
	return &events.ClientEvent{
		Initiator: events.InitiatorClientUser,
		Name:      events.MustParseName(name),
		UserID:    user,
		SessionID: "sess",
		IP:        geo.IPFor(country, user),
		Timestamp: at.UnixMilli(),
	}
}

// testNames spreads over enough distinct full names that every test
// exercises multiple partitions.
var testNames = []string{
	"web:home:mentions:stream:avatar:profile_click",
	"web:home:timeline:stream:tweet:impression",
	"web:profile:header:card:follow:click",
	"iphone:home:timeline:stream:tweet:impression",
	"iphone:search:results:cell:tweet:open",
	"android:home:timeline:stream:tweet:favorite",
	"android:dm:thread:composer:send:click",
	"web:search:results:stream:tweet:impression",
}

func testCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestRingPlacement(t *testing.T) {
	r := newRing(5, 8, 32, 3)
	counts := make([]int, 5)
	for p := 0; p < 32; p++ {
		set := r.replicas[p]
		if len(set) != 3 {
			t.Fatalf("partition %d has %d replicas, want 3", p, len(set))
		}
		seen := map[int]bool{}
		for _, id := range set {
			if seen[id] {
				t.Fatalf("partition %d repeats node %d", p, id)
			}
			seen[id] = true
			counts[id]++
		}
	}
	for id, n := range counts {
		if n == 0 {
			t.Errorf("node %d hosts no partitions", id)
		}
		if got := len(r.hostedBy(id)); got != n {
			t.Errorf("hostedBy(%d) = %d partitions, replica sets say %d", id, got, n)
		}
	}
}

func TestPartitionOfNameMatchesString(t *testing.T) {
	r := newRing(3, 8, 16, 2)
	for _, s := range testNames {
		n := events.MustParseName(s)
		if got, want := r.partitionOfName(n), r.partitionOf(n.String()); got != want {
			t.Errorf("partitionOfName(%q) = %d, partitionOf = %d", s, got, want)
		}
	}
}

// The detector must walk a silent node alive → suspect → dead on the
// configured silence thresholds and snap it back to alive on the first
// heartbeat, counting each transition once.
func TestDetectorTransitions(t *testing.T) {
	start := t0
	d := newDetector(2, 30*time.Second, 2*time.Minute, start)

	step := func(at time.Duration, beatNode1 bool) {
		now := start.Add(at)
		d.heartbeat(0, now)
		if beatNode1 {
			d.heartbeat(1, now)
		}
		d.refresh(now)
	}

	step(10*time.Second, true)
	if got := d.statusOf(1); got != StatusAlive {
		t.Fatalf("fresh node: status %v, want alive", got)
	}
	// Node 1 goes silent; below SuspectAfter it stays alive.
	step(35*time.Second, false)
	if got := d.statusOf(1); got != StatusAlive {
		t.Fatalf("25s silent: status %v, want alive", got)
	}
	step(70*time.Second, false)
	if got := d.statusOf(1); got != StatusSuspect {
		t.Fatalf("60s silent: status %v, want suspect", got)
	}
	step(2*time.Minute+20*time.Second, false)
	if got := d.statusOf(1); got != StatusDead {
		t.Fatalf("130s silent: status %v, want dead", got)
	}
	// First heartbeat revives it.
	step(3*time.Minute, true)
	if got := d.statusOf(1); got != StatusAlive {
		t.Fatalf("after heartbeat: status %v, want alive", got)
	}
	su, de, re := d.transitions()
	if su != 1 || de != 1 || re != 1 {
		t.Errorf("transitions = %d suspects, %d deaths, %d revivals; want 1 each", su, de, re)
	}
	// Node 0 heartbeat every step: no transitions attributable to it.
	if got := d.statusOf(0); got != StatusAlive {
		t.Errorf("steady node: status %v, want alive", got)
	}
}

// Backoff must double per consecutive failure from RetryBase and clamp
// at RetryCap, and the queue must refuse attempts inside the window.
func TestBackoffTiming(t *testing.T) {
	n, err := newNode(0, []int{0}, "", realtime.Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	n.crash() // every deliver fails
	base, cap := 500*time.Millisecond, 8*time.Second
	q := newSendQueue(n, base, cap, time.Hour)

	for f, want := range map[int]time.Duration{
		1: 500 * time.Millisecond,
		2: time.Second,
		3: 2 * time.Second,
		4: 4 * time.Second,
		5: 8 * time.Second,
		6: 8 * time.Second, // capped
		9: 8 * time.Second,
	} {
		if got := q.backoff(f); got != want {
			t.Errorf("backoff(%d) = %v, want %v", f, got, want)
		}
	}

	h := newHandoff(1)
	now := t0
	q.send([]routed{{p: 0, e: *ev(testNames[0], t0, 1, "us")}}, now, h)
	if q.statsSnap().attempts != 1 || q.statsSnap().failures != 1 {
		t.Fatalf("after send: %+v, want 1 attempt 1 failure", q.statsSnap())
	}
	// Inside the 500ms window: pump must not attempt.
	q.pump(now.Add(400*time.Millisecond), h)
	if got := q.statsSnap().attempts; got != 1 {
		t.Fatalf("pump inside backoff attempted (attempts=%d)", got)
	}
	// Past the window: one retry, which fails and doubles the window.
	q.pump(now.Add(600*time.Millisecond), h)
	s := q.statsSnap()
	if s.attempts != 2 || s.retries != 1 {
		t.Fatalf("pump past backoff: %+v, want 2 attempts 1 retry", s)
	}
	// The second failure's window is 1s from the retry; 1.5s later it
	// reopens. Restart the node so the attempt lands.
	if err := n.restart(); err != nil {
		t.Fatal(err)
	}
	q.pump(now.Add(1700*time.Millisecond), h)
	s = q.statsSnap()
	if s.delivered != 1 || q.pendingLen() != 0 {
		t.Fatalf("after recovery pump: %+v pending=%d, want delivered", s, q.pendingLen())
	}
}

// A queue whose node keeps failing past HintAfter must surrender its
// backlog to hinted handoff and route subsequent sends straight there.
func TestQueueHintTimeout(t *testing.T) {
	n, err := newNode(0, []int{0}, "", realtime.Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	n.crash()
	q := newSendQueue(n, 500*time.Millisecond, 8*time.Second, 2*time.Minute)
	h := newHandoff(1)

	now := t0
	q.send([]routed{{p: 0, e: *ev(testNames[0], t0, 1, "us")}}, now, h)
	for i := 1; i <= 20 && h.pending(0) == 0; i++ {
		q.pump(now.Add(time.Duration(i)*10*time.Second), h)
	}
	if got := h.pending(0); got != 1 {
		t.Fatalf("handoff pending = %d, want 1 after HintAfter elapsed", got)
	}
	// Hinting mode: new sends bypass the queue.
	q.send([]routed{{p: 0, e: *ev(testNames[1], t0, 2, "us")}}, now.Add(5*time.Minute), h)
	if got := h.pending(0); got != 2 {
		t.Fatalf("handoff pending = %d, want 2 (send while hinting)", got)
	}
	if q.pendingLen() != 0 {
		t.Fatalf("queue pending = %d, want 0 while hinting", q.pendingLen())
	}
}

func TestClusterBasicIngestAndStats(t *testing.T) {
	clk := zk.NewManualClock(t0)
	c := testCluster(t, Config{Nodes: 3, ReplicationFactor: 2, Clock: clk})
	const perName = 50
	for _, name := range testNames {
		for i := 0; i < perName; i++ {
			c.Ingest(ev(name, t0.Add(time.Duration(i)*time.Second), int64(i), "us"))
		}
	}
	c.Tick()
	c.Sync()
	if !c.Drained() {
		t.Fatal("healthy cluster not drained after Tick")
	}
	s := c.Stats()
	wantIngest := int64(len(testNames) * perName)
	if s.Ingested != wantIngest {
		t.Errorf("Ingested = %d, want %d", s.Ingested, wantIngest)
	}
	if want := wantIngest * int64(c.Replication()); s.Delivered != want {
		t.Errorf("Delivered = %d, want %d (R× ingested)", s.Delivered, want)
	}
	if s.Counter.Observed != wantIngest*int64(c.Replication()) {
		t.Errorf("Counter.Observed = %d, want %d", s.Counter.Observed, wantIngest*int64(c.Replication()))
	}
	if s.Hinted != 0 || s.SendFailures != 0 {
		t.Errorf("healthy cluster hinted %d / failed %d deliveries", s.Hinted, s.SendFailures)
	}
}

// A durable R=2 cluster under a random crash/restart schedule must
// converge, after hint replay, to exactly the counts a single reference
// counter holds — the property the whole replication design exists for.
func TestClusterCrashRestartConvergence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			clk := zk.NewManualClock(t0)
			c := testCluster(t, Config{
				Nodes:             3,
				ReplicationFactor: 2,
				Clock:             clk,
				Dir:               t.TempDir(),
				HeartbeatEvery:    time.Minute,
				SuspectAfter:      150 * time.Second,
				DeadAfter:         300 * time.Second,
				RetryBase:         500 * time.Millisecond,
				RetryCap:          30 * time.Second,
				HintAfter:         2 * time.Minute,
				Node:              realtime.Config{Retention: 26 * time.Hour, FsyncEvery: 1},
			})
			ref := realtime.New(realtime.Config{Shards: 2, Retention: 26 * time.Hour})
			defer ref.Close()

			// 60 simulated minutes; each minute a burst of events, a Tick,
			// and maybe a membership fault.
			crashed := make(map[int]bool)
			for min := 0; min < 60; min++ {
				at := t0.Add(time.Duration(min) * time.Minute)
				for i := 0; i < 20; i++ {
					name := testNames[rng.Intn(len(testNames))]
					e := ev(name, at, int64(rng.Intn(1000)), "us")
					c.Ingest(e)
					ref.Ingest(e)
				}
				switch r := rng.Float64(); {
				case r < 0.10:
					id := rng.Intn(c.NumNodes())
					if !crashed[id] && len(crashed) == 0 { // at most one down at a time: R=2 tolerates one
						c.Crash(id)
						crashed[id] = true
					}
				case r < 0.30:
					for id := range crashed {
						if err := c.Restart(id); err != nil {
							t.Fatalf("restart %d: %v", id, err)
						}
						delete(crashed, id)
					}
				}
				clk.Advance(time.Minute)
				c.Tick()
			}
			for id := range crashed {
				if err := c.Restart(id); err != nil {
					t.Fatalf("final restart %d: %v", id, err)
				}
			}
			// Let detection, backoff, and hint replay settle.
			for i := 0; i < 64 && !c.Drained(); i++ {
				clk.Advance(time.Minute)
				c.Tick()
			}
			if !c.Drained() {
				t.Fatalf("cluster failed to drain; stats %+v", c.Stats())
			}
			c.Sync()
			ref.Sync()

			from, to := t0.Add(-time.Hour), t0.Add(2*time.Hour)
			for _, name := range testNames {
				// Every node must agree with the reference on every partition
				// it hosts — replicas converged, not just one.
				p := c.PartitionOf(name)
				want := ref.PathSum(name, from, to)
				for _, id := range c.ReplicasOf(p) {
					got, err := c.Node(id).PathSum(p, name, from, to)
					if err != nil {
						t.Fatalf("node %d PathSum(%q): %v", id, name, err)
					}
					if got != want {
						t.Errorf("node %d %q = %d, want %d (stats %+v)", id, name, got, want, c.Stats())
					}
				}
			}
		})
	}
}

// Package cluster lifts the realtime counter service from one process
// holding the whole namespace to a replicated multi-node group — the
// architecture the paper's §6 real-time direction (Rainbird behind
// BirdBrain) needs once "millions of users" stops being a figure of
// speech: no single node can hold every counter, and losing a machine
// must not lose the numbers.
//
// Topology. The event namespace is carved into a fixed set of
// partitions: an event's interned name hashes to a partition, and a
// consistent-hash ring of the nodes (each contributing several virtual
// points) places every partition on ReplicationFactor distinct nodes,
// primary first. Each node hosts one realtime.Counter per partition it
// replicates, so a partition's counts live complete and self-contained
// on R machines — which is exactly what makes scatter-gather reads
// exact: a query picks ONE live replica per partition and sums the
// partials, never double-counting a replicated write. Per-node
// durability is untouched realtime machinery: with Config.Dir set, each
// partition counter is a realtime.Open WAL+snapshot store, and a node
// restart replays its own logs before the cluster's hinted handoff
// tops it up.
//
// Writes. Ingest (or the scribe TapBatch) routes every accepted event
// to all R replicas of its partition through per-node send queues. A
// delivery that fails — the node crashed but the failure detector has
// not noticed yet — retries with capped exponential backoff
// (RetryBase doubling up to RetryCap); once a node has been failing
// for HintAfter, or the detector declares it dead, the queue stops
// retrying and the undelivered events become *hints*: buffered per
// target node in the hinted-handoff table, replayed into the node as
// soon as the detector sees it alive again. Surviving replicas take
// every write in the meantime, so the counters a reader can reach stay
// exact through the outage, and the recovered node converges to them
// after WAL recovery plus hint replay — Reconcile-exact end to end.
//
// Failure detection. Nodes do not gossip over a network; the cluster
// is an in-process simulation and heartbeats are delivered on Tick:
// every live node refreshes its heartbeat, and a node's silence ages it
// alive → suspect (SuspectAfter) → dead (DeadAfter). Time comes from a
// zk.Clock, so scenarios drive the whole failure schedule — crash,
// suspicion, death, restart, revival, hint replay — deterministically
// off a zk.ManualClock.
//
// Reads. The scatter-gather layer lives in birdbrain (Scatter): it fans
// PathSum/Series/TopK over the partitions, prefers the primary replica,
// fails over to the others when one is dead or errors mid-query, and
// marks the merged response degraded (a fallback or dead replica was
// involved) or partial (some partition had no live replica at all) in
// both the result metadata and telemetry.
package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"unilog/internal/events"
	"unilog/internal/realtime"
	"unilog/internal/scribe"
	"unilog/internal/telemetry"
	"unilog/internal/zk"
)

// Config sizes the cluster. Zero values take the defaults below.
type Config struct {
	// Nodes is the number of counter nodes. Default 3.
	Nodes int
	// ReplicationFactor is how many distinct nodes hold each partition.
	// Default 2, clamped to Nodes.
	ReplicationFactor int
	// Partitions is the fixed number of namespace partitions hashed over
	// the ring. More partitions smooth placement and shrink the data a
	// single node loss leaves under-replicated. Default 16.
	Partitions int
	// VirtualPoints is how many ring points each node contributes;
	// placement evens out as it grows. Default 8.
	VirtualPoints int

	// HeartbeatEvery is the nominal heartbeat cadence; Tick delivers one
	// heartbeat per live node, so call Tick at least this often (scenario
	// harnesses tick every simulated minute and size the windows below
	// accordingly). Default 1s.
	HeartbeatEvery time.Duration
	// SuspectAfter is the heartbeat silence after which a node turns
	// suspect. Default 3 × HeartbeatEvery.
	SuspectAfter time.Duration
	// DeadAfter is the silence after which a suspect node is declared
	// dead: its queue stops retrying and new writes hint immediately.
	// Default 3 × SuspectAfter.
	DeadAfter time.Duration

	// RetryBase is the first retry backoff after a failed delivery; each
	// further failure doubles it up to RetryCap. Defaults 500ms and 8s.
	RetryBase time.Duration
	RetryCap  time.Duration
	// HintAfter is how long a node may keep failing deliveries before the
	// queue gives up retrying and hands its backlog to hinted handoff.
	// Default 2m.
	HintAfter time.Duration

	// Dir, when non-empty, makes every node durable: node i's partition p
	// counter recovers from Dir/node<i>/p<p> via the realtime WAL and
	// snapshot machinery. Empty means memory-only nodes — a crash loses
	// the node's counts (restart comes back empty), which is honest but
	// fails reconciliation; use it only for tests without crashes.
	Dir string
	// Node configures each per-partition counter. Cluster nodes default
	// smaller than a standalone counter (Shards 1, Stripes 4, QueueDepth
	// 32, MaxBatch 256) because a node hosts one counter per replicated
	// partition.
	Node realtime.Config
	// Clock drives heartbeats, backoff, and hint timeouts. Default
	// zk.SystemClock; scenarios inject the shared zk.ManualClock.
	Clock zk.Clock
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.ReplicationFactor <= 0 {
		c.ReplicationFactor = 2
	}
	if c.ReplicationFactor > c.Nodes {
		c.ReplicationFactor = c.Nodes
	}
	if c.Partitions <= 0 {
		c.Partitions = 16
	}
	if c.VirtualPoints <= 0 {
		c.VirtualPoints = 8
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * c.HeartbeatEvery
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3 * c.SuspectAfter
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 500 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 8 * time.Second
	}
	if c.HintAfter <= 0 {
		c.HintAfter = 2 * time.Minute
	}
	if c.Node.Shards <= 0 {
		c.Node.Shards = 1
	}
	if c.Node.Stripes <= 0 {
		c.Node.Stripes = 4
	}
	if c.Node.QueueDepth <= 0 {
		c.Node.QueueDepth = 32
	}
	if c.Node.MaxBatch <= 0 {
		c.Node.MaxBatch = 256
	}
	if c.Clock == nil {
		c.Clock = zk.SystemClock{}
	}
	return c
}

// Stats is a snapshot of cluster-level activity. Counter aggregates the
// realtime Stats of every live partition counter across all nodes.
type Stats struct {
	Nodes       int
	Partitions  int
	Replication int

	// Ingested counts events accepted for routing; DecodeErrors counts
	// tap entries that failed Thrift decoding.
	Ingested     int64
	DecodeErrors int64
	// Delivered counts per-replica event deliveries that reached a node
	// (hint replays included); SendAttempts/SendRetries/SendFailures
	// count queue delivery attempts, backoff retries, and failed
	// attempts.
	Delivered    int64
	SendAttempts int64
	SendRetries  int64
	SendFailures int64
	// Hinted / Replayed / ReplayFailures count events buffered into and
	// replayed out of the hinted-handoff table; HandoffPending is the
	// current backlog, HandoffHighWater the largest backlog seen.
	Hinted           int64
	Replayed         int64
	ReplayFailures   int64
	HandoffPending   int64
	HandoffHighWater int64
	// Failure-detector transition counts.
	Suspects int64
	Deaths   int64
	Revivals int64
	// Crash/restart counts across all nodes.
	NodeCrashes  int64
	NodeRestarts int64

	Counter realtime.Stats
}

// Cluster is a replicated group of realtime counter nodes behind one
// ingestion router. Create with New, feed it via Ingest or TapBatch,
// drive time with Tick, and read it through birdbrain.Scatter (or the
// per-node query methods in query.go).
type Cluster struct {
	cfg     Config
	clock   zk.Clock
	ring    *ring
	nodes   []*Node
	det     *detector
	queues  []*sendQueue
	handoff *handoff

	ingested   atomic.Int64
	decodeErrs atomic.Int64
}

// New builds and starts a cluster. With cfg.Dir set the nodes recover
// whatever a previous incarnation left in their directories, exactly as
// realtime.Open does per counter.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:     cfg,
		clock:   cfg.Clock,
		ring:    newRing(cfg.Nodes, cfg.VirtualPoints, cfg.Partitions, cfg.ReplicationFactor),
		handoff: newHandoff(cfg.Nodes),
	}
	for id := 0; id < cfg.Nodes; id++ {
		dir := ""
		if cfg.Dir != "" {
			dir = filepath.Join(cfg.Dir, fmt.Sprintf("node%d", id))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
		}
		n, err := newNode(id, c.ring.hostedBy(id), dir, cfg.Node)
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, n)
		c.queues = append(c.queues, newSendQueue(n, cfg.RetryBase, cfg.RetryCap, cfg.HintAfter))
	}
	c.det = newDetector(cfg.Nodes, cfg.SuspectAfter, cfg.DeadAfter, c.clock.Now())
	return c, nil
}

// NumNodes reports the node count.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Partitions reports the partition count.
func (c *Cluster) Partitions() int { return c.cfg.Partitions }

// Replication reports the replication factor.
func (c *Cluster) Replication() int { return c.cfg.ReplicationFactor }

// Node returns the node with the given id.
func (c *Cluster) Node(id int) *Node { return c.nodes[id] }

// ReplicasOf returns the ids of the nodes replicating partition p,
// primary first.
func (c *Cluster) ReplicasOf(p int) []int { return c.ring.replicas[p] }

// PartitionOf returns the partition an event name routes to.
func (c *Cluster) PartitionOf(name string) int { return c.ring.partitionOf(name) }

// NodeStatus reports the failure detector's current view of a node.
func (c *Cluster) NodeStatus(id int) Status { return c.det.statusOf(id) }

// Ingest routes one decoded event to every replica of its partition.
func (c *Cluster) Ingest(e *events.ClientEvent) {
	now := c.clock.Now()
	p := c.ring.partitionOfName(e.Name)
	c.ingested.Add(1)
	tmClusterIngest.Inc()
	batch := []routed{{p: p, e: *e}}
	for _, id := range c.ring.replicas[p] {
		c.route(id, batch, now)
	}
}

// TapBatch observes one batch of Scribe entries; assign it to
// scribe.Aggregator.Tap exactly like realtime.Counter.TapBatch. Events
// are grouped per target node so a staging flush costs one queue
// interaction per replica node, not per event.
func (c *Cluster) TapBatch(batch []scribe.Entry) {
	now := c.clock.Now()
	perNode := make([][]routed, len(c.nodes))
	for i := range batch {
		if batch[i].Category != events.Category {
			continue
		}
		var e events.ClientEvent
		if err := e.Unmarshal(batch[i].Message); err != nil {
			c.decodeErrs.Add(1)
			tmClusterDecodeErrs.Inc()
			continue
		}
		p := c.ring.partitionOfName(e.Name)
		c.ingested.Add(1)
		tmClusterIngest.Inc()
		r := routed{p: p, e: e}
		for _, id := range c.ring.replicas[p] {
			perNode[id] = append(perNode[id], r)
		}
	}
	for id, b := range perNode {
		if len(b) > 0 {
			c.route(id, b, now)
		}
	}
}

// route hands one node's batch to its send queue — or straight to
// hinted handoff when the failure detector already declared the node
// dead, so a known-dead node costs no retry cycles.
func (c *Cluster) route(id int, batch []routed, now time.Time) {
	if c.det.statusOf(id) == StatusDead {
		c.handoff.add(id, batch)
		return
	}
	c.queues[id].send(batch, now, c.handoff)
}

// Tick advances the cluster's failure machinery to the clock's now:
// live nodes heartbeat, the detector re-ages every node (suspect →
// dead → alive transitions land here), queues whose backoff window
// elapsed retry, queues for dead nodes evict their backlog to handoff,
// and nodes detected alive again get their hints replayed. Call it on
// every scenario time step; a production loop would run it on a ticker
// at HeartbeatEvery.
func (c *Cluster) Tick() {
	now := c.clock.Now()
	for _, n := range c.nodes {
		if !n.isCrashed() {
			c.det.heartbeat(n.id, now)
		}
	}
	c.det.refresh(now)
	for id, q := range c.queues {
		if c.det.statusOf(id) == StatusDead {
			q.evict(c.handoff)
		} else {
			q.pump(now, c.handoff)
		}
	}
	for id, n := range c.nodes {
		if c.det.statusOf(id) != StatusAlive {
			continue
		}
		if c.handoff.pending(id) > 0 {
			if err := c.handoff.replay(n); err == nil {
				c.queues[id].reset()
			}
		} else if c.queues[id].isHinting() {
			// Alive with no hint debt: stop routing new writes through
			// the handoff table (the replay that cleared the debt may
			// have reset already; an evict with an empty backlog would
			// otherwise hint forever).
			c.queues[id].reset()
		}
	}
}

// Crash kills one node the way a machine loss would: its counters stop
// (WALs keep what the fsync cadence made durable), deliveries start
// failing, and — once the detector notices — writes hint instead.
func (c *Cluster) Crash(id int) {
	c.nodes[id].crash()
	tmClusterCrashes.Inc()
}

// Restart brings a crashed node back: durable nodes recover their
// counters from WAL+snapshot first. The node heartbeats again on the
// next Tick, and its hints replay when the detector sees it alive.
func (c *Cluster) Restart(id int) error {
	if err := c.nodes[id].restart(); err != nil {
		return err
	}
	tmClusterRestarts.Inc()
	return nil
}

// Drained reports whether every send queue and the hinted-handoff
// table are empty — the condition under which every routed event has
// reached all R of its replicas.
func (c *Cluster) Drained() bool {
	for _, q := range c.queues {
		if q.pendingLen() > 0 {
			return false
		}
	}
	return c.handoff.totalPending() == 0
}

// Sync blocks until every delivered observation is applied on every
// live node — the cluster-wide read-your-writes barrier. It does not
// flush send queues or hints; see Drained and Tick for those.
func (c *Cluster) Sync() {
	for _, n := range c.nodes {
		n.sync()
	}
}

// Close shuts every node down (final snapshots on durable nodes).
// Undelivered queue entries and unreplayed hints are dropped; callers
// that need exactness drain first (Tick until Drained).
func (c *Cluster) Close() error {
	var err error
	for _, n := range c.nodes {
		if cerr := n.close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Stats returns a cluster-level activity snapshot.
func (c *Cluster) Stats() Stats {
	s := Stats{
		Nodes:       len(c.nodes),
		Partitions:  c.cfg.Partitions,
		Replication: c.cfg.ReplicationFactor,
	}
	s.Ingested = c.ingested.Load()
	s.DecodeErrors = c.decodeErrs.Load()
	for _, q := range c.queues {
		qs := q.statsSnap()
		s.Delivered += qs.delivered
		s.SendAttempts += qs.attempts
		s.SendRetries += qs.retries
		s.SendFailures += qs.failures
	}
	hs := c.handoff.statsSnap()
	s.Hinted = hs.hinted
	s.Replayed = hs.replayed
	s.ReplayFailures = hs.replayFailures
	s.HandoffPending = int64(c.handoff.totalPending())
	s.HandoffHighWater = hs.highWater
	s.Delivered += hs.replayed
	s.Suspects, s.Deaths, s.Revivals = c.det.transitions()
	for _, n := range c.nodes {
		s.NodeCrashes += n.crashes.Load()
		s.NodeRestarts += n.restarts.Load()
		s.Counter = sumStats(s.Counter, n.counterStats())
	}
	return s
}

// Publish wires the cluster's live backlog and membership view into reg
// as snapshot-time gauges (nil means telemetry.Default).
func (c *Cluster) Publish(reg *telemetry.Registry) {
	if reg == nil {
		reg = telemetry.Default
	}
	reg.GaugeFunc("cluster.handoff.pending", func() int64 {
		return int64(c.handoff.totalPending())
	})
	reg.GaugeFunc("cluster.nodes.alive", func() int64 {
		var n int64
		for id := range c.nodes {
			if c.det.statusOf(id) == StatusAlive {
				n++
			}
		}
		return n
	})
	reg.GaugeFunc("cluster.queues.pending", func() int64 {
		var n int64
		for _, q := range c.queues {
			n += int64(q.pendingLen())
		}
		return n
	})
}

// sumStats adds the monotonic fields of two realtime Stats snapshots.
func sumStats(a, b realtime.Stats) realtime.Stats {
	a.Observed += b.Observed
	a.TapEntries += b.TapEntries
	a.DecodeErrors += b.DecodeErrors
	a.Invalid += b.Invalid
	a.DroppedOld += b.DroppedOld
	a.Evicted += b.Evicted
	a.QueueFull += b.QueueFull
	a.WALBatches += b.WALBatches
	a.WALBytes += b.WALBytes
	a.WALErrors += b.WALErrors
	a.Fsyncs += b.Fsyncs
	a.Snapshots += b.Snapshots
	a.SnapshotErrors += b.SnapshotErrors
	return a
}

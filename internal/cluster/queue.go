package cluster

import (
	"sync"
	"time"
)

// sendQueue is the per-node write path: it buffers routed events for
// one node and delivers them, retrying failures with capped exponential
// backoff. A node that keeps failing past hintAfter — or that the
// failure detector declares dead, via evict — stops costing retries:
// the backlog moves to hinted handoff and new sends follow it there
// until the node proves itself again (reset, called after a successful
// hint replay).
type sendQueue struct {
	mu        sync.Mutex
	node      *Node
	base      time.Duration // first retry delay; doubles per failure
	cap       time.Duration // backoff ceiling
	hintAfter time.Duration // continuous-failure budget before hinting

	pending     []routed
	failures    int       // consecutive failed attempts
	firstFail   time.Time // start of the current failure streak
	nextAttempt time.Time // backoff gate; zero means attempt immediately
	hinting     bool      // true once the queue has given up on retries

	stats sendStats
}

type sendStats struct {
	enqueued  int64
	delivered int64
	attempts  int64
	retries   int64
	failures  int64
	hinted    int64
	highWater int64
}

func newSendQueue(n *Node, base, cap, hintAfter time.Duration) *sendQueue {
	return &sendQueue{node: n, base: base, cap: cap, hintAfter: hintAfter}
}

// backoff returns the delay after the f-th consecutive failure:
// min(base·2^(f-1), cap).
func (q *sendQueue) backoff(f int) time.Duration {
	d := q.base
	for i := 1; i < f; i++ {
		d *= 2
		if d >= q.cap {
			return q.cap
		}
	}
	if d > q.cap {
		d = q.cap
	}
	return d
}

// send enqueues a batch and attempts delivery unless a backoff window
// is open (then the batch waits for pump) or the queue is hinting (then
// the batch goes straight to handoff).
func (q *sendQueue) send(batch []routed, now time.Time, h *handoff) {
	q.mu.Lock()
	if q.hinting {
		q.stats.hinted += int64(len(batch))
		q.mu.Unlock()
		h.add(q.node.id, batch)
		return
	}
	q.stats.enqueued += int64(len(batch))
	q.pending = append(q.pending, batch...)
	if n := int64(len(q.pending)); n > q.stats.highWater {
		q.stats.highWater = n
	}
	if now.Before(q.nextAttempt) {
		q.mu.Unlock()
		return
	}
	q.attemptLocked(now, h)
	q.mu.Unlock()
}

// pump retries pending deliveries whose backoff window has elapsed.
// Called from Cluster.Tick for every node not currently considered
// dead.
func (q *sendQueue) pump(now time.Time, h *handoff) {
	q.mu.Lock()
	if len(q.pending) == 0 || q.hinting || now.Before(q.nextAttempt) {
		q.mu.Unlock()
		return
	}
	if q.failures > 0 {
		q.stats.retries++
		tmClusterRetries.Inc()
	}
	q.attemptLocked(now, h)
	q.mu.Unlock()
}

// attemptLocked tries to deliver the whole backlog once. On success the
// queue resets its failure streak; on failure it opens the next backoff
// window, and once the streak is older than hintAfter it surrenders the
// backlog to hinted handoff and enters hinting mode.
func (q *sendQueue) attemptLocked(now time.Time, h *handoff) {
	q.stats.attempts++
	if err := q.node.deliver(q.pending); err == nil {
		q.stats.delivered += int64(len(q.pending))
		q.pending = nil
		q.failures = 0
		q.nextAttempt = time.Time{}
		return
	}
	if q.failures == 0 {
		q.firstFail = now
	}
	q.failures++
	q.stats.failures++
	tmClusterSendFails.Inc()
	q.nextAttempt = now.Add(q.backoff(q.failures))
	if now.Sub(q.firstFail) >= q.hintAfter {
		q.surrenderLocked(h)
	}
}

// evict force-hints the backlog without an attempt — Tick calls it when
// the failure detector declares the node dead, so a known-dead node
// costs zero delivery attempts.
func (q *sendQueue) evict(h *handoff) {
	q.mu.Lock()
	q.surrenderLocked(h)
	q.hinting = true
	q.mu.Unlock()
}

// surrenderLocked moves the backlog to handoff and enters hinting mode.
func (q *sendQueue) surrenderLocked(h *handoff) {
	if len(q.pending) > 0 {
		q.stats.hinted += int64(len(q.pending))
		h.add(q.node.id, q.pending)
		q.pending = nil
	}
	q.hinting = true
	q.failures = 0
	q.nextAttempt = time.Time{}
}

// reset clears hinting and the failure streak; called after a hint
// replay proved the node is taking writes again.
func (q *sendQueue) reset() {
	q.mu.Lock()
	q.hinting = false
	q.failures = 0
	q.nextAttempt = time.Time{}
	q.mu.Unlock()
}

// isHinting reports whether the queue has given up on direct delivery.
func (q *sendQueue) isHinting() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.hinting
}

// pendingLen reports the queued (not yet delivered, not yet hinted)
// event count.
func (q *sendQueue) pendingLen() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

func (q *sendQueue) statsSnap() sendStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

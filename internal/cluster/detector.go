package cluster

import (
	"sync"
	"time"
)

// Status is the failure detector's view of a node.
type Status int

// Detector statuses. A node ages Alive → Suspect → Dead as heartbeat
// silence grows, and snaps back to Alive on the first heartbeat after
// any silence.
const (
	StatusAlive Status = iota
	StatusSuspect
	StatusDead
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusAlive:
		return "alive"
	case StatusSuspect:
		return "suspect"
	case StatusDead:
		return "dead"
	}
	return "unknown"
}

// detector is a heartbeat/suspicion failure detector. Heartbeats record
// when a node was last seen; refresh re-ages every node against the
// injected clock's now. Suspicion is the hedge against declaring a
// slow node dead: a suspect node's queue keeps retrying (the write may
// still land), only a dead node's writes divert to hinted handoff.
type detector struct {
	mu           sync.Mutex
	suspectAfter time.Duration
	deadAfter    time.Duration
	lastSeen     []time.Time
	status       []Status

	suspects int64 // alive→suspect transitions
	deaths   int64 // suspect→dead transitions
	revivals int64 // suspect/dead→alive transitions
}

func newDetector(n int, suspectAfter, deadAfter time.Duration, now time.Time) *detector {
	d := &detector{
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
		lastSeen:     make([]time.Time, n),
		status:       make([]Status, n),
	}
	for i := range d.lastSeen {
		d.lastSeen[i] = now
	}
	return d
}

// heartbeat records that node id was seen at now. The status change (if
// any) lands on the next refresh, which is where transitions are
// counted — heartbeat stays cheap and refresh stays the single place
// state moves.
func (d *detector) heartbeat(id int, now time.Time) {
	d.mu.Lock()
	if now.After(d.lastSeen[id]) {
		d.lastSeen[id] = now
	}
	d.mu.Unlock()
}

// refresh re-ages every node against now, counting transitions.
func (d *detector) refresh(now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for id := range d.status {
		silence := now.Sub(d.lastSeen[id])
		var next Status
		switch {
		case silence >= d.deadAfter:
			next = StatusDead
		case silence >= d.suspectAfter:
			next = StatusSuspect
		default:
			next = StatusAlive
		}
		prev := d.status[id]
		if next == prev {
			continue
		}
		d.status[id] = next
		switch {
		case next == StatusSuspect && prev == StatusAlive:
			d.suspects++
			tmClusterSuspects.Inc()
		case next == StatusDead:
			d.deaths++
			tmClusterDeaths.Inc()
		case next == StatusAlive:
			d.revivals++
			tmClusterRevivals.Inc()
		}
	}
}

// statusOf reports the detector's current view of node id.
func (d *detector) statusOf(id int) Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.status[id]
}

// transitions returns the cumulative transition counts.
func (d *detector) transitions() (suspects, deaths, revivals int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.suspects, d.deaths, d.revivals
}

package cluster

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"unilog/internal/events"
	"unilog/internal/realtime"
)

// Errors surfaced by node delivery.
var (
	// ErrNodeDown is returned by deliveries and queries against a crashed
	// node; the send queue treats it like any network failure.
	ErrNodeDown = errors.New("cluster: node is down")
	// ErrNotReplica reports a routing bug: the node does not host the
	// event's partition.
	ErrNotReplica = errors.New("cluster: node does not replicate partition")
)

// routed is one event bound for one partition replica. The event is
// held by value: a queued or hinted write must stay intact however long
// the target node is down, independent of the caller's buffers.
type routed struct {
	p int
	e events.ClientEvent
}

// Node is one member of the cluster: a realtime.Counter per partition
// it replicates, plus a crashed flag that makes every delivery and
// query fail exactly the way a dead machine's would. The counters are
// the node's entire state — crash/recovery semantics (WAL, snapshots,
// re-digestion) are realtime's, untouched.
type Node struct {
	id  int
	dir string // "" = memory-only; crashes lose state
	cfg realtime.Config

	// mu orders deliveries/queries (readers) against crash/restart
	// (writers): a delivery holding RLock either completes before the
	// crash drains the counters — so its events are in the WAL — or
	// starts after and fails with ErrNodeDown and gets retried/hinted.
	// No event can be both applied and hinted.
	mu       sync.RWMutex
	crashed  bool
	counters map[int]*realtime.Counter

	crashes  atomic.Int64
	restarts atomic.Int64

	// queryDelay stalls every query by the given duration (nanoseconds) —
	// a test knob simulating the slow-but-alive node that per-replica
	// query timeouts exist to race around. Deliveries are unaffected.
	queryDelay atomic.Int64
}

// SetQueryDelay makes every subsequent query against the node sleep for
// d before answering. Zero restores normal service.
func (n *Node) SetQueryDelay(d time.Duration) { n.queryDelay.Store(int64(d)) }

// stallQuery applies the configured query delay. It runs before the
// node's read lock is taken, so a stalled query never blocks a
// crash/restart — exactly like a slow machine that is wedged on IO, not
// holding anyone's locks.
func (n *Node) stallQuery() {
	if d := n.queryDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

func newNode(id int, partitions []int, dir string, cfg realtime.Config) (*Node, error) {
	n := &Node{id: id, dir: dir, cfg: cfg}
	counters, err := n.openCounters(partitions)
	if err != nil {
		return nil, err
	}
	n.counters = counters
	return n, nil
}

func (n *Node) openCounters(partitions []int) (map[int]*realtime.Counter, error) {
	counters := make(map[int]*realtime.Counter, len(partitions))
	for _, p := range partitions {
		if n.dir == "" {
			counters[p] = realtime.New(n.cfg)
			continue
		}
		c, err := realtime.Open(filepath.Join(n.dir, fmt.Sprintf("p%d", p)), n.cfg)
		if err != nil {
			for _, open := range counters {
				open.Close()
			}
			return nil, fmt.Errorf("cluster: node %d partition %d: %w", n.id, p, err)
		}
		counters[p] = c
	}
	return counters, nil
}

// ID returns the node's cluster-wide id.
func (n *Node) ID() int { return n.id }

// deliver applies a batch of routed events. It either applies the whole
// batch or (if the node is down) none of it.
func (n *Node) deliver(batch []routed) error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.crashed {
		return ErrNodeDown
	}
	for i := range batch {
		c := n.counters[batch[i].p]
		if c == nil {
			return fmt.Errorf("%w: node %d, partition %d", ErrNotReplica, n.id, batch[i].p)
		}
		c.Ingest(&batch[i].e)
	}
	tmClusterDeliver.Add(int64(len(batch)))
	return nil
}

// crash kills the node: counters stop as on a process kill (durable
// ones keep their WALs; memory-only ones lose everything) and all
// subsequent deliveries and queries fail until restart.
func (n *Node) crash() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.crashed {
		return
	}
	n.crashed = true
	n.crashes.Add(1)
	for _, c := range n.counters {
		if n.dir != "" {
			c.Crash()
		} else {
			c.Close()
		}
	}
}

// restart brings a crashed node back. Durable nodes recover each
// partition counter from its WAL and snapshots; memory-only nodes come
// back empty. Restarting a live node is a no-op.
func (n *Node) restart() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.crashed {
		return nil
	}
	partitions := make([]int, 0, len(n.counters))
	for p := range n.counters {
		partitions = append(partitions, p)
	}
	counters, err := n.openCounters(partitions)
	if err != nil {
		return err
	}
	n.counters = counters
	n.crashed = false
	n.restarts.Add(1)
	return nil
}

// isCrashed reports whether the node is down.
func (n *Node) isCrashed() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.crashed
}

// sync blocks until every delivered observation is applied (no-op on a
// crashed node).
func (n *Node) sync() {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.crashed {
		return
	}
	for _, c := range n.counters {
		c.Sync()
	}
}

// close shuts the node down cleanly (final snapshots on durable nodes).
func (n *Node) close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.crashed {
		return nil
	}
	n.crashed = true
	for _, c := range n.counters {
		c.Close()
	}
	return nil
}

// counterStats sums the realtime Stats of the node's counters. Counters
// stay readable (and stats-readable) after shutdown, so this works on
// crashed memory-only nodes too — but after a durable restart the
// pre-crash deltas live in the recovered counters already.
func (n *Node) counterStats() realtime.Stats {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var s realtime.Stats
	for _, c := range n.counters {
		s = sumStats(s, c.Stats())
	}
	return s
}

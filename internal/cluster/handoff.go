package cluster

import "sync"

// handoff is the hinted-handoff table: writes that could not reach a
// replica wait here, keyed by target node, until the failure detector
// sees that node alive again and Tick replays them. Hints are the
// cluster-level half of recovery — a restarted durable node first
// replays its own WAL (everything it accepted before the crash), then
// the hints (everything it missed while down), and the two sets are
// disjoint because a delivery either committed before the crash or
// failed into this table.
type handoff struct {
	mu     sync.Mutex
	byNode [][]routed
	total  int

	hinted         int64
	replayed       int64
	replayFailures int64
	highWater      int64
}

type handoffStats struct {
	hinted         int64
	replayed       int64
	replayFailures int64
	highWater      int64
}

func newHandoff(nodes int) *handoff {
	return &handoff{byNode: make([][]routed, nodes)}
}

// add buffers a batch of hints for node id.
func (h *handoff) add(id int, batch []routed) {
	if len(batch) == 0 {
		return
	}
	h.mu.Lock()
	h.byNode[id] = append(h.byNode[id], batch...)
	h.total += len(batch)
	h.hinted += int64(len(batch))
	if int64(h.total) > h.highWater {
		h.highWater = int64(h.total)
	}
	h.mu.Unlock()
	tmClusterHinted.Add(int64(len(batch)))
}

// replay delivers every hint buffered for n. On failure (the node died
// again between detection and replay) the hints go back in the table
// for the next round.
func (h *handoff) replay(n *Node) error {
	h.mu.Lock()
	batch := h.byNode[n.id]
	h.byNode[n.id] = nil
	h.total -= len(batch)
	h.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	if err := n.deliver(batch); err != nil {
		h.mu.Lock()
		h.byNode[n.id] = append(batch, h.byNode[n.id]...)
		h.total += len(batch)
		h.replayFailures++
		h.mu.Unlock()
		return err
	}
	h.mu.Lock()
	h.replayed += int64(len(batch))
	h.mu.Unlock()
	tmClusterReplayed.Add(int64(len(batch)))
	return nil
}

// pending reports the hint count buffered for node id.
func (h *handoff) pending(id int) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.byNode[id])
}

// totalPending reports the hint count across all nodes.
func (h *handoff) totalPending() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

func (h *handoff) statsSnap() handoffStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return handoffStats{
		hinted:         h.hinted,
		replayed:       h.replayed,
		replayFailures: h.replayFailures,
		highWater:      h.highWater,
	}
}

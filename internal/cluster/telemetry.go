package cluster

import "unilog/internal/telemetry"

// Process-wide instruments on the default registry, following the
// repo-wide convention (see internal/realtime/telemetry.go): counters
// tick on the hot paths; per-Cluster gauges register via
// Cluster.Publish.
var (
	tmClusterIngest     = telemetry.GetCounter("cluster.ingest.events")
	tmClusterDecodeErrs = telemetry.GetCounter("cluster.ingest.decode_errors")
	tmClusterDeliver    = telemetry.GetCounter("cluster.deliver.events")
	tmClusterRetries    = telemetry.GetCounter("cluster.send.retries")
	tmClusterSendFails  = telemetry.GetCounter("cluster.send.failures")
	tmClusterHinted     = telemetry.GetCounter("cluster.handoff.hinted")
	tmClusterReplayed   = telemetry.GetCounter("cluster.handoff.replayed")
	tmClusterSuspects   = telemetry.GetCounter("cluster.detector.suspects")
	tmClusterDeaths     = telemetry.GetCounter("cluster.detector.deaths")
	tmClusterRevivals   = telemetry.GetCounter("cluster.detector.revivals")
	tmClusterCrashes    = telemetry.GetCounter("cluster.node.crashes")
	tmClusterRestarts   = telemetry.GetCounter("cluster.node.restarts")
)

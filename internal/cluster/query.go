package cluster

import (
	"time"

	"unilog/internal/analytics"
	"unilog/internal/realtime"
)

// Per-node, per-partition query surface. Partitions hold disjoint name
// sets, so a cluster-wide answer is the sum of one live replica's
// partial per partition; the scatter-gather merge lives in
// birdbrain.Scatter. Every method fails with ErrNodeDown on a crashed
// node — a crashed counter's memory may still be readable in-process,
// but a dead machine's would not be, and the failover path only gets
// exercised if we refuse to answer.

// PathSum returns the node's count for a hierarchy path within one
// partition over [from, to).
func (n *Node) PathSum(p int, path string, from, to time.Time) (int64, error) {
	n.stallQuery()
	n.mu.RLock()
	defer n.mu.RUnlock()
	c, err := n.queryCounter(p)
	if err != nil {
		return 0, err
	}
	return c.PathSum(path, from, to), nil
}

// Series returns the node's per-minute counts for a path within one
// partition over [from, to).
func (n *Node) Series(p int, path string, from, to time.Time) ([]int64, error) {
	n.stallQuery()
	n.mu.RLock()
	defer n.mu.RUnlock()
	c, err := n.queryCounter(p)
	if err != nil {
		return nil, err
	}
	return c.Series(path, from, to), nil
}

// ChildCounts returns the node's full per-child counts under parent
// within one partition over [from, to) — unranked and uncut, because a
// cluster-wide top-k can only be ranked after merging every partition's
// children (a name small on this partition's slice of the namespace
// may be absent from it entirely, not small globally; partitions hold
// whole names, so no name is split, but the union is what ranks).
func (n *Node) ChildCounts(p int, parent string, from, to time.Time) ([]realtime.PathCount, error) {
	n.stallQuery()
	n.mu.RLock()
	defer n.mu.RUnlock()
	c, err := n.queryCounter(p)
	if err != nil {
		return nil, err
	}
	return c.TopK(parent, allChildren, from, to), nil
}

// Rollups returns the node's §3.2 rollup rows for one partition over
// [from, to), keyed like analytics.Rollups.
func (n *Node) Rollups(p int, from, to time.Time) (map[analytics.RollupKey]int64, error) {
	n.stallQuery()
	n.mu.RLock()
	defer n.mu.RUnlock()
	c, err := n.queryCounter(p)
	if err != nil {
		return nil, err
	}
	return c.RollupSnapshot(from, to), nil
}

// allChildren asks TopK for an effectively unbounded k.
const allChildren = 1 << 30

// queryCounter resolves partition p's counter; the caller holds RLock.
func (n *Node) queryCounter(p int) (*realtime.Counter, error) {
	if n.crashed {
		return nil, ErrNodeDown
	}
	c := n.counters[p]
	if c == nil {
		return nil, ErrNotReplica
	}
	return c, nil
}

// Package oink reimplements Twitter's workflow manager (§3): it "schedules
// recurring jobs at fixed intervals", "handles dataflow dependencies
// between jobs" (job B runs only after its upstream job A has succeeded for
// the covered period), and "preserves execution traces for audit purposes:
// when a job began, how long it lasted, whether it completed successfully".
//
// The scheduler runs over an explicitly advanced virtual clock, so a
// simulated day of hourly and daily jobs executes deterministically in
// microseconds. A typical wiring, mirroring the paper's production flow:
//
//	log_mover   (hourly)                      — moves sealed staging hours
//	histogram   (daily, after log_mover)      — event counts + dictionary
//	sessions    (daily, after histogram)      — materialize session sequences
//	rollups     (daily, after log_mover)      — §3.2 dashboard aggregates
//	birdbrain   (daily, after sessions)       — dashboard summary
package oink

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Errors returned by the scheduler.
var (
	ErrDuplicateJob = errors.New("oink: job already registered")
	ErrUnknownDep   = errors.New("oink: dependency on unregistered job")
)

// Status classifies one execution attempt.
type Status int

// Trace statuses.
const (
	StatusSucceeded Status = iota
	StatusFailed
	StatusBlocked // dependencies not yet satisfied; will retry
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusSucceeded:
		return "succeeded"
	case StatusFailed:
		return "failed"
	case StatusBlocked:
		return "blocked"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Job is a recurring workflow node.
type Job struct {
	Name string
	// Every is the period: a job runs once per period boundary (aligned to
	// the epoch in UTC).
	Every time.Duration
	// DependsOn lists upstream job names. The job runs for period P only
	// when every dependency has succeeded for all of its own periods
	// covering P.
	DependsOn []string
	// Ready optionally gates on external data availability (e.g. "the log
	// mover barrier for this hour is sealed"). Nil means always ready.
	Ready func(period time.Time) bool
	// Run executes the job for the period starting at the given time.
	Run func(period time.Time) error
}

// Trace is one audit record.
type Trace struct {
	Job     string
	Period  time.Time
	Started time.Time
	// Duration is how long the attempt took in virtual time (zero under
	// the default instantaneous clock) — preserved for audit fidelity.
	Duration time.Duration
	Status   Status
	Err      string
}

// Scheduler coordinates jobs over a virtual clock.
type Scheduler struct {
	now   time.Time
	jobs  map[string]*Job
	order []string // registration order for deterministic scheduling
	topo  []string
	// succeeded[job][periodStart] records completed periods.
	succeeded map[string]map[int64]bool
	// added records each job's registration time; periods before it are
	// never scheduled.
	added  map[string]time.Time
	traces []Trace
}

// NewScheduler returns a scheduler whose virtual clock starts at start.
func NewScheduler(start time.Time) *Scheduler {
	return &Scheduler{
		now:       start.UTC(),
		jobs:      make(map[string]*Job),
		succeeded: make(map[string]map[int64]bool),
		added:     make(map[string]time.Time),
	}
}

// Now returns the virtual time.
func (s *Scheduler) Now() time.Time { return s.now }

// Add registers a job. Dependencies must already be registered, which also
// guarantees acyclicity.
func (s *Scheduler) Add(j *Job) error {
	if _, ok := s.jobs[j.Name]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateJob, j.Name)
	}
	for _, d := range j.DependsOn {
		if _, ok := s.jobs[d]; !ok {
			return fmt.Errorf("%w: %s -> %s", ErrUnknownDep, j.Name, d)
		}
	}
	if j.Every <= 0 {
		return fmt.Errorf("oink: job %s has non-positive period", j.Name)
	}
	s.jobs[j.Name] = j
	s.order = append(s.order, j.Name)
	s.topo = append(s.topo, j.Name) // registration order is topological
	s.succeeded[j.Name] = make(map[int64]bool)
	s.added[j.Name] = s.now
	return nil
}

// Traces returns the audit log.
func (s *Scheduler) Traces() []Trace { return s.traces }

// Succeeded reports whether the job completed the period starting at p.
func (s *Scheduler) Succeeded(job string, p time.Time) bool {
	return s.succeeded[job][p.UTC().Unix()]
}

// periodStart aligns t down to a period boundary.
func periodStart(t time.Time, every time.Duration) time.Time {
	return t.UTC().Truncate(every)
}

// depsSatisfied reports whether every dependency of j has succeeded for all
// of its periods covering [p, p+j.Every).
func (s *Scheduler) depsSatisfied(j *Job, p time.Time) bool {
	end := p.Add(j.Every)
	for _, dn := range j.DependsOn {
		dep := s.jobs[dn]
		for dp := periodStart(p, dep.Every); dp.Before(end); dp = dp.Add(dep.Every) {
			if !s.succeeded[dn][dp.Unix()] {
				return false
			}
		}
	}
	return true
}

// AdvanceTo moves the virtual clock to t, running every job whose period
// completed, in time order and dependency (registration) order within each
// instant. A period is runnable once it has fully elapsed: the hourly job
// for 14:00 runs when the clock reaches 15:00.
func (s *Scheduler) AdvanceTo(t time.Time) {
	t = t.UTC()
	for s.now.Before(t) {
		next := s.nextBoundary(t)
		s.now = next
		s.runDue()
	}
}

// nextBoundary finds the earliest period boundary after now (capped at t).
func (s *Scheduler) nextBoundary(t time.Time) time.Time {
	best := t
	for _, name := range s.order {
		j := s.jobs[name]
		b := periodStart(s.now, j.Every).Add(j.Every)
		if b.After(s.now) && b.Before(best) {
			best = b
		}
	}
	return best
}

// runDue attempts every job period that has elapsed but not succeeded.
func (s *Scheduler) runDue() {
	// Collect candidate (job, period) pairs.
	type due struct {
		job    *Job
		period time.Time
	}
	var candidates []due
	for _, name := range s.topo {
		j := s.jobs[name]
		// Try every unfinished period that has fully elapsed. Bound the
		// backlog scan to the most recent 100 periods to stay linear; a
		// succeeded period does not end the scan, because a newer period can
		// complete while an older one is still blocked on its dependencies.
		last := periodStart(s.now.Add(-j.Every), j.Every)
		floor := periodStart(s.added[name], j.Every)
		for p, n := last, 0; n < 100 && !p.Before(floor); p, n = p.Add(-j.Every), n+1 {
			if s.succeeded[name][p.Unix()] {
				continue
			}
			candidates = append(candidates, due{j, p})
		}
	}
	// Run oldest periods first, dependencies before dependents. Iterate to
	// a fixpoint within this instant: a dependency succeeding can unblock a
	// dependent whose period completed at the same boundary (e.g. the last
	// hourly run of a day unblocking the daily job).
	sort.SliceStable(candidates, func(a, b int) bool {
		return candidates[a].period.Before(candidates[b].period)
	})
	tmQueueDepth.Set(int64(len(candidates)))
	pending := candidates
	for {
		progress := false
		var blocked []due
		for _, c := range pending {
			switch s.attempt(c.job, c.period) {
			case StatusSucceeded:
				progress = true
			case StatusBlocked:
				blocked = append(blocked, c)
			}
		}
		pending = blocked
		if !progress || len(pending) == 0 {
			break
		}
	}
	// Whatever is still blocked gets one audit record for this instant.
	for _, c := range pending {
		s.traces = append(s.traces, Trace{Job: c.job.Name, Period: c.period, Started: s.now, Status: StatusBlocked})
	}
	tmQueueBlocked.Set(int64(len(pending)))
}

// attempt runs one (job, period) if its gates pass, returning the outcome.
// Blocked attempts are not traced here; runDue records them once per
// instant after the fixpoint.
func (s *Scheduler) attempt(j *Job, p time.Time) Status {
	if s.succeeded[j.Name][p.Unix()] {
		return StatusSucceeded
	}
	if !s.depsSatisfied(j, p) || (j.Ready != nil && !j.Ready(p)) {
		return StatusBlocked
	}
	// The period became runnable when it ended (p + Every); the gap to the
	// virtual now is the schedule-to-start lag.
	tmScheduleLagMs.Observe(s.now.Sub(p.Add(j.Every)).Milliseconds())
	tr := Trace{Job: j.Name, Period: p, Started: s.now}
	if err := j.Run(p); err != nil {
		tr.Status = StatusFailed
		tr.Err = err.Error()
		tmJobsFailed.Inc()
	} else {
		tr.Status = StatusSucceeded
		s.succeeded[j.Name][p.Unix()] = true
		tmJobsSucceeded.Inc()
	}
	s.traces = append(s.traces, tr)
	return tr.Status
}

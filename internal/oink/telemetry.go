package oink

import (
	"unilog/internal/telemetry"
)

// Telemetry instruments for the scheduler. Time here is the scheduler's
// virtual clock, so the schedule-to-start lag histogram is in
// milliseconds of simulated time: how long after a period became
// runnable (period end) its job actually started — dependency stalls and
// backlog catch-up show up as a fat tail.
var (
	tmJobsSucceeded = telemetry.GetCounter("oink.jobs.succeeded")
	tmJobsFailed    = telemetry.GetCounter("oink.jobs.failed")
	tmQueueDepth    = telemetry.GetGauge("oink.queue.depth")
	tmQueueBlocked  = telemetry.GetGauge("oink.queue.blocked")

	tmScheduleLagMs = telemetry.GetHistogram("oink.schedule.lag.ms")
)

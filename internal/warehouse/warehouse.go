// Package warehouse defines the layout of the main Hadoop data warehouse
// and the staging clusters as the paper describes them (§2): logs arrive in
// per-category, per-hour directories, /logs/category/YYYY/MM/DD/HH/, with
// messages bundled into a small number of large gzipped record files.
//
// It also provides a direct Writer/Scanner pair over that layout. The full
// delivery path (daemon → aggregator → staging → log mover) produces the
// same layout; the direct writer exists so analytics benchmarks can populate
// a warehouse without running the whole pipeline.
package warehouse

import (
	"fmt"
	"strings"
	"time"

	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/recordio"
)

// Root directories of the two clusters.
const (
	// LogsRoot is the warehouse root: /logs/<category>/YYYY/MM/DD/HH/.
	LogsRoot = "/logs"
	// StagingRoot is the per-datacenter staging root with the same shape.
	StagingRoot = "/staging"
	// TmpRoot holds in-flight data that will be renamed into place.
	TmpRoot = "/tmp"
	// SessionRoot holds materialized session sequences, per day.
	SessionRoot = "/session_sequences"
)

// HourPath formats t's UTC hour as YYYY/MM/DD/HH.
func HourPath(t time.Time) string {
	u := t.UTC()
	return fmt.Sprintf("%04d/%02d/%02d/%02d", u.Year(), int(u.Month()), u.Day(), u.Hour())
}

// DatePath formats t's UTC date as YYYY/MM/DD.
func DatePath(t time.Time) string {
	u := t.UTC()
	return fmt.Sprintf("%04d/%02d/%02d", u.Year(), int(u.Month()), u.Day())
}

// CategoryDir is the warehouse directory of a category: /logs/<category>.
func CategoryDir(category string) string {
	return LogsRoot + "/" + category
}

// HourDir is the warehouse directory of one imported hour.
func HourDir(category string, t time.Time) string {
	return CategoryDir(category) + "/" + HourPath(t)
}

// StagingHourDir is the staging-cluster directory for one category-hour.
func StagingHourDir(category string, t time.Time) string {
	return StagingRoot + "/" + category + "/" + HourPath(t)
}

// SealedMarker is the empty file an aggregator cluster writes once a
// staging hour is complete; the log mover waits for it from every
// datacenter before sliding the hour into the warehouse.
const SealedMarker = "_SEALED"

// SessionDayDir is the directory of one day of materialized session
// sequences.
func SessionDayDir(t time.Time) string {
	return SessionRoot + "/" + DatePath(t)
}

// Writer writes client events straight into warehouse layout, bypassing the
// delivery pipeline. Files roll at RollRecords records.
type Writer struct {
	fs       *hdfs.FS
	category string
	// RollRecords caps records per part file; it defaults to 50000.
	RollRecords int

	hour    time.Time
	buf     *memFile
	rw      *recordio.GzipWriter
	inFile  int
	partSeq int
	written int64
}

type memFile struct{ data []byte }

func (m *memFile) Write(p []byte) (int, error) {
	m.data = append(m.data, p...)
	return len(p), nil
}

// NewWriter returns a Writer for the category on fs.
func NewWriter(fs *hdfs.FS, category string) *Writer {
	return &Writer{fs: fs, category: category, RollRecords: 50000}
}

// Append adds one event, bucketing it into the directory of its own
// timestamp's hour. Events must be appended in non-decreasing hour order.
func (w *Writer) Append(e *events.ClientEvent) error {
	hr := time.UnixMilli(e.Timestamp).UTC().Truncate(time.Hour)
	if w.rw == nil || !hr.Equal(w.hour) || w.inFile >= w.RollRecords {
		if err := w.roll(); err != nil {
			return err
		}
		w.hour = hr
	}
	if err := w.rw.Append(e.Marshal()); err != nil {
		return err
	}
	w.inFile++
	w.written++
	return nil
}

func (w *Writer) roll() error {
	if err := w.flushCurrent(); err != nil {
		return err
	}
	w.buf = &memFile{}
	w.rw = recordio.NewGzipWriter(w.buf)
	w.inFile = 0
	return nil
}

func (w *Writer) flushCurrent() error {
	if w.rw == nil || w.inFile == 0 {
		return nil
	}
	if err := w.rw.Close(); err != nil {
		return err
	}
	path := fmt.Sprintf("%s/part-%05d.gz", HourDir(w.category, w.hour), w.partSeq)
	w.partSeq++
	if err := w.fs.WriteFile(path, w.buf.data); err != nil {
		return err
	}
	w.rw = nil
	w.buf = nil
	return nil
}

// Close flushes the final part file.
func (w *Writer) Close() error { return w.flushCurrent() }

// Written reports the number of events appended.
func (w *Writer) Written() int64 { return w.written }

// ScanHour decodes every event in one imported category-hour, in file
// order, invoking fn on each.
func ScanHour(fs *hdfs.FS, category string, hour time.Time, fn func(*events.ClientEvent) error) error {
	dir := HourDir(category, hour)
	infos, err := fs.Walk(dir)
	if err != nil {
		return err
	}
	for _, fi := range infos {
		if IsAuxiliary(fi.Path) {
			continue
		}
		data, err := fs.ReadFile(fi.Path)
		if err != nil {
			return err
		}
		err = recordio.ScanGzipFile(data, func(rec []byte) error {
			var e events.ClientEvent
			if err := e.Unmarshal(rec); err != nil {
				return fmt.Errorf("warehouse: %s: %w", fi.Path, err)
			}
			return fn(&e)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ScanDay decodes every event of a category across all 24 hours of t's day.
func ScanDay(fs *hdfs.FS, category string, day time.Time, fn func(*events.ClientEvent) error) error {
	day = day.UTC().Truncate(24 * time.Hour)
	for h := 0; h < 24; h++ {
		hour := day.Add(time.Duration(h) * time.Hour)
		if !fs.Exists(HourDir(category, hour)) {
			continue
		}
		if err := ScanHour(fs, category, hour, fn); err != nil {
			return err
		}
	}
	return nil
}

// DictionaryDir is the "known location in HDFS" (§4.2) where the daily
// histogram job stores the event-count histogram, the client event
// dictionary, and per-event samples.
func DictionaryDir(t time.Time) string {
	return "/event_dictionary/" + DatePath(t)
}

// IsAuxiliary reports whether a path names a non-data file living beside
// log data: seal markers (leading underscore) and Elephant Twin indexes
// (.idx event-name indexes, .tidx full-text indexes). Scanners and loaders
// skip these.
func IsAuxiliary(path string) bool {
	base := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		base = path[i+1:]
	}
	return strings.HasPrefix(base, "_") ||
		strings.HasSuffix(base, ".idx") ||
		strings.HasSuffix(base, ".tidx")
}

// DataSize sums the sizes of data files (excluding auxiliaries) under dir.
func DataSize(fs *hdfs.FS, dir string) (int64, error) {
	infos, err := fs.Walk(dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, fi := range infos {
		if IsAuxiliary(fi.Path) {
			continue
		}
		total += fi.Size
	}
	return total, nil
}

package warehouse

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"unilog/internal/events"
	"unilog/internal/hdfs"
)

var t14 = time.Date(2012, 8, 21, 14, 30, 0, 0, time.UTC)

func TestPathHelpers(t *testing.T) {
	if got := HourPath(t14); got != "2012/08/21/14" {
		t.Fatalf("HourPath = %q", got)
	}
	if got := DatePath(t14); got != "2012/08/21" {
		t.Fatalf("DatePath = %q", got)
	}
	if got := HourDir("client_events", t14); got != "/logs/client_events/2012/08/21/14" {
		t.Fatalf("HourDir = %q", got)
	}
	if got := StagingHourDir("ce", t14); got != "/staging/ce/2012/08/21/14" {
		t.Fatalf("StagingHourDir = %q", got)
	}
	if got := SessionDayDir(t14); got != "/session_sequences/2012/08/21" {
		t.Fatalf("SessionDayDir = %q", got)
	}
	if got := DictionaryDir(t14); got != "/event_dictionary/2012/08/21" {
		t.Fatalf("DictionaryDir = %q", got)
	}
}

func TestHourPathUsesUTC(t *testing.T) {
	est := time.FixedZone("EST", -5*3600)
	local := time.Date(2012, 8, 21, 22, 0, 0, 0, est) // 03:00 UTC next day
	if got := HourPath(local); got != "2012/08/22/03" {
		t.Fatalf("HourPath(EST 22:00) = %q", got)
	}
}

func TestIsAuxiliary(t *testing.T) {
	cases := map[string]bool{
		"/logs/ce/2012/08/21/14/part-00000.gz":     false,
		"/logs/ce/2012/08/21/14/part-00000.gz.idx": true,
		"/staging/ce/2012/08/21/14/_SEALED":        true,
		"/logs/ce/_tmp":                            true,
		"part-1.gz":                                false,
		"_marker":                                  true,
	}
	for p, want := range cases {
		if got := IsAuxiliary(p); got != want {
			t.Errorf("IsAuxiliary(%q) = %v, want %v", p, got, want)
		}
	}
}

func mkEvent(user int64, at time.Time) *events.ClientEvent {
	return &events.ClientEvent{
		Name:      events.MustParseName("web:home:::tweet:impression"),
		UserID:    user,
		SessionID: "s",
		IP:        "10.0.0.1",
		Timestamp: at.UnixMilli(),
	}
}

func TestWriterBucketsByHour(t *testing.T) {
	fs := hdfs.New(0)
	w := NewWriter(fs, "ce")
	day := time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)
	for hr := 0; hr < 3; hr++ {
		for i := 0; i < 5; i++ {
			e := mkEvent(int64(i), day.Add(time.Duration(hr)*time.Hour+time.Duration(i)*time.Minute))
			if err := w.Append(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Written() != 15 {
		t.Fatalf("Written = %d", w.Written())
	}
	for hr := 0; hr < 3; hr++ {
		n := 0
		err := ScanHour(fs, "ce", day.Add(time.Duration(hr)*time.Hour), func(e *events.ClientEvent) error {
			n++
			return nil
		})
		if err != nil || n != 5 {
			t.Fatalf("hour %d: %d events, %v", hr, n, err)
		}
	}
}

func TestWriterRollsAtRecordLimit(t *testing.T) {
	fs := hdfs.New(0)
	w := NewWriter(fs, "ce")
	w.RollRecords = 10
	day := time.Date(2012, 8, 21, 5, 0, 0, 0, time.UTC)
	for i := 0; i < 35; i++ {
		if err := w.Append(mkEvent(int64(i), day.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	infos, err := fs.Walk(HourDir("ce", day))
	if err != nil || len(infos) != 4 {
		t.Fatalf("part files = %d, %v", len(infos), err)
	}
}

func TestScanDaySkipsMissingHours(t *testing.T) {
	fs := hdfs.New(0)
	w := NewWriter(fs, "ce")
	day := time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)
	// Only hours 3 and 17 have data.
	for _, hr := range []int{3, 17} {
		if err := w.Append(mkEvent(1, day.Add(time.Duration(hr)*time.Hour))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := ScanDay(fs, "ce", day, func(*events.ClientEvent) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("scanned %d events", n)
	}
}

func TestDataSizeExcludesAuxiliary(t *testing.T) {
	fs := hdfs.New(0)
	if err := fs.WriteFile("/logs/ce/part-0.gz", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/logs/ce/part-0.gz.idx", make([]byte, 999)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/logs/ce/_SEALED", make([]byte, 5)); err != nil {
		t.Fatal(err)
	}
	sz, err := DataSize(fs, "/logs/ce")
	if err != nil || sz != 100 {
		t.Fatalf("DataSize = %d, %v", sz, err)
	}
}

// TestWriterScannerRoundTripProperty: any batch of events written through
// the Writer is scanned back intact.
func TestWriterScannerRoundTripProperty(t *testing.T) {
	day := time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)
	run := 0
	f := func(users []uint8, minuteOffsets []uint16) bool {
		run++
		if len(users) == 0 {
			return true
		}
		fs := hdfs.New(0)
		w := NewWriter(fs, fmt.Sprintf("cat%d", run))
		n := 0
		prev := day
		for i, u := range users {
			at := prev
			if i < len(minuteOffsets) {
				at = at.Add(time.Duration(minuteOffsets[i]%30) * time.Minute)
			}
			if at.After(day.Add(23 * time.Hour)) {
				break
			}
			prev = at
			if err := w.Append(mkEvent(int64(u), at)); err != nil {
				return false
			}
			n++
		}
		if err := w.Close(); err != nil {
			return false
		}
		got := 0
		if err := ScanDay(fs, fmt.Sprintf("cat%d", run), day, func(*events.ClientEvent) error {
			got++
			return nil
		}); err != nil {
			return false
		}
		return got == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

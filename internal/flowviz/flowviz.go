// Package flowviz aggregates session sequences into a prefix tree and
// renders it as text — a terminal-friendly take on the §6 "ongoing work"
// item of using visualization "to provide data scientists a visual
// interface for exploring sessions", citing LifeFlow (Wongsuphasawat et
// al., CHI 2011). LifeFlow's core idea is exactly this: aggregate many
// event sequences into a tree of shared prefixes whose node sizes show how
// many sessions flow through each path.
package flowviz

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Node is one prefix-tree vertex: the sessions whose next event after this
// node's prefix was Symbol.
type Node struct {
	Symbol   rune
	Count    int
	Children map[rune]*Node
	// Terminal counts sessions that end exactly here.
	Terminal int
}

// Tree is the aggregated flow of a set of sessions.
type Tree struct {
	Root     *Node
	Sessions int
	MaxDepth int
}

// Build aggregates sequences into a prefix tree truncated at maxDepth
// events (0 means unlimited).
func Build(seqs []string, maxDepth int) *Tree {
	t := &Tree{
		Root:     &Node{Children: make(map[rune]*Node)},
		MaxDepth: maxDepth,
	}
	for _, seq := range seqs {
		t.Sessions++
		cur := t.Root
		cur.Count++
		depth := 0
		for _, r := range seq {
			if maxDepth > 0 && depth >= maxDepth {
				break
			}
			child := cur.Children[r]
			if child == nil {
				child = &Node{Symbol: r, Children: make(map[rune]*Node)}
				cur.Children[r] = child
			}
			child.Count++
			cur = child
			depth++
		}
		cur.Terminal++
	}
	return t
}

// Namer resolves a symbol to a display label; session.Dictionary.Name
// satisfies it.
type Namer func(rune) (string, bool)

// RenderOptions controls the text rendering.
type RenderOptions struct {
	// MinCount prunes paths carrying fewer sessions.
	MinCount int
	// MaxChildren keeps only the most-travelled branches per node.
	MaxChildren int
	// BarWidth scales the proportional count bar (0 disables bars).
	BarWidth int
}

// DefaultRenderOptions suit a terminal.
var DefaultRenderOptions = RenderOptions{MinCount: 2, MaxChildren: 4, BarWidth: 20}

// Render writes the flow tree as indented text with proportional bars:
//
//	├─ web:home:::page:open                          ████████████ 240
//	│  ├─ web:home:timeline:stream:tweet:impression  ████████ 180
func (t *Tree) Render(w io.Writer, name Namer, opts RenderOptions) {
	fmt.Fprintf(w, "%d sessions\n", t.Sessions)
	t.renderNode(w, t.Root, "", name, opts)
}

func (t *Tree) renderNode(w io.Writer, n *Node, indent string, name Namer, opts RenderOptions) {
	kids := make([]*Node, 0, len(n.Children))
	for _, c := range n.Children {
		if c.Count >= opts.MinCount {
			kids = append(kids, c)
		}
	}
	sort.Slice(kids, func(i, j int) bool {
		if kids[i].Count != kids[j].Count {
			return kids[i].Count > kids[j].Count
		}
		return kids[i].Symbol < kids[j].Symbol
	})
	pruned := 0
	if opts.MaxChildren > 0 && len(kids) > opts.MaxChildren {
		pruned = len(kids) - opts.MaxChildren
		kids = kids[:opts.MaxChildren]
	}
	for i, c := range kids {
		connector, childIndent := "├─ ", indent+"│  "
		if i == len(kids)-1 && pruned == 0 {
			connector, childIndent = "└─ ", indent+"   "
		}
		label := fmt.Sprintf("%U", c.Symbol)
		if name != nil {
			if s, ok := name(c.Symbol); ok {
				label = s
			}
		}
		bar := ""
		if opts.BarWidth > 0 && t.Sessions > 0 {
			width := c.Count * opts.BarWidth / t.Sessions
			if width < 1 {
				width = 1
			}
			bar = " " + strings.Repeat("█", width)
		}
		fmt.Fprintf(w, "%s%s%s%s %d\n", indent, connector, label, bar, c.Count)
		t.renderNode(w, c, childIndent, name, opts)
	}
	if pruned > 0 {
		fmt.Fprintf(w, "%s└─ … %d more branches\n", indent, pruned)
	}
}

// PathCount returns how many sessions start with the given symbol prefix.
func (t *Tree) PathCount(prefix []rune) int {
	cur := t.Root
	for _, r := range prefix {
		next := cur.Children[r]
		if next == nil {
			return 0
		}
		cur = next
	}
	return cur.Count
}

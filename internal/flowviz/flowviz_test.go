package flowviz

import (
	"bytes"
	"strings"
	"testing"
)

func TestBuildCounts(t *testing.T) {
	seqs := []string{"abc", "abd", "ab", "xyz"}
	tree := Build(seqs, 0)
	if tree.Sessions != 4 {
		t.Fatalf("sessions = %d", tree.Sessions)
	}
	if got := tree.PathCount([]rune("ab")); got != 3 {
		t.Fatalf("PathCount(ab) = %d", got)
	}
	if got := tree.PathCount([]rune("abc")); got != 1 {
		t.Fatalf("PathCount(abc) = %d", got)
	}
	if got := tree.PathCount([]rune("zz")); got != 0 {
		t.Fatalf("PathCount(zz) = %d", got)
	}
	// One session terminates exactly at "ab".
	cur := tree.Root
	for _, r := range "ab" {
		cur = cur.Children[r]
	}
	if cur.Terminal != 1 {
		t.Fatalf("Terminal(ab) = %d", cur.Terminal)
	}
}

func TestMaxDepthTruncation(t *testing.T) {
	tree := Build([]string{"abcdefgh"}, 3)
	if tree.PathCount([]rune("abc")) != 1 {
		t.Fatal("depth-3 path missing")
	}
	if tree.PathCount([]rune("abcd")) != 0 {
		t.Fatal("path deeper than maxDepth present")
	}
}

func TestRender(t *testing.T) {
	seqs := []string{"ab", "ab", "ab", "ac", "ac", "zz"}
	tree := Build(seqs, 0)
	var buf bytes.Buffer
	names := map[rune]string{'a': "page:open", 'b': "tweet:impression", 'c': "wtf:impression", 'z': "search:query"}
	tree.Render(&buf, func(r rune) (string, bool) {
		n, ok := names[r]
		return n, ok
	}, RenderOptions{MinCount: 2, MaxChildren: 5, BarWidth: 10})
	out := buf.String()
	for _, want := range []string{"6 sessions", "page:open", "tweet:impression", "█", " 5\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// The zz path (count 1 < MinCount 2... actually 'z' child has count 1)
	// is pruned.
	if strings.Contains(out, "search:query") {
		t.Fatalf("pruned path rendered:\n%s", out)
	}
}

func TestRenderPrunesBranches(t *testing.T) {
	seqs := []string{"ab", "ac", "ad", "ae", "af", "ab", "ac", "ad", "ae", "af"}
	tree := Build(seqs, 0)
	var buf bytes.Buffer
	tree.Render(&buf, nil, RenderOptions{MinCount: 1, MaxChildren: 2, BarWidth: 0})
	out := buf.String()
	if !strings.Contains(out, "more branches") {
		t.Fatalf("branch pruning note missing:\n%s", out)
	}
}

func TestEmptyTree(t *testing.T) {
	tree := Build(nil, 0)
	var buf bytes.Buffer
	tree.Render(&buf, nil, DefaultRenderOptions)
	if !strings.Contains(buf.String(), "0 sessions") {
		t.Fatalf("out = %q", buf.String())
	}
}

// Package dataflow is a miniature Pig: a dataflow query engine over the
// warehouse filesystem that executes with MapReduce-shaped cost accounting.
//
// The paper's performance argument (§4) is not about absolute runtimes but
// about cluster mechanics: how many map tasks a query spawns, how many bytes
// it brute-force scans, and how much data the session group-by shuffles.
// This engine meters exactly those quantities:
//
//   - one map task per input file (warehouse files are gzipped record
//     streams, and gzip is not splittable — as in Hadoop);
//   - bytes and blocks read come from the filesystem's own accounting;
//   - every GroupBy and Join charges shuffle bytes for the tuples that move
//     between the map and reduce sides;
//   - a cluster cost model converts task counts into simulated cluster
//     seconds using per-task startup overheads, reproducing the paper's
//     complaint that raw-log jobs "routinely spawned tens of thousands of
//     mappers and clogged our Hadoop jobtracker".
//
// Execution is out-of-core, the way the MapReduce jobs it models are:
//
//   - A Dataset is a lazy pipeline node, not a materialized relation.
//     Filter, Project, ForEach, FlatMap, and Limit compose pull-based
//     Iterators (Volcano-style) and hold no tuples of their own; a scan
//     buffers one split at a time — exactly a map task's working set.
//   - GroupBy, GroupAll, Join, Distinct, and OrderBy are the pipeline
//     breakers, and they are external operators with a *sort-merge*
//     shuffle, like the Hadoop jobs they model: input tuples are
//     hash-partitioned on the key, buffered per partition, and — once the
//     buffered bytes exceed Job.MemoryBudget — sorted on (rendered key,
//     optional order column, insertion sequence) and spilled to CRC-framed
//     spill files as sorted runs (spill.go). The reduce side is a
//     streaming k-way merge over the runs (merge.go): groups arrive in
//     global key order with ordered tuples inside, reducers fold each
//     group as it streams by without any per-group hash map, and OrderBy
//     is a true external merge sort over the same runs. Peak reduce memory
//     is the run fan-in — one buffered tuple per run — not the group
//     count. A zero or negative budget disables spilling (the in-memory
//     fast path, still the default), with identical output order.
//   - Terminal operations (Each, Tuples, Count, and the reduce-side calls
//     on Grouped) drive the pipeline. Every execution is metered: re-running
//     a pipeline really is another job, and the stats say so.
//
// Correctness is exact; the cost model is the simulation.
package dataflow

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"unilog/internal/hdfs"
)

// Cost-model constants, loosely matching Hadoop task overheads of the
// paper's era (seconds of cluster time per task launch).
const (
	MapTaskStartupSeconds    = 1.5
	ReduceTaskStartupSeconds = 2.0
)

// ErrNoColumn reports a reference to a column missing from a schema.
var ErrNoColumn = errors.New("dataflow: no such column")

// Value is one field of a tuple: int64, float64, string, bool, or an opaque
// payload such as map[string]string.
type Value = any

// Tuple is one row.
type Tuple []Value

// Schema names the fields of a relation's tuples.
type Schema []string

// Index returns the position of the named column.
func (s Schema) Index(name string) (int, error) {
	for i, c := range s {
		if c == name {
			return i, nil
		}
	}
	return -1, fmt.Errorf("%w: %q in %v", ErrNoColumn, name, []string(s))
}

// MustIndex is Index for statically known columns.
func (s Schema) MustIndex(name string) int {
	i, err := s.Index(name)
	if err != nil {
		panic(err)
	}
	return i
}

// Stats aggregates the cost of every operator executed under one Job.
type Stats struct {
	MapTasks       int
	ReduceTasks    int
	FilesRead      int
	RecordsRead    int64
	BytesRead      int64
	BlocksRead     int64
	ShuffleRecords int64
	ShuffleBytes   int64
	OutputRecords  int64

	// Out-of-core accounting: what the external operators pushed to disk
	// when Job.MemoryBudget was exceeded — the peak-memory proxy.
	SpilledBytes      int64 // framed bytes written to spill files
	SpilledRecords    int64 // tuples written to spill files
	SpilledPartitions int   // partitions that overflowed to disk (one spill file each)
	SpillFlushes      int   // buffer-to-disk flush waves across all partitions
	SpillRuns         int   // sorted runs written across all spill files
	MergePasses       int   // streaming merge-reduce passes executed
	MergeRuns         int   // run cursors (spilled runs + sorted residues) consumed by merges
	PeakRunFanIn      int   // widest single k-way merge: peak reduce memory is one buffered tuple per run at this width
	CascadePasses     int   // cascade waves run to bring the run count under Job.MaxMergeFanIn
	CascadeRuns       int   // intermediate wider runs written by cascade passes
}

// ClusterSeconds estimates cluster occupancy from task startup overheads —
// the jobtracker-load proxy the paper cares about.
func (s Stats) ClusterSeconds() float64 {
	return float64(s.MapTasks)*MapTaskStartupSeconds + float64(s.ReduceTasks)*ReduceTaskStartupSeconds
}

// Job is one logical analytics job; all datasets derived from it share its
// statistics and its memory budget.
type Job struct {
	Name string
	FS   *hdfs.FS

	// MemoryBudget bounds the tuple bytes an external operator (GroupBy,
	// GroupAll, Join, Distinct, OrderBy) may buffer before hash partitions
	// start spilling sorted runs to disk. <= 0 (the default) disables
	// spilling: everything stays in memory, as the engine behaved before
	// it went out-of-core.
	MemoryBudget int64
	// SpillDir is where spill files are created; empty means os.TempDir().
	SpillDir string
	// MaxMergeFanIn caps how many run cursors a single streaming merge
	// holds open at once; <= 0 means DefaultMaxMergeFanIn. When a tiny
	// MemoryBudget accumulates more sorted runs than the cap, the reduce
	// side first runs cascaded merge passes — batches of runs merged into
	// single wider runs staged on disk — until one merge fits, trading
	// extra sequential I/O for bounded reduce memory, as external sorts
	// always have.
	MaxMergeFanIn int
	// SpillPartitions is the hash-partition fan-out of the external
	// operators; <= 0 means DefaultSpillPartitions. Peak reduce-side
	// memory is roughly the input size divided by this.
	SpillPartitions int

	// Parallelism caps the worker goroutines each phase of the engine may
	// use: concurrent split decoding on the scan side, the async spill
	// flusher and concurrent per-partition merge-reduce on the shuffle
	// side, and concurrent cascade merges. <= 0 (the default) means
	// runtime.GOMAXPROCS(0); 1 selects the original single-threaded
	// execution paths exactly. Output is byte-identical to serial
	// execution at any setting — see the package comment's Parallelism
	// section for the ordering contract.
	Parallelism int

	stats jobStats
}

// NewJob returns a job reading from fs.
func NewJob(name string, fs *hdfs.FS) *Job { return &Job{Name: name, FS: fs} }

// Stats returns a snapshot of the job's accumulated cost counters. It is
// safe to call while a pipeline is executing; counters are charged
// atomically as work completes.
func (j *Job) Stats() Stats { return j.stats.snapshot() }

// parallelism resolves the effective worker cap.
func (j *Job) parallelism() int {
	if j.Parallelism > 0 {
		return j.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Iterator is a pull-based cursor over a tuple stream. Next returns io.EOF
// after the final tuple; Close releases any resources (open spill files,
// in-flight scans) and must be called even on early abandonment. The
// terminal helpers on Dataset do both for you.
type Iterator interface {
	Next() (Tuple, error)
	Close() error
}

// sliceIter iterates a materialized tuple slice.
type sliceIter struct {
	tuples []Tuple
	i      int
}

func (s *sliceIter) Next() (Tuple, error) {
	if s.i >= len(s.tuples) {
		return nil, io.EOF
	}
	t := s.tuples[s.i]
	s.i++
	return t, nil
}

func (s *sliceIter) Close() error { return nil }

// iterFunc adapts a pair of closures into an Iterator.
type iterFunc struct {
	next  func() (Tuple, error)
	close func() error
}

func (f *iterFunc) Next() (Tuple, error) { return f.next() }

func (f *iterFunc) Close() error {
	if f.close == nil {
		return nil
	}
	return f.close()
}

// Dataset is a lazy relation bound to a job: a schema plus a recipe for
// producing the tuples. Opening it executes the upstream pipeline.
type Dataset struct {
	job    *Job
	schema Schema
	open   func() (Iterator, error)
	// cleanup releases operator state backing this dataset (the spill
	// partitions behind a Join); nil for sources and streaming operators.
	cleanup func() error
	// scan is non-nil when this dataset is a raw scan source — the only
	// node kind Unordered applies to.
	scan *scanSpec
}

// NewDataset wraps already-materialized tuples (used by generators and
// tests).
func NewDataset(j *Job, schema Schema, tuples []Tuple) *Dataset {
	return &Dataset{job: j, schema: schema, open: func() (Iterator, error) {
		return &sliceIter{tuples: tuples}, nil
	}}
}

// Schema returns the dataset's schema.
func (d *Dataset) Schema() Schema { return d.schema }

// Job returns the owning job.
func (d *Dataset) Job() *Job { return d.job }

// Open starts one execution of the pipeline and returns its cursor. Most
// callers want Each, Tuples, or Count instead.
func (d *Dataset) Open() (Iterator, error) { return d.open() }

// Close releases operator state backing this dataset — the spill files
// behind a Join output. Streaming wrappers (Filter, Project, ForEach,
// FlatMap, Limit, Distinct, Union) propagate their source's cleanup, so
// closing a derived view is equivalent to closing the operator output it
// wraps. It is a no-op when nothing upstream holds spill state. After
// Close the dataset (and any view sharing its state) must not be iterated
// again; doing so fails with an error rather than reading empty data.
func (d *Dataset) Close() error {
	if d.cleanup != nil {
		return d.cleanup()
	}
	return nil
}

// Each executes the pipeline once, invoking fn on every tuple in stream
// order. Delivered tuples are owned by the consumer: every source and
// operator in this package allocates a fresh Tuple per emitted row (the
// external operators rely on that to retain tuples in their partition
// buffers), and any future InputFormat must do the same.
func (d *Dataset) Each(fn func(Tuple) error) error {
	it, err := d.open()
	if err != nil {
		return err
	}
	defer it.Close()
	for {
		t, err := it.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(t); err != nil {
			return err
		}
	}
}

// Tuples executes the pipeline once and materializes every row — the
// escape hatch back into memory. Out-of-core pipelines should prefer Each.
func (d *Dataset) Tuples() ([]Tuple, error) {
	var out []Tuple
	err := d.Each(func(t Tuple) error {
		out = append(out, t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Count executes the pipeline once and returns the number of tuples (a
// terminal operation).
func (d *Dataset) Count() (int64, error) {
	var n int64
	err := d.Each(func(Tuple) error {
		n++
		return nil
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Split is one unit of map-side work: a whole file (gzip streams are not
// splittable, mirroring Hadoop's handling of compressed inputs).
type Split struct {
	Path string
	Size int64
}

// InputFormat decodes splits into tuples. Implementations exist for client
// events, session sequences, legacy logs, and Elephant Twin's index-pruned
// loading (the paper's §6 "integrates with Hadoop at the level of
// InputFormats").
type InputFormat interface {
	// Schema describes the tuples this format produces.
	Schema() Schema
	// Splits enumerates the map-side work for the files under dir.
	Splits(fs *hdfs.FS, dir string) ([]Split, error)
	// ReadSplit decodes one split, emitting each tuple.
	ReadSplit(fs *hdfs.FS, split Split, emit func(Tuple) error) error
}

// Load plans the map phase of a scan: splits are enumerated eagerly (so a
// missing directory fails here), but the files are read lazily, one task
// at a time, as the dataset is iterated. Each execution charges its I/O
// against the job.
func (j *Job) Load(dir string, f InputFormat) (*Dataset, error) {
	splits, err := f.Splits(j.FS, dir)
	if err != nil {
		return nil, err
	}
	return j.datasetForSplits(f, splits), nil
}

// LoadDirs is Load over several directories (e.g. the 24 hours of a day),
// concatenating the results; missing directories are skipped.
func (j *Job) LoadDirs(dirs []string, f InputFormat) (*Dataset, error) {
	var all []Split
	for _, dir := range dirs {
		if !j.FS.Exists(dir) {
			continue
		}
		splits, err := f.Splits(j.FS, dir)
		if err != nil {
			return nil, err
		}
		all = append(all, splits...)
	}
	return j.datasetForSplits(f, all), nil
}

// scanSpec is the plan of a scan source: the format, the splits, and
// whether the consumer waived split-order delivery.
type scanSpec struct {
	format    InputFormat
	splits    []Split
	unordered bool
}

func (j *Job) datasetForSplits(f InputFormat, splits []Split) *Dataset {
	sc := &scanSpec{format: f, splits: splits}
	return &Dataset{job: j, schema: f.Schema(), scan: sc, open: func() (Iterator, error) {
		return j.newScanIter(sc), nil
	}}
}

// newScanIter picks the scan execution for a spec: the serial split-by-
// split iterator when one worker (or one split) is all there is, the
// parallel decoder otherwise.
func (j *Job) newScanIter(sc *scanSpec) Iterator {
	n := j.parallelism()
	if n > len(sc.splits) {
		n = len(sc.splits)
	}
	if n <= 1 {
		return &splitIter{job: j, format: sc.format, splits: sc.splits}
	}
	return newParallelScan(j, sc, n)
}

// Unordered waives the scan's split-order delivery guarantee, letting
// parallel workers hand splits to the consumer in completion order
// instead of plan order. It applies only to a raw scan source (Load,
// LoadDirs, and their wrappers) and is a no-op on any derived dataset.
//
// Use it only when the consumer is insensitive to input order: Count,
// Distinct, and integer Aggregate folds are safe; float aggregates
// (Avg/Sum over float64) and anything that observes within-group tuple
// order (ForEachGroup bodies, OrderBy ties broken by arrival) are not,
// because reordering changes insertion sequence numbers and float
// addition is not associative. The ordered default is byte-identical to
// serial execution; Unordered trades that guarantee for not stalling on
// the slowest split.
func (d *Dataset) Unordered() *Dataset {
	if d.scan == nil {
		return d
	}
	sc := *d.scan
	sc.unordered = true
	nd := &Dataset{job: d.job, schema: d.schema, scan: &sc, cleanup: d.cleanup}
	nd.open = func() (Iterator, error) {
		return nd.job.newScanIter(&sc), nil
	}
	return nd
}

// splitIter streams a scan split by split: one map task's tuples are
// buffered at a time, which is the same working set the task itself has.
// A failed split is sticky: every subsequent Next repeats the error, so a
// caller can never read past a decode failure into a silently incomplete
// relation.
type splitIter struct {
	job    *Job
	format InputFormat
	splits []Split
	cur    []Tuple
	i      int
	err    error
}

func (s *splitIter) Next() (Tuple, error) {
	for {
		if s.err != nil {
			return nil, s.err
		}
		if s.i < len(s.cur) {
			t := s.cur[s.i]
			s.i++
			s.job.stats.recordsRead.Add(1)
			return t, nil
		}
		if len(s.splits) == 0 {
			return nil, io.EOF
		}
		sp := s.splits[0]
		s.splits = s.splits[1:]
		s.job.stats.mapTasks.Add(1)
		s.job.stats.filesRead.Add(1)
		t0 := time.Now()
		before := s.job.FS.Snapshot()
		s.cur = s.cur[:0]
		err := s.format.ReadSplit(s.job.FS, sp, func(t Tuple) error {
			s.cur = append(s.cur, t)
			return nil
		})
		after := s.job.FS.Snapshot()
		s.job.stats.bytesRead.Add(after.BytesRead - before.BytesRead)
		s.job.stats.blocksRead.Add(after.BlocksRead - before.BlocksRead)
		tmScanBytes.Add(after.BytesRead - before.BytesRead)
		tmScanSplitNs.ObserveSince(t0)
		if err != nil {
			s.cur, s.i = nil, 0
			s.err = err
			return nil, err
		}
		s.i = 0
	}
}

func (s *splitIter) Close() error { return nil }

// tupleBytes estimates the serialized size of a tuple for shuffle and
// spill-budget accounting.
func tupleBytes(t Tuple) int64 {
	var n int64
	for _, v := range t {
		switch x := v.(type) {
		case string:
			n += int64(len(x)) + 4
		case int64, float64:
			n += 8
		case int32, int:
			n += 4
		case bool:
			n += 1
		case map[string]string:
			for k, val := range x {
				n += int64(len(k)+len(val)) + 8
			}
		case []byte:
			n += int64(len(x)) + 4
		default:
			n += 8
		}
	}
	return n
}

// reducersFor sizes a reduce wave: reducers scale with group count as a
// Pig job's parallelism hint would. External operators charge one base
// reducer when their shuffle runs (construction) and top the wave up to
// this once a merge pass learns the exact group count — so even an
// abandoned or never-driven reduce side still costs its minimum wave, as
// it did when the engine was eager.
func reducersFor(groups int) int {
	r := groups / 10000
	if r < 1 {
		r = 1
	}
	if r > 64 {
		r = 64
	}
	return r
}

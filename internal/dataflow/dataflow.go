// Package dataflow is a miniature Pig: a dataflow query engine over the
// warehouse filesystem that executes with MapReduce-shaped cost accounting.
//
// The paper's performance argument (§4) is not about absolute runtimes but
// about cluster mechanics: how many map tasks a query spawns, how many bytes
// it brute-force scans, and how much data the session group-by shuffles.
// This engine meters exactly those quantities:
//
//   - one map task per input file (warehouse files are gzipped record
//     streams, and gzip is not splittable — as in Hadoop);
//   - bytes and blocks read come from the filesystem's own accounting;
//   - every GroupBy and Join charges shuffle bytes for the tuples that move
//     between the map and reduce sides;
//   - a cluster cost model converts task counts into simulated cluster
//     seconds using per-task startup overheads, reproducing the paper's
//     complaint that raw-log jobs "routinely spawned tens of thousands of
//     mappers and clogged our Hadoop jobtracker".
//
// Operators are eager and in-memory; correctness is exact, the cost model is
// the simulation.
package dataflow

import (
	"errors"
	"fmt"

	"unilog/internal/hdfs"
)

// Cost-model constants, loosely matching Hadoop task overheads of the
// paper's era (seconds of cluster time per task launch).
const (
	MapTaskStartupSeconds    = 1.5
	ReduceTaskStartupSeconds = 2.0
)

// ErrNoColumn reports a reference to a column missing from a schema.
var ErrNoColumn = errors.New("dataflow: no such column")

// Value is one field of a tuple: int64, float64, string, bool, or an opaque
// payload such as map[string]string.
type Value = any

// Tuple is one row.
type Tuple []Value

// Schema names the fields of a relation's tuples.
type Schema []string

// Index returns the position of the named column.
func (s Schema) Index(name string) (int, error) {
	for i, c := range s {
		if c == name {
			return i, nil
		}
	}
	return -1, fmt.Errorf("%w: %q in %v", ErrNoColumn, name, []string(s))
}

// MustIndex is Index for statically known columns.
func (s Schema) MustIndex(name string) int {
	i, err := s.Index(name)
	if err != nil {
		panic(err)
	}
	return i
}

// Stats aggregates the cost of every operator executed under one Job.
type Stats struct {
	MapTasks       int
	ReduceTasks    int
	FilesRead      int
	RecordsRead    int64
	BytesRead      int64
	BlocksRead     int64
	ShuffleRecords int64
	ShuffleBytes   int64
	OutputRecords  int64
}

// ClusterSeconds estimates cluster occupancy from task startup overheads —
// the jobtracker-load proxy the paper cares about.
func (s Stats) ClusterSeconds() float64 {
	return float64(s.MapTasks)*MapTaskStartupSeconds + float64(s.ReduceTasks)*ReduceTaskStartupSeconds
}

// Job is one logical analytics job; all datasets derived from it share its
// statistics.
type Job struct {
	Name string
	FS   *hdfs.FS

	stats Stats
}

// NewJob returns a job reading from fs.
func NewJob(name string, fs *hdfs.FS) *Job { return &Job{Name: name, FS: fs} }

// Stats returns the job's accumulated cost counters.
func (j *Job) Stats() Stats { return j.stats }

// Dataset is a materialized relation bound to a job.
type Dataset struct {
	job    *Job
	schema Schema
	tuples []Tuple
}

// NewDataset wraps already-materialized tuples (used by generators and
// tests).
func NewDataset(j *Job, schema Schema, tuples []Tuple) *Dataset {
	return &Dataset{job: j, schema: schema, tuples: tuples}
}

// Schema returns the dataset's schema.
func (d *Dataset) Schema() Schema { return d.schema }

// Tuples returns the underlying rows; callers must not modify them.
func (d *Dataset) Tuples() []Tuple { return d.tuples }

// Len returns the number of tuples.
func (d *Dataset) Len() int { return len(d.tuples) }

// Job returns the owning job.
func (d *Dataset) Job() *Job { return d.job }

// Split is one unit of map-side work: a whole file (gzip streams are not
// splittable, mirroring Hadoop's handling of compressed inputs).
type Split struct {
	Path string
	Size int64
}

// InputFormat decodes splits into tuples. Implementations exist for client
// events, session sequences, legacy logs, and Elephant Twin's index-pruned
// loading (the paper's §6 "integrates with Hadoop at the level of
// InputFormats").
type InputFormat interface {
	// Schema describes the tuples this format produces.
	Schema() Schema
	// Splits enumerates the map-side work for the files under dir.
	Splits(fs *hdfs.FS, dir string) ([]Split, error)
	// ReadSplit decodes one split, emitting each tuple.
	ReadSplit(fs *hdfs.FS, split Split, emit func(Tuple) error) error
}

// Load runs the map phase of a scan: one task per split, with I/O accounted
// against the job.
func (j *Job) Load(dir string, f InputFormat) (*Dataset, error) {
	splits, err := f.Splits(j.FS, dir)
	if err != nil {
		return nil, err
	}
	before := j.FS.Snapshot()
	var tuples []Tuple
	for _, s := range splits {
		j.stats.MapTasks++
		j.stats.FilesRead++
		err := f.ReadSplit(j.FS, s, func(t Tuple) error {
			j.stats.RecordsRead++
			tuples = append(tuples, t)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	after := j.FS.Snapshot()
	j.stats.BytesRead += after.BytesRead - before.BytesRead
	j.stats.BlocksRead += after.BlocksRead - before.BlocksRead
	return &Dataset{job: j, schema: f.Schema(), tuples: tuples}, nil
}

// LoadDirs is Load over several directories (e.g. the 24 hours of a day),
// concatenating the results.
func (j *Job) LoadDirs(dirs []string, f InputFormat) (*Dataset, error) {
	out := &Dataset{job: j, schema: f.Schema()}
	for _, dir := range dirs {
		if !j.FS.Exists(dir) {
			continue
		}
		d, err := j.Load(dir, f)
		if err != nil {
			return nil, err
		}
		out.tuples = append(out.tuples, d.tuples...)
	}
	return out, nil
}

// tupleBytes estimates the serialized size of a tuple for shuffle
// accounting.
func tupleBytes(t Tuple) int64 {
	var n int64
	for _, v := range t {
		switch x := v.(type) {
		case string:
			n += int64(len(x)) + 4
		case int64, float64:
			n += 8
		case int32, int:
			n += 4
		case bool:
			n += 1
		case map[string]string:
			for k, val := range x {
				n += int64(len(k)+len(val)) + 8
			}
		case []byte:
			n += int64(len(x)) + 4
		default:
			n += 8
		}
	}
	return n
}

// chargeShuffle records reduce-side data movement for n tuples.
func (j *Job) chargeShuffle(tuples []Tuple, groups int) {
	for _, t := range tuples {
		j.stats.ShuffleBytes += tupleBytes(t)
	}
	j.stats.ShuffleRecords += int64(len(tuples))
	// One reduce wave; reducers scale with group count as a Pig job's
	// parallelism hint would.
	r := groups / 10000
	if r < 1 {
		r = 1
	}
	if r > 64 {
		r = 64
	}
	j.stats.ReduceTasks += r
}

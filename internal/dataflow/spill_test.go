package dataflow

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"unilog/internal/hdfs"
	"unilog/internal/recordio"
)

// spillJob returns a job whose external operators spill into an observable
// directory under a deliberately tiny budget.
func spillJob(t *testing.T, budget int64) *Job {
	t.Helper()
	j := NewJob("spill-test", hdfs.New(0))
	j.MemoryBudget = budget
	j.SpillDir = t.TempDir()
	return j
}

func spillFiles(t *testing.T, j *Job) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(j.SpillDir, "unilog-spill-*"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// wideDataset builds n tuples exercising every codec value kind, with keys
// drawn from k distinct groups.
func wideDataset(j *Job, n, k int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	tuples := make([]Tuple, n)
	for i := range tuples {
		tuples[i] = Tuple{
			fmt.Sprintf("key-%03d", rng.Intn(k)),
			int64(rng.Intn(1000)),
			rng.Float64(),
			rng.Intn(2) == 0,
			fmt.Sprintf("payload-%d-%s", i, string(make([]byte, rng.Intn(32)))),
			map[string]string{"client": fmt.Sprintf("c%d", rng.Intn(4))},
		}
	}
	return NewDataset(j, Schema{"k", "v", "f", "b", "s", "m"}, tuples)
}

func TestGroupBySpillsUnderBudget(t *testing.T) {
	j := spillJob(t, 512)
	d := wideDataset(j, 2000, 50, 1)
	g, err := d.GroupBy("k")
	if err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.SpilledPartitions < 2 {
		t.Fatalf("spilled partitions = %d, want >= 2 under a 512-byte budget", st.SpilledPartitions)
	}
	if st.SpilledBytes == 0 || st.SpilledRecords == 0 || st.SpillFlushes == 0 {
		t.Fatalf("spill stats = %+v", st)
	}
	if len(spillFiles(t, j)) == 0 {
		t.Fatal("no spill files on disk while Grouped is live")
	}
	n, err := g.NumGroups()
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("groups = %d, want 50", n)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if left := spillFiles(t, j); len(left) != 0 {
		t.Fatalf("spill files survived Close: %v", left)
	}
}

func TestZeroAndNegativeBudgetStayInMemory(t *testing.T) {
	for _, budget := range []int64{0, -1} {
		j := spillJob(t, budget)
		d := wideDataset(j, 500, 10, 2)
		g, err := d.GroupBy("k")
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.Aggregate(Count("n"), Sum("v", "sum"))
		if err != nil {
			t.Fatal(err)
		}
		rows, err := res.Tuples()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 10 {
			t.Fatalf("budget %d: groups = %d", budget, len(rows))
		}
		st := j.Stats()
		if st.SpilledPartitions != 0 || st.SpilledBytes != 0 {
			t.Fatalf("budget %d spilled: %+v", budget, st)
		}
		if files := spillFiles(t, j); len(files) != 0 {
			t.Fatalf("budget %d left files: %v", budget, files)
		}
		g.Close()
	}
}

// renderRows canonicalizes a relation for comparison across execution
// strategies whose row order may differ (Join partitions).
func renderRows(rows []Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("%v", r)
	}
	sort.Strings(out)
	return out
}

func equalRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGroupBySpillMatchesInMemory is the acceptance property: on
// randomized datasets, the spilling path and the in-memory path produce
// identical relations — same rows, same order — for Aggregate and
// ForEachGroup.
func TestGroupBySpillMatchesInMemory(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(1500)
		k := 1 + rng.Intn(80)

		run := func(budget int64) ([]Tuple, []Tuple, int) {
			j := spillJob(t, budget)
			d := wideDataset(j, n, k, seed)
			g, err := d.GroupBy("k", "b")
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			agg, err := g.Aggregate(Count("n"), Sum("v", "sum"), Min("v", "min"), Max("v", "max"), Avg("f", "avg"), CountDistinct("s", "ds"))
			if err != nil {
				t.Fatal(err)
			}
			aggRows, err := agg.Tuples()
			if err != nil {
				t.Fatal(err)
			}
			red, err := g.ForEachGroup(Schema{"size", "firstv"}, func(key Tuple, group []Tuple) Tuple {
				return Tuple{int64(len(group)), group[0][1]}
			})
			if err != nil {
				t.Fatal(err)
			}
			redRows, err := red.Tuples()
			if err != nil {
				t.Fatal(err)
			}
			return aggRows, redRows, j.Stats().SpilledPartitions
		}

		memAgg, memRed, memSpills := run(0)
		spillAgg, spillRed, spills := run(256)
		if memSpills != 0 {
			t.Fatalf("seed %d: in-memory run spilled", seed)
		}
		if spills == 0 {
			t.Fatalf("seed %d: budgeted run never spilled (n=%d)", seed, n)
		}
		// Same rows in the same (globally key-sorted) order.
		if fmt.Sprintf("%v", memAgg) != fmt.Sprintf("%v", spillAgg) {
			t.Fatalf("seed %d: aggregate diverged\nmem:   %v\nspill: %v", seed, memAgg, spillAgg)
		}
		if fmt.Sprintf("%v", memRed) != fmt.Sprintf("%v", spillRed) {
			t.Fatalf("seed %d: reduce diverged\nmem:   %v\nspill: %v", seed, memRed, spillRed)
		}
	}
}

// TestJoinSpillMatchesInMemory: Grace-join output equals the in-memory
// join as a relation (order may legitimately differ across partitions).
func TestJoinSpillMatchesInMemory(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		nl, nr := 100+rng.Intn(800), 50+rng.Intn(400)
		keys := 1 + rng.Intn(40)

		build := func(j *Job, n int, tag string) *Dataset {
			r := rand.New(rand.NewSource(seed*7 + int64(n)))
			tuples := make([]Tuple, n)
			for i := range tuples {
				tuples[i] = Tuple{int64(r.Intn(keys)), fmt.Sprintf("%s-%d", tag, i)}
			}
			return NewDataset(j, Schema{"id", tag}, tuples)
		}
		run := func(budget int64) ([]string, int) {
			j := spillJob(t, budget)
			left := build(j, nl, "left")
			right := build(j, nr, "right")
			joined, err := left.Join(right, "id", "id")
			if err != nil {
				t.Fatal(err)
			}
			defer joined.Close()
			rows, err := joined.Tuples()
			if err != nil {
				t.Fatal(err)
			}
			return renderRows(rows), j.Stats().SpilledPartitions
		}
		mem, memSpills := run(0)
		spilled, spills := run(256)
		if memSpills != 0 {
			t.Fatalf("seed %d: in-memory join spilled", seed)
		}
		if spills == 0 {
			t.Fatalf("seed %d: budgeted join never spilled", seed)
		}
		if !equalRows(mem, spilled) {
			t.Fatalf("seed %d: join diverged (%d vs %d rows)", seed, len(mem), len(spilled))
		}
	}
}

func TestDistinctSpillMatchesInMemory(t *testing.T) {
	run := func(budget int64) []string {
		j := spillJob(t, budget)
		d := wideDataset(j, 1000, 20, 5)
		// Project to a low-cardinality relation so duplicates exist.
		p, err := d.Project("k", "b")
		if err != nil {
			t.Fatal(err)
		}
		rows, err := p.Distinct().Tuples()
		if err != nil {
			t.Fatal(err)
		}
		if files := spillFiles(t, j); len(files) != 0 {
			t.Fatalf("distinct left spill files: %v", files)
		}
		return renderRows(rows)
	}
	if mem, spilled := run(0), run(128); !equalRows(mem, spilled) {
		t.Fatalf("distinct diverged: %v vs %v", mem, spilled)
	}
}

// TestSpillFileCorruption: flipped bits in a spill file surface as a clean
// recordio.ErrCorrupt from the reduce pass — no panic, no silent partial
// group — and Close still removes the files.
func TestSpillFileCorruption(t *testing.T) {
	j := spillJob(t, 512)
	g, err := wideDataset(j, 2000, 50, 3).GroupBy("k")
	if err != nil {
		t.Fatal(err)
	}
	files := spillFiles(t, j)
	if len(files) == 0 {
		t.Fatal("no spill files to corrupt")
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, aerr := g.Aggregate(Count("n"))
	if aerr == nil {
		t.Fatal("aggregate over corrupted spill succeeded")
	}
	if !errors.Is(aerr, recordio.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", aerr)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if left := spillFiles(t, j); len(left) != 0 {
		t.Fatalf("spill files survived Close after error: %v", left)
	}
}

// TestSpillFileTruncation: a truncated spill file (a lost write) surfaces
// recordio.ErrTruncated cleanly.
func TestSpillFileTruncation(t *testing.T) {
	j := spillJob(t, 512)
	g, err := wideDataset(j, 2000, 50, 4).GroupBy("k")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	files := spillFiles(t, j)
	if len(files) == 0 {
		t.Fatal("no spill files to truncate")
	}
	fi, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(files[0], fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	_, aerr := g.ForEachGroup(Schema{"n"}, func(key Tuple, group []Tuple) Tuple {
		return Tuple{int64(len(group))}
	})
	if !errors.Is(aerr, recordio.ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", aerr)
	}
}

// TestSpillEncodeErrorCleansUp: a tuple the codec cannot serialize fails
// the partition phase with a clean error and leaves no temp files behind.
func TestSpillEncodeErrorCleansUp(t *testing.T) {
	j := spillJob(t, 64)
	type opaque struct{ x int }
	tuples := make([]Tuple, 200)
	for i := range tuples {
		tuples[i] = Tuple{"k", opaque{i}}
	}
	d := NewDataset(j, Schema{"k", "v"}, tuples)
	_, err := d.GroupBy("k")
	if err == nil {
		t.Fatal("group-by of unspillable values under a budget succeeded")
	}
	if left := spillFiles(t, j); len(left) != 0 {
		t.Fatalf("encode error leaked spill files: %v", left)
	}
	// The same relation groups fine in memory, where no codec is needed.
	j2 := spillJob(t, 0)
	d2 := NewDataset(j2, Schema{"k", "v"}, tuples)
	g, err := d2.GroupBy("k")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if n, err := g.NumGroups(); err != nil || n != 1 {
		t.Fatalf("in-memory groups = %d, %v", n, err)
	}
}

// TestJoinSpillCleanup: closing a Join output removes both sides' files.
func TestJoinSpillCleanup(t *testing.T) {
	j := spillJob(t, 128)
	left := wideDataset(j, 500, 20, 6)
	right := wideDataset(j, 300, 20, 7)
	rn, err := right.Project("k", "v")
	if err != nil {
		t.Fatal(err)
	}
	joined, err := left.Join(rn, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	if len(spillFiles(t, j)) == 0 {
		t.Fatal("join under budget produced no spill files")
	}
	if _, err := joined.Count(); err != nil {
		t.Fatal(err)
	}
	if err := joined.Close(); err != nil {
		t.Fatal(err)
	}
	if left := spillFiles(t, j); len(left) != 0 {
		t.Fatalf("join spill files survived Close: %v", left)
	}
}

// TestGroupAllSpills: even the single global group stages through disk
// under a budget, and a streaming Aggregate still folds it exactly.
func TestGroupAllSpills(t *testing.T) {
	j := spillJob(t, 256)
	tuples := make([]Tuple, 3000)
	var want int64
	for i := range tuples {
		tuples[i] = Tuple{int64(i)}
		want += int64(i)
	}
	g, err := NewDataset(j, Schema{"c"}, tuples).GroupAll()
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if j.Stats().SpilledRecords == 0 {
		t.Fatal("GROUP ALL under budget never spilled")
	}
	res, err := g.Aggregate(Sum("c", "total"), Count("n"))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].(int64) != want || rows[0][1].(int64) != 3000 {
		t.Fatalf("rows = %v, want sum %d", rows, want)
	}
}

// TestLoadIsLazy: planning a scan charges nothing; each execution charges
// one full pass.
func TestLoadIsLazy(t *testing.T) {
	fs := hdfs.New(0)
	populate(t, fs)
	j := NewJob("lazy", fs)
	d, err := j.LoadClientEventsDay(day)
	if err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.MapTasks != 0 || st.BytesRead != 0 || st.RecordsRead != 0 {
		t.Fatalf("planning charged I/O: %+v", st)
	}
	if _, err := d.Count(); err != nil {
		t.Fatal(err)
	}
	first := j.Stats()
	if first.MapTasks == 0 || first.RecordsRead != 80 {
		t.Fatalf("first pass stats = %+v", first)
	}
	if _, err := d.Count(); err != nil {
		t.Fatal(err)
	}
	second := j.Stats()
	if second.RecordsRead != 2*first.RecordsRead || second.MapTasks != 2*first.MapTasks {
		t.Fatalf("second pass not metered: %+v", second)
	}
}

// TestLimitStopsScanEarly: Limit over a lazy scan does not read every
// split.
func TestLimitStopsScanEarly(t *testing.T) {
	fs := hdfs.New(0)
	populate(t, fs) // 8 hour-files of 10 events each
	j := NewJob("limit", fs)
	d, err := j.LoadClientEventsDay(day)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := d.Limit(5).Count(); err != nil || n != 5 {
		t.Fatalf("limit = %d, %v", n, err)
	}
	if st := j.Stats(); st.MapTasks >= 8 {
		t.Fatalf("limit scanned every split: %+v", st)
	}
}

// TestGroupByKeysWithEmbeddedNUL: a NUL inside one key column must not
// shift the component boundary and merge distinct multi-column keys.
func TestGroupByKeysWithEmbeddedNUL(t *testing.T) {
	j := NewJob("nul", hdfs.New(0))
	d := NewDataset(j, Schema{"a", "b"}, []Tuple{
		{"x\x00y", "z"},
		{"x", "y\x00z"},
		{"x\x00y", "z"},
	})
	g, err := d.GroupBy("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if n, err := g.NumGroups(); err != nil || n != 2 {
		t.Fatalf("groups = %d, %v, want 2 (NUL shifted a key boundary)", n, err)
	}
	if n, err := d.Distinct().Count(); err != nil || n != 2 {
		t.Fatalf("distinct = %d, %v, want 2", n, err)
	}
}

// TestClosedGroupedErrs: reducing after Close is an error, not a silently
// empty relation.
func TestClosedGroupedErrs(t *testing.T) {
	j := NewJob("closed", hdfs.New(0))
	d := NewDataset(j, Schema{"k"}, []Tuple{{"a"}, {"b"}})
	g, err := d.GroupBy("k")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Aggregate(Count("n")); err == nil {
		t.Fatal("aggregate over closed Grouped succeeded")
	}
	if _, err := g.NumGroups(); err == nil {
		t.Fatal("NumGroups over closed Grouped succeeded")
	}
}

// TestDerivedDatasetCloseReleasesJoin: closing a Filter over a Join output
// releases the join's spill files (cleanup propagates through streaming
// wrappers).
func TestDerivedDatasetCloseReleasesJoin(t *testing.T) {
	j := spillJob(t, 128)
	left := wideDataset(j, 400, 20, 8)
	right, err := wideDataset(j, 200, 20, 9).Project("k", "v")
	if err != nil {
		t.Fatal(err)
	}
	joined, err := left.Join(right, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	filtered := joined.Filter(func(Tuple) bool { return true })
	if len(spillFiles(t, j)) == 0 {
		t.Fatal("join under budget produced no spill files")
	}
	if _, err := filtered.Count(); err != nil {
		t.Fatal(err)
	}
	if err := filtered.Close(); err != nil {
		t.Fatal(err)
	}
	if left := spillFiles(t, j); len(left) != 0 {
		t.Fatalf("closing the derived view leaked join spill files: %v", left)
	}
	// The shared state is gone: iterating either handle now errs.
	if _, err := joined.Count(); err == nil {
		t.Fatal("iterating a closed join succeeded")
	}
}

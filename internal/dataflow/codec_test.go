package dataflow

import (
	"errors"
	"reflect"
	"testing"

	"unilog/internal/recordio"
)

func TestTupleCodecRoundTrip(t *testing.T) {
	in := Tuple{
		nil,
		int64(-42),
		int32(7),
		int(123456),
		3.14159,
		true,
		false,
		"hello",
		[]byte{1, 2, 3},
		map[string]string{"b": "2", "a": "1"},
		"",
	}
	buf, err := appendTuple(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeTuple(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in:  %#v\n out: %#v", in, out)
	}
	// Concrete types must survive — reducers type-assert on them.
	if _, ok := out[1].(int64); !ok {
		t.Fatalf("int64 came back %T", out[1])
	}
	if _, ok := out[2].(int32); !ok {
		t.Fatalf("int32 came back %T", out[2])
	}
	if _, ok := out[3].(int); !ok {
		t.Fatalf("int came back %T", out[3])
	}
}

func TestTupleCodecDeterministicMaps(t *testing.T) {
	m := map[string]string{"x": "1", "y": "2", "z": "3", "a": "0"}
	a, err := appendTuple(nil, Tuple{m})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		b, err := appendTuple(nil, Tuple{map[string]string{"y": "2", "a": "0", "z": "3", "x": "1"}})
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatal("map encoding not deterministic")
		}
	}
}

func TestTupleCodecRejectsUnknownTypes(t *testing.T) {
	type custom struct{ n int }
	if _, err := appendTuple(nil, Tuple{custom{1}}); err == nil {
		t.Fatal("encoded an unknown type")
	}
}

func TestTupleCodecCorruption(t *testing.T) {
	buf, err := appendTuple(nil, Tuple{"hello", int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	// Truncated mid-value.
	if _, err := decodeTuple(buf[:len(buf)-2]); !errors.Is(err, recordio.ErrCorrupt) {
		t.Fatalf("truncated decode err = %v", err)
	}
	// Unknown tag.
	bad := append([]byte(nil), buf...)
	bad[1] = 0xee
	if _, err := decodeTuple(bad); !errors.Is(err, recordio.ErrCorrupt) {
		t.Fatalf("bad tag decode err = %v", err)
	}
	// Trailing garbage after a well-formed tuple.
	if _, err := decodeTuple(append(buf, 0)); !errors.Is(err, recordio.ErrCorrupt) {
		t.Fatalf("trailing bytes decode err = %v", err)
	}
	// Empty record: even a zero-arity tuple carries its arity byte.
	if _, err := decodeTuple(nil); !errors.Is(err, recordio.ErrCorrupt) {
		t.Fatalf("empty record decode err = %v", err)
	}
}

package dataflow

import (
	"unilog/internal/telemetry"
)

// Telemetry instruments for the batch vertical. These are process-global
// totals across every Job; per-job numbers stay in Job.Stats, and the
// counters here are fed from the same coarse sites that update those
// fields (per split, per spill flush, per merge pass) — never per tuple,
// so the streaming inner loops stay allocation- and contention-free.
var (
	tmScanBytes     = telemetry.GetCounter("dataflow.scan.bytes")
	tmShuffleBytes  = telemetry.GetCounter("dataflow.shuffle.bytes")
	tmSpillBytes    = telemetry.GetCounter("dataflow.spill.bytes")
	tmSpillRecords  = telemetry.GetCounter("dataflow.spill.records")
	tmSpillRuns     = telemetry.GetCounter("dataflow.spill.runs")
	tmMergePasses   = telemetry.GetCounter("dataflow.merge.passes")
	tmCascadePasses = telemetry.GetCounter("dataflow.merge.cascade.passes")
	tmCascadeRuns   = telemetry.GetCounter("dataflow.merge.cascade.runs")
	tmMergeFanInMax = telemetry.GetGauge("dataflow.merge.run_fanin.peak")

	tmScanSplitNs  = telemetry.GetHistogram("dataflow.stage.scan.ns")
	tmShuffleNs    = telemetry.GetHistogram("dataflow.stage.shuffle.ns")
	tmSpillFlushNs = telemetry.GetHistogram("dataflow.stage.spill.ns")
	tmCascadeNs    = telemetry.GetHistogram("dataflow.stage.cascade.ns")
	tmMergePassNs  = telemetry.GetHistogram("dataflow.stage.merge.ns")

	// Parallel-execution instruments. The workers gauge records (SetMax)
	// the widest worker pool any phase engaged; the queue-depth gauge
	// records the deepest the ordered scan's reorder buffer ever got —
	// how far completion order ran ahead of delivery order. Busy
	// histograms observe per-work-item wall time inside worker
	// goroutines, one observation per split decode / partition reduce /
	// detached spill flush.
	tmParWorkers      = telemetry.GetGauge("dataflow.parallel.workers")
	tmScanQueueDepth  = telemetry.GetGauge("dataflow.parallel.scan.queue.depth")
	tmParScanBusyNs   = telemetry.GetHistogram("dataflow.parallel.scan.busy.ns")
	tmParReduceBusyNs = telemetry.GetHistogram("dataflow.parallel.reduce.busy.ns")
	tmParSpillBusyNs  = telemetry.GetHistogram("dataflow.parallel.spill.busy.ns")
)

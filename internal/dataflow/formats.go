package dataflow

import (
	"time"

	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/recordio"
	"unilog/internal/session"
	"unilog/internal/thrift"
	"unilog/internal/warehouse"
)

// walkSplits lists every data file under dir as one split, skipping seal
// markers and index files that live beside the data.
func walkSplits(fs *hdfs.FS, dir string) ([]Split, error) {
	infos, err := fs.Walk(dir)
	if err != nil {
		return nil, err
	}
	splits := make([]Split, 0, len(infos))
	for _, fi := range infos {
		if warehouse.IsAuxiliary(fi.Path) {
			continue
		}
		splits = append(splits, Split{Path: fi.Path, Size: fi.Size})
	}
	return splits, nil
}

// ClientEventFormat decodes warehouse client-event files. Its schema is the
// flattened Table 2 structure plus the derived logged_in flag.
type ClientEventFormat struct{}

// ClientEventSchema is the schema produced by ClientEventFormat.
var ClientEventSchema = Schema{"initiator", "name", "user_id", "session_id", "ip", "timestamp", "logged_in", "details"}

// Schema implements InputFormat.
func (ClientEventFormat) Schema() Schema { return ClientEventSchema }

// Splits implements InputFormat.
func (ClientEventFormat) Splits(fs *hdfs.FS, dir string) ([]Split, error) {
	return walkSplits(fs, dir)
}

// ReadSplit implements InputFormat.
func (ClientEventFormat) ReadSplit(fs *hdfs.FS, s Split, emit func(Tuple) error) error {
	data, err := fs.ReadFile(s.Path)
	if err != nil {
		return err
	}
	return recordio.ScanGzipFile(data, func(rec []byte) error {
		var e events.ClientEvent
		if err := e.Unmarshal(rec); err != nil {
			return err
		}
		return emit(Tuple{
			e.Initiator.String(),
			e.Name.String(),
			e.UserID,
			e.SessionID,
			e.IP,
			e.Timestamp,
			e.LoggedIn(),
			e.Details,
		})
	})
}

// HourDirs returns the existing warehouse hour directories of a category
// for one UTC day.
func HourDirs(fs *hdfs.FS, category string, day time.Time) []string {
	day = day.UTC().Truncate(24 * time.Hour)
	var dirs []string
	for h := 0; h < 24; h++ {
		dir := warehouse.HourDir(category, day.Add(time.Duration(h)*time.Hour))
		if fs.Exists(dir) {
			dirs = append(dirs, dir)
		}
	}
	return dirs
}

// LoadClientEventsDay scans one full day of raw client events — the
// opening of every raw-log Pig script in §5.
func (j *Job) LoadClientEventsDay(day time.Time) (*Dataset, error) {
	return j.LoadDirs(HourDirs(j.FS, events.Category, day), ClientEventFormat{})
}

// SessionSequenceFormat decodes materialized session-sequence partitions —
// the paper's SessionSequencesLoader (§5.2).
type SessionSequenceFormat struct{}

// SessionSchema is the schema produced by SessionSequenceFormat: the §4.2
// materialized relation.
var SessionSchema = Schema{"user_id", "session_id", "ip", "sequence", "duration", "start"}

// Schema implements InputFormat.
func (SessionSequenceFormat) Schema() Schema { return SessionSchema }

// Splits implements InputFormat.
func (SessionSequenceFormat) Splits(fs *hdfs.FS, dir string) ([]Split, error) {
	return walkSplits(fs, dir)
}

// ReadSplit implements InputFormat.
func (SessionSequenceFormat) ReadSplit(fs *hdfs.FS, s Split, emit func(Tuple) error) error {
	data, err := fs.ReadFile(s.Path)
	if err != nil {
		return err
	}
	return recordio.ScanGzipFile(data, func(rec []byte) error {
		var r session.Record
		if err := thrift.DecodeCompact(rec, &r); err != nil {
			return err
		}
		return emit(Tuple{r.UserID, r.SessionID, r.IP, r.Sequence, int64(r.Duration), r.Start})
	})
}

// LoadSessionSequencesDay loads one day of materialized session sequences.
func (j *Job) LoadSessionSequencesDay(day time.Time) (*Dataset, error) {
	return j.Load(warehouse.SessionDayDir(day), SessionSequenceFormat{})
}

// RawRecordFormat yields each framed record as a single-column tuple of raw
// bytes; legacy-log decoders build on it.
type RawRecordFormat struct {
	// Decode, when set, transforms the raw record; returning nil drops it.
	Decode func(rec []byte) Tuple
	// Columns names the produced schema.
	Columns Schema
}

// Schema implements InputFormat.
func (f RawRecordFormat) Schema() Schema {
	if f.Columns != nil {
		return f.Columns
	}
	return Schema{"record"}
}

// Splits implements InputFormat.
func (f RawRecordFormat) Splits(fs *hdfs.FS, dir string) ([]Split, error) {
	return walkSplits(fs, dir)
}

// ReadSplit implements InputFormat.
func (f RawRecordFormat) ReadSplit(fs *hdfs.FS, s Split, emit func(Tuple) error) error {
	data, err := fs.ReadFile(s.Path)
	if err != nil {
		return err
	}
	return recordio.ScanGzipFile(data, func(rec []byte) error {
		if f.Decode == nil {
			cp := make([]byte, len(rec))
			copy(cp, rec)
			return emit(Tuple{cp})
		}
		if t := f.Decode(rec); t != nil {
			return emit(t)
		}
		return nil
	})
}

package dataflow

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"unilog/internal/recordio"
)

// The spill codec serializes one tuple per CRC-framed recordio record so
// external operators can stage partitions on disk and read them back with
// their concrete Go types intact (an int64 column must come back int64 —
// downstream reducers type-assert). The wire form is a uvarint arity
// followed by tagged values; decoding runs on the shared recordio.Cursor,
// so bounds-check behavior is identical to the WAL and snapshot decoders.

// Spill value tags.
const (
	valNil byte = iota
	valInt64
	valInt32
	valInt
	valFloat64
	valFalse
	valTrue
	valString
	valBytes
	valMap
)

// appendTuple appends the wire form of t to buf. Values outside the
// codec's vocabulary are an error, not a panic: the caller surfaces it as
// a clean spill failure.
func appendTuple(buf []byte, t Tuple) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(t)))
	for _, v := range t {
		var err error
		buf, err = appendValue(buf, v)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func appendValue(buf []byte, v Value) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		buf = append(buf, valNil)
	case int64:
		buf = append(buf, valInt64)
		buf = binary.AppendVarint(buf, x)
	case int32:
		buf = append(buf, valInt32)
		buf = binary.AppendVarint(buf, int64(x))
	case int:
		buf = append(buf, valInt)
		buf = binary.AppendVarint(buf, int64(x))
	case float64:
		buf = append(buf, valFloat64)
		buf = binary.AppendUvarint(buf, math.Float64bits(x))
	case bool:
		if x {
			buf = append(buf, valTrue)
		} else {
			buf = append(buf, valFalse)
		}
	case string:
		buf = append(buf, valString)
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		buf = append(buf, x...)
	case []byte:
		buf = append(buf, valBytes)
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		buf = append(buf, x...)
	case map[string]string:
		// Sorted keys keep the encoding deterministic, so identical
		// tuples spill to identical bytes.
		buf = append(buf, valMap)
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			buf = binary.AppendUvarint(buf, uint64(len(k)))
			buf = append(buf, k...)
			buf = binary.AppendUvarint(buf, uint64(len(x[k])))
			buf = append(buf, x[k]...)
		}
	default:
		return nil, fmt.Errorf("dataflow: cannot spill value of type %T", v)
	}
	return buf, nil
}

// appendRunRec appends the wire form of one sorted-run record: the
// rendered group key and insertion sequence the merge orders by, then the
// tuple. Prefixing the key means the reduce-side merge compares bytes
// without re-rendering key columns per comparison.
func appendRunRec(buf, key []byte, seq uint64, t Tuple) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, seq)
	return appendTuple(buf, t)
}

// decodeTuple parses one whole record as a tuple (tests and tooling; the
// merge path goes through decodeTupleFrom after the run header).
func decodeTuple(rec []byte) (Tuple, error) {
	return decodeTupleFrom(recordio.NewCursor(rec))
}

// decodeTupleFrom parses a tuple from the cursor's remaining bytes, which
// it must consume exactly.
func decodeTupleFrom(c *recordio.Cursor) (Tuple, error) {
	n := c.Count("tuple arity")
	t := make(Tuple, 0, n)
	for i := 0; i < n && c.Ok(); i++ {
		v, err := decodeValue(c)
		if err != nil {
			return nil, fmt.Errorf("dataflow: spill tuple: %w", err)
		}
		t = append(t, v)
	}
	if err := c.Err(); err != nil {
		return nil, fmt.Errorf("dataflow: spill tuple: %w", err)
	}
	if !c.Empty() {
		return nil, fmt.Errorf("dataflow: spill tuple: %w: %d trailing bytes", recordio.ErrCorrupt, c.Remaining())
	}
	return t, nil
}

func decodeValue(c *recordio.Cursor) (Value, error) {
	switch tag := c.Byte("value tag"); tag {
	case valNil:
		return nil, nil
	case valInt64:
		return c.Varint("int64 value"), nil
	case valInt32:
		return int32(c.Varint("int32 value")), nil
	case valInt:
		return int(c.Varint("int value")), nil
	case valFloat64:
		return math.Float64frombits(c.Uvarint("float64 value")), nil
	case valFalse:
		return false, nil
	case valTrue:
		return true, nil
	case valString:
		return c.String("string value"), nil
	case valBytes:
		b := c.Bytes("bytes value")
		cp := make([]byte, len(b))
		copy(cp, b)
		return cp, nil
	case valMap:
		n := c.Count("map size")
		m := make(map[string]string, n)
		for i := 0; i < n && c.Ok(); i++ {
			k := c.String("map key")
			m[k] = c.String("map value")
		}
		return m, nil
	default:
		if !c.Ok() {
			return nil, nil // cursor already failed reading the tag; Err reports it
		}
		return nil, fmt.Errorf("%w: unknown spill value tag %d", recordio.ErrCorrupt, tag)
	}
}

package dataflow

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
)

func cascadeFiles(t *testing.T, j *Job) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(j.SpillDir, "unilog-cascade-*"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestCascadeCapsRunFanIn is the acceptance property of the multi-pass
// merge: under a budget tiny enough to write far more sorted runs than
// MaxMergeFanIn allows open at once, the reduce side must cascade —
// several passes, each bounded by the cap — and still produce the exact
// relation, rows and order, of the unbudgeted in-memory path.
func TestCascadeCapsRunFanIn(t *testing.T) {
	const capFanIn = 4
	n := 4000
	rng := rand.New(rand.NewSource(42))
	tuples := make([]Tuple, n)
	for i := range tuples {
		tuples[i] = Tuple{int64(rng.Intn(100)), int64(i)}
	}

	ref := spillJob(t, 0) // in-memory reference
	want, err := mustOrderBy(t, ref, tuples)
	if err != nil {
		t.Fatal(err)
	}

	j := spillJob(t, 512)
	j.MaxMergeFanIn = capFanIn
	sorted, err := NewDataset(j, Schema{"v", "pos"}, tuples).OrderBy("v", true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sorted.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.SpillRuns <= capFanIn {
		t.Fatalf("only %d runs spilled — the cap was never under pressure", st.SpillRuns)
	}
	if st.CascadePasses < 2 || st.CascadeRuns == 0 {
		t.Fatalf("expected a real multi-pass cascade, got %+v", st)
	}
	if st.PeakRunFanIn > capFanIn {
		t.Fatalf("peak fan-in %d exceeds MaxMergeFanIn %d", st.PeakRunFanIn, capFanIn)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cascaded output differs from the in-memory relation")
	}
	// The cascaded table stays re-iterable, and the second read must not
	// cascade again — the first pass already owns the compacted runs.
	passes := j.Stats().CascadePasses
	again, err := sorted.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatal("second iteration over cascaded runs diverged")
	}
	if j.Stats().CascadePasses != passes {
		t.Fatalf("re-iteration re-cascaded: %d passes, then %d", passes, j.Stats().CascadePasses)
	}
	if err := sorted.Close(); err != nil {
		t.Fatal(err)
	}
	if left := append(spillFiles(t, j), cascadeFiles(t, j)...); len(left) != 0 {
		t.Fatalf("staged files survived Close: %v", left)
	}
}

func mustOrderBy(t *testing.T, j *Job, tuples []Tuple) ([]Tuple, error) {
	t.Helper()
	cp := make([]Tuple, len(tuples))
	copy(cp, tuples)
	sorted, err := NewDataset(j, Schema{"v", "pos"}, cp).OrderBy("v", true)
	if err != nil {
		return nil, err
	}
	defer sorted.Close()
	return sorted.Tuples()
}

// TestCascadeGroupByAggregate drives the cascade through the grouped
// reduce path: aggregates over cascaded runs must match the in-memory
// aggregates exactly, and the cascade must retire consumed spill files
// as it compacts instead of keeping every generation on disk.
func TestCascadeGroupByAggregate(t *testing.T) {
	build := func(j *Job) *Dataset {
		rng := rand.New(rand.NewSource(7))
		tuples := make([]Tuple, 3000)
		for i := range tuples {
			tuples[i] = Tuple{fmt.Sprintf("key-%03d", rng.Intn(80)), int64(rng.Intn(1000))}
		}
		return NewDataset(j, Schema{"k", "v"}, tuples)
	}
	agg := func(j *Job) []Tuple {
		t.Helper()
		g, err := build(j).GroupBy("k")
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		out, err := g.Aggregate(Count("n"), Sum("v", "sum"))
		if err != nil {
			t.Fatal(err)
		}
		rows, err := out.Tuples()
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}

	want := agg(spillJob(t, 0))

	j := spillJob(t, 512)
	j.SpillPartitions = 2
	j.MaxMergeFanIn = 5
	got := agg(j)
	st := j.Stats()
	if st.CascadePasses == 0 || st.CascadeRuns == 0 {
		t.Fatalf("budgeted group-by never cascaded: %+v", st)
	}
	if st.PeakRunFanIn > j.MaxMergeFanIn {
		t.Fatalf("peak fan-in %d exceeds MaxMergeFanIn %d", st.PeakRunFanIn, j.MaxMergeFanIn)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cascaded aggregates differ from the in-memory relation")
	}
	if left := append(spillFiles(t, j), cascadeFiles(t, j)...); len(left) != 0 {
		t.Fatalf("staged files survived Close: %v", left)
	}
}

package dataflow

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"unilog/internal/hdfs"
)

// multiSortCorpus builds a deterministic relation with heavy duplication
// in every column, so multi-column ordering and stability both matter.
func multiSortCorpus(seed int64, n int) []Tuple {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Tuple, n)
	for i := range out {
		out[i] = Tuple{
			fmt.Sprintf("k%d", rng.Intn(4)),
			int64(rng.Intn(5)),
			fmt.Sprintf("v%02d", rng.Intn(8)),
			int64(i), // unique payload: exposes any order difference
		}
	}
	return out
}

var multiSortSchema = Schema{"k", "a", "b", "seq"}

// TestOrderByColumns checks the multi-column sort against a reference
// sort.SliceStable, on both the in-memory path and the external
// merge-sort path, including a descending middle column.
func TestOrderByColumns(t *testing.T) {
	in := multiSortCorpus(11, 500)
	orders := []Order{{Col: "a"}, {Col: "b", Desc: true}, {Col: "k"}}

	want := make([]Tuple, len(in))
	copy(want, in)
	sort.SliceStable(want, func(i, j int) bool {
		if want[i][1].(int64) != want[j][1].(int64) {
			return want[i][1].(int64) < want[j][1].(int64)
		}
		if want[i][2].(string) != want[j][2].(string) {
			return want[i][2].(string) > want[j][2].(string) // desc
		}
		return want[i][0].(string) < want[j][0].(string)
	})

	for _, budget := range []int64{0, 1 << 10} {
		j := NewJob(fmt.Sprintf("multisort-%d", budget), hdfs.New(0))
		j.MemoryBudget = budget
		j.SpillDir = t.TempDir()
		d, err := NewDataset(j, multiSortSchema, in).OrderByColumns(orders...)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		got, err := d.Tuples()
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if err := d.Close(); err != nil {
			t.Fatalf("budget %d: close: %v", budget, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("budget %d: multi-column order differs from reference", budget)
		}
	}
}

// TestOrderByDelegatesToColumns pins the single-column wrapper to the
// multi-column implementation, descending included.
func TestOrderByDelegatesToColumns(t *testing.T) {
	in := multiSortCorpus(12, 200)
	j1 := NewJob("single", hdfs.New(0))
	d1, err := NewDataset(j1, multiSortSchema, in).OrderBy("a", false)
	if err != nil {
		t.Fatal(err)
	}
	one, err := d1.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	j2 := NewJob("multi", hdfs.New(0))
	d2, err := NewDataset(j2, multiSortSchema, in).OrderByColumns(Order{Col: "a", Desc: true})
	if err != nil {
		t.Fatal(err)
	}
	many, err := d2.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, many) {
		t.Fatal("OrderBy(col, false) differs from OrderByColumns(desc)")
	}
}

// TestGroupByOrderedColumns checks the multi-column secondary sort inside
// groups on both execution paths: tuples of each group must arrive
// ordered by (a asc, b desc), ties in input order.
func TestGroupByOrderedColumns(t *testing.T) {
	in := multiSortCorpus(13, 500)
	for _, budget := range []int64{0, 1 << 10} {
		j := NewJob(fmt.Sprintf("groupmulti-%d", budget), hdfs.New(0))
		j.MemoryBudget = budget
		j.SpillDir = t.TempDir()
		g, err := NewDataset(j, multiSortSchema, in).GroupByOrderedColumns(
			[]Order{{Col: "a"}, {Col: "b", Desc: true}}, "k")
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		seen := 0
		_, err = g.ForEachGroup(Schema{"k"}, func(key Tuple, group []Tuple) Tuple {
			prevSeq := make(map[[2]any]int64) // max input seq per (a, b), to check tie order
			for i := 1; i < len(group); i++ {
				p, c := group[i-1], group[i]
				if p[1].(int64) > c[1].(int64) {
					t.Fatalf("budget %d: group %v: column a out of order", budget, key)
				}
				if p[1] == c[1] && p[2].(string) < c[2].(string) {
					t.Fatalf("budget %d: group %v: column b not descending within equal a", budget, key)
				}
			}
			for _, tup := range group {
				k := [2]any{tup[1], tup[2]}
				if s := tup[3].(int64); s < prevSeq[k] {
					t.Fatalf("budget %d: group %v: ties not in input order", budget, key)
				} else {
					prevSeq[k] = s
				}
				seen++
			}
			return key
		})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if err := g.Close(); err != nil {
			t.Fatalf("budget %d: close: %v", budget, err)
		}
		if seen != len(in) {
			t.Fatalf("budget %d: saw %d tuples, want %d", budget, seen, len(in))
		}
	}
}

package dataflow

import (
	"fmt"
	"sort"
)

// Filter keeps tuples accepted by pred. It is map-side (no shuffle).
func (d *Dataset) Filter(pred func(Tuple) bool) *Dataset {
	out := make([]Tuple, 0, len(d.tuples))
	for _, t := range d.tuples {
		if pred(t) {
			out = append(out, t)
		}
	}
	return &Dataset{job: d.job, schema: d.schema, tuples: out}
}

// Project keeps only the named columns, in the given order — the "early
// projection" idiom of §4.1 that keeps shuffle volume down.
func (d *Dataset) Project(cols ...string) (*Dataset, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j, err := d.schema.Index(c)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	out := make([]Tuple, len(d.tuples))
	for i, t := range d.tuples {
		nt := make(Tuple, len(idx))
		for k, j := range idx {
			nt[k] = t[j]
		}
		out[i] = nt
	}
	return &Dataset{job: d.job, schema: append(Schema(nil), cols...), tuples: out}, nil
}

// ForEach transforms every tuple (Pig's FOREACH ... GENERATE).
func (d *Dataset) ForEach(schema Schema, fn func(Tuple) Tuple) *Dataset {
	out := make([]Tuple, 0, len(d.tuples))
	for _, t := range d.tuples {
		if nt := fn(t); nt != nil {
			out = append(out, nt)
		}
	}
	return &Dataset{job: d.job, schema: schema, tuples: out}
}

// FlatMap transforms every tuple into zero or more tuples.
func (d *Dataset) FlatMap(schema Schema, fn func(Tuple) []Tuple) *Dataset {
	var out []Tuple
	for _, t := range d.tuples {
		out = append(out, fn(t)...)
	}
	return &Dataset{job: d.job, schema: schema, tuples: out}
}

// groupKey is a comparable rendering of the grouping columns.
type groupKey string

func keyOf(t Tuple, idx []int) groupKey {
	k := ""
	for _, i := range idx {
		k += fmt.Sprintf("%v\x00", t[i])
	}
	return groupKey(k)
}

// Grouped is the result of a GroupBy: ordered groups awaiting aggregation
// or per-group reduction.
type Grouped struct {
	job     *Job
	schema  Schema
	keyCols []string
	keyIdx  []int
	keys    []groupKey
	groups  map[groupKey][]Tuple
}

// GroupBy shuffles the dataset by the named key columns — the reduce-side
// step the paper's session reconstruction pays on every raw-log query
// ("essentially, a large group-by across potentially terabytes of data").
func (d *Dataset) GroupBy(keyCols ...string) (*Grouped, error) {
	idx := make([]int, len(keyCols))
	for i, c := range keyCols {
		j, err := d.schema.Index(c)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	groups := make(map[groupKey][]Tuple)
	var keys []groupKey
	for _, t := range d.tuples {
		k := keyOf(t, idx)
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], t)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	d.job.chargeShuffle(d.tuples, len(groups))
	return &Grouped{job: d.job, schema: d.schema, keyCols: keyCols, keyIdx: idx, keys: keys, groups: groups}, nil
}

// NumGroups returns the number of distinct keys.
func (g *Grouped) NumGroups() int { return len(g.keys) }

// ForEachGroup reduces each group to one tuple. The emitted schema is the
// key columns followed by outCols.
func (g *Grouped) ForEachGroup(outCols Schema, fn func(key Tuple, group []Tuple) Tuple) *Dataset {
	schema := append(append(Schema(nil), g.keyCols...), outCols...)
	out := make([]Tuple, 0, len(g.keys))
	for _, k := range g.keys {
		group := g.groups[k]
		keyVals := make(Tuple, len(g.keyIdx))
		for i, idx := range g.keyIdx {
			keyVals[i] = group[0][idx]
		}
		if res := fn(keyVals, group); res != nil {
			out = append(out, append(append(Tuple(nil), keyVals...), res...))
		}
	}
	g.job.stats.OutputRecords += int64(len(out))
	return &Dataset{job: g.job, schema: schema, tuples: out}
}

// Agg is one aggregate computed per group.
type Agg struct {
	Name string
	Col  string // input column; ignored by COUNT(*)
	Kind AggKind
}

// AggKind selects the aggregate function.
type AggKind int

// Aggregate kinds.
const (
	AggCount AggKind = iota // COUNT(*)
	AggSum
	AggMin
	AggMax
	AggAvg
	AggCountDistinct
)

// Count is COUNT(*) named as out.
func Count(out string) Agg { return Agg{Name: out, Kind: AggCount} }

// Sum is SUM(col) over int64 or float64 columns.
func Sum(col, out string) Agg { return Agg{Name: out, Col: col, Kind: AggSum} }

// Min is MIN(col) over int64 columns.
func Min(col, out string) Agg { return Agg{Name: out, Col: col, Kind: AggMin} }

// Max is MAX(col) over int64 columns.
func Max(col, out string) Agg { return Agg{Name: out, Col: col, Kind: AggMax} }

// Avg is AVG(col) over numeric columns, producing float64.
func Avg(col, out string) Agg { return Agg{Name: out, Col: col, Kind: AggAvg} }

// CountDistinct counts distinct values of col per group.
func CountDistinct(col, out string) Agg { return Agg{Name: out, Col: col, Kind: AggCountDistinct} }

func toF(v Value) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case int32:
		return float64(x)
	case int:
		return float64(x)
	case float64:
		return x
	}
	return 0
}

func toI(v Value) int64 {
	switch x := v.(type) {
	case int64:
		return x
	case int32:
		return int64(x)
	case int:
		return int64(x)
	case float64:
		return int64(x)
	}
	return 0
}

// Aggregate computes the given aggregates for every group.
func (g *Grouped) Aggregate(aggs ...Agg) (*Dataset, error) {
	idx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Kind == AggCount {
			idx[i] = -1
			continue
		}
		j, err := g.schema.Index(a.Col)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	outCols := make(Schema, len(aggs))
	for i, a := range aggs {
		outCols[i] = a.Name
	}
	return g.ForEachGroup(outCols, func(key Tuple, group []Tuple) Tuple {
		res := make(Tuple, len(aggs))
		for i, a := range aggs {
			switch a.Kind {
			case AggCount:
				res[i] = int64(len(group))
			case AggSum:
				var s int64
				for _, t := range group {
					s += toI(t[idx[i]])
				}
				res[i] = s
			case AggMin:
				m := toI(group[0][idx[i]])
				for _, t := range group[1:] {
					if v := toI(t[idx[i]]); v < m {
						m = v
					}
				}
				res[i] = m
			case AggMax:
				m := toI(group[0][idx[i]])
				for _, t := range group[1:] {
					if v := toI(t[idx[i]]); v > m {
						m = v
					}
				}
				res[i] = m
			case AggAvg:
				var s float64
				for _, t := range group {
					s += toF(t[idx[i]])
				}
				res[i] = s / float64(len(group))
			case AggCountDistinct:
				seen := make(map[string]struct{}, len(group))
				for _, t := range group {
					seen[fmt.Sprintf("%v", t[idx[i]])] = struct{}{}
				}
				res[i] = int64(len(seen))
			}
		}
		return res
	}), nil
}

// GroupAll groups every tuple into a single group (Pig's GROUP ... ALL),
// the idiom that ends the paper's counting scripts.
func (d *Dataset) GroupAll() *Grouped {
	groups := map[groupKey][]Tuple{"": d.tuples}
	d.job.chargeShuffle(d.tuples, 1)
	return &Grouped{job: d.job, schema: d.schema, keys: []groupKey{""}, groups: groups}
}

// Join hash-joins two datasets on equality of leftCol and rightCol; both
// sides shuffle. Output schema is the left schema followed by the right
// schema with joined-column collisions suffixed "_r".
func (d *Dataset) Join(other *Dataset, leftCol, rightCol string) (*Dataset, error) {
	li, err := d.schema.Index(leftCol)
	if err != nil {
		return nil, err
	}
	ri, err := other.schema.Index(rightCol)
	if err != nil {
		return nil, err
	}
	right := make(map[string][]Tuple)
	for _, t := range other.tuples {
		k := fmt.Sprintf("%v", t[ri])
		right[k] = append(right[k], t)
	}
	d.job.chargeShuffle(d.tuples, len(right))
	d.job.chargeShuffle(other.tuples, len(right))

	schema := append(Schema(nil), d.schema...)
	for _, c := range other.schema {
		if _, err := d.schema.Index(c); err == nil {
			schema = append(schema, c+"_r")
		} else {
			schema = append(schema, c)
		}
	}
	var out []Tuple
	for _, t := range d.tuples {
		k := fmt.Sprintf("%v", t[li])
		for _, rt := range right[k] {
			nt := make(Tuple, 0, len(t)+len(rt))
			nt = append(nt, t...)
			nt = append(nt, rt...)
			out = append(out, nt)
		}
	}
	d.job.stats.OutputRecords += int64(len(out))
	return &Dataset{job: d.job, schema: schema, tuples: out}, nil
}

// Distinct removes duplicate tuples (whole-row comparison).
func (d *Dataset) Distinct() *Dataset {
	seen := make(map[string]struct{}, len(d.tuples))
	var out []Tuple
	for _, t := range d.tuples {
		k := fmt.Sprintf("%v", t)
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, t)
	}
	d.job.chargeShuffle(d.tuples, len(out))
	return &Dataset{job: d.job, schema: d.schema, tuples: out}
}

// OrderBy sorts by the named column; numeric columns sort numerically.
func (d *Dataset) OrderBy(col string, ascending bool) (*Dataset, error) {
	i, err := d.schema.Index(col)
	if err != nil {
		return nil, err
	}
	out := append([]Tuple(nil), d.tuples...)
	sort.SliceStable(out, func(a, b int) bool {
		va, vb := out[a][i], out[b][i]
		var less bool
		switch va.(type) {
		case int64, int32, int:
			less = toI(va) < toI(vb)
		case float64:
			less = toF(va) < toF(vb)
		default:
			less = fmt.Sprintf("%v", va) < fmt.Sprintf("%v", vb)
		}
		if ascending {
			return less
		}
		return !less
	})
	return &Dataset{job: d.job, schema: d.schema, tuples: out}, nil
}

// Limit keeps the first n tuples.
func (d *Dataset) Limit(n int) *Dataset {
	if n > len(d.tuples) {
		n = len(d.tuples)
	}
	return &Dataset{job: d.job, schema: d.schema, tuples: d.tuples[:n]}
}

// Count returns the number of tuples (a terminal operation).
func (d *Dataset) Count() int64 { return int64(len(d.tuples)) }

package dataflow

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Filter keeps tuples accepted by pred. It is map-side (no shuffle) and
// streams.
func (d *Dataset) Filter(pred func(Tuple) bool) *Dataset {
	return &Dataset{job: d.job, schema: d.schema, cleanup: d.cleanup, open: func() (Iterator, error) {
		it, err := d.open()
		if err != nil {
			return nil, err
		}
		return &iterFunc{next: func() (Tuple, error) {
			for {
				t, err := it.Next()
				if err != nil {
					return nil, err
				}
				if pred(t) {
					return t, nil
				}
			}
		}, close: it.Close}, nil
	}}
}

// Project keeps only the named columns, in the given order — the "early
// projection" idiom of §4.1 that keeps shuffle volume down. Column
// resolution is eager; execution streams.
func (d *Dataset) Project(cols ...string) (*Dataset, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j, err := d.schema.Index(c)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	schema := append(Schema(nil), cols...)
	return &Dataset{job: d.job, schema: schema, cleanup: d.cleanup, open: func() (Iterator, error) {
		it, err := d.open()
		if err != nil {
			return nil, err
		}
		return &iterFunc{next: func() (Tuple, error) {
			t, err := it.Next()
			if err != nil {
				return nil, err
			}
			nt := make(Tuple, len(idx))
			for k, j := range idx {
				nt[k] = t[j]
			}
			return nt, nil
		}, close: it.Close}, nil
	}}, nil
}

// ForEach transforms every tuple (Pig's FOREACH ... GENERATE); returning
// nil drops the tuple. It streams.
func (d *Dataset) ForEach(schema Schema, fn func(Tuple) Tuple) *Dataset {
	return &Dataset{job: d.job, schema: schema, cleanup: d.cleanup, open: func() (Iterator, error) {
		it, err := d.open()
		if err != nil {
			return nil, err
		}
		return &iterFunc{next: func() (Tuple, error) {
			for {
				t, err := it.Next()
				if err != nil {
					return nil, err
				}
				if nt := fn(t); nt != nil {
					return nt, nil
				}
			}
		}, close: it.Close}, nil
	}}
}

// FlatMap transforms every tuple into zero or more tuples. It streams; only
// one input tuple's expansion is buffered at a time.
func (d *Dataset) FlatMap(schema Schema, fn func(Tuple) []Tuple) *Dataset {
	return &Dataset{job: d.job, schema: schema, cleanup: d.cleanup, open: func() (Iterator, error) {
		it, err := d.open()
		if err != nil {
			return nil, err
		}
		var pending []Tuple
		return &iterFunc{next: func() (Tuple, error) {
			for {
				if len(pending) > 0 {
					t := pending[0]
					pending = pending[1:]
					return t, nil
				}
				t, err := it.Next()
				if err != nil {
					return nil, err
				}
				pending = fn(t)
			}
		}, close: it.Close}, nil
	}}
}

// Limit keeps the first n tuples, stopping the upstream scan early.
func (d *Dataset) Limit(n int) *Dataset {
	return &Dataset{job: d.job, schema: d.schema, cleanup: d.cleanup, open: func() (Iterator, error) {
		it, err := d.open()
		if err != nil {
			return nil, err
		}
		remaining := n
		return &iterFunc{next: func() (Tuple, error) {
			if remaining <= 0 {
				return nil, io.EOF
			}
			t, err := it.Next()
			if err != nil {
				return nil, err
			}
			remaining--
			return t, nil
		}, close: it.Close}, nil
	}}
}

// Union concatenates this dataset with others of the same schema,
// streaming each input in turn.
func (d *Dataset) Union(others ...*Dataset) *Dataset {
	all := append([]*Dataset{d}, others...)
	cleanup := func() error {
		var err error
		for _, ds := range all {
			if cerr := ds.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		return err
	}
	return &Dataset{job: d.job, schema: d.schema, cleanup: cleanup, open: func() (Iterator, error) {
		var cur Iterator
		var sticky error
		i := 0
		return &iterFunc{next: func() (Tuple, error) {
			if sticky != nil {
				return nil, sticky
			}
			for {
				if cur == nil {
					if i >= len(all) {
						return nil, io.EOF
					}
					var err error
					cur, err = all[i].open()
					i++
					if err != nil {
						// Sticky: re-polling must not skip this input and
						// serve a silently incomplete union.
						sticky = err
						return nil, err
					}
				}
				t, err := cur.Next()
				if err == io.EOF {
					cur.Close()
					cur = nil
					continue
				}
				if err != nil {
					sticky = err
				}
				return t, err
			}
		}, close: func() error {
			if cur != nil {
				err := cur.Close()
				cur = nil
				return err
			}
			return nil
		}}, nil
	}}
}

// appendKey renders the indexed columns of t into dst as a comparable
// key. It replaces a fmt.Sprintf per column with type-switched appends
// into a caller-reused scratch buffer — the hot path of every shuffle.
// The rendering matches %v for strings, ints, bools, and floats, so key
// equality and sort order are unchanged for those kinds; []byte
// deliberately appends raw bytes instead of %v's "[104 105]" form
// (cheaper, still deterministic — byte-slice key columns group by
// content, and, like the numeric kinds, collide with a string rendering
// the same bytes).
//
// Components are terminated with 0x00 0x01, and any 0x00 inside a
// rendered value is escaped as 0x00 0xFF (the memcomparable idiom), so a
// NUL embedded in one column can never shift a component boundary and
// merge two distinct multi-column keys. The escape keeps lexicographic
// order: a component's end (0x00 0x01) sorts below any continuation.
func appendKey(dst []byte, t Tuple, idx []int) []byte {
	for _, i := range idx {
		n := len(dst)
		dst = appendKeyValue(dst, t[i])
		if bytes.IndexByte(dst[n:], 0) >= 0 {
			// Rare path: rewrite the component with NULs escaped.
			esc := make([]byte, 0, (len(dst)-n)+2)
			for _, b := range dst[n:] {
				if b == 0 {
					esc = append(esc, 0, 0xFF)
				} else {
					esc = append(esc, b)
				}
			}
			dst = append(dst[:n], esc...)
		}
		dst = append(dst, 0, 1)
	}
	return dst
}

func appendKeyValue(dst []byte, v Value) []byte {
	switch x := v.(type) {
	case string:
		return append(dst, x...)
	case int64:
		return strconv.AppendInt(dst, x, 10)
	case int32:
		return strconv.AppendInt(dst, int64(x), 10)
	case int:
		return strconv.AppendInt(dst, int64(x), 10)
	case bool:
		if x {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	case float64:
		return strconv.AppendFloat(dst, x, 'g', -1, 64)
	case []byte:
		return append(dst, x...)
	default:
		return fmt.Appendf(dst, "%v", x)
	}
}

// Grouped is the result of a GroupBy: hash-partitioned (possibly spilled)
// tuples awaiting reduce-side passes. Groups are merged one partition at a
// time; within each partition groups are visited in ascending key order,
// and every emitted relation is globally key-ordered, preserving the
// ordering semantics of the in-memory engine. A Grouped supports multiple
// reduce passes (NumGroups, then Aggregate, say); Close releases its spill
// files.
type Grouped struct {
	job     *Job
	schema  Schema
	keyCols []string
	keyIdx  []int
	st      *spillTable
	all     bool // GROUP ALL: a single global group, present even when empty
	groups  int  // distinct keys; -1 until a reduce pass has counted
}

// GroupBy shuffles the dataset by the named key columns — the reduce-side
// step the paper's session reconstruction pays on every raw-log query
// ("essentially, a large group-by across potentially terabytes of data").
// The input is consumed here; partitions spill under Job.MemoryBudget.
func (d *Dataset) GroupBy(keyCols ...string) (*Grouped, error) {
	idx := make([]int, len(keyCols))
	for i, c := range keyCols {
		j, err := d.schema.Index(c)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	st := newSpillTable(d.job, idx, 0)
	if err := st.fill(d); err != nil {
		return nil, err
	}
	d.job.stats.ReduceTasks++ // base reduce wave; topped up when the group count is known
	return &Grouped{job: d.job, schema: d.schema, keyCols: keyCols, keyIdx: idx, st: st, groups: -1}, nil
}

// GroupAll groups every tuple into a single group (Pig's GROUP ... ALL),
// the idiom that ends the paper's counting scripts. The single group still
// spills under the memory budget; an empty input still has its one group.
func (d *Dataset) GroupAll() (*Grouped, error) {
	st := newSpillTable(d.job, nil, 1)
	if err := st.fill(d); err != nil {
		return nil, err
	}
	d.job.stats.ReduceTasks++
	g := &Grouped{job: d.job, schema: d.schema, st: st, all: true, groups: -1}
	g.setGroups(1)
	return g, nil
}

// setGroups records the group count the first time a reduce pass learns
// it, topping the base reducer charged at construction up to the
// group-scaled wave.
func (g *Grouped) setGroups(n int) {
	if g.groups >= 0 {
		return
	}
	g.groups = n
	g.job.stats.ReduceTasks += reducersFor(n) - 1
}

// Close removes the spill files backing the partitions. The Grouped cannot
// be reduced again afterwards.
func (g *Grouped) Close() error { return g.st.Close() }

// mergePass drives one partition-at-a-time reduce pass: within each
// partition, tuples fold into one state per rendered group key (allocated
// on first sight), and the partition's groups are then emitted in
// ascending key order. It returns the number of distinct groups across
// all partitions. Peak memory is one partition's states — this loop is
// the shared skeleton under NumGroups, ForEachGroup, and Aggregate.
func mergePass[S any](g *Grouped, newState func(first Tuple) S, fold func(S, Tuple) S, emit func(key string, s S)) (int, error) {
	g.job.stats.MergePasses++
	total := 0
	var scratch []byte
	type entry struct {
		key string
		s   S
	}
	for pi := 0; pi < g.st.numParts(); pi++ {
		it, err := g.st.partIter(pi)
		if err != nil {
			return 0, err
		}
		index := make(map[string]int)
		var entries []entry
		for {
			t, err := it.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				it.Close()
				return 0, err
			}
			scratch = appendKey(scratch[:0], t, g.keyIdx)
			ei, ok := index[string(scratch)]
			if !ok {
				ei = len(entries)
				k := string(scratch)
				index[k] = ei
				entries = append(entries, entry{key: k, s: newState(t)})
			}
			entries[ei].s = fold(entries[ei].s, t)
		}
		it.Close()
		total += len(entries)
		if emit != nil {
			sort.Slice(entries, func(a, b int) bool { return entries[a].key < entries[b].key })
			for _, e := range entries {
				emit(e.key, e.s)
			}
		}
	}
	return total, nil
}

// NumGroups returns the number of distinct keys, counting them with a
// bounded partition-at-a-time pass if no reduce has run yet.
func (g *Grouped) NumGroups() (int, error) {
	if g.groups >= 0 {
		return g.groups, nil
	}
	total, err := mergePass(g,
		func(Tuple) struct{} { return struct{}{} },
		func(s struct{}, _ Tuple) struct{} { return s },
		nil)
	if err != nil {
		return 0, err
	}
	if g.all && total == 0 {
		total = 1
	}
	g.setGroups(total)
	return total, nil
}

// keyedRow carries an output row with its rendered group key so partition
// outputs can be merged into global key order.
type keyedRow struct {
	key string
	row Tuple
}

func sortKeyed(rows []keyedRow) []Tuple {
	sort.SliceStable(rows, func(a, b int) bool { return rows[a].key < rows[b].key })
	out := make([]Tuple, len(rows))
	for i, r := range rows {
		out[i] = r.row
	}
	return out
}

// ForEachGroup reduces each group to one tuple. The emitted schema is the
// key columns followed by outCols. Partitions are merged one at a time, so
// peak memory is one partition's tuples; fn sees each group's tuples in
// input order, groups in ascending key order per partition, and the
// resulting relation is globally key-ordered.
func (g *Grouped) ForEachGroup(outCols Schema, fn func(key Tuple, group []Tuple) Tuple) (*Dataset, error) {
	schema := append(append(Schema(nil), g.keyCols...), outCols...)
	var rows []keyedRow
	total, err := mergePass(g,
		func(Tuple) []Tuple { return nil },
		func(group []Tuple, t Tuple) []Tuple { return append(group, t) },
		func(key string, group []Tuple) {
			keyVals := make(Tuple, len(g.keyIdx))
			for i, idx := range g.keyIdx {
				keyVals[i] = group[0][idx]
			}
			if res := fn(keyVals, group); res != nil {
				rows = append(rows, keyedRow{key, append(append(Tuple(nil), keyVals...), res...)})
			}
		})
	if err != nil {
		return nil, err
	}
	if g.all && total == 0 {
		// GROUP ALL of an empty relation still reduces its single group.
		total = 1
		if res := fn(Tuple{}, nil); res != nil {
			rows = append(rows, keyedRow{"", append(Tuple(nil), res...)})
		}
	}
	g.setGroups(total)
	out := sortKeyed(rows)
	g.job.stats.OutputRecords += int64(len(out))
	return NewDataset(g.job, schema, out), nil
}

// Agg is one aggregate computed per group.
type Agg struct {
	Name string
	Col  string // input column; ignored by COUNT(*)
	Kind AggKind
}

// AggKind selects the aggregate function.
type AggKind int

// Aggregate kinds.
const (
	AggCount AggKind = iota // COUNT(*)
	AggSum
	AggMin
	AggMax
	AggAvg
	AggCountDistinct
)

// Count is COUNT(*) named as out.
func Count(out string) Agg { return Agg{Name: out, Kind: AggCount} }

// Sum is SUM(col) over int64 or float64 columns.
func Sum(col, out string) Agg { return Agg{Name: out, Col: col, Kind: AggSum} }

// Min is MIN(col) over int64 columns.
func Min(col, out string) Agg { return Agg{Name: out, Col: col, Kind: AggMin} }

// Max is MAX(col) over int64 columns.
func Max(col, out string) Agg { return Agg{Name: out, Col: col, Kind: AggMax} }

// Avg is AVG(col) over numeric columns, producing float64.
func Avg(col, out string) Agg { return Agg{Name: out, Col: col, Kind: AggAvg} }

// CountDistinct counts distinct values of col per group.
func CountDistinct(col, out string) Agg { return Agg{Name: out, Col: col, Kind: AggCountDistinct} }

func toF(v Value) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case int32:
		return float64(x)
	case int:
		return float64(x)
	case float64:
		return x
	}
	return 0
}

func toI(v Value) int64 {
	switch x := v.(type) {
	case int64:
		return x
	case int32:
		return int64(x)
	case int:
		return int64(x)
	case float64:
		return int64(x)
	}
	return 0
}

// aggCell is the incremental state of one aggregate over one group. The
// fold never materializes the group's tuples, so the reduce side of an
// Aggregate holds per-key state, not per-tuple state.
type aggCell struct {
	count    int64
	isum     int64
	fsum     float64
	extreme  int64
	started  bool
	distinct map[string]struct{}
}

func (c *aggCell) fold(kind AggKind, v Value, scratch []byte) []byte {
	switch kind {
	case AggCount:
		c.count++
	case AggSum:
		c.isum += toI(v)
	case AggMin:
		if x := toI(v); !c.started || x < c.extreme {
			c.extreme = x
		}
		c.started = true
	case AggMax:
		if x := toI(v); !c.started || x > c.extreme {
			c.extreme = x
		}
		c.started = true
	case AggAvg:
		c.fsum += toF(v)
		c.count++
	case AggCountDistinct:
		scratch = appendKeyValue(scratch[:0], v)
		if c.distinct == nil {
			c.distinct = make(map[string]struct{})
		}
		if _, ok := c.distinct[string(scratch)]; !ok {
			c.distinct[string(scratch)] = struct{}{}
		}
	}
	return scratch
}

func (c *aggCell) final(kind AggKind) Value {
	switch kind {
	case AggCount:
		return c.count
	case AggSum:
		return c.isum
	case AggMin, AggMax:
		return c.extreme
	case AggAvg:
		if c.count == 0 {
			return float64(0)
		}
		return c.fsum / float64(c.count)
	case AggCountDistinct:
		return int64(len(c.distinct))
	}
	return nil
}

// Aggregate computes the given aggregates for every group with a streaming
// fold: each partition is scanned once and only per-group aggregate cells
// are held, so even a spilled GROUP ALL aggregates in constant memory (per
// distinct value for CountDistinct).
func (g *Grouped) Aggregate(aggs ...Agg) (*Dataset, error) {
	idx := make([]int, len(aggs))
	outCols := make(Schema, len(aggs))
	for i, a := range aggs {
		outCols[i] = a.Name
		if a.Kind == AggCount {
			idx[i] = -1
			continue
		}
		j, err := g.schema.Index(a.Col)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	schema := append(append(Schema(nil), g.keyCols...), outCols...)

	type groupState struct {
		keyVals Tuple
		cells   []aggCell
	}
	var rows []keyedRow
	var vscratch []byte
	total, err := mergePass(g,
		func(t Tuple) *groupState {
			keyVals := make(Tuple, len(g.keyIdx))
			for i, kidx := range g.keyIdx {
				keyVals[i] = t[kidx]
			}
			return &groupState{keyVals: keyVals, cells: make([]aggCell, len(aggs))}
		},
		func(st *groupState, t Tuple) *groupState {
			for ai, a := range aggs {
				var v Value
				if idx[ai] >= 0 {
					v = t[idx[ai]]
				}
				vscratch = st.cells[ai].fold(a.Kind, v, vscratch)
			}
			return st
		},
		func(key string, st *groupState) {
			row := append(Tuple(nil), st.keyVals...)
			for ai, a := range aggs {
				row = append(row, st.cells[ai].final(a.Kind))
			}
			rows = append(rows, keyedRow{key, row})
		})
	if err != nil {
		return nil, err
	}
	if g.all && total == 0 {
		// GROUP ALL of an empty relation still emits its single row of
		// zero-valued aggregates.
		total = 1
		row := Tuple{}
		var zero aggCell
		for _, a := range aggs {
			row = append(row, zero.final(a.Kind))
		}
		rows = append(rows, keyedRow{"", row})
	}
	g.setGroups(total)
	out := sortKeyed(rows)
	g.job.stats.OutputRecords += int64(len(out))
	return NewDataset(g.job, schema, out), nil
}

// Join hash-joins two datasets on equality of leftCol and rightCol; both
// sides shuffle into aligned hash partitions (a Grace join), spilling
// under Job.MemoryBudget. The merge runs lazily, one partition pair at a
// time: the right partition is loaded into a hash table, the left streams
// past it — peak memory is one right partition. Output schema is the left
// schema followed by the right schema with joined-column collisions
// suffixed "_r". Close the returned dataset to release the spill files.
func (d *Dataset) Join(other *Dataset, leftCol, rightCol string) (*Dataset, error) {
	li, err := d.schema.Index(leftCol)
	if err != nil {
		return nil, err
	}
	ri, err := other.schema.Index(rightCol)
	if err != nil {
		return nil, err
	}
	lt := newSpillTable(d.job, []int{li}, 0)
	if err := lt.fill(d); err != nil {
		return nil, err
	}
	rt := newSpillTable(d.job, []int{ri}, lt.numParts())
	if err := rt.fill(other); err != nil {
		lt.Close()
		return nil, err
	}
	// Both sides shuffled: one base reduce wave per side now (as the eager
	// engine charged), topped up when a full merge learns the key count.
	d.job.stats.ReduceTasks += 2
	schema := append(Schema(nil), d.schema...)
	for _, c := range other.schema {
		if _, err := d.schema.Index(c); err == nil {
			schema = append(schema, c+"_r")
		} else {
			schema = append(schema, c)
		}
	}
	js := &joinState{job: d.job, lt: lt, rt: rt, lidx: []int{li}, ridx: []int{ri}}
	return &Dataset{job: d.job, schema: schema, open: js.open, cleanup: js.close}, nil
}

// joinState is the partitioned both-sides shuffle behind a Join output;
// every iteration of the output dataset merges it again.
type joinState struct {
	job        *Job
	lt, rt     *spillTable
	lidx, ridx []int
	charged    bool
}

func (s *joinState) open() (Iterator, error) {
	s.job.stats.MergePasses++
	return &joinIter{s: s}, nil
}

func (s *joinState) close() error {
	err := s.lt.Close()
	if rerr := s.rt.Close(); err == nil {
		err = rerr
	}
	return err
}

type joinIter struct {
	s             *joinState
	part          int
	lit           Iterator // current left partition cursor
	right         map[string][]Tuple
	cur           Tuple
	matches       []Tuple
	mi            int
	distinctRight int
	scratch       []byte
	err           error // sticky: a failed partition cannot be skipped
}

func (it *joinIter) Next() (Tuple, error) {
	if it.err != nil {
		return nil, it.err
	}
	t, err := it.next()
	if err != nil && err != io.EOF {
		it.err = err
	}
	return t, err
}

func (it *joinIter) next() (Tuple, error) {
	s := it.s
	for {
		if it.mi < len(it.matches) {
			rt := it.matches[it.mi]
			it.mi++
			nt := make(Tuple, 0, len(it.cur)+len(rt))
			nt = append(nt, it.cur...)
			nt = append(nt, rt...)
			s.job.stats.OutputRecords++
			return nt, nil
		}
		if it.lit != nil {
			t, err := it.lit.Next()
			if err == io.EOF {
				it.lit.Close()
				it.lit = nil
				continue
			}
			if err != nil {
				return nil, err
			}
			it.cur = t
			it.scratch = appendKey(it.scratch[:0], t, s.lidx)
			it.matches = it.right[string(it.scratch)]
			it.mi = 0
			continue
		}
		if it.part >= s.lt.numParts() {
			if !s.charged {
				s.charged = true
				s.job.stats.ReduceTasks += 2 * (reducersFor(it.distinctRight) - 1)
			}
			return nil, io.EOF
		}
		pi := it.part
		it.part++
		rit, err := s.rt.partIter(pi)
		if err != nil {
			return nil, err
		}
		right := make(map[string][]Tuple)
		for {
			t, err := rit.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				rit.Close()
				return nil, err
			}
			it.scratch = appendKey(it.scratch[:0], t, s.ridx)
			k := string(it.scratch)
			right[k] = append(right[k], t)
		}
		rit.Close()
		it.distinctRight += len(right)
		it.right = right
		it.lit, err = s.lt.partIter(pi)
		if err != nil {
			return nil, err
		}
	}
}

func (it *joinIter) Close() error {
	if it.lit != nil {
		err := it.lit.Close()
		it.lit = nil
		return err
	}
	return nil
}

// Distinct removes duplicate tuples (whole-row comparison). It is an
// external operator: rows hash-partition and spill under Job.MemoryBudget,
// and each partition deduplicates independently, one at a time. Output
// order is first-occurrence order within each partition.
func (d *Dataset) Distinct() *Dataset {
	idx := make([]int, len(d.schema))
	for i := range idx {
		idx[i] = i
	}
	return &Dataset{job: d.job, schema: d.schema, cleanup: d.cleanup, open: func() (Iterator, error) {
		st := newSpillTable(d.job, idx, 0)
		if err := st.fill(d); err != nil {
			return nil, err
		}
		d.job.stats.ReduceTasks++ // base wave; topped up at end of merge
		d.job.stats.MergePasses++
		return &distinctIter{job: d.job, st: st, idx: idx}, nil
	}}
}

type distinctIter struct {
	job     *Job
	st      *spillTable
	idx     []int
	part    int
	out     []Tuple
	i       int
	total   int
	charged bool
	scratch []byte
	err     error // sticky: a failed partition cannot be skipped
}

func (it *distinctIter) Next() (Tuple, error) {
	if it.err != nil {
		return nil, it.err
	}
	t, err := it.next()
	if err != nil && err != io.EOF {
		it.err = err
	}
	return t, err
}

func (it *distinctIter) next() (Tuple, error) {
	for {
		if it.i < len(it.out) {
			t := it.out[it.i]
			it.i++
			return t, nil
		}
		if it.part >= it.st.numParts() {
			if !it.charged {
				it.charged = true
				it.job.stats.ReduceTasks += reducersFor(it.total) - 1
			}
			return nil, io.EOF
		}
		pi := it.part
		it.part++
		src, err := it.st.partIter(pi)
		if err != nil {
			return nil, err
		}
		seen := make(map[string]struct{})
		it.out = it.out[:0]
		for {
			t, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				src.Close()
				return nil, err
			}
			it.scratch = appendKey(it.scratch[:0], t, it.idx)
			if _, ok := seen[string(it.scratch)]; ok {
				continue
			}
			seen[string(it.scratch)] = struct{}{}
			it.out = append(it.out, t)
		}
		src.Close()
		it.total += len(seen)
		it.i = 0
	}
}

func (it *distinctIter) Close() error { return it.st.Close() }

// OrderBy sorts by the named column; numeric columns sort numerically. The
// sort materializes its input (sorted outputs are expected to be small
// reduce-side relations).
func (d *Dataset) OrderBy(col string, ascending bool) (*Dataset, error) {
	i, err := d.schema.Index(col)
	if err != nil {
		return nil, err
	}
	out, err := d.Tuples()
	if err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(a, b int) bool {
		va, vb := out[a][i], out[b][i]
		var less bool
		switch va.(type) {
		case int64, int32, int:
			less = toI(va) < toI(vb)
		case float64:
			less = toF(va) < toF(vb)
		default:
			less = fmt.Sprintf("%v", va) < fmt.Sprintf("%v", vb)
		}
		if ascending {
			return less
		}
		return !less
	})
	sorted := NewDataset(d.job, d.schema, out)
	sorted.cleanup = d.cleanup // closing the sorted view frees upstream spill state too
	return sorted, nil
}

package dataflow

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// Filter keeps tuples accepted by pred. It is map-side (no shuffle) and
// streams.
func (d *Dataset) Filter(pred func(Tuple) bool) *Dataset {
	return &Dataset{job: d.job, schema: d.schema, cleanup: d.cleanup, open: func() (Iterator, error) {
		it, err := d.open()
		if err != nil {
			return nil, err
		}
		return &iterFunc{next: func() (Tuple, error) {
			for {
				t, err := it.Next()
				if err != nil {
					return nil, err
				}
				if pred(t) {
					return t, nil
				}
			}
		}, close: it.Close}, nil
	}}
}

// Project keeps only the named columns, in the given order — the "early
// projection" idiom of §4.1 that keeps shuffle volume down. Column
// resolution is eager; execution streams.
func (d *Dataset) Project(cols ...string) (*Dataset, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j, err := d.schema.Index(c)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	schema := append(Schema(nil), cols...)
	return &Dataset{job: d.job, schema: schema, cleanup: d.cleanup, open: func() (Iterator, error) {
		it, err := d.open()
		if err != nil {
			return nil, err
		}
		return &iterFunc{next: func() (Tuple, error) {
			t, err := it.Next()
			if err != nil {
				return nil, err
			}
			nt := make(Tuple, len(idx))
			for k, j := range idx {
				nt[k] = t[j]
			}
			return nt, nil
		}, close: it.Close}, nil
	}}, nil
}

// ForEach transforms every tuple (Pig's FOREACH ... GENERATE); returning
// nil drops the tuple. It streams.
func (d *Dataset) ForEach(schema Schema, fn func(Tuple) Tuple) *Dataset {
	return &Dataset{job: d.job, schema: schema, cleanup: d.cleanup, open: func() (Iterator, error) {
		it, err := d.open()
		if err != nil {
			return nil, err
		}
		return &iterFunc{next: func() (Tuple, error) {
			for {
				t, err := it.Next()
				if err != nil {
					return nil, err
				}
				if nt := fn(t); nt != nil {
					return nt, nil
				}
			}
		}, close: it.Close}, nil
	}}
}

// FlatMap transforms every tuple into zero or more tuples. It streams; only
// one input tuple's expansion is buffered at a time.
func (d *Dataset) FlatMap(schema Schema, fn func(Tuple) []Tuple) *Dataset {
	return &Dataset{job: d.job, schema: schema, cleanup: d.cleanup, open: func() (Iterator, error) {
		it, err := d.open()
		if err != nil {
			return nil, err
		}
		var pending []Tuple
		return &iterFunc{next: func() (Tuple, error) {
			for {
				if len(pending) > 0 {
					t := pending[0]
					pending = pending[1:]
					return t, nil
				}
				t, err := it.Next()
				if err != nil {
					return nil, err
				}
				pending = fn(t)
			}
		}, close: it.Close}, nil
	}}
}

// Limit keeps the first n tuples, stopping the upstream scan early.
func (d *Dataset) Limit(n int) *Dataset {
	return &Dataset{job: d.job, schema: d.schema, cleanup: d.cleanup, open: func() (Iterator, error) {
		it, err := d.open()
		if err != nil {
			return nil, err
		}
		remaining := n
		return &iterFunc{next: func() (Tuple, error) {
			if remaining <= 0 {
				return nil, io.EOF
			}
			t, err := it.Next()
			if err != nil {
				return nil, err
			}
			remaining--
			return t, nil
		}, close: it.Close}, nil
	}}
}

// Union concatenates this dataset with others of the same schema,
// streaming each input in turn.
func (d *Dataset) Union(others ...*Dataset) *Dataset {
	all := append([]*Dataset{d}, others...)
	cleanup := func() error {
		var err error
		for _, ds := range all {
			if cerr := ds.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		return err
	}
	return &Dataset{job: d.job, schema: d.schema, cleanup: cleanup, open: func() (Iterator, error) {
		var cur Iterator
		var sticky error
		i := 0
		return &iterFunc{next: func() (Tuple, error) {
			if sticky != nil {
				return nil, sticky
			}
			for {
				if cur == nil {
					if i >= len(all) {
						return nil, io.EOF
					}
					var err error
					cur, err = all[i].open()
					i++
					if err != nil {
						// Sticky: re-polling must not skip this input and
						// serve a silently incomplete union.
						sticky = err
						return nil, err
					}
				}
				t, err := cur.Next()
				if err == io.EOF {
					cur.Close()
					cur = nil
					continue
				}
				if err != nil {
					sticky = err
				}
				return t, err
			}
		}, close: func() error {
			if cur != nil {
				err := cur.Close()
				cur = nil
				return err
			}
			return nil
		}}, nil
	}}
}

// appendKey renders the indexed columns of t into dst as a comparable
// key. It replaces a fmt.Sprintf per column with type-switched appends
// into a caller-reused scratch buffer — the hot path of every shuffle.
// The rendering matches %v for strings, ints, bools, and floats, so key
// equality and sort order are unchanged for those kinds; []byte
// deliberately appends raw bytes instead of %v's "[104 105]" form
// (cheaper, still deterministic — byte-slice key columns group by
// content, and, like the numeric kinds, collide with a string rendering
// the same bytes).
//
// Components are terminated with 0x00 0x01, and any 0x00 inside a
// rendered value is escaped as 0x00 0xFF (the memcomparable idiom), so a
// NUL embedded in one column can never shift a component boundary and
// merge two distinct multi-column keys. The escape keeps lexicographic
// order: a component's end (0x00 0x01) sorts below any continuation.
func appendKey(dst []byte, t Tuple, idx []int) []byte {
	for _, i := range idx {
		n := len(dst)
		dst = appendKeyValue(dst, t[i])
		if bytes.IndexByte(dst[n:], 0) >= 0 {
			// Rare path: rewrite the component with NULs escaped.
			esc := make([]byte, 0, (len(dst)-n)+2)
			for _, b := range dst[n:] {
				if b == 0 {
					esc = append(esc, 0, 0xFF)
				} else {
					esc = append(esc, b)
				}
			}
			dst = append(dst[:n], esc...)
		}
		dst = append(dst, 0, 1)
	}
	return dst
}

func appendKeyValue(dst []byte, v Value) []byte {
	switch x := v.(type) {
	case string:
		return append(dst, x...)
	case int64:
		return strconv.AppendInt(dst, x, 10)
	case int32:
		return strconv.AppendInt(dst, int64(x), 10)
	case int:
		return strconv.AppendInt(dst, int64(x), 10)
	case bool:
		if x {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	case float64:
		return strconv.AppendFloat(dst, x, 'g', -1, 64)
	case []byte:
		return append(dst, x...)
	default:
		return fmt.Appendf(dst, "%v", x)
	}
}

// Grouped is the result of a GroupBy: sorted spill runs awaiting
// reduce-side merge passes. Every reduce pass is a streaming k-way merge
// (merge.go): groups arrive in ascending key order — globally, for free,
// because the runs are sorted — and within each group tuples arrive in
// input order (GroupBy) or ordered by the requested column
// (GroupByOrdered). A Grouped supports multiple reduce passes (NumGroups,
// then Aggregate, say); Close releases its spill files.
type Grouped struct {
	job     *Job
	schema  Schema
	keyCols []string
	keyIdx  []int
	st      *spillTable
	all     bool // GROUP ALL: a single global group, present even when empty
	groups  int  // distinct keys; -1 until a reduce pass has counted
}

// GroupBy shuffles the dataset by the named key columns — the reduce-side
// step the paper's session reconstruction pays on every raw-log query
// ("essentially, a large group-by across potentially terabytes of data").
// The input is consumed here; partitions spill sorted runs under
// Job.MemoryBudget. Each group's tuples are delivered in input order.
func (d *Dataset) GroupBy(keyCols ...string) (*Grouped, error) {
	return d.groupBy(noSort, keyCols)
}

// GroupByOrdered is GroupBy with a secondary sort: each group's tuples are
// delivered ordered ascending by orderCol (ties in input order) — the
// sort-merge shuffle's "secondary sort" idiom that lets sessionization and
// funnel walks consume each group without re-sorting it.
func (d *Dataset) GroupByOrdered(orderCol string, keyCols ...string) (*Grouped, error) {
	return d.GroupByOrderedColumns([]Order{{Col: orderCol}}, keyCols...)
}

// Order is one column of a multi-column sort: the named column, descending
// when Desc. OrderByColumns and GroupByOrderedColumns take a list of them
// applied in sequence, ties within all of them broken by input order.
type Order struct {
	Col  string
	Desc bool
}

// resolveOrders maps a public Order list onto column indexes.
func (d *Dataset) resolveOrders(orders []Order) (sortSpec, error) {
	spec := make(sortSpec, len(orders))
	for i, o := range orders {
		j, err := d.schema.Index(o.Col)
		if err != nil {
			return nil, err
		}
		spec[i] = sortKey{col: j, desc: o.Desc}
	}
	return spec, nil
}

// GroupByOrderedColumns is GroupByOrdered with a multi-column secondary
// sort: each group's tuples are delivered ordered by each Order in turn
// (ties in input order).
func (d *Dataset) GroupByOrderedColumns(orderCols []Order, keyCols ...string) (*Grouped, error) {
	spec, err := d.resolveOrders(orderCols)
	if err != nil {
		return nil, err
	}
	return d.groupBy(spec, keyCols)
}

func (d *Dataset) groupBy(order sortSpec, keyCols []string) (*Grouped, error) {
	idx := make([]int, len(keyCols))
	for i, c := range keyCols {
		j, err := d.schema.Index(c)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	st := newSpillTable(d.job, idx, order, 0)
	if err := st.fill(d); err != nil {
		return nil, err
	}
	d.job.stats.reduceTasks.Add(1) // base reduce wave; topped up when the group count is known
	return &Grouped{job: d.job, schema: d.schema, keyCols: keyCols, keyIdx: idx, st: st, groups: -1}, nil
}

// GroupAll groups every tuple into a single group (Pig's GROUP ... ALL),
// the idiom that ends the paper's counting scripts. The single group still
// spills under the memory budget; an empty input still has its one group.
func (d *Dataset) GroupAll() (*Grouped, error) {
	st := newSpillTable(d.job, nil, noSort, 1)
	if err := st.fill(d); err != nil {
		return nil, err
	}
	d.job.stats.reduceTasks.Add(1)
	g := &Grouped{job: d.job, schema: d.schema, st: st, all: true, groups: -1}
	g.setGroups(1)
	return g, nil
}

// setGroups records the group count the first time a reduce pass learns
// it, topping the base reducer charged at construction up to the
// group-scaled wave.
func (g *Grouped) setGroups(n int) {
	if g.groups >= 0 {
		return
	}
	g.groups = n
	g.job.stats.reduceTasks.Add(int64(reducersFor(n) - 1))
}

// Close removes the spill files backing the sorted runs. The Grouped
// cannot be reduced again afterwards.
func (g *Grouped) Close() error { return g.st.Close() }

// mergePass drives one streaming merge-reduce: the sorted runs of every
// partition merge into one globally ordered stream, each tuple folds into
// the current group's state, and a key change emits the finished group.
// There is no per-group index map and no output re-sort — peak memory is
// the merge fan-in (one buffered tuple per run) plus one group state. It
// returns the number of distinct groups; this loop is the shared skeleton
// under NumGroups, EachGroup, and Aggregate. With Job.Parallelism > 1 and
// at least two populated hash partitions, the fold fans out per partition
// (mergePassParallel) with identical emitted output.
func mergePass[S any](g *Grouped, newState func(first Tuple) S, fold func(S, Tuple) S, emit func(s S) error) (int, error) {
	g.job.stats.mergePasses.Add(1)
	tmMergePasses.Inc()
	defer tmMergePassNs.ObserveSince(time.Now())
	if g.job.parallelism() > 1 {
		if parts := g.st.parallelParts(); parts != nil {
			return mergePassParallel(g.st, parts, newState, fold, emit)
		}
	}
	m, err := g.st.mergeAll()
	if err != nil {
		return 0, err
	}
	defer m.Close()
	total := 0
	var curKey []byte
	var state S
	open := false
	for {
		key, t, err := m.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
		if !open || !bytes.Equal(key, curKey) {
			if open && emit != nil {
				if err := emit(state); err != nil {
					return 0, err
				}
			}
			curKey = append(curKey[:0], key...)
			state = newState(t)
			open = true
			total++
		}
		state = fold(state, t)
	}
	if open && emit != nil {
		if err := emit(state); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// NumGroups returns the number of distinct keys, counting them with a
// streaming merge if no reduce has run yet; nothing is buffered per group.
func (g *Grouped) NumGroups() (int, error) {
	if g.groups >= 0 {
		return g.groups, nil
	}
	total, err := mergePass(g,
		func(Tuple) struct{} { return struct{}{} },
		func(s struct{}, _ Tuple) struct{} { return s },
		nil)
	if err != nil {
		return 0, err
	}
	if g.all && total == 0 {
		total = 1
	}
	g.setGroups(total)
	return total, nil
}

// EachGroup streams every group through fn: groups in ascending key order,
// each group's tuples in its delivery order (input order, or the
// GroupByOrdered column). Only one group is materialized at a time, so a
// raw-log sessionization walks a spilled day in group-sized memory. A fn
// error aborts the merge.
func (g *Grouped) EachGroup(fn func(key Tuple, group []Tuple) error) error {
	total, err := mergePass(g,
		func(Tuple) []Tuple { return nil },
		func(group []Tuple, t Tuple) []Tuple { return append(group, t) },
		func(group []Tuple) error {
			keyVals := make(Tuple, len(g.keyIdx))
			for i, idx := range g.keyIdx {
				keyVals[i] = group[0][idx]
			}
			return fn(keyVals, group)
		})
	if err != nil {
		return err
	}
	if g.all && total == 0 {
		// GROUP ALL of an empty relation still visits its single group.
		total = 1
		if err := fn(Tuple{}, nil); err != nil {
			return err
		}
	}
	g.setGroups(total)
	return nil
}

// ForEachGroup reduces each group to one tuple. The emitted schema is the
// key columns followed by outCols; the relation arrives already in global
// key order off the merge. fn sees each group's tuples in delivery order
// (input order, or the GroupByOrdered column).
func (g *Grouped) ForEachGroup(outCols Schema, fn func(key Tuple, group []Tuple) Tuple) (*Dataset, error) {
	schema := append(append(Schema(nil), g.keyCols...), outCols...)
	var rows []Tuple
	err := g.EachGroup(func(key Tuple, group []Tuple) error {
		if res := fn(key, group); res != nil {
			rows = append(rows, append(append(Tuple(nil), key...), res...))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	g.job.stats.outputRecords.Add(int64(len(rows)))
	return NewDataset(g.job, schema, rows), nil
}

// Agg is one aggregate computed per group.
type Agg struct {
	Name string
	Col  string // input column; ignored by COUNT(*)
	Kind AggKind
}

// AggKind selects the aggregate function.
type AggKind int

// Aggregate kinds.
const (
	AggCount AggKind = iota // COUNT(*)
	AggSum
	AggMin
	AggMax
	AggAvg
	AggCountDistinct
)

// Count is COUNT(*) named as out.
func Count(out string) Agg { return Agg{Name: out, Kind: AggCount} }

// Sum is SUM(col) over int64 or float64 columns.
func Sum(col, out string) Agg { return Agg{Name: out, Col: col, Kind: AggSum} }

// Min is MIN(col) over int64 columns.
func Min(col, out string) Agg { return Agg{Name: out, Col: col, Kind: AggMin} }

// Max is MAX(col) over int64 columns.
func Max(col, out string) Agg { return Agg{Name: out, Col: col, Kind: AggMax} }

// Avg is AVG(col) over numeric columns, producing float64.
func Avg(col, out string) Agg { return Agg{Name: out, Col: col, Kind: AggAvg} }

// CountDistinct counts distinct values of col per group.
func CountDistinct(col, out string) Agg { return Agg{Name: out, Col: col, Kind: AggCountDistinct} }

func toF(v Value) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case int32:
		return float64(x)
	case int:
		return float64(x)
	case float64:
		return x
	}
	return 0
}

func toI(v Value) int64 {
	switch x := v.(type) {
	case int64:
		return x
	case int32:
		return int64(x)
	case int:
		return int64(x)
	case float64:
		return int64(x)
	}
	return 0
}

// aggCell is the incremental state of one aggregate over one group. The
// fold never materializes the group's tuples, so the reduce side of an
// Aggregate holds one group's cells at a time, not the group's tuples.
type aggCell struct {
	count    int64
	isum     int64
	fsum     float64
	extreme  int64
	started  bool
	distinct map[string]struct{}
}

func (c *aggCell) fold(kind AggKind, v Value, scratch []byte) []byte {
	switch kind {
	case AggCount:
		c.count++
	case AggSum:
		c.isum += toI(v)
	case AggMin:
		if x := toI(v); !c.started || x < c.extreme {
			c.extreme = x
		}
		c.started = true
	case AggMax:
		if x := toI(v); !c.started || x > c.extreme {
			c.extreme = x
		}
		c.started = true
	case AggAvg:
		c.fsum += toF(v)
		c.count++
	case AggCountDistinct:
		scratch = appendKeyValue(scratch[:0], v)
		if c.distinct == nil {
			c.distinct = make(map[string]struct{})
		}
		if _, ok := c.distinct[string(scratch)]; !ok {
			c.distinct[string(scratch)] = struct{}{}
		}
	}
	return scratch
}

func (c *aggCell) final(kind AggKind) Value {
	switch kind {
	case AggCount:
		return c.count
	case AggSum:
		return c.isum
	case AggMin, AggMax:
		return c.extreme
	case AggAvg:
		if c.count == 0 {
			return float64(0)
		}
		return c.fsum / float64(c.count)
	case AggCountDistinct:
		return int64(len(c.distinct))
	}
	return nil
}

// Aggregate computes the given aggregates for every group with a streaming
// merge-fold: the sorted runs stream by once and only the *current*
// group's aggregate cells are live (per distinct value for CountDistinct),
// so even a spilled GROUP ALL aggregates in fan-in-bounded memory. Output
// rows arrive in global key order.
func (g *Grouped) Aggregate(aggs ...Agg) (*Dataset, error) {
	idx := make([]int, len(aggs))
	outCols := make(Schema, len(aggs))
	for i, a := range aggs {
		outCols[i] = a.Name
		if a.Kind == AggCount {
			idx[i] = -1
			continue
		}
		j, err := g.schema.Index(a.Col)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	schema := append(append(Schema(nil), g.keyCols...), outCols...)

	// scratch lives in the group state, not a shared closure variable:
	// under a parallel reduce, folds of different groups run on
	// concurrent partition workers.
	type groupState struct {
		keyVals Tuple
		cells   []aggCell
		scratch []byte
	}
	var rows []Tuple
	total, err := mergePass(g,
		func(t Tuple) *groupState {
			keyVals := make(Tuple, len(g.keyIdx))
			for i, kidx := range g.keyIdx {
				keyVals[i] = t[kidx]
			}
			return &groupState{keyVals: keyVals, cells: make([]aggCell, len(aggs))}
		},
		func(st *groupState, t Tuple) *groupState {
			for ai, a := range aggs {
				var v Value
				if idx[ai] >= 0 {
					v = t[idx[ai]]
				}
				st.scratch = st.cells[ai].fold(a.Kind, v, st.scratch)
			}
			return st
		},
		func(st *groupState) error {
			row := append(Tuple(nil), st.keyVals...)
			for ai, a := range aggs {
				row = append(row, st.cells[ai].final(a.Kind))
			}
			rows = append(rows, row)
			return nil
		})
	if err != nil {
		return nil, err
	}
	if g.all && total == 0 {
		// GROUP ALL of an empty relation still emits its single row of
		// zero-valued aggregates.
		total = 1
		row := Tuple{}
		var zero aggCell
		for _, a := range aggs {
			row = append(row, zero.final(a.Kind))
		}
		rows = append(rows, row)
	}
	g.setGroups(total)
	g.job.stats.outputRecords.Add(int64(len(rows)))
	return NewDataset(g.job, schema, rows), nil
}

// Join sort-merge-joins two datasets on equality of leftCol and rightCol:
// both sides shuffle into sorted spill runs under Job.MemoryBudget, and
// the merge advances the two ordered streams in lockstep — buffering only
// the right tuples of the *current* key, never a whole partition's hash
// table. Output schema is the left schema followed by the right schema
// with joined-column collisions suffixed "_r"; rows arrive in key order,
// left-input order within a key. Close the returned dataset to release the
// spill files.
func (d *Dataset) Join(other *Dataset, leftCol, rightCol string) (*Dataset, error) {
	li, err := d.schema.Index(leftCol)
	if err != nil {
		return nil, err
	}
	ri, err := other.schema.Index(rightCol)
	if err != nil {
		return nil, err
	}
	lt := newSpillTable(d.job, []int{li}, noSort, 0)
	if err := lt.fill(d); err != nil {
		return nil, err
	}
	rt := newSpillTable(d.job, []int{ri}, noSort, lt.numParts())
	if err := rt.fill(other); err != nil {
		lt.Close()
		return nil, err
	}
	// Both sides shuffled: one base reduce wave per side now (as the eager
	// engine charged), topped up when a full merge learns the key count.
	d.job.stats.reduceTasks.Add(2)
	schema := append(Schema(nil), d.schema...)
	for _, c := range other.schema {
		if _, err := d.schema.Index(c); err == nil {
			schema = append(schema, c+"_r")
		} else {
			schema = append(schema, c)
		}
	}
	js := &joinState{job: d.job, lt: lt, rt: rt}
	return &Dataset{job: d.job, schema: schema, open: js.open, cleanup: js.close}, nil
}

// joinState is the sorted both-sides shuffle behind a Join output; every
// iteration of the output dataset merges it again.
type joinState struct {
	job    *Job
	lt, rt *spillTable
}

func (s *joinState) open() (Iterator, error) {
	s.job.stats.mergePasses.Add(1)
	tmMergePasses.Inc()
	if it := s.openParallel(); it != nil {
		return it, nil
	}
	lm, err := s.lt.mergeAll()
	if err != nil {
		return nil, err
	}
	rm, err := s.rt.mergeAll()
	if err != nil {
		lm.Close()
		return nil, err
	}
	return &joinIter{s: s, lm: lm, rm: rm}, nil
}

func (s *joinState) close() error {
	err := s.lt.Close()
	if rerr := s.rt.Close(); err == nil {
		err = rerr
	}
	return err
}

// joinIter merges the two key-ordered streams. The right stream holds a
// one-record lookahead; matches is the right group of the current left
// key, reused key over key.
type joinIter struct {
	s      *joinState
	lm, rm *mergeIter

	cur     Tuple // current left tuple
	matches []Tuple
	mi      int
	matched []byte // key of the buffered matches
	haveKey bool

	rKey  []byte // right lookahead
	rTup  Tuple
	rOK   bool
	rDone bool

	rSeen         bool
	rLast         []byte // last right key, for the distinct count
	distinctRight int
	charged       bool

	err error // sticky: a failed side cannot be skipped
}

func (it *joinIter) Next() (Tuple, error) {
	if it.err != nil {
		return nil, it.err
	}
	t, err := it.next()
	if err != nil && err != io.EOF {
		it.err = err
	}
	return t, err
}

func (it *joinIter) next() (Tuple, error) {
	for {
		if it.mi < len(it.matches) {
			rt := it.matches[it.mi]
			it.mi++
			nt := make(Tuple, 0, len(it.cur)+len(rt))
			nt = append(nt, it.cur...)
			nt = append(nt, rt...)
			it.s.job.stats.outputRecords.Add(1)
			return nt, nil
		}
		lkey, lt, err := it.lm.next()
		if err == io.EOF {
			// Finish the right-side key count so the reduce wave is charged
			// as the hash engine charged it.
			if err := it.drainRight(); err != nil {
				return nil, err
			}
			if !it.charged {
				it.charged = true
				it.s.job.stats.reduceTasks.Add(int64(2 * (reducersFor(it.distinctRight) - 1)))
			}
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		if !it.haveKey || !bytes.Equal(lkey, it.matched) {
			if err := it.seekRight(lkey); err != nil {
				return nil, err
			}
		}
		it.cur = lt
		it.mi = 0
	}
}

// advanceRight loads the right lookahead, counting distinct right keys as
// they stream past.
func (it *joinIter) advanceRight() (bool, error) {
	if it.rDone {
		return false, nil
	}
	key, t, err := it.rm.next()
	if err == io.EOF {
		it.rDone = true
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if !it.rSeen || !bytes.Equal(key, it.rLast) {
		it.rSeen = true
		it.distinctRight++
		it.rLast = append(it.rLast[:0], key...)
	}
	it.rKey = append(it.rKey[:0], key...)
	it.rTup = t
	it.rOK = true
	return true, nil
}

// seekRight positions the right stream at key k, buffering the right
// tuples that match it.
func (it *joinIter) seekRight(k []byte) error {
	it.matches = it.matches[:0]
	it.matched = append(it.matched[:0], k...)
	it.haveKey = true
	for {
		if !it.rOK {
			ok, err := it.advanceRight()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		switch c := bytes.Compare(it.rKey, k); {
		case c < 0:
			it.rOK = false
		case c == 0:
			it.matches = append(it.matches, it.rTup)
			it.rOK = false
		default:
			return nil // lookahead kept for a later left key
		}
	}
}

// drainRight consumes the rest of the right stream for key counting.
func (it *joinIter) drainRight() error {
	it.rOK = false
	for {
		ok, err := it.advanceRight()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		it.rOK = false
	}
}

func (it *joinIter) Close() error {
	err := it.lm.Close()
	if rerr := it.rm.Close(); err == nil {
		err = rerr
	}
	return err
}

// Distinct removes duplicate tuples (whole-row comparison). It is an
// external operator: rows shuffle into sorted runs under Job.MemoryBudget
// and the merge emits the first occurrence of each key, so deduplication
// holds no seen-set — one key comparison per tuple. Output arrives in
// ascending (whole-row) key order.
func (d *Dataset) Distinct() *Dataset {
	idx := make([]int, len(d.schema))
	for i := range idx {
		idx[i] = i
	}
	return &Dataset{job: d.job, schema: d.schema, cleanup: d.cleanup, open: func() (Iterator, error) {
		st := newSpillTable(d.job, idx, noSort, 0)
		if err := st.fill(d); err != nil {
			return nil, err
		}
		d.job.stats.reduceTasks.Add(1) // base wave; topped up at end of merge
		d.job.stats.mergePasses.Add(1)
		tmMergePasses.Inc()
		if d.job.parallelism() > 1 {
			if parts := st.parallelParts(); parts != nil {
				return newDistinctParallel(d.job, st, parts), nil
			}
		}
		m, err := st.mergeAll()
		if err != nil {
			st.Close()
			return nil, err
		}
		return &distinctIter{job: d.job, st: st, m: m}, nil
	}}
}

type distinctIter struct {
	job     *Job
	st      *spillTable
	m       *mergeIter
	last    []byte
	started bool
	total   int
	charged bool
	err     error // sticky: a failed merge cannot be skipped
}

func (it *distinctIter) Next() (Tuple, error) {
	if it.err != nil {
		return nil, it.err
	}
	for {
		key, t, err := it.m.next()
		if err == io.EOF {
			if !it.charged {
				it.charged = true
				it.job.stats.reduceTasks.Add(int64(reducersFor(it.total) - 1))
			}
			return nil, io.EOF
		}
		if err != nil {
			it.err = err
			return nil, err
		}
		if it.started && bytes.Equal(key, it.last) {
			continue
		}
		it.started = true
		it.last = append(it.last[:0], key...)
		it.total++
		return t, nil
	}
}

func (it *distinctIter) Close() error {
	err := it.m.Close()
	if cerr := it.st.Close(); err == nil {
		err = cerr
	}
	return err
}

// OrderBy sorts by the named column; numeric columns sort numerically and
// the sort is stable (equal keys keep input order, for descending too).
// With Job.MemoryBudget unset the input is materialized and sorted in
// memory, as ever. Under a budget it is a true external merge sort: the
// input streams into sorted spill runs through the shared run machinery —
// never through Tuples() — and every iteration of the result is a k-way
// merge, so peak memory is the run fan-in. Close the returned dataset to
// release the runs (and any operator state upstream).
func (d *Dataset) OrderBy(col string, ascending bool) (*Dataset, error) {
	return d.OrderByColumns(Order{Col: col, Desc: !ascending})
}

// OrderByColumns sorts by multiple columns applied in sequence — the
// multi-column generalization of OrderBy with the same stability and
// in-memory/external duality.
func (d *Dataset) OrderByColumns(orders ...Order) (*Dataset, error) {
	spec, err := d.resolveOrders(orders)
	if err != nil {
		return nil, err
	}
	if d.job.MemoryBudget <= 0 {
		out, err := d.Tuples()
		if err != nil {
			return nil, err
		}
		sort.SliceStable(out, func(a, b int) bool {
			for _, k := range spec {
				if c := compareValues(out[a][k.col], out[b][k.col]); c != 0 {
					if k.desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		sorted := NewDataset(d.job, d.schema, out)
		sorted.cleanup = d.cleanup // closing the sorted view frees upstream spill state too
		return sorted, nil
	}
	st := newSpillTable(d.job, nil, spec, 1)
	if err := st.fill(d); err != nil {
		return nil, err
	}
	d.job.stats.reduceTasks.Add(1) // the sort's reduce wave
	upstream := d.cleanup
	cleanup := func() error {
		err := st.Close()
		if upstream != nil {
			if uerr := upstream(); err == nil {
				err = uerr
			}
		}
		return err
	}
	job := d.job
	return &Dataset{job: job, schema: d.schema, cleanup: cleanup, open: func() (Iterator, error) {
		job.stats.mergePasses.Add(1)
		tmMergePasses.Inc()
		m, err := st.mergeAll()
		if err != nil {
			return nil, err
		}
		return &mergeTupleIter{m: m}, nil
	}}, nil
}

// mergeTupleIter adapts a run merge into a plain tuple Iterator.
type mergeTupleIter struct{ m *mergeIter }

func (it *mergeTupleIter) Next() (Tuple, error) {
	_, t, err := it.m.next()
	return t, err
}

func (it *mergeTupleIter) Close() error { return it.m.Close() }

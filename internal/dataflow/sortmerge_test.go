package dataflow

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"unilog/internal/recordio"
)

// TestMergeReduceBoundedByRunFanIn is the acceptance property of the
// sort-merge rework: a reduce pass over a spilled shuffle is a k-way merge
// whose live state is one buffered tuple per run — tracked by the
// MergeRuns/PeakRunFanIn stats — and never a per-group hash map. The
// fan-in must be explained entirely by the spilled runs plus at most one
// sorted residue per partition, independent of the 400 groups.
func TestMergeReduceBoundedByRunFanIn(t *testing.T) {
	j := spillJob(t, 4096)
	d := wideDataset(j, 4000, 400, 11)
	g, err := d.GroupBy("k")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Aggregate(Count("n"), Sum("v", "sum")); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.SpillRuns == 0 {
		t.Fatal("budgeted shuffle wrote no sorted runs")
	}
	if st.MergePasses == 0 || st.MergeRuns == 0 {
		t.Fatalf("merge stats not recorded: %+v", st)
	}
	if st.PeakRunFanIn < 2 {
		t.Fatalf("peak fan-in = %d, want a real multi-run merge", st.PeakRunFanIn)
	}
	if max := st.SpillRuns + g.st.numParts(); st.PeakRunFanIn > max {
		t.Fatalf("fan-in %d exceeds runs+residues %d — reduce memory not bounded by run fan-in", st.PeakRunFanIn, max)
	}
}

// TestGroupByOrderedDeliversSortedGroups: with a secondary sort column the
// merge hands each group to the reducer already ordered by that column,
// ties in input order — no per-group re-sort.
func TestGroupByOrderedDeliversSortedGroups(t *testing.T) {
	for _, budget := range []int64{0, 256} {
		j := spillJob(t, budget)
		rng := rand.New(rand.NewSource(7))
		var tuples []Tuple
		for i := 0; i < 1200; i++ {
			tuples = append(tuples, Tuple{
				fmt.Sprintf("u%02d", rng.Intn(20)),
				int64(rng.Intn(50)), // deliberately many ties
				int64(i),            // input position
			})
		}
		g, err := NewDataset(j, Schema{"u", "ts", "pos"}, tuples).GroupByOrdered("ts", "u")
		if err != nil {
			t.Fatal(err)
		}
		groups := 0
		var lastKey string
		err = g.EachGroup(func(key Tuple, group []Tuple) error {
			groups++
			k := key[0].(string)
			if groups > 1 && k <= lastKey {
				t.Fatalf("budget %d: groups out of key order: %q after %q", budget, k, lastKey)
			}
			lastKey = k
			for i := 1; i < len(group); i++ {
				a, b := group[i-1], group[i]
				if a[1].(int64) > b[1].(int64) {
					t.Fatalf("budget %d: group %q not ordered by ts: %v then %v", budget, k, a, b)
				}
				if a[1].(int64) == b[1].(int64) && a[2].(int64) > b[2].(int64) {
					t.Fatalf("budget %d: equal ts lost input order in group %q: %v then %v", budget, k, a, b)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if groups != 20 {
			t.Fatalf("budget %d: groups = %d, want 20", budget, groups)
		}
		if budget > 0 && j.Stats().SpillRuns == 0 {
			t.Fatal("budgeted ordered group-by never spilled a run")
		}
		g.Close()
	}
}

func TestGroupByOrderedUnknownColumn(t *testing.T) {
	d := NewDataset(emptyJob(), Schema{"a"}, []Tuple{{int64(1)}})
	if _, err := d.GroupByOrdered("nope", "a"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("err = %v", err)
	}
}

// mixedValue draws a value from a deliberately mixed-type domain so sort
// columns contain int64s, floats, and strings side by side.
func mixedValue(rng *rand.Rand) Value {
	switch rng.Intn(4) {
	case 0:
		return int64(rng.Intn(40) - 20)
	case 1:
		return float64(rng.Intn(40)) / 4
	case 2:
		return fmt.Sprintf("s%02d", rng.Intn(30))
	default:
		return int64(rng.Intn(10)) // extra duplicate mass
	}
}

// TestSortMergePropertyBudgetSweep is the satellite property: across
// random relations and a budget sweep, GroupBy/Aggregate, ForEachGroup,
// Distinct, and OrderBy (both directions, including mixed numeric/string
// sort columns and heavy duplicates) produce relations identical — rows
// *and* order — to the in-memory path.
func TestSortMergePropertyBudgetSweep(t *testing.T) {
	budgets := []int64{128, 1024, 16 << 10}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed + 900))
		n := 300 + rng.Intn(1200)
		build := func(j *Job) *Dataset {
			r := rand.New(rand.NewSource(seed))
			tuples := make([]Tuple, n)
			for i := range tuples {
				tuples[i] = Tuple{
					fmt.Sprintf("k%02d", r.Intn(25)),
					mixedValue(r),
					int64(i),
				}
			}
			return NewDataset(j, Schema{"k", "v", "pos"}, tuples)
		}
		type result struct {
			agg, red, distinct, asc, desc string
			spilled                       int
		}
		run := func(budget int64) result {
			j := spillJob(t, budget)
			var res result
			g, err := build(j).GroupBy("k")
			if err != nil {
				t.Fatal(err)
			}
			agg, err := g.Aggregate(Count("n"), Min("pos", "min"), Max("pos", "max"), CountDistinct("v", "dv"))
			if err != nil {
				t.Fatal(err)
			}
			aggRows, err := agg.Tuples()
			if err != nil {
				t.Fatal(err)
			}
			red, err := g.ForEachGroup(Schema{"size", "first"}, func(key Tuple, group []Tuple) Tuple {
				return Tuple{int64(len(group)), group[0][2]}
			})
			if err != nil {
				t.Fatal(err)
			}
			redRows, err := red.Tuples()
			if err != nil {
				t.Fatal(err)
			}
			g.Close()
			dis, err := build(j).Project("k")
			if err != nil {
				t.Fatal(err)
			}
			disRows, err := dis.Distinct().Tuples()
			if err != nil {
				t.Fatal(err)
			}
			sortRows := func(ascending bool) string {
				sorted, err := build(j).OrderBy("v", ascending)
				if err != nil {
					t.Fatal(err)
				}
				rows, err := sorted.Tuples()
				if err != nil {
					t.Fatal(err)
				}
				if err := sorted.Close(); err != nil {
					t.Fatal(err)
				}
				return fmt.Sprintf("%v", rows)
			}
			res.asc = sortRows(true)
			res.desc = sortRows(false)
			res.agg = fmt.Sprintf("%v", aggRows)
			res.red = fmt.Sprintf("%v", redRows)
			res.distinct = fmt.Sprintf("%v", disRows)
			res.spilled = j.Stats().SpillRuns
			if files := spillFiles(t, j); len(files) != 0 {
				t.Fatalf("seed %d budget %d left spill files: %v", seed, budget, files)
			}
			return res
		}
		ref := run(0)
		if ref.spilled != 0 {
			t.Fatalf("seed %d: in-memory reference spilled", seed)
		}
		for _, budget := range budgets {
			got := run(budget)
			if budget <= 1024 && got.spilled == 0 {
				t.Fatalf("seed %d budget %d: never spilled a run (n=%d)", seed, budget, n)
			}
			for what, pair := range map[string][2]string{
				"aggregate":    {ref.agg, got.agg},
				"foreachgroup": {ref.red, got.red},
				"distinct":     {ref.distinct, got.distinct},
				"orderby-asc":  {ref.asc, got.asc},
				"orderby-desc": {ref.desc, got.desc},
			} {
				if pair[0] != pair[1] {
					t.Fatalf("seed %d budget %d: %s diverged from in-memory path\nmem:   %.200s\nspill: %.200s",
						seed, budget, what, pair[0], pair[1])
				}
			}
		}
	}
}

// TestExternalOrderByNeverMaterializes: a relation far larger than the
// budget sorts through spilled runs (the Tuples() escape hatch would blow
// the budget's purpose), streams back fully ordered and stable on
// duplicates, supports re-iteration, and removes its runs on Close.
func TestExternalOrderByNeverMaterializes(t *testing.T) {
	j := spillJob(t, 1024)
	n := 5000
	tuples := make([]Tuple, n)
	rng := rand.New(rand.NewSource(42))
	for i := range tuples {
		tuples[i] = Tuple{int64(rng.Intn(100)), int64(i)}
	}
	sorted, err := NewDataset(j, Schema{"v", "pos"}, tuples).OrderBy("v", true)
	if err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.SpilledRecords == 0 || st.SpillRuns < 2 {
		t.Fatalf("OrderBy under budget did not run externally: %+v", st)
	}
	if len(spillFiles(t, j)) == 0 {
		t.Fatal("no run files on disk while the sorted view is live")
	}
	check := func() {
		var prev Tuple
		count := 0
		err := sorted.Each(func(tp Tuple) error {
			if prev != nil {
				if prev[0].(int64) > tp[0].(int64) {
					t.Fatalf("out of order: %v then %v", prev, tp)
				}
				if prev[0].(int64) == tp[0].(int64) && prev[1].(int64) > tp[1].(int64) {
					t.Fatalf("unstable on duplicates: %v then %v", prev, tp)
				}
			}
			prev = tp
			count++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if count != n {
			t.Fatalf("sorted rows = %d, want %d", count, n)
		}
	}
	check()
	check() // the external sort is re-iterable until closed
	if err := sorted.Close(); err != nil {
		t.Fatal(err)
	}
	if left := spillFiles(t, j); len(left) != 0 {
		t.Fatalf("run files survived Close: %v", left)
	}
	if err := sorted.Each(func(Tuple) error { return nil }); err == nil {
		t.Fatal("iterating a closed external sort succeeded")
	}
}

// TestOrderByDescStableOnDuplicates: descending order also keeps equal
// keys in input order, on both paths.
func TestOrderByDescStableOnDuplicates(t *testing.T) {
	for _, budget := range []int64{0, 128} {
		j := spillJob(t, budget)
		d := NewDataset(j, Schema{"k", "tag"}, []Tuple{
			{int64(1), "a"}, {int64(2), "b"}, {int64(1), "c"}, {int64(2), "d"}, {int64(1), "e"},
		})
		sorted, err := d.OrderBy("k", false)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := sorted.Tuples()
		if err != nil {
			t.Fatal(err)
		}
		want := "[[2 b] [2 d] [1 a] [1 c] [1 e]]"
		if got := fmt.Sprintf("%v", rows); got != want {
			t.Fatalf("budget %d: desc order = %v, want %v", budget, got, want)
		}
		sorted.Close()
	}
}

// corruptOneRunFile flips a byte in the middle of one spill file.
func corruptOneRunFile(t *testing.T, j *Job) {
	t.Helper()
	files := spillFiles(t, j)
	if len(files) == 0 {
		t.Fatal("no spill files to corrupt")
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestExternalOrderByCorruptRun: bit rot in a sorted run surfaces
// ErrCorrupt from the merged stream, and Close still removes the files.
func TestExternalOrderByCorruptRun(t *testing.T) {
	j := spillJob(t, 512)
	d := wideDataset(j, 2000, 50, 21)
	sorted, err := d.OrderBy("v", true)
	if err != nil {
		t.Fatal(err)
	}
	corruptOneRunFile(t, j)
	serr := sorted.Each(func(Tuple) error { return nil })
	if !errors.Is(serr, recordio.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", serr)
	}
	if err := sorted.Close(); err != nil {
		t.Fatal(err)
	}
	if left := spillFiles(t, j); len(left) != 0 {
		t.Fatalf("run files survived Close after corruption: %v", left)
	}
}

// TestExternalOrderByTruncatedRun: a lost tail write surfaces
// ErrTruncated — including when the truncation makes a whole trailing run
// read as a clean-but-short section.
func TestExternalOrderByTruncatedRun(t *testing.T) {
	j := spillJob(t, 512)
	d := wideDataset(j, 2000, 50, 22)
	sorted, err := d.OrderBy("v", true)
	if err != nil {
		t.Fatal(err)
	}
	defer sorted.Close()
	files := spillFiles(t, j)
	if len(files) == 0 {
		t.Fatal("no run files to truncate")
	}
	fi, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Cut off the last half of the file: trailing runs vanish entirely,
	// which a naive section reader would serve as clean empty runs.
	if err := os.Truncate(files[0], fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	serr := sorted.Each(func(Tuple) error { return nil })
	if !errors.Is(serr, recordio.ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", serr)
	}
}

// TestMergeAbandonReleasesRunFiles: abandoning a reduce mid-merge (a fn
// error) leaves no leaked descriptors holding the runs — Close still
// removes every file.
func TestMergeAbandonReleasesRunFiles(t *testing.T) {
	j := spillJob(t, 512)
	g, err := wideDataset(j, 2000, 50, 23).GroupBy("k")
	if err != nil {
		t.Fatal(err)
	}
	if len(spillFiles(t, j)) == 0 {
		t.Fatal("no spill files under budget")
	}
	boom := errors.New("stop after first group")
	seen := 0
	err = g.EachGroup(func(key Tuple, group []Tuple) error {
		seen++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the reducer's error", err)
	}
	if seen != 1 {
		t.Fatalf("reducer ran %d times after aborting", seen)
	}
	// The abandoned merge must not have consumed the state: a fresh pass
	// still works.
	if n, err := g.NumGroups(); err != nil || n != 50 {
		t.Fatalf("NumGroups after abandoned merge = %d, %v", n, err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if left := spillFiles(t, j); len(left) != 0 {
		t.Fatalf("spill files survived Close after mid-merge abandon: %v", left)
	}
}

// TestJoinDuplicateKeysBothSides: the sort-merge join's current-key
// buffering produces the full cross product per key.
func TestJoinDuplicateKeysBothSides(t *testing.T) {
	for _, budget := range []int64{0, 128} {
		j := spillJob(t, budget)
		left := NewDataset(j, Schema{"k", "l"}, []Tuple{
			{"a", "l1"}, {"b", "l2"}, {"a", "l3"}, {"c", "l4"}, {"a", "l5"},
		})
		right := NewDataset(j, Schema{"k", "r"}, []Tuple{
			{"a", "r1"}, {"a", "r2"}, {"b", "r3"}, {"d", "r4"},
		})
		joined, err := left.Join(right, "k", "k")
		if err != nil {
			t.Fatal(err)
		}
		rows, err := joined.Tuples()
		if err != nil {
			t.Fatal(err)
		}
		// 3 left "a" x 2 right "a" + 1x1 for "b" = 7 rows.
		if len(rows) != 7 {
			t.Fatalf("budget %d: join rows = %d, want 7: %v", budget, len(rows), rows)
		}
		perKey := map[string]int{}
		for _, r := range rows {
			perKey[r[0].(string)]++
		}
		if perKey["a"] != 6 || perKey["b"] != 1 || perKey["c"] != 0 || perKey["d"] != 0 {
			t.Fatalf("budget %d: per-key join counts = %v", budget, perKey)
		}
		joined.Close()
	}
}

package dataflow

import (
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/session"
	"unilog/internal/warehouse"
)

var day = time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)

// populate writes a small, fully-deterministic day of client events: users
// 1..8, each with one session of 10 events (8 impressions, 2 clicks).
func populate(t *testing.T, fs *hdfs.FS) int {
	t.Helper()
	w := warehouse.NewWriter(fs, events.Category)
	n := 0
	for u := int64(1); u <= 8; u++ {
		for i := 0; i < 10; i++ {
			name := "web:home:::tweet:impression"
			if i%5 == 4 {
				name = "web:home:::tweet:click"
			}
			e := &events.ClientEvent{
				Name:      events.MustParseName(name),
				UserID:    u,
				SessionID: fmt.Sprintf("s%d", u),
				IP:        "10.0.0.1",
				Timestamp: day.Add(time.Duration(u)*time.Hour + time.Duration(i)*time.Minute).UnixMilli(),
			}
			if err := w.Append(e); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSchemaIndex(t *testing.T) {
	s := Schema{"a", "b", "c"}
	if i, err := s.Index("b"); err != nil || i != 1 {
		t.Fatalf("Index = %d, %v", i, err)
	}
	if _, err := s.Index("nope"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("err = %v", err)
	}
}

func TestLoadClientEvents(t *testing.T) {
	fs := hdfs.New(0)
	n := populate(t, fs)
	j := NewJob("scan", fs)
	d, err := j.LoadClientEventsDay(day)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Count()
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(n) {
		t.Fatalf("loaded %d tuples, want %d", got, n)
	}
	st := j.Stats()
	if st.MapTasks == 0 || st.BytesRead == 0 || st.RecordsRead != int64(n) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFilterProjectCount(t *testing.T) {
	fs := hdfs.New(0)
	populate(t, fs)
	j := NewJob("ctr", fs)
	d, err := j.LoadClientEventsDay(day)
	if err != nil {
		t.Fatal(err)
	}
	nameIdx := d.Schema().MustIndex("name")
	clicks := d.Filter(func(tp Tuple) bool { return tp[nameIdx] == "web:home:::tweet:click" })
	n, err := clicks.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 16 { // 2 clicks x 8 users
		t.Fatalf("clicks = %d", n)
	}
	p, err := clicks.Project("user_id", "name")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Schema()) != 2 || p.Schema()[0] != "user_id" {
		t.Fatalf("projected schema = %v", p.Schema())
	}
}

// TestSessionReconstructionGroupBy is the §3.2 claim: with unified logs "a
// simple group-by suffices to accurately reconstruct user sessions".
func TestSessionReconstructionGroupBy(t *testing.T) {
	fs := hdfs.New(0)
	populate(t, fs)
	j := NewJob("sessions", fs)
	d, err := j.LoadClientEventsDay(day)
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.GroupBy("user_id", "session_id")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if n, err := g.NumGroups(); err != nil || n != 8 {
		t.Fatalf("groups = %d, %v, want 8", n, err)
	}
	sizes, err := g.Aggregate(Count("events"))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sizes.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range rows {
		if tp[2].(int64) != 10 {
			t.Fatalf("session size = %v", tp)
		}
	}
	// Shuffle was charged: the whole relation moved.
	if j.Stats().ShuffleRecords != 80 || j.Stats().ShuffleBytes == 0 {
		t.Fatalf("shuffle stats = %+v", j.Stats())
	}
}

func TestAggregates(t *testing.T) {
	j := NewJob("agg", hdfs.New(0))
	d := NewDataset(j, Schema{"k", "v"}, []Tuple{
		{"a", int64(1)}, {"a", int64(5)}, {"a", int64(3)},
		{"b", int64(10)}, {"b", int64(10)},
	})
	g, err := d.GroupBy("k")
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Aggregate(Count("n"), Sum("v", "sum"), Min("v", "min"), Max("v", "max"), Avg("v", "avg"), CountDistinct("v", "dv"))
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := res.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 {
		t.Fatalf("rows = %d", len(tuples))
	}
	rows := map[string]Tuple{}
	for _, tp := range tuples {
		rows[tp[0].(string)] = tp
	}
	a := rows["a"]
	if a[1].(int64) != 3 || a[2].(int64) != 9 || a[3].(int64) != 1 || a[4].(int64) != 5 || a[5].(float64) != 3.0 || a[6].(int64) != 3 {
		t.Fatalf("a = %v", a)
	}
	b := rows["b"]
	if b[1].(int64) != 2 || b[6].(int64) != 1 {
		t.Fatalf("b = %v", b)
	}
}

func TestGroupAllSum(t *testing.T) {
	// The paper's counting idiom: group all, then SUM.
	j := NewJob("sum", hdfs.New(0))
	d := NewDataset(j, Schema{"c"}, []Tuple{{int64(2)}, {int64(3)}, {int64(5)}})
	g, err := d.GroupAll()
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	res, err := g.Aggregate(Sum("c", "total"))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].(int64) != 10 {
		t.Fatalf("res = %v", rows)
	}
}

func TestJoin(t *testing.T) {
	j := NewJob("join", hdfs.New(0))
	left := NewDataset(j, Schema{"user_id", "event"}, []Tuple{
		{int64(1), "click"}, {int64(2), "click"}, {int64(1), "view"},
	})
	users := NewDataset(j, Schema{"user_id", "country"}, []Tuple{
		{int64(1), "us"}, {int64(2), "uk"}, {int64(3), "jp"},
	})
	joined, err := left.Join(users, "user_id", "user_id")
	if err != nil {
		t.Fatal(err)
	}
	defer joined.Close()
	rows, err := joined.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("joined rows = %d", len(rows))
	}
	wantSchema := Schema{"user_id", "event", "user_id_r", "country"}
	for i, c := range wantSchema {
		if joined.Schema()[i] != c {
			t.Fatalf("schema = %v", joined.Schema())
		}
	}
	ci := joined.Schema().MustIndex("country")
	for _, tp := range rows {
		u := tp[0].(int64)
		want := map[int64]string{1: "us", 2: "uk"}[u]
		if tp[ci] != want {
			t.Fatalf("row %v country = %v", tp, tp[ci])
		}
	}
}

func TestOrderByLimitDistinct(t *testing.T) {
	j := NewJob("misc", hdfs.New(0))
	d := NewDataset(j, Schema{"v"}, []Tuple{{int64(3)}, {int64(1)}, {int64(2)}, {int64(1)}})
	sorted, err := d.OrderBy("v", true)
	if err != nil {
		t.Fatal(err)
	}
	asc, err := sorted.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if asc[0][0].(int64) != 1 || asc[3][0].(int64) != 3 {
		t.Fatalf("sorted = %v", asc)
	}
	descDS, err := d.OrderBy("v", false)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := descDS.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if desc[0][0].(int64) != 3 {
		t.Fatalf("desc = %v", desc)
	}
	if n, err := d.Distinct().Count(); err != nil || n != 3 {
		t.Fatalf("distinct = %d, %v", n, err)
	}
	if n, err := d.Limit(2).Count(); err != nil || n != 2 {
		t.Fatalf("limit = %d, %v", n, err)
	}
	if n, err := d.Limit(100).Count(); err != nil || n != 4 {
		t.Fatalf("limit = %d, %v", n, err)
	}
}

func TestFlatMap(t *testing.T) {
	j := NewJob("fm", hdfs.New(0))
	d := NewDataset(j, Schema{"n"}, []Tuple{{int64(2)}, {int64(3)}})
	out := d.FlatMap(Schema{"i"}, func(tp Tuple) []Tuple {
		n := tp[0].(int64)
		res := make([]Tuple, n)
		for i := range res {
			res[i] = Tuple{int64(i)}
		}
		return res
	})
	if n, err := out.Count(); err != nil || n != 5 {
		t.Fatalf("flatmap = %d rows, %v", n, err)
	}
}

// TestMapTaskReduction measures the E4 effect: loading session sequences
// spawns far fewer map tasks and reads far fewer bytes than the raw logs.
func TestMapTaskReduction(t *testing.T) {
	fs := hdfs.New(0)
	populate(t, fs)
	if _, _, _, err := session.BuildDay(fs, day, 0); err != nil {
		t.Fatal(err)
	}

	rawJob := NewJob("raw", fs)
	raw8, err := rawJob.LoadClientEventsDay(day)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw8.Count(); err != nil {
		t.Fatal(err)
	}
	seqJob := NewJob("seq", fs)
	seqs, err := seqJob.LoadSessionSequencesDay(day)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := seqs.Count(); err != nil || n != 8 {
		t.Fatalf("sessions = %d, %v", n, err)
	}
	raw, seq := rawJob.Stats(), seqJob.Stats()
	if seq.MapTasks >= raw.MapTasks {
		t.Fatalf("map tasks: seq %d >= raw %d", seq.MapTasks, raw.MapTasks)
	}
	if seq.BytesRead >= raw.BytesRead {
		t.Fatalf("bytes: seq %d >= raw %d", seq.BytesRead, raw.BytesRead)
	}
	if raw.ClusterSeconds() <= seq.ClusterSeconds() {
		t.Fatalf("cluster seconds: raw %.1f <= seq %.1f", raw.ClusterSeconds(), seq.ClusterSeconds())
	}
}

func TestRawRecordFormat(t *testing.T) {
	fs := hdfs.New(0)
	populate(t, fs)
	j := NewJob("raw-records", fs)
	dirs := HourDirs(fs, events.Category, day)
	d, err := j.LoadDirs(dirs, RawRecordFormat{})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := d.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 80 {
		t.Fatalf("records = %d", len(recs))
	}
	if _, ok := recs[0][0].([]byte); !ok {
		t.Fatalf("record type = %T", recs[0][0])
	}
}

func TestLoadMissingDir(t *testing.T) {
	j := NewJob("missing", hdfs.New(0))
	if _, err := j.Load("/nope", ClientEventFormat{}); err == nil {
		t.Fatal("load of missing dir succeeded")
	}
	// LoadDirs skips missing dirs silently.
	d, err := j.LoadDirs([]string{"/nope"}, ClientEventFormat{})
	if err != nil {
		t.Fatalf("LoadDirs err = %v", err)
	}
	if n, err := d.Count(); err != nil || n != 0 {
		t.Fatalf("LoadDirs count = %d, %v", n, err)
	}
}

// TestScanErrorIsSticky: a split that fails to decode poisons the
// iterator — pulling again repeats the error instead of resuming past the
// damaged split into a silently incomplete relation.
func TestScanErrorIsSticky(t *testing.T) {
	fs := hdfs.New(0)
	populate(t, fs)
	// Plant a garbage (non-gzip) part file inside the day.
	dir := warehouse.HourDir(events.Category, day.Add(3*time.Hour))
	if err := fs.WriteFile(dir+"/part-garbage.gz", []byte("not gzip at all")); err != nil {
		t.Fatal(err)
	}
	j := NewJob("sticky", fs)
	d, err := j.LoadClientEventsDay(day)
	if err != nil {
		t.Fatal(err)
	}
	it, err := d.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var firstErr error
	for {
		_, err := it.Next()
		if err != nil {
			firstErr = err
			break
		}
	}
	if errors.Is(firstErr, io.EOF) {
		t.Fatal("scan of damaged day reached a clean EOF")
	}
	if _, err := it.Next(); err == nil || err.Error() != firstErr.Error() {
		t.Fatalf("error not sticky: first %v, then %v", firstErr, err)
	}
	// The terminal helpers surface the same failure.
	if _, err := d.Count(); err == nil {
		t.Fatal("Count over damaged day succeeded")
	}
}

package dataflow

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/session"
	"unilog/internal/warehouse"
)

var day = time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)

// populate writes a small, fully-deterministic day of client events: users
// 1..8, each with one session of 10 events (8 impressions, 2 clicks).
func populate(t *testing.T, fs *hdfs.FS) int {
	t.Helper()
	w := warehouse.NewWriter(fs, events.Category)
	n := 0
	for u := int64(1); u <= 8; u++ {
		for i := 0; i < 10; i++ {
			name := "web:home:::tweet:impression"
			if i%5 == 4 {
				name = "web:home:::tweet:click"
			}
			e := &events.ClientEvent{
				Name:      events.MustParseName(name),
				UserID:    u,
				SessionID: fmt.Sprintf("s%d", u),
				IP:        "10.0.0.1",
				Timestamp: day.Add(time.Duration(u)*time.Hour + time.Duration(i)*time.Minute).UnixMilli(),
			}
			if err := w.Append(e); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSchemaIndex(t *testing.T) {
	s := Schema{"a", "b", "c"}
	if i, err := s.Index("b"); err != nil || i != 1 {
		t.Fatalf("Index = %d, %v", i, err)
	}
	if _, err := s.Index("nope"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("err = %v", err)
	}
}

func TestLoadClientEvents(t *testing.T) {
	fs := hdfs.New(0)
	n := populate(t, fs)
	j := NewJob("scan", fs)
	d, err := j.LoadClientEventsDay(day)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != n {
		t.Fatalf("loaded %d tuples, want %d", d.Len(), n)
	}
	st := j.Stats()
	if st.MapTasks == 0 || st.BytesRead == 0 || st.RecordsRead != int64(n) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFilterProjectCount(t *testing.T) {
	fs := hdfs.New(0)
	populate(t, fs)
	j := NewJob("ctr", fs)
	d, err := j.LoadClientEventsDay(day)
	if err != nil {
		t.Fatal(err)
	}
	nameIdx := d.Schema().MustIndex("name")
	clicks := d.Filter(func(tp Tuple) bool { return tp[nameIdx] == "web:home:::tweet:click" })
	if clicks.Count() != 16 { // 2 clicks x 8 users
		t.Fatalf("clicks = %d", clicks.Count())
	}
	p, err := clicks.Project("user_id", "name")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Schema()) != 2 || p.Schema()[0] != "user_id" {
		t.Fatalf("projected schema = %v", p.Schema())
	}
}

// TestSessionReconstructionGroupBy is the §3.2 claim: with unified logs "a
// simple group-by suffices to accurately reconstruct user sessions".
func TestSessionReconstructionGroupBy(t *testing.T) {
	fs := hdfs.New(0)
	populate(t, fs)
	j := NewJob("sessions", fs)
	d, err := j.LoadClientEventsDay(day)
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.GroupBy("user_id", "session_id")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != 8 {
		t.Fatalf("groups = %d, want 8", g.NumGroups())
	}
	sizes, err := g.Aggregate(Count("events"))
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range sizes.Tuples() {
		if tp[2].(int64) != 10 {
			t.Fatalf("session size = %v", tp)
		}
	}
	// Shuffle was charged: the whole relation moved.
	if j.Stats().ShuffleRecords != 80 || j.Stats().ShuffleBytes == 0 {
		t.Fatalf("shuffle stats = %+v", j.Stats())
	}
}

func TestAggregates(t *testing.T) {
	j := NewJob("agg", hdfs.New(0))
	d := NewDataset(j, Schema{"k", "v"}, []Tuple{
		{"a", int64(1)}, {"a", int64(5)}, {"a", int64(3)},
		{"b", int64(10)}, {"b", int64(10)},
	})
	g, err := d.GroupBy("k")
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Aggregate(Count("n"), Sum("v", "sum"), Min("v", "min"), Max("v", "max"), Avg("v", "avg"), CountDistinct("v", "dv"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d", res.Len())
	}
	rows := map[string]Tuple{}
	for _, tp := range res.Tuples() {
		rows[tp[0].(string)] = tp
	}
	a := rows["a"]
	if a[1].(int64) != 3 || a[2].(int64) != 9 || a[3].(int64) != 1 || a[4].(int64) != 5 || a[5].(float64) != 3.0 || a[6].(int64) != 3 {
		t.Fatalf("a = %v", a)
	}
	b := rows["b"]
	if b[1].(int64) != 2 || b[6].(int64) != 1 {
		t.Fatalf("b = %v", b)
	}
}

func TestGroupAllSum(t *testing.T) {
	// The paper's counting idiom: group all, then SUM.
	j := NewJob("sum", hdfs.New(0))
	d := NewDataset(j, Schema{"c"}, []Tuple{{int64(2)}, {int64(3)}, {int64(5)}})
	res, err := d.GroupAll().Aggregate(Sum("c", "total"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Tuples()[0][0].(int64) != 10 {
		t.Fatalf("res = %v", res.Tuples())
	}
}

func TestJoin(t *testing.T) {
	j := NewJob("join", hdfs.New(0))
	left := NewDataset(j, Schema{"user_id", "event"}, []Tuple{
		{int64(1), "click"}, {int64(2), "click"}, {int64(1), "view"},
	})
	users := NewDataset(j, Schema{"user_id", "country"}, []Tuple{
		{int64(1), "us"}, {int64(2), "uk"}, {int64(3), "jp"},
	})
	joined, err := left.Join(users, "user_id", "user_id")
	if err != nil {
		t.Fatal(err)
	}
	if joined.Len() != 3 {
		t.Fatalf("joined rows = %d", joined.Len())
	}
	wantSchema := Schema{"user_id", "event", "user_id_r", "country"}
	for i, c := range wantSchema {
		if joined.Schema()[i] != c {
			t.Fatalf("schema = %v", joined.Schema())
		}
	}
	ci := joined.Schema().MustIndex("country")
	for _, tp := range joined.Tuples() {
		u := tp[0].(int64)
		want := map[int64]string{1: "us", 2: "uk"}[u]
		if tp[ci] != want {
			t.Fatalf("row %v country = %v", tp, tp[ci])
		}
	}
}

func TestOrderByLimitDistinct(t *testing.T) {
	j := NewJob("misc", hdfs.New(0))
	d := NewDataset(j, Schema{"v"}, []Tuple{{int64(3)}, {int64(1)}, {int64(2)}, {int64(1)}})
	sorted, err := d.OrderBy("v", true)
	if err != nil {
		t.Fatal(err)
	}
	if sorted.Tuples()[0][0].(int64) != 1 || sorted.Tuples()[3][0].(int64) != 3 {
		t.Fatalf("sorted = %v", sorted.Tuples())
	}
	desc, err := d.OrderBy("v", false)
	if err != nil {
		t.Fatal(err)
	}
	if desc.Tuples()[0][0].(int64) != 3 {
		t.Fatalf("desc = %v", desc.Tuples())
	}
	if d.Distinct().Len() != 3 {
		t.Fatalf("distinct = %d", d.Distinct().Len())
	}
	if d.Limit(2).Len() != 2 || d.Limit(100).Len() != 4 {
		t.Fatal("limit wrong")
	}
}

func TestFlatMap(t *testing.T) {
	j := NewJob("fm", hdfs.New(0))
	d := NewDataset(j, Schema{"n"}, []Tuple{{int64(2)}, {int64(3)}})
	out := d.FlatMap(Schema{"i"}, func(tp Tuple) []Tuple {
		n := tp[0].(int64)
		res := make([]Tuple, n)
		for i := range res {
			res[i] = Tuple{int64(i)}
		}
		return res
	})
	if out.Len() != 5 {
		t.Fatalf("flatmap = %d rows", out.Len())
	}
}

// TestMapTaskReduction measures the E4 effect: loading session sequences
// spawns far fewer map tasks and reads far fewer bytes than the raw logs.
func TestMapTaskReduction(t *testing.T) {
	fs := hdfs.New(0)
	populate(t, fs)
	if _, _, _, err := session.BuildDay(fs, day, 0); err != nil {
		t.Fatal(err)
	}

	rawJob := NewJob("raw", fs)
	if _, err := rawJob.LoadClientEventsDay(day); err != nil {
		t.Fatal(err)
	}
	seqJob := NewJob("seq", fs)
	seqs, err := seqJob.LoadSessionSequencesDay(day)
	if err != nil {
		t.Fatal(err)
	}
	if seqs.Len() != 8 {
		t.Fatalf("sessions = %d", seqs.Len())
	}
	raw, seq := rawJob.Stats(), seqJob.Stats()
	if seq.MapTasks >= raw.MapTasks {
		t.Fatalf("map tasks: seq %d >= raw %d", seq.MapTasks, raw.MapTasks)
	}
	if seq.BytesRead >= raw.BytesRead {
		t.Fatalf("bytes: seq %d >= raw %d", seq.BytesRead, raw.BytesRead)
	}
	if raw.ClusterSeconds() <= seq.ClusterSeconds() {
		t.Fatalf("cluster seconds: raw %.1f <= seq %.1f", raw.ClusterSeconds(), seq.ClusterSeconds())
	}
}

func TestRawRecordFormat(t *testing.T) {
	fs := hdfs.New(0)
	populate(t, fs)
	j := NewJob("raw-records", fs)
	dirs := HourDirs(fs, events.Category, day)
	d, err := j.LoadDirs(dirs, RawRecordFormat{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 80 {
		t.Fatalf("records = %d", d.Len())
	}
	if _, ok := d.Tuples()[0][0].([]byte); !ok {
		t.Fatalf("record type = %T", d.Tuples()[0][0])
	}
}

func TestLoadMissingDir(t *testing.T) {
	j := NewJob("missing", hdfs.New(0))
	if _, err := j.Load("/nope", ClientEventFormat{}); err == nil {
		t.Fatal("load of missing dir succeeded")
	}
	// LoadDirs skips missing dirs silently.
	d, err := j.LoadDirs([]string{"/nope"}, ClientEventFormat{})
	if err != nil || d.Len() != 0 {
		t.Fatalf("LoadDirs = %v, %v", d, err)
	}
}

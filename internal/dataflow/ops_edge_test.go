package dataflow

import (
	"errors"
	"testing"

	"unilog/internal/hdfs"
)

func emptyJob() *Job { return NewJob("edge", hdfs.New(0)) }

func TestProjectUnknownColumn(t *testing.T) {
	d := NewDataset(emptyJob(), Schema{"a"}, []Tuple{{int64(1)}})
	if _, err := d.Project("nope"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("err = %v", err)
	}
}

func TestGroupByUnknownColumn(t *testing.T) {
	d := NewDataset(emptyJob(), Schema{"a"}, []Tuple{{int64(1)}})
	if _, err := d.GroupBy("nope"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("err = %v", err)
	}
}

func TestAggregateUnknownColumn(t *testing.T) {
	d := NewDataset(emptyJob(), Schema{"k", "v"}, []Tuple{{"a", int64(1)}})
	g, err := d.GroupBy("k")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Aggregate(Sum("nope", "s")); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("err = %v", err)
	}
	// COUNT(*) needs no column and must not error.
	if _, err := g.Aggregate(Count("n")); err != nil {
		t.Fatal(err)
	}
}

func TestJoinUnknownColumns(t *testing.T) {
	l := NewDataset(emptyJob(), Schema{"a"}, []Tuple{{int64(1)}})
	r := NewDataset(emptyJob(), Schema{"b"}, []Tuple{{int64(1)}})
	if _, err := l.Join(r, "zz", "b"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("err = %v", err)
	}
	if _, err := l.Join(r, "a", "zz"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("err = %v", err)
	}
}

func TestJoinNoMatches(t *testing.T) {
	j := emptyJob()
	l := NewDataset(j, Schema{"k"}, []Tuple{{"x"}})
	r := NewDataset(j, Schema{"k"}, []Tuple{{"y"}})
	out, err := l.Join(r, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if n, err := out.Count(); err != nil || n != 0 {
		t.Fatalf("join = %d rows, %v", n, err)
	}
}

func TestGroupByEmptyDataset(t *testing.T) {
	d := NewDataset(emptyJob(), Schema{"k"}, nil)
	g, err := d.GroupBy("k")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if n, err := g.NumGroups(); err != nil || n != 0 {
		t.Fatalf("groups = %d, %v", n, err)
	}
	res, err := g.Aggregate(Count("n"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := res.Count(); err != nil || n != 0 {
		t.Fatalf("agg = %d rows, %v", n, err)
	}
}

func TestOrderByStrings(t *testing.T) {
	d := NewDataset(emptyJob(), Schema{"s"}, []Tuple{{"banana"}, {"apple"}, {"cherry"}})
	out, err := d.OrderBy("s", true)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := out.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != "apple" || rows[2][0] != "cherry" {
		t.Fatalf("order = %v", rows)
	}
	if _, err := d.OrderBy("nope", true); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("err = %v", err)
	}
}

func TestOrderByStable(t *testing.T) {
	d := NewDataset(emptyJob(), Schema{"k", "tag"}, []Tuple{
		{int64(1), "first"}, {int64(1), "second"}, {int64(0), "zero"},
	})
	out, err := d.OrderBy("k", true)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := out.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if rows[1][1] != "first" || rows[2][1] != "second" {
		t.Fatalf("unstable sort: %v", rows)
	}
}

func TestForEachDropsNil(t *testing.T) {
	d := NewDataset(emptyJob(), Schema{"v"}, []Tuple{{int64(1)}, {int64(2)}, {int64(3)}})
	out := d.ForEach(Schema{"v"}, func(tp Tuple) Tuple {
		if tp[0].(int64)%2 == 0 {
			return nil
		}
		return tp
	})
	if n, err := out.Count(); err != nil || n != 2 {
		t.Fatalf("rows = %d, %v", n, err)
	}
}

func TestShuffleAccountingCoversValueKinds(t *testing.T) {
	j := emptyJob()
	d := NewDataset(j, Schema{"k", "m", "b", "f", "bool", "i32"}, []Tuple{
		{"key", map[string]string{"a": "b"}, []byte{1, 2, 3}, 1.5, true, int32(7)},
	})
	if _, err := d.GroupBy("k"); err != nil {
		t.Fatal(err)
	}
	if j.Stats().ShuffleBytes == 0 {
		t.Fatal("no shuffle bytes charged for mixed-type tuple")
	}
}

func TestCountDistinctAcrossTypes(t *testing.T) {
	j := emptyJob()
	d := NewDataset(j, Schema{"k", "v"}, []Tuple{
		{"a", int64(1)}, {"a", int64(1)}, {"a", int64(2)},
	})
	g, err := d.GroupBy("k")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	res, err := g.Aggregate(CountDistinct("v", "dv"))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][1].(int64) != 2 {
		t.Fatalf("distinct = %v", rows)
	}
}

func TestClusterSecondsModel(t *testing.T) {
	var s Stats
	s.MapTasks = 10
	s.ReduceTasks = 2
	want := 10*MapTaskStartupSeconds + 2*ReduceTaskStartupSeconds
	if got := s.ClusterSeconds(); got != want {
		t.Fatalf("ClusterSeconds = %f, want %f", got, want)
	}
}

package dataflow

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"time"

	"unilog/internal/recordio"
)

// An external operator (GroupBy, GroupAll, Join, Distinct, OrderBy) cannot
// assume its input fits in memory. spillTable is the shared machinery, and
// — like the sort-merge shuffle of the MapReduce jobs this engine models —
// it is sort-based: tuples are hash-partitioned on their rendered key and
// buffered per partition, and when the buffered bytes exceed
// Job.MemoryBudget the largest partition's buffer is *sorted* (key, then
// the optional order column, then insertion sequence) and appended to the
// partition's spill file as one sorted run. The reduce side is a streaming
// k-way merge over every run plus the sorted in-memory residues (merge.go):
// tuples arrive in global (key, order, sequence) order, so reducers fold
// group boundaries as they stream by and never hold a per-group hash map —
// peak reduce memory is the merge heap plus one buffered tuple per run.
// With MemoryBudget <= 0 the table degenerates to a single never-spilled
// partition whose residue is sorted once: the in-memory fast path, with
// identical output order.

// DefaultSpillPartitions is the hash fan-out of external operators when
// Job.SpillPartitions is unset.
const DefaultSpillPartitions = 8

// sortKey is one column of a secondary sort: the col'th tuple column,
// descending when desc.
type sortKey struct {
	col  int
	desc bool
}

// sortSpec is the optional secondary order of a spill table: tuples with
// equal keys are delivered ordered by each sortKey in turn, ties broken
// by insertion sequence. An empty spec means insertion order alone — the
// classic GroupBy contract. OrderBy uses an empty key with a sortSpec,
// making the whole table one ordered stream.
type sortSpec []sortKey

// noSort is the sortSpec of operators that only need key grouping.
var noSort = sortSpec(nil)

// memTuple is one buffered tuple: its rendered key (an arena slice), its
// global insertion sequence (the stability tiebreak), and the tuple. The
// arena offset is an int: the unbudgeted path never resets the arena, so
// a narrower offset could silently wrap on a multi-GiB key volume.
type memTuple struct {
	keyOff int
	keyLen int
	seq    uint64
	t      Tuple
}

// spillRun is one sorted run inside a partition's spill file.
type spillRun struct {
	off     int64
	len     int64
	records int64
}

// runRef is a sorted run addressed by file: either a section of a
// partition's spill file or a whole cascade file (temp = true, owned by
// the table and removed once consumed or on Close). The cascade in
// merge.go moves partition runs into this form so multiple passes can
// rewrite and retire them independently of the partitions they came
// from.
type runRef struct {
	path    string
	off     int64
	len     int64
	records int64
	temp    bool
}

// spillPart is one hash partition: an in-memory buffer plus, once it has
// overflowed, a spill file holding earlier tuples as sorted runs.
type spillPart struct {
	mem      []memTuple
	keyArena []byte
	memBytes int64

	path string // spill file; "" until first overflow
	f    *os.File
	bw   *bufio.Writer
	w    *recordio.CRCWriter
	runs []spillRun
}

// key returns the rendered key of a buffered tuple.
func (p *spillPart) key(m *memTuple) []byte {
	return p.keyArena[m.keyOff : m.keyOff+m.keyLen]
}

// spillTable partitions one operator input into sorted runs.
type spillTable struct {
	job      *Job
	keyIdx   []int
	order    sortSpec
	parts    []spillPart
	budget   int64 // <= 0: unlimited (pure in-memory)
	buffered int64 // tuple+key bytes currently buffered across partitions
	seq      uint64
	scratch  []byte
	encBuf   []byte
	merged   []runRef // file runs owned by the cascade (merge.go); empty until one runs
	closed   bool
}

// newSpillTable sizes a table for the job's budget. partitions overrides
// the fan-out when > 0 (GroupAll and OrderBy use 1: a single global order
// cannot be hash-split).
func newSpillTable(j *Job, keyIdx []int, order sortSpec, partitions int) *spillTable {
	n := partitions
	if n <= 0 {
		n = j.SpillPartitions
		if n <= 0 {
			n = DefaultSpillPartitions
		}
	}
	budget := j.MemoryBudget
	if budget <= 0 {
		// In-memory fast path: one partition, no spilling; the residue is
		// still sorted once, so the merge semantics are identical.
		budget = 0
		if partitions <= 0 {
			n = 1
		}
	}
	return &spillTable{job: j, keyIdx: keyIdx, order: order, parts: make([]spillPart, n), budget: budget}
}

// spillDir returns where this job stages spill files.
func (st *spillTable) spillDir() string {
	if st.job.SpillDir != "" {
		return st.job.SpillDir
	}
	return os.TempDir()
}

// add routes one tuple to its partition, charging the shuffle and spilling
// sorted runs as needed. On error the table has already been cleaned up.
func (st *spillTable) add(t Tuple) error {
	b := tupleBytes(t)
	st.job.stats.ShuffleBytes += b
	st.job.stats.ShuffleRecords++
	st.scratch = st.scratch[:0]
	if len(st.keyIdx) > 0 {
		st.scratch = appendKey(st.scratch, t, st.keyIdx)
	}
	p := 0
	if len(st.parts) > 1 {
		h := fnv.New64a()
		h.Write(st.scratch)
		p = int(h.Sum64() % uint64(len(st.parts)))
	}
	part := &st.parts[p]
	off := len(part.keyArena)
	part.keyArena = append(part.keyArena, st.scratch...)
	part.mem = append(part.mem, memTuple{keyOff: off, keyLen: len(st.scratch), seq: st.seq, t: t})
	st.seq++
	b += int64(len(st.scratch)) // the rendered key is buffered too
	part.memBytes += b
	st.buffered += b
	for st.budget > 0 && st.buffered > st.budget {
		if err := st.spillLargest(); err != nil {
			st.Close()
			return err
		}
	}
	return nil
}

// fill consumes an entire dataset into the table, then seals the spill
// files and sorts the residues for merging. On error the table has been
// cleaned up.
func (st *spillTable) fill(d *Dataset) error {
	t0 := time.Now()
	before := st.job.stats.ShuffleBytes
	if err := d.Each(st.add); err != nil {
		st.Close()
		return err
	}
	err := st.finish()
	// The shuffle stage is accounted here, once per table fill, from the
	// same Stats fields add() charges per tuple — no per-tuple telemetry.
	tmShuffleBytes.Add(st.job.stats.ShuffleBytes - before)
	tmShuffleNs.ObserveSince(t0)
	return err
}

// sortPart orders a partition buffer by (key, order column, sequence) —
// the run order the merge relies on. Sequences are unique, so the order is
// total and the sort is stable by construction.
func (st *spillTable) sortPart(p *spillPart) {
	sort.Slice(p.mem, func(i, j int) bool {
		a, b := &p.mem[i], &p.mem[j]
		if c := bytes.Compare(p.key(a), p.key(b)); c != 0 {
			return c < 0
		}
		for _, k := range st.order {
			if c := compareValues(a.t[k.col], b.t[k.col]); c != 0 {
				if k.desc {
					return c > 0
				}
				return c < 0
			}
		}
		return a.seq < b.seq
	})
}

// spillLargest sorts the biggest in-memory partition buffer, appends it to
// the partition's spill file as one sorted run, and drops the buffer,
// freeing its budget share.
func (st *spillTable) spillLargest() error {
	var p *spillPart
	for i := range st.parts {
		if st.parts[i].memBytes > 0 && (p == nil || st.parts[i].memBytes > p.memBytes) {
			p = &st.parts[i]
		}
	}
	if p == nil {
		return nil
	}
	t0 := time.Now()
	if p.f == nil {
		f, err := os.CreateTemp(st.spillDir(), "unilog-spill-"+st.job.Name+"-*.crc")
		if err != nil {
			return fmt.Errorf("dataflow: create spill file: %w", err)
		}
		p.f = f
		p.path = f.Name()
		p.bw = bufio.NewWriterSize(f, 1<<16)
		p.w = recordio.NewCRCWriter(p.bw)
		st.job.stats.SpilledPartitions++
	}
	st.sortPart(p)
	st.job.stats.SpillFlushes++
	before := p.w.Bytes()
	for i := range p.mem {
		m := &p.mem[i]
		var err error
		st.encBuf, err = appendRunRec(st.encBuf[:0], p.key(m), m.seq, m.t)
		if err != nil {
			return err
		}
		if err := p.w.Append(st.encBuf); err != nil {
			return fmt.Errorf("dataflow: write spill file %s: %w", p.path, err)
		}
	}
	p.runs = append(p.runs, spillRun{off: before, len: p.w.Bytes() - before, records: int64(len(p.mem))})
	st.job.stats.SpillRuns++
	st.job.stats.SpilledRecords += int64(len(p.mem))
	st.job.stats.SpilledBytes += p.w.Bytes() - before
	tmSpillRuns.Inc()
	tmSpillRecords.Add(int64(len(p.mem)))
	tmSpillBytes.Add(p.w.Bytes() - before)
	tmSpillFlushNs.ObserveSince(t0)
	st.buffered -= p.memBytes
	p.mem = nil // really release: the budget exists to bound live tuples
	p.keyArena = nil
	p.memBytes = 0
	return nil
}

// finish flushes and closes every spill file for writing and sorts the
// in-memory residues; the table is then ready for (repeated) merge reads.
// On error the table has been cleaned up.
func (st *spillTable) finish() error {
	for i := range st.parts {
		p := &st.parts[i]
		if len(p.mem) > 0 {
			st.sortPart(p)
		}
		if p.f == nil {
			continue
		}
		err := p.bw.Flush()
		if cerr := p.f.Close(); err == nil {
			err = cerr
		}
		p.f, p.bw, p.w = nil, nil, nil
		if err != nil {
			st.Close()
			return fmt.Errorf("dataflow: seal spill file %s: %w", p.path, err)
		}
	}
	return nil
}

// errSpillClosed guards use-after-Close: without it a reduce pass over a
// closed table would see empty partitions and return a silently empty
// relation.
var errSpillClosed = errors.New("dataflow: spilled operator state is closed")

// numParts returns the partition fan-out.
func (st *spillTable) numParts() int { return len(st.parts) }

// Close removes every spill file and drops the buffers. It is safe to call
// more than once; after Close the table cannot be read.
func (st *spillTable) Close() error {
	if st.closed {
		return nil
	}
	st.closed = true
	var err error
	for i := range st.parts {
		p := &st.parts[i]
		if p.f != nil {
			p.f.Close()
			p.f, p.bw, p.w = nil, nil, nil
		}
		if p.path != "" {
			if rerr := os.Remove(p.path); rerr != nil && err == nil {
				err = rerr
			}
			p.path = ""
		}
		p.mem = nil
		p.keyArena = nil
		p.runs = nil
		p.memBytes = 0
	}
	removed := make(map[string]bool)
	for _, r := range st.merged {
		if !r.temp || removed[r.path] {
			continue
		}
		removed[r.path] = true
		if rerr := os.Remove(r.path); rerr != nil && err == nil {
			err = rerr
		}
	}
	st.merged = nil
	return err
}

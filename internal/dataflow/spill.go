package dataflow

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"unilog/internal/recordio"
)

// An external operator (GroupBy, GroupAll, Join, Distinct, OrderBy) cannot
// assume its input fits in memory. spillTable is the shared machinery, and
// — like the sort-merge shuffle of the MapReduce jobs this engine models —
// it is sort-based: tuples are hash-partitioned on their rendered key and
// buffered per partition, and when the buffered bytes exceed
// Job.MemoryBudget the largest partition's buffer is *sorted* (key, then
// the optional order column, then insertion sequence) and appended to the
// partition's spill file as one sorted run. The reduce side is a streaming
// k-way merge over every run plus the sorted in-memory residues (merge.go):
// tuples arrive in global (key, order, sequence) order, so reducers fold
// group boundaries as they stream by and never hold a per-group hash map —
// peak reduce memory is the merge heap plus one buffered tuple per run.
// With MemoryBudget <= 0 the table degenerates to a single never-spilled
// partition whose residue is sorted once: the in-memory fast path, with
// identical output order.

// DefaultSpillPartitions is the hash fan-out of external operators when
// Job.SpillPartitions is unset.
const DefaultSpillPartitions = 8

// sortKey is one column of a secondary sort: the col'th tuple column,
// descending when desc.
type sortKey struct {
	col  int
	desc bool
}

// sortSpec is the optional secondary order of a spill table: tuples with
// equal keys are delivered ordered by each sortKey in turn, ties broken
// by insertion sequence. An empty spec means insertion order alone — the
// classic GroupBy contract. OrderBy uses an empty key with a sortSpec,
// making the whole table one ordered stream.
type sortSpec []sortKey

// noSort is the sortSpec of operators that only need key grouping.
var noSort = sortSpec(nil)

// memTuple is one buffered tuple: its rendered key (an arena slice), its
// global insertion sequence (the stability tiebreak), and the tuple. The
// arena offset is an int: the unbudgeted path never resets the arena, so
// a narrower offset could silently wrap on a multi-GiB key volume.
type memTuple struct {
	keyOff int
	keyLen int
	seq    uint64
	t      Tuple
}

// spillRun is one sorted run inside a partition's spill file.
type spillRun struct {
	off     int64
	len     int64
	records int64
}

// runRef is a sorted run addressed by file: either a section of a
// partition's spill file or a whole cascade file (temp = true, owned by
// the table and removed once consumed or on Close). The cascade in
// merge.go moves partition runs into this form so multiple passes can
// rewrite and retire them independently of the partitions they came
// from.
type runRef struct {
	path    string
	off     int64
	len     int64
	records int64
	temp    bool
}

// spillPart is one hash partition: an in-memory buffer plus, once it has
// overflowed, a spill file holding earlier tuples as sorted runs.
type spillPart struct {
	mem      []memTuple
	keyArena []byte
	memBytes int64

	path string // spill file; "" until first overflow
	f    *os.File
	bw   *bufio.Writer
	w    *recordio.CRCWriter
	runs []spillRun

	// merged holds this partition's runs after a per-partition cascade
	// (merge.go) has staged them into wider files — the partition-local
	// counterpart of spillTable.merged, used by parallel reduce passes
	// so partition identity survives cascading.
	merged []runRef
}

// key returns the rendered key of a buffered tuple.
func (p *spillPart) key(m *memTuple) []byte {
	return p.keyArena[m.keyOff : m.keyOff+m.keyLen]
}

// spillTable partitions one operator input into sorted runs.
type spillTable struct {
	job      *Job
	keyIdx   []int
	order    sortSpec
	parts    []spillPart
	budget   int64 // <= 0: unlimited (pure in-memory)
	buffered int64 // tuple+key bytes currently buffered across partitions
	seq      uint64
	scratch  []byte
	encBuf   []byte
	merged   []runRef // file runs owned by the cascade (merge.go); empty until one runs
	closed   bool

	// Async spill flushing (Job.Parallelism > 1): detached partition
	// buffers travel to a single flusher goroutine that sorts and writes
	// them off the ingest path. Budget is freed at detach time, so flush
	// decisions, run boundaries, and file contents are identical to the
	// serial path — only the ingest thread no longer waits for the sort
	// and the write. flushErr is owned by the flusher until flushDone
	// closes; flushFail is the ingest path's fail-fast signal.
	flushCh   chan flushReq
	flushDone chan struct{}
	flushErr  error
	flushFail atomic.Bool
}

// flushReq is one detached partition buffer awaiting its sort-and-write.
type flushReq struct {
	p     *spillPart
	mem   []memTuple
	arena []byte
}

// newSpillTable sizes a table for the job's budget. partitions overrides
// the fan-out when > 0 (GroupAll and OrderBy use 1: a single global order
// cannot be hash-split).
func newSpillTable(j *Job, keyIdx []int, order sortSpec, partitions int) *spillTable {
	n := partitions
	if n <= 0 {
		n = j.SpillPartitions
		if n <= 0 {
			n = DefaultSpillPartitions
		}
	}
	budget := j.MemoryBudget
	if budget <= 0 {
		// In-memory fast path: one partition, no spilling; the residue is
		// still sorted once, so the merge semantics are identical.
		budget = 0
		if partitions <= 0 {
			n = 1
		}
	}
	return &spillTable{job: j, keyIdx: keyIdx, order: order, parts: make([]spillPart, n), budget: budget}
}

// spillDir returns where this job stages spill files.
func (st *spillTable) spillDir() string {
	if st.job.SpillDir != "" {
		return st.job.SpillDir
	}
	return os.TempDir()
}

// add routes one tuple to its partition, charging the shuffle and spilling
// sorted runs as needed. On error the table has already been cleaned up.
func (st *spillTable) add(t Tuple) error {
	b := tupleBytes(t)
	st.job.stats.shuffleBytes.Add(b)
	st.job.stats.shuffleRecords.Add(1)
	st.scratch = st.scratch[:0]
	if len(st.keyIdx) > 0 {
		st.scratch = appendKey(st.scratch, t, st.keyIdx)
	}
	p := 0
	if len(st.parts) > 1 {
		h := fnv.New64a()
		h.Write(st.scratch)
		p = int(h.Sum64() % uint64(len(st.parts)))
	}
	part := &st.parts[p]
	off := len(part.keyArena)
	part.keyArena = append(part.keyArena, st.scratch...)
	part.mem = append(part.mem, memTuple{keyOff: off, keyLen: len(st.scratch), seq: st.seq, t: t})
	st.seq++
	b += int64(len(st.scratch)) // the rendered key is buffered too
	part.memBytes += b
	st.buffered += b
	for st.budget > 0 && st.buffered > st.budget {
		if err := st.spillLargest(); err != nil {
			st.Close()
			return err
		}
	}
	return nil
}

// fill consumes an entire dataset into the table, then seals the spill
// files and sorts the residues for merging. On error the table has been
// cleaned up.
func (st *spillTable) fill(d *Dataset) error {
	t0 := time.Now()
	before := st.job.stats.shuffleBytes.Load()
	if err := d.Each(st.add); err != nil {
		st.Close()
		return err
	}
	err := st.finish()
	// The shuffle stage is accounted here, once per table fill, from the
	// same Stats fields add() charges per tuple — no per-tuple telemetry.
	tmShuffleBytes.Add(st.job.stats.shuffleBytes.Load() - before)
	tmShuffleNs.ObserveSince(t0)
	return err
}

// sortPart orders a partition buffer by (key, order column, sequence) —
// the run order the merge relies on. Sequences are unique, so the order is
// total and the sort is stable by construction.
func (st *spillTable) sortPart(p *spillPart) {
	st.sortRun(p.mem, p.keyArena)
}

// sortRun is sortPart over an explicit (buffer, arena) pair, so a
// detached buffer handed to the async flusher sorts identically.
func (st *spillTable) sortRun(mem []memTuple, arena []byte) {
	sort.Slice(mem, func(i, j int) bool {
		a, b := &mem[i], &mem[j]
		ka := arena[a.keyOff : a.keyOff+a.keyLen]
		kb := arena[b.keyOff : b.keyOff+b.keyLen]
		if c := bytes.Compare(ka, kb); c != 0 {
			return c < 0
		}
		for _, k := range st.order {
			if c := compareValues(a.t[k.col], b.t[k.col]); c != 0 {
				if k.desc {
					return c > 0
				}
				return c < 0
			}
		}
		return a.seq < b.seq
	})
}

// detachLargest picks the biggest in-memory partition buffer, detaches
// it from the partition, and frees its budget share — the flush
// *decision* and accounting, separated from the flush I/O so the write
// can happen on the flusher goroutine without changing which buffers
// spill or what runs they form.
func (st *spillTable) detachLargest() (*spillPart, []memTuple, []byte) {
	var p *spillPart
	for i := range st.parts {
		if st.parts[i].memBytes > 0 && (p == nil || st.parts[i].memBytes > p.memBytes) {
			p = &st.parts[i]
		}
	}
	if p == nil {
		return nil, nil, nil
	}
	mem, arena := p.mem, p.keyArena
	st.buffered -= p.memBytes
	p.mem = nil // really release: the budget exists to bound live tuples
	p.keyArena = nil
	p.memBytes = 0
	return p, mem, arena
}

// writeRun sorts a detached partition buffer and appends it to the
// partition's spill file as one sorted run. The partition's file state
// (p.f, p.w, p.runs) is touched only here; while the async flusher is
// running it is the sole caller, so file state is single-owner in both
// modes. Returns the (possibly grown) encode buffer for reuse.
func (st *spillTable) writeRun(p *spillPart, mem []memTuple, arena []byte, encBuf []byte) ([]byte, error) {
	t0 := time.Now()
	st.sortRun(mem, arena)
	if p.f == nil {
		f, err := os.CreateTemp(st.spillDir(), "unilog-spill-"+st.job.Name+"-*.crc")
		if err != nil {
			return encBuf, fmt.Errorf("dataflow: create spill file: %w", err)
		}
		p.f = f
		p.path = f.Name()
		p.bw = bufio.NewWriterSize(f, 1<<16)
		p.w = recordio.NewCRCWriter(p.bw)
		st.job.stats.spilledPartitions.Add(1)
	}
	st.job.stats.spillFlushes.Add(1)
	before := p.w.Bytes()
	for i := range mem {
		m := &mem[i]
		var err error
		encBuf, err = appendRunRec(encBuf[:0], arena[m.keyOff:m.keyOff+m.keyLen], m.seq, m.t)
		if err != nil {
			return encBuf, err
		}
		if err := p.w.Append(encBuf); err != nil {
			return encBuf, fmt.Errorf("dataflow: write spill file %s: %w", p.path, err)
		}
	}
	p.runs = append(p.runs, spillRun{off: before, len: p.w.Bytes() - before, records: int64(len(mem))})
	st.job.stats.spillRuns.Add(1)
	st.job.stats.spilledRecords.Add(int64(len(mem)))
	st.job.stats.spilledBytes.Add(p.w.Bytes() - before)
	tmSpillRuns.Inc()
	tmSpillRecords.Add(int64(len(mem)))
	tmSpillBytes.Add(p.w.Bytes() - before)
	tmSpillFlushNs.ObserveSince(t0)
	return encBuf, nil
}

// spillLargest detaches the biggest partition buffer and flushes it —
// inline when serial, via the flusher goroutine when Job.Parallelism
// allows, so sorting and writing leave the ingest path. Requests are
// FIFO through a single flusher, so each partition file's runs land in
// exactly the order the serial path would write them.
func (st *spillTable) spillLargest() error {
	if st.flushFail.Load() {
		return st.stopFlusher()
	}
	p, mem, arena := st.detachLargest()
	if p == nil {
		return nil
	}
	if st.flushCh == nil && st.job.parallelism() > 1 {
		st.flushCh = make(chan flushReq, 2)
		st.flushDone = make(chan struct{})
		go st.flusher()
	}
	if st.flushCh != nil {
		st.flushCh <- flushReq{p: p, mem: mem, arena: arena}
		return nil
	}
	var err error
	st.encBuf, err = st.writeRun(p, mem, arena, st.encBuf)
	return err
}

// flusher drains detached buffers, recording the first failure and
// discarding the rest — the table is poisoned and being torn down once
// anything goes wrong.
func (st *spillTable) flusher() {
	defer close(st.flushDone)
	var encBuf []byte
	for req := range st.flushCh {
		if st.flushErr != nil {
			continue
		}
		t0 := time.Now()
		var err error
		encBuf, err = st.writeRun(req.p, req.mem, req.arena, encBuf)
		tmParSpillBusyNs.ObserveSince(t0)
		if err != nil {
			st.flushErr = err
			st.flushFail.Store(true)
		}
	}
}

// stopFlusher joins the flusher goroutine, if one is running, and
// returns its first error. After it returns, partition file state is
// back under the caller's ownership.
func (st *spillTable) stopFlusher() error {
	if st.flushCh == nil {
		return nil
	}
	close(st.flushCh)
	<-st.flushDone
	st.flushCh = nil
	return st.flushErr
}

// finish flushes and closes every spill file for writing and sorts the
// in-memory residues; the table is then ready for (repeated) merge reads.
// The flusher (if running) is joined first, so its error surfaces here
// and file state is single-threaded again. On error the table has been
// cleaned up.
func (st *spillTable) finish() error {
	if err := st.stopFlusher(); err != nil {
		st.Close()
		return err
	}
	st.sortResidues()
	for i := range st.parts {
		p := &st.parts[i]
		if p.f == nil {
			continue
		}
		err := p.bw.Flush()
		if cerr := p.f.Close(); err == nil {
			err = cerr
		}
		p.f, p.bw, p.w = nil, nil, nil
		if err != nil {
			st.Close()
			return fmt.Errorf("dataflow: seal spill file %s: %w", p.path, err)
		}
	}
	return nil
}

// sortResidues sorts every partition's in-memory residue, fanning the
// sorts out over workers when the job allows — each sort touches only
// its own partition's buffer, and sort order does not depend on who
// sorts.
func (st *spillTable) sortResidues() {
	var parts []*spillPart
	for i := range st.parts {
		if len(st.parts[i].mem) > 0 {
			parts = append(parts, &st.parts[i])
		}
	}
	workers := st.job.parallelism()
	if workers > len(parts) {
		workers = len(parts)
	}
	if workers <= 1 {
		for _, p := range parts {
			st.sortPart(p)
		}
		return
	}
	tmParWorkers.SetMax(int64(workers))
	idx := make(chan *spillPart)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range idx {
				st.sortPart(p)
			}
		}()
	}
	for _, p := range parts {
		idx <- p
	}
	close(idx)
	wg.Wait()
}

// errSpillClosed guards use-after-Close: without it a reduce pass over a
// closed table would see empty partitions and return a silently empty
// relation.
var errSpillClosed = errors.New("dataflow: spilled operator state is closed")

// numParts returns the partition fan-out.
func (st *spillTable) numParts() int { return len(st.parts) }

// Close removes every spill file and drops the buffers. It is safe to call
// more than once; after Close the table cannot be read.
func (st *spillTable) Close() error {
	if st.closed {
		return nil
	}
	st.closed = true
	// Join the flusher before touching file state: a mid-flight write
	// must not race the removals below. Its error is superseded by the
	// teardown itself.
	st.stopFlusher()
	var err error
	removed := make(map[string]bool)
	rmTemps := func(refs []runRef) {
		for _, r := range refs {
			if !r.temp || removed[r.path] {
				continue
			}
			removed[r.path] = true
			if rerr := os.Remove(r.path); rerr != nil && err == nil {
				err = rerr
			}
		}
	}
	for i := range st.parts {
		p := &st.parts[i]
		if p.f != nil {
			p.f.Close()
			p.f, p.bw, p.w = nil, nil, nil
		}
		if p.path != "" {
			if rerr := os.Remove(p.path); rerr != nil && err == nil {
				err = rerr
			}
			p.path = ""
		}
		p.mem = nil
		p.keyArena = nil
		p.runs = nil
		p.memBytes = 0
		rmTemps(p.merged)
		p.merged = nil
	}
	rmTemps(st.merged)
	st.merged = nil
	return err
}

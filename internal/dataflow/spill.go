package dataflow

import (
	"bufio"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"

	"unilog/internal/recordio"
)

// An external operator (GroupBy, GroupAll, Join, Distinct) cannot assume
// its input fits in memory. spillTable is the shared machinery: tuples are
// hash-partitioned on their key, each partition buffers in memory, and
// when the buffered bytes across partitions exceed Job.MemoryBudget the
// largest partition's buffer is flushed to a CRC-framed spill file. The
// reduce side then reads one partition at a time — spilled prefix first,
// in-memory residue after, which together preserve per-partition insertion
// order — so peak memory is bounded by the largest partition rather than
// the dataset. With MemoryBudget <= 0 the table degenerates to a single
// never-spilled in-memory partition: the engine's original behavior.

// DefaultSpillPartitions is the hash fan-out of external operators when
// Job.SpillPartitions is unset.
const DefaultSpillPartitions = 8

// spillPart is one hash partition: an in-memory buffer plus, once it has
// overflowed, a spill file holding its earlier tuples.
type spillPart struct {
	mem      []Tuple
	memBytes int64

	path string // spill file; "" until first overflow
	f    *os.File
	bw   *bufio.Writer
	w    *recordio.CRCWriter
}

// spillTable partitions one operator input.
type spillTable struct {
	job      *Job
	keyIdx   []int
	parts    []spillPart
	budget   int64 // <= 0: unlimited (pure in-memory)
	buffered int64 // tuple bytes currently buffered across partitions
	scratch  []byte
	encBuf   []byte
	closed   bool
}

// newSpillTable sizes a table for the job's budget. partitions overrides
// the fan-out when > 0 (GroupAll uses 1: a single global group cannot be
// split).
func newSpillTable(j *Job, keyIdx []int, partitions int) *spillTable {
	n := partitions
	if n <= 0 {
		n = j.SpillPartitions
		if n <= 0 {
			n = DefaultSpillPartitions
		}
	}
	budget := j.MemoryBudget
	if budget <= 0 {
		// In-memory fallback: one partition, no spilling, exactly the
		// pre-out-of-core engine.
		budget = 0
		if partitions <= 0 {
			n = 1
		}
	}
	return &spillTable{job: j, keyIdx: keyIdx, parts: make([]spillPart, n), budget: budget}
}

// spillDir returns where this job stages spill files.
func (st *spillTable) spillDir() string {
	if st.job.SpillDir != "" {
		return st.job.SpillDir
	}
	return os.TempDir()
}

// add routes one tuple to its partition, charging the shuffle and spilling
// buffers as needed. On error the table has already been cleaned up.
func (st *spillTable) add(t Tuple) error {
	b := tupleBytes(t)
	st.job.stats.ShuffleBytes += b
	st.job.stats.ShuffleRecords++
	p := 0
	if len(st.parts) > 1 {
		st.scratch = appendKey(st.scratch[:0], t, st.keyIdx)
		h := fnv.New64a()
		h.Write(st.scratch)
		p = int(h.Sum64() % uint64(len(st.parts)))
	}
	part := &st.parts[p]
	part.mem = append(part.mem, t)
	part.memBytes += b
	st.buffered += b
	for st.budget > 0 && st.buffered > st.budget {
		if err := st.spillLargest(); err != nil {
			st.Close()
			return err
		}
	}
	return nil
}

// fill consumes an entire dataset into the table, then seals the spill
// files for reading. On error the table has been cleaned up.
func (st *spillTable) fill(d *Dataset) error {
	if err := d.Each(st.add); err != nil {
		st.Close()
		return err
	}
	return st.finish()
}

// spillLargest flushes the biggest in-memory partition buffer to its spill
// file and drops the buffer, freeing its budget share.
func (st *spillTable) spillLargest() error {
	var p *spillPart
	for i := range st.parts {
		if st.parts[i].memBytes > 0 && (p == nil || st.parts[i].memBytes > p.memBytes) {
			p = &st.parts[i]
		}
	}
	if p == nil {
		return nil
	}
	if p.f == nil {
		f, err := os.CreateTemp(st.spillDir(), "unilog-spill-"+st.job.Name+"-*.crc")
		if err != nil {
			return fmt.Errorf("dataflow: create spill file: %w", err)
		}
		p.f = f
		p.path = f.Name()
		p.bw = bufio.NewWriterSize(f, 1<<16)
		p.w = recordio.NewCRCWriter(p.bw)
		st.job.stats.SpilledPartitions++
	}
	st.job.stats.SpillFlushes++
	before := p.w.Bytes()
	for _, t := range p.mem {
		var err error
		st.encBuf, err = appendTuple(st.encBuf[:0], t)
		if err != nil {
			return err
		}
		if err := p.w.Append(st.encBuf); err != nil {
			return fmt.Errorf("dataflow: write spill file %s: %w", p.path, err)
		}
	}
	st.job.stats.SpilledRecords += int64(len(p.mem))
	st.job.stats.SpilledBytes += p.w.Bytes() - before
	st.buffered -= p.memBytes
	p.mem = nil // really release: the budget exists to bound live tuples
	p.memBytes = 0
	return nil
}

// finish flushes and closes every spill file for writing; the table is
// then ready for (repeated) partition reads. On error the table has been
// cleaned up.
func (st *spillTable) finish() error {
	for i := range st.parts {
		p := &st.parts[i]
		if p.f == nil {
			continue
		}
		err := p.bw.Flush()
		if cerr := p.f.Close(); err == nil {
			err = cerr
		}
		p.f, p.bw, p.w = nil, nil, nil
		if err != nil {
			st.Close()
			return fmt.Errorf("dataflow: seal spill file %s: %w", p.path, err)
		}
	}
	return nil
}

// errSpillClosed guards use-after-Close: without it a reduce pass over a
// closed table would see empty partitions and return a silently empty
// relation.
var errSpillClosed = errors.New("dataflow: spilled operator state is closed")

// partIter opens one partition for reading: the spilled prefix, then the
// in-memory residue. Callers own Close.
func (st *spillTable) partIter(i int) (Iterator, error) {
	if st.closed {
		return nil, errSpillClosed
	}
	p := &st.parts[i]
	if p.path == "" {
		return &sliceIter{tuples: p.mem}, nil
	}
	f, err := os.Open(p.path)
	if err != nil {
		return nil, fmt.Errorf("dataflow: reopen spill file: %w", err)
	}
	return &spillIter{path: p.path, f: f, r: recordio.NewCRCReader(f), mem: p.mem}, nil
}

// numParts returns the partition fan-out.
func (st *spillTable) numParts() int { return len(st.parts) }

// Close removes every spill file and drops the buffers. It is safe to call
// more than once; after Close the table cannot be read.
func (st *spillTable) Close() error {
	if st.closed {
		return nil
	}
	st.closed = true
	var err error
	for i := range st.parts {
		p := &st.parts[i]
		if p.f != nil {
			p.f.Close()
			p.f, p.bw, p.w = nil, nil, nil
		}
		if p.path != "" {
			if rerr := os.Remove(p.path); rerr != nil && err == nil {
				err = rerr
			}
			p.path = ""
		}
		p.mem = nil
		p.memBytes = 0
	}
	return err
}

// spillIter streams one partition: decoded spill records, then the
// in-memory residue. A truncated or corrupted spill file surfaces the
// recordio error (wrapped with the file) instead of a panic or a silent
// partial group; the error is sticky, so re-polling can never skip the
// damaged record and resume mid-partition.
type spillIter struct {
	path     string
	f        *os.File
	r        *recordio.CRCReader
	fileDone bool
	mem      []Tuple
	i        int
	err      error
}

func (s *spillIter) Next() (Tuple, error) {
	if s.err != nil {
		return nil, s.err
	}
	if !s.fileDone {
		rec, err := s.r.Next()
		switch {
		case err == io.EOF:
			s.fileDone = true
		case err != nil:
			s.err = fmt.Errorf("dataflow: spill file %s: %w", s.path, err)
			return nil, s.err
		default:
			t, err := decodeTuple(rec)
			if err != nil {
				s.err = fmt.Errorf("%s: %w", s.path, err)
				return nil, s.err
			}
			return t, nil
		}
	}
	if s.i < len(s.mem) {
		t := s.mem[s.i]
		s.i++
		return t, nil
	}
	return nil, io.EOF
}

func (s *spillIter) Close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

package dataflow

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"unilog/internal/recordio"
)

// The reduce side of every external operator is a streaming k-way merge
// over a spill table's sorted runs: each run contributes one cursor
// holding its current (key, sequence, tuple) record, and a binary min-heap
// orders the cursors by (key, order column, sequence) — the same order the
// runs were written in — so the merged stream is globally ordered and a
// reducer detects group boundaries by comparing adjacent keys. Peak merge
// memory is the heap plus one buffered record per run (the run fan-in,
// tracked in Stats.PeakRunFanIn); nothing scales with the number of
// groups. A corrupted or short run surfaces recordio.ErrCorrupt /
// ErrTruncated from the merge instead of a silently incomplete relation.

// runCursor is one sorted run being merged: a spilled run (fileRun) or a
// partition's sorted in-memory residue (memRun). advance loads the next
// record, returning io.EOF at the end of the run; key/seq/tuple read the
// current record and are valid until the next advance.
type runCursor interface {
	advance() error
	key() []byte
	seq() uint64
	tuple() Tuple
}

// fileRun streams one sorted run out of a partition's spill file through
// an io.SectionReader, so every run of a file shares a single descriptor.
// The run's record count is checked at EOF: a truncated file makes a
// section read clean but short, which must surface as ErrTruncated, not as
// a quietly smaller relation.
type fileRun struct {
	path      string
	r         *recordio.CRCReader
	remaining int64
	curKey    []byte
	curSeq    uint64
	curT      Tuple
}

func (c *fileRun) advance() error {
	rec, err := c.r.Next()
	if err == io.EOF {
		if c.remaining != 0 {
			return fmt.Errorf("dataflow: spill file %s: %d records missing from run: %w",
				c.path, c.remaining, recordio.ErrTruncated)
		}
		return io.EOF
	}
	if err != nil {
		return fmt.Errorf("dataflow: spill file %s: %w", c.path, err)
	}
	cur := recordio.NewCursor(rec)
	k := cur.Bytes("run key")
	seq := cur.Uvarint("run sequence")
	t, err := decodeTupleFrom(cur)
	if err != nil {
		return fmt.Errorf("%s: %w", c.path, err)
	}
	// The key aliases the reader's reused record buffer; copy it into the
	// cursor's own buffer so it stays valid while the record sits in the
	// merge heap.
	c.curKey = append(c.curKey[:0], k...)
	c.curSeq = seq
	c.curT = t
	c.remaining--
	return nil
}

func (c *fileRun) key() []byte  { return c.curKey }
func (c *fileRun) seq() uint64  { return c.curSeq }
func (c *fileRun) tuple() Tuple { return c.curT }

// memRun cursors a partition's sorted in-memory residue.
type memRun struct {
	p *spillPart
	i int
}

func (c *memRun) advance() error {
	c.i++
	if c.i >= len(c.p.mem) {
		return io.EOF
	}
	return nil
}

func (c *memRun) key() []byte  { return c.p.key(&c.p.mem[c.i]) }
func (c *memRun) seq() uint64  { return c.p.mem[c.i].seq }
func (c *memRun) tuple() Tuple { return c.p.mem[c.i].t }

// DefaultMaxMergeFanIn is the run-cursor cap of a single streaming merge
// when Job.MaxMergeFanIn is unset.
const DefaultMaxMergeFanIn = 64

// mergeAll opens one streaming merge over every run of every partition.
// Hash partitions hold disjoint key sets, so merging all runs at once
// yields the global (key, order, sequence) order directly — there is no
// per-partition pass and no output re-sort. If the accumulated run count
// exceeds Job.MaxMergeFanIn, cascade first folds batches of runs into
// wider ones until the final merge fits the cap. The caller owns Close;
// the table can be merged repeatedly until it is closed.
func (st *spillTable) mergeAll() (*mergeIter, error) {
	if st.closed {
		return nil, errSpillClosed
	}
	if err := st.cascade(); err != nil {
		return nil, err
	}
	m := &mergeIter{st: st}
	for pi := range st.parts {
		p := &st.parts[pi]
		if len(p.runs) > 0 {
			f, err := os.Open(p.path)
			if err != nil {
				m.Close()
				return nil, fmt.Errorf("dataflow: reopen spill file: %w", err)
			}
			m.files = append(m.files, f)
			for _, r := range p.runs {
				sec := io.NewSectionReader(f, r.off, r.len)
				m.h = append(m.h, &fileRun{path: p.path, r: recordio.NewCRCReader(sec), remaining: r.records})
			}
		}
		if len(p.mem) > 0 {
			m.h = append(m.h, &memRun{p: p, i: -1})
		}
		// Partition-local cascade output from an earlier parallel reduce
		// pass merges like any other sorted run of the partition.
		if len(p.merged) > 0 {
			if err := m.addRefs(p.merged); err != nil {
				return nil, err
			}
		}
	}
	if err := m.addRefs(st.merged); err != nil {
		return nil, err
	}
	st.chargeMergeFanIn(len(m.h))
	if err := m.prime(); err != nil {
		return nil, err
	}
	return m, nil
}

// mergePart opens a streaming merge over a single partition's runs and
// residue — the per-partition unit of a parallel reduce pass. It
// cascades only that partition's runs (staged in p.merged) when they
// exceed the fan-in cap. Distinct partitions may be merged concurrently:
// everything mutated here (p.runs, p.merged, cascade temp files) is
// partition-local and the stats are atomic.
func (st *spillTable) mergePart(pi int) (*mergeIter, error) {
	if st.closed {
		return nil, errSpillClosed
	}
	if err := st.cascadePart(pi); err != nil {
		return nil, err
	}
	p := &st.parts[pi]
	m := &mergeIter{st: st}
	if len(p.runs) > 0 {
		f, err := os.Open(p.path)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("dataflow: reopen spill file: %w", err)
		}
		m.files = append(m.files, f)
		for _, r := range p.runs {
			sec := io.NewSectionReader(f, r.off, r.len)
			m.h = append(m.h, &fileRun{path: p.path, r: recordio.NewCRCReader(sec), remaining: r.records})
		}
	}
	if len(p.mem) > 0 {
		m.h = append(m.h, &memRun{p: p, i: -1})
	}
	if err := m.addRefs(p.merged); err != nil {
		return nil, err
	}
	st.chargeMergeFanIn(len(m.h))
	if err := m.prime(); err != nil {
		return nil, err
	}
	return m, nil
}

// chargeMergeFanIn records a merge's run fan-in. Per-partition merges
// charge the same MergeRuns total as one global merge would (the runs
// are the same runs); PeakRunFanIn then reflects the widest single
// merge actually held open, which under a parallel reduce is the
// per-partition width.
func (st *spillTable) chargeMergeFanIn(fanIn int) {
	st.job.stats.mergeRuns.Add(int64(fanIn))
	st.job.stats.maxRunFanIn(int64(fanIn))
	tmMergeFanInMax.SetMax(int64(fanIn))
}

// fanInCap resolves the job's merge fan-in cap (minimum 2 — a 1-way
// "merge" could never make progress reducing the run count).
func (st *spillTable) fanInCap() int {
	c := st.job.MaxMergeFanIn
	if c <= 0 {
		c = DefaultMaxMergeFanIn
	}
	if c < 2 {
		c = 2
	}
	return c
}

// cascade brings the table's file-run count under the merge fan-in cap:
// each pass folds batches of runs into single wider sorted runs staged
// in cascade files, retiring source files as their last run is
// consumed. Sorted-run merging is closed under the (key, order,
// sequence) comparator, so any batch — even one spanning partitions —
// produces a run the final merge consumes identically; the output
// relation is byte-for-byte what a single unbounded merge would yield.
// In-memory residues are never cascaded (they are already resident and
// cost no reread); they reserve their cursor slots out of the cap, with
// a floor of two slots for file runs.
func (st *spillTable) cascade() error {
	eff := st.fanInCap()
	for i := range st.parts {
		if len(st.parts[i].mem) > 0 {
			eff--
		}
	}
	if eff < 2 {
		eff = 2
	}
	total := len(st.merged)
	for i := range st.parts {
		total += len(st.parts[i].runs) + len(st.parts[i].merged)
	}
	if total <= eff {
		return nil
	}
	// Take ownership of every partition run (including the staged output
	// of any earlier per-partition cascade): from here on the runs live
	// as runRefs and the partitions only contribute residues.
	for i := range st.parts {
		p := &st.parts[i]
		for _, r := range p.runs {
			st.merged = append(st.merged, runRef{path: p.path, off: r.off, len: r.len, records: r.records})
		}
		p.runs = nil
		st.merged = append(st.merged, p.merged...)
		p.merged = nil
	}
	for len(st.merged) > eff {
		t0 := time.Now()
		st.job.stats.cascadePasses.Add(1)
		tmCascadePasses.Inc()
		old := st.merged
		var batches [][]runRef
		for i := 0; i < len(old); i += eff {
			end := i + eff
			if end > len(old) {
				end = len(old)
			}
			batches = append(batches, old[i:end])
		}
		outs := make([]runRef, len(batches))
		errs := make([]error, len(batches))
		done := make([]bool, len(batches))
		st.runBatches(batches, outs, errs, done)
		next := make([]runRef, 0, len(batches))
		var firstErr error
		for k, batch := range batches {
			switch {
			case len(batch) == 1:
				// A stray singleton carries over unchanged; a later pass or
				// the final merge consumes it.
				next = append(next, batch[0])
			case !done[k] || errs[k] != nil:
				// Keep both the rewritten and the unconsumed runs reachable
				// so Close still removes every staged file.
				next = append(next, batch...)
				if errs[k] != nil && firstErr == nil {
					firstErr = errs[k]
				}
			default:
				next = append(next, outs[k])
			}
		}
		st.merged = next
		if firstErr != nil {
			return firstErr
		}
		st.dropUnreferenced(old, next)
		tmCascadeNs.ObserveSince(t0)
	}
	return nil
}

// runBatches executes the multi-run merges of one cascade pass, filling
// outs/errs/done by batch index. The batches are independent — each
// reads its own runs and writes its own temp file — so with parallelism
// they run on a worker pool; serially they run in order and stop at the
// first failure, exactly as the pre-parallel cascade did.
func (st *spillTable) runBatches(batches [][]runRef, outs []runRef, errs []error, done []bool) {
	var work []int
	for k, b := range batches {
		if len(b) > 1 {
			work = append(work, k)
		}
	}
	workers := st.job.parallelism()
	if workers > len(work) {
		workers = len(work)
	}
	if workers <= 1 {
		for _, k := range work {
			out, err := st.mergeBatch(batches[k])
			done[k] = true
			if err != nil {
				errs[k] = err
				return
			}
			outs[k] = out
			st.chargeCascadeBatch(len(batches[k]))
		}
		return
	}
	tmParWorkers.SetMax(int64(workers))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range idx {
				out, err := st.mergeBatch(batches[k])
				done[k] = true
				if err != nil {
					errs[k] = err
					continue
				}
				outs[k] = out
				st.chargeCascadeBatch(len(batches[k]))
			}
		}()
	}
	for _, k := range work {
		idx <- k
	}
	close(idx)
	wg.Wait()
}

// chargeCascadeBatch records one completed cascade batch merge.
func (st *spillTable) chargeCascadeBatch(fanIn int) {
	st.job.stats.cascadeRuns.Add(1)
	st.job.stats.mergeRuns.Add(int64(fanIn))
	st.job.stats.maxRunFanIn(int64(fanIn))
	tmCascadeRuns.Inc()
	tmMergeFanInMax.SetMax(int64(fanIn))
}

// cascadePart is cascade for a single partition, staging its output in
// p.merged instead of st.merged so partition identity survives for the
// per-partition merges of a parallel reduce. It runs inside a reduce
// worker, so its own batch merges stay serial.
func (st *spillTable) cascadePart(pi int) error {
	p := &st.parts[pi]
	eff := st.fanInCap()
	if len(p.mem) > 0 {
		eff--
	}
	if eff < 2 {
		eff = 2
	}
	if len(p.runs)+len(p.merged) <= eff {
		return nil
	}
	for _, r := range p.runs {
		p.merged = append(p.merged, runRef{path: p.path, off: r.off, len: r.len, records: r.records})
	}
	p.runs = nil
	for len(p.merged) > eff {
		t0 := time.Now()
		st.job.stats.cascadePasses.Add(1)
		tmCascadePasses.Inc()
		old := p.merged
		next := make([]runRef, 0, (len(old)+eff-1)/eff)
		for i := 0; i < len(old); i += eff {
			end := i + eff
			if end > len(old) {
				end = len(old)
			}
			batch := old[i:end]
			if len(batch) == 1 {
				next = append(next, batch[0])
				continue
			}
			out, err := st.mergeBatch(batch)
			if err != nil {
				p.merged = append(next, old[i:]...)
				return err
			}
			st.chargeCascadeBatch(len(batch))
			next = append(next, out)
		}
		p.merged = next
		st.dropUnreferencedPart(p, old, next)
		tmCascadeNs.ObserveSince(t0)
	}
	return nil
}

// mergeBatch streams one k-way merge over a batch of file runs into a
// fresh cascade file holding a single sorted run. It keeps its encode
// buffer local — batches of one pass may run on concurrent workers.
func (st *spillTable) mergeBatch(batch []runRef) (runRef, error) {
	m := &mergeIter{st: st}
	if err := m.addRefs(batch); err != nil {
		return runRef{}, err
	}
	if err := m.prime(); err != nil {
		return runRef{}, err
	}
	out, err := os.CreateTemp(st.spillDir(), "unilog-cascade-"+st.job.Name+"-*.crc")
	if err != nil {
		m.Close()
		return runRef{}, fmt.Errorf("dataflow: create cascade file: %w", err)
	}
	fail := func(err error) (runRef, error) {
		m.Close()
		out.Close()
		os.Remove(out.Name())
		return runRef{}, err
	}
	bw := bufio.NewWriterSize(out, 1<<16)
	w := recordio.NewCRCWriter(bw)
	var records int64
	var encBuf []byte
	for {
		k, seq, t, err := m.nextRec()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fail(err)
		}
		encBuf, err = appendRunRec(encBuf[:0], k, seq, t)
		if err != nil {
			return fail(err)
		}
		if err := w.Append(encBuf); err != nil {
			return fail(fmt.Errorf("dataflow: write cascade file %s: %w", out.Name(), err))
		}
		records++
	}
	if err := m.Close(); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(fmt.Errorf("dataflow: seal cascade file %s: %w", out.Name(), err))
	}
	if err := out.Close(); err != nil {
		os.Remove(out.Name())
		return runRef{}, fmt.Errorf("dataflow: seal cascade file %s: %w", out.Name(), err)
	}
	return runRef{path: out.Name(), off: 0, len: w.Bytes(), records: records, temp: true}, nil
}

// dropUnreferenced removes source files whose last run was consumed by a
// cascade pass — spill files shrink as passes retire them instead of
// lingering at full size until Close.
func (st *spillTable) dropUnreferenced(old, next []runRef) {
	live := make(map[string]bool, len(next))
	for _, r := range next {
		live[r.path] = true
	}
	dropped := make(map[string]bool)
	for _, r := range old {
		if live[r.path] || dropped[r.path] {
			continue
		}
		dropped[r.path] = true
		os.Remove(r.path)
		for i := range st.parts {
			if st.parts[i].path == r.path {
				st.parts[i].path = ""
			}
		}
	}
}

// dropUnreferencedPart is dropUnreferenced for a single partition's
// cascade. Partition-local refs only ever point at that partition's
// spill file or its own cascade temps, so concurrent per-partition
// cascades never touch each other's files or path fields.
func (st *spillTable) dropUnreferencedPart(p *spillPart, old, next []runRef) {
	live := make(map[string]bool, len(next))
	for _, r := range next {
		live[r.path] = true
	}
	dropped := make(map[string]bool)
	for _, r := range old {
		if live[r.path] || dropped[r.path] {
			continue
		}
		dropped[r.path] = true
		os.Remove(r.path)
		if p.path == r.path {
			p.path = ""
		}
	}
}

// mergeIter is the k-way merge: a min-heap of run cursors. The root's
// record is handed out and the root advanced lazily on the next call, so a
// returned key stays valid until next is called again. Errors are sticky —
// a failed run cannot be skipped into a silently partial relation.
type mergeIter struct {
	st      *spillTable
	h       []runCursor
	files   []*os.File
	pending bool // the root's record has been handed out; advance before the next pop
	err     error
}

// addRefs opens cursors for a set of file runs, sharing one descriptor
// per distinct file. On error the iterator has been closed.
func (m *mergeIter) addRefs(refs []runRef) error {
	files := make(map[string]*os.File)
	for _, r := range refs {
		f := files[r.path]
		if f == nil {
			var err error
			f, err = os.Open(r.path)
			if err != nil {
				m.Close()
				return fmt.Errorf("dataflow: reopen run file: %w", err)
			}
			files[r.path] = f
			m.files = append(m.files, f)
		}
		sec := io.NewSectionReader(f, r.off, r.len)
		m.h = append(m.h, &fileRun{path: r.path, r: recordio.NewCRCReader(sec), remaining: r.records})
	}
	return nil
}

// prime advances every cursor once, drops the (theoretical) empty ones,
// and orders the heap. On error the iterator has been closed.
func (m *mergeIter) prime() error {
	kept := m.h[:0]
	for _, c := range m.h {
		switch err := c.advance(); {
		case err == io.EOF:
		case err != nil:
			m.Close()
			return err
		default:
			kept = append(kept, c)
		}
	}
	m.h = kept
	for i := len(m.h)/2 - 1; i >= 0; i-- {
		m.down(i)
	}
	return nil
}

// next returns the next record in global order, io.EOF after the last. The
// key is valid until the following call; the tuple is the caller's.
func (m *mergeIter) next() ([]byte, Tuple, error) {
	k, _, t, err := m.nextRec()
	return k, t, err
}

// nextRec is next plus the record's insertion sequence — the cascade
// rewrites runs and must preserve the sequence for downstream tiebreaks.
func (m *mergeIter) nextRec() ([]byte, uint64, Tuple, error) {
	if m.err != nil {
		return nil, 0, nil, m.err
	}
	if m.pending {
		m.pending = false
		switch err := m.h[0].advance(); {
		case err == io.EOF:
			n := len(m.h) - 1
			m.h[0] = m.h[n]
			m.h[n] = nil
			m.h = m.h[:n]
			if len(m.h) > 0 {
				m.down(0)
			}
		case err != nil:
			m.err = err
			return nil, 0, nil, err
		default:
			m.down(0)
		}
	}
	if len(m.h) == 0 {
		return nil, 0, nil, io.EOF
	}
	m.pending = true
	c := m.h[0]
	return c.key(), c.seq(), c.tuple(), nil
}

// less orders two cursors by (key, order columns, sequence) — identical to
// the run sort in spill.go, so the merge preserves it globally.
func (m *mergeIter) less(i, j int) bool {
	a, b := m.h[i], m.h[j]
	if c := bytes.Compare(a.key(), b.key()); c != 0 {
		return c < 0
	}
	for _, k := range m.st.order {
		if c := compareValues(a.tuple()[k.col], b.tuple()[k.col]); c != 0 {
			if k.desc {
				return c > 0
			}
			return c < 0
		}
	}
	return a.seq() < b.seq()
}

func (m *mergeIter) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(m.h) && m.less(l, s) {
			s = l
		}
		if r < len(m.h) && m.less(r, s) {
			s = r
		}
		if s == i {
			return
		}
		m.h[i], m.h[s] = m.h[s], m.h[i]
		i = s
	}
}

// Close releases the merge's open spill-file handles (one per partition;
// the files themselves belong to the spill table). Safe to call more than
// once, including mid-merge abandonment.
func (m *mergeIter) Close() error {
	var err error
	for _, f := range m.files {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	m.files = nil
	m.h = nil
	return err
}

// compareValues orders two column values the way OrderBy always has:
// integer kinds compare exactly, any numeric pair compares as float64, and
// everything else by its %v rendering — with numerics before non-numerics
// so mixed-type columns still have one total order shared by the external
// merge sort and the in-memory fast path.
func compareValues(a, b Value) int {
	aInt, aNum := numericKind(a)
	bInt, bNum := numericKind(b)
	switch {
	case aNum && bNum:
		if aInt && bInt {
			ai, bi := toI(a), toI(b)
			switch {
			case ai < bi:
				return -1
			case ai > bi:
				return 1
			}
			return 0
		}
		af, bf := toF(a), toF(b)
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	case aNum:
		return -1
	case bNum:
		return 1
	}
	if as, ok := a.(string); ok {
		if bs, ok := b.(string); ok {
			return strings.Compare(as, bs)
		}
	}
	return bytes.Compare(renderValue(a), renderValue(b))
}

// numericKind reports whether v is an integer kind and whether it is
// numeric at all.
func numericKind(v Value) (isInt, isNum bool) {
	switch v.(type) {
	case int64, int32, int:
		return true, true
	case float64:
		return false, true
	}
	return false, false
}

func renderValue(v Value) []byte {
	if s, ok := v.(string); ok {
		return []byte(s)
	}
	return fmt.Appendf(nil, "%v", v)
}

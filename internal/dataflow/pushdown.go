package dataflow

import (
	"unilog/internal/events"
)

// A Selection is the declarative subset of a scan that a storage format
// may be able to answer without materializing whole rows: a column
// projection, a name-pattern predicate, and a timestamp window. It is
// deliberately narrower than Filter's arbitrary closures — only what a
// columnar reader can evaluate against zone maps and column streams is
// expressible, and anything else stays a row-side Filter.
type Selection struct {
	// Columns projects the scan to the named columns, in order. nil means
	// every column of the format's schema.
	Columns []string

	// NamePattern, when non-empty, keeps only rows whose "name" column
	// matches the events.Pattern source text.
	NamePattern string

	// TimeMin and TimeMax bound the "timestamp" column to the half-open
	// window [TimeMin, TimeMax) in epoch milliseconds. Zero means
	// unbounded on that side.
	TimeMin, TimeMax int64
}

// empty reports whether the selection asks for nothing beyond a full scan.
func (s Selection) empty() bool {
	return s.Columns == nil && s.NamePattern == "" && s.TimeMin == 0 && s.TimeMax == 0
}

// PushdownFormat is an InputFormat that can absorb some or all of a
// Selection into the scan itself — pruning data it never decodes and
// reading only the column streams the query references. Pushdown returns
// the format specialized to the absorbed part, the residual selection the
// planner must still apply row-side, and whether any pushdown happened at
// all; ok == false means the planner falls through to the plain row path
// and applies the whole selection itself.
type PushdownFormat interface {
	InputFormat
	Pushdown(sel Selection) (f InputFormat, residual Selection, ok bool)
}

// LoadDirsSelective is LoadDirs with a Selection: formats that implement
// PushdownFormat evaluate the predicate against zone maps and read only
// the projected column streams; every other format gets the selection
// applied as ordinary row-side Filter/Project operators on top of the
// scan. Either way the resulting dataset has the projected schema and
// only the selected rows — the selection is a semantic contract, pushdown
// is just the cheap way to honor it.
func (j *Job) LoadDirsSelective(dirs []string, f InputFormat, sel Selection) (*Dataset, error) {
	residual := sel
	if pf, ok := f.(PushdownFormat); ok {
		if absorbed, rest, ok := pf.Pushdown(sel); ok {
			f, residual = absorbed, rest
		}
	}
	d, err := j.LoadDirs(dirs, f)
	if err != nil {
		return nil, err
	}
	return applySelection(d, residual)
}

// applySelection applies the residual (non-pushed) part of a selection as
// row-side operators: pattern and time-window filters, then projection.
func applySelection(d *Dataset, sel Selection) (*Dataset, error) {
	if sel.empty() {
		return d, nil
	}
	if sel.NamePattern != "" {
		pat, err := events.ParsePattern(sel.NamePattern)
		if err != nil {
			return nil, err
		}
		ni, err := d.Schema().Index("name")
		if err != nil {
			return nil, err
		}
		d = d.Filter(func(t Tuple) bool {
			s, ok := t[ni].(string)
			return ok && pat.MatchesString(s)
		})
	}
	if sel.TimeMin != 0 || sel.TimeMax != 0 {
		ti, err := d.Schema().Index("timestamp")
		if err != nil {
			return nil, err
		}
		min, max := sel.TimeMin, sel.TimeMax
		d = d.Filter(func(t Tuple) bool {
			ts, ok := t[ti].(int64)
			if !ok {
				return false
			}
			// Zero means unbounded on either side, mirroring the pushed-down
			// columnar filter exactly — including for pre-epoch timestamps.
			return (min == 0 || ts >= min) && (max == 0 || ts < max)
		})
	}
	if sel.Columns != nil {
		return d.Project(sel.Columns...)
	}
	return d, nil
}

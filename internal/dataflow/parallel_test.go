package dataflow

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"testing"
	"time"

	"unilog/internal/hdfs"
)

// parJob is spillJob with an explicit worker cap and merge fan-in.
func parJob(t *testing.T, budget int64, par, fanIn int) *Job {
	t.Helper()
	j := spillJob(t, budget)
	j.Parallelism = par
	j.MaxMergeFanIn = fanIn
	return j
}

// comparableStats zeroes the counters that are documented to depend on
// execution shape (per-partition cascades change how wide individual
// merges are) while keeping everything the engine promises is identical
// between serial and parallel execution — including the spill-side
// counters, which the async flusher must reproduce exactly.
func comparableStats(s Stats) Stats {
	s.PeakRunFanIn, s.MergeRuns, s.CascadePasses, s.CascadeRuns = 0, 0, 0, 0
	return s
}

type opsSuiteResult struct {
	agg, red, ordered, joined, distinct, asc, desc string
	stats                                          Stats
}

// runOpsSuite executes one fixed relational workload — every external
// operator — under the given budget/parallelism/fan-in and renders each
// output relation to a string. Two runs are equivalent iff the strings
// (rows AND order) and the comparable stats match.
func runOpsSuite(t *testing.T, budget int64, par, fanIn int) opsSuiteResult {
	t.Helper()
	j := parJob(t, budget, par, fanIn)
	build := func() *Dataset {
		rng := rand.New(rand.NewSource(401))
		tuples := make([]Tuple, 2500)
		for i := range tuples {
			tuples[i] = Tuple{
				fmt.Sprintf("k%03d", rng.Intn(60)),
				mixedValue(rng),
				int64(i),
			}
		}
		return NewDataset(j, Schema{"k", "v", "pos"}, tuples)
	}
	buildRight := func() *Dataset {
		rng := rand.New(rand.NewSource(402))
		tuples := make([]Tuple, 400)
		for i := range tuples {
			// Keys overlap the left's k000..k059 range partially and
			// repeat, so the join exercises both cross products and
			// unmatched keys on both sides.
			tuples[i] = Tuple{fmt.Sprintf("k%03d", rng.Intn(90)), int64(i)}
		}
		return NewDataset(j, Schema{"k", "tag"}, tuples)
	}
	var res opsSuiteResult
	render := func(d *Dataset) string {
		t.Helper()
		rows, err := d.Tuples()
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v", rows)
	}

	g, err := build().GroupBy("k")
	if err != nil {
		t.Fatal(err)
	}
	agg, err := g.Aggregate(Count("n"), Min("pos", "min"), Max("pos", "max"), CountDistinct("v", "dv"))
	if err != nil {
		t.Fatal(err)
	}
	res.agg = render(agg)
	red, err := g.ForEachGroup(Schema{"size", "first"}, func(key Tuple, group []Tuple) Tuple {
		return Tuple{int64(len(group)), group[0][2]}
	})
	if err != nil {
		t.Fatal(err)
	}
	res.red = render(red)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	// Ordered grouping: within-group tuple order is part of the contract.
	og, err := build().GroupByOrdered("v", "k")
	if err != nil {
		t.Fatal(err)
	}
	ored, err := og.ForEachGroup(Schema{"rows"}, func(key Tuple, group []Tuple) Tuple {
		return Tuple{fmt.Sprintf("%v", group)}
	})
	if err != nil {
		t.Fatal(err)
	}
	res.ordered = render(ored)
	if err := og.Close(); err != nil {
		t.Fatal(err)
	}

	joined, err := build().Join(buildRight(), "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	res.joined = render(joined)
	if err := joined.Close(); err != nil {
		t.Fatal(err)
	}

	proj, err := build().Project("k", "v")
	if err != nil {
		t.Fatal(err)
	}
	res.distinct = render(proj.Distinct())

	for _, asc := range []bool{true, false} {
		sorted, err := build().OrderBy("v", asc)
		if err != nil {
			t.Fatal(err)
		}
		s := render(sorted)
		if err := sorted.Close(); err != nil {
			t.Fatal(err)
		}
		if asc {
			res.asc = s
		} else {
			res.desc = s
		}
	}

	if files := spillFiles(t, j); len(files) != 0 {
		t.Fatalf("par=%d budget=%d left spill files: %v", par, budget, files)
	}
	res.stats = j.Stats()
	return res
}

// TestParallelOpsByteIdenticalToSerial is the tentpole equivalence
// property: for every external operator, parallel execution produces
// relations byte-identical to serial execution — same rows, same order —
// and identical cost accounting, across worker counts and budgets
// (in-memory, spilling, and spilling with a tiny fan-in that forces
// cascaded merges).
func TestParallelOpsByteIdenticalToSerial(t *testing.T) {
	cells := []struct {
		budget int64
		fanIn  int
	}{
		{0, 0},
		{32 << 10, 0},
		{2 << 10, 2}, // cascade-forcing: many runs, fan-in 2
	}
	for _, cell := range cells {
		ref := runOpsSuite(t, cell.budget, 1, cell.fanIn)
		if cell.budget > 0 && ref.stats.SpillRuns == 0 {
			t.Fatalf("budget %d never spilled — cell does not exercise the out-of-core path", cell.budget)
		}
		if cell.fanIn == 2 && ref.stats.CascadePasses == 0 {
			t.Fatal("fan-in 2 cell never cascaded")
		}
		for _, par := range []int{2, 8} {
			got := runOpsSuite(t, cell.budget, par, cell.fanIn)
			for what, pair := range map[string][2]string{
				"aggregate":      {ref.agg, got.agg},
				"foreachgroup":   {ref.red, got.red},
				"groupbyordered": {ref.ordered, got.ordered},
				"join":           {ref.joined, got.joined},
				"distinct":       {ref.distinct, got.distinct},
				"orderby-asc":    {ref.asc, got.asc},
				"orderby-desc":   {ref.desc, got.desc},
			} {
				if pair[0] != pair[1] {
					t.Fatalf("budget %d fanIn %d par %d: %s diverged from serial\nserial:   %.240s\nparallel: %.240s",
						cell.budget, cell.fanIn, par, what, pair[0], pair[1])
				}
			}
			if a, b := comparableStats(ref.stats), comparableStats(got.stats); a != b {
				t.Fatalf("budget %d fanIn %d par %d: stats diverged\nserial:   %+v\nparallel: %+v",
					cell.budget, cell.fanIn, par, a, b)
			}
		}
	}
}

// TestParallelReducePathEngages guards against the parallel dispatch
// silently never firing: a budgeted shuffle across many keys must leave
// at least two partitions holding data, which is exactly the
// parallelParts eligibility condition.
func TestParallelReducePathEngages(t *testing.T) {
	j := parJob(t, 4096, 4, 0)
	g, err := wideDataset(j, 3000, 200, 31).GroupBy("k")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if parts := g.st.parallelParts(); len(parts) < 2 {
		t.Fatalf("parallelParts = %v, want >= 2 partitions with data", parts)
	}
	if _, err := g.Aggregate(Count("n")); err != nil {
		t.Fatal(err)
	}
}

// TestParallelMergeAbandonKeepsState mirrors the serial abandonment
// contract on the parallel reduce: a reducer error mid-merge stops the
// fan-out after exactly one group, the spill state stays reusable, and
// Close removes every run file (no worker goroutine keeps one open).
func TestParallelMergeAbandonKeepsState(t *testing.T) {
	j := parJob(t, 512, 8, 0)
	g, err := wideDataset(j, 2000, 50, 23).GroupBy("k")
	if err != nil {
		t.Fatal(err)
	}
	if len(spillFiles(t, j)) == 0 {
		t.Fatal("no spill files under budget")
	}
	boom := errors.New("stop after first group")
	seen := 0
	err = g.EachGroup(func(key Tuple, group []Tuple) error {
		seen++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the reducer's error", err)
	}
	if seen != 1 {
		t.Fatalf("reducer ran %d times after aborting", seen)
	}
	if n, err := g.NumGroups(); err != nil || n != 50 {
		t.Fatalf("NumGroups after abandoned parallel merge = %d, %v", n, err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if left := spillFiles(t, j); len(left) != 0 {
		t.Fatalf("spill files survived Close: %v", left)
	}
}

// TestParallelDistinctEarlyClose abandons a parallel Distinct after one
// row; Close must stop the partition workers and remove the spill state.
func TestParallelDistinctEarlyClose(t *testing.T) {
	j := parJob(t, 512, 8, 0)
	proj, err := wideDataset(j, 2000, 80, 41).Project("k")
	if err != nil {
		t.Fatal(err)
	}
	it, err := proj.Distinct().Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if left := spillFiles(t, j); len(left) != 0 {
		t.Fatalf("spill files survived early Close: %v", left)
	}
}

// fakeFormat is an in-package InputFormat over fabricated splits, with
// per-split artificial latency (so completion order differs from plan
// order) and injectable decode failures.
type fakeFormat struct {
	rows   map[string][]Tuple
	delays map[string]time.Duration
	fail   map[string]error
}

func (f *fakeFormat) Schema() Schema { return Schema{"path", "seq"} }

func (f *fakeFormat) Splits(fs *hdfs.FS, dir string) ([]Split, error) {
	var paths []string
	for p := range f.rows {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	splits := make([]Split, len(paths))
	for i, p := range paths {
		splits[i] = Split{Path: p, Size: int64(len(f.rows[p]))}
	}
	return splits, nil
}

func (f *fakeFormat) ReadSplit(fs *hdfs.FS, sp Split, emit func(Tuple) error) error {
	time.Sleep(f.delays[sp.Path])
	if err := f.fail[sp.Path]; err != nil {
		return err
	}
	for _, t := range f.rows[sp.Path] {
		if err := emit(append(Tuple(nil), t...)); err != nil {
			return err
		}
	}
	return nil
}

// scanFixture builds n splits where the EARLIEST splits are the slowest,
// so a parallel pool completes them out of plan order.
func scanFixture(n int) *fakeFormat {
	f := &fakeFormat{rows: map[string][]Tuple{}, delays: map[string]time.Duration{}, fail: map[string]error{}}
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("split-%02d", i)
		for r := 0; r <= i%4; r++ {
			f.rows[path] = append(f.rows[path], Tuple{path, int64(r)})
		}
		f.delays[path] = time.Duration(n-i) * time.Millisecond
	}
	return f
}

func scanDataset(t *testing.T, j *Job, f *fakeFormat) *Dataset {
	t.Helper()
	splits, err := f.Splits(j.FS, "")
	if err != nil {
		t.Fatal(err)
	}
	return j.datasetForSplits(f, splits)
}

// TestParallelScanOrderedByteIdentical: the default (ordered) parallel
// scan delivers tuples in exactly serial plan order even when split
// completion order is reversed, with identical cost accounting.
func TestParallelScanOrderedByteIdentical(t *testing.T) {
	f := scanFixture(12)
	run := func(par int) (string, Stats) {
		j := NewJob("scan", hdfs.New(0))
		j.Parallelism = par
		rows, err := scanDataset(t, j, f).Tuples()
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v", rows), j.Stats()
	}
	serialRows, serialStats := run(1)
	for _, par := range []int{2, 4, 8, 32} {
		rows, stats := run(par)
		if rows != serialRows {
			t.Fatalf("par %d: scan order diverged\nserial:   %.200s\nparallel: %.200s", par, serialRows, rows)
		}
		if stats != serialStats {
			t.Fatalf("par %d: scan stats diverged\nserial:   %+v\nparallel: %+v", par, serialStats, stats)
		}
	}
}

// TestParallelScanUnorderedSameMultiset: Unordered waives order only —
// the delivered multiset and the task accounting stay identical.
func TestParallelScanUnorderedSameMultiset(t *testing.T) {
	f := scanFixture(10)
	run := func(par int) ([]string, Stats) {
		j := NewJob("scan", hdfs.New(0))
		j.Parallelism = par
		var got []string
		err := scanDataset(t, j, f).Unordered().Each(func(tp Tuple) error {
			got = append(got, fmt.Sprintf("%v", tp))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(got)
		return got, j.Stats()
	}
	serialRows, serialStats := run(1)
	gotRows, gotStats := run(4)
	if fmt.Sprintf("%v", gotRows) != fmt.Sprintf("%v", serialRows) {
		t.Fatalf("unordered scan multiset diverged:\nserial:   %v\nparallel: %v", serialRows, gotRows)
	}
	if gotStats != serialStats {
		t.Fatalf("unordered scan stats diverged:\nserial:   %+v\nparallel: %+v", serialStats, gotStats)
	}
}

// TestParallelScanErrorSticky: a failing split surfaces its error at the
// same plan-order position as the serial scan, charges the same
// plan-order prefix of map tasks, and stays sticky on further Next calls.
func TestParallelScanErrorSticky(t *testing.T) {
	boom := errors.New("decode failed")
	run := func(par int) (int, Stats) {
		f := scanFixture(12)
		f.fail["split-07"] = boom
		j := NewJob("scan", hdfs.New(0))
		j.Parallelism = par
		it, err := scanDataset(t, j, f).Open()
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		delivered := 0
		for {
			_, err := it.Next()
			if err == nil {
				delivered++
				continue
			}
			if !errors.Is(err, boom) {
				t.Fatalf("par %d: err = %v, want the decode error", par, err)
			}
			break
		}
		if _, err := it.Next(); !errors.Is(err, boom) {
			t.Fatalf("par %d: error not sticky, got %v", par, err)
		}
		return delivered, j.Stats()
	}
	serialN, serialStats := run(1)
	parN, parStats := run(4)
	if parN != serialN {
		t.Fatalf("delivered %d tuples before the error, serial delivered %d", parN, serialN)
	}
	if parStats != serialStats {
		t.Fatalf("error-path stats diverged:\nserial:   %+v\nparallel: %+v", serialStats, parStats)
	}
	if parStats.MapTasks != 8 {
		t.Fatalf("MapTasks = %d, want the plan-order prefix 8 (splits 0..7)", parStats.MapTasks)
	}
}

// TestParallelScanLimitChargesPrefix: an early-stopping consumer charges
// only the plan-order prefix of splits it consumed, exactly like the
// serial scan — regardless of how many splits the prefetch pool decoded.
func TestParallelScanLimitChargesPrefix(t *testing.T) {
	f := scanFixture(12)
	run := func(par int) Stats {
		j := NewJob("scan", hdfs.New(0))
		j.Parallelism = par
		n, err := scanDataset(t, j, f).Limit(1).Count()
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("limit count = %d", n)
		}
		return j.Stats()
	}
	serialStats := run(1)
	parStats := run(4)
	if parStats != serialStats {
		t.Fatalf("limit stats diverged:\nserial:   %+v\nparallel: %+v", serialStats, parStats)
	}
	if parStats.MapTasks != 1 {
		t.Fatalf("MapTasks = %d, want 1 (only the first split was delivered)", parStats.MapTasks)
	}
}

// TestUnorderedIsNoOpOffScan: Unordered on a derived dataset returns the
// dataset unchanged — only raw scan sources have an order to waive.
func TestUnorderedIsNoOpOffScan(t *testing.T) {
	d := NewDataset(emptyJob(), Schema{"a"}, []Tuple{{int64(1)}})
	if got := d.Unordered(); got != d {
		t.Fatal("Unordered on a non-scan dataset built a new node")
	}
}

// TestParallelDistinctReduceWaveTopUp: with enough distinct keys to need
// more than one reducer, the parallel Distinct must charge the same
// topped-up reduce wave as serial — the partition counts sum to the
// global distinct count.
func TestParallelDistinctReduceWaveTopUp(t *testing.T) {
	const keys = 25000
	run := func(par int) (int64, Stats) {
		j := parJob(t, 64<<10, par, 0)
		tuples := make([]Tuple, keys)
		for i := range tuples {
			tuples[i] = Tuple{fmt.Sprintf("key-%06d", i)}
		}
		n, err := NewDataset(j, Schema{"k"}, tuples).Distinct().Count()
		if err != nil {
			t.Fatal(err)
		}
		return n, j.Stats()
	}
	serialN, serialStats := run(1)
	parN, parStats := run(4)
	if serialN != keys || parN != keys {
		t.Fatalf("distinct counts = %d / %d, want %d", serialN, parN, keys)
	}
	if comparableStats(parStats) != comparableStats(serialStats) {
		t.Fatalf("distinct stats diverged:\nserial:   %+v\nparallel: %+v", serialStats, parStats)
	}
	if want := reducersFor(keys); parStats.ReduceTasks != want {
		t.Fatalf("ReduceTasks = %d, want the topped-up wave %d", parStats.ReduceTasks, want)
	}
}

// drainIter reads an iterator to EOF, failing the test on any error.
func drainIter(t *testing.T, it Iterator) int {
	t.Helper()
	n := 0
	for {
		_, err := it.Next()
		if err == io.EOF {
			return n
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
}

// TestParallelScanCloseMidStream: abandoning a parallel scan mid-stream
// (Close without EOF) joins the worker pool without deadlock and the
// next pipeline over the same spec still sees every tuple.
func TestParallelScanCloseMidStream(t *testing.T) {
	f := scanFixture(12)
	j := NewJob("scan", hdfs.New(0))
	j.Parallelism = 4
	d := scanDataset(t, j, f)
	it, err := d.Open()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := it.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	it2, err := d.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer it2.Close()
	want := 0
	for _, rows := range f.rows {
		want += len(rows)
	}
	if n := drainIter(t, it2); n != want {
		t.Fatalf("re-opened scan delivered %d tuples, want %d", n, want)
	}
}

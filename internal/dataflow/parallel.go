package dataflow

import (
	"bytes"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"unilog/internal/hdfs"
)

// Parallel execution machinery. Three phases of the engine fan out over
// a Job.Parallelism-bounded worker pool, and each is built so that its
// output is byte-identical to the serial path:
//
//   - the scan (parallelScan): N workers decode splits concurrently
//     into a bounded window; the ordered default releases splits to the
//     consumer strictly in plan order through a reorder buffer, and
//     Dataset.Unordered waives that for order-insensitive consumers;
//   - the reduce (mergePassParallel and the Distinct/Join fan-ins):
//     hash partitions hold disjoint keys, so each partition merges and
//     folds on its own worker, but partition key RANGES interleave —
//     per-partition outputs are therefore k-way merged by key at the
//     emit point rather than concatenated, reproducing the serial
//     stream exactly;
//   - the cascade (spillTable.runBatches): the batch merges within one
//     cascade pass are independent and run concurrently.
//
// The async spill flusher lives in spill.go; the shared invariant
// everywhere is that the (key, order column, insertion sequence)
// comparator is a total order, so run boundaries and partition
// boundaries can move between workers without the merged stream ever
// changing.

// scanResult is one decoded split traveling from a scan worker to the
// consumer.
type scanResult struct {
	idx    int
	tuples []Tuple
	err    error
}

// parallelScan decodes splits with a pool of workers. A semaphore caps
// the undelivered splits in flight (decoding, buffered in the results
// channel, or parked in the reorder buffer), so prefetch memory is
// bounded at window ≈ 2×workers split buffers no matter how far the
// fastest worker runs ahead. Because every in-flight split holds a
// semaphore slot and the results channel has one slot of capacity per
// semaphore slot, sends never block and the pool cannot deadlock.
//
// Cost accounting matches the serial splitIter where the serial
// contract is observable: MapTasks/FilesRead are charged when a split
// is *delivered* (so an early-stopping consumer — Limit — charges a
// plan-order prefix, not whatever the prefetcher touched), RecordsRead
// per delivered tuple, and BytesRead/BlocksRead once per scan as the
// filesystem-counter delta between open and finish — prefetched I/O is
// real I/O and is metered as such.
type parallelScan struct {
	job *Job
	sc  *scanSpec

	results chan scanResult
	sem     chan struct{}
	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup

	before hdfs.Stats
	charge sync.Once

	ready     map[int]scanResult // ordered mode: completed out-of-order splits
	nextIdx   int                // ordered mode: next split ordinal to deliver
	delivered int
	cur       []Tuple
	i         int
	active    bool // cur is a delivered split holding a semaphore slot
	err       error
}

func newParallelScan(j *Job, sc *scanSpec, workers int) *parallelScan {
	window := 2 * workers
	if window > len(sc.splits) {
		window = len(sc.splits)
	}
	s := &parallelScan{
		job:     j,
		sc:      sc,
		results: make(chan scanResult, window),
		sem:     make(chan struct{}, window),
		stop:    make(chan struct{}),
		ready:   make(map[int]scanResult),
		before:  j.FS.Snapshot(),
	}
	tmParWorkers.SetMax(int64(workers))
	var next atomic.Int64
	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go s.worker(&next)
	}
	return s
}

// worker claims split ordinals and decodes them. The semaphore slot
// acquired before a claim travels with the split until the consumer
// moves past it.
func (s *parallelScan) worker(next *atomic.Int64) {
	defer s.wg.Done()
	for {
		select {
		case s.sem <- struct{}{}:
		case <-s.stop:
			return
		}
		idx := int(next.Add(1)) - 1
		if idx >= len(s.sc.splits) {
			<-s.sem
			return
		}
		t0 := time.Now()
		var tuples []Tuple
		err := s.sc.format.ReadSplit(s.job.FS, s.sc.splits[idx], func(t Tuple) error {
			tuples = append(tuples, t)
			return nil
		})
		tmScanSplitNs.ObserveSince(t0)
		tmParScanBusyNs.ObserveSince(t0)
		if err != nil {
			tuples = nil
		}
		select {
		case s.results <- scanResult{idx: idx, tuples: tuples, err: err}:
		case <-s.stop:
			return
		}
	}
}

func (s *parallelScan) Next() (Tuple, error) {
	for {
		if s.err != nil {
			return nil, s.err
		}
		if s.i < len(s.cur) {
			t := s.cur[s.i]
			s.i++
			s.job.stats.recordsRead.Add(1)
			return t, nil
		}
		if s.active {
			// Finished consuming a delivered split: release its window slot.
			s.cur, s.active = nil, false
			<-s.sem
		}
		if s.delivered == len(s.sc.splits) {
			s.finish()
			return nil, io.EOF
		}
		var r scanResult
		if s.sc.unordered {
			r = <-s.results
		} else {
			for {
				if q, ok := s.ready[s.nextIdx]; ok {
					r = q
					delete(s.ready, s.nextIdx)
					break
				}
				q := <-s.results
				if q.idx == s.nextIdx {
					r = q
					break
				}
				s.ready[q.idx] = q
				tmScanQueueDepth.SetMax(int64(len(s.ready)))
			}
			s.nextIdx++
		}
		s.delivered++
		s.job.stats.mapTasks.Add(1)
		s.job.stats.filesRead.Add(1)
		if r.err != nil {
			// Sticky, like the serial iterator: a failed split cannot be
			// read past into a silently incomplete relation. The slot is
			// not released — the scan is over and Close tears down.
			s.err = r.err
			s.shutdown()
			s.finish()
			return nil, r.err
		}
		s.cur, s.i, s.active = r.tuples, 0, true
	}
}

// finish charges the scan's filesystem I/O exactly once, after workers
// have quiesced (EOF, first error, or Close).
func (s *parallelScan) finish() {
	s.charge.Do(func() {
		after := s.job.FS.Snapshot()
		db := after.BytesRead - s.before.BytesRead
		s.job.stats.bytesRead.Add(db)
		s.job.stats.blocksRead.Add(after.BlocksRead - s.before.BlocksRead)
		tmScanBytes.Add(db)
	})
}

// shutdown stops the pool and joins it. Workers mid-decode finish their
// split (sends never block) and exit at the next claim.
func (s *parallelScan) shutdown() {
	s.stopped.Do(func() { close(s.stop) })
	s.wg.Wait()
}

func (s *parallelScan) Close() error {
	s.shutdown()
	s.finish()
	return nil
}

// keyed is one key-tagged item flowing out of a partition worker into
// the fan-in merge: a finished group state, a distinct row, or a join
// output row, tagged with the rendered key it belongs to.
type keyed[T any] struct {
	key []byte
	val T
}

// sendKeyed delivers an item unless the consumer has torn down; false
// tells the worker to stop producing.
func sendKeyed[T any](ch chan<- keyed[T], stop <-chan struct{}, item keyed[T]) bool {
	select {
	case ch <- item:
		return true
	case <-stop:
		return false
	}
}

// fanInBuf is the per-partition channel depth of a reduce fan-in: how
// far a partition worker may run ahead of the consuming merge.
const fanInBuf = 64

// fanIn merges P channels of ascending-key items into one ascending
// stream. Hash partitions hold disjoint key sets, so cross-channel keys
// never tie and the merged order is exactly the global key order the
// serial single-stream merge produces. A linear scan over ≤64 heads per
// item beats heap bookkeeping at this width.
type fanIn[T any] struct {
	chans  []chan keyed[T]
	heads  []keyed[T]
	has    []bool
	inited bool
}

func newFanIn[T any](chans []chan keyed[T]) *fanIn[T] {
	return &fanIn[T]{chans: chans, heads: make([]keyed[T], len(chans)), has: make([]bool, len(chans))}
}

func (f *fanIn[T]) fill(i int) {
	v, ok := <-f.chans[i]
	f.heads[i], f.has[i] = v, ok
}

// next pops the minimum-key head; ok is false once every channel has
// closed and drained.
func (f *fanIn[T]) next() (keyed[T], bool) {
	if !f.inited {
		f.inited = true
		for i := range f.chans {
			f.fill(i)
		}
	}
	best := -1
	for i := range f.heads {
		if !f.has[i] {
			continue
		}
		if best < 0 || bytes.Compare(f.heads[i].key, f.heads[best].key) < 0 {
			best = i
		}
	}
	if best < 0 {
		var zero keyed[T]
		return zero, false
	}
	item := f.heads[best]
	f.fill(best)
	return item, true
}

// parallelParts returns the partition indices a parallel reduce may fan
// out over, or nil when the table must take the serial path: closed,
// already globally cascaded (st.merged holds runs that span partition
// boundaries, so partition identity is gone), or fewer than two
// partitions holding data.
func (st *spillTable) parallelParts() []int {
	if st.closed || len(st.merged) > 0 {
		return nil
	}
	var parts []int
	for i := range st.parts {
		if st.partHasData(i) {
			parts = append(parts, i)
		}
	}
	if len(parts) < 2 {
		return nil
	}
	return parts
}

// partHasData reports whether partition pi holds any runs or residue.
func (st *spillTable) partHasData(pi int) bool {
	p := &st.parts[pi]
	return len(p.runs) > 0 || len(p.mem) > 0 || len(p.merged) > 0
}

// mergePassParallel is the parallel counterpart of mergePass: each hash
// partition merges and folds on its own worker, streaming finished
// (key, state) pairs into a bounded channel, and the consumer k-way
// merges the channel heads by key so groups are emitted in exactly the
// serial global key order. emit (and therefore every user callback)
// runs only on the calling goroutine; newState/fold run on workers, one
// group at a time, so group state needs no locking.
//
// Every active partition gets its own worker — deliberately NOT a
// semaphore-bounded pool. The fan-in needs a head item from every
// channel before it can emit its first group, so gating producers
// behind a semaphore deadlocks: slot holders fill their channels and
// block while the consumer starves on a channel whose producer can
// never acquire a slot. Concurrency is bounded by the partition
// fan-out (Job.SpillPartitions, default 8) and run-ahead memory by
// fanInBuf items per channel; workers past the consumer's current key
// park on their full channels, so the pool self-throttles to the
// merge frontier.
func mergePassParallel[S any](st *spillTable, parts []int, newState func(first Tuple) S, fold func(S, Tuple) S, emit func(s S) error) (int, error) {
	tmParWorkers.SetMax(int64(len(parts)))
	stop := make(chan struct{})
	chans := make([]chan keyed[S], len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for wi, pi := range parts {
		ch := make(chan keyed[S], fanInBuf)
		chans[wi] = ch
		wg.Add(1)
		go func(wi, pi int, ch chan keyed[S]) {
			defer wg.Done()
			defer close(ch)
			t0 := time.Now()
			defer tmParReduceBusyNs.ObserveSince(t0)
			errs[wi] = reducePart(st, pi, newState, fold, ch, stop)
		}(wi, pi, ch)
	}
	f := newFanIn(chans)
	total := 0
	var emitErr error
	for emitErr == nil {
		item, ok := f.next()
		if !ok {
			break
		}
		total++
		if emit != nil {
			emitErr = emit(item.val)
		}
	}
	close(stop)
	wg.Wait()
	if emitErr != nil {
		return 0, emitErr
	}
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return total, nil
}

// reducePart folds the groups of one partition, sending each finished
// group tagged with a copy of its key (the working key buffer is
// reused).
func reducePart[S any](st *spillTable, pi int, newState func(first Tuple) S, fold func(S, Tuple) S, ch chan<- keyed[S], stop <-chan struct{}) error {
	m, err := st.mergePart(pi)
	if err != nil {
		return err
	}
	defer m.Close()
	var curKey []byte
	var state S
	open := false
	for {
		key, t, err := m.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if !open || !bytes.Equal(key, curKey) {
			if open && !sendKeyed(ch, stop, keyed[S]{key: append([]byte(nil), curKey...), val: state}) {
				return nil
			}
			curKey = append(curKey[:0], key...)
			state = newState(t)
			open = true
		}
		state = fold(state, t)
	}
	if open {
		sendKeyed(ch, stop, keyed[S]{key: append([]byte(nil), curKey...), val: state})
	}
	return nil
}

// fanIter is the shared pull-side of the streaming parallel reduces
// (Distinct, Join): an Iterator over a fan-in whose workers it owns.
// stopWorkers tears the pool down exactly once; firstErr is checked
// only after every channel has drained, so a worker error surfaces
// (sticky) instead of truncating the relation silently.
type fanIter struct {
	f       *fanIn[Tuple]
	stop    chan struct{}
	stopped sync.Once
	wg      *sync.WaitGroup
	errs    []error
	done    bool
	err     error
}

func (it *fanIter) stopWorkers() {
	it.stopped.Do(func() { close(it.stop) })
	it.wg.Wait()
}

func (it *fanIter) firstErr() error {
	for _, err := range it.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// next drives the fan-in; at exhaustion it joins the workers and
// surfaces their first error, once, stickily.
func (it *fanIter) next() (Tuple, error) {
	if it.err != nil {
		return nil, it.err
	}
	if it.done {
		return nil, io.EOF
	}
	item, ok := it.f.next()
	if ok {
		return item.val, nil
	}
	it.done = true
	it.stopWorkers()
	if err := it.firstErr(); err != nil {
		it.err = err
		return nil, err
	}
	return nil, io.EOF
}

// newDistinctParallel is the parallel Distinct reduce: each partition
// deduplicates its own merged stream (keys are partition-disjoint, so
// within-partition dedup is global dedup) and the fan-in restores the
// global key order. The winning representative of each key is the
// lowest-sequence tuple, same as serial, because the per-partition
// merge is sequence-ordered within a key.
func newDistinctParallel(j *Job, st *spillTable, parts []int) Iterator {
	// One worker per active partition — the fan-in consumer needs every
	// channel's head before it can emit (see mergePassParallel).
	tmParWorkers.SetMax(int64(len(parts)))
	stop := make(chan struct{})
	chans := make([]chan keyed[Tuple], len(parts))
	errs := make([]error, len(parts))
	counts := make([]int, len(parts))
	wg := &sync.WaitGroup{}
	for wi, pi := range parts {
		ch := make(chan keyed[Tuple], fanInBuf)
		chans[wi] = ch
		wg.Add(1)
		go func(wi, pi int, ch chan keyed[Tuple]) {
			defer wg.Done()
			defer close(ch)
			t0 := time.Now()
			defer tmParReduceBusyNs.ObserveSince(t0)
			counts[wi], errs[wi] = distinctPart(st, pi, ch, stop)
		}(wi, pi, ch)
	}
	return &distinctParIter{
		fanIter: fanIter{f: newFanIn(chans), stop: stop, wg: wg, errs: errs},
		job:     j, st: st, counts: counts,
	}
}

// distinctPart emits the first occurrence of each key in one partition,
// returning the partition's distinct count for the reduce-wave top-up.
func distinctPart(st *spillTable, pi int, ch chan<- keyed[Tuple], stop <-chan struct{}) (int, error) {
	m, err := st.mergePart(pi)
	if err != nil {
		return 0, err
	}
	defer m.Close()
	var last []byte
	started := false
	total := 0
	for {
		key, t, err := m.next()
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
		if started && bytes.Equal(key, last) {
			continue
		}
		started = true
		last = append(last[:0], key...)
		total++
		if !sendKeyed(ch, stop, keyed[Tuple]{key: append([]byte(nil), key...), val: t}) {
			return total, nil
		}
	}
}

// distinctParIter adapts the Distinct fan-in to the serial
// distinctIter's contract: the reduce wave tops up once at EOF with the
// global distinct count (partition counts sum exactly — keys are
// disjoint), and Close releases the spill table it owns.
type distinctParIter struct {
	fanIter
	job     *Job
	st      *spillTable
	counts  []int
	charged bool
}

func (it *distinctParIter) Next() (Tuple, error) {
	t, err := it.next()
	if err == io.EOF && !it.charged {
		it.charged = true
		total := 0
		for _, n := range it.counts {
			total += n
		}
		it.job.stats.reduceTasks.Add(int64(reducersFor(total) - 1))
	}
	return t, err
}

func (it *distinctParIter) Close() error {
	it.stopWorkers()
	return it.st.Close()
}

// openParallel builds the per-partition parallel join, or returns nil
// when the serial path must run: one worker, mismatched partition
// fan-outs, a side already globally cascaded, or fewer than two
// partitions holding data. Left and right tables co-partition (the
// right is built with the left's fan-out and keys hash by rendered
// bytes), so partition pi of each side holds exactly the joinable keys
// of pi — each pair runs the ordinary serial joinIter, and the fan-in
// merges their row streams back into global key order.
func (s *joinState) openParallel() Iterator {
	workers := s.job.parallelism()
	if workers <= 1 || s.lt.closed || s.rt.closed ||
		len(s.lt.merged) > 0 || len(s.rt.merged) > 0 ||
		s.lt.numParts() != s.rt.numParts() {
		return nil
	}
	var parts []int
	for pi := 0; pi < s.lt.numParts(); pi++ {
		// Right-only partitions still run: their keys count toward the
		// distinct-right total exactly as the serial drain counts them.
		if s.lt.partHasData(pi) || s.rt.partHasData(pi) {
			parts = append(parts, pi)
		}
	}
	if len(parts) < 2 {
		return nil
	}
	// One worker per active partition pair — the fan-in consumer needs
	// every channel's head before it can emit (see mergePassParallel).
	tmParWorkers.SetMax(int64(len(parts)))
	stop := make(chan struct{})
	chans := make([]chan keyed[Tuple], len(parts))
	errs := make([]error, len(parts))
	distincts := make([]int, len(parts))
	wg := &sync.WaitGroup{}
	for wi, pi := range parts {
		ch := make(chan keyed[Tuple], fanInBuf)
		chans[wi] = ch
		wg.Add(1)
		go func(wi, pi int, ch chan keyed[Tuple]) {
			defer wg.Done()
			defer close(ch)
			t0 := time.Now()
			defer tmParReduceBusyNs.ObserveSince(t0)
			distincts[wi], errs[wi] = joinPart(s, pi, ch, stop)
		}(wi, pi, ch)
	}
	return &joinParIter{
		fanIter: fanIter{f: newFanIn(chans), stop: stop, wg: wg, errs: errs},
		s:       s, distincts: distincts,
	}
}

// joinPart drives one partition pair through the serial join logic,
// tagging every output row with its left key for the fan-in. The
// iterator is constructed pre-charged: the reduce-wave top-up must use
// the distinct-right total across partitions, which only the consumer
// knows.
func joinPart(s *joinState, pi int, ch chan<- keyed[Tuple], stop <-chan struct{}) (int, error) {
	lm, err := s.lt.mergePart(pi)
	if err != nil {
		return 0, err
	}
	rm, err := s.rt.mergePart(pi)
	if err != nil {
		lm.Close()
		return 0, err
	}
	ji := &joinIter{s: s, lm: lm, rm: rm, charged: true}
	defer ji.Close()
	for {
		t, err := ji.Next()
		if err == io.EOF {
			return ji.distinctRight, nil
		}
		if err != nil {
			return ji.distinctRight, err
		}
		if !sendKeyed(ch, stop, keyed[Tuple]{key: append([]byte(nil), ji.matched...), val: t}) {
			return ji.distinctRight, nil
		}
	}
}

// joinParIter adapts the join fan-in to the serial joinIter's contract:
// rows in global key order (left-input order within a key, courtesy of
// each partition's sequence-ordered merge), with the two-sided reduce
// wave topped up once at EOF from the summed distinct-right counts.
type joinParIter struct {
	fanIter
	s         *joinState
	distincts []int
	charged   bool
}

func (it *joinParIter) Next() (Tuple, error) {
	t, err := it.next()
	if err == io.EOF && !it.charged {
		it.charged = true
		total := 0
		for _, n := range it.distincts {
			total += n
		}
		it.s.job.stats.reduceTasks.Add(int64(2 * (reducersFor(total) - 1)))
	}
	return t, err
}

func (it *joinParIter) Close() error {
	it.stopWorkers()
	return nil
}

package dataflow

import (
	"fmt"
	"io"
	"testing"

	"unilog/internal/hdfs"
)

// BenchmarkGroupByKey pits the engine's scratch-buffer key builder against
// the fmt.Sprintf-per-column rendering it replaced. The key is built once
// per tuple on every shuffle, so this is the group-by hot path.
func BenchmarkGroupByKey(b *testing.B) {
	tuples := make([]Tuple, 512)
	for i := range tuples {
		tuples[i] = Tuple{int64(i % 97), fmt.Sprintf("session-%d", i%31), i%2 == 0, float64(i) / 3}
	}
	idx := []int{0, 1, 2, 3}

	b.Run("sprintf", func(b *testing.B) {
		b.ReportAllocs()
		var sink int
		for i := 0; i < b.N; i++ {
			t := tuples[i%len(tuples)]
			// The old keyOf: one Sprintf (and one string concat) per column.
			k := ""
			for _, j := range idx {
				k += fmt.Sprintf("%v\x00", t[j])
			}
			sink += len(k)
		}
		_ = sink
	})

	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		var scratch []byte
		var sink int
		for i := 0; i < b.N; i++ {
			scratch = appendKey(scratch[:0], tuples[i%len(tuples)], idx)
			sink += len(scratch)
		}
		_ = sink
	})
}

// BenchmarkReduceStrategies pits the engine's streaming merge-reduce
// against the hash-reduce it replaced (inlined here as the reference: the
// old mergePass's index map + entries slice, folding every merged tuple
// into per-key state). Both strategies consume the identical resident
// shuffle — no spill-decode noise — so the allocs column is pure
// reduce-side cost, and it is the point of the comparison: hash-reduce
// allocates per *group* (retained key strings, map cells, the entries
// slice), so its allocs/op grow ~100x from groups=64 to groups=6400, while
// merge-reduce holds one running state and a reused boundary key, so its
// allocs/op stay flat as the group count scales. (Spilled-run reduce
// throughput is covered by BenchmarkGroupByShuffle and benchrunner E17.)
func BenchmarkReduceStrategies(b *testing.B) {
	for _, groups := range []int{64, 6400} {
		j := NewJob("bench", hdfs.New(0))
		tuples := make([]Tuple, 64000)
		for i := range tuples {
			tuples[i] = Tuple{fmt.Sprintf("key-%06d", i%groups), int64(i)}
		}
		g, err := NewDataset(j, Schema{"k", "v"}, tuples).GroupBy("k")
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("hash-reduce/groups=%d", groups), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := g.st.mergeAll()
				if err != nil {
					b.Fatal(err)
				}
				type entry struct {
					key string
					n   int64
				}
				index := make(map[string]int)
				var entries []entry
				for {
					key, _, err := m.next()
					if err == io.EOF {
						break
					}
					if err != nil {
						b.Fatal(err)
					}
					ei, ok := index[string(key)]
					if !ok {
						ei = len(entries)
						k := string(key)
						index[k] = ei
						entries = append(entries, entry{key: k})
					}
					entries[ei].n++
				}
				m.Close()
				if len(entries) != groups {
					b.Fatalf("groups = %d", len(entries))
				}
			}
		})
		b.Run(fmt.Sprintf("merge-reduce/groups=%d", groups), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n, err := mergePass(g,
					func(Tuple) int64 { return 0 },
					func(s int64, _ Tuple) int64 { return s + 1 },
					nil)
				if err != nil {
					b.Fatal(err)
				}
				if n != groups {
					b.Fatalf("groups = %d", n)
				}
			}
		})
		g.Close()
	}
}

// BenchmarkGroupByShuffle measures a whole shuffle (partition + aggregate)
// at a size where key building dominates, in memory and spilling.
func BenchmarkGroupByShuffle(b *testing.B) {
	build := func(j *Job) *Dataset {
		tuples := make([]Tuple, 20000)
		for i := range tuples {
			tuples[i] = Tuple{int64(i % 997), fmt.Sprintf("s-%d", i%31), int64(i)}
		}
		return NewDataset(j, Schema{"u", "s", "v"}, tuples)
	}
	run := func(b *testing.B, budget int64) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j := NewJob("bench", hdfs.New(0))
			j.MemoryBudget = budget
			j.SpillDir = b.TempDir()
			g, err := build(j).GroupBy("u", "s")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := g.Aggregate(Count("n"), Sum("v", "sum")); err != nil {
				b.Fatal(err)
			}
			g.Close()
		}
	}
	b.Run("in-memory", func(b *testing.B) { run(b, 0) })
	b.Run("spilling-64KiB", func(b *testing.B) { run(b, 64<<10) })
}

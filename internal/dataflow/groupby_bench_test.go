package dataflow

import (
	"fmt"
	"testing"

	"unilog/internal/hdfs"
)

// BenchmarkGroupByKey pits the engine's scratch-buffer key builder against
// the fmt.Sprintf-per-column rendering it replaced. The key is built once
// per tuple on every shuffle, so this is the group-by hot path.
func BenchmarkGroupByKey(b *testing.B) {
	tuples := make([]Tuple, 512)
	for i := range tuples {
		tuples[i] = Tuple{int64(i % 97), fmt.Sprintf("session-%d", i%31), i%2 == 0, float64(i) / 3}
	}
	idx := []int{0, 1, 2, 3}

	b.Run("sprintf", func(b *testing.B) {
		b.ReportAllocs()
		var sink int
		for i := 0; i < b.N; i++ {
			t := tuples[i%len(tuples)]
			// The old keyOf: one Sprintf (and one string concat) per column.
			k := ""
			for _, j := range idx {
				k += fmt.Sprintf("%v\x00", t[j])
			}
			sink += len(k)
		}
		_ = sink
	})

	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		var scratch []byte
		var sink int
		for i := 0; i < b.N; i++ {
			scratch = appendKey(scratch[:0], tuples[i%len(tuples)], idx)
			sink += len(scratch)
		}
		_ = sink
	})
}

// BenchmarkGroupByShuffle measures a whole shuffle (partition + aggregate)
// at a size where key building dominates, in memory and spilling.
func BenchmarkGroupByShuffle(b *testing.B) {
	build := func(j *Job) *Dataset {
		tuples := make([]Tuple, 20000)
		for i := range tuples {
			tuples[i] = Tuple{int64(i % 997), fmt.Sprintf("s-%d", i%31), int64(i)}
		}
		return NewDataset(j, Schema{"u", "s", "v"}, tuples)
	}
	run := func(b *testing.B, budget int64) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j := NewJob("bench", hdfs.New(0))
			j.MemoryBudget = budget
			j.SpillDir = b.TempDir()
			g, err := build(j).GroupBy("u", "s")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := g.Aggregate(Count("n"), Sum("v", "sum")); err != nil {
				b.Fatal(err)
			}
			g.Close()
		}
	}
	b.Run("in-memory", func(b *testing.B) { run(b, 0) })
	b.Run("spilling-64KiB", func(b *testing.B) { run(b, 64<<10) })
}

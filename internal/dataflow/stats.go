package dataflow

import "sync/atomic"

// jobStats is the internal, race-safe representation of Stats. Parallel
// scan workers, the async spill flusher, and concurrent per-partition
// reduce passes all charge the same job, so every field is an atomic;
// Job.Stats() materializes the plain snapshot the public API has always
// returned. Counts are identical to the serial engine's for any fully
// consumed pipeline — parallel execution changes when a charge lands,
// never how much is charged.
type jobStats struct {
	mapTasks       atomic.Int64
	reduceTasks    atomic.Int64
	filesRead      atomic.Int64
	recordsRead    atomic.Int64
	bytesRead      atomic.Int64
	blocksRead     atomic.Int64
	shuffleRecords atomic.Int64
	shuffleBytes   atomic.Int64
	outputRecords  atomic.Int64

	spilledBytes      atomic.Int64
	spilledRecords    atomic.Int64
	spilledPartitions atomic.Int64
	spillFlushes      atomic.Int64
	spillRuns         atomic.Int64
	mergePasses       atomic.Int64
	mergeRuns         atomic.Int64
	peakRunFanIn      atomic.Int64
	cascadePasses     atomic.Int64
	cascadeRuns       atomic.Int64
}

// maxRunFanIn raises peakRunFanIn to n if n exceeds it — the same
// CAS-max idiom as telemetry.Gauge.SetMax, since concurrent merges
// race to record the widest fan-in.
func (s *jobStats) maxRunFanIn(n int64) {
	for {
		cur := s.peakRunFanIn.Load()
		if n <= cur || s.peakRunFanIn.CompareAndSwap(cur, n) {
			return
		}
	}
}

// snapshot renders the atomic fields into the public Stats struct.
func (s *jobStats) snapshot() Stats {
	return Stats{
		MapTasks:       int(s.mapTasks.Load()),
		ReduceTasks:    int(s.reduceTasks.Load()),
		FilesRead:      int(s.filesRead.Load()),
		RecordsRead:    s.recordsRead.Load(),
		BytesRead:      s.bytesRead.Load(),
		BlocksRead:     s.blocksRead.Load(),
		ShuffleRecords: s.shuffleRecords.Load(),
		ShuffleBytes:   s.shuffleBytes.Load(),
		OutputRecords:  s.outputRecords.Load(),

		SpilledBytes:      s.spilledBytes.Load(),
		SpilledRecords:    s.spilledRecords.Load(),
		SpilledPartitions: int(s.spilledPartitions.Load()),
		SpillFlushes:      int(s.spillFlushes.Load()),
		SpillRuns:         int(s.spillRuns.Load()),
		MergePasses:       int(s.mergePasses.Load()),
		MergeRuns:         int(s.mergeRuns.Load()),
		PeakRunFanIn:      int(s.peakRunFanIn.Load()),
		CascadePasses:     int(s.cascadePasses.Load()),
		CascadeRuns:       int(s.cascadeRuns.Load()),
	}
}

package legacy

import (
	"fmt"
	"testing"
	"time"

	"unilog/internal/dataflow"
	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/recordio"
	"unilog/internal/session"
	"unilog/internal/thrift"
	"unilog/internal/warehouse"
	"unilog/internal/workload"
)

var day = time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)

func TestWebFrontendRoundTrip(t *testing.T) {
	at := day.Add(3 * time.Hour)
	rec := EncodeWebFrontend(42, "cookie", "10.0.0.1", at, "home:click", map[string]string{"k": "v"})
	e, err := DecodeWebFrontend(rec)
	if err != nil {
		t.Fatal(err)
	}
	if e.UserID != 42 || e.SessionCookie != "cookie" || e.Event.Type != "home:click" || e.Event.Params["k"] != "v" {
		t.Fatalf("decoded = %+v", e)
	}
	got, err := e.Time()
	if err != nil || !got.Equal(at) {
		t.Fatalf("Time = %v, %v", got, err)
	}
}

func TestAPIServerRoundTrip(t *testing.T) {
	at := day.Add(time.Hour)
	rec := EncodeAPIServer(7, "sess", "home/click", "11.0.0.1", at)
	e, err := DecodeAPIServer(rec)
	if err != nil {
		t.Fatal(err)
	}
	if e.UID != 7 || e.Sess != "sess" || e.Action != "home/click" || e.Unix != at.Unix() {
		t.Fatalf("decoded = %+v", e)
	}
	// Garbage delimiters yield errors, not silent garbage.
	if _, err := DecodeAPIServer([]byte("a,b,c")); err == nil {
		t.Fatal("comma-delimited line decoded")
	}
	if _, err := DecodeAPIServer([]byte("x\ty\tz\tw\tnotanumber")); err == nil {
		t.Fatal("bad timestamp decoded")
	}
}

func TestSearchEventRoundTrip(t *testing.T) {
	in := &SearchEvent{UserID: 9, Action: "click", IP: "12.0.0.1", Millis: day.UnixMilli()}
	var out SearchEvent
	if err := thrift.DecodeBinary(thrift.EncodeBinary(in), &out); err != nil {
		t.Fatal(err)
	}
	if out != *in {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestFromClientEventRouting(t *testing.T) {
	mk := func(name string) *events.ClientEvent {
		return &events.ClientEvent{
			Name: events.MustParseName(name), UserID: 1, SessionID: "s",
			IP: "10.0.0.1", Timestamp: day.UnixMilli(),
		}
	}
	cases := []struct {
		name string
		want string
	}{
		{"web:home:timeline:stream:tweet:impression", CategoryWeb},
		{"web:search:results:stream:result:click", CategorySearch},
		{"iphone:search:results:stream:result:click", CategorySearch},
		{"iphone:home:timeline:stream:tweet:impression", CategoryAPI},
		{"android:profile:::follow_button:follow", CategoryAPI},
	}
	for _, c := range cases {
		cat, rec := FromClientEvent(mk(c.name))
		if cat != c.want {
			t.Errorf("FromClientEvent(%s) category = %s, want %s", c.name, cat, c.want)
		}
		if len(rec) == 0 {
			t.Errorf("FromClientEvent(%s) empty record", c.name)
		}
	}
}

// writeLegacyDay converts a generated day into legacy categories on fs.
func writeLegacyDay(t *testing.T, fs *hdfs.FS, evs []events.ClientEvent) map[string][]string {
	t.Helper()
	type buf struct {
		data *sliceWriter
		w    *recordio.GzipWriter
	}
	bufs := map[string]*buf{}
	for i := range evs {
		cat, rec := FromClientEvent(&evs[i])
		b := bufs[cat]
		if b == nil {
			sw := &sliceWriter{}
			b = &buf{data: sw, w: recordio.NewGzipWriter(sw)}
			bufs[cat] = b
		}
		if err := b.w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	dirs := map[string][]string{}
	for cat, b := range bufs {
		if err := b.w.Close(); err != nil {
			t.Fatal(err)
		}
		dir := warehouse.HourDir(cat, day)
		if err := fs.WriteFile(dir+"/part-00000.gz", b.data.data); err != nil {
			t.Fatal(err)
		}
		dirs[cat] = []string{dir}
	}
	return dirs
}

type sliceWriter struct{ data []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.data = append(s.data, p...)
	return len(p), nil
}

// TestReconstructSessionsMatchesUnified: the painful legacy join-based
// reconstruction finds the same logged-in session count as the unified
// sessionizer, at higher cost.
func TestReconstructSessionsMatchesUnified(t *testing.T) {
	cfg := workload.DefaultConfig(day)
	cfg.Users = 60
	cfg.LoggedOutSessions = 0 // legacy search logs can't sessionize user 0
	evs, truth := workload.New(cfg).Generate()

	fs := hdfs.New(0)
	dirs := writeLegacyDay(t, fs, evs)
	j := dataflow.NewJob("legacy", fs)
	got, err := ReconstructSessions(j, dirs, session.InactivityGap)
	if err != nil {
		t.Fatal(err)
	}
	if got != truth.Sessions {
		t.Fatalf("legacy reconstruction = %d sessions, truth = %d", got, truth.Sessions)
	}
	if j.Stats().ShuffleBytes == 0 || j.Stats().MapTasks < 3 {
		t.Fatalf("legacy job stats = %+v, expected multi-category scan + shuffle", j.Stats())
	}
}

func TestFormatsRejectGarbage(t *testing.T) {
	for cat, f := range Formats() {
		if tup := f.Decode([]byte("complete garbage \x00\x01")); tup != nil && cat != CategoryAPI {
			// api_server garbage without tabs errors; web/search must too.
			t.Errorf("%s decoded garbage into %v", cat, tup)
		}
	}
}

func TestNormalizedSchemaStable(t *testing.T) {
	want := fmt.Sprint(dataflow.Schema{"user_id", "session_hint", "ip", "timestamp_ms", "action"})
	for cat, f := range Formats() {
		if fmt.Sprint(f.Schema()) != want {
			t.Errorf("%s schema = %v", cat, f.Schema())
		}
	}
}

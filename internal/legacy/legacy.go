// Package legacy reproduces the paper's *first-generation* logging — the
// application-specific formats of §3.1 that the unified client events
// replaced — so experiments can measure what unification buys.
//
// Three deliberately inconsistent categories are modelled, each with the
// pathologies the paper complains about:
//
//   - web_frontend: nested JSON with camelCase field names (userId,
//     sessionCookie) and an ISO-8601 string timestamp;
//   - api_server: tab-delimited text with snake_case names (uid, sess) and a
//     seconds-resolution unix timestamp;
//   - search_service: a Thrift struct with user_id in millis — and *no
//     session id at all*, so sessions must be inferred by user id and time
//     proximity ("no consistent way across all applications to easily
//     reconstruct the session, except based on timestamps and the user id").
//
// ReconstructSessions performs the join-based analysis those formats force
// on the data scientist; its cost is compared against the unified group-by
// and the materialized session sequences in experiment E3.
package legacy

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"unilog/internal/dataflow"
	"unilog/internal/events"
	"unilog/internal/thrift"
)

// The legacy Scribe categories — "several dozen" in production, three here.
const (
	CategoryWeb    = "web_frontend"
	CategoryAPI    = "api_server"
	CategorySearch = "search_service"
)

// Categories lists all legacy categories.
var Categories = []string{CategoryWeb, CategoryAPI, CategorySearch}

// WebFrontendEvent is the JSON frontend log: rich, nested, camelCase.
type WebFrontendEvent struct {
	UserID        int64             `json:"userId"`
	SessionCookie string            `json:"sessionCookie"`
	ClientIP      string            `json:"clientIp"`
	Timestamp     string            `json:"timestamp"` // ISO-8601
	Event         webFrontendDetail `json:"event"`
}

type webFrontendDetail struct {
	Type   string            `json:"type"`
	Params map[string]string `json:"params,omitempty"`
}

// EncodeWebFrontend marshals the event to its JSON wire form.
func EncodeWebFrontend(userID int64, cookie, ip string, at time.Time, typ string, params map[string]string) []byte {
	b, err := json.Marshal(WebFrontendEvent{
		UserID:        userID,
		SessionCookie: cookie,
		ClientIP:      ip,
		Timestamp:     at.UTC().Format(time.RFC3339Nano),
		Event:         webFrontendDetail{Type: typ, Params: params},
	})
	if err != nil {
		panic(err) // all field types are JSON-safe
	}
	return b
}

// DecodeWebFrontend parses a JSON frontend record.
func DecodeWebFrontend(rec []byte) (WebFrontendEvent, error) {
	var e WebFrontendEvent
	if err := json.Unmarshal(rec, &e); err != nil {
		return e, fmt.Errorf("legacy: web_frontend: %w", err)
	}
	return e, nil
}

// Time parses the event's ISO-8601 timestamp.
func (e WebFrontendEvent) Time() (time.Time, error) {
	return time.Parse(time.RFC3339Nano, e.Timestamp)
}

// APIServerEvent is the tab-delimited mobile API log.
type APIServerEvent struct {
	UID    int64
	Sess   string
	Action string
	IP     string
	Unix   int64 // seconds — coarser than every other category
}

// EncodeAPIServer renders the tab-delimited line.
func EncodeAPIServer(uid int64, sess, action, ip string, at time.Time) []byte {
	return []byte(fmt.Sprintf("%d\t%s\t%s\t%s\t%d", uid, sess, action, ip, at.Unix()))
}

// DecodeAPIServer parses a tab-delimited line. The wrong delimiter setting
// "would yield no output or complete garbage" (§3.1); here it yields an
// error.
func DecodeAPIServer(rec []byte) (APIServerEvent, error) {
	parts := strings.Split(string(rec), "\t")
	if len(parts) != 5 {
		return APIServerEvent{}, fmt.Errorf("legacy: api_server: %d fields, want 5", len(parts))
	}
	uid, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return APIServerEvent{}, fmt.Errorf("legacy: api_server uid: %w", err)
	}
	ts, err := strconv.ParseInt(parts[4], 10, 64)
	if err != nil {
		return APIServerEvent{}, fmt.Errorf("legacy: api_server ts: %w", err)
	}
	return APIServerEvent{UID: uid, Sess: parts[1], Action: parts[2], IP: parts[3], Unix: ts}, nil
}

// SearchEvent is the Thrift search log. Note the missing session id.
type SearchEvent struct {
	UserID int64
	Action string
	IP     string
	Millis int64
}

// Encode implements thrift.Struct.
func (e *SearchEvent) Encode(enc thrift.Encoder) {
	enc.WriteStructBegin()
	enc.WriteFieldBegin(thrift.I64, 1)
	enc.WriteI64(e.UserID)
	enc.WriteFieldBegin(thrift.STRING, 2)
	enc.WriteString(e.Action)
	enc.WriteFieldBegin(thrift.STRING, 3)
	enc.WriteString(e.IP)
	enc.WriteFieldBegin(thrift.I64, 4)
	enc.WriteI64(e.Millis)
	enc.WriteFieldStop()
	enc.WriteStructEnd()
}

// Decode implements thrift.Struct.
func (e *SearchEvent) Decode(dec thrift.Decoder) error {
	if err := dec.ReadStructBegin(); err != nil {
		return err
	}
	for {
		ft, id, err := dec.ReadFieldBegin()
		if err != nil {
			return err
		}
		if ft == thrift.STOP {
			break
		}
		switch id {
		case 1:
			e.UserID, err = dec.ReadI64()
		case 2:
			e.Action, err = dec.ReadString()
		case 3:
			e.IP, err = dec.ReadString()
		case 4:
			e.Millis, err = dec.ReadI64()
		default:
			err = dec.Skip(ft)
		}
		if err != nil {
			return err
		}
	}
	return dec.ReadStructEnd()
}

// FromClientEvent converts a unified client event into its legacy
// (category, record) form — the format each application team would have
// invented for itself. Mobile clients logged through the API servers, the
// search page through the search service, everything else through the web
// frontend.
func FromClientEvent(e *events.ClientEvent) (category string, record []byte) {
	at := time.UnixMilli(e.Timestamp)
	switch {
	case e.Name.Page == "search":
		se := &SearchEvent{UserID: e.UserID, Action: e.Name.Action, IP: e.IP, Millis: e.Timestamp}
		return CategorySearch, thrift.EncodeBinary(se)
	case e.Name.Client != "web":
		return CategoryAPI, EncodeAPIServer(e.UserID, e.SessionID, e.Name.Page+"/"+e.Name.Action, e.IP, at)
	default:
		return CategoryWeb, EncodeWebFrontend(e.UserID, e.SessionID, e.IP, at, e.Name.Page+":"+e.Name.Action, e.Details)
	}
}

// normalized is the common schema every legacy record must be wrestled into
// before sessions can be reconstructed.
var normalizedSchema = dataflow.Schema{"user_id", "session_hint", "ip", "timestamp_ms", "action"}

// Formats returns the per-category dataflow input formats that parse and
// normalize each legacy log — the custom deserialization code the paper's
// engineers had to write per category.
func Formats() map[string]dataflow.RawRecordFormat {
	return map[string]dataflow.RawRecordFormat{
		CategoryWeb: {
			Columns: normalizedSchema,
			Decode: func(rec []byte) dataflow.Tuple {
				e, err := DecodeWebFrontend(rec)
				if err != nil {
					return nil
				}
				t, err := e.Time()
				if err != nil {
					return nil
				}
				return dataflow.Tuple{e.UserID, e.SessionCookie, e.ClientIP, t.UnixMilli(), e.Event.Type}
			},
		},
		CategoryAPI: {
			Columns: normalizedSchema,
			Decode: func(rec []byte) dataflow.Tuple {
				e, err := DecodeAPIServer(rec)
				if err != nil {
					return nil
				}
				return dataflow.Tuple{e.UID, e.Sess, e.IP, e.Unix * 1000, e.Action}
			},
		},
		CategorySearch: {
			Columns: normalizedSchema,
			Decode: func(rec []byte) dataflow.Tuple {
				var e SearchEvent
				if err := thrift.DecodeBinary(rec, &e); err != nil {
					return nil
				}
				// No session id was logged; sessions will be inferred from
				// user id + time proximity alone.
				return dataflow.Tuple{e.UserID, "", e.IP, e.Millis, e.Action}
			},
		},
	}
}

// ReconstructSessions performs the pre-unification session analysis of
// §3.1: load all three categories with three different parsers, union them,
// group by user id, order by timestamp, and split on 30-minute gaps. It
// returns the number of sessions found. Compare its job stats with the
// unified and materialized variants (experiment E3).
func ReconstructSessions(j *dataflow.Job, dirsByCategory map[string][]string, gap time.Duration) (int64, error) {
	formats := Formats()
	// Only user_id and timestamp_ms survive into the group-by. The
	// selection goes through LoadDirsSelective, but RawRecordFormat is not
	// pushdown-aware — the planner falls through and applies the projection
	// row-side, after each category's custom parser has paid full decode.
	// That asymmetry against the columnar client-events path is the point
	// of experiment E3's comparison.
	sel := dataflow.Selection{Columns: []string{"user_id", "timestamp_ms"}}
	var parts []*dataflow.Dataset
	for _, cat := range Categories {
		d, err := j.LoadDirsSelective(dirsByCategory[cat], formats[cat], sel)
		if err != nil {
			return 0, err
		}
		parts = append(parts, d)
	}
	if len(parts) == 0 {
		return 0, nil
	}
	// The three category scans stream into one relation; nothing
	// materializes until the group-by shuffles it. The shuffle's secondary
	// sort orders each user's records by timestamp, so the gap walk below
	// consumes the group as it streams by.
	union := parts[0].Union(parts[1:]...)
	g, err := union.GroupByOrdered("timestamp_ms", "user_id")
	if err != nil {
		return 0, err
	}
	defer g.Close()
	gapMs := gap.Milliseconds()
	tsIdx := 1 // index in the projected (user_id, timestamp_ms) schema
	counts, err := g.ForEachGroup(dataflow.Schema{"sessions"}, func(key dataflow.Tuple, group []dataflow.Tuple) dataflow.Tuple {
		n := int64(1)
		for i := 1; i < len(group); i++ {
			if group[i][tsIdx].(int64)-group[i-1][tsIdx].(int64) > gapMs {
				n++
			}
		}
		return dataflow.Tuple{n}
	})
	if err != nil {
		return 0, err
	}
	ga, err := counts.GroupAll()
	if err != nil {
		return 0, err
	}
	defer ga.Close()
	total, err := ga.Aggregate(dataflow.Sum("sessions", "total"))
	if err != nil {
		return 0, err
	}
	rows, err := total.Tuples()
	if err != nil {
		return 0, err
	}
	return rows[0][0].(int64), nil
}

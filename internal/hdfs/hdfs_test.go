package hdfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New(16)
	data := []byte("hello, warehouse")
	if err := fs.WriteFile("/logs/client_events/part-0", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/logs/client_events/part-0")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	// Parents are created implicitly.
	if fi, err := fs.Stat("/logs/client_events"); err != nil || !fi.IsDir {
		t.Fatalf("Stat parent = %+v, %v", fi, err)
	}
}

func TestCreateVisibilityOnClose(t *testing.T) {
	fs := New(0)
	w, err := fs.Create("/tmp/pending")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/tmp/pending") {
		t.Fatal("file visible before Close")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/tmp/pending") {
		t.Fatal("file missing after Close")
	}
	if err := w.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
}

func TestCreateExisting(t *testing.T) {
	fs := New(0)
	if err := fs.WriteFile("/a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("/a"); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestBlockAccounting(t *testing.T) {
	fs := New(10)
	data := make([]byte, 95) // 10 blocks: 9 full + 1 partial
	if err := fs.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	fi, err := fs.Stat("/f")
	if err != nil || fi.Blocks != 10 {
		t.Fatalf("Blocks = %d, %v; want 10", fi.Blocks, err)
	}
	before := fs.Snapshot()
	if _, err := fs.ReadFile("/f"); err != nil {
		t.Fatal(err)
	}
	after := fs.Snapshot()
	if n := after.BlocksRead - before.BlocksRead; n != 10 {
		t.Fatalf("BlocksRead delta = %d, want 10", n)
	}
	if n := after.BytesRead - before.BytesRead; n != 95 {
		t.Fatalf("BytesRead delta = %d, want 95", n)
	}
}

func TestReadBlock(t *testing.T) {
	fs := New(4)
	if err := fs.WriteFile("/f", []byte("abcdefghij")); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"abcd", "efgh", "ij"} {
		got, err := fs.ReadBlock("/f", i)
		if err != nil || string(got) != want {
			t.Fatalf("block %d = %q, %v", i, got, err)
		}
	}
	if _, err := fs.ReadBlock("/f", 3); err == nil {
		t.Fatal("out-of-range block read succeeded")
	}
}

func TestSmallReadsChargeBlocksOnce(t *testing.T) {
	fs := New(10)
	if err := fs.WriteFile("/f", make([]byte, 30)); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	before := fs.Snapshot()
	buf := make([]byte, 3)
	for {
		if _, err := r.Read(buf); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	delta := fs.Snapshot().BlocksRead - before.BlocksRead
	if delta != 3 {
		t.Fatalf("BlocksRead delta = %d, want 3 (blocks charged once)", delta)
	}
}

// TestAtomicRenameDirectory is the log-mover primitive: an hour of staged
// logs appears in the warehouse in one atomic operation.
func TestAtomicRenameDirectory(t *testing.T) {
	fs := New(0)
	for i := 0; i < 3; i++ {
		if err := fs.WriteFile(fmt.Sprintf("/staging/ce/2012/08/21/14/part-%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Rename("/staging/ce/2012/08/21/14", "/logs/client_events/2012/08/21/14"); err != nil {
		t.Fatal(err)
	}
	infos, err := fs.Walk("/logs/client_events/2012/08/21/14")
	if err != nil || len(infos) != 3 {
		t.Fatalf("after rename: %v, %v", infos, err)
	}
	if fs.Exists("/staging/ce/2012/08/21/14") {
		t.Fatal("source directory survived rename")
	}
	// Destination conflicts are rejected.
	if err := fs.WriteFile("/staging/x", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/staging/x", "/logs/client_events/2012/08/21/14"); !errors.Is(err, ErrExists) {
		t.Fatalf("rename onto existing err = %v", err)
	}
}

func TestRenameFile(t *testing.T) {
	fs := New(0)
	if err := fs.WriteFile("/a/b", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/a/b", "/c/d/e"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/c/d/e")
	if err != nil || string(got) != "payload" {
		t.Fatalf("after rename = %q, %v", got, err)
	}
}

func TestOutageInjection(t *testing.T) {
	fs := New(0)
	if err := fs.WriteFile("/ok", nil); err != nil {
		t.Fatal(err)
	}
	fs.SetAvailable(false)
	if err := fs.WriteFile("/fail", nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("write during outage err = %v", err)
	}
	if _, err := fs.ReadFile("/ok"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("read during outage err = %v", err)
	}
	fs.SetAvailable(true)
	if err := fs.WriteFile("/fail", nil); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

func TestWriterFailsDuringOutage(t *testing.T) {
	fs := New(0)
	w, err := fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	fs.SetAvailable(false)
	if err := w.Close(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("close during outage err = %v", err)
	}
}

func TestListAndWalk(t *testing.T) {
	fs := New(0)
	paths := []string{"/logs/a/1", "/logs/a/2", "/logs/b/1", "/logs/top"}
	for _, p := range paths {
		if err := fs.WriteFile(p, nil); err != nil {
			t.Fatal(err)
		}
	}
	ls, err := fs.List("/logs")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, fi := range ls {
		names = append(names, fi.Path)
	}
	want := []string{"/logs/a", "/logs/b", "/logs/top"}
	if len(names) != 3 || names[0] != want[0] || names[1] != want[1] || names[2] != want[2] {
		t.Fatalf("List = %v, want %v", names, want)
	}
	all, err := fs.Walk("/logs")
	if err != nil || len(all) != 4 {
		t.Fatalf("Walk = %v, %v", all, err)
	}
	total, err := fs.TotalSize("/logs")
	if err != nil || total != 0 {
		t.Fatalf("TotalSize = %d, %v", total, err)
	}
}

func TestDelete(t *testing.T) {
	fs := New(0)
	if err := fs.WriteFile("/d/f1", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d/f2", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("/d", false); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("non-recursive delete err = %v", err)
	}
	if err := fs.Delete("/d", true); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/d") || fs.Exists("/d/f1") {
		t.Fatal("delete left residue")
	}
}

func TestInvalidPaths(t *testing.T) {
	fs := New(0)
	for _, p := range []string{"", "rel", "/a//b", "/a/./b", "/.."} {
		if err := fs.WriteFile(p, nil); !errors.Is(err, ErrInvalidPath) {
			t.Errorf("WriteFile(%q) err = %v", p, err)
		}
	}
	// Trailing slash is normalized rather than rejected.
	if err := fs.MkdirAll("/ok/"); err != nil {
		t.Errorf("MkdirAll with trailing slash: %v", err)
	}
}

// TestRoundTripProperty: any byte content survives write/read, and block
// math matches ceil(len/blockSize).
func TestRoundTripProperty(t *testing.T) {
	fs := New(7)
	i := 0
	f := func(data []byte) bool {
		i++
		path := fmt.Sprintf("/p/f%d", i)
		if err := fs.WriteFile(path, data); err != nil {
			return false
		}
		got, err := fs.ReadFile(path)
		if err != nil || !bytes.Equal(got, data) {
			return false
		}
		fi, err := fs.Stat(path)
		if err != nil {
			return false
		}
		want := (len(data) + 6) / 7
		return fi.Blocks == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentWriters(t *testing.T) {
	fs := New(0)
	const n = 32
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			errs <- fs.WriteFile(fmt.Sprintf("/c/f%02d", i), bytes.Repeat([]byte{byte(i)}, 100))
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	infos, err := fs.Walk("/c")
	if err != nil || len(infos) != n {
		t.Fatalf("Walk = %d files, %v", len(infos), err)
	}
	total, _ := fs.TotalSize("/c")
	if total != n*100 {
		t.Fatalf("TotalSize = %d", total)
	}
}

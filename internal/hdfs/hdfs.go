// Package hdfs is an in-memory stand-in for the Hadoop Distributed File
// System as the paper uses it: a hierarchical namespace of append-once
// files, block-granular reads, and atomic rename.
//
// Three properties of real HDFS matter to the paper's story and are
// preserved here:
//
//   - Files are divided into fixed-size blocks, and analytics jobs spawn one
//     map task per block (§4.1: raw client-event scans "routinely spawned
//     tens of thousands of mappers"). Block counts and block-read statistics
//     are first-class so the experiments can measure exactly that effect.
//   - Rename is atomic, which is how the log mover "atomically slides an
//     hour's worth of logs into the main data warehouse" (§2).
//   - The filesystem can become unavailable (an injected outage), which is
//     what Scribe aggregators buffer against ("aggregators buffer data on
//     local disk in case of HDFS outages", §2).
//
// All I/O is accounted in Stats, letting benchmarks report bytes scanned and
// blocks touched rather than only wall-clock time.
package hdfs

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Errors returned by filesystem operations.
var (
	ErrNotFound    = errors.New("hdfs: no such file or directory")
	ErrExists      = errors.New("hdfs: file already exists")
	ErrIsDirectory = errors.New("hdfs: is a directory")
	ErrNotDir      = errors.New("hdfs: not a directory")
	ErrUnavailable = errors.New("hdfs: filesystem unavailable")
	ErrInvalidPath = errors.New("hdfs: invalid path")
	ErrNotEmpty    = errors.New("hdfs: directory not empty")
)

// DefaultBlockSize is deliberately small (256 KiB versus HDFS's 64–128 MB)
// so laptop-scale corpora still span many blocks and the map-task arithmetic
// of the paper remains visible.
const DefaultBlockSize = 256 << 10

// Stats counts filesystem activity. Counters are cumulative; use Snapshot
// deltas to meter a single job.
type Stats struct {
	BytesRead    int64
	BytesWritten int64
	BlocksRead   int64
	FilesCreated int64
	FilesDeleted int64
	Renames      int64
	OpenOps      int64
}

// FileInfo describes a file or directory.
type FileInfo struct {
	Path  string
	Size  int64
	IsDir bool
	// Blocks is the number of fixed-size blocks the file occupies; zero for
	// directories.
	Blocks int
}

// FS is an in-memory block filesystem. The zero value is not usable; call
// New.
type FS struct {
	mu        sync.RWMutex
	blockSize int
	files     map[string][]byte
	dirs      map[string]struct{}
	down      atomic.Bool

	statMu sync.Mutex
	stats  Stats
}

// New returns an empty filesystem with the given block size; blockSize <= 0
// selects DefaultBlockSize.
func New(blockSize int) *FS {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	fs := &FS{
		blockSize: blockSize,
		files:     make(map[string][]byte),
		dirs:      make(map[string]struct{}),
	}
	fs.dirs["/"] = struct{}{}
	return fs
}

// BlockSize returns the filesystem's block size in bytes.
func (fs *FS) BlockSize() int { return fs.blockSize }

// SetAvailable injects or clears an outage. While unavailable every
// operation fails with ErrUnavailable.
func (fs *FS) SetAvailable(up bool) { fs.down.Store(!up) }

// Available reports whether the filesystem is serving requests.
func (fs *FS) Available() bool { return !fs.down.Load() }

func (fs *FS) check() error {
	if fs.down.Load() {
		return ErrUnavailable
	}
	return nil
}

func cleanPath(p string) (string, error) {
	if p == "" || p[0] != '/' {
		return "", fmt.Errorf("%w: %q", ErrInvalidPath, p)
	}
	if p == "/" {
		return p, nil
	}
	p = strings.TrimSuffix(p, "/")
	for _, part := range strings.Split(p[1:], "/") {
		if part == "" || part == "." || part == ".." {
			return "", fmt.Errorf("%w: %q", ErrInvalidPath, p)
		}
	}
	return p, nil
}

func parentDir(p string) string {
	i := strings.LastIndexByte(p, '/')
	if i <= 0 {
		return "/"
	}
	return p[:i]
}

// addStats merges delta into the cumulative counters.
func (fs *FS) addStats(delta Stats) {
	fs.statMu.Lock()
	fs.stats.BytesRead += delta.BytesRead
	fs.stats.BytesWritten += delta.BytesWritten
	fs.stats.BlocksRead += delta.BlocksRead
	fs.stats.FilesCreated += delta.FilesCreated
	fs.stats.FilesDeleted += delta.FilesDeleted
	fs.stats.Renames += delta.Renames
	fs.stats.OpenOps += delta.OpenOps
	fs.statMu.Unlock()
}

// Snapshot returns the cumulative I/O statistics.
func (fs *FS) Snapshot() Stats {
	fs.statMu.Lock()
	defer fs.statMu.Unlock()
	return fs.stats
}

// MkdirAll creates the directory at path together with any missing parents.
func (fs *FS) MkdirAll(path string) error {
	if err := fs.check(); err != nil {
		return err
	}
	p, err := cleanPath(path)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.mkdirAllLocked(p)
}

func (fs *FS) mkdirAllLocked(p string) error {
	if _, isFile := fs.files[p]; isFile {
		return fmt.Errorf("%w: %s", ErrNotDir, p)
	}
	if p != "/" {
		if err := fs.mkdirAllLocked(parentDir(p)); err != nil {
			return err
		}
	}
	fs.dirs[p] = struct{}{}
	return nil
}

// Create opens a new file for writing. The file becomes visible atomically
// when the returned writer is closed; parents are created as needed.
func (fs *FS) Create(path string) (*FileWriter, error) {
	if err := fs.check(); err != nil {
		return nil, err
	}
	p, err := cleanPath(path)
	if err != nil {
		return nil, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[p]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, p)
	}
	if _, ok := fs.dirs[p]; ok {
		return nil, fmt.Errorf("%w: %s", ErrIsDirectory, p)
	}
	if err := fs.mkdirAllLocked(parentDir(p)); err != nil {
		return nil, err
	}
	return &FileWriter{fs: fs, path: p}, nil
}

// WriteFile creates path with the given contents in one call.
func (fs *FS) WriteFile(path string, data []byte) error {
	w, err := fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

// FileWriter accumulates file contents; Close publishes them atomically.
type FileWriter struct {
	fs     *FS
	path   string
	buf    []byte
	closed bool
}

// Write appends p to the pending file contents.
func (w *FileWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("hdfs: write to closed file %s", w.path)
	}
	if err := w.fs.check(); err != nil {
		return 0, err
	}
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// Close publishes the file. A file that was never closed does not exist.
func (w *FileWriter) Close() error {
	if w.closed {
		return nil
	}
	if err := w.fs.check(); err != nil {
		return err
	}
	w.closed = true
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if _, ok := w.fs.files[w.path]; ok {
		return fmt.Errorf("%w: %s", ErrExists, w.path)
	}
	w.fs.files[w.path] = w.buf
	w.fs.addStats(Stats{BytesWritten: int64(len(w.buf)), FilesCreated: 1})
	return nil
}

// Abort discards the pending file.
func (w *FileWriter) Abort() { w.closed = true; w.buf = nil }

// Path returns the destination path of the writer.
func (w *FileWriter) Path() string { return w.path }

// Open returns a reader over the file at path. Reading is metered in block
// units: touching any byte of a block counts the whole block as read, which
// mirrors how HDFS map tasks consume input splits.
func (fs *FS) Open(path string) (*FileReader, error) {
	if err := fs.check(); err != nil {
		return nil, err
	}
	p, err := cleanPath(path)
	if err != nil {
		return nil, err
	}
	fs.mu.RLock()
	data, ok := fs.files[p]
	fs.mu.RUnlock()
	if !ok {
		if _, isDir := fs.dirs[p]; isDir {
			return nil, fmt.Errorf("%w: %s", ErrIsDirectory, p)
		}
		return nil, fmt.Errorf("%w: %s", ErrNotFound, p)
	}
	fs.addStats(Stats{OpenOps: 1})
	return &FileReader{fs: fs, path: p, data: data}, nil
}

// ReadFile returns the full contents of the file at path.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	r, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	return io.ReadAll(r)
}

// FileReader reads a published file.
type FileReader struct {
	fs   *FS
	path string
	data []byte
	off  int
	// blocksSeen tracks which blocks have been charged to stats.
	lastBlockCharged int
}

// Read implements io.Reader with block-granular accounting.
func (r *FileReader) Read(p []byte) (int, error) {
	if err := r.fs.check(); err != nil {
		return 0, err
	}
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	firstBlock := r.off / r.fs.blockSize
	r.off += n
	lastBlock := (r.off - 1) / r.fs.blockSize
	if r.lastBlockCharged == 0 && r.off > 0 {
		// First read charges the first block.
		r.fs.addStats(Stats{BytesRead: int64(n), BlocksRead: int64(lastBlock-firstBlock) + 1})
		r.lastBlockCharged = lastBlock + 1
		return n, nil
	}
	newBlocks := 0
	if lastBlock+1 > r.lastBlockCharged {
		newBlocks = lastBlock + 1 - r.lastBlockCharged
		r.lastBlockCharged = lastBlock + 1
	}
	r.fs.addStats(Stats{BytesRead: int64(n), BlocksRead: int64(newBlocks)})
	return n, nil
}

// Size returns the file's size in bytes.
func (r *FileReader) Size() int64 { return int64(len(r.data)) }

// ReadBlock returns the contents of block i, charging one block read. It is
// how simulated map tasks consume their input split.
func (fs *FS) ReadBlock(path string, i int) ([]byte, error) {
	if err := fs.check(); err != nil {
		return nil, err
	}
	p, err := cleanPath(path)
	if err != nil {
		return nil, err
	}
	fs.mu.RLock()
	data, ok := fs.files[p]
	fs.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, p)
	}
	start := i * fs.blockSize
	if start < 0 || start >= len(data) {
		return nil, fmt.Errorf("hdfs: block %d out of range for %s", i, p)
	}
	end := start + fs.blockSize
	if end > len(data) {
		end = len(data)
	}
	fs.addStats(Stats{BytesRead: int64(end - start), BlocksRead: 1})
	return data[start:end], nil
}

// Stat describes the file or directory at path.
func (fs *FS) Stat(path string) (FileInfo, error) {
	if err := fs.check(); err != nil {
		return FileInfo{}, err
	}
	p, err := cleanPath(path)
	if err != nil {
		return FileInfo{}, err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if data, ok := fs.files[p]; ok {
		return FileInfo{Path: p, Size: int64(len(data)), Blocks: fs.numBlocks(len(data))}, nil
	}
	if _, ok := fs.dirs[p]; ok {
		return FileInfo{Path: p, IsDir: true}, nil
	}
	return FileInfo{}, fmt.Errorf("%w: %s", ErrNotFound, p)
}

func (fs *FS) numBlocks(size int) int {
	if size == 0 {
		return 0
	}
	return (size + fs.blockSize - 1) / fs.blockSize
}

// Exists reports whether path names a file or directory.
func (fs *FS) Exists(path string) bool {
	_, err := fs.Stat(path)
	return err == nil
}

// List returns the immediate children of the directory at path, sorted.
func (fs *FS) List(path string) ([]FileInfo, error) {
	if err := fs.check(); err != nil {
		return nil, err
	}
	p, err := cleanPath(path)
	if err != nil {
		return nil, err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if _, ok := fs.dirs[p]; !ok {
		if _, isFile := fs.files[p]; isFile {
			return nil, fmt.Errorf("%w: %s", ErrNotDir, p)
		}
		return nil, fmt.Errorf("%w: %s", ErrNotFound, p)
	}
	prefix := p
	if prefix != "/" {
		prefix += "/"
	}
	var out []FileInfo
	for f, data := range fs.files {
		if strings.HasPrefix(f, prefix) && !strings.Contains(f[len(prefix):], "/") {
			out = append(out, FileInfo{Path: f, Size: int64(len(data)), Blocks: fs.numBlocks(len(data))})
		}
	}
	for d := range fs.dirs {
		if d != "/" && strings.HasPrefix(d, prefix) && !strings.Contains(d[len(prefix):], "/") {
			out = append(out, FileInfo{Path: d, IsDir: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Walk returns every file under dir (recursively), sorted by path.
func (fs *FS) Walk(dir string) ([]FileInfo, error) {
	if err := fs.check(); err != nil {
		return nil, err
	}
	p, err := cleanPath(dir)
	if err != nil {
		return nil, err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if _, ok := fs.dirs[p]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, p)
	}
	prefix := p
	if prefix != "/" {
		prefix += "/"
	}
	var out []FileInfo
	for f, data := range fs.files {
		if strings.HasPrefix(f, prefix) {
			out = append(out, FileInfo{Path: f, Size: int64(len(data)), Blocks: fs.numBlocks(len(data))})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// TotalSize sums the sizes of all files under dir.
func (fs *FS) TotalSize(dir string) (int64, error) {
	infos, err := fs.Walk(dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, fi := range infos {
		total += fi.Size
	}
	return total, nil
}

// Rename atomically moves a file or directory subtree from src to dst. The
// destination must not exist; parents of dst are created as needed. This is
// the primitive behind the log mover's atomic hourly slide.
func (fs *FS) Rename(src, dst string) error {
	if err := fs.check(); err != nil {
		return err
	}
	s, err := cleanPath(src)
	if err != nil {
		return err
	}
	d, err := cleanPath(dst)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[d]; ok {
		return fmt.Errorf("%w: %s", ErrExists, d)
	}
	if _, ok := fs.dirs[d]; ok {
		return fmt.Errorf("%w: %s", ErrExists, d)
	}
	if err := fs.mkdirAllLocked(parentDir(d)); err != nil {
		return err
	}
	if data, ok := fs.files[s]; ok {
		delete(fs.files, s)
		fs.files[d] = data
		fs.addStats(Stats{Renames: 1})
		return nil
	}
	if _, ok := fs.dirs[s]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, s)
	}
	// Move the whole subtree.
	sPrefix := s + "/"
	moveFiles := make(map[string][]byte)
	for f, data := range fs.files {
		if strings.HasPrefix(f, sPrefix) {
			moveFiles[d+f[len(s):]] = data
			delete(fs.files, f)
		}
	}
	for f, data := range moveFiles {
		fs.files[f] = data
	}
	moveDirs := make([]string, 0)
	for dir := range fs.dirs {
		if dir == s || strings.HasPrefix(dir, sPrefix) {
			moveDirs = append(moveDirs, dir)
		}
	}
	for _, dir := range moveDirs {
		delete(fs.dirs, dir)
		fs.dirs[d+dir[len(s):]] = struct{}{}
	}
	fs.addStats(Stats{Renames: 1})
	return nil
}

// Delete removes the file or (when recursive) directory subtree at path.
func (fs *FS) Delete(path string, recursive bool) error {
	if err := fs.check(); err != nil {
		return err
	}
	p, err := cleanPath(path)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[p]; ok {
		delete(fs.files, p)
		fs.addStats(Stats{FilesDeleted: 1})
		return nil
	}
	if _, ok := fs.dirs[p]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, p)
	}
	prefix := p + "/"
	var nFiles int64
	hasChildren := false
	for f := range fs.files {
		if strings.HasPrefix(f, prefix) {
			hasChildren = true
			if !recursive {
				break
			}
			delete(fs.files, f)
			nFiles++
		}
	}
	for d := range fs.dirs {
		if strings.HasPrefix(d, prefix) {
			hasChildren = true
			if recursive {
				delete(fs.dirs, d)
			}
		}
	}
	if hasChildren && !recursive {
		return fmt.Errorf("%w: %s", ErrNotEmpty, p)
	}
	if p != "/" {
		delete(fs.dirs, p)
	}
	fs.addStats(Stats{FilesDeleted: nFiles})
	return nil
}

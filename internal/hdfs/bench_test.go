package hdfs

import (
	"fmt"
	"testing"
)

func BenchmarkWriteFile(b *testing.B) {
	fs := New(0)
	data := make([]byte, 64<<10)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if err := fs.WriteFile(fmt.Sprintf("/bench/f%09d", i), data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadFile(b *testing.B) {
	fs := New(0)
	data := make([]byte, 64<<10)
	if err := fs.WriteFile("/bench/f", data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.ReadFile("/bench/f"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRenameSubtree(b *testing.B) {
	fs := New(0)
	for i := 0; i < 50; i++ {
		if err := fs.WriteFile(fmt.Sprintf("/src0/d/f%02d", i), []byte("x")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := fmt.Sprintf("/src%d", i)
		dst := fmt.Sprintf("/src%d", i+1)
		if err := fs.Rename(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

package thrift

import (
	"encoding/binary"
	"fmt"
	"math"
)

// BinaryEncoder implements the Thrift binary protocol: fixed-width
// big-endian integers, 4-byte-length-prefixed strings, and one-byte type /
// two-byte id field headers.
type BinaryEncoder struct {
	buf []byte
}

// NewBinaryEncoder returns an empty binary-protocol encoder.
func NewBinaryEncoder() *BinaryEncoder { return &BinaryEncoder{} }

var _ Encoder = (*BinaryEncoder)(nil)

// WriteStructBegin is a no-op in the binary protocol.
func (e *BinaryEncoder) WriteStructBegin() {}

// WriteStructEnd is a no-op in the binary protocol.
func (e *BinaryEncoder) WriteStructEnd() {}

// WriteFieldBegin writes the one-byte type and two-byte field id header.
func (e *BinaryEncoder) WriteFieldBegin(t Type, id int16) {
	e.buf = append(e.buf, byte(t))
	e.buf = binary.BigEndian.AppendUint16(e.buf, uint16(id))
}

// WriteFieldStop writes the STOP sentinel ending a struct's field list.
func (e *BinaryEncoder) WriteFieldStop() { e.buf = append(e.buf, byte(STOP)) }

// WriteBool writes a bool as a single byte, 1 for true and 0 for false.
func (e *BinaryEncoder) WriteBool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// WriteI8 writes a single byte.
func (e *BinaryEncoder) WriteI8(v int8) { e.buf = append(e.buf, byte(v)) }

// WriteI16 writes a big-endian 16-bit integer.
func (e *BinaryEncoder) WriteI16(v int16) {
	e.buf = binary.BigEndian.AppendUint16(e.buf, uint16(v))
}

// WriteI32 writes a big-endian 32-bit integer.
func (e *BinaryEncoder) WriteI32(v int32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(v))
}

// WriteI64 writes a big-endian 64-bit integer.
func (e *BinaryEncoder) WriteI64(v int64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, uint64(v))
}

// WriteDouble writes an IEEE-754 double, big-endian.
func (e *BinaryEncoder) WriteDouble(v float64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// WriteString writes a 4-byte length followed by the UTF-8 bytes.
func (e *BinaryEncoder) WriteString(v string) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// WriteBinary writes a 4-byte length followed by the raw bytes.
func (e *BinaryEncoder) WriteBinary(v []byte) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// WriteMapBegin writes the key type, value type, and 4-byte element count.
func (e *BinaryEncoder) WriteMapBegin(k, v Type, size int) {
	e.buf = append(e.buf, byte(k), byte(v))
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(size))
}

// WriteListBegin writes the element type and 4-byte element count.
func (e *BinaryEncoder) WriteListBegin(elem Type, size int) {
	e.buf = append(e.buf, byte(elem))
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(size))
}

// WriteSetBegin writes the element type and 4-byte element count.
func (e *BinaryEncoder) WriteSetBegin(elem Type, size int) { e.WriteListBegin(elem, size) }

// Bytes returns the encoded bytes accumulated so far.
func (e *BinaryEncoder) Bytes() []byte { return e.buf }

// Len reports the number of encoded bytes so far.
func (e *BinaryEncoder) Len() int { return len(e.buf) }

// Reset discards buffered output, retaining capacity for reuse.
func (e *BinaryEncoder) Reset() { e.buf = e.buf[:0] }

// BinaryDecoder decodes messages produced by BinaryEncoder.
type BinaryDecoder struct {
	data []byte
	pos  int
}

// NewBinaryDecoder returns a decoder consuming data.
func NewBinaryDecoder(data []byte) *BinaryDecoder { return &BinaryDecoder{data: data} }

var _ Decoder = (*BinaryDecoder)(nil)

func (d *BinaryDecoder) need(n int) error {
	if d.pos+n > len(d.data) {
		return fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, d.pos, len(d.data))
	}
	return nil
}

// ReadStructBegin is a no-op in the binary protocol.
func (d *BinaryDecoder) ReadStructBegin() error { return nil }

// ReadStructEnd is a no-op in the binary protocol.
func (d *BinaryDecoder) ReadStructEnd() error { return nil }

// ReadFieldBegin reads the next field header; STOP ends the struct.
func (d *BinaryDecoder) ReadFieldBegin() (Type, int16, error) {
	if err := d.need(1); err != nil {
		return STOP, 0, err
	}
	t := Type(d.data[d.pos])
	d.pos++
	if t == STOP {
		return STOP, 0, nil
	}
	if err := d.need(2); err != nil {
		return STOP, 0, err
	}
	id := int16(binary.BigEndian.Uint16(d.data[d.pos:]))
	d.pos += 2
	return t, id, nil
}

// ReadBool reads a single-byte bool.
func (d *BinaryDecoder) ReadBool() (bool, error) {
	v, err := d.ReadI8()
	return v != 0, err
}

// ReadI8 reads a single byte.
func (d *BinaryDecoder) ReadI8() (int8, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := int8(d.data[d.pos])
	d.pos++
	return v, nil
}

// ReadI16 reads a big-endian 16-bit integer.
func (d *BinaryDecoder) ReadI16() (int16, error) {
	if err := d.need(2); err != nil {
		return 0, err
	}
	v := int16(binary.BigEndian.Uint16(d.data[d.pos:]))
	d.pos += 2
	return v, nil
}

// ReadI32 reads a big-endian 32-bit integer.
func (d *BinaryDecoder) ReadI32() (int32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := int32(binary.BigEndian.Uint32(d.data[d.pos:]))
	d.pos += 4
	return v, nil
}

// ReadI64 reads a big-endian 64-bit integer.
func (d *BinaryDecoder) ReadI64() (int64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := int64(binary.BigEndian.Uint64(d.data[d.pos:]))
	d.pos += 8
	return v, nil
}

// ReadDouble reads a big-endian IEEE-754 double.
func (d *BinaryDecoder) ReadDouble() (float64, error) {
	v, err := d.ReadI64()
	return math.Float64frombits(uint64(v)), err
}

// ReadString reads a 4-byte length-prefixed UTF-8 string.
func (d *BinaryDecoder) ReadString() (string, error) {
	b, err := d.ReadBinary()
	return string(b), err
}

// ReadBinary reads a 4-byte length-prefixed byte slice. The returned slice
// aliases the decoder's input.
func (d *BinaryDecoder) ReadBinary() ([]byte, error) {
	n, err := d.ReadI32()
	if err != nil {
		return nil, err
	}
	if n < 0 || int(n) > len(d.data)-d.pos {
		return nil, fmt.Errorf("%w: binary of %d bytes", ErrSizeLimit, n)
	}
	v := d.data[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return v, nil
}

// ReadMapBegin reads a map header.
func (d *BinaryDecoder) ReadMapBegin() (Type, Type, int, error) {
	if err := d.need(6); err != nil {
		return STOP, STOP, 0, err
	}
	k := Type(d.data[d.pos])
	v := Type(d.data[d.pos+1])
	n := int(int32(binary.BigEndian.Uint32(d.data[d.pos+2:])))
	d.pos += 6
	if n < 0 || n > len(d.data)-d.pos {
		return STOP, STOP, 0, fmt.Errorf("%w: map of %d entries", ErrSizeLimit, n)
	}
	return k, v, n, nil
}

// ReadListBegin reads a list header.
func (d *BinaryDecoder) ReadListBegin() (Type, int, error) {
	if err := d.need(5); err != nil {
		return STOP, 0, err
	}
	et := Type(d.data[d.pos])
	n := int(int32(binary.BigEndian.Uint32(d.data[d.pos+1:])))
	d.pos += 5
	if n < 0 || n > len(d.data)-d.pos {
		return STOP, 0, fmt.Errorf("%w: list of %d elements", ErrSizeLimit, n)
	}
	return et, n, nil
}

// ReadSetBegin reads a set header.
func (d *BinaryDecoder) ReadSetBegin() (Type, int, error) { return d.ReadListBegin() }

// Skip discards a value of type t, recursing into containers.
func (d *BinaryDecoder) Skip(t Type) error { return skipValue(d, t, 0) }

// Remaining reports undecoded bytes left in the input.
func (d *BinaryDecoder) Remaining() int { return len(d.data) - d.pos }

package thrift

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// testStruct exercises every wire type including nesting.
type testStruct struct {
	B   bool
	I8  int8
	I16 int16
	I32 int32
	I64 int64
	F   float64
	S   string
	Bin []byte
	M   map[string]int64
	L   []string
	Sub *testStruct
}

func (t *testStruct) Encode(e Encoder) {
	e.WriteStructBegin()
	e.WriteFieldBegin(BOOL, 1)
	e.WriteBool(t.B)
	e.WriteFieldBegin(BYTE, 2)
	e.WriteI8(t.I8)
	e.WriteFieldBegin(I16, 3)
	e.WriteI16(t.I16)
	e.WriteFieldBegin(I32, 4)
	e.WriteI32(t.I32)
	e.WriteFieldBegin(I64, 5)
	e.WriteI64(t.I64)
	e.WriteFieldBegin(DOUBLE, 6)
	e.WriteDouble(t.F)
	e.WriteFieldBegin(STRING, 7)
	e.WriteString(t.S)
	e.WriteFieldBegin(STRING, 8)
	e.WriteBinary(t.Bin)
	e.WriteFieldBegin(MAP, 9)
	e.WriteMapBegin(STRING, I64, len(t.M))
	for k, v := range t.M {
		e.WriteString(k)
		e.WriteI64(v)
	}
	e.WriteFieldBegin(LIST, 10)
	e.WriteListBegin(STRING, len(t.L))
	for _, s := range t.L {
		e.WriteString(s)
	}
	if t.Sub != nil {
		e.WriteFieldBegin(STRUCT, 11)
		t.Sub.Encode(e)
	}
	e.WriteFieldStop()
	e.WriteStructEnd()
}

func (t *testStruct) Decode(d Decoder) error {
	if err := d.ReadStructBegin(); err != nil {
		return err
	}
	for {
		ft, id, err := d.ReadFieldBegin()
		if err != nil {
			return err
		}
		if ft == STOP {
			break
		}
		switch id {
		case 1:
			t.B, err = d.ReadBool()
		case 2:
			t.I8, err = d.ReadI8()
		case 3:
			t.I16, err = d.ReadI16()
		case 4:
			t.I32, err = d.ReadI32()
		case 5:
			t.I64, err = d.ReadI64()
		case 6:
			t.F, err = d.ReadDouble()
		case 7:
			t.S, err = d.ReadString()
		case 8:
			var b []byte
			b, err = d.ReadBinary()
			t.Bin = make([]byte, len(b))
			copy(t.Bin, b)
		case 9:
			var n int
			if _, _, n, err = d.ReadMapBegin(); err == nil {
				t.M = make(map[string]int64, n)
				for i := 0; i < n; i++ {
					var k string
					var v int64
					if k, err = d.ReadString(); err != nil {
						return err
					}
					if v, err = d.ReadI64(); err != nil {
						return err
					}
					t.M[k] = v
				}
			}
		case 10:
			var n int
			if _, n, err = d.ReadListBegin(); err == nil {
				t.L = make([]string, 0, n)
				for i := 0; i < n; i++ {
					var s string
					if s, err = d.ReadString(); err != nil {
						return err
					}
					t.L = append(t.L, s)
				}
			}
		case 11:
			t.Sub = &testStruct{}
			err = t.Sub.Decode(d)
		default:
			err = d.Skip(ft)
		}
		if err != nil {
			return err
		}
	}
	return d.ReadStructEnd()
}

func sample() *testStruct {
	return &testStruct{
		B: true, I8: -7, I16: -12345, I32: 1 << 30, I64: -(1 << 60),
		F: 3.14159, S: "web:home:mentions:stream:avatar:profile_click",
		Bin: []byte{0, 1, 2, 255},
		M:   map[string]int64{"rank": 3, "url_id": 991},
		L:   []string{"a", "b", "c"},
		Sub: &testStruct{S: "nested", I64: 42, M: map[string]int64{}, Bin: []byte{}, L: []string{}},
	}
}

func roundTrip(t *testing.T, enc func(Struct) []byte, dec func([]byte, Struct) error) {
	t.Helper()
	in := sample()
	data := enc(in)
	var out testStruct
	if err := dec(data, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, &out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, &out)
	}
}

func TestBinaryRoundTrip(t *testing.T)  { roundTrip(t, EncodeBinary, DecodeBinary) }
func TestCompactRoundTrip(t *testing.T) { roundTrip(t, EncodeCompact, DecodeCompact) }

func TestCompactSmallerThanBinary(t *testing.T) {
	s := sample()
	b, c := EncodeBinary(s), EncodeCompact(s)
	if len(c) >= len(b) {
		t.Fatalf("compact (%d bytes) not smaller than binary (%d bytes)", len(c), len(b))
	}
}

// v2Struct is testStruct plus extra fields an old reader has never seen.
type v2Struct struct {
	testStruct
	Extra     string
	ExtraList []int64
	ExtraSub  *testStruct
}

func (v *v2Struct) Encode(e Encoder) {
	e.WriteStructBegin()
	e.WriteFieldBegin(BOOL, 1)
	e.WriteBool(v.B)
	e.WriteFieldBegin(STRING, 7)
	e.WriteString(v.S)
	// New fields unknown to v1 readers, deliberately interleaved.
	e.WriteFieldBegin(STRING, 20)
	e.WriteString(v.Extra)
	e.WriteFieldBegin(LIST, 21)
	e.WriteListBegin(I64, len(v.ExtraList))
	for _, x := range v.ExtraList {
		e.WriteI64(x)
	}
	if v.ExtraSub != nil {
		e.WriteFieldBegin(STRUCT, 22)
		v.ExtraSub.Encode(e)
	}
	e.WriteFieldBegin(I64, 5)
	e.WriteI64(v.I64)
	e.WriteFieldStop()
	e.WriteStructEnd()
}

func (v *v2Struct) Decode(d Decoder) error { return v.testStruct.Decode(d) }

// TestSchemaEvolution verifies the paper's backwards-compatibility property:
// messages "can be augmented with additional fields in a completely
// transparent way" (§3) — a v1 reader must skip v2 fields.
func TestSchemaEvolution(t *testing.T) {
	v2 := &v2Struct{
		testStruct: testStruct{B: true, S: "hello", I64: 99},
		Extra:      "new-field",
		ExtraList:  []int64{1, 2, 3},
		ExtraSub:   &testStruct{S: "deep", M: map[string]int64{}},
	}
	for name, codec := range map[string]struct {
		enc func(Struct) []byte
		dec func([]byte, Struct) error
	}{
		"binary":  {EncodeBinary, DecodeBinary},
		"compact": {EncodeCompact, DecodeCompact},
	} {
		data := codec.enc(v2)
		var v1 testStruct
		if err := codec.dec(data, &v1); err != nil {
			t.Fatalf("%s: v1 reader failed on v2 message: %v", name, err)
		}
		if !v1.B || v1.S != "hello" || v1.I64 != 99 {
			t.Fatalf("%s: v1 fields corrupted: %+v", name, v1)
		}
	}
}

func TestZigZag(t *testing.T) {
	for _, v := range []int64{0, -1, 1, -2, 2, math.MaxInt64, math.MinInt64, 12345, -12345} {
		if got := unzigzag64(zigzag64(v)); got != v {
			t.Errorf("zigzag64(%d) round trip = %d", v, got)
		}
	}
	for _, v := range []int32{0, -1, 1, math.MaxInt32, math.MinInt32} {
		if got := unzigzag32(zigzag32(v)); got != v {
			t.Errorf("zigzag32(%d) round trip = %d", v, got)
		}
	}
}

func TestZigZagProperty(t *testing.T) {
	f := func(v int64) bool { return unzigzag64(zigzag64(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(v int32) bool {
		// Small magnitudes must encode small: |v| <= 63 fits one varint byte.
		if v > -64 && v < 64 {
			return zigzag32(v) < 128
		}
		return true
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripProperty fuzzes struct contents through both protocols.
func TestRoundTripProperty(t *testing.T) {
	f := func(b bool, i8 int8, i16 int16, i32 int32, i64 int64, fl float64, s string, bin []byte, l []string) bool {
		if math.IsNaN(fl) {
			return true // NaN != NaN; skip.
		}
		if bin == nil {
			bin = []byte{}
		}
		if l == nil {
			l = []string{}
		}
		in := &testStruct{B: b, I8: i8, I16: i16, I32: i32, I64: i64, F: fl, S: s, Bin: bin, L: l, M: map[string]int64{}}
		var outB, outC testStruct
		if err := DecodeBinary(EncodeBinary(in), &outB); err != nil {
			return false
		}
		if err := DecodeCompact(EncodeCompact(in), &outC); err != nil {
			return false
		}
		return reflect.DeepEqual(in, &outB) && reflect.DeepEqual(in, &outC)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedInput(t *testing.T) {
	data := EncodeBinary(sample())
	for cut := 0; cut < len(data); cut += 7 {
		var out testStruct
		if err := DecodeBinary(data[:cut], &out); err == nil {
			// Truncation at a field boundary after all required data may
			// decode only if a STOP byte happens to align; reaching here
			// without error on a strict prefix that lacks STOP is a bug.
			if cut < len(data)-1 {
				t.Fatalf("no error decoding %d/%d byte prefix", cut, len(data))
			}
		}
	}
	dataC := EncodeCompact(sample())
	for cut := 0; cut < len(dataC); cut += 7 {
		var out testStruct
		if err := DecodeCompact(dataC[:cut], &out); err == nil && cut < len(dataC)-1 {
			t.Fatalf("compact: no error decoding %d/%d byte prefix", cut, len(dataC))
		}
	}
}

func TestMaliciousSizes(t *testing.T) {
	// A declared list of 2^31-1 strings in 6 bytes of input must not OOM.
	e := NewBinaryEncoder()
	e.WriteFieldBegin(LIST, 10)
	e.WriteListBegin(STRING, math.MaxInt32)
	data := append([]byte{}, e.Bytes()...)
	data = append(data, byte(STOP))
	var out testStruct
	if err := DecodeBinary(data, &out); err == nil {
		t.Fatal("expected size-limit error for absurd list size")
	}
}

func TestSkipDepthLimit(t *testing.T) {
	// 100 nested structs exceeds maxSkipDepth when skipped as unknown.
	e := NewBinaryEncoder()
	for i := 0; i < 100; i++ {
		e.WriteFieldBegin(STRUCT, 30)
	}
	for i := 0; i < 100; i++ {
		e.WriteFieldStop()
	}
	var out testStruct
	if err := DecodeBinary(e.Bytes(), &out); err == nil {
		t.Fatal("expected depth-limit error")
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewCompactEncoder()
	sample().Encode(e)
	n := e.Len()
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("Len after Reset = %d", e.Len())
	}
	sample().Encode(e)
	if e.Len() != n {
		t.Fatalf("re-encode after Reset: %d bytes, want %d", e.Len(), n)
	}
}

func TestRemaining(t *testing.T) {
	data := EncodeBinary(sample())
	d := NewBinaryDecoder(data)
	var out testStruct
	if err := out.Decode(d); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d after full decode", d.Remaining())
	}
}

func TestFieldIDDeltaAcrossNesting(t *testing.T) {
	// Compact field-id deltas must be scoped per struct: after a nested
	// struct with high field ids, the outer struct's delta context resumes.
	in := sample()
	in.Sub = &testStruct{S: "x", M: map[string]int64{}, Sub: &testStruct{I64: 7, M: map[string]int64{}}}
	var out testStruct
	if err := DecodeCompact(EncodeCompact(in), &out); err != nil {
		t.Fatal(err)
	}
	if out.Sub == nil || out.Sub.Sub == nil || out.Sub.Sub.I64 != 7 {
		t.Fatalf("nested decode mismatch: %+v", out.Sub)
	}
}

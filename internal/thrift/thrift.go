// Package thrift implements the Apache Thrift binary and compact wire
// protocols from scratch, sufficient for the "client events" log format and
// its schema evolution guarantees (unknown fields are skipped on decode).
//
// The paper serializes every log message as a Thrift struct (§3); this
// package is the substrate that plays Thrift's role. Two protocols are
// provided:
//
//   - the binary protocol: fixed-width big-endian integers, simple and fast;
//   - the compact protocol: zigzag varints and field-id delta encoding,
//     trading CPU for smaller messages.
//
// Encoders append to an internal buffer and never fail; decoders consume a
// byte slice and return errors for malformed or truncated input. A type that
// implements Struct can be round-tripped through either protocol with
// EncodeBinary/DecodeBinary and EncodeCompact/DecodeCompact.
package thrift

import (
	"errors"
	"fmt"
)

// Type identifies a Thrift wire type. The values match the Apache Thrift
// binary protocol type IDs.
type Type byte

// Wire types supported by both protocols.
const (
	STOP   Type = 0
	BOOL   Type = 2
	BYTE   Type = 3
	DOUBLE Type = 4
	I16    Type = 6
	I32    Type = 8
	I64    Type = 10
	STRING Type = 11
	STRUCT Type = 12
	MAP    Type = 13
	SET    Type = 14
	LIST   Type = 15
)

// String returns the conventional lowercase name of the type.
func (t Type) String() string {
	switch t {
	case STOP:
		return "stop"
	case BOOL:
		return "bool"
	case BYTE:
		return "byte"
	case DOUBLE:
		return "double"
	case I16:
		return "i16"
	case I32:
		return "i32"
	case I64:
		return "i64"
	case STRING:
		return "string"
	case STRUCT:
		return "struct"
	case MAP:
		return "map"
	case SET:
		return "set"
	case LIST:
		return "list"
	}
	return fmt.Sprintf("type(%d)", byte(t))
}

// Errors shared by the decoders.
var (
	ErrTruncated   = errors.New("thrift: truncated input")
	ErrInvalidType = errors.New("thrift: invalid wire type")
	// ErrDepthLimit guards Skip against adversarial deeply-nested input.
	ErrDepthLimit = errors.New("thrift: nesting depth limit exceeded")
	// ErrSizeLimit guards container and string decoding against absurd sizes.
	ErrSizeLimit = errors.New("thrift: declared size exceeds input")
)

// maxSkipDepth bounds recursion in Skip.
const maxSkipDepth = 64

// Encoder is the write half of a protocol. Encoders buffer internally and
// cannot fail; call Bytes to obtain the encoded message.
type Encoder interface {
	WriteStructBegin()
	WriteStructEnd()
	// WriteFieldBegin starts a struct field with the given type and id.
	WriteFieldBegin(t Type, id int16)
	// WriteFieldStop terminates the field list of the current struct.
	WriteFieldStop()
	WriteBool(v bool)
	WriteI8(v int8)
	WriteI16(v int16)
	WriteI32(v int32)
	WriteI64(v int64)
	WriteDouble(v float64)
	WriteString(v string)
	WriteBinary(v []byte)
	WriteMapBegin(k, v Type, size int)
	WriteListBegin(elem Type, size int)
	WriteSetBegin(elem Type, size int)
	// Bytes returns the encoded message. The returned slice aliases the
	// encoder's internal buffer and is valid until the next Write call.
	Bytes() []byte
	// Len reports the number of encoded bytes so far.
	Len() int
	// Reset discards the buffered output so the encoder can be reused.
	Reset()
}

// Decoder is the read half of a protocol.
type Decoder interface {
	ReadStructBegin() error
	ReadStructEnd() error
	// ReadFieldBegin returns the next field's type and id. A returned type
	// of STOP signals the end of the current struct.
	ReadFieldBegin() (Type, int16, error)
	ReadBool() (bool, error)
	ReadI8() (int8, error)
	ReadI16() (int16, error)
	ReadI32() (int32, error)
	ReadI64() (int64, error)
	ReadDouble() (float64, error)
	ReadString() (string, error)
	ReadBinary() ([]byte, error)
	ReadMapBegin() (k, v Type, size int, err error)
	ReadListBegin() (elem Type, size int, err error)
	ReadSetBegin() (elem Type, size int, err error)
	// Skip consumes and discards a value of the given type, recursing into
	// containers and structs. It is how decoders tolerate unknown fields.
	Skip(t Type) error
	// Remaining reports how many undecoded bytes are left.
	Remaining() int
}

// Struct is a message that knows how to serialize itself. Encode must write
// WriteStructBegin, the fields, WriteFieldStop, and WriteStructEnd; Decode
// must mirror it and Skip unknown fields so old readers accept new messages.
type Struct interface {
	Encode(e Encoder)
	Decode(d Decoder) error
}

// EncodeBinary serializes s with the binary protocol.
func EncodeBinary(s Struct) []byte {
	e := NewBinaryEncoder()
	s.Encode(e)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

// DecodeBinary deserializes data into s with the binary protocol.
func DecodeBinary(data []byte, s Struct) error {
	return s.Decode(NewBinaryDecoder(data))
}

// EncodeCompact serializes s with the compact protocol.
func EncodeCompact(s Struct) []byte {
	e := NewCompactEncoder()
	s.Encode(e)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

// DecodeCompact deserializes data into s with the compact protocol.
func DecodeCompact(data []byte, s Struct) error {
	return s.Decode(NewCompactDecoder(data))
}

// skipValue implements Skip generically in terms of the Decoder interface.
func skipValue(d Decoder, t Type, depth int) error {
	if depth > maxSkipDepth {
		return ErrDepthLimit
	}
	switch t {
	case BOOL:
		_, err := d.ReadBool()
		return err
	case BYTE:
		_, err := d.ReadI8()
		return err
	case DOUBLE:
		_, err := d.ReadDouble()
		return err
	case I16:
		_, err := d.ReadI16()
		return err
	case I32:
		_, err := d.ReadI32()
		return err
	case I64:
		_, err := d.ReadI64()
		return err
	case STRING:
		_, err := d.ReadBinary()
		return err
	case STRUCT:
		if err := d.ReadStructBegin(); err != nil {
			return err
		}
		for {
			ft, _, err := d.ReadFieldBegin()
			if err != nil {
				return err
			}
			if ft == STOP {
				break
			}
			if err := skipValue(d, ft, depth+1); err != nil {
				return err
			}
		}
		return d.ReadStructEnd()
	case MAP:
		kt, vt, n, err := d.ReadMapBegin()
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if err := skipValue(d, kt, depth+1); err != nil {
				return err
			}
			if err := skipValue(d, vt, depth+1); err != nil {
				return err
			}
		}
		return nil
	case SET, LIST:
		var et Type
		var n int
		var err error
		if t == SET {
			et, n, err = d.ReadSetBegin()
		} else {
			et, n, err = d.ReadListBegin()
		}
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if err := skipValue(d, et, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("%w: cannot skip %v", ErrInvalidType, t)
}

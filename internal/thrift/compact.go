package thrift

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Compact-protocol wire type nibbles. They differ from the binary protocol's
// type IDs; booleans in field headers carry their value in the type nibble.
const (
	ctStop        = 0x00
	ctBoolTrue    = 0x01
	ctBoolFalse   = 0x02
	ctByte        = 0x03
	ctI16         = 0x04
	ctI32         = 0x05
	ctI64         = 0x06
	ctDouble      = 0x07
	ctBinary      = 0x08
	ctList        = 0x09
	ctSet         = 0x0A
	ctMap         = 0x0B
	ctStruct      = 0x0C
	ctBoolGeneric = ctBoolTrue // element type used for bools inside containers
)

func toCompactType(t Type) byte {
	switch t {
	case BOOL:
		return ctBoolGeneric
	case BYTE:
		return ctByte
	case I16:
		return ctI16
	case I32:
		return ctI32
	case I64:
		return ctI64
	case DOUBLE:
		return ctDouble
	case STRING:
		return ctBinary
	case LIST:
		return ctList
	case SET:
		return ctSet
	case MAP:
		return ctMap
	case STRUCT:
		return ctStruct
	}
	return ctStop
}

func fromCompactType(ct byte) (Type, error) {
	switch ct {
	case ctBoolTrue, ctBoolFalse:
		return BOOL, nil
	case ctByte:
		return BYTE, nil
	case ctI16:
		return I16, nil
	case ctI32:
		return I32, nil
	case ctI64:
		return I64, nil
	case ctDouble:
		return DOUBLE, nil
	case ctBinary:
		return STRING, nil
	case ctList:
		return LIST, nil
	case ctSet:
		return SET, nil
	case ctMap:
		return MAP, nil
	case ctStruct:
		return STRUCT, nil
	}
	return STOP, fmt.Errorf("%w: compact type 0x%02x", ErrInvalidType, ct)
}

func zigzag32(v int32) uint32 { return uint32(v<<1) ^ uint32(v>>31) }
func zigzag64(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag32(v uint32) int32 {
	return int32(v>>1) ^ -int32(v&1)
}
func unzigzag64(v uint64) int64 {
	return int64(v>>1) ^ -int64(v&1)
}

// CompactEncoder implements the Thrift compact protocol: varint/zigzag
// integers, delta-encoded field ids, and single-byte bool fields.
type CompactEncoder struct {
	buf []byte
	// lastFieldID tracks the previous field id of the struct currently being
	// written so ids can be delta-encoded; idStack saves it across nesting.
	lastFieldID int16
	idStack     []int16
	// pendingBoolField holds the field id of a BOOL field whose header is
	// deferred until WriteBool supplies the value.
	pendingBoolField int16
	boolPending      bool
}

// NewCompactEncoder returns an empty compact-protocol encoder.
func NewCompactEncoder() *CompactEncoder { return &CompactEncoder{} }

var _ Encoder = (*CompactEncoder)(nil)

func (e *CompactEncoder) varint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// WriteStructBegin saves the field-id delta context of the enclosing struct.
func (e *CompactEncoder) WriteStructBegin() {
	e.idStack = append(e.idStack, e.lastFieldID)
	e.lastFieldID = 0
}

// WriteStructEnd restores the enclosing struct's field-id delta context.
func (e *CompactEncoder) WriteStructEnd() {
	if n := len(e.idStack); n > 0 {
		e.lastFieldID = e.idStack[n-1]
		e.idStack = e.idStack[:n-1]
	}
}

func (e *CompactEncoder) writeFieldHeader(ct byte, id int16) {
	delta := int(id) - int(e.lastFieldID)
	if delta > 0 && delta <= 15 {
		e.buf = append(e.buf, byte(delta)<<4|ct)
	} else {
		e.buf = append(e.buf, ct)
		e.varint(uint64(zigzag32(int32(id))))
	}
	e.lastFieldID = id
}

// WriteFieldBegin writes a field header. For BOOL fields the header is
// deferred: the value itself is packed into the type nibble by WriteBool.
func (e *CompactEncoder) WriteFieldBegin(t Type, id int16) {
	if t == BOOL {
		e.pendingBoolField = id
		e.boolPending = true
		return
	}
	e.writeFieldHeader(toCompactType(t), id)
}

// WriteFieldStop terminates the current struct's field list.
func (e *CompactEncoder) WriteFieldStop() { e.buf = append(e.buf, ctStop) }

// WriteBool writes a bool. As a field it is encoded entirely in the deferred
// field header; inside a container it is a single byte.
func (e *CompactEncoder) WriteBool(v bool) {
	ct := byte(ctBoolFalse)
	if v {
		ct = ctBoolTrue
	}
	if e.boolPending {
		e.writeFieldHeader(ct, e.pendingBoolField)
		e.boolPending = false
		return
	}
	e.buf = append(e.buf, ct)
}

// WriteI8 writes a raw byte.
func (e *CompactEncoder) WriteI8(v int8) { e.buf = append(e.buf, byte(v)) }

// WriteI16 writes a zigzag varint.
func (e *CompactEncoder) WriteI16(v int16) { e.varint(uint64(zigzag32(int32(v)))) }

// WriteI32 writes a zigzag varint.
func (e *CompactEncoder) WriteI32(v int32) { e.varint(uint64(zigzag32(v))) }

// WriteI64 writes a zigzag varint.
func (e *CompactEncoder) WriteI64(v int64) { e.varint(zigzag64(v)) }

// WriteDouble writes an IEEE-754 double, little-endian per the compact spec.
func (e *CompactEncoder) WriteDouble(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// WriteString writes a varint length followed by the UTF-8 bytes.
func (e *CompactEncoder) WriteString(v string) {
	e.varint(uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// WriteBinary writes a varint length followed by the raw bytes.
func (e *CompactEncoder) WriteBinary(v []byte) {
	e.varint(uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// WriteMapBegin writes a map header: empty maps are a single zero byte,
// otherwise a varint size followed by a packed key/value type byte.
func (e *CompactEncoder) WriteMapBegin(k, v Type, size int) {
	if size == 0 {
		e.buf = append(e.buf, 0)
		return
	}
	e.varint(uint64(size))
	e.buf = append(e.buf, toCompactType(k)<<4|toCompactType(v))
}

// WriteListBegin writes a list header: sizes below 15 pack into the type
// byte, larger sizes follow as a varint.
func (e *CompactEncoder) WriteListBegin(elem Type, size int) {
	if size < 15 {
		e.buf = append(e.buf, byte(size)<<4|toCompactType(elem))
		return
	}
	e.buf = append(e.buf, 0xF0|toCompactType(elem))
	e.varint(uint64(size))
}

// WriteSetBegin writes a set header, identical in shape to a list header.
func (e *CompactEncoder) WriteSetBegin(elem Type, size int) { e.WriteListBegin(elem, size) }

// Bytes returns the encoded bytes accumulated so far.
func (e *CompactEncoder) Bytes() []byte { return e.buf }

// Len reports the number of encoded bytes so far.
func (e *CompactEncoder) Len() int { return len(e.buf) }

// Reset discards buffered output and all delta-encoding state.
func (e *CompactEncoder) Reset() {
	e.buf = e.buf[:0]
	e.lastFieldID = 0
	e.idStack = e.idStack[:0]
	e.boolPending = false
}

// CompactDecoder decodes messages produced by CompactEncoder.
type CompactDecoder struct {
	data        []byte
	pos         int
	lastFieldID int16
	idStack     []int16
	// pendingBool carries a bool value read from a field-header type nibble
	// to the following ReadBool call.
	pendingBool    bool
	hasPendingBool bool
}

// NewCompactDecoder returns a decoder consuming data.
func NewCompactDecoder(data []byte) *CompactDecoder { return &CompactDecoder{data: data} }

var _ Decoder = (*CompactDecoder)(nil)

func (d *CompactDecoder) readByte() (byte, error) {
	if d.pos >= len(d.data) {
		return 0, ErrTruncated
	}
	b := d.data[d.pos]
	d.pos++
	return b, nil
}

func (d *CompactDecoder) readUvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint at offset %d", ErrTruncated, d.pos)
	}
	d.pos += n
	return v, nil
}

// ReadStructBegin saves the enclosing struct's field-id delta context.
func (d *CompactDecoder) ReadStructBegin() error {
	d.idStack = append(d.idStack, d.lastFieldID)
	d.lastFieldID = 0
	return nil
}

// ReadStructEnd restores the enclosing struct's field-id delta context.
func (d *CompactDecoder) ReadStructEnd() error {
	if n := len(d.idStack); n > 0 {
		d.lastFieldID = d.idStack[n-1]
		d.idStack = d.idStack[:n-1]
	}
	return nil
}

// ReadFieldBegin reads the next field header, resolving field-id deltas. For
// BOOL fields the value is stashed for the following ReadBool.
func (d *CompactDecoder) ReadFieldBegin() (Type, int16, error) {
	b, err := d.readByte()
	if err != nil {
		return STOP, 0, err
	}
	if b == ctStop {
		return STOP, 0, nil
	}
	ct := b & 0x0F
	delta := int16(b >> 4)
	var id int16
	if delta != 0 {
		id = d.lastFieldID + delta
	} else {
		raw, err := d.readUvarint()
		if err != nil {
			return STOP, 0, err
		}
		id = int16(unzigzag32(uint32(raw)))
	}
	d.lastFieldID = id
	t, err := fromCompactType(ct)
	if err != nil {
		return STOP, 0, err
	}
	if t == BOOL {
		d.pendingBool = ct == ctBoolTrue
		d.hasPendingBool = true
	}
	return t, id, nil
}

// ReadBool returns a bool from a pending field header or a container byte.
func (d *CompactDecoder) ReadBool() (bool, error) {
	if d.hasPendingBool {
		d.hasPendingBool = false
		return d.pendingBool, nil
	}
	b, err := d.readByte()
	if err != nil {
		return false, err
	}
	return b == ctBoolTrue, nil
}

// ReadI8 reads a raw byte.
func (d *CompactDecoder) ReadI8() (int8, error) {
	b, err := d.readByte()
	return int8(b), err
}

// ReadI16 reads a zigzag varint.
func (d *CompactDecoder) ReadI16() (int16, error) {
	v, err := d.readUvarint()
	return int16(unzigzag32(uint32(v))), err
}

// ReadI32 reads a zigzag varint.
func (d *CompactDecoder) ReadI32() (int32, error) {
	v, err := d.readUvarint()
	return unzigzag32(uint32(v)), err
}

// ReadI64 reads a zigzag varint.
func (d *CompactDecoder) ReadI64() (int64, error) {
	v, err := d.readUvarint()
	return unzigzag64(v), err
}

// ReadDouble reads a little-endian IEEE-754 double.
func (d *CompactDecoder) ReadDouble() (float64, error) {
	if d.pos+8 > len(d.data) {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(d.data[d.pos:])
	d.pos += 8
	return math.Float64frombits(v), nil
}

// ReadString reads a varint-length-prefixed UTF-8 string.
func (d *CompactDecoder) ReadString() (string, error) {
	b, err := d.ReadBinary()
	return string(b), err
}

// ReadBinary reads a varint-length-prefixed byte slice. The returned slice
// aliases the decoder's input.
func (d *CompactDecoder) ReadBinary() ([]byte, error) {
	n, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.data)-d.pos) {
		return nil, fmt.Errorf("%w: binary of %d bytes", ErrSizeLimit, n)
	}
	v := d.data[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return v, nil
}

// ReadMapBegin reads a map header.
func (d *CompactDecoder) ReadMapBegin() (Type, Type, int, error) {
	n, err := d.readUvarint()
	if err != nil {
		return STOP, STOP, 0, err
	}
	if n == 0 {
		return STOP, STOP, 0, nil
	}
	if n > uint64(len(d.data)-d.pos) {
		return STOP, STOP, 0, fmt.Errorf("%w: map of %d entries", ErrSizeLimit, n)
	}
	kv, err := d.readByte()
	if err != nil {
		return STOP, STOP, 0, err
	}
	kt, err := fromCompactType(kv >> 4)
	if err != nil {
		return STOP, STOP, 0, err
	}
	vt, err := fromCompactType(kv & 0x0F)
	if err != nil {
		return STOP, STOP, 0, err
	}
	return kt, vt, int(n), nil
}

// ReadListBegin reads a list header.
func (d *CompactDecoder) ReadListBegin() (Type, int, error) {
	b, err := d.readByte()
	if err != nil {
		return STOP, 0, err
	}
	et, err := fromCompactType(b & 0x0F)
	if err != nil {
		return STOP, 0, err
	}
	n := uint64(b >> 4)
	if n == 15 {
		n, err = d.readUvarint()
		if err != nil {
			return STOP, 0, err
		}
	}
	if n > uint64(len(d.data)-d.pos) {
		return STOP, 0, fmt.Errorf("%w: list of %d elements", ErrSizeLimit, n)
	}
	return et, int(n), nil
}

// ReadSetBegin reads a set header.
func (d *CompactDecoder) ReadSetBegin() (Type, int, error) { return d.ReadListBegin() }

// Skip discards a value of type t, recursing into containers.
func (d *CompactDecoder) Skip(t Type) error { return skipValue(d, t, 0) }

// Remaining reports undecoded bytes left in the input.
func (d *CompactDecoder) Remaining() int { return len(d.data) - d.pos }

package thrift

import "testing"

// boolListStruct exercises bools inside containers, where the compact
// protocol encodes them as standalone bytes instead of field-header nibbles.
type boolListStruct struct {
	Flags []bool
	M     map[string]bool
}

func (s *boolListStruct) Encode(e Encoder) {
	e.WriteStructBegin()
	e.WriteFieldBegin(LIST, 1)
	e.WriteListBegin(BOOL, len(s.Flags))
	for _, b := range s.Flags {
		e.WriteBool(b)
	}
	e.WriteFieldBegin(MAP, 2)
	e.WriteMapBegin(STRING, BOOL, len(s.M))
	for k, v := range s.M {
		e.WriteString(k)
		e.WriteBool(v)
	}
	e.WriteFieldStop()
	e.WriteStructEnd()
}

func (s *boolListStruct) Decode(d Decoder) error {
	if err := d.ReadStructBegin(); err != nil {
		return err
	}
	for {
		ft, id, err := d.ReadFieldBegin()
		if err != nil {
			return err
		}
		if ft == STOP {
			break
		}
		switch id {
		case 1:
			et, n, err := d.ReadListBegin()
			if err != nil {
				return err
			}
			if et != BOOL {
				return ErrInvalidType
			}
			s.Flags = make([]bool, 0, n)
			for i := 0; i < n; i++ {
				b, err := d.ReadBool()
				if err != nil {
					return err
				}
				s.Flags = append(s.Flags, b)
			}
		case 2:
			_, _, n, err := d.ReadMapBegin()
			if err != nil {
				return err
			}
			s.M = make(map[string]bool, n)
			for i := 0; i < n; i++ {
				k, err := d.ReadString()
				if err != nil {
					return err
				}
				v, err := d.ReadBool()
				if err != nil {
					return err
				}
				s.M[k] = v
			}
		default:
			if err := d.Skip(ft); err != nil {
				return err
			}
		}
	}
	return d.ReadStructEnd()
}

func TestBoolsInContainers(t *testing.T) {
	in := &boolListStruct{
		Flags: []bool{true, false, true, true, false},
		M:     map[string]bool{"a": true, "b": false},
	}
	for name, codec := range map[string]struct {
		enc func(Struct) []byte
		dec func([]byte, Struct) error
	}{
		"binary":  {EncodeBinary, DecodeBinary},
		"compact": {EncodeCompact, DecodeCompact},
	} {
		var out boolListStruct
		if err := codec.dec(codec.enc(in), &out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out.Flags) != len(in.Flags) {
			t.Fatalf("%s: flags = %v", name, out.Flags)
		}
		for i := range in.Flags {
			if out.Flags[i] != in.Flags[i] {
				t.Fatalf("%s: flags[%d] = %v", name, i, out.Flags[i])
			}
		}
		if out.M["a"] != true || out.M["b"] != false {
			t.Fatalf("%s: map = %v", name, out.M)
		}
	}
}

// TestBoolContainerSkipped: a reader that doesn't know the field skips
// bool containers correctly in both protocols.
func TestBoolContainerSkipped(t *testing.T) {
	in := &boolListStruct{Flags: []bool{true, false}, M: map[string]bool{"x": true}}
	var out testStruct // knows neither field 1 as LIST-of-BOOL nor field 2 as MAP
	// testStruct field ids 1 and 2 are BOOL and BYTE; wire types differ, so
	// decode must skip them. Use ids outside its schema via a shim instead:
	data := EncodeCompact(in)
	_ = data
	// Decode with a struct that skips everything.
	var sink skipAll
	if err := DecodeCompact(EncodeCompact(in), &sink); err != nil {
		t.Fatalf("compact skip: %v", err)
	}
	if err := DecodeBinary(EncodeBinary(in), &sink); err != nil {
		t.Fatalf("binary skip: %v", err)
	}
	_ = out
}

type skipAll struct{}

func (skipAll) Encode(e Encoder) { e.WriteStructBegin(); e.WriteFieldStop(); e.WriteStructEnd() }
func (s *skipAll) Decode(d Decoder) error {
	if err := d.ReadStructBegin(); err != nil {
		return err
	}
	for {
		ft, _, err := d.ReadFieldBegin()
		if err != nil {
			return err
		}
		if ft == STOP {
			break
		}
		if err := d.Skip(ft); err != nil {
			return err
		}
	}
	return d.ReadStructEnd()
}

func TestTypeStrings(t *testing.T) {
	want := map[Type]string{
		STOP: "stop", BOOL: "bool", BYTE: "byte", DOUBLE: "double",
		I16: "i16", I32: "i32", I64: "i64", STRING: "string",
		STRUCT: "struct", MAP: "map", SET: "set", LIST: "list",
	}
	for typ, s := range want {
		if typ.String() != s {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), s)
		}
	}
	if Type(99).String() == "" {
		t.Error("unknown type has empty String")
	}
}

// Package logmover implements the pipeline stage that copies logs from the
// per-datacenter staging clusters into the main data warehouse (§2).
//
// For each category-hour the mover:
//
//  1. waits until every datacenter has sealed the hour (the _SEALED marker
//     written after all aggregators flushed);
//  2. applies sanity checks — each staging file must be a well-formed
//     gzipped record stream; corrupt files fail the move rather than
//     silently losing data;
//  3. merges the many small per-aggregator files into a few big warehouse
//     files, re-compressing as it goes;
//  4. atomically slides the hour into /logs/<category>/YYYY/MM/DD/HH/ with
//     a single directory rename;
//  5. records an audit trace of what moved, how many records, and from
//     where.
//
// Within a merged file, record order is the concatenation order of staging
// files; across files it is unspecified — exactly the "partial
// chronological order" the paper warns downstream analyses about.
package logmover

import (
	"errors"
	"fmt"
	"time"

	"unilog/internal/columnar"
	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/recordio"
	"unilog/internal/warehouse"
)

// Errors reported by the mover.
var (
	// ErrHourIncomplete means at least one datacenter has not sealed the
	// hour yet; the move is retried later.
	ErrHourIncomplete = errors.New("logmover: hour not sealed by all datacenters")
	// ErrAlreadyMoved means the warehouse already contains this hour.
	ErrAlreadyMoved = errors.New("logmover: hour already present in warehouse")
	// ErrCorruptFile means a staging file failed its sanity check.
	ErrCorruptFile = errors.New("logmover: corrupt staging file")
)

// Source is one datacenter's staging cluster.
type Source struct {
	Datacenter string
	FS         *hdfs.FS
}

// AuditRecord is the execution trace of one category-hour move.
type AuditRecord struct {
	Category string
	Hour     time.Time
	Started  time.Time
	Finished time.Time
	FilesIn  int
	FilesOut int
	Records  int64
	// Dropped counts records removed by the Transform hook.
	Dropped     int64
	BytesIn     int64
	BytesOut    int64
	Datacenters []string
}

// Mover copies sealed staging hours into the warehouse.
type Mover struct {
	Warehouse *hdfs.FS
	Sources   []Source
	// TargetFileBytes is the approximate uncompressed size of each merged
	// warehouse file ("merging many small files into a few big ones", §2).
	TargetFileBytes int64
	// Transform, when set, rewrites each record on its way into the
	// warehouse — §2's "sanity checks and transformations". Returning nil
	// drops the record (counted in the audit); a typical transform is the
	// §3.2 anonymization policy. Errors abort the move.
	Transform func(category string, rec []byte) ([]byte, error)
	// SealColumnar re-encodes each client-events hour into column chunks
	// (internal/columnar) right after it is published, so batch queries
	// over the hour get zone-map pruning and projection pushdown from the
	// moment it lands. Other categories are unaffected: sealing decodes
	// events.ClientEvent, which only the unified category stores.
	SealColumnar bool
	// SealParallelism caps the workers of the columnar sealing pass that
	// MoveAllSealed runs after publishing its hours: moves stay ordered
	// and sequential (the rename is the correctness point), but the
	// CPU-bound re-encode of the published hours fans out. <= 0 means
	// runtime.GOMAXPROCS(0); 1 seals hour by hour. MoveHour always seals
	// its single hour inline.
	SealParallelism int
	// Clock stamps audit records; nil uses time.Now.
	Clock func() time.Time

	audits []AuditRecord
}

// New returns a Mover targeting the given warehouse filesystem.
func New(wh *hdfs.FS, sources ...Source) *Mover {
	return &Mover{
		Warehouse:       wh,
		Sources:         sources,
		TargetFileBytes: 4 << 20,
		Clock:           time.Now,
	}
}

// Audits returns the execution traces of completed moves.
func (m *Mover) Audits() []AuditRecord { return m.audits }

// HourSealed reports whether every datacenter has sealed the category-hour.
func (m *Mover) HourSealed(category string, hour time.Time) bool {
	dir := warehouse.StagingHourDir(category, hour)
	for _, src := range m.Sources {
		if !src.FS.Exists(dir + "/" + warehouse.SealedMarker) {
			return false
		}
	}
	return true
}

// MoveHour merges one sealed category-hour from all staging clusters into
// the warehouse and atomically publishes it. On any error the warehouse is
// untouched.
func (m *Mover) MoveHour(category string, hour time.Time) (AuditRecord, error) {
	return m.moveHour(category, hour, true)
}

// moveHour publishes one hour; sealInline controls whether the columnar
// re-encode happens here (MoveHour) or is left to the caller's deferred
// sealing pass (MoveAllSealed, which fans the seals out after all moves).
func (m *Mover) moveHour(category string, hour time.Time, sealInline bool) (AuditRecord, error) {
	rec := AuditRecord{Category: category, Hour: hour.UTC().Truncate(time.Hour), Started: m.Clock()}
	destDir := warehouse.HourDir(category, hour)
	if m.Warehouse.Exists(destDir) {
		return rec, fmt.Errorf("%w: %s", ErrAlreadyMoved, destDir)
	}
	if !m.HourSealed(category, hour) {
		return rec, fmt.Errorf("%w: %s %s", ErrHourIncomplete, category, warehouse.HourPath(hour))
	}

	tmpDir := fmt.Sprintf("%s/mover/%s/%s", warehouse.TmpRoot, category, warehouse.HourPath(hour))
	// A previous failed attempt may have left debris; start clean.
	if m.Warehouse.Exists(tmpDir) {
		if err := m.Warehouse.Delete(tmpDir, true); err != nil {
			return rec, err
		}
	}

	merger := newMerger(m.Warehouse, tmpDir, m.TargetFileBytes)
	srcDir := warehouse.StagingHourDir(category, hour)
	type consumed struct {
		fs   *hdfs.FS
		path string
	}
	var toDelete []consumed
	for _, src := range m.Sources {
		infos, err := src.FS.Walk(srcDir)
		if errors.Is(err, hdfs.ErrNotFound) {
			continue
		}
		if err != nil {
			return rec, err
		}
		dcHadData := false
		for _, fi := range infos {
			if fi.Path == srcDir+"/"+warehouse.SealedMarker {
				toDelete = append(toDelete, consumed{src.FS, fi.Path})
				continue
			}
			data, err := src.FS.ReadFile(fi.Path)
			if err != nil {
				return rec, err
			}
			// Sanity check + transform + merge in one scan.
			n := int64(0)
			err = recordio.ScanGzipFile(data, func(r []byte) error {
				n++
				if m.Transform != nil {
					out, terr := m.Transform(category, r)
					if terr != nil {
						return terr
					}
					if out == nil {
						rec.Dropped++
						n-- // not counted as moved
						return nil
					}
					r = out
				}
				return merger.append(r)
			})
			if err != nil {
				return rec, fmt.Errorf("%w: %s from %s: %v", ErrCorruptFile, fi.Path, src.Datacenter, err)
			}
			rec.FilesIn++
			rec.Records += n
			rec.BytesIn += fi.Size
			dcHadData = true
			toDelete = append(toDelete, consumed{src.FS, fi.Path})
		}
		if dcHadData {
			rec.Datacenters = append(rec.Datacenters, src.Datacenter)
		}
	}
	filesOut, bytesOut, err := merger.close()
	if err != nil {
		return rec, err
	}
	rec.FilesOut = filesOut
	rec.BytesOut = bytesOut

	// The atomic slide: one rename publishes the whole hour.
	if filesOut > 0 {
		if err := m.Warehouse.Rename(tmpDir, destDir); err != nil {
			return rec, err
		}
	} else if err := m.Warehouse.MkdirAll(destDir); err != nil {
		return rec, err
	}

	// Source files are consumed only after the hour is published.
	for _, c := range toDelete {
		if err := c.fs.Delete(c.path, false); err != nil && !errors.Is(err, hdfs.ErrNotFound) {
			return rec, err
		}
	}
	if sealInline && m.needsSeal(category, filesOut) {
		if _, err := columnar.SealHour(m.Warehouse, category, hour); err != nil {
			return rec, err
		}
	}
	rec.Finished = m.Clock()
	m.audits = append(m.audits, rec)
	return rec, nil
}

// MoveAllSealed scans staging for sealed category-hours and moves each one,
// returning the audit records of successful moves. Categories are
// discovered from the staging directory trees.
func (m *Mover) MoveAllSealed() ([]AuditRecord, error) {
	type catHour struct {
		category string
		hour     time.Time
	}
	seen := make(map[catHour]bool)
	var order []catHour
	for _, src := range m.Sources {
		infos, err := src.FS.Walk(warehouse.StagingRoot)
		// A missing staging root means nothing staged yet; an unavailable
		// cluster defers its hours to a later pass (they cannot pass the
		// seal barrier this round anyway).
		if errors.Is(err, hdfs.ErrNotFound) || errors.Is(err, hdfs.ErrUnavailable) {
			continue
		}
		if err != nil {
			return nil, err
		}
		for _, fi := range infos {
			cat, hour, ok := parseStagingPath(fi.Path)
			if !ok {
				continue
			}
			ch := catHour{cat, hour}
			if !seen[ch] {
				seen[ch] = true
				order = append(order, ch)
			}
		}
	}
	var recs []AuditRecord
	var toSeal []time.Time
	for _, ch := range order {
		if !m.HourSealed(ch.category, ch.hour) {
			continue
		}
		if m.Warehouse.Exists(warehouse.HourDir(ch.category, ch.hour)) {
			continue
		}
		rec, err := m.moveHour(ch.category, ch.hour, false)
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
		if m.needsSeal(ch.category, rec.FilesOut) {
			toSeal = append(toSeal, ch.hour)
		}
	}
	// Sealing is deferred behind the moves and fanned out: the hours are
	// already published (readable as row files), so the CPU-bound
	// re-encode can run wide without delaying any hour's availability. A
	// seal failure leaves its hour row-only — the reader falls back — and
	// surfaces here after every move has landed.
	if _, err := columnar.SealHoursParallel(m.Warehouse, events.Category, toSeal, m.SealParallelism); err != nil {
		return recs, err
	}
	return recs, nil
}

// needsSeal reports whether a just-published hour should be columnar
// sealed: the feature is on, the category actually stores ClientEvents,
// and the hour has data.
func (m *Mover) needsSeal(category string, filesOut int) bool {
	return m.SealColumnar && category == events.Category && filesOut > 0
}

// parseStagingPath extracts (category, hour) from
// /staging/<category>/YYYY/MM/DD/HH/<file>.
func parseStagingPath(p string) (string, time.Time, bool) {
	const prefix = warehouse.StagingRoot + "/"
	if len(p) <= len(prefix) || p[:len(prefix)] != prefix {
		return "", time.Time{}, false
	}
	// The remainder must be category/YYYY/MM/DD/HH/file.
	parts := splitN(p[len(prefix):], '/', 6)
	if len(parts) != 6 {
		return "", time.Time{}, false
	}
	var y, mo, d, h int
	for i, dst := range []*int{&y, &mo, &d, &h} {
		if _, err := fmt.Sscanf(parts[i+1], "%d", dst); err != nil {
			return "", time.Time{}, false
		}
	}
	return parts[0], time.Date(y, time.Month(mo), d, h, 0, 0, 0, time.UTC), true
}

func splitN(s string, sep byte, n int) []string {
	out := make([]string, 0, n)
	start := 0
	for i := 0; i < len(s) && len(out) < n-1; i++ {
		if s[i] == sep {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	out = append(out, s[start:])
	return out
}

// merger accumulates records and rolls output files at the target size.
type merger struct {
	fs      *hdfs.FS
	dir     string
	target  int64
	buf     *memBuf
	w       *recordio.GzipWriter
	raw     int64
	seq     int
	files   int
	outSize int64
}

type memBuf struct{ data []byte }

func (m *memBuf) Write(p []byte) (int, error) {
	m.data = append(m.data, p...)
	return len(p), nil
}

func newMerger(fs *hdfs.FS, dir string, target int64) *merger {
	return &merger{fs: fs, dir: dir, target: target}
}

func (m *merger) append(rec []byte) error {
	if m.w == nil {
		m.buf = &memBuf{}
		m.w = recordio.NewGzipWriter(m.buf)
		m.raw = 0
	}
	if err := m.w.Append(rec); err != nil {
		return err
	}
	m.raw += int64(len(rec))
	if m.raw >= m.target {
		return m.roll()
	}
	return nil
}

func (m *merger) roll() error {
	if m.w == nil {
		return nil
	}
	if err := m.w.Close(); err != nil {
		return err
	}
	path := fmt.Sprintf("%s/part-%05d.gz", m.dir, m.seq)
	m.seq++
	if err := m.fs.WriteFile(path, m.buf.data); err != nil {
		return err
	}
	m.files++
	m.outSize += int64(len(m.buf.data))
	m.w = nil
	m.buf = nil
	return nil
}

func (m *merger) close() (int, int64, error) {
	if err := m.roll(); err != nil {
		return 0, 0, err
	}
	return m.files, m.outSize, nil
}

package logmover

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"unilog/internal/columnar"
	"unilog/internal/dataflow"
	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/recordio"
	"unilog/internal/scribe"
	"unilog/internal/warehouse"
	"unilog/internal/zk"
)

var t0 = time.Date(2012, 8, 21, 14, 0, 0, 0, time.UTC)

// stageHour writes n messages into a staging cluster through a real
// datacenter pipeline and seals the hour.
func stageHour(t *testing.T, dcName string, n int, seal bool) *scribe.Datacenter {
	t.Helper()
	clock := zk.NewManualClock(t0)
	dc, err := scribe.NewDatacenter(dcName, hdfs.New(0), clock, 1, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		dc.Daemons[0].Log("ce", []byte(fmt.Sprintf("%s-msg-%04d", dcName, i)))
	}
	if seal {
		if err := dc.SealHour([]string{"ce"}, t0); err != nil {
			t.Fatal(err)
		}
	} else if err := dc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	return dc
}

func warehouseMessages(t *testing.T, wh *hdfs.FS, category string, hour time.Time) []string {
	t.Helper()
	infos, err := wh.Walk(warehouse.HourDir(category, hour))
	if errors.Is(err, hdfs.ErrNotFound) {
		return nil
	}
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, fi := range infos {
		data, err := wh.ReadFile(fi.Path)
		if err != nil {
			t.Fatal(err)
		}
		if err := recordio.ScanGzipFile(data, func(rec []byte) error {
			msgs = append(msgs, string(rec))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	return msgs
}

func TestMoveHourMergesAllDatacenters(t *testing.T) {
	dc1 := stageHour(t, "dc1", 100, true)
	dc2 := stageHour(t, "dc2", 50, true)
	wh := hdfs.New(0)
	m := New(wh, Source{"dc1", dc1.Staging}, Source{"dc2", dc2.Staging})

	rec, err := m.MoveHour("ce", t0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 150 || rec.FilesIn != 2 {
		t.Fatalf("audit = %+v", rec)
	}
	msgs := warehouseMessages(t, wh, "ce", t0)
	if len(msgs) != 150 {
		t.Fatalf("warehouse has %d messages, want 150", len(msgs))
	}
	seen := map[string]bool{}
	for _, msg := range msgs {
		if seen[msg] {
			t.Fatalf("duplicate %q", msg)
		}
		seen[msg] = true
	}
	// Staging is consumed after the move.
	for _, dc := range []*scribe.Datacenter{dc1, dc2} {
		infos, err := dc.Staging.Walk(warehouse.StagingHourDir("ce", t0))
		if err != nil && !errors.Is(err, hdfs.ErrNotFound) {
			t.Fatal(err)
		}
		if len(infos) != 0 {
			t.Fatalf("staging not consumed: %v", infos)
		}
	}
	if len(m.Audits()) != 1 {
		t.Fatalf("audits = %v", m.Audits())
	}
}

// TestAllDatacenterBarrier: the mover must wait until *every* datacenter
// has sealed the hour (§2).
func TestAllDatacenterBarrier(t *testing.T) {
	dc1 := stageHour(t, "dc1", 10, true)
	dc2 := stageHour(t, "dc2", 10, false) // not sealed
	wh := hdfs.New(0)
	m := New(wh, Source{"dc1", dc1.Staging}, Source{"dc2", dc2.Staging})

	if _, err := m.MoveHour("ce", t0); !errors.Is(err, ErrHourIncomplete) {
		t.Fatalf("err = %v, want ErrHourIncomplete", err)
	}
	if wh.Exists(warehouse.HourDir("ce", t0)) {
		t.Fatal("warehouse touched before barrier")
	}
	// dc2 seals; the move proceeds.
	if err := dc2.SealHour([]string{"ce"}, t0); err != nil {
		t.Fatal(err)
	}
	rec, err := m.MoveHour("ce", t0)
	if err != nil || rec.Records != 20 {
		t.Fatalf("after seal: %+v, %v", rec, err)
	}
}

func TestMoveHourIdempotence(t *testing.T) {
	dc := stageHour(t, "dc1", 5, true)
	wh := hdfs.New(0)
	m := New(wh, Source{"dc1", dc.Staging})
	if _, err := m.MoveHour("ce", t0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.MoveHour("ce", t0); !errors.Is(err, ErrAlreadyMoved) {
		t.Fatalf("second move err = %v", err)
	}
}

func TestSmallFileMerging(t *testing.T) {
	// Many small staging files from several aggregators become few big
	// warehouse files.
	clock := zk.NewManualClock(t0)
	dc, err := scribe.NewDatacenter("dc1", hdfs.New(0), clock, 4, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dc.Daemons {
		for j := 0; j < 200; j++ {
			d.Log("ce", []byte(fmt.Sprintf("host%d-%04d", i, j)))
		}
	}
	if err := dc.SealHour([]string{"ce"}, t0); err != nil {
		t.Fatal(err)
	}
	stagedFiles, err := dc.Staging.Walk(warehouse.StagingHourDir("ce", t0))
	if err != nil {
		t.Fatal(err)
	}

	wh := hdfs.New(0)
	m := New(wh, Source{"dc1", dc.Staging})
	m.TargetFileBytes = 1 << 30 // one big output file
	rec, err := m.MoveHour("ce", t0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.FilesIn < 2 {
		t.Fatalf("expected multiple staging files, got %d (staged %d)", rec.FilesIn, len(stagedFiles))
	}
	if rec.FilesOut != 1 {
		t.Fatalf("FilesOut = %d, want 1 merged file", rec.FilesOut)
	}
	if rec.Records != 1600 {
		t.Fatalf("Records = %d", rec.Records)
	}
}

func TestTargetFileSizeSplitsOutput(t *testing.T) {
	dc := stageHour(t, "dc1", 1000, true)
	wh := hdfs.New(0)
	m := New(wh, Source{"dc1", dc.Staging})
	m.TargetFileBytes = 2048 // force several output files
	rec, err := m.MoveHour("ce", t0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.FilesOut < 3 {
		t.Fatalf("FilesOut = %d, want several", rec.FilesOut)
	}
	if got := warehouseMessages(t, wh, "ce", t0); len(got) != 1000 {
		t.Fatalf("messages = %d", len(got))
	}
}

func TestCorruptStagingFileFailsMove(t *testing.T) {
	dc := stageHour(t, "dc1", 5, true)
	// Plant a corrupt file beside the good ones.
	bad := warehouse.StagingHourDir("ce", t0) + "/dc1-agg99-00000.gz"
	if err := dc.Staging.WriteFile(bad, []byte("this is not gzip")); err != nil {
		t.Fatal(err)
	}
	wh := hdfs.New(0)
	m := New(wh, Source{"dc1", dc.Staging})
	if _, err := m.MoveHour("ce", t0); !errors.Is(err, ErrCorruptFile) {
		t.Fatalf("err = %v, want ErrCorruptFile", err)
	}
	if wh.Exists(warehouse.HourDir("ce", t0)) {
		t.Fatal("warehouse published despite corrupt input")
	}
}

func TestMoveAllSealed(t *testing.T) {
	clock := zk.NewManualClock(t0)
	dc, err := scribe.NewDatacenter("dc1", hdfs.New(0), clock, 1, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Two categories over two hours.
	for h := 0; h < 2; h++ {
		for i := 0; i < 10; i++ {
			dc.Daemons[0].Log("cat_a", []byte(fmt.Sprintf("a-%d-%d", h, i)))
			dc.Daemons[0].Log("cat_b", []byte(fmt.Sprintf("b-%d-%d", h, i)))
		}
		hour := t0.Add(time.Duration(h) * time.Hour)
		if err := dc.SealHour([]string{"cat_a", "cat_b"}, hour); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Hour)
	}
	wh := hdfs.New(0)
	m := New(wh, Source{"dc1", dc.Staging})
	recs, err := m.MoveAllSealed()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("moved %d category-hours, want 4: %+v", len(recs), recs)
	}
	// A second pass finds nothing new.
	recs, err = m.MoveAllSealed()
	if err != nil || len(recs) != 0 {
		t.Fatalf("second pass = %v, %v", recs, err)
	}
}

func TestEmptySealedHour(t *testing.T) {
	clock := zk.NewManualClock(t0)
	dc, err := scribe.NewDatacenter("dc1", hdfs.New(0), clock, 1, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.SealHour([]string{"quiet"}, t0); err != nil {
		t.Fatal(err)
	}
	wh := hdfs.New(0)
	m := New(wh, Source{"dc1", dc.Staging})
	rec, err := m.MoveHour("quiet", t0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 0 || rec.FilesOut != 0 {
		t.Fatalf("rec = %+v", rec)
	}
	if !wh.Exists(warehouse.HourDir("quiet", t0)) {
		t.Fatal("empty hour directory not published")
	}
}

func TestParseStagingPath(t *testing.T) {
	cat, hour, ok := parseStagingPath("/staging/client_events/2012/08/21/14/agg0-00001.gz")
	if !ok || cat != "client_events" || !hour.Equal(t0) {
		t.Fatalf("parse = %q %v %v", cat, hour, ok)
	}
	for _, p := range []string{"/logs/x/2012/08/21/14/f", "/staging/short", "/staging/c/2012/08/f"} {
		if _, _, ok := parseStagingPath(p); ok {
			t.Errorf("parseStagingPath(%q) ok", p)
		}
	}
}

// TestSealColumnarOnMove: with SealColumnar set, a published client-events
// hour immediately gains column chunks, and the columnar scan sees exactly
// the rows the row files hold.
func TestSealColumnarOnMove(t *testing.T) {
	clock := zk.NewManualClock(t0)
	dc, err := scribe.NewDatacenter("dc1", hdfs.New(0), clock, 1, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		e := &events.ClientEvent{
			Initiator: events.InitiatorClientUser,
			Name:      events.MustParseName("web:home:timeline:stream:tweet:impression"),
			UserID:    int64(100 + i),
			SessionID: fmt.Sprintf("s%02d", i%5),
			IP:        "10.0.0.1",
			Timestamp: t0.UnixMilli() + int64(i),
		}
		dc.Daemons[0].Log(events.Category, e.Marshal())
	}
	if err := dc.SealHour([]string{events.Category}, t0); err != nil {
		t.Fatal(err)
	}
	wh := hdfs.New(0)
	m := New(wh, Source{"dc1", dc.Staging})
	m.SealColumnar = true
	if _, err := m.MoveHour(events.Category, t0); err != nil {
		t.Fatal(err)
	}
	hourDir := warehouse.HourDir(events.Category, t0)
	if !columnar.HasColumnar(wh, hourDir) {
		t.Fatal("published hour has no column chunks")
	}
	j := dataflow.NewJob("verify", wh)
	d, err := j.LoadDirsSelective([]string{hourDir}, columnar.EventsFormat{}, dataflow.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Count()
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("columnar scan saw %d events, want %d", got, n)
	}
}

package logmover

import (
	"errors"
	"testing"
	"time"

	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/scribe"
	"unilog/internal/session"
	"unilog/internal/warehouse"
	"unilog/internal/workload"
	"unilog/internal/zk"
)

// stageEvents delivers generated client events into a staging cluster and
// seals the hours they fall into.
func stageEvents(t *testing.T, evs []events.ClientEvent) *scribe.Datacenter {
	t.Helper()
	day := time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)
	clock := zk.NewManualClock(day)
	dc, err := scribe.NewDatacenter("dc1", hdfs.New(0), clock, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for hr := 0; hr < 24; hr++ {
		hour := day.Add(time.Duration(hr) * time.Hour)
		for ; i < len(evs) && evs[i].Timestamp < hour.Add(time.Hour).UnixMilli(); i++ {
			dc.Daemons[0].Log(events.Category, evs[i].Marshal())
		}
		clock.Advance(time.Hour)
		if err := dc.SealHour([]string{events.Category}, hour); err != nil {
			t.Fatal(err)
		}
	}
	return dc
}

// TestAnonymizingTransform wires the §3.2 anonymization policy into the
// mover's transformation hook: warehouse logs carry pseudonyms, and the
// downstream session build still produces the same session structure.
func TestAnonymizingTransform(t *testing.T) {
	day := time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)
	cfg := workload.DefaultConfig(day)
	cfg.Users = 60
	evs, truth := workload.New(cfg).Generate()
	dc := stageEvents(t, evs)

	anon := events.NewAnonymizer([]byte("mover-policy"))
	wh := hdfs.New(0)
	m := New(wh, Source{Datacenter: "dc1", FS: dc.Staging})
	m.Transform = func(category string, rec []byte) ([]byte, error) {
		var e events.ClientEvent
		if err := e.Unmarshal(rec); err != nil {
			return nil, err
		}
		anon.Apply(&e)
		return e.Marshal(), nil
	}
	if _, err := m.MoveAllSealed(); err != nil {
		t.Fatal(err)
	}

	// Warehouse events are pseudonymized.
	realIDs := make(map[int64]bool)
	for uid := range truth.UserCountry {
		realIDs[uid] = true
	}
	var n int64
	err := warehouse.ScanDay(wh, events.Category, day, func(e *events.ClientEvent) error {
		n++
		if e.UserID != 0 && realIDs[e.UserID] {
			t.Fatalf("raw user id %d survived anonymization", e.UserID)
		}
		if _, ok := e.Details["request_id"]; ok {
			t.Fatal("request_id survived anonymization")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != truth.Events {
		t.Fatalf("warehouse has %d events, want %d", n, truth.Events)
	}
	// Sessionization is unaffected: pseudonyms preserve joinability.
	_, _, stats, err := session.BuildDay(wh, day, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sessions != truth.Sessions {
		t.Fatalf("sessions = %d, truth %d", stats.Sessions, truth.Sessions)
	}
}

// TestDroppingTransform: returning nil drops records and audits the count.
func TestDroppingTransform(t *testing.T) {
	day := time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)
	cfg := workload.DefaultConfig(day)
	cfg.Users = 20
	cfg.LoggedOutSessions = 0
	evs, truth := workload.New(cfg).Generate()
	dc := stageEvents(t, evs)

	wh := hdfs.New(0)
	m := New(wh, Source{Datacenter: "dc1", FS: dc.Staging})
	// Policy: drop all logged-out events.
	m.Transform = func(category string, rec []byte) ([]byte, error) {
		var e events.ClientEvent
		if err := e.Unmarshal(rec); err != nil {
			return nil, err
		}
		if e.UserID == 0 {
			return nil, nil
		}
		return rec, nil
	}
	recs, err := m.MoveAllSealed()
	if err != nil {
		t.Fatal(err)
	}
	var moved, dropped int64
	for _, r := range recs {
		moved += r.Records
		dropped += r.Dropped
	}
	if moved+dropped != truth.Events {
		t.Fatalf("moved %d + dropped %d != %d", moved, dropped, truth.Events)
	}
	var inWarehouse int64
	if err := warehouse.ScanDay(wh, events.Category, day, func(e *events.ClientEvent) error {
		if e.UserID == 0 {
			t.Fatal("dropped record reached warehouse")
		}
		inWarehouse++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if inWarehouse != moved {
		t.Fatalf("warehouse %d != moved %d", inWarehouse, moved)
	}
}

// TestFailingTransformAbortsMove: a transform error keeps the warehouse
// untouched.
func TestFailingTransformAbortsMove(t *testing.T) {
	day := time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)
	cfg := workload.DefaultConfig(day)
	cfg.Users = 5
	evs, _ := workload.New(cfg).Generate()
	dc := stageEvents(t, evs)

	wh := hdfs.New(0)
	m := New(wh, Source{Datacenter: "dc1", FS: dc.Staging})
	boom := errors.New("policy violation")
	m.Transform = func(string, []byte) ([]byte, error) { return nil, boom }
	if _, err := m.MoveAllSealed(); !errors.Is(err, ErrCorruptFile) {
		t.Fatalf("err = %v", err)
	}
	// Hours with data never published; only empty sealed hours may have
	// created their (empty) directories.
	var n int64
	if err := warehouse.ScanDay(wh, events.Category, day, func(*events.ClientEvent) error {
		n++
		return nil
	}); err != nil && !errors.Is(err, hdfs.ErrNotFound) {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("%d records reached the warehouse despite failing transform", n)
	}
}

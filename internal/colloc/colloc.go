// Package colloc extracts "activity collocates" (§5.4): pairs of adjacent
// events that co-occur far more often than independence predicts, the
// analogue of NLP collocations like "hot dog".
//
// Two standard association measures are implemented over adjacent symbol
// bigrams: pointwise mutual information (Church & Hanks) and Dunning's
// log-likelihood ratio G², the two techniques the paper names.
package colloc

import (
	"math"
	"sort"
)

// Stats holds unigram and adjacent-bigram counts over session sequences.
type Stats struct {
	unigrams map[rune]int64
	bigrams  map[[2]rune]int64
	// tokens is the total unigram count; pairs the total bigram count.
	tokens int64
	pairs  int64
}

// Collect tallies the sequences.
func Collect(seqs []string) *Stats {
	s := &Stats{
		unigrams: make(map[rune]int64),
		bigrams:  make(map[[2]rune]int64),
	}
	for _, seq := range seqs {
		var prev rune
		first := true
		for _, r := range seq {
			s.unigrams[r]++
			s.tokens++
			if !first {
				s.bigrams[[2]rune{prev, r}]++
				s.pairs++
			}
			prev = r
			first = false
		}
	}
	return s
}

// Count returns the adjacent-bigram count of (a, b).
func (s *Stats) Count(a, b rune) int64 { return s.bigrams[[2]rune{a, b}] }

// PMI returns the pointwise mutual information of the adjacent pair (a, b)
// in bits: log2( P(a,b) / (P(a)·P(b)) ).
func (s *Stats) PMI(a, b rune) float64 {
	cab := s.bigrams[[2]rune{a, b}]
	ca, cb := s.unigrams[a], s.unigrams[b]
	if cab == 0 || ca == 0 || cb == 0 || s.pairs == 0 || s.tokens == 0 {
		return math.Inf(-1)
	}
	pab := float64(cab) / float64(s.pairs)
	pa := float64(ca) / float64(s.tokens)
	pb := float64(cb) / float64(s.tokens)
	return math.Log2(pab / (pa * pb))
}

// llrTerm is k·ln(k/e) with the convention 0·ln(0) = 0.
func llrTerm(k, e float64) float64 {
	if k == 0 || e == 0 {
		return 0
	}
	return k * math.Log(k/e)
}

// LLR returns Dunning's log-likelihood ratio G² for the adjacent pair
// (a, b), computed over the 2x2 contingency table of "first symbol is a" x
// "second symbol is b". Unlike PMI it is robust for rare events — Dunning's
// "statistics of surprise and coincidence" cited in §5.4.
func (s *Stats) LLR(a, b rune) float64 {
	n := float64(s.pairs)
	if n == 0 {
		return 0
	}
	k11 := float64(s.bigrams[[2]rune{a, b}])
	// Row total: bigrams starting with a; column total: ending with b.
	var rowA, colB float64
	for pair, c := range s.bigrams {
		if pair[0] == a {
			rowA += float64(c)
		}
		if pair[1] == b {
			colB += float64(c)
		}
	}
	k12 := rowA - k11
	k21 := colB - k11
	k22 := n - rowA - colB + k11
	e11 := rowA * colB / n
	e12 := rowA * (n - colB) / n
	e21 := (n - rowA) * colB / n
	e22 := (n - rowA) * (n - colB) / n
	return 2 * (llrTerm(k11, e11) + llrTerm(k12, e12) + llrTerm(k21, e21) + llrTerm(k22, e22))
}

// Pair is one scored collocation candidate.
type Pair struct {
	A, B  rune
	Count int64
	Score float64
}

// top returns the k highest-scoring pairs with at least minCount
// occurrences, under the given scorer.
func (s *Stats) top(k int, minCount int64, score func(a, b rune) float64) []Pair {
	out := make([]Pair, 0, len(s.bigrams))
	for pair, c := range s.bigrams {
		if c < minCount {
			continue
		}
		out = append(out, Pair{A: pair[0], B: pair[1], Count: c, Score: score(pair[0], pair[1])})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// TopPMI returns the k highest-PMI pairs with at least minCount
// occurrences (a frequency floor is standard practice: PMI overweights
// hapax pairs).
func (s *Stats) TopPMI(k int, minCount int64) []Pair {
	return s.top(k, minCount, s.PMI)
}

// TopLLR returns the k highest-G² pairs with at least minCount occurrences.
func (s *Stats) TopLLR(k int, minCount int64) []Pair {
	return s.top(k, minCount, s.LLR)
}

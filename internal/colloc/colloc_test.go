package colloc

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"unilog/internal/hdfs"
	"unilog/internal/session"
	"unilog/internal/workload"
)

func TestCountsAndPMI(t *testing.T) {
	// "ab" appears always together; "cd" independently.
	s := Collect([]string{"abab", "abab", "cdcc", "dcdd"})
	if s.Count('a', 'b') != 4 {
		t.Fatalf("count(ab) = %d", s.Count('a', 'b'))
	}
	if got := s.PMI('a', 'b'); got <= 0 {
		t.Fatalf("PMI(ab) = %f, want positive", got)
	}
	if got := s.PMI('a', 'c'); !math.IsInf(got, -1) {
		t.Fatalf("PMI(ac) = %f, want -Inf (never adjacent)", got)
	}
}

func TestLLRHigherForDependentPair(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var seqs []string
	for i := 0; i < 300; i++ {
		var buf []rune
		for j := 0; j < 30; j++ {
			r := rune('a' + rng.Intn(6))
			buf = append(buf, r)
			// Plant: 'a' is followed by 'b' 80% of the time.
			if r == 'a' && rng.Float64() < 0.8 {
				buf = append(buf, 'b')
			}
		}
		seqs = append(seqs, string(buf))
	}
	s := Collect(seqs)
	planted := s.LLR('a', 'b')
	indep := s.LLR('c', 'd')
	if planted <= indep {
		t.Fatalf("LLR planted %.1f <= independent %.1f", planted, indep)
	}
	if planted < 100 {
		t.Fatalf("LLR planted = %.1f, too weak", planted)
	}
}

func TestTopRanking(t *testing.T) {
	s := Collect([]string{"abababab", "xyxyxyxy", "pq"})
	top := s.TopLLR(2, 2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	for _, p := range top {
		pair := string([]rune{p.A, p.B})
		if pair != "ab" && pair != "ba" && pair != "xy" && pair != "yx" {
			t.Fatalf("unexpected top pair %q", pair)
		}
	}
	// minCount filters the rare pq pair.
	for _, p := range s.TopPMI(10, 2) {
		if p.A == 'p' {
			t.Fatal("rare pair survived minCount")
		}
	}
}

func TestEmptyStats(t *testing.T) {
	s := Collect(nil)
	if got := s.LLR('a', 'b'); got != 0 {
		t.Fatalf("LLR on empty = %f", got)
	}
	if got := s.PMI('a', 'b'); !math.IsInf(got, -1) {
		t.Fatalf("PMI on empty = %f", got)
	}
	if top := s.TopLLR(5, 1); len(top) != 0 {
		t.Fatalf("top on empty = %v", top)
	}
}

// TestCollocationRecovery is experiment E9: the planted expand→profile_click
// pair surfaces at the top of both rankings over real session sequences.
func TestCollocationRecovery(t *testing.T) {
	day := time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)
	cfg := workload.DefaultConfig(day)
	cfg.Users = 300
	evs, _ := workload.New(cfg).Generate()
	fs := hdfs.New(0)
	if err := workload.WriteWarehouse(fs, evs); err != nil {
		t.Fatal(err)
	}
	dict, _, _, err := session.BuildDay(fs, day, 0)
	if err != nil {
		t.Fatal(err)
	}
	var seqs []string
	if err := session.ScanDay(fs, day, func(r *session.Record) error {
		seqs = append(seqs, r.Sequence)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s := Collect(seqs)

	// The planted pair on the web client.
	expand, ok1 := dict.Symbol("web:home:timeline:stream:tweet:expand")
	click, ok2 := dict.Symbol("web:home:timeline:stream:avatar:profile_click")
	if !ok1 || !ok2 {
		t.Fatal("planted events missing from dictionary")
	}
	found := false
	for _, p := range s.TopLLR(20, 5) {
		if p.A == expand && p.B == click {
			found = true
			break
		}
	}
	if !found {
		top := s.TopLLR(20, 5)
		names := make([]string, 0, len(top))
		for _, p := range top {
			a, _ := dict.Name(p.A)
			b, _ := dict.Name(p.B)
			names = append(names, a+" -> "+b)
		}
		t.Fatalf("planted collocation not in top-20 LLR: %v", names)
	}
	if s.PMI(expand, click) <= 0 {
		t.Fatalf("PMI of planted pair = %f", s.PMI(expand, click))
	}
}

package twin

import (
	"strings"
	"testing"
	"time"

	"unilog/internal/dataflow"
	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/warehouse"
	"unilog/internal/workload"
)

var day = time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)

// populate writes a day of traffic with small part files so pruning has
// files to skip.
func populate(t *testing.T) (*hdfs.FS, *workload.Truth) {
	t.Helper()
	cfg := workload.DefaultConfig(day)
	cfg.Users = 120
	evs, truth := workload.New(cfg).Generate()
	fs := hdfs.New(0)
	w := warehouse.NewWriter(fs, events.Category)
	w.RollRecords = 500 // many small files
	for i := range evs {
		if err := w.Append(&evs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return fs, truth
}

func TestIndexBuildAndLoad(t *testing.T) {
	fs, _ := populate(t)
	n, err := IndexDay(fs, events.Category, day)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no indexes built")
	}
	// Indexes are idempotent: a second pass builds nothing.
	n2, err := IndexDay(fs, events.Category, day)
	if err != nil || n2 != 0 {
		t.Fatalf("reindex built %d, %v", n2, err)
	}
	// Every data file has a sibling index whose counts sum to its records.
	infos, err := fs.Walk(warehouse.CategoryDir(events.Category))
	if err != nil {
		t.Fatal(err)
	}
	dataFiles := 0
	for _, fi := range infos {
		if IsIndexPath(fi.Path) || warehouse.IsAuxiliary(fi.Path) {
			continue
		}
		dataFiles++
		ix, err := LoadIndex(fs, fi.Path)
		if err != nil || ix == nil {
			t.Fatalf("LoadIndex(%s) = %v, %v", fi.Path, ix, err)
		}
		if len(ix.Counts) == 0 {
			t.Fatalf("empty index for %s", fi.Path)
		}
	}
	if dataFiles != n {
		t.Fatalf("indexed %d, data files %d", n, dataFiles)
	}
}

// TestSelectivePruning is the Elephant Twin win (§6): a highly-selective
// query reads only the files that contain matches.
func TestSelectivePruning(t *testing.T) {
	fs, truth := populate(t)
	if _, err := IndexDay(fs, events.Category, day); err != nil {
		t.Fatal(err)
	}
	// The signup-complete event is rare: only funnel survivors emit it.
	match := func(name string) bool { return strings.HasSuffix(name, ":signup:flow:step:complete:view") }

	idx := &IndexedFormat{Match: match}
	idxJob := dataflow.NewJob("indexed", fs)
	d, err := idxJob.LoadDirs(dataflow.HourDirs(fs, events.Category, day), idx)
	if err != nil {
		t.Fatal(err)
	}
	want := truth.FunnelStage[len(truth.FunnelStage)-1]
	if got, err := d.Count(); err != nil || got != want {
		t.Fatalf("indexed load found %d events, %v, truth %d", got, err, want)
	}
	if idx.SkippedFiles() == 0 {
		t.Fatal("no files pruned for a highly-selective query")
	}

	// Full scan answers identically but reads more.
	fullJob := dataflow.NewJob("full", fs)
	full, err := fullJob.LoadClientEventsDay(day)
	if err != nil {
		t.Fatal(err)
	}
	nameIdx := full.Schema().MustIndex("name")
	n, err := full.Filter(func(tp dataflow.Tuple) bool { return match(tp[nameIdx].(string)) }).Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("full scan found %d", n)
	}
	is, fsStats := idxJob.Stats(), fullJob.Stats()
	if is.BytesRead >= fsStats.BytesRead || is.MapTasks >= fsStats.MapTasks {
		t.Fatalf("indexed not cheaper: indexed %+v full %+v", is, fsStats)
	}
}

func TestMissingIndexFallsBackToScan(t *testing.T) {
	fs, _ := populate(t)
	// No indexes built at all: the format must still answer correctly.
	match := func(name string) bool { return strings.HasSuffix(name, ":page:open") }
	idx := &IndexedFormat{Match: match}
	j := dataflow.NewJob("noidx", fs)
	d, err := j.LoadDirs(dataflow.HourDirs(fs, events.Category, day), idx)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := d.Count(); err != nil || n == 0 {
		t.Fatalf("no events found without indexes: %v", err)
	}
	if idx.SkippedFiles() != 0 {
		t.Fatal("files skipped without indexes")
	}
}

// TestDropAndRebuild reproduces the §6 reindexing story.
func TestDropAndRebuild(t *testing.T) {
	fs, _ := populate(t)
	built, err := IndexDay(fs, events.Category, day)
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := DropIndexes(fs, warehouse.CategoryDir(events.Category))
	if err != nil {
		t.Fatal(err)
	}
	if dropped != built {
		t.Fatalf("dropped %d, built %d", dropped, built)
	}
	rebuilt, err := IndexDay(fs, events.Category, day)
	if err != nil || rebuilt != built {
		t.Fatalf("rebuilt %d, %v", rebuilt, err)
	}
}

// TestIndexedRawScansAgree: with indexes present, raw scans that ignore
// them (ScanDay, session builds) still see exactly the data files.
func TestIndexesInvisibleToRawScans(t *testing.T) {
	fs, truth := populate(t)
	if _, err := IndexDay(fs, events.Category, day); err != nil {
		t.Fatal(err)
	}
	var n int64
	if err := warehouse.ScanDay(fs, events.Category, day, func(e *events.ClientEvent) error {
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != truth.Events {
		t.Fatalf("scan saw %d events, truth %d", n, truth.Events)
	}
}

func TestIndexFileErrors(t *testing.T) {
	fs := hdfs.New(0)
	if err := IndexFile(fs, "/missing.gz"); err == nil {
		t.Fatal("indexing a missing file succeeded")
	}
	if err := fs.WriteFile("/bad.gz", []byte("not gzip")); err != nil {
		t.Fatal(err)
	}
	if err := IndexFile(fs, "/bad.gz"); err == nil {
		t.Fatal("indexing a corrupt file succeeded")
	}
}

package twin

import (
	"sort"
	"strings"

	"unilog/internal/hdfs"
	"unilog/internal/recordio"
	"unilog/internal/thrift"
)

// This file implements Elephant Twin's other flagship application (§6):
// "we perform full-text indexing of all tweets for our internal tools; as
// our text processing libraries improve (e.g., better tokenization), we
// drop all indexes and rebuild from scratch; in fact, this has already
// happened several times during the past year."
//
// A TextIndex is an inverted index from token to the files (and record
// ordinals) containing it, stored alongside the data like the event-name
// indexes, so dropping and rebuilding with a new tokenizer is routine.

// Tokenizer splits text into index terms. Improved tokenizers are exactly
// why the paper rebuilds indexes from scratch.
type Tokenizer func(text string) []string

// SimpleTokenizer lowercases and splits on non-alphanumeric runes — the
// "v1" text processing library.
func SimpleTokenizer(text string) []string {
	return splitTokens(text, false)
}

// HashtagAwareTokenizer additionally keeps #hashtags and @mentions intact —
// the "improved" library that motivates a rebuild.
func HashtagAwareTokenizer(text string) []string {
	return splitTokens(text, true)
}

func splitTokens(text string, keepSigils bool) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	for _, r := range text {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9':
			cur.WriteRune(r)
		case keepSigils && (r == '#' || r == '@') && cur.Len() == 0:
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return out
}

// Posting locates one occurrence list: a file and the record ordinals
// within it.
type Posting struct {
	Path     string
	Ordinals []int64
}

// TextIndexSuffix names full-text index files beside their data.
const TextIndexSuffix = ".tidx"

// BuildTextIndex indexes every record of every data file under dir,
// extracting text with extract (returning "" skips a record) and
// tokenizing with tok. It returns the number of files indexed.
func BuildTextIndex(fs *hdfs.FS, dir string, extract func(rec []byte) string, tok Tokenizer) (int, error) {
	infos, err := fs.Walk(dir)
	if err != nil {
		return 0, err
	}
	files := 0
	for _, fi := range infos {
		if IsIndexPath(fi.Path) || strings.HasSuffix(fi.Path, TextIndexSuffix) || strings.Contains(fi.Path, "/_") {
			continue
		}
		data, err := fs.ReadFile(fi.Path)
		if err != nil {
			return files, err
		}
		terms := make(map[string][]int64)
		var ord int64
		err = recordio.ScanGzipFile(data, func(rec []byte) error {
			text := extract(rec)
			if text != "" {
				seen := map[string]bool{}
				for _, term := range tok(text) {
					if !seen[term] {
						seen[term] = true
						terms[term] = append(terms[term], ord)
					}
				}
			}
			ord++
			return nil
		})
		if err != nil {
			return files, err
		}
		out, err := marshalTextIndex(terms)
		if err != nil {
			return files, err
		}
		idxPath := fi.Path + TextIndexSuffix
		if fs.Exists(idxPath) {
			if err := fs.Delete(idxPath, false); err != nil {
				return files, err
			}
		}
		if err := fs.WriteFile(idxPath, out); err != nil {
			return files, err
		}
		files++
	}
	return files, nil
}

func marshalTextIndex(terms map[string][]int64) ([]byte, error) {
	keys := make([]string, 0, len(terms))
	for t := range terms {
		keys = append(keys, t)
	}
	sort.Strings(keys)
	buf := &memBuf{}
	w := recordio.NewGzipWriter(buf)
	enc := thrift.NewCompactEncoder()
	for _, term := range keys {
		enc.Reset()
		enc.WriteStructBegin()
		enc.WriteFieldBegin(thrift.STRING, 1)
		enc.WriteString(term)
		enc.WriteFieldBegin(thrift.LIST, 2)
		ords := terms[term]
		enc.WriteListBegin(thrift.I64, len(ords))
		for _, o := range ords {
			enc.WriteI64(o)
		}
		enc.WriteFieldStop()
		enc.WriteStructEnd()
		if err := w.Append(enc.Bytes()); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.data, nil
}

// QueryText returns the postings of a term under dir, consulting only the
// index files.
func QueryText(fs *hdfs.FS, dir, term string) ([]Posting, error) {
	infos, err := fs.Walk(dir)
	if err != nil {
		return nil, err
	}
	term = strings.ToLower(term)
	var out []Posting
	for _, fi := range infos {
		if !strings.HasSuffix(fi.Path, TextIndexSuffix) {
			continue
		}
		data, err := fs.ReadFile(fi.Path)
		if err != nil {
			return nil, err
		}
		var ords []int64
		err = recordio.ScanGzipFile(data, func(rec []byte) error {
			dec := thrift.NewCompactDecoder(rec)
			var t string
			var list []int64
			if err := dec.ReadStructBegin(); err != nil {
				return err
			}
			for {
				ft, id, err := dec.ReadFieldBegin()
				if err != nil {
					return err
				}
				if ft == thrift.STOP {
					break
				}
				switch id {
				case 1:
					t, err = dec.ReadString()
				case 2:
					var n int
					if _, n, err = dec.ReadListBegin(); err == nil {
						list = make([]int64, 0, n)
						for i := 0; i < n; i++ {
							v, verr := dec.ReadI64()
							if verr != nil {
								return verr
							}
							list = append(list, v)
						}
					}
				default:
					err = dec.Skip(ft)
				}
				if err != nil {
					return err
				}
			}
			if t == term {
				ords = list
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if len(ords) > 0 {
			out = append(out, Posting{Path: strings.TrimSuffix(fi.Path, TextIndexSuffix), Ordinals: ords})
		}
	}
	return out, nil
}

// DropTextIndexes deletes every full-text index under dir — step one of
// the paper's "drop all indexes and rebuild from scratch".
func DropTextIndexes(fs *hdfs.FS, dir string) (int, error) {
	infos, err := fs.Walk(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, fi := range infos {
		if !strings.HasSuffix(fi.Path, TextIndexSuffix) {
			continue
		}
		if err := fs.Delete(fi.Path, false); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

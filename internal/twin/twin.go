// Package twin reimplements Elephant Twin, the paper's §6 "generic indexing
// infrastructure for handling highly-selective queries".
//
// The defining design choices, all preserved here:
//
//   - indexes integrate "at the level of InputFormats", so anything built on
//     the dataflow engine benefits transparently (IndexedFormat satisfies
//     dataflow.InputFormat);
//   - indexes "reside alongside the data" — each warehouse part file gets a
//     sibling .idx file — rather than being embedded in the storage layout
//     like Trojan layouts, so dropping and rebuilding all indexes is cheap
//     ("we drop all indexes and rebuild from scratch; in fact, this has
//     already happened several times during the past year");
//   - a missing index never affects correctness: unindexed files are simply
//     scanned.
//
// The index itself maps each event name to its occurrence count within the
// file; a query's Splits phase prunes every file whose index proves it has
// no matches, which is where the selective-query win comes from.
package twin

import (
	"strings"
	"sync/atomic"
	"time"

	"unilog/internal/dataflow"
	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/recordio"
	"unilog/internal/thrift"
	"unilog/internal/warehouse"
)

// IndexSuffix is appended to a data file's path to name its index.
const IndexSuffix = ".idx"

// IsIndexPath reports whether the path names an index file.
func IsIndexPath(p string) bool { return strings.HasSuffix(p, IndexSuffix) }

// FileIndex maps event names to their occurrence counts in one data file.
type FileIndex struct {
	Counts map[string]int64
}

// marshal serializes the index as a gzipped record stream.
func (ix *FileIndex) marshal() ([]byte, error) {
	buf := &memBuf{}
	w := recordio.NewGzipWriter(buf)
	enc := thrift.NewCompactEncoder()
	for name, n := range ix.Counts {
		enc.Reset()
		enc.WriteStructBegin()
		enc.WriteFieldBegin(thrift.STRING, 1)
		enc.WriteString(name)
		enc.WriteFieldBegin(thrift.I64, 2)
		enc.WriteI64(n)
		enc.WriteFieldStop()
		enc.WriteStructEnd()
		if err := w.Append(enc.Bytes()); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.data, nil
}

func unmarshalIndex(data []byte) (*FileIndex, error) {
	ix := &FileIndex{Counts: make(map[string]int64)}
	err := recordio.ScanGzipFile(data, func(rec []byte) error {
		dec := thrift.NewCompactDecoder(rec)
		var name string
		var n int64
		if err := dec.ReadStructBegin(); err != nil {
			return err
		}
		for {
			ft, id, err := dec.ReadFieldBegin()
			if err != nil {
				return err
			}
			if ft == thrift.STOP {
				break
			}
			switch id {
			case 1:
				name, err = dec.ReadString()
			case 2:
				n, err = dec.ReadI64()
			default:
				err = dec.Skip(ft)
			}
			if err != nil {
				return err
			}
		}
		ix.Counts[name] = n
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ix, nil
}

// IndexFile builds and writes the index of one client-event data file.
func IndexFile(fs *hdfs.FS, path string) error {
	data, err := fs.ReadFile(path)
	if err != nil {
		return err
	}
	ix := &FileIndex{Counts: make(map[string]int64)}
	err = recordio.ScanGzipFile(data, func(rec []byte) error {
		var e events.ClientEvent
		if err := e.Unmarshal(rec); err != nil {
			return err
		}
		ix.Counts[e.Name.String()]++
		return nil
	})
	if err != nil {
		return err
	}
	out, err := ix.marshal()
	if err != nil {
		return err
	}
	idxPath := path + IndexSuffix
	if fs.Exists(idxPath) {
		if err := fs.Delete(idxPath, false); err != nil {
			return err
		}
	}
	return fs.WriteFile(idxPath, out)
}

// IndexDir indexes every unindexed data file under dir, returning how many
// indexes were built.
func IndexDir(fs *hdfs.FS, dir string) (int, error) {
	infos, err := fs.Walk(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, fi := range infos {
		if IsIndexPath(fi.Path) {
			continue
		}
		if fs.Exists(fi.Path + IndexSuffix) {
			continue
		}
		if err := IndexFile(fs, fi.Path); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// IndexDay indexes all 24 hour-partitions of a category-day.
func IndexDay(fs *hdfs.FS, category string, day time.Time) (int, error) {
	total := 0
	day = day.UTC().Truncate(24 * time.Hour)
	for h := 0; h < 24; h++ {
		dir := warehouse.HourDir(category, day.Add(time.Duration(h)*time.Hour))
		if !fs.Exists(dir) {
			continue
		}
		n, err := IndexDir(fs, dir)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// DropIndexes deletes every index under dir — the paper's reindexing story:
// indexes live beside the data, so dropping and rebuilding is routine.
func DropIndexes(fs *hdfs.FS, dir string) (int, error) {
	infos, err := fs.Walk(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, fi := range infos {
		if !IsIndexPath(fi.Path) {
			continue
		}
		if err := fs.Delete(fi.Path, false); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// LoadIndex reads the index of a data file, or nil if none exists.
func LoadIndex(fs *hdfs.FS, dataPath string) (*FileIndex, error) {
	idxPath := dataPath + IndexSuffix
	if !fs.Exists(idxPath) {
		return nil, nil
	}
	data, err := fs.ReadFile(idxPath)
	if err != nil {
		return nil, err
	}
	return unmarshalIndex(data)
}

// IndexedFormat is a dataflow input format for client events with
// predicate push-down: files whose index proves zero matches are pruned at
// split-enumeration time, and surviving splits filter records as they
// decode. In Pig terms, "we can easily support push-down of select
// operations".
type IndexedFormat struct {
	// Match selects event names; only matching events are emitted.
	Match func(name string) bool

	skippedFiles atomic.Int64
	prunedBytes  atomic.Int64
}

var _ dataflow.InputFormat = (*IndexedFormat)(nil)

// Schema implements dataflow.InputFormat.
func (f *IndexedFormat) Schema() dataflow.Schema { return dataflow.ClientEventSchema }

// SkippedFiles reports how many input files the index pruned.
func (f *IndexedFormat) SkippedFiles() int64 { return f.skippedFiles.Load() }

// PrunedBytes reports how many data bytes pruning avoided reading.
func (f *IndexedFormat) PrunedBytes() int64 { return f.prunedBytes.Load() }

// Splits implements dataflow.InputFormat, consulting per-file indexes.
func (f *IndexedFormat) Splits(fs *hdfs.FS, dir string) ([]dataflow.Split, error) {
	infos, err := fs.Walk(dir)
	if err != nil {
		return nil, err
	}
	var out []dataflow.Split
	for _, fi := range infos {
		if IsIndexPath(fi.Path) {
			continue
		}
		ix, err := LoadIndex(fs, fi.Path)
		if err != nil {
			return nil, err
		}
		if ix != nil && f.Match != nil {
			hit := false
			for name := range ix.Counts {
				if f.Match(name) {
					hit = true
					break
				}
			}
			if !hit {
				f.skippedFiles.Add(1)
				f.prunedBytes.Add(fi.Size)
				continue
			}
		}
		out = append(out, dataflow.Split{Path: fi.Path, Size: fi.Size})
	}
	return out, nil
}

// ReadSplit implements dataflow.InputFormat with record-level filtering.
func (f *IndexedFormat) ReadSplit(fs *hdfs.FS, s dataflow.Split, emit func(dataflow.Tuple) error) error {
	base := dataflow.ClientEventFormat{}
	return base.ReadSplit(fs, s, func(t dataflow.Tuple) error {
		if f.Match != nil && !f.Match(t[1].(string)) {
			return nil
		}
		return emit(t)
	})
}

type memBuf struct{ data []byte }

func (m *memBuf) Write(p []byte) (int, error) {
	m.data = append(m.data, p...)
	return len(p), nil
}

package twin

import (
	"fmt"
	"testing"

	"unilog/internal/hdfs"
	"unilog/internal/recordio"
	"unilog/internal/warehouse"
)

// writeTweets stores a small corpus of "tweets" as a gzipped record file
// per shard.
func writeTweets(t *testing.T, fs *hdfs.FS, shards [][]string) {
	t.Helper()
	for si, tweets := range shards {
		buf := &memBuf{}
		w := recordio.NewGzipWriter(buf)
		for _, tw := range tweets {
			if err := w.Append([]byte(tw)); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile(fmt.Sprintf("/tweets/part-%05d.gz", si), buf.data); err != nil {
			t.Fatal(err)
		}
	}
}

func rawText(rec []byte) string { return string(rec) }

func TestTokenizers(t *testing.T) {
	text := "Just setting up my #twttr @jack 2006"
	simple := SimpleTokenizer(text)
	want := []string{"just", "setting", "up", "my", "twttr", "jack", "2006"}
	if fmt.Sprint(simple) != fmt.Sprint(want) {
		t.Fatalf("simple = %v", simple)
	}
	aware := HashtagAwareTokenizer(text)
	found := map[string]bool{}
	for _, tok := range aware {
		found[tok] = true
	}
	if !found["#twttr"] || !found["@jack"] {
		t.Fatalf("aware = %v", aware)
	}
}

func TestTextIndexQuery(t *testing.T) {
	fs := hdfs.New(0)
	writeTweets(t, fs, [][]string{
		{"the quick brown fox", "hello world"},
		{"world peace now", "nothing here"},
		{"quick quick quick"},
	})
	n, err := BuildTextIndex(fs, "/tweets", rawText, SimpleTokenizer)
	if err != nil || n != 3 {
		t.Fatalf("indexed %d files, %v", n, err)
	}
	posts, err := QueryText(fs, "/tweets", "world")
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 2 {
		t.Fatalf("postings = %+v", posts)
	}
	// Ordinals identify the exact records.
	for _, p := range posts {
		switch p.Path {
		case "/tweets/part-00000.gz":
			if len(p.Ordinals) != 1 || p.Ordinals[0] != 1 {
				t.Fatalf("ordinals = %v", p.Ordinals)
			}
		case "/tweets/part-00001.gz":
			if len(p.Ordinals) != 1 || p.Ordinals[0] != 0 {
				t.Fatalf("ordinals = %v", p.Ordinals)
			}
		default:
			t.Fatalf("unexpected posting file %s", p.Path)
		}
	}
	// Case-insensitive lookup; absent terms return nothing.
	if posts, _ := QueryText(fs, "/tweets", "QUICK"); len(posts) != 2 {
		t.Fatalf("QUICK postings = %v", posts)
	}
	if posts, _ := QueryText(fs, "/tweets", "absent"); len(posts) != 0 {
		t.Fatalf("absent = %v", posts)
	}
	// Repeated terms within a record index once.
	posts, _ = QueryText(fs, "/tweets", "quick")
	for _, p := range posts {
		if p.Path == "/tweets/part-00002.gz" && len(p.Ordinals) != 1 {
			t.Fatalf("dedup failed: %v", p.Ordinals)
		}
	}
}

// TestDropAndRebuildWithBetterTokenizer is the §6 story verbatim: the text
// libraries improve, so all indexes are dropped and rebuilt from scratch.
func TestDropAndRebuildWithBetterTokenizer(t *testing.T) {
	fs := hdfs.New(0)
	writeTweets(t, fs, [][]string{{"shipping the #newui today", "no tags here"}})
	if _, err := BuildTextIndex(fs, "/tweets", rawText, SimpleTokenizer); err != nil {
		t.Fatal(err)
	}
	// v1 tokenizer split the hashtag; searching "#newui" finds nothing.
	if posts, _ := QueryText(fs, "/tweets", "#newui"); len(posts) != 0 {
		t.Fatalf("v1 found %v", posts)
	}
	dropped, err := DropTextIndexes(fs, "/tweets")
	if err != nil || dropped != 1 {
		t.Fatalf("dropped %d, %v", dropped, err)
	}
	if _, err := BuildTextIndex(fs, "/tweets", rawText, HashtagAwareTokenizer); err != nil {
		t.Fatal(err)
	}
	posts, err := QueryText(fs, "/tweets", "#newui")
	if err != nil || len(posts) != 1 {
		t.Fatalf("v2 postings = %v, %v", posts, err)
	}
}

// TestTextIndexesInvisibleToScans: .tidx files must never be mistaken for
// data by the loaders.
func TestTextIndexesInvisibleToScans(t *testing.T) {
	if !warehouse.IsAuxiliary("/tweets/part-00000.gz.tidx") {
		t.Fatal("tidx not auxiliary")
	}
	fs := hdfs.New(0)
	writeTweets(t, fs, [][]string{{"only record"}})
	if _, err := BuildTextIndex(fs, "/tweets", rawText, SimpleTokenizer); err != nil {
		t.Fatal(err)
	}
	// Re-indexing must not index the index files themselves.
	n, err := BuildTextIndex(fs, "/tweets", rawText, SimpleTokenizer)
	if err != nil || n != 1 {
		t.Fatalf("reindex touched %d files, %v", n, err)
	}
}

// Package ngram implements n-gram language models over session sequences,
// the user-modeling technique of §5.4: "Since session sequences are simply
// symbol sequences drawn from a finite alphabet, we can borrow techniques
// derived from natural language processing."
//
// A model of order n estimates P(symbol | previous n-1 symbols) with
// Jelinek-Mercer interpolation down to a uniform distribution over the
// vocabulary, so unseen contexts never zero out. Cross entropy and
// perplexity quantify "how much temporal signal there is in user behavior":
// if user actions depend on their recent history, higher-order models have
// lower perplexity.
package ngram

import (
	"fmt"
	"math"
)

// BOS pads the start of every sequence so the first symbols still have
// conditioning context. It must not collide with dictionary symbols, which
// start at U+0020.
const BOS rune = 0x01

// DefaultLambda is the interpolation weight given to the highest-order
// estimate at each backoff level.
const DefaultLambda = 0.8

// Model is an interpolated n-gram language model over runes.
type Model struct {
	order int
	// counts[k] maps a length-k context to next-symbol counts.
	counts []map[string]map[rune]int64
	// totals[k] maps a length-k context to its total continuations.
	totals []map[string]int64
	vocab  map[rune]struct{}
	// Lambda is the interpolation weight; see DefaultLambda.
	Lambda float64
}

// NewModel returns an untrained model of the given order (1 = unigram,
// 2 = bigram, ...).
func NewModel(order int) *Model {
	if order < 1 {
		order = 1
	}
	m := &Model{
		order:  order,
		counts: make([]map[string]map[rune]int64, order),
		totals: make([]map[string]int64, order),
		vocab:  make(map[rune]struct{}),
		Lambda: DefaultLambda,
	}
	for k := 0; k < order; k++ {
		m.counts[k] = make(map[string]map[rune]int64)
		m.totals[k] = make(map[string]int64)
	}
	return m
}

// Order returns the model order.
func (m *Model) Order() int { return m.order }

// Vocabulary returns the number of distinct symbols seen in training.
func (m *Model) Vocabulary() int { return len(m.vocab) }

// Train folds one session sequence into the model's counts.
func (m *Model) Train(seq string) {
	runes := m.pad(seq)
	for i := m.order - 1; i < len(runes); i++ {
		next := runes[i]
		if next != BOS {
			m.vocab[next] = struct{}{}
		}
		for k := 0; k < m.order; k++ {
			ctx := string(runes[i-k : i])
			bucket := m.counts[k][ctx]
			if bucket == nil {
				bucket = make(map[rune]int64)
				m.counts[k][ctx] = bucket
			}
			bucket[next]++
			m.totals[k][ctx]++
		}
	}
}

// TrainAll trains on every sequence.
func (m *Model) TrainAll(seqs []string) {
	for _, s := range seqs {
		m.Train(s)
	}
}

// pad prepends order-1 BOS symbols.
func (m *Model) pad(seq string) []rune {
	out := make([]rune, 0, len(seq)+m.order-1)
	for i := 0; i < m.order-1; i++ {
		out = append(out, BOS)
	}
	for _, r := range seq {
		out = append(out, r)
	}
	return out
}

// Prob returns the interpolated P(next | context); context uses only its
// final order-1 runes.
func (m *Model) Prob(context []rune, next rune) float64 {
	if len(context) > m.order-1 {
		context = context[len(context)-(m.order-1):]
	}
	// Interpolate from longest matching context down to uniform.
	p := 1.0 / float64(len(m.vocab)+1) // uniform floor (+1 for unseen mass)
	for k := 0; k <= len(context); k++ {
		ctx := string(context[len(context)-k:])
		total := m.totals[k][ctx]
		if total == 0 {
			continue
		}
		mle := float64(m.counts[k][ctx][next]) / float64(total)
		p = (1-m.Lambda)*p + m.Lambda*mle
	}
	return p
}

// CrossEntropy returns bits per symbol of the sequences under the model —
// the §5.4 measure of how well the model "explains" the data.
func (m *Model) CrossEntropy(seqs []string) (float64, error) {
	var bits float64
	var n int64
	for _, seq := range seqs {
		runes := m.pad(seq)
		for i := m.order - 1; i < len(runes); i++ {
			p := m.Prob(runes[i-(m.order-1):i], runes[i])
			if p <= 0 {
				return 0, fmt.Errorf("ngram: zero probability at position %d", i)
			}
			bits -= math.Log2(p)
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("ngram: no symbols to evaluate")
	}
	return bits / float64(n), nil
}

// Perplexity is 2^CrossEntropy: the effective branching factor of user
// behavior under the model.
func (m *Model) Perplexity(seqs []string) (float64, error) {
	h, err := m.CrossEntropy(seqs)
	if err != nil {
		return 0, err
	}
	return math.Exp2(h), nil
}

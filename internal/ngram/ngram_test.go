package ngram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"unilog/internal/hdfs"
	"unilog/internal/session"
	"unilog/internal/workload"
)

func TestProbabilitiesSumToOne(t *testing.T) {
	m := NewModel(2)
	m.TrainAll([]string{"abcabc", "abca", "cab"})
	// Over the observed vocabulary plus smoothing mass, the distribution
	// must sum to (just under) 1 for every context.
	for _, ctx := range []string{"a", "b", "c", ""} {
		sum := 0.0
		for _, r := range "abc" {
			sum += m.Prob([]rune(ctx), r)
		}
		if sum > 1.0+1e-9 {
			t.Fatalf("context %q sums to %f > 1", ctx, sum)
		}
		if sum < 0.9 {
			t.Fatalf("context %q sums to %f, too much smoothing mass", ctx, sum)
		}
	}
}

func TestDeterministicSequenceIsLearnable(t *testing.T) {
	// "ababab..." is perfectly predictable with a bigram model.
	seqs := []string{}
	for i := 0; i < 50; i++ {
		seqs = append(seqs, "abababababababab")
	}
	uni, bi := NewModel(1), NewModel(2)
	uni.TrainAll(seqs)
	bi.TrainAll(seqs)
	pUni, err := uni.Perplexity(seqs)
	if err != nil {
		t.Fatal(err)
	}
	pBi, err := bi.Perplexity(seqs)
	if err != nil {
		t.Fatal(err)
	}
	// Unigram sees a 50/50 coin (perplexity ~2); bigram sees near-determinism.
	if pBi >= pUni {
		t.Fatalf("bigram perplexity %.3f >= unigram %.3f", pBi, pUni)
	}
	if pBi > 1.5 {
		t.Fatalf("bigram perplexity %.3f on deterministic data", pBi)
	}
	if pUni < 1.8 || pUni > 2.3 {
		t.Fatalf("unigram perplexity %.3f, want ~2", pUni)
	}
}

func TestRandomSequenceHasNoTemporalSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alphabet := []rune{'a', 'b', 'c', 'd'}
	var seqs []string
	for i := 0; i < 200; i++ {
		buf := make([]rune, 50)
		for j := range buf {
			buf[j] = alphabet[rng.Intn(len(alphabet))]
		}
		seqs = append(seqs, string(buf))
	}
	uni, bi := NewModel(1), NewModel(2)
	uni.TrainAll(seqs)
	bi.TrainAll(seqs)
	pUni, _ := uni.Perplexity(seqs)
	pBi, _ := bi.Perplexity(seqs)
	// IID data: higher order buys (almost) nothing.
	if pUni-pBi > 0.15 {
		t.Fatalf("bigram gained %.3f perplexity on iid data (uni %.3f, bi %.3f)", pUni-pBi, pUni, pBi)
	}
}

// TestPerplexityDecreasesOnSessions is experiment E8: real session
// sequences have temporal structure, so perplexity decreases with model
// order — "how the user behaves right now is strongly influenced by
// immediately preceding actions" (§5.4).
func TestPerplexityDecreasesOnSessions(t *testing.T) {
	day := time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)
	cfg := workload.DefaultConfig(day)
	cfg.Users = 200
	evs, _ := workload.New(cfg).Generate()
	fs := hdfs.New(0)
	if err := workload.WriteWarehouse(fs, evs); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := session.BuildDay(fs, day, 0); err != nil {
		t.Fatal(err)
	}
	var seqs []string
	if err := session.ScanDay(fs, day, func(r *session.Record) error {
		seqs = append(seqs, r.Sequence)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Split train/test so the comparison is honest.
	split := len(seqs) * 4 / 5
	train, test := seqs[:split], seqs[split:]
	var perp []float64
	for order := 1; order <= 3; order++ {
		m := NewModel(order)
		m.TrainAll(train)
		p, err := m.Perplexity(test)
		if err != nil {
			t.Fatal(err)
		}
		perp = append(perp, p)
	}
	if !(perp[1] < perp[0]) {
		t.Fatalf("bigram %.2f not better than unigram %.2f", perp[1], perp[0])
	}
	if perp[2] > perp[1]*1.1 {
		t.Fatalf("trigram %.2f much worse than bigram %.2f", perp[2], perp[1])
	}
}

func TestEmptyEvaluation(t *testing.T) {
	m := NewModel(2)
	m.Train("ab")
	if _, err := m.CrossEntropy(nil); err == nil {
		t.Fatal("empty evaluation succeeded")
	}
}

func TestOrderClamped(t *testing.T) {
	m := NewModel(0)
	if m.Order() != 1 {
		t.Fatalf("order = %d", m.Order())
	}
}

func TestProbPositiveProperty(t *testing.T) {
	m := NewModel(3)
	m.TrainAll([]string{"xyzxyz", "zyx", "xxyyzz"})
	f := func(a, b uint8) bool {
		ctx := []rune{rune('x' + a%3), rune('x' + b%3)}
		for _, r := range "xyz" {
			p := m.Prob(ctx, r)
			if p <= 0 || p > 1 || math.IsNaN(p) {
				return false
			}
		}
		// Unseen symbols still get smoothing mass.
		return m.Prob(ctx, 'q') > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Package columnar re-encodes sealed warehouse hours into column-chunk
// files so day-scale batch queries read IO proportional to the query, not
// the corpus — the §3/§5 rollup scripts touch two or three columns of an
// eight-column event, and the row-oriented hour files make them decode
// all eight.
//
// A sealed hour directory gains, beside its row files, one group of
// column files per chunk of ChunkRows events (in warehouse scan order):
//
//	_col-00000.meta        zone map: row count, min/max timestamp, min/max name
//	_col-00000.initiator   run-length pairs (initiator byte, run)
//	_col-00000.name        sorted per-chunk dictionary + uvarint IDs
//	_col-00000.user_id     zig-zag varints
//	_col-00000.session_id  sorted per-chunk dictionary + uvarint IDs
//	_col-00000.ip          sorted per-chunk dictionary + uvarint IDs
//	_col-00000.timestamp   zig-zag varint deltas from the previous row
//	_col-00000.logged_in   run-length pairs (bool byte, run)
//	_col-00000.details     per row: pair count + length-prefixed k/v, keys sorted
//	_col-SEALED            hour-level completion marker: total chunk count
//
// Every file is framed with the repository's recordio CRC discipline, so
// a torn tail reads back as recordio.ErrTruncated and a flipped bit as
// recordio.ErrCorrupt — the same failure vocabulary as the WAL and the
// spill files. The leading underscore makes the files auxiliary to every
// row scanner (warehouse.IsAuxiliary), so row and columnar layouts
// coexist in one directory and either can serve a scan.
//
// Sealing is crash-safe at two levels: within a chunk the meta file is
// written last, and across the hour the _col-SEALED marker is written
// after the last chunk. An hour without the marker is not columnar —
// scans keep reading its row files, and the next SealHour removes the
// orphaned chunk files and re-seals from scratch — so a seal that dies
// mid-hour can never silently drop the rows it had not reached.
//
// The reader side lives in format.go: EventsFormat is a pushdown-aware
// dataflow.InputFormat whose splits are chunk meta files. A pushed-down
// Selection prunes whole chunks against the meta zone maps without
// opening a column file, reads only the column streams the projection
// and predicate reference, and applies the exact row-level filter to
// what survives — so the zone map is allowed to be a superset.
package columnar

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/recordio"
	"unilog/internal/warehouse"
)

// DefaultChunkRows is the chunk size of SealHour: large enough that
// per-chunk dictionaries amortize, small enough that zone maps on a
// time-ordered hour give selective time windows real pruning.
const DefaultChunkRows = 8192

// chunkCols is the column order of a chunk, identical to
// dataflow.ClientEventSchema. The derived logged_in flag is materialized
// as its own (cheap, run-length) column so a projected scan never decodes
// user_id just to re-derive it.
var chunkCols = []string{"initiator", "name", "user_id", "session_id", "ip", "timestamp", "logged_in", "details"}

const (
	metaMagic   = 0x636f6c // "col"
	sealedMagic = 0x73656c // "sel"
	metaVersion = 1
)

// chunkBase returns the path prefix of chunk i in dir, without extension.
func chunkBase(dir string, i int) string {
	return fmt.Sprintf("%s/_col-%05d", dir, i)
}

// metaPath returns the zone-map file of chunk i in dir.
func metaPath(dir string, i int) string { return chunkBase(dir, i) + ".meta" }

// sealedPath returns the hour-level completion marker of dir.
func sealedPath(dir string) string { return dir + "/_col-SEALED" }

// HasColumnar reports whether dir has been fully sealed into column
// chunks. Chunk files without the completion marker — a seal that died
// mid-hour — do not count: the hour keeps scanning through its row files
// until a re-seal finishes the job.
func HasColumnar(fs *hdfs.FS, dir string) bool {
	return fs.Exists(sealedPath(dir))
}

// encodeSealed builds the completion-marker file: one CRC record naming
// the chunk count of the sealed hour.
func encodeSealed(chunks int) []byte {
	var rec []byte
	rec = binary.AppendUvarint(rec, sealedMagic)
	rec = binary.AppendUvarint(rec, metaVersion)
	rec = binary.AppendUvarint(rec, uint64(chunks))
	f := newFramed()
	f.w.Append(rec)
	return f.buf.Bytes()
}

// sealedChunks reads the completion marker's chunk count.
func sealedChunks(fs *hdfs.FS, dir string) (int, error) {
	path := sealedPath(dir)
	rec, err := oneRecord(fs, path)
	if err != nil {
		return 0, err
	}
	c := recordio.NewCursor(rec)
	if magic := c.Uvarint("magic"); c.Ok() && magic != sealedMagic {
		return 0, fmt.Errorf("columnar: %s: %w: bad magic %#x", path, recordio.ErrCorrupt, magic)
	}
	if v := c.Uvarint("version"); c.Ok() && v != metaVersion {
		return 0, fmt.Errorf("columnar: %s: unsupported seal version %d", path, v)
	}
	n := int(c.Uvarint("chunks"))
	if err := c.Err(); err != nil {
		return 0, fmt.Errorf("columnar: %s: %w", path, err)
	}
	return n, nil
}

// removeTornSeal deletes the leftover _col- files of a seal that died
// before writing its completion marker, so the retry starts clean — its
// chunk boundaries need not line up with the dead attempt's.
func removeTornSeal(fs *hdfs.FS, dir string) error {
	infos, err := fs.Walk(dir)
	if err != nil {
		return err
	}
	for _, fi := range infos {
		if strings.Contains(fi.Path, "/_col-") {
			if err := fs.Delete(fi.Path, false); err != nil {
				return fmt.Errorf("columnar: clean torn seal %s: %w", fi.Path, err)
			}
		}
	}
	return nil
}

// SealHour re-encodes one warehouse hour into column chunks of
// DefaultChunkRows, returning the number of chunks written. Sealing is
// idempotent: an hour whose completion marker exists (or that does not
// exist at all) is left alone with n == 0, while a torn earlier attempt
// — chunks but no marker — is cleaned up and re-sealed.
func SealHour(fs *hdfs.FS, category string, hour time.Time) (int, error) {
	return SealHourChunks(fs, category, hour, DefaultChunkRows)
}

// SealHourChunks is SealHour with an explicit chunk size (tests use tiny
// chunks to exercise pruning on small corpora).
func SealHourChunks(fs *hdfs.FS, category string, hour time.Time, chunkRows int) (int, error) {
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	dir := warehouse.HourDir(category, hour)
	if !fs.Exists(dir) || HasColumnar(fs, dir) {
		return 0, nil
	}
	if err := removeTornSeal(fs, dir); err != nil {
		return 0, err
	}
	t0 := time.Now()
	var (
		buf    []*events.ClientEvent
		chunks int
	)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if err := writeChunk(fs, dir, chunks, buf); err != nil {
			return err
		}
		tmSealChunks.Inc()
		tmSealRows.Add(int64(len(buf)))
		chunks++
		buf = buf[:0]
		return nil
	}
	err := warehouse.ScanHour(fs, category, hour, func(e *events.ClientEvent) error {
		cp := *e
		buf = append(buf, &cp)
		if len(buf) >= chunkRows {
			return flush()
		}
		return nil
	})
	if err != nil {
		return chunks, err
	}
	if err := flush(); err != nil {
		return chunks, err
	}
	if err := fs.WriteFile(sealedPath(dir), encodeSealed(chunks)); err != nil {
		return chunks, fmt.Errorf("columnar: write seal marker %s: %w", sealedPath(dir), err)
	}
	tmSealHourNs.ObserveSince(t0)
	return chunks, nil
}

// SealDay seals every existing hour of a category's UTC day, returning
// the total chunk count. Hours seal concurrently on up to
// runtime.GOMAXPROCS(0) workers; use SealDayParallel for an explicit
// worker cap (1 forces the serial loop).
func SealDay(fs *hdfs.FS, category string, day time.Time) (int, error) {
	return SealDayParallel(fs, category, day, 0)
}

// SealDayParallel is SealDay with an explicit worker cap: <= 0 means
// runtime.GOMAXPROCS(0), 1 seals hour by hour in order.
func SealDayParallel(fs *hdfs.FS, category string, day time.Time, workers int) (int, error) {
	day = day.UTC().Truncate(24 * time.Hour)
	hours := make([]time.Time, 24)
	for h := range hours {
		hours[h] = day.Add(time.Duration(h) * time.Hour)
	}
	return SealHoursParallel(fs, category, hours, workers)
}

// SealHoursParallel seals a set of hours on a bounded worker pool. Hour
// directories are disjoint, so the chunk files each worker writes are
// exactly the files the serial loop would write. Error reporting is
// deterministic: the earliest listed hour's failure wins, and the
// returned total counts the hours before it plus the failing hour's
// partial chunks — the serial loop's contract. Hours after a failure
// may still have sealed (sealing is idempotent and additive); their
// chunks are not claimed by this call's count.
func SealHoursParallel(fs *hdfs.FS, category string, hours []time.Time, workers int) (int, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(hours) {
		workers = len(hours)
	}
	if workers <= 1 {
		total := 0
		for _, h := range hours {
			n, err := SealHour(fs, category, h)
			total += n
			if err != nil {
				return total, err
			}
		}
		return total, nil
	}
	tmSealWorkers.SetMax(int64(workers))
	ns := make([]int, len(hours))
	errs := make([]error, len(hours))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				ns[i], errs[i] = SealHour(fs, category, hours[i])
			}
		}()
	}
	for i := range hours {
		idx <- i
	}
	close(idx)
	wg.Wait()
	total := 0
	for i := range hours {
		total += ns[i]
		if errs[i] != nil {
			return total, errs[i]
		}
	}
	return total, nil
}

// framed wraps a payload-building function in one CRC-framed file image.
type framed struct {
	buf bytes.Buffer
	w   *recordio.CRCWriter
}

func newFramed() *framed {
	f := &framed{}
	f.w = recordio.NewCRCWriter(&f.buf)
	return f
}

// writeChunk encodes one chunk of events (column files first, the meta
// file last, so a torn seal never claims a chunk it did not finish).
func writeChunk(fs *hdfs.FS, dir string, idx int, evs []*events.ClientEvent) error {
	base := chunkBase(dir, idx)
	cols := map[string][]byte{
		"initiator":  encodeInitiator(evs),
		"name":       encodeDict(evs, func(e *events.ClientEvent) string { return e.Name.String() }),
		"user_id":    encodeUserIDs(evs),
		"session_id": encodeDict(evs, func(e *events.ClientEvent) string { return e.SessionID }),
		"ip":         encodeDict(evs, func(e *events.ClientEvent) string { return e.IP }),
		"timestamp":  encodeTimestamps(evs),
		"logged_in":  encodeLoggedIn(evs),
		"details":    encodeDetails(evs),
	}
	for _, col := range chunkCols {
		if err := fs.WriteFile(base+"."+col, cols[col]); err != nil {
			return fmt.Errorf("columnar: write chunk %s.%s: %w", base, col, err)
		}
	}
	if err := fs.WriteFile(base+".meta", encodeMeta(evs)); err != nil {
		return fmt.Errorf("columnar: write chunk %s.meta: %w", base, err)
	}
	return nil
}

// encodeMeta builds the zone-map file: one CRC record with the row count,
// the timestamp range, and the lexical name range of the chunk.
func encodeMeta(evs []*events.ClientEvent) []byte {
	minTs, maxTs := evs[0].Timestamp, evs[0].Timestamp
	minName, maxName := evs[0].Name.String(), evs[0].Name.String()
	for _, e := range evs[1:] {
		if e.Timestamp < minTs {
			minTs = e.Timestamp
		}
		if e.Timestamp > maxTs {
			maxTs = e.Timestamp
		}
		n := e.Name.String()
		if n < minName {
			minName = n
		}
		if n > maxName {
			maxName = n
		}
	}
	var rec []byte
	rec = binary.AppendUvarint(rec, metaMagic)
	rec = binary.AppendUvarint(rec, metaVersion)
	rec = binary.AppendUvarint(rec, uint64(len(evs)))
	rec = binary.AppendVarint(rec, minTs)
	rec = binary.AppendVarint(rec, maxTs)
	rec = appendString(rec, minName)
	rec = appendString(rec, maxName)
	rec = binary.AppendUvarint(rec, uint64(len(chunkCols)))
	for _, col := range chunkCols {
		rec = appendString(rec, col)
	}
	f := newFramed()
	f.w.Append(rec)
	return f.buf.Bytes()
}

// appendString appends a uvarint length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// encodeDict encodes one string column as two CRC records: the sorted
// per-chunk dictionary, then one uvarint dictionary ID per row.
func encodeDict(evs []*events.ClientEvent, get func(*events.ClientEvent) string) []byte {
	distinct := make(map[string]int)
	for _, e := range evs {
		distinct[get(e)] = 0
	}
	dict := make([]string, 0, len(distinct))
	for s := range distinct {
		dict = append(dict, s)
	}
	sort.Strings(dict)
	for i, s := range dict {
		distinct[s] = i
	}
	var d []byte
	d = binary.AppendUvarint(d, uint64(len(dict)))
	for _, s := range dict {
		d = appendString(d, s)
	}
	var ids []byte
	for _, e := range evs {
		ids = binary.AppendUvarint(ids, uint64(distinct[get(e)]))
	}
	f := newFramed()
	f.w.Append(d)
	f.w.Append(ids)
	return f.buf.Bytes()
}

// encodeUserIDs packs the user_id column as zig-zag varints.
func encodeUserIDs(evs []*events.ClientEvent) []byte {
	var rec []byte
	for _, e := range evs {
		rec = binary.AppendVarint(rec, e.UserID)
	}
	f := newFramed()
	f.w.Append(rec)
	return f.buf.Bytes()
}

// encodeTimestamps delta-codes the timestamp column: each row stores the
// zig-zag difference from the previous row (the first from zero), so a
// time-ordered hour costs a byte or two per row.
func encodeTimestamps(evs []*events.ClientEvent) []byte {
	var rec []byte
	prev := int64(0)
	for _, e := range evs {
		rec = binary.AppendVarint(rec, e.Timestamp-prev)
		prev = e.Timestamp
	}
	f := newFramed()
	f.w.Append(rec)
	return f.buf.Bytes()
}

// encodeInitiator run-length encodes the initiator column as (byte, run)
// pairs — a handful of distinct values with long runs.
func encodeInitiator(evs []*events.ClientEvent) []byte {
	return encodeRLE(evs, func(e *events.ClientEvent) byte { return byte(e.Initiator) })
}

// encodeLoggedIn run-length encodes the derived logged_in flag.
func encodeLoggedIn(evs []*events.ClientEvent) []byte {
	return encodeRLE(evs, func(e *events.ClientEvent) byte {
		if e.LoggedIn() {
			return 1
		}
		return 0
	})
}

// encodeRLE encodes one byte-valued column as (value, run-length) pairs
// in a single CRC record.
func encodeRLE(evs []*events.ClientEvent, get func(*events.ClientEvent) byte) []byte {
	var rec []byte
	i := 0
	for i < len(evs) {
		v := get(evs[i])
		j := i + 1
		for j < len(evs) && get(evs[j]) == v {
			j++
		}
		rec = append(rec, v)
		rec = binary.AppendUvarint(rec, uint64(j-i))
		i = j
	}
	f := newFramed()
	f.w.Append(rec)
	return f.buf.Bytes()
}

// encodeDetails encodes the details map column: per row a pair count then
// length-prefixed key/value strings, keys sorted for determinism. Zero
// pairs round-trips as a nil map, matching the thrift row decoder.
func encodeDetails(evs []*events.ClientEvent) []byte {
	var rec []byte
	var keys []string
	for _, e := range evs {
		rec = binary.AppendUvarint(rec, uint64(len(e.Details)))
		keys = keys[:0]
		for k := range e.Details {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			rec = appendString(rec, k)
			rec = appendString(rec, e.Details[k])
		}
	}
	f := newFramed()
	f.w.Append(rec)
	return f.buf.Bytes()
}

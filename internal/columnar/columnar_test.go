package columnar

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"unilog/internal/dataflow"
	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/recordio"
	"unilog/internal/telemetry"
	"unilog/internal/warehouse"
)

var testDay = time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)

// testNames is a small catalog spanning several head prefixes so both the
// name zone maps and the pattern matcher have real work to do.
var testNames = []string{
	"web:home:timeline:stream:tweet:impression",
	"web:home:timeline:stream:tweet:expand",
	"web:home:mentions:stream:avatar:profile_click",
	"web:search:results:stream:tweet:click",
	"iphone:home:timeline:stream:tweet:impression",
	"iphone:profile:header:bio:link:click",
	"android:discover:trends:list:trend:click",
}

// buildDay writes a deterministic three-hour day of row files (small part
// files so every hour has several) and returns the fs and event count.
func buildDay(t *testing.T, seed int64) (*hdfs.FS, int) {
	t.Helper()
	fs := hdfs.New(0)
	w := warehouse.NewWriter(fs, events.Category)
	w.RollRecords = 23
	rng := rand.New(rand.NewSource(seed))
	n := 0
	for h := 0; h < 3; h++ {
		hour := testDay.Add(time.Duration(h) * time.Hour)
		for i := 0; i < 150; i++ {
			e := &events.ClientEvent{
				Initiator: events.Initiator(rng.Intn(4)),
				Name:      events.MustParseName(testNames[rng.Intn(len(testNames))]),
				SessionID: fmt.Sprintf("s%03d", rng.Intn(40)),
				IP:        fmt.Sprintf("10.0.%d.%d", rng.Intn(4), rng.Intn(200)),
				Timestamp: hour.UnixMilli() + int64(i)*23456,
			}
			if rng.Intn(3) > 0 { // a third of traffic is logged out
				e.UserID = int64(1000 + rng.Intn(50))
			}
			if rng.Intn(2) == 0 {
				e.Details = map[string]string{
					"request_id": fmt.Sprintf("r%06x", rng.Int31()),
					"lang":       "en",
				}
			}
			if err := w.Append(e); err != nil {
				t.Fatalf("append: %v", err)
			}
			n++
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close writer: %v", err)
	}
	return fs, n
}

func sealTestDay(t *testing.T, fs *hdfs.FS, chunkRows int) int {
	t.Helper()
	total := 0
	for h := 0; h < 3; h++ {
		n, err := SealHourChunks(fs, events.Category, testDay.Add(time.Duration(h)*time.Hour), chunkRows)
		if err != nil {
			t.Fatalf("seal hour %d: %v", h, err)
		}
		total += n
	}
	return total
}

func TestSealIdempotent(t *testing.T) {
	fs, _ := buildDay(t, 1)
	if n := sealTestDay(t, fs, 64); n == 0 {
		t.Fatal("first seal wrote no chunks")
	}
	if n := sealTestDay(t, fs, 64); n != 0 {
		t.Fatalf("second seal rewrote %d chunks, want 0", n)
	}
}

// TestColumnarMatchesRowScan is the property test: for a sweep of
// predicate/projection selections, the columnar scan must produce exactly
// the relation the row scan produces — same tuples, same order.
func TestColumnarMatchesRowScan(t *testing.T) {
	fs, _ := buildDay(t, 2)
	sealTestDay(t, fs, 32)
	dirs := dataflow.HourDirs(fs, events.Category, testDay)

	h1 := testDay.Add(1 * time.Hour).UnixMilli()
	h2 := testDay.Add(2 * time.Hour).UnixMilli()
	sels := []dataflow.Selection{
		{}, // full scan
		{Columns: []string{"name", "timestamp"}},
		{Columns: []string{"user_id", "session_id", "name", "timestamp"}},
		{NamePattern: "web:home:*"},
		{NamePattern: "*:click"}, // tail-anchored: no name pruning possible
		{NamePattern: "web:*:*:stream"},
		{NamePattern: "iphone:profile:header:bio:link:click"},
		{TimeMin: h1, TimeMax: h2},
		{TimeMin: h2},
		{TimeMax: h1},
		{NamePattern: "web:home:*", TimeMin: h1, Columns: []string{"name", "ip", "logged_in"}},
		{NamePattern: "android:*", TimeMin: h1, TimeMax: h2, Columns: []string{"details", "timestamp"}},
	}
	for i, sel := range sels {
		rowJob := dataflow.NewJob(fmt.Sprintf("row-%d", i), fs)
		rowDS, err := rowJob.LoadDirsSelective(dirs, dataflow.ClientEventFormat{}, sel)
		if err != nil {
			t.Fatalf("sel %d: row load: %v", i, err)
		}
		want, err := rowDS.Tuples()
		if err != nil {
			t.Fatalf("sel %d: row scan: %v", i, err)
		}
		colJob := dataflow.NewJob(fmt.Sprintf("col-%d", i), fs)
		colDS, err := colJob.LoadDirsSelective(dirs, EventsFormat{}, sel)
		if err != nil {
			t.Fatalf("sel %d: columnar load: %v", i, err)
		}
		got, err := colDS.Tuples()
		if err != nil {
			t.Fatalf("sel %d: columnar scan: %v", i, err)
		}
		if !reflect.DeepEqual(colDS.Schema(), rowDS.Schema()) {
			t.Fatalf("sel %d: schema mismatch: row %v, columnar %v", i, rowDS.Schema(), colDS.Schema())
		}
		if len(want) == 0 && i < 8 {
			t.Fatalf("sel %d: row baseline matched nothing — selection too narrow to test anything", i)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("sel %d (%+v): columnar relation differs from row scan (%d vs %d tuples)", i, sel, len(got), len(want))
		}
	}
}

// TestZoneMapPruning asserts a selective scan actually prunes chunks and
// reads fewer bytes than the row scan — the point of the layout.
func TestZoneMapPruning(t *testing.T) {
	fs, _ := buildDay(t, 3)
	sealTestDay(t, fs, 32)
	dirs := dataflow.HourDirs(fs, events.Category, testDay)
	sel := dataflow.Selection{
		NamePattern: "web:home:*",
		TimeMin:     testDay.Add(2 * time.Hour).UnixMilli(),
		Columns:     []string{"name", "timestamp", "logged_in"},
	}

	rowJob := dataflow.NewJob("row", fs)
	rowDS, err := rowJob.LoadDirsSelective(dirs, dataflow.ClientEventFormat{}, sel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rowDS.Tuples(); err != nil {
		t.Fatal(err)
	}

	before := telemetry.Snapshot().Series
	colJob := dataflow.NewJob("col", fs)
	colDS, err := colJob.LoadDirsSelective(dirs, EventsFormat{}, sel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := colDS.Tuples(); err != nil {
		t.Fatal(err)
	}
	after := telemetry.Snapshot().Series

	pruned := after["columnar.chunks.pruned"] - before["columnar.chunks.pruned"]
	scanned := after["columnar.chunks.scanned"] - before["columnar.chunks.scanned"]
	if pruned == 0 {
		t.Fatalf("selective scan pruned no chunks (scanned %d)", scanned)
	}
	if scanned == 0 {
		t.Fatal("selective scan scanned no chunks — nothing matched")
	}
	rowBytes := rowJob.Stats().BytesRead
	colBytes := colJob.Stats().BytesRead
	if colBytes >= rowBytes {
		t.Fatalf("columnar selective scan read %d bytes, row scan %d — no IO win", colBytes, rowBytes)
	}
}

// TestCorruptionMatrix drives the three storage-failure modes through a
// full scan: a torn chunk tail, a bit-flipped record body, and a missing
// column file must each surface as their recordio/hdfs error kind, never
// as silent data loss.
func TestCorruptionMatrix(t *testing.T) {
	hourDir := warehouse.HourDir(events.Category, testDay)

	corrupt := func(t *testing.T, fs *hdfs.FS, path string, mutate func([]byte) []byte) {
		t.Helper()
		data, err := fs.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if err := fs.Delete(path, false); err != nil {
			t.Fatalf("delete %s: %v", path, err)
		}
		if data = mutate(data); data != nil {
			if err := fs.WriteFile(path, data); err != nil {
				t.Fatalf("rewrite %s: %v", path, err)
			}
		}
	}
	scan := func(fs *hdfs.FS) error {
		j := dataflow.NewJob("scan", fs)
		d, err := j.LoadDirsSelective([]string{hourDir}, EventsFormat{}, dataflow.Selection{})
		if err != nil {
			return err
		}
		_, err = d.Tuples()
		return err
	}

	cases := []struct {
		name   string
		file   string
		mutate func([]byte) []byte
		want   error
	}{
		{
			name: "torn tail truncated",
			file: hourDir + "/_col-00000.name",
			mutate: func(b []byte) []byte {
				return b[:len(b)-3] // cut mid-record: framing sees a torn final write
			},
			want: recordio.ErrTruncated,
		},
		{
			name: "bit flip corrupt",
			file: hourDir + "/_col-00000.user_id",
			mutate: func(b []byte) []byte {
				b[len(b)-1] ^= 0x40 // flip a payload bit: checksum must catch it
				return b
			},
			want: recordio.ErrCorrupt,
		},
		{
			name: "meta bit flip corrupt",
			file: hourDir + "/_col-00000.meta",
			mutate: func(b []byte) []byte {
				b[len(b)-1] ^= 0x01
				return b
			},
			want: recordio.ErrCorrupt,
		},
		{
			name:   "missing column file",
			file:   hourDir + "/_col-00000.session_id",
			mutate: func([]byte) []byte { return nil }, // delete, no rewrite
			want:   hdfs.ErrNotFound,
		},
		{
			name: "over-long column corrupt",
			file: hourDir + "/_col-00000.user_id",
			mutate: func(b []byte) []byte {
				// Re-frame the record with one extra trailing varint: the
				// CRC is valid but the column now holds more rows than its
				// meta claims.
				r := recordio.NewCRCReader(bytes.NewReader(b))
				rec, err := r.Next()
				if err != nil {
					t.Fatalf("reframe: %v", err)
				}
				var out bytes.Buffer
				w := recordio.NewCRCWriter(&out)
				if err := w.Append(append(append([]byte(nil), rec...), 0)); err != nil {
					t.Fatalf("reframe: %v", err)
				}
				return out.Bytes()
			},
			want: recordio.ErrCorrupt,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs, _ := buildDay(t, 4)
			sealTestDay(t, fs, 32)
			corrupt(t, fs, tc.file, tc.mutate)
			err := scan(fs)
			if err == nil {
				t.Fatal("scan of damaged chunk succeeded")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("scan error = %v, want %v", err, tc.want)
			}
			if !strings.Contains(err.Error(), tc.file) {
				t.Fatalf("scan error %q does not name the damaged file %s", err, tc.file)
			}
		})
	}
}

// TestTornSealRecovers proves a seal that dies mid-hour loses nothing:
// without the _col-SEALED marker the half-written chunks are invisible
// (scans fall back to the row files), and re-sealing is not a no-op — it
// removes the orphaned chunks and completes with its own boundaries.
func TestTornSealRecovers(t *testing.T) {
	fs, total := buildDay(t, 6)
	hourDir := warehouse.HourDir(events.Category, testDay)
	if _, err := SealHourChunks(fs, events.Category, testDay, 32); err != nil {
		t.Fatal(err)
	}
	// Rewind the seal to "died before chunk 4": drop the completion
	// marker and the last chunk's files.
	if err := fs.Delete(sealedPath(hourDir), false); err != nil {
		t.Fatal(err)
	}
	for _, col := range chunkCols {
		if err := fs.Delete(chunkBase(hourDir, 4)+"."+col, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Delete(metaPath(hourDir, 4), false); err != nil {
		t.Fatal(err)
	}
	if HasColumnar(fs, hourDir) {
		t.Fatal("torn seal still claims the hour is columnar")
	}
	count := func(name string) int64 {
		t.Helper()
		j := dataflow.NewJob(name, fs)
		d, err := LoadDay(j, testDay, dataflow.Selection{})
		if err != nil {
			t.Fatal(err)
		}
		n, err := d.Count()
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := count("torn"); n != int64(total) {
		t.Fatalf("scan of torn-seal day saw %d events, want %d — rows silently dropped", n, total)
	}
	// Re-seal with a different chunk size (150 rows / 64 = 3 chunks): the
	// surviving 32-row chunks from the torn attempt must be cleaned up,
	// not mixed in.
	n, err := SealHourChunks(fs, events.Category, testDay, 64)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("re-seal of a torn hour was a no-op")
	}
	if fs.Exists(metaPath(hourDir, 3)) {
		t.Fatal("re-seal left stale chunks from the torn attempt")
	}
	if !HasColumnar(fs, hourDir) {
		t.Fatal("re-seal did not write the completion marker")
	}
	if got, want := mustSealedChunks(t, fs, hourDir), n; got != want {
		t.Fatalf("completion marker records %d chunks, seal wrote %d", got, want)
	}
	if n := count("resealed"); n != int64(total) {
		t.Fatalf("columnar scan after re-seal saw %d events, want %d", n, total)
	}
}

func mustSealedChunks(t *testing.T, fs *hdfs.FS, dir string) int {
	t.Helper()
	n, err := sealedChunks(fs, dir)
	if err != nil {
		t.Fatalf("read seal marker: %v", err)
	}
	return n
}

// TestHybridDirFallsBackToRows proves the format reads an unsealed hour
// through its row files: seal only hour 0 and the day still scans whole.
func TestHybridDirFallsBackToRows(t *testing.T) {
	fs, total := buildDay(t, 5)
	if _, err := SealHourChunks(fs, events.Category, testDay, 32); err != nil {
		t.Fatal(err)
	}
	j := dataflow.NewJob("hybrid", fs)
	d, err := LoadDay(j, testDay, dataflow.Selection{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := d.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(total) {
		t.Fatalf("hybrid day scan saw %d events, want %d", n, total)
	}
}

package columnar

import (
	"strings"
	"time"

	"unilog/internal/dataflow"
	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/warehouse"
)

// EventsFormat is the columnar client-events InputFormat. The zero value
// is a full scan with the row-format schema; Pushdown specializes it to a
// Selection, after which splits whose zone maps exclude the predicate are
// pruned without opening a column file and only the referenced column
// streams are decoded.
//
// The format is hybrid per directory: an hour that has been sealed into
// chunks scans the chunk meta files, an hour that has not falls back to
// its row files and evaluates the same selection row-side — so a day
// where sealing is still in flight reads correctly either way.
type EventsFormat struct {
	sel dataflow.Selection
	pat events.Pattern // parsed sel.NamePattern; zero when none

	prefix    string // zone-map prune prefix of pat ("" = no name pruning)
	hasPrefix bool
}

// Schema implements dataflow.InputFormat: the projected columns, or the
// full row schema when the selection does not project.
func (f EventsFormat) Schema() dataflow.Schema {
	if f.sel.Columns == nil {
		return dataflow.ClientEventSchema
	}
	return dataflow.Schema(f.sel.Columns)
}

// Pushdown implements dataflow.PushdownFormat: the whole selection is
// absorbed into the scan — chunk pruning plus an exact row-level residual
// filter inside ReadSplit — so the planner has nothing left to apply.
// A selection the format cannot honor (a malformed pattern, a column
// outside the row schema) returns ok == false and the planner falls
// through to the row path, where the same selection fails or filters
// with the ordinary row operators.
func (f EventsFormat) Pushdown(sel dataflow.Selection) (dataflow.InputFormat, dataflow.Selection, bool) {
	nf := EventsFormat{sel: sel}
	if sel.NamePattern != "" {
		pat, err := events.ParsePattern(sel.NamePattern)
		if err != nil {
			return f, sel, false
		}
		nf.pat = pat
		nf.prefix, nf.hasPrefix = pat.PrunePrefix()
	}
	for _, col := range sel.Columns {
		if _, err := dataflow.ClientEventSchema.Index(col); err != nil {
			return f, sel, false
		}
	}
	return nf, dataflow.Selection{}, true
}

// Splits implements dataflow.InputFormat: chunk meta files when the dir
// carries the _col-SEALED completion marker, row files when it does not.
// The sealed path enumerates chunks from the marker's count rather than
// by listing, so a chunk file that went missing after the seal surfaces
// as an error instead of silently shrinking the hour.
func (f EventsFormat) Splits(fs *hdfs.FS, dir string) ([]dataflow.Split, error) {
	if HasColumnar(fs, dir) {
		n, err := sealedChunks(fs, dir)
		if err != nil {
			return nil, err
		}
		splits := make([]dataflow.Split, 0, n)
		for i := 0; i < n; i++ {
			fi, err := fs.Stat(metaPath(dir, i))
			if err != nil {
				return nil, err
			}
			splits = append(splits, dataflow.Split{Path: fi.Path, Size: fi.Size})
		}
		return splits, nil
	}
	infos, err := fs.Walk(dir)
	if err != nil {
		return nil, err
	}
	var splits []dataflow.Split
	for _, fi := range infos {
		if warehouse.IsAuxiliary(fi.Path) {
			continue
		}
		splits = append(splits, dataflow.Split{Path: fi.Path, Size: fi.Size})
	}
	return splits, nil
}

// ReadSplit implements dataflow.InputFormat, dispatching on the split
// kind: chunk meta files go through the zone-map/column-stream path, row
// files through the thrift decoder with the same selection applied.
func (f EventsFormat) ReadSplit(fs *hdfs.FS, s dataflow.Split, emit func(dataflow.Tuple) error) error {
	if strings.HasSuffix(s.Path, ".meta") {
		return f.readChunk(fs, s.Path, emit)
	}
	return f.readRowFile(fs, s, emit)
}

// outCols returns the emitted column order.
func (f EventsFormat) outCols() []string {
	if f.sel.Columns == nil {
		return dataflow.ClientEventSchema
	}
	return f.sel.Columns
}

// prune reports whether the zone map proves no row of the chunk can
// match. The name range test uses the pattern's literal head as a string
// prefix — a superset of the componentwise match, which is exactly what
// pruning is allowed to be, since survivors still pass the exact filter.
func (f EventsFormat) prune(m chunkMeta) bool {
	if f.sel.TimeMin != 0 && m.maxTs < f.sel.TimeMin {
		return true
	}
	if f.sel.TimeMax != 0 && m.minTs >= f.sel.TimeMax {
		return true
	}
	if f.hasPrefix {
		if m.maxName < f.prefix {
			return true
		}
		if up := prefixSuccessor(f.prefix); up != "" && m.minName >= up {
			return true
		}
	}
	return false
}

// prefixSuccessor returns the smallest string greater than every string
// with the given prefix, or "" when no such bound exists.
func prefixSuccessor(prefix string) string {
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i] != 0xff {
			return prefix[:i] + string(prefix[i]+1)
		}
	}
	return ""
}

// match applies the exact row-level predicate.
func (f EventsFormat) match(name string, ts int64) bool {
	if f.sel.TimeMin != 0 && ts < f.sel.TimeMin {
		return false
	}
	if f.sel.TimeMax != 0 && ts >= f.sel.TimeMax {
		return false
	}
	if f.sel.NamePattern != "" && !f.pat.MatchesString(name) {
		return false
	}
	return true
}

// readChunk scans one column chunk: prune on the zone map, decode only
// the referenced column streams, filter exactly, emit projected tuples.
func (f EventsFormat) readChunk(fs *hdfs.FS, metaFile string, emit func(dataflow.Tuple) error) error {
	m, err := readMeta(fs, metaFile)
	if err != nil {
		return err
	}
	if f.prune(m) {
		tmChunksPruned.Inc()
		return nil
	}
	tmChunksScanned.Inc()
	out := f.outCols()
	need := make(map[string]bool, len(out)+2)
	for _, col := range out {
		need[col] = true
	}
	if f.sel.NamePattern != "" {
		need["name"] = true
	}
	if f.sel.TimeMin != 0 || f.sel.TimeMax != 0 {
		need["timestamp"] = true
	}
	base := strings.TrimSuffix(metaFile, ".meta")
	cc, err := readColumns(fs, base, m, need)
	if err != nil {
		return err
	}
	tmRowsRead.Add(int64(m.rows))
	filtered := f.sel.NamePattern != "" || f.sel.TimeMin != 0 || f.sel.TimeMax != 0
	for row := 0; row < m.rows; row++ {
		if filtered {
			var name string
			var ts int64
			if f.sel.NamePattern != "" {
				name = cc.name[row]
			}
			if need["timestamp"] {
				ts = cc.timestamp[row]
			}
			if !f.match(name, ts) {
				continue
			}
		}
		t := make(dataflow.Tuple, len(out))
		for i, col := range out {
			t[i] = cc.value(col, row)
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	return nil
}

// readRowFile scans one unsealed row file, applying the same selection
// the chunk path applies, so both split kinds emit identical relations.
func (f EventsFormat) readRowFile(fs *hdfs.FS, s dataflow.Split, emit func(dataflow.Tuple) error) error {
	out := f.outCols()
	full := dataflow.ClientEventFormat{}
	return full.ReadSplit(fs, s, func(t dataflow.Tuple) error {
		name, _ := t[1].(string)
		ts, _ := t[5].(int64)
		if !f.match(name, ts) {
			return nil
		}
		if f.sel.Columns == nil {
			return emit(t)
		}
		p := make(dataflow.Tuple, len(out))
		for i, col := range out {
			j, _ := dataflow.ClientEventSchema.Index(col)
			p[i] = t[j]
		}
		return emit(p)
	})
}

// LoadDay loads one UTC day of client events through the columnar source
// with the given selection — the columnar counterpart of
// dataflow.Job.LoadClientEventsDay.
func LoadDay(j *dataflow.Job, day time.Time, sel dataflow.Selection) (*dataflow.Dataset, error) {
	return j.LoadDirsSelective(dataflow.HourDirs(j.FS, events.Category, day), EventsFormat{}, sel)
}

package columnar

import (
	"unilog/internal/telemetry"
)

// Telemetry instruments for the columnar vertical, updated at chunk and
// seal granularity — never per row — so the decode loops stay as cheap as
// the row scanners they replace. chunks.pruned / chunks.scanned is the
// zone-map hit ratio: pruned chunks cost one meta read and zero column
// bytes.
var (
	tmChunksScanned = telemetry.GetCounter("columnar.chunks.scanned")
	tmChunksPruned  = telemetry.GetCounter("columnar.chunks.pruned")
	tmRowsRead      = telemetry.GetCounter("columnar.rows.read")
	tmSealChunks    = telemetry.GetCounter("columnar.seal.chunks")
	tmSealRows      = telemetry.GetCounter("columnar.seal.rows")

	tmSealHourNs = telemetry.GetHistogram("columnar.seal.hour.ns")

	// High-water worker count of concurrent hour sealing (SealDay /
	// SealHoursParallel).
	tmSealWorkers = telemetry.GetGauge("columnar.seal.workers")
)

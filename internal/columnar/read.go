package columnar

import (
	"bytes"
	"fmt"
	"io"

	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/recordio"
)

// chunkMeta is a decoded zone map: everything pruning needs, nothing a
// pruned chunk has to pay for beyond this one small file.
type chunkMeta struct {
	rows             int
	minTs, maxTs     int64
	minName, maxName string
	cols             []string
}

// records reads every CRC record of a column or meta file, copied out of
// the reader's reuse buffer. Terminal framing errors (ErrTruncated,
// ErrCorrupt) propagate with the path attached.
func records(fs *hdfs.FS, path string) ([][]byte, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("columnar: %s: %w", path, err)
	}
	var recs [][]byte
	r := recordio.NewCRCReader(bytes.NewReader(data))
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, fmt.Errorf("columnar: %s: %w", path, err)
		}
		cp := make([]byte, len(rec))
		copy(cp, rec)
		recs = append(recs, cp)
	}
}

// oneRecord reads a file expected to hold exactly one CRC record.
func oneRecord(fs *hdfs.FS, path string) ([]byte, error) {
	recs, err := records(fs, path)
	if err != nil {
		return nil, err
	}
	if len(recs) != 1 {
		return nil, fmt.Errorf("columnar: %s: %w: want 1 record, have %d", path, recordio.ErrCorrupt, len(recs))
	}
	return recs[0], nil
}

// readMeta decodes a chunk's zone-map file.
func readMeta(fs *hdfs.FS, path string) (chunkMeta, error) {
	rec, err := oneRecord(fs, path)
	if err != nil {
		return chunkMeta{}, err
	}
	c := recordio.NewCursor(rec)
	if magic := c.Uvarint("magic"); c.Ok() && magic != metaMagic {
		return chunkMeta{}, fmt.Errorf("columnar: %s: %w: bad magic %#x", path, recordio.ErrCorrupt, magic)
	}
	if v := c.Uvarint("version"); c.Ok() && v != metaVersion {
		return chunkMeta{}, fmt.Errorf("columnar: %s: unsupported chunk version %d", path, v)
	}
	var m chunkMeta
	m.rows = int(c.Uvarint("rows"))
	m.minTs = c.Varint("min_ts")
	m.maxTs = c.Varint("max_ts")
	m.minName = c.String("min_name")
	m.maxName = c.String("max_name")
	n := c.Count("columns")
	for i := 0; i < n; i++ {
		m.cols = append(m.cols, c.String("column"))
	}
	if err := c.Err(); err != nil {
		return chunkMeta{}, fmt.Errorf("columnar: %s: %w", path, err)
	}
	return m, nil
}

// decodeDict decodes a dictionary column file into one string per row.
func decodeDict(fs *hdfs.FS, path string, rows int) ([]string, error) {
	recs, err := records(fs, path)
	if err != nil {
		return nil, err
	}
	if len(recs) != 2 {
		return nil, fmt.Errorf("columnar: %s: %w: want 2 records, have %d", path, recordio.ErrCorrupt, len(recs))
	}
	dc := recordio.NewCursor(recs[0])
	n := dc.Count("dict size")
	dict := make([]string, 0, n)
	for i := 0; i < n; i++ {
		dict = append(dict, dc.String("dict entry"))
	}
	if err := dc.Err(); err != nil {
		return nil, fmt.Errorf("columnar: %s: %w", path, err)
	}
	ic := recordio.NewCursor(recs[1])
	out := make([]string, rows)
	for i := range out {
		id := ic.Uvarint("dict id")
		if !ic.Ok() || id >= uint64(len(dict)) {
			return nil, fmt.Errorf("columnar: %s: %w: dict id out of range", path, recordio.ErrCorrupt)
		}
		out[i] = dict[id]
	}
	if !ic.Empty() {
		return nil, fmt.Errorf("columnar: %s: %w: %d trailing bytes after %d rows", path, recordio.ErrCorrupt, ic.Remaining(), rows)
	}
	return out, nil
}

// decodeVarints decodes a zig-zag varint column into one int64 per row;
// delta == true accumulates row-over-row deltas (the timestamp column).
func decodeVarints(fs *hdfs.FS, path string, rows int, delta bool) ([]int64, error) {
	rec, err := oneRecord(fs, path)
	if err != nil {
		return nil, err
	}
	c := recordio.NewCursor(rec)
	out := make([]int64, rows)
	prev := int64(0)
	for i := range out {
		v := c.Varint("varint value")
		if delta {
			v += prev
			prev = v
		}
		out[i] = v
	}
	if err := c.Err(); err != nil {
		return nil, fmt.Errorf("columnar: %s: %w", path, err)
	}
	if !c.Empty() {
		return nil, fmt.Errorf("columnar: %s: %w: %d trailing bytes after %d rows", path, recordio.ErrCorrupt, c.Remaining(), rows)
	}
	return out, nil
}

// decodeRLE decodes a run-length byte column into one byte per row.
func decodeRLE(fs *hdfs.FS, path string, rows int) ([]byte, error) {
	rec, err := oneRecord(fs, path)
	if err != nil {
		return nil, err
	}
	c := recordio.NewCursor(rec)
	out := make([]byte, 0, rows)
	for len(out) < rows && c.Ok() {
		v := c.Byte("rle value")
		run := c.Uvarint("rle run")
		if !c.Ok() || run == 0 || run > uint64(rows-len(out)) {
			return nil, fmt.Errorf("columnar: %s: %w: bad run length", path, recordio.ErrCorrupt)
		}
		for j := uint64(0); j < run; j++ {
			out = append(out, v)
		}
	}
	if err := c.Err(); err != nil {
		return nil, fmt.Errorf("columnar: %s: %w", path, err)
	}
	if len(out) != rows {
		return nil, fmt.Errorf("columnar: %s: %w: short column", path, recordio.ErrCorrupt)
	}
	if !c.Empty() {
		return nil, fmt.Errorf("columnar: %s: %w: %d trailing bytes after %d rows", path, recordio.ErrCorrupt, c.Remaining(), rows)
	}
	return out, nil
}

// decodeDetails decodes the details column into one map per row; a row
// with zero pairs decodes as a nil map, exactly like the thrift decoder.
func decodeDetails(fs *hdfs.FS, path string, rows int) ([]map[string]string, error) {
	rec, err := oneRecord(fs, path)
	if err != nil {
		return nil, err
	}
	c := recordio.NewCursor(rec)
	out := make([]map[string]string, rows)
	for i := range out {
		n := c.Count("details pairs")
		if n == 0 {
			continue
		}
		m := make(map[string]string, n)
		for j := 0; j < n; j++ {
			k := c.String("details key")
			m[k] = c.String("details value")
		}
		out[i] = m
	}
	if err := c.Err(); err != nil {
		return nil, fmt.Errorf("columnar: %s: %w", path, err)
	}
	if !c.Empty() {
		return nil, fmt.Errorf("columnar: %s: %w: %d trailing bytes after %d rows", path, recordio.ErrCorrupt, c.Remaining(), rows)
	}
	return out, nil
}

// chunkColumns holds the decoded column vectors a scan asked for; vectors
// the projection and predicate never referenced stay nil and their files
// stay unread.
type chunkColumns struct {
	initiator []byte
	name      []string
	userID    []int64
	sessionID []string
	ip        []string
	timestamp []int64
	loggedIn  []byte
	details   []map[string]string
}

// readColumns decodes the needed column files of one chunk.
func readColumns(fs *hdfs.FS, base string, m chunkMeta, need map[string]bool) (*chunkColumns, error) {
	cc := &chunkColumns{}
	var err error
	for _, col := range m.cols {
		if !need[col] {
			continue
		}
		path := base + "." + col
		switch col {
		case "initiator":
			cc.initiator, err = decodeRLE(fs, path, m.rows)
		case "name":
			cc.name, err = decodeDict(fs, path, m.rows)
		case "user_id":
			cc.userID, err = decodeVarints(fs, path, m.rows, false)
		case "session_id":
			cc.sessionID, err = decodeDict(fs, path, m.rows)
		case "ip":
			cc.ip, err = decodeDict(fs, path, m.rows)
		case "timestamp":
			cc.timestamp, err = decodeVarints(fs, path, m.rows, true)
		case "logged_in":
			cc.loggedIn, err = decodeRLE(fs, path, m.rows)
		case "details":
			cc.details, err = decodeDetails(fs, path, m.rows)
		default:
			err = fmt.Errorf("columnar: %s: unknown column %q", base, col)
		}
		if err != nil {
			return nil, err
		}
	}
	return cc, nil
}

// value renders one column of one row as its dataflow tuple value —
// identical to what ClientEventFormat emits for the same event.
func (cc *chunkColumns) value(col string, row int) any {
	switch col {
	case "initiator":
		return events.Initiator(cc.initiator[row]).String()
	case "name":
		return cc.name[row]
	case "user_id":
		return cc.userID[row]
	case "session_id":
		return cc.sessionID[row]
	case "ip":
		return cc.ip[row]
	case "timestamp":
		return cc.timestamp[row]
	case "logged_in":
		return cc.loggedIn[row] == 1
	case "details":
		return cc.details[row]
	}
	panic("columnar: value of unknown column " + col)
}

// Package grammar induces context-free grammars from session sequences,
// the §6 "ongoing work" item: "applying automatic grammar induction
// techniques to learn hierarchical decompositions of user activity. For
// example, we might learn that many sessions break down into smaller
// units that exhibit a great deal of cohesion (each with rich internal
// structure), in the same way that a simple English sentence decomposes
// into a noun phrase and a verb phrase."
//
// The inducer is Re-Pair (Larsson & Moffat): repeatedly replace the most
// frequent adjacent symbol pair with a fresh nonterminal until no pair
// repeats. The paper gestures at grammar induction generally (citing
// constituent-context models); Re-Pair is the standard offline algorithm
// for exactly this hierarchical-decomposition effect on symbol sequences
// and needs no training corpus beyond the sessions themselves — the
// substitution is recorded in DESIGN.md.
package grammar

import (
	"fmt"
	"sort"
	"strings"
)

// Symbol is either a terminal (session-sequence code point) or a
// nonterminal rule reference.
type Symbol struct {
	// Terminal holds the code point when Rule < 0.
	Terminal rune
	// Rule is the nonterminal's rule index, or -1 for terminals.
	Rule int
}

// T makes a terminal symbol.
func T(r rune) Symbol { return Symbol{Terminal: r, Rule: -1} }

// N makes a nonterminal symbol.
func N(rule int) Symbol { return Symbol{Rule: rule} }

// Rule is one induced production: Rule[i] -> Pair[0] Pair[1].
type Rule struct {
	Pair [2]Symbol
	// Uses counts how many times the rule body was substituted during
	// induction (its support in the corpus).
	Uses int
}

// Grammar is the induction result: per-session top-level strings over
// terminals and nonterminals, plus the rule set.
type Grammar struct {
	Rules []Rule
	// Sequences are the compressed top-level session strings.
	Sequences [][]Symbol
	// terminals counts the original corpus size in symbols.
	terminals int
}

// MinSupport is the smallest pair frequency worth a rule.
const MinSupport = 2

// Induce runs Re-Pair over the sessions until no adjacent pair occurs at
// least minSupport times (minSupport < 2 uses MinSupport).
func Induce(seqs []string, minSupport int) *Grammar {
	if minSupport < MinSupport {
		minSupport = MinSupport
	}
	g := &Grammar{}
	for _, s := range seqs {
		syms := make([]Symbol, 0, len(s))
		for _, r := range s {
			syms = append(syms, T(r))
			g.terminals++
		}
		g.Sequences = append(g.Sequences, syms)
	}
	for {
		pair, count := g.mostFrequentPair()
		if count < minSupport {
			break
		}
		ruleID := len(g.Rules)
		g.Rules = append(g.Rules, Rule{Pair: pair})
		g.replaceAll(pair, ruleID)
	}
	return g
}

// mostFrequentPair scans all sequences for the most frequent adjacent
// pair, counting non-overlapping occurrences. Ties break deterministically
// by symbol ordering.
func (g *Grammar) mostFrequentPair() ([2]Symbol, int) {
	counts := make(map[[2]Symbol]int)
	for _, seq := range g.Sequences {
		var prevPair [2]Symbol
		prevCounted := false
		for i := 0; i+1 < len(seq); i++ {
			p := [2]Symbol{seq[i], seq[i+1]}
			// Non-overlapping: "aaa" counts "aa" once.
			if prevCounted && p == prevPair {
				prevCounted = false
				continue
			}
			counts[p]++
			prevPair = p
			prevCounted = true
		}
	}
	var best [2]Symbol
	bestN := 0
	for p, n := range counts {
		if n > bestN || (n == bestN && lessPair(p, best)) {
			best, bestN = p, n
		}
	}
	return best, bestN
}

func lessPair(a, b [2]Symbol) bool {
	if a[0] != b[0] {
		return lessSym(a[0], b[0])
	}
	return lessSym(a[1], b[1])
}

func lessSym(a, b Symbol) bool {
	if (a.Rule < 0) != (b.Rule < 0) {
		return a.Rule < 0 // terminals order before nonterminals
	}
	if a.Rule < 0 {
		return a.Terminal < b.Terminal
	}
	return a.Rule < b.Rule
}

// replaceAll substitutes every non-overlapping occurrence of pair with the
// rule's nonterminal, counting uses.
func (g *Grammar) replaceAll(pair [2]Symbol, ruleID int) {
	for si, seq := range g.Sequences {
		out := seq[:0:0]
		for i := 0; i < len(seq); {
			if i+1 < len(seq) && seq[i] == pair[0] && seq[i+1] == pair[1] {
				out = append(out, N(ruleID))
				g.Rules[ruleID].Uses++
				i += 2
				continue
			}
			out = append(out, seq[i])
			i++
		}
		g.Sequences[si] = out
	}
}

// Expand recursively expands a symbol into its terminal code points.
func (g *Grammar) Expand(s Symbol) []rune {
	if s.Rule < 0 {
		return []rune{s.Terminal}
	}
	r := g.Rules[s.Rule]
	return append(g.Expand(r.Pair[0]), g.Expand(r.Pair[1])...)
}

// RuleString renders a rule's full terminal expansion as a string.
func (g *Grammar) RuleString(rule int) string {
	return string(g.Expand(N(rule)))
}

// CompressedSymbols counts symbols across all top-level sequences plus
// rule bodies — the grammar-encoded corpus size.
func (g *Grammar) CompressedSymbols() int {
	n := 2 * len(g.Rules)
	for _, seq := range g.Sequences {
		n += len(seq)
	}
	return n
}

// OriginalSymbols counts the corpus size before induction.
func (g *Grammar) OriginalSymbols() int { return g.terminals }

// CompressionRatio is original/compressed symbol count: how much
// hierarchical structure the grammar explains.
func (g *Grammar) CompressionRatio() float64 {
	c := g.CompressedSymbols()
	if c == 0 {
		return 0
	}
	return float64(g.terminals) / float64(c)
}

// RuleInfo describes one rule for reporting.
type RuleInfo struct {
	Rule int
	Uses int
	// Length is the terminal expansion length.
	Length int
	// Expansion is the terminal string the rule derives.
	Expansion string
}

// TopRules returns the k most-used rules with expansion length >= minLen —
// the "smaller units that exhibit a great deal of cohesion".
func (g *Grammar) TopRules(k, minLen int) []RuleInfo {
	infos := make([]RuleInfo, 0, len(g.Rules))
	for i := range g.Rules {
		exp := g.RuleString(i)
		n := 0
		for range exp {
			n++
		}
		if n < minLen {
			continue
		}
		infos = append(infos, RuleInfo{Rule: i, Uses: g.Rules[i].Uses, Length: n, Expansion: exp})
	}
	sort.Slice(infos, func(a, b int) bool {
		if infos[a].Uses != infos[b].Uses {
			return infos[a].Uses > infos[b].Uses
		}
		if infos[a].Length != infos[b].Length {
			return infos[a].Length > infos[b].Length
		}
		return infos[a].Rule < infos[b].Rule
	})
	if len(infos) > k {
		infos = infos[:k]
	}
	return infos
}

// DescribeRule renders a rule's expansion as decoded event names, one per
// line, via the supplied symbol namer.
func (g *Grammar) DescribeRule(rule int, name func(rune) (string, bool)) string {
	var b strings.Builder
	for _, r := range g.Expand(N(rule)) {
		if n, ok := name(r); ok {
			fmt.Fprintf(&b, "%s\n", n)
		} else {
			fmt.Fprintf(&b, "%U\n", r)
		}
	}
	return b.String()
}

package grammar

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestInduceSimpleRepeat(t *testing.T) {
	// "abab" x many sessions: "ab" must become a rule.
	g := Induce([]string{"abab", "abab", "ab"}, 2)
	if len(g.Rules) == 0 {
		t.Fatal("no rules induced")
	}
	if g.RuleString(0) != "ab" {
		t.Fatalf("rule 0 = %q, want ab", g.RuleString(0))
	}
	if g.CompressionRatio() <= 1 {
		t.Fatalf("ratio = %f", g.CompressionRatio())
	}
}

func TestHierarchicalRules(t *testing.T) {
	// "abcd" repeated: expect nested rules, e.g. R0=ab (or cd), and a
	// higher rule expanding to abcd.
	seqs := make([]string, 10)
	for i := range seqs {
		seqs[i] = strings.Repeat("abcd", 3)
	}
	g := Induce(seqs, 2)
	found := false
	for i := range g.Rules {
		if g.RuleString(i) == "abcd" {
			found = true
			break
		}
	}
	if !found {
		var got []string
		for i := range g.Rules {
			got = append(got, g.RuleString(i))
		}
		t.Fatalf("no rule expands to abcd; rules = %v", got)
	}
}

// TestExpansionReconstructsCorpus: expanding every compressed sequence
// reproduces the original sessions exactly — grammar induction is
// lossless.
func TestExpansionReconstructsCorpus(t *testing.T) {
	seqs := []string{"openviewclickopenview", "openviewopenview", "clickclickclick", "x"}
	g := Induce(seqs, 2)
	for i, seq := range g.Sequences {
		var out []rune
		for _, s := range seq {
			out = append(out, g.Expand(s)...)
		}
		if string(out) != seqs[i] {
			t.Fatalf("sequence %d expands to %q, want %q", i, string(out), seqs[i])
		}
	}
}

func TestExpansionProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		// Map into a small alphabet to force repeats.
		buf := make([]rune, len(raw))
		for i, b := range raw {
			buf[i] = rune('a' + b%4)
		}
		in := string(buf)
		g := Induce([]string{in}, 2)
		var out []rune
		for _, s := range g.Sequences[0] {
			out = append(out, g.Expand(s)...)
		}
		return string(out) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNoPairRepeatsAfterInduction(t *testing.T) {
	seqs := []string{strings.Repeat("abcabcxyz", 5), strings.Repeat("abx", 7)}
	g := Induce(seqs, 2)
	counts := make(map[[2]Symbol]int)
	for _, seq := range g.Sequences {
		for i := 0; i+1 < len(seq); i++ {
			counts[[2]Symbol{seq[i], seq[i+1]}]++
		}
	}
	for p, n := range counts {
		if n >= 2 {
			// Overlapping self-pairs (aaa) legitimately survive; others not.
			if p[0] != p[1] {
				t.Fatalf("pair %v still occurs %d times", p, n)
			}
		}
	}
}

func TestTopRules(t *testing.T) {
	seqs := make([]string, 20)
	for i := range seqs {
		seqs[i] = strings.Repeat("signupformdone", 2) + "zz"
	}
	g := Induce(seqs, 2)
	top := g.TopRules(3, 4)
	if len(top) == 0 {
		t.Fatal("no top rules")
	}
	for i := 1; i < len(top); i++ {
		if top[i].Uses > top[i-1].Uses {
			t.Fatal("top rules not sorted by uses")
		}
	}
	if top[0].Length < 4 {
		t.Fatalf("minLen not honored: %+v", top[0])
	}
}

func TestDescribeRule(t *testing.T) {
	g := Induce([]string{"abab"}, 2)
	desc := g.DescribeRule(0, func(r rune) (string, bool) {
		return "event-" + string(r), true
	})
	if !strings.Contains(desc, "event-a") || !strings.Contains(desc, "event-b") {
		t.Fatalf("desc = %q", desc)
	}
	// Unknown symbols fall back to code-point notation.
	desc = g.DescribeRule(0, func(r rune) (string, bool) { return "", false })
	if !strings.Contains(desc, "U+") {
		t.Fatalf("desc = %q", desc)
	}
}

func TestMinSupportFloor(t *testing.T) {
	// minSupport below 2 is clamped; a single occurrence never makes a rule.
	g := Induce([]string{"abcdefg"}, 0)
	if len(g.Rules) != 0 {
		t.Fatalf("rules = %d on repeat-free input", len(g.Rules))
	}
}

func TestHigherMinSupport(t *testing.T) {
	seqs := []string{"abab", "abab"} // "ab" occurs 4 times total
	if g := Induce(seqs, 5); len(g.Rules) != 0 {
		t.Fatal("rule induced below support threshold")
	}
	if g := Induce(seqs, 4); len(g.Rules) == 0 {
		t.Fatal("rule not induced at support threshold")
	}
}

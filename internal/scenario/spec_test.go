package scenario

import (
	"errors"
	"strings"
	"testing"
)

const validSpec = `{
  "name": "t",
  "clients": [
    {"id": "web", "rate_fraction": 0.7, "arrival": {"process": "poisson"}},
    {"id": "mobile", "rate_fraction": 0.3, "arrival": {"process": "gamma", "cv": 2}}
  ]
}`

func TestParseValidSpecDefaults(t *testing.T) {
	s, err := Parse([]byte(validSpec))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Seed != 2012 || s.Day != "2012-08-21" || s.TotalSessions != 200 {
		t.Fatalf("defaults not applied: seed=%d day=%q sessions=%d", s.Seed, s.Day, s.TotalSessions)
	}
	if s.DurationMinutes != 22*60 {
		t.Fatalf("duration default = %d", s.DurationMinutes)
	}
	if len(s.Regions) != 2 {
		t.Fatalf("regions default = %v", s.Regions)
	}
	if s.DayStart().IsZero() {
		t.Fatal("day not parsed")
	}
}

// TestParseTypedErrors is the golden-spec table: each malformed spec must
// fail with its typed error, reachable via errors.Is, so harnesses can
// tell a spec mistake from an execution failure without string matching.
func TestParseTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
		want error
	}{
		{
			name: "unknown top-level key",
			json: `{"name": "t", "clientz": [], "clients": [{"id": "a", "rate_fraction": 1}]}`,
			want: ErrBadField,
		},
		{
			name: "missing name",
			json: `{"clients": [{"id": "a", "rate_fraction": 1}]}`,
			want: ErrBadField,
		},
		{
			name: "bad day",
			json: `{"name": "t", "day": "21/08/2012", "clients": [{"id": "a", "rate_fraction": 1}]}`,
			want: ErrBadField,
		},
		{
			name: "fractions sum below one",
			json: `{"name": "t", "clients": [
				{"id": "a", "rate_fraction": 0.5}, {"id": "b", "rate_fraction": 0.3}]}`,
			want: ErrBadFractions,
		},
		{
			name: "fractions sum above one",
			json: `{"name": "t", "clients": [
				{"id": "a", "rate_fraction": 0.8}, {"id": "b", "rate_fraction": 0.8}]}`,
			want: ErrBadFractions,
		},
		{
			name: "unknown arrival process",
			json: `{"name": "t", "clients": [
				{"id": "a", "rate_fraction": 1, "arrival": {"process": "pareto"}}]}`,
			want: ErrUnknownArrival,
		},
		{
			name: "duplicate class id",
			json: `{"name": "t", "clients": [
				{"id": "a", "rate_fraction": 0.5}, {"id": "a", "rate_fraction": 0.5}]}`,
			want: ErrBadField,
		},
		{
			name: "zero rate fraction",
			json: `{"name": "t", "clients": [{"id": "a", "rate_fraction": 0}]}`,
			want: ErrBadField,
		},
		{
			name: "flash crowd window reversed",
			json: `{"name": "t", "clients": [{"id": "a", "rate_fraction": 1}],
				"flash_crowds": [{"subtree": "web", "start_minute": 100, "end_minute": 50, "multiplier": 10}]}`,
			want: ErrBadField,
		},
		{
			name: "flash crowd multiplier too small",
			json: `{"name": "t", "clients": [{"id": "a", "rate_fraction": 1}],
				"flash_crowds": [{"subtree": "web", "start_minute": 0, "end_minute": 60, "multiplier": 1}]}`,
			want: ErrBadField,
		},
		{
			name: "outage region not declared",
			json: `{"name": "t", "clients": [{"id": "a", "rate_fraction": 1}],
				"outages": [{"region": "mars", "start_minute": 0, "end_minute": 60}]}`,
			want: ErrBadField,
		},
		{
			name: "slow consumer without delay",
			json: `{"name": "t", "clients": [{"id": "a", "rate_fraction": 1}],
				"slow_consumer": {"apply_delay_ms": 0}}`,
			want: ErrBadField,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if err == nil {
				t.Fatal("Parse accepted a malformed spec")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
}

func TestParseRejectsUnknownNestedKey(t *testing.T) {
	bad := strings.Replace(validSpec, `"cv": 2`, `"cv": 2, "burstiness": 9`, 1)
	_, err := Parse([]byte(bad))
	if !errors.Is(err, ErrBadField) {
		t.Fatalf("nested unknown key: error %v, want ErrBadField", err)
	}
}

func TestGammaCVDefault(t *testing.T) {
	s, err := Parse([]byte(`{"name": "t", "clients": [
		{"id": "a", "rate_fraction": 1, "arrival": {"process": "gamma"}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Clients[0].Arrival.CV; got != 2 {
		t.Fatalf("gamma cv = %g, want 2", got)
	}
}

package scenario

import (
	"testing"
)

// TestRunNodeCrashCell is the end-to-end proof behind the node-crash CI
// cell: a 3-node R=2 cluster ingests the day in parallel with the
// single counter, node 1 crashes mid-day and restarts hours later, and
// the cell must observe degraded scatter queries during the outage,
// replay every hinted write after recovery, and reconcile the cluster's
// scatter-gathered day exactly against the batch rollups.
func TestRunNodeCrashCell(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "node-crash-test",
		"total_sessions": 80,
		"regions": ["east", "west"],
		"clients": [
			{"id": "web", "rate_fraction": 0.7, "arrival": {"process": "poisson"}},
			{"id": "mobile", "rate_fraction": 0.3, "arrival": {"process": "gamma", "cv": 2}}
		],
		"cluster": {"nodes": 3, "replication_factor": 2, "partitions": 16},
		"node_crashes": [{"node": 1, "crash_minute": 360, "restart_minute": 600}],
		"invariants": {
			"reconcile_exact": true,
			"exactly_once": true,
			"require_handoff": true,
			"min_degraded_queries": 1
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec, RunConfig{Name: "test", Shards: 2, MemoryBudgetBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 {
		t.Fatal("no events ran")
	}
	if res.ClusterNodes != 3 || res.ClusterReplication != 2 {
		t.Fatalf("cluster shape %d/%d, want 3/2", res.ClusterNodes, res.ClusterReplication)
	}
	if res.NodeCrashes != 1 || res.NodeRestarts != 1 {
		t.Fatalf("crash/restart edges %d/%d, want 1/1", res.NodeCrashes, res.NodeRestarts)
	}
	if res.DetectorDeaths == 0 {
		t.Fatal("detector never declared the crashed node dead")
	}
	if res.HandoffHinted == 0 {
		t.Fatal("4-hour crash window produced no hinted writes")
	}
	if res.HandoffReplayed != res.HandoffHinted {
		t.Fatalf("replayed %d of %d hinted writes", res.HandoffReplayed, res.HandoffHinted)
	}
	if res.DegradedQueries == 0 {
		t.Fatal("no scatter probe observed a degraded fan during the outage")
	}
	if res.PartialQueries != 0 {
		t.Fatalf("%d probes went partial — R=2 with one node down must still answer", res.PartialQueries)
	}
	if !res.ClusterDrained {
		t.Fatal("cluster did not drain by end of day")
	}
	if !res.ClusterReconcileOK {
		t.Fatalf("cluster reconcile diverged: %d diffs", res.ClusterReconcileDiffs)
	}
	if !res.OK {
		t.Fatalf("invariants failed: %+v", res.Invariants)
	}
}

package scenario

import (
	"reflect"
	"testing"

	"unilog/internal/events"
)

// testSpec builds a small validated spec for stream tests.
func testSpec(t *testing.T, mutate func(*Spec)) *Spec {
	t.Helper()
	s, err := Parse([]byte(`{
		"name": "stream-test",
		"total_sessions": 60,
		"clients": [
			{"id": "web", "rate_fraction": 0.5, "arrival": {"process": "poisson"}},
			{"id": "mobile", "rate_fraction": 0.3, "arrival": {"process": "gamma", "cv": 2}},
			{"id": "api", "rate_fraction": 0.2, "arrival": {"process": "uniform"}}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(s)
		if err := s.validate(); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func collect(t *testing.T, s *Spec) []events.ClientEvent {
	t.Helper()
	st, err := s.EventStream()
	if err != nil {
		t.Fatal(err)
	}
	evs, err := Collect(st)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

// TestStreamDeterminism: same spec + same seed must produce the byte-
// identical event stream; a different seed must not.
func TestStreamDeterminism(t *testing.T) {
	a := collect(t, testSpec(t, nil))
	b := collect(t, testSpec(t, nil))
	if len(a) == 0 {
		t.Fatal("empty stream")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		// Structural equality: Marshal bytes are not comparable because the
		// Thrift encoder ranges over the Details map in map order.
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("event %d differs under the same seed:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}

	c := collect(t, testSpec(t, func(s *Spec) { s.Seed = 4040 }))
	same := len(a) == len(c)
	if same {
		for i := range a {
			if !reflect.DeepEqual(a[i], c[i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced an identical stream")
	}
}

func TestStreamWithinDayAndTagged(t *testing.T) {
	s := testSpec(t, func(sp *Spec) { sp.ClockSkewMs = 2000 })
	evs := collect(t, s)
	dayMs := s.DayStart().UnixMilli()
	endMs := dayMs + 24*60*60_000
	for i := range evs {
		if evs[i].Timestamp < dayMs || evs[i].Timestamp >= endMs {
			t.Fatalf("event %d timestamp %d outside the day", i, evs[i].Timestamp)
		}
		if evs[i].Details["traffic_class"] == "" {
			t.Fatalf("event %d missing traffic_class tag", i)
		}
	}
}

// classSessionCounts counts distinct sessions per traffic class.
func classSessionCounts(evs []events.ClientEvent) map[string]int {
	seen := map[string]bool{}
	counts := map[string]int{}
	for i := range evs {
		if evs[i].Details["crowd"] == "1" {
			continue
		}
		key := evs[i].Details["traffic_class"] + "\x00" + evs[i].SessionID
		if !seen[key] {
			seen[key] = true
			counts[evs[i].Details["traffic_class"]]++
		}
	}
	return counts
}

// TestSessionCountsFollowFractions: the per-class session split must
// match SessionCounts (cumulative rounding of rate_fraction × total) and
// sum to the spec total exactly.
func TestSessionCountsFollowFractions(t *testing.T) {
	s := testSpec(t, nil)
	evs := collect(t, s)
	want := s.SessionCounts()
	total := 0
	for _, n := range want {
		total += n
	}
	if total != s.TotalSessions {
		t.Fatalf("SessionCounts sum %d != total_sessions %d", total, s.TotalSessions)
	}
	got := classSessionCounts(evs)
	for i, c := range s.Clients {
		if got[c.ID] != want[i] {
			t.Fatalf("class %s: %d sessions in stream, SessionCounts says %d", c.ID, got[c.ID], want[i])
		}
	}
}

// TestFlashCrowdPreservesBaseTraffic is the property test: adding a
// flash-crowd window must multiply matching events without touching the
// base stream — the same base events in the same order, so every class's
// rate fraction is preserved exactly — and every synthetic event must be
// tagged, in-window, and under the subtree.
func TestFlashCrowdPreservesBaseTraffic(t *testing.T) {
	plain := collect(t, testSpec(t, nil))
	fc := FlashCrowd{Subtree: "web:home", StartMinute: 60, EndMinute: 300, Multiplier: 5}
	spiked := collect(t, testSpec(t, func(sp *Spec) {
		sp.FlashCrowds = []FlashCrowd{fc}
	}))

	var base []events.ClientEvent
	var crowd []events.ClientEvent
	for i := range spiked {
		if spiked[i].Details["crowd"] == "1" {
			crowd = append(crowd, spiked[i])
		} else {
			base = append(base, spiked[i])
		}
	}
	if len(base) != len(plain) {
		t.Fatalf("base stream changed: %d events with crowd, %d without", len(base), len(plain))
	}
	for i := range base {
		b := base[i]
		p := plain[i]
		// The crowd transform must pass base events through untouched —
		// compare identity fields (Details of base events gain no keys).
		if b.Name != p.Name || b.SessionID != p.SessionID || b.Timestamp != p.Timestamp ||
			b.UserID != p.UserID || b.Details["crowd"] != "" {
			t.Fatalf("base event %d mutated by flash crowd", i)
		}
	}

	dayMs := testSpec(t, nil).DayStart().UnixMilli()
	matching := 0
	for i := range plain {
		minute := int((plain[i].Timestamp - dayMs) / 60_000)
		if minute >= fc.StartMinute && minute < fc.EndMinute &&
			hasPrefixPath(plain[i].Name.String(), fc.Subtree) {
			matching++
		}
	}
	if want := matching * (fc.Multiplier - 1); len(crowd) != want {
		t.Fatalf("crowd events = %d, want %d (%d matching base events × %d)",
			len(crowd), want, matching, fc.Multiplier-1)
	}
	if matching == 0 {
		t.Fatal("no base events matched the crowd window; property vacuous")
	}
	for i := range crowd {
		e := &crowd[i]
		minute := int((e.Timestamp - dayMs) / 60_000)
		if minute < fc.StartMinute || minute >= fc.EndMinute {
			t.Fatalf("crowd event %d at minute %d outside window", i, minute)
		}
		if !hasPrefixPath(e.Name.String(), fc.Subtree) {
			t.Fatalf("crowd event %d name %s outside subtree", i, e.Name)
		}
		if e.UserID != 0 {
			t.Fatalf("crowd event %d not anonymous", i)
		}
	}
}

func TestHasPrefixPath(t *testing.T) {
	cases := []struct {
		name, subtree string
		want          bool
	}{
		{"web:home:timeline:stream:tweet:impression", "web:home", true},
		{"web:home", "web:home", true},
		{"web:homepage:x", "web:home", false},
		{"web", "web:home", false},
		{"iphone:home:x", "web:home", false},
	}
	for _, tc := range cases {
		if got := hasPrefixPath(tc.name, tc.subtree); got != tc.want {
			t.Errorf("hasPrefixPath(%q, %q) = %v, want %v", tc.name, tc.subtree, got, tc.want)
		}
	}
}

func TestSessionStartsOrderedWithinWindow(t *testing.T) {
	s := testSpec(t, nil)
	evs := collect(t, s)
	durMs := int64(s.DurationMinutes) * 60_000
	dayMs := s.DayStart().UnixMilli()
	firstSeen := map[string]int64{}
	for i := range evs {
		if _, ok := firstSeen[evs[i].SessionID]; !ok {
			firstSeen[evs[i].SessionID] = evs[i].Timestamp
			if off := evs[i].Timestamp - dayMs; off < 0 || off >= durMs {
				t.Fatalf("session start offset %dms outside the %dm window", off, s.DurationMinutes)
			}
		}
	}
}

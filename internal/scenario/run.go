package scenario

import (
	"fmt"
	"hash/fnv"
	"os"
	"time"

	"unilog/internal/analytics"
	"unilog/internal/columnar"
	"unilog/internal/dataflow"
	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/logmover"
	"unilog/internal/realtime"
	"unilog/internal/scribe"
	"unilog/internal/telemetry"
	"unilog/internal/warehouse"
	"unilog/internal/zk"
)

// RunConfig is one grid configuration axis: the knobs an experiment grid
// varies against the scenarios.
type RunConfig struct {
	// Name labels the config in cell filenames and reports.
	Name string `json:"name"`
	// Shards is the realtime counter's shard count; 0 takes the realtime
	// default.
	Shards int `json:"shards,omitempty"`
	// MemoryBudgetBytes bounds the cell's batch rollup job; 0 runs it
	// in-memory.
	MemoryBudgetBytes int64 `json:"memory_budget_bytes,omitempty"`
	// Parallelism caps the worker pools of the cell's batch legs: the
	// rollup job's dataflow.Job.Parallelism and the columnar day seal.
	// 0 means runtime.GOMAXPROCS(0); 1 forces the serial paths, so a
	// grid can sweep serial vs parallel in otherwise identical cells.
	Parallelism int `json:"parallelism,omitempty"`
}

// InvariantCheck is one evaluated assertion from Spec.Invariants.
type InvariantCheck struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// Result is one cell of the experiment grid: everything one scenario run
// under one config produced, in the flat machine-readable shape the
// BENCH files use — float keys ending in _per_sec (higher is better) and
// _ns (lower is better) are gated by cmd/benchcompare, Telemetry is the
// full registry snapshot for forensics, and Invariants carries the
// spec's per-cell verdicts.
type Result struct {
	Scenario    string `json:"scenario"`
	Config      string `json:"config"`
	Repeat      int    `json:"repeat"`
	Seed        int64  `json:"seed"`
	GeneratedAt string `json:"generated_at"`

	Events      int64 `json:"events"`
	BaseEvents  int64 `json:"base_events"`
	CrowdEvents int64 `json:"crowd_events"`
	Sessions    int   `json:"sessions"`

	IngestEventsPerSec float64 `json:"ingest_events_per_sec"`
	InWarehouse        int64   `json:"in_warehouse"`
	ExactlyOnce        bool    `json:"exactly_once"`

	SendFailures   int64 `json:"send_failures"`
	Rediscoveries  int64 `json:"rediscoveries"`
	SpoolHighWater int64 `json:"spool_high_water"`
	SpooledAtEnd   int64 `json:"spooled_at_end"`

	QueueFullWaits int64 `json:"queue_full_waits"`
	DroppedOld     int64 `json:"dropped_old"`

	ReconcileOK        bool `json:"reconcile_ok"`
	ReconcileBatchRows int  `json:"reconcile_batch_rows"`
	ReconcileDiffs     int  `json:"reconcile_diffs"`

	RollupRows         int     `json:"rollup_rows"`
	RollupEventsPerSec float64 `json:"rollup_events_per_sec"`
	SpilledBytes       int64   `json:"spilled_bytes"`
	SpillRuns          int     `json:"spill_runs"`

	// Cluster fields, present only when the spec declares a cluster. The
	// reconcile verdict is the scatter-gathered day versus the batch
	// rollups; the probe counters record how reads behaved through the
	// fault windows (degraded = answered around a dead/failing replica,
	// partial = some partition had no live replica at all).
	ClusterNodes          int   `json:"cluster_nodes,omitempty"`
	ClusterReplication    int   `json:"cluster_replication,omitempty"`
	ClusterReconcileOK    bool  `json:"cluster_reconcile_ok,omitempty"`
	ClusterReconcileDiffs int   `json:"cluster_reconcile_diffs,omitempty"`
	ClusterDrained        bool  `json:"cluster_drained,omitempty"`
	HandoffHinted         int64 `json:"handoff_hinted,omitempty"`
	HandoffReplayed       int64 `json:"handoff_replayed,omitempty"`
	NodeCrashes           int64 `json:"node_crashes,omitempty"`
	NodeRestarts          int64 `json:"node_restarts,omitempty"`
	DetectorDeaths        int64 `json:"detector_deaths,omitempty"`
	DetectorRevivals      int64 `json:"detector_revivals,omitempty"`
	ScatterProbes         int64 `json:"scatter_probes,omitempty"`
	DegradedQueries       int64 `json:"degraded_queries,omitempty"`
	PartialQueries        int64 `json:"partial_queries,omitempty"`

	ApplyBatchP50Ns int64 `json:"apply_batch_p50_ns"`
	ApplyBatchP95Ns int64 `json:"apply_batch_p95_ns"`
	ApplyBatchP99Ns int64 `json:"apply_batch_p99_ns"`
	TapBatchP50Ns   int64 `json:"tap_batch_p50_ns"`
	TapBatchP95Ns   int64 `json:"tap_batch_p95_ns"`
	TapBatchP99Ns   int64 `json:"tap_batch_p99_ns"`
	MergePassP50Ns  int64 `json:"merge_pass_p50_ns"`
	MergePassP95Ns  int64 `json:"merge_pass_p95_ns"`
	MergePassP99Ns  int64 `json:"merge_pass_p99_ns"`

	Telemetry  telemetry.Snap   `json:"telemetry"`
	Invariants []InvariantCheck `json:"invariants"`
	OK         bool             `json:"ok"`
}

// daemonsPerRegion and aggsPerRegion size each region's Scribe topology.
// Small on purpose: the harness exercises shapes, not scale.
const (
	daemonsPerRegion = 3
	aggsPerRegion    = 2
)

// Run executes one scenario under one config: the spec's event stream
// feeds a multi-region Scribe topology (with the realtime counter
// tapping every aggregator), the manual clock advances hour by hour
// sealing and moving as it goes, outage windows take regions dark and
// replay their spools, and the cell ends with the exactly-once count,
// the lambda reconciliation, a budgeted rollup leg, and the spec's
// invariant verdicts.
//
// Run resets the process-global telemetry registry so the cell's
// Telemetry snapshot and percentiles cover this cell alone; do not run
// cells concurrently in one process.
func Run(spec *Spec, rc RunConfig) (*Result, error) {
	telemetry.Reset()
	res := &Result{
		Scenario:    spec.Name,
		Config:      rc.Name,
		Repeat:      1,
		Seed:        spec.Seed,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Sessions:    spec.TotalSessions,
	}

	stream, err := spec.EventStream()
	if err != nil {
		return nil, err
	}

	day := spec.DayStart()
	clock := zk.NewManualClock(day)
	wh := hdfs.New(0)

	type region struct {
		name string
		dc   *scribe.Datacenter
		dark bool
	}
	regions := make([]*region, len(spec.Regions))
	var sources []logmover.Source
	for i, name := range spec.Regions {
		staging := hdfs.New(0)
		dc, err := scribe.NewDatacenter(name, staging, clock, aggsPerRegion, daemonsPerRegion,
			spec.Seed+int64(i)*101)
		if err != nil {
			return nil, err
		}
		r := &region{name: name, dc: dc}
		// The outage switch: while the region is dark every send to its
		// aggregators fails at the "network", so daemons spool locally and
		// replay once the window closes — the backfill under test.
		dc.Net.FailSend = func(string) error {
			if r.dark {
				return fmt.Errorf("scenario %s: region %s dark", spec.Name, r.name)
			}
			return nil
		}
		regions[i] = r
		sources = append(sources, logmover.Source{Datacenter: name, FS: staging})
	}
	mover := logmover.New(wh, sources...)

	counterCfg := realtime.Config{Shards: rc.Shards}
	if sc := spec.SlowConsumer; sc != nil {
		counterCfg.ApplyDelay = time.Duration(sc.ApplyDelayMs) * time.Millisecond
		counterCfg.QueueDepth = sc.QueueDepth
	}
	counter := realtime.New(counterCfg)
	defer counter.Close()
	counter.Publish(nil)

	// With a cluster declared, every aggregator batch fans into both the
	// single counter (the existing reconcile baseline) and the replicated
	// cluster, whose own scatter-gathered reconcile lands in the cluster_*
	// result fields.
	var ch *clusterHarness
	tap := counter.TapBatch
	if spec.Cluster != nil {
		ch, err = newClusterHarness(spec, clock)
		if err != nil {
			return nil, err
		}
		defer ch.close()
		tap = func(batch []scribe.Entry) {
			counter.TapBatch(batch)
			ch.c.TapBatch(batch)
		}
	}
	for _, r := range regions {
		for _, a := range r.dc.Aggregators {
			a.Tap = tap
		}
	}

	cats := []string{events.Category}
	dayMs := day.UnixMilli()
	curHour := 0

	// sealThrough seals every hour in [from, to) on every region and moves
	// what sealed. A dark region cannot flush its daemons, so its seal
	// fails and the hour simply waits — the final pass below re-seals
	// everything once every spool has replayed.
	sealThrough := func(from, to int) error {
		for h := from; h < to; h++ {
			hour := day.Add(time.Duration(h) * time.Hour)
			for _, r := range regions {
				if err := r.dc.SealHour(cats, hour); err != nil && r.dark {
					continue // spooled entries replay after the outage
				} else if err != nil {
					return err
				}
			}
		}
		_, err := mover.MoveAllSealed()
		return err
	}

	setDark := func(minute int) {
		for _, r := range regions {
			dark := false
			for _, o := range spec.Outages {
				if o.Region == r.name && minute >= o.StartMinute && minute < o.EndMinute {
					dark = true
				}
			}
			if r.dark && !dark {
				// The window closed: replay the spools now rather than
				// waiting for the next auto-flush, so the backfill lands
				// promptly in the current (correct-day) hour.
				r.dark = false
				for _, d := range r.dc.Daemons {
					d.Flush() //nolint:errcheck // spool retried on later flushes
				}
			}
			r.dark = dark
		}
	}

	// advanceTo moves the manual clock to an event's minute. Without a
	// cluster the clock jumps hour to hour (aggregators bucket staging by
	// hour, nothing finer matters); with one it steps every minute so the
	// failure detector, retry backoff, fault edges, and scatter probes
	// all run between the hours, sealing each hour as it completes.
	onHour := func(hr int) error {
		if err := sealThrough(curHour, hr); err != nil {
			return err
		}
		curHour = hr
		return nil
	}
	advanceTo := func(minute int) error {
		if ch != nil {
			return ch.advanceTo(minute, onHour)
		}
		if h := minute / 60; h > curHour {
			clock.Advance(time.Duration(h-curHour) * time.Hour)
			return onHour(h)
		}
		return nil
	}

	t0 := time.Now()
	err = stream(func(e *events.ClientEvent) error {
		minute := int((e.Timestamp - dayMs) / 60_000)
		if minute < 0 {
			minute = 0
		}
		if minute > 23*60+59 {
			minute = 23*60 + 59
		}
		// The manual clock tracks event time so aggregators bucket staging
		// files into the event's (arrival) hour; each hour crossed is
		// sealed and moved behind the clock.
		if err := advanceTo(minute); err != nil {
			return err
		}
		setDark(minute)

		ri := int(hash64(e.SessionID) % uint64(len(regions)))
		di := int((hash64(e.SessionID) >> 32) % uint64(daemonsPerRegion))
		regions[ri].dc.Daemons[di].Log(events.Category, e.Marshal())
		res.Events++
		if e.Details["crowd"] == "1" {
			res.CrowdEvents++
		} else {
			res.BaseEvents++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// End of day: every outage window has closed (validation bounds them
	// inside the duration), so clear the dark flags, drain every spool and
	// aggregator into the still-current day, then seal all 24 hours and
	// move the remainder. The clock stays inside the day so late flushes
	// cannot leak into tomorrow's directories.
	for _, r := range regions {
		r.dark = false
	}
	// The cluster first walks out the rest of the active window so every
	// remaining crash/restart edge fires before the day is sealed.
	if ch != nil {
		if err := ch.advanceTo(spec.DurationMinutes, onHour); err != nil {
			return nil, err
		}
	}
	for _, r := range regions {
		if err := r.dc.FlushAll(); err != nil {
			return nil, fmt.Errorf("scenario %s: final flush %s: %w", spec.Name, r.name, err)
		}
	}
	if err := sealThrough(0, 24); err != nil {
		return nil, err
	}
	// Every tap input is in; let the cluster's queues and hints drain
	// before anything reads it.
	if ch != nil {
		if err := ch.drain(); err != nil {
			return nil, err
		}
	}
	feedDur := time.Since(t0)
	if res.Events > 0 && feedDur > 0 {
		res.IngestEventsPerSec = float64(res.Events) / feedDur.Seconds()
	}

	for _, r := range regions {
		for _, d := range r.dc.Daemons {
			s := d.Stats()
			res.SendFailures += s.SendFailures
			res.Rediscoveries += s.Rediscoveries
			res.SpooledAtEnd += s.Spooled
			if s.SpoolHighWater > res.SpoolHighWater {
				res.SpoolHighWater = s.SpoolHighWater
			}
		}
	}

	if err := warehouse.ScanDay(wh, events.Category, day, func(*events.ClientEvent) error {
		res.InWarehouse++
		return nil
	}); err != nil {
		return nil, err
	}
	res.ExactlyOnce = res.InWarehouse == res.Events

	// Seal the delivered day into column chunks before anything batch-reads
	// it: the reconcile below and the budgeted rollup leg both go through
	// the columnar source, so every scenario cell proves the columnar path
	// end to end against the realtime counters.
	if _, err := columnar.SealDayParallel(wh, events.Category, day, rc.Parallelism); err != nil {
		return nil, err
	}

	counter.Sync()
	cstats := counter.Stats()
	res.QueueFullWaits = cstats.QueueFull
	res.DroppedOld = cstats.DroppedOld

	report, err := realtime.ReconcileWith(wh, day, counter)
	if err != nil {
		return nil, err
	}
	res.ReconcileOK = report.OK()
	res.ReconcileBatchRows = report.BatchRows
	res.ReconcileDiffs = report.MissingN + report.ExtraN + report.MismatchN

	if ch != nil {
		if err := ch.finish(res, wh); err != nil {
			return nil, err
		}
	}

	// The budgeted rollup leg: the same day again through the out-of-core
	// dataflow engine under the config's memory budget, so grid configs
	// can trade memory for spill and the cell records the difference.
	spillDir, err := os.MkdirTemp("", "scenario-spill-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(spillDir)
	j := dataflow.NewJob("scenario-rollup", wh)
	j.MemoryBudget = rc.MemoryBudgetBytes
	j.Parallelism = rc.Parallelism
	j.SpillDir = spillDir
	rt0 := time.Now()
	rollups, err := analytics.Rollups(j, day)
	if err != nil {
		return nil, err
	}
	rollupDur := time.Since(rt0)
	res.RollupRows = len(rollups)
	if res.Events > 0 && rollupDur > 0 {
		res.RollupEventsPerSec = float64(res.Events) / rollupDur.Seconds()
	}
	js := j.Stats()
	res.SpilledBytes = js.SpilledBytes
	res.SpillRuns = js.SpillRuns

	res.ApplyBatchP50Ns, res.ApplyBatchP95Ns, res.ApplyBatchP99Ns = pcts("realtime.apply.batch.ns")
	res.TapBatchP50Ns, res.TapBatchP95Ns, res.TapBatchP99Ns = pcts("realtime.tap.batch.ns")
	res.MergePassP50Ns, res.MergePassP95Ns, res.MergePassP99Ns = pcts("dataflow.stage.merge.ns")
	res.Telemetry = telemetry.Snapshot()

	res.evaluateInvariants(spec)
	return res, nil
}

// pcts reads one histogram's p50/p95/p99 from the default registry.
func pcts(name string) (p50, p95, p99 int64) {
	s := telemetry.GetHistogram(name).Summary()
	return s.P50, s.P95, s.P99
}

// hash64 is FNV-1a over the session id; low bits pick the region, high
// bits the daemon, so routing is stable per session and uncorrelated
// between the two choices.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// evaluateInvariants fills Invariants and OK from the spec's assertions.
func (res *Result) evaluateInvariants(spec *Spec) {
	inv := spec.Invariants
	add := func(name string, ok bool, detail string) {
		res.Invariants = append(res.Invariants, InvariantCheck{Name: name, OK: ok, Detail: detail})
	}
	if inv.ReconcileExact {
		add("reconcile_exact", res.ReconcileOK,
			fmt.Sprintf("%d batch rows, %d diffs", res.ReconcileBatchRows, res.ReconcileDiffs))
	}
	if inv.ExactlyOnce {
		add("exactly_once", res.ExactlyOnce,
			fmt.Sprintf("accepted %d, warehouse %d", res.Events, res.InWarehouse))
	}
	if inv.RequireBackfill {
		ok := res.SendFailures > 0 && res.SpooledAtEnd == 0 && res.ExactlyOnce
		add("require_backfill", ok,
			fmt.Sprintf("%d send failures, %d spooled at end, exactly_once=%v",
				res.SendFailures, res.SpooledAtEnd, res.ExactlyOnce))
	}
	if inv.RequireSpill {
		add("require_spill", res.SpilledBytes > 0,
			fmt.Sprintf("%d spilled bytes, %d runs", res.SpilledBytes, res.SpillRuns))
	}
	if inv.MinEvents > 0 {
		add("min_events", res.Events >= inv.MinEvents,
			fmt.Sprintf("want >= %d, got %d", inv.MinEvents, res.Events))
	}
	if inv.MinCrowdEvents > 0 {
		add("min_crowd_events", res.CrowdEvents >= inv.MinCrowdEvents,
			fmt.Sprintf("want >= %d, got %d", inv.MinCrowdEvents, res.CrowdEvents))
	}
	if inv.MinSendFailures > 0 {
		add("min_send_failures", res.SendFailures >= inv.MinSendFailures,
			fmt.Sprintf("want >= %d, got %d", inv.MinSendFailures, res.SendFailures))
	}
	if inv.MinQueueFullWaits > 0 {
		add("min_queue_full_waits", res.QueueFullWaits >= inv.MinQueueFullWaits,
			fmt.Sprintf("want >= %d, got %d", inv.MinQueueFullWaits, res.QueueFullWaits))
	}
	if inv.RequireHandoff {
		ok := res.HandoffHinted > 0 && res.HandoffReplayed == res.HandoffHinted &&
			res.ClusterDrained && res.ClusterReconcileOK
		add("require_handoff", ok,
			fmt.Sprintf("%d hinted, %d replayed, drained=%v, cluster reconcile ok=%v (%d diffs)",
				res.HandoffHinted, res.HandoffReplayed, res.ClusterDrained,
				res.ClusterReconcileOK, res.ClusterReconcileDiffs))
	}
	if inv.MinDegradedQueries > 0 {
		add("min_degraded_queries", res.DegradedQueries >= inv.MinDegradedQueries,
			fmt.Sprintf("want >= %d, got %d of %d probes", inv.MinDegradedQueries,
				res.DegradedQueries, res.ScatterProbes))
	}
	res.OK = true
	for _, c := range res.Invariants {
		if !c.OK {
			res.OK = false
		}
	}
}

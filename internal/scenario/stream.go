package scenario

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"unilog/internal/events"
	"unilog/internal/workload"
)

// Stream is a composable event-stream source: it pushes events into
// yield until the stream ends or yield returns an error (which aborts
// the stream and is returned). It is the same shape as
// workload.Generator.GenerateTo, so sinks — warehouse writers, Scribe
// daemons, slices — plug into either, and transforms are just functions
// from Stream to Stream.
type Stream func(yield func(*events.ClientEvent) error) error

// Collect drains a stream into a slice — the test and small-harness
// convenience.
func Collect(s Stream) ([]events.ClientEvent, error) {
	var out []events.ClientEvent
	err := s(func(e *events.ClientEvent) error {
		out = append(out, *e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// timedSession is one re-timed session: its new start and its events,
// shifted as a block so intra-session spacing (and therefore session
// boundaries) survive the re-timing.
type timedSession struct {
	startMs int64
	events  []events.ClientEvent
}

// EventStream builds the scenario's composed source: each client class
// generates its sessions through workload.Generator, the class's arrival
// process re-times the session starts across the scenario window, the
// classes merge by start time, and the flash-crowd and clock-skew
// transforms stack on top. The same spec and seed produce the identical
// stream, event for event.
//
// Class generation materializes one class's sessions at a time (the
// harness runs CI-scale days, not the out-of-core corpus sizes
// benchrunner E16/E17 stream); the transforms themselves are streaming.
func (s *Spec) EventStream() (Stream, error) {
	perClass := make([][]timedSession, len(s.Clients))
	counts := s.SessionCounts()
	for i := range s.Clients {
		sessions, err := s.classSessions(i, counts[i])
		if err != nil {
			return nil, fmt.Errorf("scenario %s: class %s: %w", s.Name, s.Clients[i].ID, err)
		}
		perClass[i] = sessions
	}
	base := mergeClasses(perClass)
	st := s.flashCrowdTransform(base)
	st = s.clockSkewTransform(st)
	return st, nil
}

// SessionCounts splits TotalSessions across the classes by rate
// fraction using cumulative rounding, so the counts sum to
// TotalSessions exactly and each class's share is within one session of
// fraction × total.
func (s *Spec) SessionCounts() []int {
	counts := make([]int, len(s.Clients))
	cum := 0.0
	prev := 0
	for i, c := range s.Clients {
		cum += c.RateFraction
		next := int(cum*float64(s.TotalSessions) + 0.5)
		if next > s.TotalSessions {
			next = s.TotalSessions
		}
		counts[i] = next - prev
		prev = next
	}
	return counts
}

// classSessions generates one class's sessions and re-times them by the
// class's arrival process.
func (s *Spec) classSessions(idx, nSessions int) ([]timedSession, error) {
	if nSessions == 0 {
		return nil, nil
	}
	c := &s.Clients[idx]
	cfg := s.classConfig(idx, nSessions)
	var sessions []timedSession
	var cur []events.ClientEvent
	lastSession := ""
	flush := func() {
		if len(cur) > 0 {
			sessions = append(sessions, timedSession{startMs: cur[0].Timestamp, events: cur})
			cur = nil
		}
	}
	_, err := workload.New(cfg).GenerateTo(func(e *events.ClientEvent) error {
		// Sessions are emitted contiguously in start order, and with
		// MaxSessionsPerUser=1 every session has a distinct cookie, so a
		// SessionID change is a session boundary.
		if e.SessionID != lastSession {
			flush()
			lastSession = e.SessionID
		}
		e.Details["traffic_class"] = c.ID
		cur = append(cur, *e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	flush()

	// Re-time: the k-th session (classes emit in start order) moves to
	// the k-th arrival offset; shifting the whole session preserves its
	// internal gaps.
	rng := rand.New(rand.NewSource(s.Seed + int64(idx)*7919 + 13))
	window := time.Duration(s.DurationMinutes) * time.Minute
	starts := sessionStarts(c.Arrival, len(sessions), window, rng)
	dayMs := s.day.UnixMilli()
	for k := range sessions {
		newStart := dayMs + starts[k].Milliseconds()
		delta := newStart - sessions[k].startMs
		sessions[k].startMs = newStart
		for j := range sessions[k].events {
			sessions[k].events[j].Timestamp += delta
		}
	}
	return sessions, nil
}

// classConfig derives the workload config for one class. One session per
// user (MaxSessionsPerUser=1) makes the class's session count exact, so
// rate fractions hold by construction.
func (s *Spec) classConfig(idx, nSessions int) workload.Config {
	c := &s.Clients[idx]
	loggedOutFrac := 0.3
	if c.LoggedOutFraction != nil {
		loggedOutFrac = *c.LoggedOutFraction
	}
	loggedOut := int(loggedOutFrac*float64(nSessions) + 0.5)
	if loggedOut > nSessions {
		loggedOut = nSessions
	}
	cfg := workload.DefaultConfig(s.day)
	cfg.Seed = s.Seed + int64(idx)*7919 + 1
	cfg.Users = nSessions - loggedOut
	cfg.MaxSessionsPerUser = 1
	cfg.LoggedOutSessions = loggedOut
	cfg.SignupFraction = 0.5
	if c.SignupFraction != nil {
		cfg.SignupFraction = *c.SignupFraction
	}
	if c.MeanPageVisits > 0 {
		cfg.MeanPageVisits = c.MeanPageVisits
	}
	return cfg
}

// mergeClasses interleaves the per-class session lists into one stream
// ordered by (session start, class index) — session-granularity
// interleaving, the same near-ordering workload.GenerateTo documents.
func mergeClasses(perClass [][]timedSession) Stream {
	return func(yield func(*events.ClientEvent) error) error {
		heads := make([]int, len(perClass))
		for {
			best := -1
			for i := range perClass {
				if heads[i] >= len(perClass[i]) {
					continue
				}
				if best < 0 || perClass[i][heads[i]].startMs < perClass[best][heads[best]].startMs {
					best = i
				}
			}
			if best < 0 {
				return nil
			}
			sess := &perClass[best][heads[best]]
			heads[best]++
			for j := range sess.events {
				if err := yield(&sess.events[j]); err != nil {
					return err
				}
			}
		}
	}
}

// flashCrowdTransform multiplies matching in-window events: after each
// base event that falls inside a crowd window and under its subtree, it
// emits Multiplier-1 synthetic crowd events — fresh anonymous sessions,
// jittered uniformly across the window, tagged Details["crowd"]="1".
// The base stream passes through untouched, so crowd windows never
// change the per-class traffic they amplify.
func (s *Spec) flashCrowdTransform(base Stream) Stream {
	if len(s.FlashCrowds) == 0 {
		return base
	}
	dayMs := s.day.UnixMilli()
	return func(yield func(*events.ClientEvent) error) error {
		rng := rand.New(rand.NewSource(s.Seed ^ 0x5DEECE66D))
		crowdSeq := 0
		return base(func(e *events.ClientEvent) error {
			if err := yield(e); err != nil {
				return err
			}
			minute := int((e.Timestamp - dayMs) / 60_000)
			name := e.Name.String()
			for _, fc := range s.FlashCrowds {
				if minute < fc.StartMinute || minute >= fc.EndMinute {
					continue
				}
				if !hasPrefixPath(name, fc.Subtree) {
					continue
				}
				winStart := dayMs + int64(fc.StartMinute)*60_000
				winLen := int64(fc.EndMinute-fc.StartMinute) * 60_000
				for i := 1; i < fc.Multiplier; i++ {
					clone := *e
					crowdSeq++
					clone.UserID = 0
					clone.SessionID = fmt.Sprintf("crowd%010d%08x", crowdSeq, rng.Uint32())
					clone.Timestamp = winStart + rng.Int63n(winLen)
					details := make(map[string]string, len(e.Details)+1)
					for k, v := range e.Details {
						details[k] = v
					}
					details["crowd"] = "1"
					details["request_id"] = fmt.Sprintf("%016x%016x", rng.Uint64(), rng.Uint64())
					clone.Details = details
					if err := yield(&clone); err != nil {
						return err
					}
				}
			}
			return nil
		})
	}
}

// hasPrefixPath reports whether name is under the subtree prefix at a
// component boundary: "web:home" covers "web:home" and "web:home:...",
// not "web:homepage:...".
func hasPrefixPath(name, subtree string) bool {
	if len(name) < len(subtree) || name[:len(subtree)] != subtree {
		return false
	}
	return len(name) == len(subtree) || name[len(subtree)] == ':'
}

// clockSkewTransform shifts every event by its session's stable skew
// offset in [-ClockSkewMs, +ClockSkewMs], clamped into the day — the
// client whose phone clock runs half a second fast runs it fast all
// session.
func (s *Spec) clockSkewTransform(base Stream) Stream {
	if s.ClockSkewMs == 0 {
		return base
	}
	dayMs := s.day.UnixMilli()
	dayEndMs := dayMs + 24*60*60_000 - 1
	span := 2*s.ClockSkewMs + 1
	return func(yield func(*events.ClientEvent) error) error {
		return base(func(e *events.ClientEvent) error {
			h := fnv.New64a()
			h.Write([]byte(e.SessionID))
			offset := int64(h.Sum64()%uint64(span)) - s.ClockSkewMs //nolint:gosec // span <= 2*skew+1 fits int64
			skewed := *e
			skewed.Timestamp += offset
			if skewed.Timestamp < dayMs {
				skewed.Timestamp = dayMs
			}
			if skewed.Timestamp > dayEndMs {
				skewed.Timestamp = dayEndMs
			}
			return yield(&skewed)
		})
	}
}

// Package scenario is the declarative traffic harness: it turns a JSON
// workload spec — named client classes with rate fractions and arrival
// processes, time-windowed flash-crowd multipliers, per-region outage +
// backfill windows, clock-skew jitter, a slow realtime consumer, one
// seed — into a composable event-stream source over workload.Generator,
// and executes that stream through the full pipeline (Scribe daemons →
// aggregators → staging → log mover → warehouse, with the realtime
// counters tapping ingestion) while injecting the spec's faults.
//
// The paper's infrastructure existed to survive real traffic shapes:
// flash crowds on one namespace subtree, a datacenter's daemons going
// dark and replaying their spools, consumers that fall behind. Before
// this package each such shape was a hand-written experiment in
// benchrunner; now it is data. A spec file plus a seed reproduces the
// same event stream byte for byte, cmd/benchrunner's -grid mode runs a
// (scenario × config) experiment matrix emitting one machine-readable
// JSON per cell, and CI's scenario-matrix job asserts each cell's
// invariants — reconcile-exact after backfill, exactly-once delivery,
// nonzero spill and ingest telemetry — on every push.
//
// The pieces compose:
//
//   - Spec (this file): the parsed, validated spec. Parse and Load
//     return typed errors (ErrBadField, ErrBadFractions,
//     ErrUnknownArrival) so harnesses can distinguish a malformed spec
//     from an execution failure.
//   - arrival.go: poisson / gamma / uniform inter-arrival samplers that
//     re-time each client class's session starts.
//   - stream.go: Spec.EventStream builds the source — per-class
//     generators merged by session start, then the flash-crowd and
//     clock-skew transforms, each a Stream → Stream function.
//   - run.go: Run drives a stream through a multi-region Scribe
//     topology with the spec's outages and slow-consumer delay applied,
//     seals and moves every hour, and returns a Result with telemetry,
//     latency percentiles, and the spec's invariant verdicts.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"strings"
	"time"
)

// Typed spec errors. Every parse/validation failure wraps one of these,
// so callers can errors.Is their way to the class of mistake without
// string matching.
var (
	// ErrBadField marks a field with an invalid or missing value, or a
	// field the schema does not define (a typo'd key fails parsing
	// instead of silently doing nothing).
	ErrBadField = errors.New("scenario: bad spec field")
	// ErrBadFractions marks client rate fractions that do not sum to 1.
	ErrBadFractions = errors.New("scenario: client rate fractions must sum to 1")
	// ErrUnknownArrival marks an arrival process the harness does not
	// implement.
	ErrUnknownArrival = errors.New("scenario: unknown arrival process")
)

// Arrival process names accepted in ClientClass.Arrival.Process.
const (
	ArrivalPoisson = "poisson"
	ArrivalGamma   = "gamma"
	ArrivalUniform = "uniform"
)

// Arrival selects the inter-arrival process that spaces a client class's
// session starts across the scenario window.
type Arrival struct {
	// Process is one of poisson (memoryless), gamma (bursty for CV > 1,
	// regular for CV < 1), or uniform. Empty defaults to poisson.
	Process string `json:"process"`
	// CV is the coefficient of variation for the gamma process; ignored
	// by the others. Defaults to 2 (bursty).
	CV float64 `json:"cv,omitempty"`
}

// ClientClass is one named slice of the traffic: a fraction of the
// scenario's sessions with its own arrival process and session shape.
type ClientClass struct {
	// ID names the class; every event it generates carries
	// Details["traffic_class"] = ID.
	ID string `json:"id"`
	// RateFraction is this class's share of Spec.TotalSessions. The
	// fractions across all classes must sum to 1.
	RateFraction float64 `json:"rate_fraction"`
	// Arrival spaces the class's session starts.
	Arrival Arrival `json:"arrival"`
	// LoggedOutFraction of the class's sessions are anonymous (cookie
	// only); of those, SignupFraction walk the signup funnel. Defaults
	// 0.3 and 0.5.
	LoggedOutFraction *float64 `json:"logged_out_fraction,omitempty"`
	SignupFraction    *float64 `json:"signup_fraction,omitempty"`
	// MeanPageVisits controls session length; 0 takes the workload
	// default.
	MeanPageVisits int `json:"mean_page_visits,omitempty"`
}

// FlashCrowd is one "celebrity event": inside the window, every base
// event whose name starts with Subtree is multiplied — the original plus
// Multiplier-1 synthetic crowd sessions jittered across the window, each
// tagged Details["crowd"] = "1".
type FlashCrowd struct {
	// Subtree is the namespace prefix that spikes, e.g. "web:home".
	Subtree string `json:"subtree"`
	// StartMinute / EndMinute bound the window in minutes of the day.
	StartMinute int `json:"start_minute"`
	EndMinute   int `json:"end_minute"`
	// Multiplier is the traffic amplification inside the window (>= 2;
	// the paper-scale scenarios use 100-1000).
	Multiplier int `json:"multiplier"`
}

// Outage takes one region's Scribe daemons dark: deliveries to the
// region's aggregators fail for the window, entries pile up in the
// daemons' local spools, and the spools replay once the window closes —
// the backfill whose exactness Reconcile then proves.
type Outage struct {
	// Region names an entry of Spec.Regions.
	Region string `json:"region"`
	// StartMinute / EndMinute bound the dark window in minutes of the
	// day; the window must close before the scenario ends so the spool
	// gets to replay.
	StartMinute int `json:"start_minute"`
	EndMinute   int `json:"end_minute"`
}

// SlowConsumer makes the realtime counter a deliberately slow consumer:
// each shard drain sleeps ApplyDelayMs before applying a batch, and the
// shard queues shrink to QueueDepth, so ingestion backpressure becomes
// visible in realtime.queue.* telemetry.
type SlowConsumer struct {
	ApplyDelayMs int `json:"apply_delay_ms"`
	// QueueDepth is the per-shard queue capacity in batches while the
	// slow consumer is active. Defaults to 2.
	QueueDepth int `json:"queue_depth,omitempty"`
}

// ClusterSpec stands up a replicated realtime cluster next to the
// single tapped counter: every aggregator batch fans into both, the
// cluster is scatter-gather probed through the day, and the cell gains
// the cluster's reconcile verdict and handoff/detector counters. Node
// indexes in NodeCrashes refer to [0, Nodes).
type ClusterSpec struct {
	// Nodes is the node count (2..16). ReplicationFactor defaults to 2,
	// Partitions to 16.
	Nodes             int `json:"nodes"`
	ReplicationFactor int `json:"replication_factor,omitempty"`
	Partitions        int `json:"partitions,omitempty"`
}

// NodeCrash is one cluster fault window: the node crashes at
// CrashMinute and restarts at RestartMinute (minutes of the day, window
// inside the scenario duration so hint replay gets to finish before the
// day seals). With the default R=2 a single crashed node leaves every
// partition a live replica; overlapping windows on multiple nodes can
// take whole partitions dark and the probes then report partial.
type NodeCrash struct {
	Node          int `json:"node"`
	CrashMinute   int `json:"crash_minute"`
	RestartMinute int `json:"restart_minute"`
}

// Invariants are the per-cell assertions a scenario must satisfy; Run
// evaluates them into Result.Invariants and Result.OK. Zero values are
// "not asserted".
type Invariants struct {
	// ReconcileExact requires the realtime counters to agree exactly
	// with the batch rollup job over the scenario's warehouse day —
	// after every outage has backfilled.
	ReconcileExact bool `json:"reconcile_exact,omitempty"`
	// ExactlyOnce requires every event accepted by a daemon to land in
	// the warehouse exactly once.
	ExactlyOnce bool `json:"exactly_once,omitempty"`
	// RequireBackfill requires the outage machinery to have actually
	// engaged: send failures happened, and every spool drained by the
	// end of the day.
	RequireBackfill bool `json:"require_backfill,omitempty"`
	// RequireSpill requires the cell's budgeted rollup job to have
	// spilled (nonzero dataflow spill telemetry).
	RequireSpill bool `json:"require_spill,omitempty"`
	// MinEvents / MinCrowdEvents / MinSendFailures / MinQueueFullWaits
	// are lower bounds on the corresponding Result fields.
	MinEvents         int64 `json:"min_events,omitempty"`
	MinCrowdEvents    int64 `json:"min_crowd_events,omitempty"`
	MinSendFailures   int64 `json:"min_send_failures,omitempty"`
	MinQueueFullWaits int64 `json:"min_queue_full_waits,omitempty"`
	// RequireHandoff requires the cluster fault machinery to have fully
	// engaged: writes were hinted, every hint replayed, the cluster
	// drained, and its scatter-gathered day reconciles exactly with the
	// batch rollups. Needs Cluster and at least one NodeCrashes window.
	RequireHandoff bool `json:"require_handoff,omitempty"`
	// MinDegradedQueries is a lower bound on scatter probes that were
	// answered degraded (served around a dead or failing replica).
	MinDegradedQueries int64 `json:"min_degraded_queries,omitempty"`
}

// Spec is one parsed scenario. Build it with Parse or Load — both
// validate — not by hand.
type Spec struct {
	// Name identifies the scenario in cell filenames and reports.
	Name string `json:"name"`
	// Seed drives every random draw; same spec + same seed = identical
	// event stream. Defaults to 2012.
	Seed int64 `json:"seed,omitempty"`
	// Day is the UTC day the traffic falls into, "YYYY-MM-DD". Defaults
	// to 2012-08-21 (the repo's shared experiment day).
	Day string `json:"day,omitempty"`
	// DurationMinutes is the active window sessions start within;
	// defaults to 1320 (22h), leaving slack so sessions cannot spill
	// past midnight.
	DurationMinutes int `json:"duration_minutes,omitempty"`
	// TotalSessions across all client classes. Defaults to 200.
	TotalSessions int `json:"total_sessions,omitempty"`
	// Regions are the datacenters traffic is routed across (by session
	// hash). Defaults to ["east", "west"].
	Regions []string `json:"regions,omitempty"`
	// ClockSkewMs bounds the per-client clock skew: each session's
	// client timestamps shift by a stable offset in [-skew, +skew] ms.
	ClockSkewMs int64 `json:"clock_skew_ms,omitempty"`

	Clients      []ClientClass `json:"clients"`
	FlashCrowds  []FlashCrowd  `json:"flash_crowds,omitempty"`
	Outages      []Outage      `json:"outages,omitempty"`
	SlowConsumer *SlowConsumer `json:"slow_consumer,omitempty"`
	Cluster      *ClusterSpec  `json:"cluster,omitempty"`
	NodeCrashes  []NodeCrash   `json:"node_crashes,omitempty"`
	Invariants   Invariants    `json:"invariants,omitempty"`

	day time.Time // parsed Day
}

// badField wraps ErrBadField with the offending field and reason.
func badField(field, reason string) error {
	return fmt.Errorf("%w: %s: %s", ErrBadField, field, reason)
}

// Parse decodes and validates a spec. Unknown keys, invalid values,
// fraction sums, and unknown arrival processes all fail with their typed
// error.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	s := &Spec{}
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadField, err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Load reads and parses a spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// validate applies defaults and checks every field, accumulating typed
// errors.
func (s *Spec) validate() error {
	if s.Name == "" {
		return badField("name", "required")
	}
	if s.Seed == 0 {
		s.Seed = 2012
	}
	if s.Day == "" {
		s.Day = "2012-08-21"
	}
	day, err := time.Parse("2006-01-02", s.Day)
	if err != nil {
		return badField("day", fmt.Sprintf("want YYYY-MM-DD, got %q", s.Day))
	}
	s.day = day.UTC()
	if s.DurationMinutes == 0 {
		s.DurationMinutes = 22 * 60
	}
	if s.DurationMinutes < 60 || s.DurationMinutes > 23*60 {
		return badField("duration_minutes", fmt.Sprintf("want 60..1380, got %d", s.DurationMinutes))
	}
	if s.TotalSessions == 0 {
		s.TotalSessions = 200
	}
	if s.TotalSessions < len(s.Clients) {
		return badField("total_sessions", fmt.Sprintf("want >= %d (one session per class), got %d", len(s.Clients), s.TotalSessions))
	}
	if len(s.Regions) == 0 {
		s.Regions = []string{"east", "west"}
	}
	regionSet := map[string]bool{}
	for _, r := range s.Regions {
		if r == "" {
			return badField("regions", "empty region name")
		}
		if regionSet[r] {
			return badField("regions", "duplicate region "+r)
		}
		regionSet[r] = true
	}
	if s.ClockSkewMs < 0 {
		return badField("clock_skew_ms", "must be >= 0")
	}

	if len(s.Clients) == 0 {
		return badField("clients", "at least one client class required")
	}
	sum := 0.0
	seen := map[string]bool{}
	for i := range s.Clients {
		c := &s.Clients[i]
		field := fmt.Sprintf("clients[%d]", i)
		if c.ID == "" {
			return badField(field+".id", "required")
		}
		if seen[c.ID] {
			return badField(field+".id", "duplicate class id "+c.ID)
		}
		seen[c.ID] = true
		if c.RateFraction <= 0 || c.RateFraction > 1 {
			return badField(field+".rate_fraction", fmt.Sprintf("want (0, 1], got %g", c.RateFraction))
		}
		sum += c.RateFraction
		switch c.Arrival.Process {
		case "":
			c.Arrival.Process = ArrivalPoisson
		case ArrivalPoisson, ArrivalUniform:
		case ArrivalGamma:
			if c.Arrival.CV == 0 {
				c.Arrival.CV = 2
			}
			if c.Arrival.CV <= 0 {
				return badField(field+".arrival.cv", fmt.Sprintf("want > 0, got %g", c.Arrival.CV))
			}
		default:
			return fmt.Errorf("%w: %s.arrival.process: %q", ErrUnknownArrival, field, c.Arrival.Process)
		}
		if c.LoggedOutFraction != nil && (*c.LoggedOutFraction < 0 || *c.LoggedOutFraction > 1) {
			return badField(field+".logged_out_fraction", "want [0, 1]")
		}
		if c.SignupFraction != nil && (*c.SignupFraction < 0 || *c.SignupFraction > 1) {
			return badField(field+".signup_fraction", "want [0, 1]")
		}
		if c.MeanPageVisits < 0 {
			return badField(field+".mean_page_visits", "must be >= 0")
		}
	}
	if math.Abs(sum-1) > 1e-3 {
		return fmt.Errorf("%w: got %.4f", ErrBadFractions, sum)
	}

	for i, fc := range s.FlashCrowds {
		field := fmt.Sprintf("flash_crowds[%d]", i)
		if fc.Subtree == "" {
			return badField(field+".subtree", "required")
		}
		if fc.Multiplier < 2 {
			return badField(field+".multiplier", fmt.Sprintf("want >= 2, got %d", fc.Multiplier))
		}
		if fc.StartMinute < 0 || fc.EndMinute <= fc.StartMinute || fc.EndMinute > s.DurationMinutes {
			return badField(field, fmt.Sprintf("window [%d, %d) must be ordered and within 0..%d",
				fc.StartMinute, fc.EndMinute, s.DurationMinutes))
		}
	}
	for i, o := range s.Outages {
		field := fmt.Sprintf("outages[%d]", i)
		if !regionSet[o.Region] {
			return badField(field+".region", fmt.Sprintf("%q is not in regions", o.Region))
		}
		if o.StartMinute < 0 || o.EndMinute <= o.StartMinute || o.EndMinute > s.DurationMinutes {
			return badField(field, fmt.Sprintf("window [%d, %d) must be ordered and within 0..%d",
				o.StartMinute, o.EndMinute, s.DurationMinutes))
		}
	}
	if sc := s.SlowConsumer; sc != nil {
		if sc.ApplyDelayMs <= 0 {
			return badField("slow_consumer.apply_delay_ms", "want > 0")
		}
		if sc.QueueDepth == 0 {
			sc.QueueDepth = 2
		}
		if sc.QueueDepth < 0 {
			return badField("slow_consumer.queue_depth", "must be >= 0")
		}
	}
	if cs := s.Cluster; cs != nil {
		if cs.Nodes < 2 || cs.Nodes > 16 {
			return badField("cluster.nodes", fmt.Sprintf("want 2..16, got %d", cs.Nodes))
		}
		if cs.ReplicationFactor == 0 {
			cs.ReplicationFactor = 2
		}
		if cs.ReplicationFactor < 1 || cs.ReplicationFactor > cs.Nodes {
			return badField("cluster.replication_factor", fmt.Sprintf("want 1..%d, got %d", cs.Nodes, cs.ReplicationFactor))
		}
		if cs.Partitions == 0 {
			cs.Partitions = 16
		}
		if cs.Partitions < 1 || cs.Partitions > 64 {
			return badField("cluster.partitions", fmt.Sprintf("want 1..64, got %d", cs.Partitions))
		}
	}
	if len(s.NodeCrashes) > 0 && s.Cluster == nil {
		return badField("node_crashes", "requires a cluster")
	}
	for i, nc := range s.NodeCrashes {
		field := fmt.Sprintf("node_crashes[%d]", i)
		if nc.Node < 0 || nc.Node >= s.Cluster.Nodes {
			return badField(field+".node", fmt.Sprintf("want 0..%d, got %d", s.Cluster.Nodes-1, nc.Node))
		}
		if nc.CrashMinute < 0 || nc.RestartMinute <= nc.CrashMinute || nc.RestartMinute > s.DurationMinutes {
			return badField(field, fmt.Sprintf("window [%d, %d) must be ordered and within 0..%d",
				nc.CrashMinute, nc.RestartMinute, s.DurationMinutes))
		}
	}
	if s.Invariants.RequireHandoff && (s.Cluster == nil || len(s.NodeCrashes) == 0) {
		return badField("invariants.require_handoff", "requires cluster and node_crashes")
	}
	return nil
}

// DayStart returns the UTC midnight the scenario's traffic falls after.
func (s *Spec) DayStart() time.Time { return s.day }

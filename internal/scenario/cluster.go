package scenario

import (
	"fmt"
	"os"
	"time"

	"unilog/internal/birdbrain"
	"unilog/internal/cluster"
	"unilog/internal/hdfs"
	"unilog/internal/zk"
)

// clusterHarness drives the replicated-cluster half of a scenario run:
// a durable N-node cluster tapped in parallel with the single counter,
// the spec's node-crash windows applied on a minute-stepped manual
// clock, periodic scatter-gather probes (so degraded serving during an
// outage is observed, not assumed), and an end-of-day settle loop that
// lets detection, backoff, and hint replay finish inside the day.
type clusterHarness struct {
	spec    *Spec
	c       *cluster.Cluster
	scatter *birdbrain.Scatter
	clock   *zk.ManualClock
	day     time.Time
	dir     string

	curMinute int

	probes   int64
	degraded int64
	partial  int64
}

// probeEvery is the scatter-probe cadence in simulated minutes: dense
// enough that a multi-hour crash window is probed many times, sparse
// enough to stay a rounding error next to ingestion.
const probeEvery = 5

// Detector and retry timing for scenario clusters. The clock advances
// one simulated minute per step, so heartbeats are minutes apart;
// suspicion at 2.5 minutes of silence and death at 5 keep healthy nodes
// from flapping while still detecting a crash well inside any
// meaningful fault window.
const (
	scenarioHeartbeat    = time.Minute
	scenarioSuspectAfter = 150 * time.Second
	scenarioDeadAfter    = 300 * time.Second
	scenarioRetryBase    = 500 * time.Millisecond
	scenarioRetryCap     = 30 * time.Second
	scenarioHintAfter    = 2 * time.Minute
)

func newClusterHarness(spec *Spec, clock *zk.ManualClock) (*clusterHarness, error) {
	dir, err := os.MkdirTemp("", "scenario-cluster-")
	if err != nil {
		return nil, err
	}
	c, err := cluster.New(cluster.Config{
		Nodes:             spec.Cluster.Nodes,
		ReplicationFactor: spec.Cluster.ReplicationFactor,
		Partitions:        spec.Cluster.Partitions,
		Clock:             clock,
		Dir:               dir,
		HeartbeatEvery:    scenarioHeartbeat,
		SuspectAfter:      scenarioSuspectAfter,
		DeadAfter:         scenarioDeadAfter,
		RetryBase:         scenarioRetryBase,
		RetryCap:          scenarioRetryCap,
		HintAfter:         scenarioHintAfter,
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	c.Publish(nil)
	h := &clusterHarness{
		spec:    spec,
		c:       c,
		scatter: birdbrain.NewScatter(c),
		clock:   clock,
		day:     spec.DayStart(),
		dir:     dir,
	}
	h.applyFaults(0)
	return h, nil
}

func (h *clusterHarness) close() {
	h.c.Close()
	os.RemoveAll(h.dir)
}

// applyFaults fires the crash/restart edges scheduled for minute m.
func (h *clusterHarness) applyFaults(m int) error {
	for _, nc := range h.spec.NodeCrashes {
		if nc.CrashMinute == m {
			h.c.Crash(nc.Node)
		}
		if nc.RestartMinute == m {
			if err := h.c.Restart(nc.Node); err != nil {
				return fmt.Errorf("scenario %s: restart node %d at minute %d: %w",
					h.spec.Name, nc.Node, m, err)
			}
		}
	}
	return nil
}

// probe issues one scatter query over the day-so-far window, rotating
// verbs so PathSum, TopK, and Series all get exercised against whatever
// membership the minute has, and records how the fan went.
func (h *clusterHarness) probe(m int) {
	from, to := h.day, h.day.Add(time.Duration(m+1)*time.Minute)
	var meta birdbrain.QueryMeta
	switch (m / probeEvery) % 3 {
	case 0:
		_, meta = h.scatter.PathSum("web", from, to)
	case 1:
		_, meta = h.scatter.TopK("", 3, from, to)
	case 2:
		_, meta = h.scatter.Series("web", from, to)
	}
	h.probes++
	if meta.Degraded {
		h.degraded++
	}
	if meta.Partial {
		h.partial++
	}
}

// advanceTo walks the manual clock minute by minute up to the given
// minute of the day: each step advances one minute, fires that minute's
// crash/restart edges, ticks the cluster (heartbeats, detection, retry,
// replay), probes on the cadence, and hands whole hours to onHour as
// they complete. The single-counter path jumps the clock hour to hour;
// the cluster cannot — failure detection and backoff live between the
// hours.
func (h *clusterHarness) advanceTo(minute int, onHour func(hr int) error) error {
	for m := h.curMinute + 1; m <= minute; m++ {
		h.clock.Advance(time.Minute)
		if err := h.applyFaults(m); err != nil {
			return err
		}
		h.c.Tick()
		if m%60 == 0 {
			if err := onHour(m / 60); err != nil {
				return err
			}
		}
		if m%probeEvery == 0 {
			h.probe(m)
		}
	}
	if minute > h.curMinute {
		h.curMinute = minute
	}
	return nil
}

// drain runs the day's tail after the last tap input: keep ticking —
// the clock staying strictly inside the day — until every send queue
// and hint has drained. Validation closes every fault window inside the
// active window and caps DurationMinutes at 23h, so the loop always has
// at least an hour of simulated time, far beyond detection + replay.
func (h *clusterHarness) drain() error {
	h.c.Tick()
	for m := h.curMinute + 1; m <= 23*60+59 && !h.c.Drained(); m++ {
		h.clock.Advance(time.Minute)
		h.c.Tick()
		h.curMinute = m
	}
	if !h.c.Drained() {
		return fmt.Errorf("scenario %s: cluster failed to drain by end of day: %+v",
			h.spec.Name, h.c.Stats())
	}
	h.c.Sync()
	return nil
}

// finish reconciles the cluster's scatter-gathered day against the
// batch rollups and writes the cluster fields into the result.
func (h *clusterHarness) finish(res *Result, wh *hdfs.FS) error {
	report, meta, err := h.scatter.Reconcile(wh, h.day)
	if err != nil {
		return err
	}
	if meta.Partial {
		return fmt.Errorf("scenario %s: cluster reconcile fan was partial: %+v", h.spec.Name, meta)
	}
	s := h.c.Stats()
	res.ClusterNodes = s.Nodes
	res.ClusterReplication = s.Replication
	res.ClusterReconcileOK = report.OK()
	res.ClusterReconcileDiffs = report.MissingN + report.ExtraN + report.MismatchN
	res.ClusterDrained = h.c.Drained()
	res.HandoffHinted = s.Hinted
	res.HandoffReplayed = s.Replayed
	res.NodeCrashes = s.NodeCrashes
	res.NodeRestarts = s.NodeRestarts
	res.DetectorDeaths = s.Deaths
	res.DetectorRevivals = s.Revivals
	res.ScatterProbes = h.probes
	res.DegradedQueries = h.degraded
	res.PartialQueries = h.partial
	return nil
}

package scenario

import (
	"testing"
)

// TestRunOutageBackfillCell is the end-to-end proof the CI matrix relies
// on: a region goes dark mid-day, its daemons spool, the spools replay
// after the window, and the cell ends exactly-once with the realtime
// counters agreeing exactly with the batch rollups — Reconcile(day)
// exact after backfill.
func TestRunOutageBackfillCell(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "outage-test",
		"total_sessions": 60,
		"regions": ["east", "west"],
		"clients": [
			{"id": "web", "rate_fraction": 0.7, "arrival": {"process": "poisson"}},
			{"id": "mobile", "rate_fraction": 0.3, "arrival": {"process": "gamma", "cv": 2}}
		],
		"outages": [{"region": "west", "start_minute": 300, "end_minute": 480}],
		"invariants": {
			"reconcile_exact": true,
			"exactly_once": true,
			"require_backfill": true,
			"min_send_failures": 1
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec, RunConfig{Name: "test", Shards: 2, MemoryBudgetBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 {
		t.Fatal("no events ran")
	}
	if res.SendFailures == 0 {
		t.Fatal("outage injected no send failures — the region never went dark")
	}
	if res.SpooledAtEnd != 0 {
		t.Fatalf("%d entries still spooled — backfill did not complete", res.SpooledAtEnd)
	}
	if !res.ExactlyOnce {
		t.Fatalf("accepted %d events but warehouse holds %d", res.Events, res.InWarehouse)
	}
	if !res.ReconcileOK {
		t.Fatalf("reconcile diverged after backfill: %d diffs over %d batch rows",
			res.ReconcileDiffs, res.ReconcileBatchRows)
	}
	if !res.OK {
		t.Fatalf("invariants failed: %+v", res.Invariants)
	}
	if res.Telemetry.Series["realtime.ingest.events"] != res.Events {
		t.Fatalf("telemetry ingest %d != accepted %d",
			res.Telemetry.Series["realtime.ingest.events"], res.Events)
	}
}

// TestRunFlashCrowdCell drives the other vertical: a subtree spike must
// amplify traffic, land exactly-once, and still reconcile exactly.
func TestRunFlashCrowdCell(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "crowd-test",
		"total_sessions": 40,
		"regions": ["east"],
		"clients": [{"id": "web", "rate_fraction": 1.0}],
		"flash_crowds": [
			{"subtree": "web:home", "start_minute": 600, "end_minute": 780, "multiplier": 20}
		],
		"invariants": {
			"reconcile_exact": true,
			"exactly_once": true,
			"min_crowd_events": 1
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec, RunConfig{Name: "test", Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.CrowdEvents == 0 {
		t.Fatal("flash crowd produced no synthetic events")
	}
	if !res.OK {
		t.Fatalf("invariants failed: %+v", res.Invariants)
	}
}

func TestInvariantFailureIsReported(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "impossible",
		"total_sessions": 10,
		"regions": ["east"],
		"clients": [{"id": "web", "rate_fraction": 1.0}],
		"invariants": {"min_send_failures": 1}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec, RunConfig{Name: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("cell with no outage cannot satisfy min_send_failures, yet OK=true")
	}
	found := false
	for _, c := range res.Invariants {
		if c.Name == "min_send_failures" && !c.OK {
			found = true
		}
	}
	if !found {
		t.Fatalf("failed invariant not reported: %+v", res.Invariants)
	}
}

package scenario

import (
	"math"
	"math/rand"
	"time"
)

// sessionStarts draws n session start offsets in [0, window) for one
// client class: n inter-arrival gaps from the class's process, summed
// and rescaled so the last start lands at window·n/(n+1). The rescale
// keeps every scenario inside its day regardless of the draw, while
// preserving the process's shape — a gamma burst stays a burst, it is
// just measured in window-fractions instead of absolute seconds.
// Everything flows from rng, so one seed reproduces one schedule.
func sessionStarts(a Arrival, n int, window time.Duration, rng *rand.Rand) []time.Duration {
	if n <= 0 {
		return nil
	}
	gaps := make([]float64, n)
	for i := range gaps {
		gaps[i] = interArrival(a, rng)
	}
	starts := make([]time.Duration, n)
	cum := 0.0
	for i, g := range gaps {
		cum += g
		starts[i] = time.Duration(cum) // placeholder, rescaled below
	}
	span := float64(window) * float64(n) / float64(n+1)
	scale := span / cum
	cum = 0.0
	for i, g := range gaps {
		cum += g
		starts[i] = time.Duration(cum * scale)
	}
	return starts
}

// interArrival draws one unit-rate gap from the process. The absolute
// rate is irrelevant — sessionStarts rescales — only the shape of the
// distribution matters.
func interArrival(a Arrival, rng *rand.Rand) float64 {
	switch a.Process {
	case ArrivalGamma:
		// Inter-arrival CV of c comes from a gamma with shape k = 1/c²
		// (CV of gamma(k, θ) is 1/√k). CV > 1 clumps arrivals into
		// bursts with long silences; CV < 1 regularizes them.
		k := 1 / (a.CV * a.CV)
		return gammaSample(k, rng)
	case ArrivalUniform:
		return rng.Float64()
	default: // poisson: exponential gaps
		return rng.ExpFloat64()
	}
}

// gammaSample draws from gamma(shape k, scale 1) via Marsaglia–Tsang,
// with the standard boost for k < 1.
func gammaSample(k float64, rng *rand.Rand) float64 {
	if k < 1 {
		// gamma(k) = gamma(k+1) · U^{1/k}
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(k+1, rng) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Package elephantbird is the analog of Twitter's Elephant Bird (§3):
// "our system ... which automatically generates Hadoop record readers and
// writers for arbitrary Protocol Buffer and Thrift messages." Given a
// schema description of a flat record, it derives codecs and a
// dataflow.InputFormat for either serialization framework — the "regular
// and repetitive" deserialization code application teams would otherwise
// hand-write per category.
//
// A Descriptor lists the record's fields (name, kind, field id). From it:
//
//   - EncodeThrift / EncodeProto serialize a tuple;
//   - DecodeThrift / DecodeProto parse a record into a dataflow.Tuple,
//     skipping unknown fields;
//   - Format returns an InputFormat that loads a whole category, so a
//     legacy or bespoke log needs only a Descriptor, not custom reader
//     code.
package elephantbird

import (
	"fmt"

	"unilog/internal/dataflow"
	"unilog/internal/hdfs"
	"unilog/internal/proto"
	"unilog/internal/recordio"
	"unilog/internal/thrift"
)

// Kind is a field's logical type.
type Kind int

// Supported field kinds.
const (
	KindI64 Kind = iota
	KindString
	KindBool
	KindDouble
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindI64:
		return "i64"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindDouble:
		return "double"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Field describes one record field. ID doubles as the Thrift field id and
// the protobuf field number.
type Field struct {
	Name string
	Kind Kind
	ID   int16
}

// Encoding selects the serialization framework.
type Encoding int

// Encodings supported by the generated codecs.
const (
	ThriftCompact Encoding = iota
	ThriftBinary
	Protobuf
)

// Descriptor is the schema of a flat record type.
type Descriptor struct {
	// Name identifies the record type (diagnostics only).
	Name   string
	Fields []Field
}

// Schema returns the dataflow schema the decoder produces.
func (d *Descriptor) Schema() dataflow.Schema {
	s := make(dataflow.Schema, len(d.Fields))
	for i, f := range d.Fields {
		s[i] = f.Name
	}
	return s
}

// Validate rejects duplicate names or ids.
func (d *Descriptor) Validate() error {
	names := make(map[string]bool, len(d.Fields))
	ids := make(map[int16]bool, len(d.Fields))
	for _, f := range d.Fields {
		if f.Name == "" || names[f.Name] {
			return fmt.Errorf("elephantbird: %s: duplicate or empty field name %q", d.Name, f.Name)
		}
		if f.ID <= 0 || ids[f.ID] {
			return fmt.Errorf("elephantbird: %s: duplicate or non-positive field id %d", d.Name, f.ID)
		}
		names[f.Name] = true
		ids[f.ID] = true
	}
	return nil
}

// thriftType maps a kind to its Thrift wire type.
func thriftType(k Kind) thrift.Type {
	switch k {
	case KindI64:
		return thrift.I64
	case KindString:
		return thrift.STRING
	case KindBool:
		return thrift.BOOL
	case KindDouble:
		return thrift.DOUBLE
	}
	return thrift.STOP
}

// EncodeThrift serializes tuple values (aligned with d.Fields) using the
// chosen Thrift protocol.
func (d *Descriptor) EncodeThrift(t dataflow.Tuple, enc Encoding) ([]byte, error) {
	if len(t) != len(d.Fields) {
		return nil, fmt.Errorf("elephantbird: %s: tuple has %d values, want %d", d.Name, len(t), len(d.Fields))
	}
	var e thrift.Encoder
	switch enc {
	case ThriftCompact:
		e = thrift.NewCompactEncoder()
	case ThriftBinary:
		e = thrift.NewBinaryEncoder()
	default:
		return nil, fmt.Errorf("elephantbird: %v is not a thrift encoding", enc)
	}
	e.WriteStructBegin()
	for i, f := range d.Fields {
		e.WriteFieldBegin(thriftType(f.Kind), f.ID)
		switch f.Kind {
		case KindI64:
			e.WriteI64(t[i].(int64))
		case KindString:
			e.WriteString(t[i].(string))
		case KindBool:
			e.WriteBool(t[i].(bool))
		case KindDouble:
			e.WriteDouble(t[i].(float64))
		}
	}
	e.WriteFieldStop()
	e.WriteStructEnd()
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

// EncodeProto serializes tuple values as a protobuf message.
func (d *Descriptor) EncodeProto(t dataflow.Tuple) ([]byte, error) {
	if len(t) != len(d.Fields) {
		return nil, fmt.Errorf("elephantbird: %s: tuple has %d values, want %d", d.Name, len(t), len(d.Fields))
	}
	e := proto.NewEncoder()
	for i, f := range d.Fields {
		switch f.Kind {
		case KindI64:
			e.Int64(int(f.ID), t[i].(int64))
		case KindString:
			e.String(int(f.ID), t[i].(string))
		case KindBool:
			e.Bool(int(f.ID), t[i].(bool))
		case KindDouble:
			e.Double(int(f.ID), t[i].(float64))
		}
	}
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

// Encode serializes with the given encoding.
func (d *Descriptor) Encode(t dataflow.Tuple, enc Encoding) ([]byte, error) {
	if enc == Protobuf {
		return d.EncodeProto(t)
	}
	return d.EncodeThrift(t, enc)
}

// zeroValue gives absent fields their kind's zero.
func zeroValue(k Kind) dataflow.Value {
	switch k {
	case KindI64:
		return int64(0)
	case KindString:
		return ""
	case KindBool:
		return false
	case KindDouble:
		return float64(0)
	}
	return nil
}

// DecodeThrift parses a Thrift record into a tuple, skipping unknown
// fields.
func (d *Descriptor) DecodeThrift(rec []byte, enc Encoding) (dataflow.Tuple, error) {
	var dec thrift.Decoder
	switch enc {
	case ThriftCompact:
		dec = thrift.NewCompactDecoder(rec)
	case ThriftBinary:
		dec = thrift.NewBinaryDecoder(rec)
	default:
		return nil, fmt.Errorf("elephantbird: %v is not a thrift encoding", enc)
	}
	byID := make(map[int16]int, len(d.Fields))
	for i, f := range d.Fields {
		byID[f.ID] = i
	}
	out := make(dataflow.Tuple, len(d.Fields))
	for i, f := range d.Fields {
		out[i] = zeroValue(f.Kind)
	}
	if err := dec.ReadStructBegin(); err != nil {
		return nil, err
	}
	for {
		ft, id, err := dec.ReadFieldBegin()
		if err != nil {
			return nil, err
		}
		if ft == thrift.STOP {
			break
		}
		i, known := byID[id]
		if !known || thriftType(d.Fields[i].Kind) != ft {
			if err := dec.Skip(ft); err != nil {
				return nil, err
			}
			continue
		}
		switch d.Fields[i].Kind {
		case KindI64:
			out[i], err = dec.ReadI64()
		case KindString:
			out[i], err = dec.ReadString()
		case KindBool:
			out[i], err = dec.ReadBool()
		case KindDouble:
			out[i], err = dec.ReadDouble()
		}
		if err != nil {
			return nil, err
		}
	}
	return out, dec.ReadStructEnd()
}

// DecodeProto parses a protobuf record into a tuple, skipping unknown
// fields.
func (d *Descriptor) DecodeProto(rec []byte) (dataflow.Tuple, error) {
	byID := make(map[int]int, len(d.Fields))
	for i, f := range d.Fields {
		byID[int(f.ID)] = i
	}
	out := make(dataflow.Tuple, len(d.Fields))
	for i, f := range d.Fields {
		out[i] = zeroValue(f.Kind)
	}
	dec := proto.NewDecoder(rec)
	for {
		field, wire, ok, err := dec.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		i, known := byID[field]
		if !known {
			if err := dec.Skip(wire); err != nil {
				return nil, err
			}
			continue
		}
		switch d.Fields[i].Kind {
		case KindI64:
			if wire != proto.WireVarint {
				return nil, fmt.Errorf("elephantbird: field %s: wire %v", d.Fields[i].Name, wire)
			}
			out[i], err = dec.Int64()
		case KindBool:
			if wire != proto.WireVarint {
				return nil, fmt.Errorf("elephantbird: field %s: wire %v", d.Fields[i].Name, wire)
			}
			out[i], err = dec.Bool()
		case KindString:
			if wire != proto.WireBytes {
				return nil, fmt.Errorf("elephantbird: field %s: wire %v", d.Fields[i].Name, wire)
			}
			out[i], err = dec.String()
		case KindDouble:
			if wire != proto.WireFixed64 {
				return nil, fmt.Errorf("elephantbird: field %s: wire %v", d.Fields[i].Name, wire)
			}
			out[i], err = dec.Double()
		}
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Decode parses with the given encoding.
func (d *Descriptor) Decode(rec []byte, enc Encoding) (dataflow.Tuple, error) {
	if enc == Protobuf {
		return d.DecodeProto(rec)
	}
	return d.DecodeThrift(rec, enc)
}

// Format derives a dataflow.InputFormat for a category serialized with the
// given encoding — the generated "record reader".
type Format struct {
	Desc *Descriptor
	Enc  Encoding
}

var _ dataflow.InputFormat = Format{}

// Schema implements dataflow.InputFormat.
func (f Format) Schema() dataflow.Schema { return f.Desc.Schema() }

// Splits implements dataflow.InputFormat (one split per data file).
func (f Format) Splits(fs *hdfs.FS, dir string) ([]dataflow.Split, error) {
	return dataflow.RawRecordFormat{}.Splits(fs, dir)
}

// ReadSplit implements dataflow.InputFormat.
func (f Format) ReadSplit(fs *hdfs.FS, s dataflow.Split, emit func(dataflow.Tuple) error) error {
	data, err := fs.ReadFile(s.Path)
	if err != nil {
		return err
	}
	return recordio.ScanGzipFile(data, func(rec []byte) error {
		t, err := f.Desc.Decode(rec, f.Enc)
		if err != nil {
			return fmt.Errorf("elephantbird: %s: %w", s.Path, err)
		}
		return emit(t)
	})
}

package elephantbird

import (
	"bytes"
	"testing"
	"testing/quick"

	"unilog/internal/dataflow"
	"unilog/internal/hdfs"
	"unilog/internal/recordio"
	"unilog/internal/thrift"
)

func testDesc() *Descriptor {
	return &Descriptor{
		Name: "ad_click",
		Fields: []Field{
			{Name: "user_id", Kind: KindI64, ID: 1},
			{Name: "campaign", Kind: KindString, ID: 2},
			{Name: "converted", Kind: KindBool, ID: 3},
			{Name: "bid", Kind: KindDouble, ID: 4},
		},
	}
}

func sampleTuple() dataflow.Tuple {
	return dataflow.Tuple{int64(42), "spring_sale", true, 1.25}
}

func TestValidate(t *testing.T) {
	if err := testDesc().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Descriptor{Name: "x", Fields: []Field{
		{Name: "a", Kind: KindI64, ID: 1}, {Name: "a", Kind: KindI64, ID: 2},
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("duplicate name accepted")
	}
	bad2 := &Descriptor{Name: "x", Fields: []Field{
		{Name: "a", Kind: KindI64, ID: 1}, {Name: "b", Kind: KindI64, ID: 1},
	}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestRoundTripAllEncodings(t *testing.T) {
	d := testDesc()
	in := sampleTuple()
	for _, enc := range []Encoding{ThriftCompact, ThriftBinary, Protobuf} {
		rec, err := d.Encode(in, enc)
		if err != nil {
			t.Fatalf("encode %v: %v", enc, err)
		}
		out, err := d.Decode(rec, enc)
		if err != nil {
			t.Fatalf("decode %v: %v", enc, err)
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("%v: field %d = %v, want %v", enc, i, out[i], in[i])
			}
		}
	}
}

// TestSchemaEvolution: records written by a newer descriptor with extra
// fields decode under the old descriptor, both frameworks.
func TestSchemaEvolution(t *testing.T) {
	v1 := testDesc()
	v2 := testDesc()
	v2.Fields = append(v2.Fields,
		Field{Name: "experiment", Kind: KindString, ID: 9},
		Field{Name: "revenue", Kind: KindDouble, ID: 10},
	)
	in := append(sampleTuple(), "holdback", 9.99)
	for _, enc := range []Encoding{ThriftCompact, ThriftBinary, Protobuf} {
		rec, err := v2.Encode(in, enc)
		if err != nil {
			t.Fatal(err)
		}
		out, err := v1.Decode(rec, enc)
		if err != nil {
			t.Fatalf("%v: old reader failed on new record: %v", enc, err)
		}
		if out[0] != int64(42) || out[1] != "spring_sale" {
			t.Fatalf("%v: out = %v", enc, out)
		}
	}
}

func TestMissingFieldsGetZeros(t *testing.T) {
	d := testDesc()
	// Encode with only field 2 present.
	enc := thrift.NewCompactEncoder()
	enc.WriteStructBegin()
	enc.WriteFieldBegin(thrift.STRING, 2)
	enc.WriteString("only")
	enc.WriteFieldStop()
	enc.WriteStructEnd()
	out, err := d.DecodeThrift(enc.Bytes(), ThriftCompact)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != int64(0) || out[1] != "only" || out[2] != false || out[3] != float64(0) {
		t.Fatalf("out = %v", out)
	}
}

func TestWrongWireTypeSkipped(t *testing.T) {
	d := testDesc()
	// Field 1 declared I64 but encoded as a string: skipped, zero value.
	enc := thrift.NewCompactEncoder()
	enc.WriteStructBegin()
	enc.WriteFieldBegin(thrift.STRING, 1)
	enc.WriteString("not an int")
	enc.WriteFieldStop()
	enc.WriteStructEnd()
	out, err := d.DecodeThrift(enc.Bytes(), ThriftCompact)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != int64(0) {
		t.Fatalf("out[0] = %v", out[0])
	}
}

func TestGeneratedInputFormat(t *testing.T) {
	d := testDesc()
	fs := hdfs.New(0)
	var buf bytes.Buffer
	w := recordio.NewGzipWriter(&buf)
	const n = 25
	for i := 0; i < n; i++ {
		rec, err := d.EncodeProto(dataflow.Tuple{int64(i), "c", i%2 == 0, float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/logs/ad_click/part-00000.gz", buf.Bytes()); err != nil {
		t.Fatal(err)
	}

	j := dataflow.NewJob("ads", fs)
	ds, err := j.Load("/logs/ad_click", Format{Desc: d, Enc: Protobuf})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := ds.Count(); err != nil || got != int64(n) {
		t.Fatalf("loaded %d, %v", got, err)
	}
	// The loaded relation is queryable with the dataflow operators.
	g, err := ds.GroupBy("converted")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	res, err := g.Aggregate(dataflow.Count("n"), dataflow.Sum("user_id", "sum"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := res.Count(); err != nil || got != 2 {
		t.Fatalf("groups = %d, %v", got, err)
	}
}

func TestEncodeArityMismatch(t *testing.T) {
	d := testDesc()
	if _, err := d.Encode(dataflow.Tuple{int64(1)}, Protobuf); err == nil {
		t.Fatal("short tuple accepted")
	}
}

// TestRoundTripProperty fuzzes values through all three codecs.
func TestRoundTripProperty(t *testing.T) {
	d := testDesc()
	f := func(u int64, s string, b bool, fl float64) bool {
		if fl != fl { // NaN
			return true
		}
		in := dataflow.Tuple{u, s, b, fl}
		for _, enc := range []Encoding{ThriftCompact, ThriftBinary, Protobuf} {
			rec, err := d.Encode(in, enc)
			if err != nil {
				return false
			}
			out, err := d.Decode(rec, enc)
			if err != nil {
				return false
			}
			for i := range in {
				if out[i] != in[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package birdbrain

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"unilog/internal/hdfs"
	"unilog/internal/session"
	"unilog/internal/workload"
)

var day = time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)

func build(t *testing.T) (*hdfs.FS, *workload.Truth) {
	t.Helper()
	cfg := workload.DefaultConfig(day)
	cfg.Users = 120
	cfg.LoggedOutSessions = 60
	evs, truth := workload.New(cfg).Generate()
	fs := hdfs.New(0)
	if err := workload.WriteWarehouse(fs, evs); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := session.BuildDay(fs, day, 0); err != nil {
		t.Fatal(err)
	}
	return fs, truth
}

func TestSummaryMatchesGroundTruth(t *testing.T) {
	fs, truth := build(t)
	s, err := Build(fs, day, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Sessions != truth.Sessions {
		t.Fatalf("sessions = %d, truth %d", s.Sessions, truth.Sessions)
	}
	if s.Events != truth.Events {
		t.Fatalf("events = %d, truth %d", s.Events, truth.Events)
	}
	if s.UniqueUsers != truth.UniqueUsers {
		t.Fatalf("users = %d, truth %d", s.UniqueUsers, truth.UniqueUsers)
	}
	if s.LoggedOutSessions != truth.LoggedOutSessions {
		t.Fatalf("logged out = %d, truth %d", s.LoggedOutSessions, truth.LoggedOutSessions)
	}
	if s.LoggedInSessions+s.LoggedOutSessions != s.Sessions {
		t.Fatal("login split does not sum")
	}
	// Client drill-down matches the generator exactly.
	for client, n := range truth.SessionsPerClient {
		if s.ByClient[client] != n {
			t.Fatalf("client %s = %d, truth %d", client, s.ByClient[client], n)
		}
	}
	// Country drill-down matches.
	for country, n := range truth.SessionsPerCountry {
		if s.ByCountry[country] != n {
			t.Fatalf("country %s = %d, truth %d", country, s.ByCountry[country], n)
		}
	}
	// Duration buckets sum to total sessions.
	var sum int64
	for _, n := range s.ByDuration {
		sum += n
	}
	if sum != s.Sessions {
		t.Fatalf("duration buckets sum %d != %d", sum, s.Sessions)
	}
	if len(s.TopEvents) != 5 || s.TopEvents[0].Count < s.TopEvents[4].Count {
		t.Fatalf("top events = %+v", s.TopEvents)
	}
	if s.MeanSessionSeconds <= 0 {
		t.Fatal("mean session duration not computed")
	}
}

func TestBucketLabel(t *testing.T) {
	cases := map[int32]string{
		0: "<1m", 59: "<1m", 60: "1-5m", 299: "1-5m", 300: "5-15m",
		899: "5-15m", 1799: "15-30m", 3599: "30m-1h", 3600: ">1h", 100000: ">1h",
	}
	for sec, want := range cases {
		if got := BucketLabel(sec); got != want {
			t.Errorf("BucketLabel(%d) = %q, want %q", sec, got, want)
		}
	}
}

func TestRender(t *testing.T) {
	fs, _ := build(t)
	s, err := Build(fs, day, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	s.Render(&buf)
	out := buf.String()
	for _, want := range []string{"BirdBrain daily summary", "sessions by client", "sessions by country", "top events", "web"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestBuildWithoutStore(t *testing.T) {
	fs := hdfs.New(0)
	if _, err := Build(fs, day, 3); err == nil {
		t.Fatal("Build succeeded with no session store")
	}
}

func TestTrendAcrossDays(t *testing.T) {
	fs := hdfs.New(0)
	// Three days of growing traffic.
	for i := 0; i < 3; i++ {
		d := day.AddDate(0, 0, i)
		cfg := workload.DefaultConfig(d)
		cfg.Users = 40 * (i + 1)
		cfg.Seed = int64(100 + i)
		cfg.LoggedOutSessions = 20
		evs, _ := workload.New(cfg).Generate()
		if err := workload.WriteWarehouse(fs, evs); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := session.BuildDay(fs, d, 0); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := BuildTrend(fs, day, 5) // two trailing days unbuilt
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Days) != 3 {
		t.Fatalf("trend days = %d", len(tr.Days))
	}
	// Growth shows through.
	if !(tr.Days[0].Sessions < tr.Days[2].Sessions) {
		t.Fatalf("no growth: %d .. %d", tr.Days[0].Sessions, tr.Days[2].Sessions)
	}
	var buf bytes.Buffer
	tr.Render(&buf)
	if !strings.Contains(buf.String(), "2012-08-23") || !strings.Contains(buf.String(), "█") {
		t.Fatalf("trend render:\n%s", buf.String())
	}
}

func TestBuildTrendEmpty(t *testing.T) {
	if _, err := BuildTrend(hdfs.New(0), day, 3); err == nil {
		t.Fatal("empty trend succeeded")
	}
}

package birdbrain

import (
	"strings"
	"sync"
	"time"

	"unilog/internal/analytics"
	"unilog/internal/dataflow"
	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/realtime"
)

// Lambda serves BirdBrain counting queries with the batch/realtime split
// of a lambda architecture: queries about the current (unsealed) day are
// answered from the realtime counters seconds after the events occur,
// while sealed days come from the warehouse rollup job — the §3.2 daily
// aggregates the batch pipeline publishes. realtime.Reconcile proves the
// two paths compute identical rollup tables, so a metric does not jump
// when its day seals and responsibility hands over from memory to HDFS.
type Lambda struct {
	fs *hdfs.FS
	rt *realtime.Counter
	// now decides which day is "today" (the realtime-served day).
	now func() time.Time

	// MaxSealedDays caps the sealed-day rollup cache; when an insert
	// would exceed it, the least recently used day is evicted and will be
	// recomputed on its next query. Set it before serving; values < 1
	// fall back to DefaultMaxSealedDays.
	MaxSealedDays int

	mu     sync.Mutex
	tick   int64 // LRU clock: bumped on every cache touch
	sealed map[time.Time]*sealedEntry

	// lastToday is the most recent "today" any query observed; when it
	// advances, yesterday's rollup is pre-warmed in the background.
	lastToday time.Time
	// prewarms tracks in-flight pre-warm goroutines (tests and shutdown
	// wait on it).
	prewarms sync.WaitGroup
}

// DefaultMaxSealedDays is the sealed-day cache cap when Lambda.MaxSealedDays
// is unset: a month of dashboards stays warm, and an ad-hoc backfill over
// years of history cannot pin every day in memory.
const DefaultMaxSealedDays = 32

// sealedEntry is one cached sealed-day rollup table plus its LRU stamp.
type sealedEntry struct {
	rollups  map[analytics.RollupKey]int64
	lastUsed int64
}

// Source labels which path of the lambda architecture answered a query.
type Source string

// Sources.
const (
	SourceRealtime  Source = "realtime"
	SourceWarehouse Source = "warehouse"
)

// NewLambda builds a server over the warehouse fs and the live counter.
// now defaults to time.Now; inject a clock for replayed days.
func NewLambda(fs *hdfs.FS, rt *realtime.Counter, now func() time.Time) *Lambda {
	if now == nil {
		now = time.Now
	}
	return &Lambda{
		fs:     fs,
		rt:     rt,
		now:    now,
		sealed: make(map[time.Time]*sealedEntry),
	}
}

// SealedCached reports how many sealed days the cache currently holds.
func (l *Lambda) SealedCached() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sealed)
}

// today reports whether day is the current, realtime-served day.
func (l *Lambda) today(day time.Time) bool {
	return day.Equal(l.now().UTC().Truncate(24 * time.Hour))
}

// maybePrewarm notices the midnight handover: on the first query of a new
// day, yesterday — which just moved from the realtime counters to the
// warehouse — is loaded into the sealed-day cache asynchronously, so the
// first dashboard query after the handover does not pay a cold rollup
// job. Every query path calls this with the current wall "today" and the
// day it is about to serve; when that query is itself for yesterday, the
// spawn is skipped — the synchronous path is already running the job, and
// a duplicate would only double the cost of the exact query the pre-warm
// exists to speed up.
func (l *Lambda) maybePrewarm(today, queryDay time.Time) {
	yesterday := today.AddDate(0, 0, -1)
	l.mu.Lock()
	if l.lastToday.Equal(today) {
		l.mu.Unlock()
		return
	}
	l.lastToday = today
	_, cached := l.sealed[yesterday]
	l.mu.Unlock()
	if cached || queryDay.Equal(yesterday) {
		return
	}
	l.prewarms.Add(1)
	go func() {
		defer l.prewarms.Done()
		// Errors are deliberately dropped: the pre-warm is an optimization,
		// and a failing day will surface its error on the real query.
		_, _ = l.sealedRollups(yesterday)
	}()
}

// WaitPrewarm blocks until any in-flight pre-warm finishes — a test and
// shutdown hook; queries never need it.
func (l *Lambda) WaitPrewarm() { l.prewarms.Wait() }

// sealedRollups computes and caches the batch rollup table of a sealed
// day. The rollup job runs outside the lock so a cold day does not block
// cache hits for other days; concurrent cold queries for the same day may
// duplicate the job, and the first result stored wins. The cache holds at
// most MaxSealedDays entries, evicting the least recently used.
func (l *Lambda) sealedRollups(day time.Time) (map[analytics.RollupKey]int64, error) {
	l.mu.Lock()
	if e, ok := l.sealed[day]; ok {
		l.tick++
		e.lastUsed = l.tick
		l.mu.Unlock()
		tmCacheHits.Inc()
		return e.rollups, nil
	}
	l.mu.Unlock()
	tmCacheMisses.Inc()
	j := dataflow.NewJob("birdbrain-rollups", l.fs)
	r, err := analytics.Rollups(j, day)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tick++
	if e, ok := l.sealed[day]; ok {
		e.lastUsed = l.tick
		return e.rollups, nil
	}
	max := l.MaxSealedDays
	if max < 1 {
		max = DefaultMaxSealedDays
	}
	for len(l.sealed) >= max {
		var coldest time.Time
		oldest := int64(1<<63 - 1)
		for d, e := range l.sealed {
			if e.lastUsed < oldest {
				oldest, coldest = e.lastUsed, d
			}
		}
		delete(l.sealed, coldest)
	}
	l.sealed[day] = &sealedEntry{rollups: r, lastUsed: l.tick}
	return r, nil
}

// EventTotal answers the dashboard's top-line counting query — the total
// of a (possibly rolled-up) event name on one day, summed over countries
// and login status — from whichever path owns that day.
func (l *Lambda) EventTotal(day time.Time, level events.RollupLevel, name string) (int64, Source, error) {
	defer tmEventTotalNs.ObserveSince(time.Now())
	day = day.UTC().Truncate(24 * time.Hour)
	l.maybePrewarm(l.now().UTC().Truncate(24*time.Hour), day)
	if l.today(day) {
		l.rt.Sync()
		return l.rt.RollupTotal(level, name, day, day.Add(24*time.Hour)), SourceRealtime, nil
	}
	r, err := l.sealedRollups(day)
	if err != nil {
		return 0, SourceWarehouse, err
	}
	return analytics.RollupTotal(r, level, name), SourceWarehouse, nil
}

// ClientTotals breaks one day's events down by client — the first level
// of the §3 hierarchy — from whichever path owns the day.
func (l *Lambda) ClientTotals(day time.Time) (map[string]int64, Source, error) {
	defer tmClientTotalsNs.ObserveSince(time.Now())
	day = day.UTC().Truncate(24 * time.Hour)
	l.maybePrewarm(l.now().UTC().Truncate(24*time.Hour), day)
	out := make(map[string]int64)
	if l.today(day) {
		l.rt.Sync()
		for _, pc := range l.rt.TopK("", 1<<30, day, day.Add(24*time.Hour)) {
			out[pc.Path] = pc.Count
		}
		return out, SourceRealtime, nil
	}
	r, err := l.sealedRollups(day)
	if err != nil {
		return nil, SourceWarehouse, err
	}
	// Level-4 rows are (client, *, *, *, *, action); summing them per
	// leading component yields exact per-client totals.
	for k, n := range r {
		if k.Level != events.NumRollupLevels-1 {
			continue
		}
		client := k.Name
		if i := strings.IndexByte(client, ':'); i >= 0 {
			client = client[:i]
		}
		out[client] += n
	}
	return out, SourceWarehouse, nil
}

package birdbrain

import (
	"strings"
	"sync"
	"time"

	"unilog/internal/analytics"
	"unilog/internal/dataflow"
	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/realtime"
)

// Lambda serves BirdBrain counting queries with the batch/realtime split
// of a lambda architecture: queries about the current (unsealed) day are
// answered from the realtime counters seconds after the events occur,
// while sealed days come from the warehouse rollup job — the §3.2 daily
// aggregates the batch pipeline publishes. realtime.Reconcile proves the
// two paths compute identical rollup tables, so a metric does not jump
// when its day seals and responsibility hands over from memory to HDFS.
type Lambda struct {
	fs *hdfs.FS
	rt *realtime.Counter
	// now decides which day is "today" (the realtime-served day).
	now func() time.Time

	mu     sync.Mutex
	sealed map[time.Time]map[analytics.RollupKey]int64
}

// Source labels which path of the lambda architecture answered a query.
type Source string

// Sources.
const (
	SourceRealtime  Source = "realtime"
	SourceWarehouse Source = "warehouse"
)

// NewLambda builds a server over the warehouse fs and the live counter.
// now defaults to time.Now; inject a clock for replayed days.
func NewLambda(fs *hdfs.FS, rt *realtime.Counter, now func() time.Time) *Lambda {
	if now == nil {
		now = time.Now
	}
	return &Lambda{
		fs:     fs,
		rt:     rt,
		now:    now,
		sealed: make(map[time.Time]map[analytics.RollupKey]int64),
	}
}

// today reports whether day is the current, realtime-served day.
func (l *Lambda) today(day time.Time) bool {
	return day.Equal(l.now().UTC().Truncate(24 * time.Hour))
}

// sealedRollups computes and caches the batch rollup table of a sealed
// day. The rollup job runs outside the lock so a cold day does not block
// cache hits for other days; concurrent cold queries for the same day may
// duplicate the job, and the first result stored wins.
func (l *Lambda) sealedRollups(day time.Time) (map[analytics.RollupKey]int64, error) {
	l.mu.Lock()
	r, ok := l.sealed[day]
	l.mu.Unlock()
	if ok {
		return r, nil
	}
	j := dataflow.NewJob("birdbrain-rollups", l.fs)
	r, err := analytics.Rollups(j, day)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	if cached, ok := l.sealed[day]; ok {
		r = cached
	} else {
		l.sealed[day] = r
	}
	l.mu.Unlock()
	return r, nil
}

// EventTotal answers the dashboard's top-line counting query — the total
// of a (possibly rolled-up) event name on one day, summed over countries
// and login status — from whichever path owns that day.
func (l *Lambda) EventTotal(day time.Time, level events.RollupLevel, name string) (int64, Source, error) {
	day = day.UTC().Truncate(24 * time.Hour)
	if l.today(day) {
		l.rt.Sync()
		return l.rt.RollupTotal(level, name, day, day.Add(24*time.Hour)), SourceRealtime, nil
	}
	r, err := l.sealedRollups(day)
	if err != nil {
		return 0, SourceWarehouse, err
	}
	return analytics.RollupTotal(r, level, name), SourceWarehouse, nil
}

// ClientTotals breaks one day's events down by client — the first level
// of the §3 hierarchy — from whichever path owns the day.
func (l *Lambda) ClientTotals(day time.Time) (map[string]int64, Source, error) {
	day = day.UTC().Truncate(24 * time.Hour)
	out := make(map[string]int64)
	if l.today(day) {
		l.rt.Sync()
		for _, pc := range l.rt.TopK("", 1<<30, day, day.Add(24*time.Hour)) {
			out[pc.Path] = pc.Count
		}
		return out, SourceRealtime, nil
	}
	r, err := l.sealedRollups(day)
	if err != nil {
		return nil, SourceWarehouse, err
	}
	// Level-4 rows are (client, *, *, *, *, action); summing them per
	// leading component yields exact per-client totals.
	for k, n := range r {
		if k.Level != events.NumRollupLevels-1 {
			continue
		}
		client := k.Name
		if i := strings.IndexByte(client, ':'); i >= 0 {
			client = client[:i]
		}
		out[client] += n
	}
	return out, SourceWarehouse, nil
}

package birdbrain

import (
	"testing"
	"time"

	"unilog/internal/cluster"
	"unilog/internal/events"
	"unilog/internal/geo"
	"unilog/internal/realtime"
	"unilog/internal/zk"
)

var scatterT0 = time.Date(2012, 8, 21, 14, 0, 0, 0, time.UTC)

func scatterEv(name string, at time.Time, user int64) *events.ClientEvent {
	return &events.ClientEvent{
		Initiator: events.InitiatorClientUser,
		Name:      events.MustParseName(name),
		UserID:    user,
		SessionID: "sess",
		IP:        geo.IPFor("us", user),
		Timestamp: at.UnixMilli(),
	}
}

var scatterNames = []string{
	"web:home:mentions:stream:avatar:profile_click",
	"web:home:timeline:stream:tweet:impression",
	"web:profile:header:card:follow:click",
	"iphone:home:timeline:stream:tweet:impression",
	"iphone:search:results:cell:tweet:open",
	"android:home:timeline:stream:tweet:favorite",
}

// A scatter over a healthy cluster must agree exactly with a single
// reference counter on every verb, with clean meta.
func TestScatterMatchesReference(t *testing.T) {
	clk := zk.NewManualClock(scatterT0)
	c, err := cluster.New(cluster.Config{Nodes: 3, ReplicationFactor: 2, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ref := realtime.New(realtime.Config{Shards: 2})
	defer ref.Close()

	for i, name := range scatterNames {
		for j := 0; j <= i*3; j++ {
			e := scatterEv(name, scatterT0.Add(time.Duration(j)*time.Minute), int64(j))
			c.Ingest(e)
			ref.Ingest(e)
		}
	}
	c.Tick()
	ref.Sync()
	s := NewScatter(c)
	from, to := scatterT0, scatterT0.Add(time.Hour)

	for _, path := range append([]string{"web", "iphone", "android", "web:home"}, scatterNames...) {
		got, meta := s.PathSum(path, from, to)
		if want := ref.PathSum(path, from, to); got != want {
			t.Errorf("PathSum(%q) = %d, want %d", path, got, want)
		}
		if meta.Degraded || meta.Partial || meta.Answered != meta.Partitions {
			t.Errorf("PathSum(%q) meta = %+v, want clean full fan", path, meta)
		}
	}

	gotSeries, _ := s.Series("web", from, to)
	wantSeries := ref.Series("web", from, to)
	if len(gotSeries) != len(wantSeries) {
		t.Fatalf("Series length %d, want %d", len(gotSeries), len(wantSeries))
	}
	for i := range wantSeries {
		if gotSeries[i] != wantSeries[i] {
			t.Errorf("Series[%d] = %d, want %d", i, gotSeries[i], wantSeries[i])
		}
	}

	gotTop, _ := s.TopK("", 3, from, to)
	wantTop := ref.TopK("", 3, from, to)
	if len(gotTop) != len(wantTop) {
		t.Fatalf("TopK = %v, want %v", gotTop, wantTop)
	}
	for i := range wantTop {
		if gotTop[i] != wantTop[i] {
			t.Errorf("TopK[%d] = %v, want %v", i, gotTop[i], wantTop[i])
		}
	}
}

// With one node of an R=2 cluster down, every partition still has a
// live replica: queries stay exact but must be marked degraded. With
// two of three down, partitions whose whole replica set is dead drop
// out: the result must be marked partial.
func TestScatterDegradedAndPartial(t *testing.T) {
	clk := zk.NewManualClock(scatterT0)
	c, err := cluster.New(cluster.Config{Nodes: 3, ReplicationFactor: 2, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ref := realtime.New(realtime.Config{Shards: 2})
	defer ref.Close()

	for _, name := range scatterNames {
		for j := 0; j < 40; j++ {
			e := scatterEv(name, scatterT0, int64(j))
			c.Ingest(e)
			ref.Ingest(e)
		}
	}
	c.Tick()
	ref.Sync()
	s := NewScatter(c)
	from, to := scatterT0, scatterT0.Add(time.Hour)

	c.Crash(1)
	got, meta := s.PathSum("web", from, to)
	if want := ref.PathSum("web", from, to); got != want {
		t.Errorf("one node down: PathSum(web) = %d, want %d", got, want)
	}
	if !meta.Degraded || meta.Partial {
		t.Errorf("one node down: meta = %+v, want degraded, not partial", meta)
	}
	if meta.Failovers == 0 {
		t.Errorf("one node down: no failovers recorded in %+v", meta)
	}

	c.Crash(2)
	_, meta = s.PathSum("web", from, to)
	if !meta.Partial || !meta.Degraded {
		t.Errorf("two nodes down: meta = %+v, want partial+degraded", meta)
	}
	if meta.Answered == 0 {
		t.Errorf("two nodes down: nothing answered, node 0's partitions should still serve")
	}

	// Both back: clean again (memory nodes restart empty, but the fan
	// itself must report a full healthy merge).
	if err := c.Restart(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart(2); err != nil {
		t.Fatal(err)
	}
	_, meta = s.PathSum("web", from, to)
	if meta.Degraded || meta.Partial {
		t.Errorf("after restart: meta = %+v, want clean", meta)
	}
}

// A slow-but-alive node must cost one ReplicaTimeout, not the whole
// query: the hedge races the sibling replica, the first answer wins,
// and the result is still exact. Without hedging the stall would be
// paid in full by every partition the node leads.
func TestScatterHedgesSlowReplica(t *testing.T) {
	clk := zk.NewManualClock(scatterT0)
	c, err := cluster.New(cluster.Config{Nodes: 3, ReplicationFactor: 2, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ref := realtime.New(realtime.Config{Shards: 2})
	defer ref.Close()

	for _, name := range scatterNames {
		for j := 0; j < 25; j++ {
			e := scatterEv(name, scatterT0, int64(j))
			c.Ingest(e)
			ref.Ingest(e)
		}
	}
	c.Tick()
	ref.Sync()
	from, to := scatterT0, scatterT0.Add(time.Hour)

	// Wedge a node that leads at least one partition, so the primary-first
	// fan is guaranteed to hit the stall.
	const stall = 300 * time.Millisecond
	slow := c.ReplicasOf(0)[0]
	c.Node(slow).SetQueryDelay(stall)
	defer c.Node(slow).SetQueryDelay(0)

	s := NewScatter(c)
	s.ReplicaTimeout = 5 * time.Millisecond
	hedges0 := tmScatterHedges.Value()

	start := time.Now()
	got, meta := s.PathSum("web", from, to)
	elapsed := time.Since(start)

	if want := ref.PathSum("web", from, to); got != want {
		t.Errorf("hedged PathSum(web) = %d, want %d", got, want)
	}
	if meta.Answered != meta.Partitions || meta.Partial {
		t.Errorf("hedged meta = %+v, want full non-partial fan", meta)
	}
	// The stalled primary loses the race on its partitions: the sibling's
	// answer arrives first, which reads as a failover/degraded query.
	if meta.Failovers == 0 || !meta.Degraded {
		t.Errorf("hedged meta = %+v, want failovers from hedge wins", meta)
	}
	if d := tmScatterHedges.Value() - hedges0; d == 0 {
		t.Error("no hedges launched against the stalled node")
	}
	if elapsed >= stall {
		t.Errorf("hedged query took %v, want well under the %v stall", elapsed, stall)
	}

	// With the stall lifted the same scatter answers clean again.
	c.Node(slow).SetQueryDelay(0)
	got, meta = s.PathSum("web", from, to)
	if want := ref.PathSum("web", from, to); got != want {
		t.Errorf("post-stall PathSum(web) = %d, want %d", got, want)
	}
	if meta.Partial || meta.Answered != meta.Partitions {
		t.Errorf("post-stall meta = %+v, want full fan", meta)
	}
}

package birdbrain

import (
	"reflect"
	"testing"
	"time"

	"unilog/internal/events"
	"unilog/internal/geo"
	"unilog/internal/hdfs"
	"unilog/internal/realtime"
	"unilog/internal/warehouse"
)

var (
	sealedDay = time.Date(2012, 8, 20, 0, 0, 0, 0, time.UTC)
	liveDay   = time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)
)

func lambdaEvent(name string, day time.Time, hour int) *events.ClientEvent {
	return &events.ClientEvent{
		Initiator: events.InitiatorClientUser,
		Name:      events.MustParseName(name),
		UserID:    42,
		SessionID: "sess",
		IP:        geo.IPFor("us", 42),
		Timestamp: day.Add(time.Duration(hour) * time.Hour).UnixMilli(),
	}
}

func TestLambdaServingSplit(t *testing.T) {
	const imp = "web:home:timeline:stream:tweet:impression"
	const open = "iphone:home:timeline:stream:page:open"

	// Sealed day in the warehouse: 4 web impressions, 2 iphone opens.
	fs := hdfs.New(0)
	w := warehouse.NewWriter(fs, events.Category)
	for i := 0; i < 4; i++ {
		if err := w.Append(lambdaEvent(imp, sealedDay, i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := w.Append(lambdaEvent(open, sealedDay, 4+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Live day in the realtime counters: 3 web impressions, 1 android open.
	rt := realtime.New(realtime.Config{Shards: 2})
	defer rt.Close()
	for i := 0; i < 3; i++ {
		rt.Ingest(lambdaEvent(imp, liveDay, i))
	}
	rt.Ingest(lambdaEvent("android:home:timeline:stream:page:open", liveDay, 3))

	now := liveDay.Add(5 * time.Hour)
	l := NewLambda(fs, rt, func() time.Time { return now })

	// "Today so far" is served from memory.
	n, src, err := l.EventTotal(liveDay, 0, imp)
	if err != nil || n != 3 || src != SourceRealtime {
		t.Fatalf("EventTotal(live) = %d/%s/%v, want 3/realtime", n, src, err)
	}
	// Sealed days are served from the warehouse rollups.
	n, src, err = l.EventTotal(sealedDay, 0, imp)
	if err != nil || n != 4 || src != SourceWarehouse {
		t.Fatalf("EventTotal(sealed) = %d/%s/%v, want 4/warehouse", n, src, err)
	}
	// Rolled-up names work on both paths.
	n, _, err = l.EventTotal(liveDay, 4, "web:*:*:*:*:impression")
	if err != nil || n != 3 {
		t.Fatalf("EventTotal(live, level 4) = %d/%v, want 3", n, err)
	}
	n, _, err = l.EventTotal(sealedDay, 4, "iphone:*:*:*:*:open")
	if err != nil || n != 2 {
		t.Fatalf("EventTotal(sealed, level 4) = %d/%v, want 2", n, err)
	}

	got, src, err := l.ClientTotals(liveDay)
	if err != nil || src != SourceRealtime {
		t.Fatalf("ClientTotals(live): %s/%v", src, err)
	}
	if want := map[string]int64{"web": 3, "android": 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("ClientTotals(live) = %v, want %v", got, want)
	}
	got, src, err = l.ClientTotals(sealedDay)
	if err != nil || src != SourceWarehouse {
		t.Fatalf("ClientTotals(sealed): %s/%v", src, err)
	}
	if want := map[string]int64{"web": 4, "iphone": 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("ClientTotals(sealed) = %v, want %v", got, want)
	}

	// A day with no data at all answers zero from the warehouse path.
	n, src, err = l.EventTotal(sealedDay.AddDate(0, 0, -5), 0, imp)
	if err != nil || n != 0 || src != SourceWarehouse {
		t.Fatalf("EventTotal(empty day) = %d/%s/%v, want 0/warehouse", n, src, err)
	}

	// The sealed-day rollup table is cached: events written to the
	// warehouse after the first query do not change the answer.
	if err := func() error {
		w2 := warehouse.NewWriter(fs, events.Category)
		if err := w2.Append(lambdaEvent(imp, sealedDay, 10)); err != nil {
			return err
		}
		return w2.Close()
	}(); err != nil {
		t.Fatal(err)
	}
	n, _, err = l.EventTotal(sealedDay, 0, imp)
	if err != nil || n != 4 {
		t.Fatalf("EventTotal(sealed, cached) = %d/%v, want cached 4", n, err)
	}
}

// TestLambdaMidnightHandover checks the property Reconcile guarantees:
// when the live day seals, the warehouse path reports the same totals the
// realtime path was serving, so dashboards do not jump at the handover.
func TestLambdaMidnightHandover(t *testing.T) {
	const imp = "web:home:timeline:stream:tweet:impression"
	fs := hdfs.New(0)
	rt := realtime.New(realtime.Config{Shards: 2})
	defer rt.Close()

	// The same five events flow to both the counters (via the tap, in
	// production) and the warehouse (via the log mover).
	w := warehouse.NewWriter(fs, events.Category)
	for i := 0; i < 5; i++ {
		e := lambdaEvent(imp, liveDay, i%3)
		rt.Ingest(e)
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	now := liveDay.Add(6 * time.Hour)
	l := NewLambda(fs, rt, func() time.Time { return now })
	before, src, err := l.EventTotal(liveDay, 0, imp)
	if err != nil || src != SourceRealtime {
		t.Fatalf("before handover: %s/%v", src, err)
	}
	now = liveDay.AddDate(0, 0, 1).Add(time.Hour) // midnight passes
	after, src, err := l.EventTotal(liveDay, 0, imp)
	if err != nil || src != SourceWarehouse {
		t.Fatalf("after handover: %s/%v", src, err)
	}
	if before != 5 || after != 5 {
		t.Errorf("handover jumped: realtime %d, warehouse %d, want 5 both", before, after)
	}
}

// TestLambdaSealedCacheEviction pins the max-entries LRU policy: the cache
// never exceeds MaxSealedDays, the least recently used day goes first, and
// an evicted day still answers correctly (recomputed on demand).
func TestLambdaSealedCacheEviction(t *testing.T) {
	const imp = "web:home:timeline:stream:tweet:impression"
	fs := hdfs.New(0)
	w := warehouse.NewWriter(fs, events.Category)
	days := make([]time.Time, 4)
	for i := range days {
		days[i] = sealedDay.AddDate(0, 0, -i)
		// Day i carries i+1 impressions so answers identify their day.
		for k := 0; k <= i; k++ {
			if err := w.Append(lambdaEvent(imp, days[i], k%12)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rt := realtime.New(realtime.Config{Shards: 1})
	defer rt.Close()
	l := NewLambda(fs, rt, func() time.Time { return liveDay.Add(time.Hour) })
	l.MaxSealedDays = 2

	query := func(i int) {
		t.Helper()
		n, src, err := l.EventTotal(days[i], 0, imp)
		if err != nil || src != SourceWarehouse || n != int64(i+1) {
			t.Fatalf("EventTotal(day %d) = %d/%s/%v, want %d/warehouse", i, n, src, err, i+1)
		}
	}
	query(0)
	query(1)
	if got := l.SealedCached(); got != 2 {
		t.Fatalf("cache holds %d days, want 2", got)
	}
	query(0) // refresh day 0: day 1 is now the LRU victim
	query(2) // evicts day 1
	if got := l.SealedCached(); got != 2 {
		t.Fatalf("cache holds %d days after eviction, want 2", got)
	}
	query(1) // recomputed, still correct; evicts day 0
	query(3)
	if got := l.SealedCached(); got != 2 {
		t.Fatalf("cache holds %d days, want 2", got)
	}
}

// TestLambdaServesRecoveredEngine proves the serving API is oblivious to
// durability: a Lambda built over a counter that crashed and was recovered
// by realtime.Open answers "today so far" exactly as one over the
// never-crashed counter would.
func TestLambdaServesRecoveredEngine(t *testing.T) {
	const imp = "web:home:timeline:stream:tweet:impression"
	dir := t.TempDir()
	cfg := realtime.Config{Shards: 2, FsyncEvery: 1, SnapshotEvery: time.Hour}
	rt, err := realtime.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		rt.Ingest(lambdaEvent(imp, liveDay, i%5))
	}
	rt.Sync()
	if err := rt.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ { // WAL tail only
		rt.Ingest(lambdaEvent(imp, liveDay, 6))
	}
	rt.Sync()
	rt.Crash()

	recovered, err := realtime.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	l := NewLambda(hdfs.New(0), recovered, func() time.Time { return liveDay.Add(8 * time.Hour) })
	n, src, err := l.EventTotal(liveDay, 0, imp)
	if err != nil || src != SourceRealtime || n != 11 {
		t.Fatalf("EventTotal from recovered engine = %d/%s/%v, want 11/realtime", n, src, err)
	}
	totals, src, err := l.ClientTotals(liveDay)
	if err != nil || src != SourceRealtime || totals["web"] != 11 {
		t.Fatalf("ClientTotals from recovered engine = %v/%s/%v, want web=11", totals, src, err)
	}
}

// TestLambdaMidnightPrewarm pins the handover optimization: the first
// query of a new day kicks off a background load of yesterday's sealed
// rollup, so the first warehouse-path query after midnight hits the cache
// instead of paying a cold rollup job.
func TestLambdaMidnightPrewarm(t *testing.T) {
	const imp = "web:home:timeline:stream:tweet:impression"
	fs := hdfs.New(0)
	w := warehouse.NewWriter(fs, events.Category)
	for i := 0; i < 5; i++ {
		if err := w.Append(lambdaEvent(imp, sealedDay, i%12)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rt := realtime.New(realtime.Config{Shards: 1})
	defer rt.Close()

	now := liveDay.Add(time.Hour) // sealedDay sealed at the last midnight
	l := NewLambda(fs, rt, func() time.Time { return now })

	// Query today only; yesterday must get warmed as a side effect.
	if _, src, err := l.EventTotal(liveDay, 0, imp); err != nil || src != SourceRealtime {
		t.Fatalf("today query: %s/%v", src, err)
	}
	l.WaitPrewarm()
	if got := l.SealedCached(); got != 1 {
		t.Fatalf("sealed cache holds %d days after pre-warm, want 1 (yesterday)", got)
	}

	// The handover query is now a cache hit: events appended to the
	// warehouse afterwards cannot change its answer, proving no rollup
	// job runs at query time.
	w2 := warehouse.NewWriter(fs, events.Category)
	if err := w2.Append(lambdaEvent(imp, sealedDay, 3)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	n, src, err := l.EventTotal(sealedDay, 0, imp)
	if err != nil || src != SourceWarehouse || n != 5 {
		t.Fatalf("handover query = %d/%s/%v, want pre-warmed 5/warehouse", n, src, err)
	}

	// Same day again: the pre-warm fires once per day change, not per query.
	if _, _, err := l.EventTotal(liveDay, 0, imp); err != nil {
		t.Fatal(err)
	}
	l.WaitPrewarm()
	if got := l.SealedCached(); got != 1 {
		t.Fatalf("cache grew to %d on repeat queries", got)
	}

	// Midnight passes: the next query pre-warms the just-sealed liveDay.
	now = liveDay.AddDate(0, 0, 1).Add(time.Minute)
	if _, _, err := l.EventTotal(now, 0, imp); err != nil {
		t.Fatal(err)
	}
	l.WaitPrewarm()
	if got := l.SealedCached(); got != 2 {
		t.Fatalf("cache holds %d after second midnight, want 2", got)
	}
}

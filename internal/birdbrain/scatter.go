package birdbrain

import (
	"sort"
	"time"

	"unilog/internal/analytics"
	"unilog/internal/cluster"
	"unilog/internal/dataflow"
	"unilog/internal/hdfs"
	"unilog/internal/realtime"
)

// Scatter serves BirdBrain counting queries from a replicated cluster
// instead of one counter: every verb fans over the namespace
// partitions, asks ONE replica per partition (primary first, failing
// over down the replica list), and merges the disjoint partials into
// the cluster-wide answer. Because partitions split the namespace by
// whole event name, the merge is exact — a sum of sums for PathSum and
// Series, a union-then-rank for TopK — whenever every partition
// answers.
//
// Degradation is explicit rather than silent. A query that had to fail
// over (a replica was dead or errored mid-query) still returns the
// exact answer from the surviving replicas but is marked Degraded; a
// query that found some partition with no live replica at all returns
// the partial sum it could compute, marked Partial (and Degraded).
// Callers — and the scenario harness's invariants — decide what a
// partial answer is worth; the telemetry counters track how often each
// happens.
type Scatter struct {
	c *cluster.Cluster
}

// NewScatter builds a scatter-gather query layer over the cluster.
func NewScatter(c *cluster.Cluster) *Scatter { return &Scatter{c: c} }

// QueryMeta reports how a scatter query was assembled.
type QueryMeta struct {
	// Partitions is the fan-out width; Answered counts partitions that
	// produced a partial (Answered < Partitions means a partial result).
	Partitions int
	Answered   int
	// Failovers counts partitions answered by a non-primary replica.
	Failovers int
	// Degraded is true when any partition failed over or any replica
	// refused to answer; the result is still exact if !Partial.
	Degraded bool
	// Partial is true when some partition had no live replica; counts
	// from its slice of the namespace are missing from the result.
	Partial bool
}

// merge folds a per-partition outcome into the meta.
func (m *QueryMeta) merge(answered bool, attempts int) {
	m.Partitions++
	if answered {
		m.Answered++
		if attempts > 0 {
			m.Failovers++
			m.Degraded = true
		}
	} else {
		m.Partial = true
		m.Degraded = true
	}
}

// finish publishes the query's telemetry once the fan is merged.
func (m *QueryMeta) finish() {
	tmScatterQueries.Inc()
	if m.Degraded {
		tmScatterDegraded.Inc()
	}
	if m.Partial {
		tmScatterPartial.Inc()
	}
	tmScatterFailovers.Add(int64(m.Failovers))
}

// fan visits every partition on its first answering replica. visit
// must return nil on success; replicas are tried primary-first, and a
// detector-dead replica is still attempted — in-process it fails fast,
// and attempting keeps answers available when the detector lags a
// restart.
func (s *Scatter) fan(visit func(p int, n *cluster.Node) error) QueryMeta {
	var meta QueryMeta
	for p := 0; p < s.c.Partitions(); p++ {
		answered := false
		attempts := 0
		for _, id := range s.c.ReplicasOf(p) {
			if err := visit(p, s.c.Node(id)); err == nil {
				answered = true
				break
			}
			attempts++
		}
		meta.merge(answered, attempts)
	}
	meta.finish()
	return meta
}

// PathSum sums a hierarchy path over [from, to) across the cluster.
func (s *Scatter) PathSum(path string, from, to time.Time) (int64, QueryMeta) {
	defer tmScatterPathSumNs.ObserveSince(time.Now())
	s.c.Sync()
	var total int64
	meta := s.fan(func(p int, n *cluster.Node) error {
		v, err := n.PathSum(p, path, from, to)
		if err != nil {
			return err
		}
		total += v
		return nil
	})
	return total, meta
}

// Series sums per-minute counts of a path over [from, to) across the
// cluster; index 0 holds from's minute.
func (s *Scatter) Series(path string, from, to time.Time) ([]int64, QueryMeta) {
	defer tmScatterSeriesNs.ObserveSince(time.Now())
	s.c.Sync()
	var out []int64
	meta := s.fan(func(p int, n *cluster.Node) error {
		v, err := n.Series(p, path, from, to)
		if err != nil {
			return err
		}
		if len(v) > len(out) {
			grown := make([]int64, len(v))
			copy(grown, out)
			out = grown
		}
		for i, x := range v {
			out[i] += x
		}
		return nil
	})
	return out, meta
}

// TopK ranks the children of a hierarchy path by count over [from, to)
// across the cluster. Each partition contributes its full child counts
// (a child heavy overall may be light on any one partition's slice),
// the union is ranked once, ties breaking by path ascending exactly as
// realtime.Counter.TopK does.
func (s *Scatter) TopK(parent string, k int, from, to time.Time) ([]realtime.PathCount, QueryMeta) {
	defer tmScatterTopKNs.ObserveSince(time.Now())
	s.c.Sync()
	acc := make(map[string]int64)
	meta := s.fan(func(p int, n *cluster.Node) error {
		partial, err := n.ChildCounts(p, parent, from, to)
		if err != nil {
			return err
		}
		for _, pc := range partial {
			acc[pc.Path] += pc.Count
		}
		return nil
	})
	if k <= 0 || len(acc) == 0 {
		return nil, meta
	}
	ranked := make([]realtime.PathCount, 0, len(acc))
	for path, count := range acc {
		ranked = append(ranked, realtime.PathCount{Path: path, Count: count})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Count != ranked[j].Count {
			return ranked[i].Count > ranked[j].Count
		}
		return ranked[i].Path < ranked[j].Path
	})
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked, meta
}

// RollupSnapshot merges the §3.2 rollup rows of every partition over
// [from, to) into one cluster-wide table, keyed like analytics.Rollups.
func (s *Scatter) RollupSnapshot(from, to time.Time) (map[analytics.RollupKey]int64, QueryMeta) {
	s.c.Sync()
	out := make(map[analytics.RollupKey]int64)
	meta := s.fan(func(p int, n *cluster.Node) error {
		partial, err := n.Rollups(p, from, to)
		if err != nil {
			return err
		}
		for k, v := range partial {
			out[k] += v
		}
		return nil
	})
	return out, meta
}

// Reconcile is the cluster's lambda-architecture check: the batch
// rollup job over the warehouse day versus the scatter-gathered
// streaming table. Exactness requires a full fan — a Partial merge is
// missing partitions and reports the meta so the caller can tell an
// honest divergence from an outage.
func (s *Scatter) Reconcile(fs *hdfs.FS, day time.Time) (*realtime.Report, QueryMeta, error) {
	day = day.UTC().Truncate(24 * time.Hour)
	j := dataflow.NewJob("scatter-reconcile", fs)
	batch, err := analytics.Rollups(j, day)
	if err != nil {
		return nil, QueryMeta{}, err
	}
	stream, meta := s.RollupSnapshot(day, day.Add(24*time.Hour))
	return realtime.DiffRollups(day, batch, stream), meta, nil
}

package birdbrain

import (
	"sort"
	"time"

	"unilog/internal/analytics"
	"unilog/internal/cluster"
	"unilog/internal/dataflow"
	"unilog/internal/hdfs"
	"unilog/internal/realtime"
)

// Scatter serves BirdBrain counting queries from a replicated cluster
// instead of one counter: every verb fans over the namespace
// partitions, asks ONE replica per partition (primary first, failing
// over down the replica list), and merges the disjoint partials into
// the cluster-wide answer. Because partitions split the namespace by
// whole event name, the merge is exact — a sum of sums for PathSum and
// Series, a union-then-rank for TopK — whenever every partition
// answers.
//
// Degradation is explicit rather than silent. A query that had to fail
// over (a replica was dead or errored mid-query) still returns the
// exact answer from the surviving replicas but is marked Degraded; a
// query that found some partition with no live replica at all returns
// the partial sum it could compute, marked Partial (and Degraded).
// Callers — and the scenario harness's invariants — decide what a
// partial answer is worth; the telemetry counters track how often each
// happens.
type Scatter struct {
	c *cluster.Cluster

	// ReplicaTimeout, when positive, hedges slow replicas: a partition
	// query that has not answered within the timeout launches the next
	// replica in parallel and takes whichever answers first — so a
	// slow-but-alive node (wedged on IO, GC, a cold cache) costs one
	// timeout, not the whole query, and in-process errors still fail
	// over immediately as before. Zero keeps the sequential
	// primary-first fan. A hedge win counts as a failover (the answer
	// came from a non-primary) and marks the query Degraded; the hedge
	// launches themselves are counted in birdbrain.scatter.hedges.
	ReplicaTimeout time.Duration
}

// NewScatter builds a scatter-gather query layer over the cluster.
func NewScatter(c *cluster.Cluster) *Scatter { return &Scatter{c: c} }

// QueryMeta reports how a scatter query was assembled.
type QueryMeta struct {
	// Partitions is the fan-out width; Answered counts partitions that
	// produced a partial (Answered < Partitions means a partial result).
	Partitions int
	Answered   int
	// Failovers counts partitions answered by a non-primary replica.
	Failovers int
	// Degraded is true when any partition failed over or any replica
	// refused to answer; the result is still exact if !Partial.
	Degraded bool
	// Partial is true when some partition had no live replica; counts
	// from its slice of the namespace are missing from the result.
	Partial bool
}

// merge folds a per-partition outcome into the meta.
func (m *QueryMeta) merge(answered bool, attempts int) {
	m.Partitions++
	if answered {
		m.Answered++
		if attempts > 0 {
			m.Failovers++
			m.Degraded = true
		}
	} else {
		m.Partial = true
		m.Degraded = true
	}
}

// finish publishes the query's telemetry once the fan is merged.
func (m *QueryMeta) finish() {
	tmScatterQueries.Inc()
	if m.Degraded {
		tmScatterDegraded.Inc()
	}
	if m.Partial {
		tmScatterPartial.Inc()
	}
	tmScatterFailovers.Add(int64(m.Failovers))
}

// fan asks every partition for its partial and folds the answers. query
// runs against one replica (concurrently with its hedges under
// ReplicaTimeout) and must be free of shared state; fold is called once
// per answered partition, always from this goroutine, so the verbs'
// accumulators need no locking. Replicas are tried primary-first, and a
// detector-dead replica is still attempted — in-process it fails fast,
// and attempting keeps answers available when the detector lags a
// restart.
func (s *Scatter) fan(query func(p int, n *cluster.Node) (any, error), fold func(any)) QueryMeta {
	var meta QueryMeta
	for p := 0; p < s.c.Partitions(); p++ {
		v, winner, ok := s.askPartition(p, query)
		if ok {
			fold(v)
		}
		meta.merge(ok, winner)
	}
	meta.finish()
	return meta
}

// askPartition gets one partition's partial from its replica set,
// returning the winning replica's index (0 = primary; > 0 counts as a
// failover). Without a ReplicaTimeout the replicas are tried in order;
// with one, a replica that neither answers nor errors within the
// timeout gets raced against the next replica, first answer wins.
func (s *Scatter) askPartition(p int, query func(p int, n *cluster.Node) (any, error)) (v any, winner int, ok bool) {
	replicas := s.c.ReplicasOf(p)
	if s.ReplicaTimeout <= 0 {
		for i, id := range replicas {
			if v, err := query(p, s.c.Node(id)); err == nil {
				return v, i, true
			}
		}
		return nil, len(replicas), false
	}
	type reply struct {
		idx int
		v   any
		err error
	}
	// Buffered to the full replica set: a losing replica's late answer
	// parks in the channel and its goroutine exits — no leak, no lock.
	ch := make(chan reply, len(replicas))
	launch := func(idx int) {
		n := s.c.Node(replicas[idx])
		go func() {
			v, err := query(p, n)
			ch <- reply{idx: idx, v: v, err: err}
		}()
	}
	launched := 1
	launch(0)
	failed := 0
	timer := time.NewTimer(s.ReplicaTimeout)
	defer timer.Stop()
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				return r.v, r.idx, true
			}
			failed++
			if failed == len(replicas) {
				return nil, failed, false
			}
			if failed == launched && launched < len(replicas) {
				// Everything in flight has errored: immediate failover,
				// same as the sequential path. The fresh replica gets a
				// full hedge window — without the reset, a timer armed for
				// a long-dead attempt could hedge it almost immediately.
				launch(launched)
				launched++
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(s.ReplicaTimeout)
			}
		case <-timer.C:
			if launched < len(replicas) {
				launch(launched)
				launched++
				tmScatterHedges.Inc()
				timer.Reset(s.ReplicaTimeout)
			}
			// With every replica launched the timer goes quiet; the
			// remaining replies decide the outcome.
		}
	}
}

// PathSum sums a hierarchy path over [from, to) across the cluster.
func (s *Scatter) PathSum(path string, from, to time.Time) (int64, QueryMeta) {
	defer tmScatterPathSumNs.ObserveSince(time.Now())
	s.c.Sync()
	var total int64
	meta := s.fan(func(p int, n *cluster.Node) (any, error) {
		return n.PathSum(p, path, from, to)
	}, func(v any) {
		total += v.(int64)
	})
	return total, meta
}

// Series sums per-minute counts of a path over [from, to) across the
// cluster; index 0 holds from's minute.
func (s *Scatter) Series(path string, from, to time.Time) ([]int64, QueryMeta) {
	defer tmScatterSeriesNs.ObserveSince(time.Now())
	s.c.Sync()
	var out []int64
	meta := s.fan(func(p int, n *cluster.Node) (any, error) {
		return n.Series(p, path, from, to)
	}, func(raw any) {
		v := raw.([]int64)
		if len(v) > len(out) {
			grown := make([]int64, len(v))
			copy(grown, out)
			out = grown
		}
		for i, x := range v {
			out[i] += x
		}
	})
	return out, meta
}

// TopK ranks the children of a hierarchy path by count over [from, to)
// across the cluster. Each partition contributes its full child counts
// (a child heavy overall may be light on any one partition's slice),
// the union is ranked once, ties breaking by path ascending exactly as
// realtime.Counter.TopK does.
func (s *Scatter) TopK(parent string, k int, from, to time.Time) ([]realtime.PathCount, QueryMeta) {
	defer tmScatterTopKNs.ObserveSince(time.Now())
	s.c.Sync()
	acc := make(map[string]int64)
	meta := s.fan(func(p int, n *cluster.Node) (any, error) {
		return n.ChildCounts(p, parent, from, to)
	}, func(raw any) {
		for _, pc := range raw.([]realtime.PathCount) {
			acc[pc.Path] += pc.Count
		}
	})
	if k <= 0 || len(acc) == 0 {
		return nil, meta
	}
	ranked := make([]realtime.PathCount, 0, len(acc))
	for path, count := range acc {
		ranked = append(ranked, realtime.PathCount{Path: path, Count: count})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Count != ranked[j].Count {
			return ranked[i].Count > ranked[j].Count
		}
		return ranked[i].Path < ranked[j].Path
	})
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked, meta
}

// RollupSnapshot merges the §3.2 rollup rows of every partition over
// [from, to) into one cluster-wide table, keyed like analytics.Rollups.
func (s *Scatter) RollupSnapshot(from, to time.Time) (map[analytics.RollupKey]int64, QueryMeta) {
	s.c.Sync()
	out := make(map[analytics.RollupKey]int64)
	meta := s.fan(func(p int, n *cluster.Node) (any, error) {
		return n.Rollups(p, from, to)
	}, func(raw any) {
		for k, v := range raw.(map[analytics.RollupKey]int64) {
			out[k] += v
		}
	})
	return out, meta
}

// Reconcile is the cluster's lambda-architecture check: the batch
// rollup job over the warehouse day versus the scatter-gathered
// streaming table. Exactness requires a full fan — a Partial merge is
// missing partitions and reports the meta so the caller can tell an
// honest divergence from an outage.
func (s *Scatter) Reconcile(fs *hdfs.FS, day time.Time) (*realtime.Report, QueryMeta, error) {
	day = day.UTC().Truncate(24 * time.Hour)
	j := dataflow.NewJob("scatter-reconcile", fs)
	batch, err := analytics.Rollups(j, day)
	if err != nil {
		return nil, QueryMeta{}, err
	}
	stream, meta := s.RollupSnapshot(day, day.Add(24*time.Hour))
	return realtime.DiffRollups(day, batch, stream), meta, nil
}

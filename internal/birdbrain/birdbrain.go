// Package birdbrain computes the daily dashboard summaries of §5.1: the
// number of user sessions per day with drill-downs by client type and
// bucketed session duration, plus the country and logged-in/out breakdowns
// of §3.2.
//
// "Due to their compact size, statistics about sessions are easy to compute
// from the session sequences" — every metric here is derived from one scan
// of the materialized session store, never from the raw logs.
package birdbrain

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"unilog/internal/events"
	"unilog/internal/geo"
	"unilog/internal/hdfs"
	"unilog/internal/session"
)

// DurationBuckets are the session-duration drill-down boundaries.
var DurationBuckets = []struct {
	Label string
	Max   int32 // inclusive upper bound, seconds; -1 = unbounded
}{
	{"<1m", 59},
	{"1-5m", 299},
	{"5-15m", 899},
	{"15-30m", 1799},
	{"30m-1h", 3599},
	{">1h", -1},
}

// BucketLabel returns the bucket a duration (seconds) falls in.
func BucketLabel(seconds int32) string {
	for _, b := range DurationBuckets {
		if b.Max < 0 || seconds <= b.Max {
			return b.Label
		}
	}
	return DurationBuckets[len(DurationBuckets)-1].Label
}

// Summary is one day's dashboard payload.
type Summary struct {
	Day               time.Time
	Sessions          int64
	Events            int64
	UniqueUsers       int64
	LoggedInSessions  int64
	LoggedOutSessions int64
	ByClient          map[string]int64
	ByCountry         map[string]int64
	ByDuration        map[string]int64
	// TopEvents lists the most frequent events from the day's dictionary.
	TopEvents []EventCount
	// MeanSessionSeconds is the average session duration.
	MeanSessionSeconds float64
}

// EventCount pairs an event name with its daily count.
type EventCount struct {
	Name  string
	Count int64
}

// Build computes the summary from the materialized session store and the
// day's dictionary.
func Build(fs *hdfs.FS, day time.Time, topK int) (*Summary, error) {
	dict, err := session.LoadDictionary(fs, day)
	if err != nil {
		return nil, err
	}
	s := &Summary{
		Day:        day.UTC().Truncate(24 * time.Hour),
		ByClient:   make(map[string]int64),
		ByCountry:  make(map[string]int64),
		ByDuration: make(map[string]int64),
	}
	users := make(map[int64]struct{})
	var totalSeconds int64
	err = session.ScanDay(fs, day, func(r *session.Record) error {
		s.Sessions++
		n := int64(r.EventCount())
		s.Events += n
		if r.UserID != 0 {
			s.LoggedInSessions++
			users[r.UserID] = struct{}{}
		} else {
			s.LoggedOutSessions++
		}
		s.ByCountry[geo.CountryOf(r.IP)]++
		s.ByDuration[BucketLabel(r.Duration)]++
		totalSeconds += int64(r.Duration)
		// The client drill-down comes from the first event's client
		// component — decodable from the sequence alone.
		for _, sym := range r.Sequence {
			name, ok := dict.Name(sym)
			if !ok {
				return fmt.Errorf("birdbrain: unknown symbol %U", sym)
			}
			en, err := events.ParseName(name)
			if err != nil {
				return err
			}
			s.ByClient[en.Client]++
			break
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.UniqueUsers = int64(len(users))
	if s.Sessions > 0 {
		s.MeanSessionSeconds = float64(totalSeconds) / float64(s.Sessions)
	}
	names := dict.Names()
	for i := 0; i < topK && i < len(names); i++ {
		s.TopEvents = append(s.TopEvents, EventCount{Name: names[i], Count: dict.Count(names[i])})
	}
	return s, nil
}

// Render writes the dashboard as fixed-width text tables.
func (s *Summary) Render(w io.Writer) {
	fmt.Fprintf(w, "BirdBrain daily summary — %s\n", s.Day.Format("2006-01-02"))
	fmt.Fprintf(w, "  sessions:            %d\n", s.Sessions)
	fmt.Fprintf(w, "  events:              %d\n", s.Events)
	fmt.Fprintf(w, "  unique users:        %d\n", s.UniqueUsers)
	fmt.Fprintf(w, "  logged in/out:       %d / %d\n", s.LoggedInSessions, s.LoggedOutSessions)
	fmt.Fprintf(w, "  mean session length: %.0fs\n", s.MeanSessionSeconds)
	renderMap(w, "sessions by client", s.ByClient)
	renderMap(w, "sessions by country", s.ByCountry)
	fmt.Fprintf(w, "  %s:\n", "sessions by duration")
	for _, b := range DurationBuckets {
		if n, ok := s.ByDuration[b.Label]; ok {
			fmt.Fprintf(w, "    %-8s %10d\n", b.Label, n)
		}
	}
	if len(s.TopEvents) > 0 {
		fmt.Fprintf(w, "  top events:\n")
		for _, e := range s.TopEvents {
			fmt.Fprintf(w, "    %10d  %s\n", e.Count, e.Name)
		}
	}
}

func renderMap(w io.Writer, title string, m map[string]int64) {
	fmt.Fprintf(w, "  %s:\n", title)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] {
			return m[keys[i]] > m[keys[j]]
		}
		return keys[i] < keys[j]
	})
	for _, k := range keys {
		fmt.Fprintf(w, "    %-12s %10d\n", k, m[k])
	}
}

// Trend is a multi-day view of the dashboard: "the number of user sessions
// daily and plotted as a function of time ... lets us monitor the growth
// of the service over time and spot trends" (§5.1).
type Trend struct {
	Days []*Summary
}

// BuildTrend builds summaries for n consecutive days starting at from,
// skipping days without a session store.
func BuildTrend(fs *hdfs.FS, from time.Time, n int) (*Trend, error) {
	tr := &Trend{}
	for i := 0; i < n; i++ {
		day := from.AddDate(0, 0, i)
		s, err := Build(fs, day, 0)
		if err != nil {
			continue // day not built yet
		}
		tr.Days = append(tr.Days, s)
	}
	if len(tr.Days) == 0 {
		return nil, fmt.Errorf("birdbrain: no built days in range")
	}
	return tr, nil
}

// Render plots sessions per day as a proportional text bar chart.
func (tr *Trend) Render(w io.Writer) {
	fmt.Fprintf(w, "sessions per day:\n")
	var max int64 = 1
	for _, d := range tr.Days {
		if d.Sessions > max {
			max = d.Sessions
		}
	}
	const width = 40
	for _, d := range tr.Days {
		bar := int(d.Sessions * width / max)
		if bar < 1 && d.Sessions > 0 {
			bar = 1
		}
		fmt.Fprintf(w, "  %s %-*s %6d\n", d.Day.Format("2006-01-02"), width, strings.Repeat("█", bar), d.Sessions)
	}
}

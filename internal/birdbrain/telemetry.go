package birdbrain

import (
	"unilog/internal/telemetry"
)

// Telemetry instruments for the dashboard query layer: per-verb latency
// histograms and the sealed-day cache's hit accounting, plus a derived
// hit-ratio gauge evaluated at snapshot time.
var (
	tmCacheHits   = telemetry.GetCounter("birdbrain.cache.hits")
	tmCacheMisses = telemetry.GetCounter("birdbrain.cache.misses")

	tmEventTotalNs   = telemetry.GetHistogram("birdbrain.query.event_total.ns")
	tmClientTotalsNs = telemetry.GetHistogram("birdbrain.query.client_totals.ns")
)

// Scatter-gather instruments: every fanned query ticks queries; the
// degraded/partial counters are the observable trace of answers served
// around a dead replica (the scenario harness asserts on them).
var (
	tmScatterQueries   = telemetry.GetCounter("birdbrain.scatter.queries")
	tmScatterDegraded  = telemetry.GetCounter("birdbrain.scatter.degraded")
	tmScatterPartial   = telemetry.GetCounter("birdbrain.scatter.partial")
	tmScatterFailovers = telemetry.GetCounter("birdbrain.scatter.failovers")
	tmScatterHedges    = telemetry.GetCounter("birdbrain.scatter.hedges")

	tmScatterPathSumNs = telemetry.GetHistogram("birdbrain.scatter.path_sum.ns")
	tmScatterSeriesNs  = telemetry.GetHistogram("birdbrain.scatter.series.ns")
	tmScatterTopKNs    = telemetry.GetHistogram("birdbrain.scatter.top_k.ns")
)

func init() {
	telemetry.RegisterGaugeFunc("birdbrain.cache.hit_ratio.pct", func() int64 {
		h, m := tmCacheHits.Value(), tmCacheMisses.Value()
		if h+m == 0 {
			return 0
		}
		return h * 100 / (h + m)
	})
}

// Package scribe reimplements the message-delivery layer of §2: Scribe
// daemons on every production host forward (category, message) log entries
// to a cluster of per-datacenter aggregators, which merge per-category
// streams and write them, gzip-compressed, onto the staging HDFS cluster.
//
// Fault-tolerance follows the paper:
//
//   - aggregators register ephemeral znodes in ZooKeeper; daemons discover a
//     live aggregator by listing that path and re-check it when their
//     aggregator disappears;
//   - daemons buffer entries in a local spool when no aggregator is
//     reachable and re-deliver later;
//   - aggregators buffer closed files in memory (standing in for their local
//     disk) when staging HDFS is unavailable and retry the writes.
//
// An aggregator can be stopped gracefully (an administrator restart: all
// buffers flush first) or crashed (in-flight buffers are dropped and
// counted, never silently lost).
package scribe

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"unilog/internal/hdfs"
	"unilog/internal/recordio"
	"unilog/internal/warehouse"
	"unilog/internal/zk"
)

// Errors surfaced by the delivery layer.
var (
	ErrNoAggregators  = errors.New("scribe: no live aggregators registered")
	ErrAggregatorDown = errors.New("scribe: aggregator not running")
	ErrSpilled        = errors.New("scribe: entries spooled locally, delivery pending")
)

// AggregatorsZNode is the fixed ZooKeeper path where aggregators register
// ephemeral nodes and daemons look them up.
const AggregatorsZNode = "/scribe/aggregators"

const zkSessionTimeout = time.Minute

// Entry is one log message: "Each log entry consists of two strings, a
// category and a message" (§2).
type Entry struct {
	Category string
	Message  []byte
}

// aggState tracks the aggregator lifecycle.
type aggState int

const (
	aggRunning aggState = iota
	aggStopped
	aggCrashed
)

// AggregatorStats counts aggregator activity.
type AggregatorStats struct {
	BatchesReceived  int64
	MessagesReceived int64
	FilesWritten     int64
	FlushFailures    int64
	MessagesDropped  int64 // lost in a hard crash
	PolicyDropped    int64 // dropped by category config (blackhole/sampling)
	PendingFiles     int64 // files buffered awaiting a staging retry
	PendingMessages  int64 // messages in open streams not yet in a file
}

type memBuf struct{ data []byte }

func (m *memBuf) Write(p []byte) (int, error) {
	m.data = append(m.data, p...)
	return len(p), nil
}

// categoryStream is an open, compressing output stream for one category and
// hour.
type categoryStream struct {
	hour  time.Time
	buf   *memBuf
	w     *recordio.GzipWriter
	count int64
}

// pendingFile is a finished staging file that could not be written because
// HDFS was unavailable; it lives in the aggregator's "local disk" buffer.
type pendingFile struct {
	path  string
	data  []byte
	count int64
}

// Aggregator merges per-category streams from many daemons and deposits
// them on the staging cluster.
type Aggregator struct {
	ID string

	staging  *hdfs.FS
	clock    zk.Clock
	zkServer *zk.Server
	conn     *zk.Conn

	// RollRecords caps messages per staging file before it is rolled.
	RollRecords int64

	// Tap, when set, observes every entry Append accepts — after category
	// policy (blackhole/sampling) and with the policy-resolved category —
	// so a streaming consumer sees exactly the traffic that will reach
	// staging. It runs synchronously once the batch has committed, outside
	// the aggregator lock; a slow tap therefore slows the sending daemon,
	// which is the intended backpressure. Set it before traffic starts.
	Tap func(batch []Entry)

	mu                sync.Mutex
	state             aggState
	streams           map[string]*categoryStream
	pending           []pendingFile
	fileSeq           int
	stats             AggregatorStats
	catConfigs        map[string]CategoryConfig
	catSampleCounters map[string]int64
}

// NewAggregator creates an aggregator, connects it to ZooKeeper, and
// registers its ephemeral znode under AggregatorsZNode.
func NewAggregator(id string, staging *hdfs.FS, zkServer *zk.Server, clock zk.Clock) (*Aggregator, error) {
	if clock == nil {
		clock = zk.SystemClock{}
	}
	conn, err := registerAggregator(zkServer, id)
	if err != nil {
		return nil, err
	}
	return &Aggregator{
		ID:          id,
		staging:     staging,
		clock:       clock,
		zkServer:    zkServer,
		conn:        conn,
		RollRecords: 5000,
		streams:     make(map[string]*categoryStream),
	}, nil
}

// registerAggregator opens a session and creates the ephemeral
// registration znode (with persistent parents).
func registerAggregator(zkServer *zk.Server, id string) (*zk.Conn, error) {
	conn := zkServer.Connect(zkSessionTimeout)
	for _, p := range []string{"/scribe", AggregatorsZNode} {
		if _, err := conn.Create(p, nil, zk.Persistent); err != nil && !errors.Is(err, zk.ErrNodeExists) {
			conn.Close()
			return nil, err
		}
	}
	if _, err := conn.Create(AggregatorsZNode+"/"+id, []byte(id), zk.Ephemeral); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// heartbeatLocked keeps the ZooKeeper registration alive. A real ZooKeeper
// client heartbeats from a background thread; with an injected clock the
// aggregator pings on activity instead, re-registering if the session
// expired while it was idle (as a production aggregator would).
func (a *Aggregator) heartbeatLocked() {
	if a.state != aggRunning {
		return
	}
	if err := a.conn.Ping(); err == nil {
		return
	}
	if conn, err := registerAggregator(a.zkServer, a.ID); err == nil {
		a.conn = conn
	}
}

// Append accepts a batch of entries. Acceptance is durable against staging
// outages (buffered locally) but not against a hard Crash of this
// aggregator.
func (a *Aggregator) Append(batch []Entry) error {
	tap, tapped, err := a.appendLocked(batch)
	// Even on a mid-batch error the entries collected so far were
	// committed to their streams, so the tap must still observe them.
	if tap != nil && len(tapped) > 0 {
		tmTapEntries.Add(int64(len(tapped)))
		tap(tapped)
	}
	return err
}

// appendLocked commits the batch under the lock and returns the tap
// callback plus the entries it should observe (kept entries, with their
// policy-resolved categories). The tap itself runs in Append, unlocked.
func (a *Aggregator) appendLocked(batch []Entry) (func(batch []Entry), []Entry, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.state != aggRunning {
		return nil, nil, fmt.Errorf("%w: %s", ErrAggregatorDown, a.ID)
	}
	a.heartbeatLocked()
	a.stats.BatchesReceived++
	received := a.stats.MessagesReceived
	defer func() { tmAggMessages.Add(a.stats.MessagesReceived - received) }()
	var tapped []Entry
	now := a.clock.Now().UTC().Truncate(time.Hour)
	for _, e := range batch {
		category, rollAt, keep := a.applyCategoryPolicyLocked(e.Category)
		if !keep {
			continue
		}
		if a.Tap != nil {
			tapped = append(tapped, Entry{Category: category, Message: e.Message})
		}
		s := a.streams[category]
		if s != nil && !s.hour.Equal(now) {
			a.rollStreamLocked(category, s)
			s = nil
		}
		if s == nil {
			buf := &memBuf{}
			s = &categoryStream{hour: now, buf: buf, w: recordio.NewGzipWriter(buf)}
			a.streams[category] = s
		}
		if err := s.w.Append(e.Message); err != nil {
			if a.Tap != nil && len(tapped) > 0 {
				// Drop the entry that failed; the earlier ones committed.
				tapped = tapped[:len(tapped)-1]
			}
			return a.Tap, tapped, err
		}
		s.count++
		a.stats.MessagesReceived++
		a.stats.PendingMessages++
		if s.count >= rollAt {
			a.rollStreamLocked(category, s)
		}
	}
	a.retryPendingLocked()
	return a.Tap, tapped, nil
}

// rollStreamLocked closes the stream and queues its file for writing.
func (a *Aggregator) rollStreamLocked(category string, s *categoryStream) {
	if s.count == 0 {
		delete(a.streams, category)
		return
	}
	if err := s.w.Close(); err != nil {
		// Closing an in-memory gzip stream cannot fail in practice; if it
		// does, treat the stream's messages as dropped rather than corrupt.
		a.stats.MessagesDropped += s.count
		a.stats.PendingMessages -= s.count
		tmAggDropped.Add(s.count)
		delete(a.streams, category)
		return
	}
	path := fmt.Sprintf("%s/%s-%05d.gz", warehouse.StagingHourDir(category, s.hour), a.ID, a.fileSeq)
	a.fileSeq++
	a.pending = append(a.pending, pendingFile{path: path, data: s.buf.data, count: s.count})
	a.stats.PendingFiles++
	a.stats.PendingMessages -= s.count
	delete(a.streams, category)
	a.retryPendingLocked()
}

// retryPendingLocked writes queued files to staging, stopping at the first
// failure so file order within the run is preserved.
func (a *Aggregator) retryPendingLocked() {
	for len(a.pending) > 0 {
		f := a.pending[0]
		t0 := time.Now()
		if err := a.staging.WriteFile(f.path, f.data); err != nil {
			a.stats.FlushFailures++
			tmFlushFailures.Inc()
			return
		}
		tmFlushNs.ObserveSince(t0)
		tmFilesWritten.Inc()
		a.stats.FilesWritten++
		a.stats.PendingFiles--
		a.pending = a.pending[1:]
	}
}

// FlushAll rolls every open stream and attempts to write all queued files.
// It returns ErrSpilled if staging is unavailable and data remains queued.
func (a *Aggregator) FlushAll() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.state == aggCrashed {
		return fmt.Errorf("%w: %s", ErrAggregatorDown, a.ID)
	}
	a.heartbeatLocked()
	for cat, s := range a.streams {
		a.rollStreamLocked(cat, s)
	}
	a.retryPendingLocked()
	if len(a.pending) > 0 {
		return fmt.Errorf("%w: %d files queued on %s", ErrSpilled, len(a.pending), a.ID)
	}
	return nil
}

// Stop gracefully shuts the aggregator down: flush everything, then drop
// the ZooKeeper registration (the "restarted by an administrator" case).
func (a *Aggregator) Stop() error {
	err := a.FlushAll()
	a.mu.Lock()
	a.state = aggStopped
	a.mu.Unlock()
	a.conn.Close()
	return err
}

// Crash simulates a hard failure: open streams and queued files are dropped
// (and counted in MessagesDropped) and the ephemeral znode disappears.
func (a *Aggregator) Crash() {
	a.mu.Lock()
	for cat, s := range a.streams {
		a.stats.MessagesDropped += s.count
		a.stats.PendingMessages -= s.count
		tmAggDropped.Add(s.count)
		delete(a.streams, cat)
	}
	for _, f := range a.pending {
		a.stats.MessagesDropped += f.count
		tmAggDropped.Add(f.count)
	}
	a.stats.PendingFiles = 0
	a.pending = nil
	a.state = aggCrashed
	a.mu.Unlock()
	a.conn.Close()
}

// Stats returns a snapshot of the aggregator's counters.
func (a *Aggregator) Stats() AggregatorStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Network routes daemon batches to aggregators by id, standing in for the
// datacenter network.
type Network struct {
	mu   sync.Mutex
	aggs map[string]*Aggregator
	// FailSend, when set, injects a transport error for the given
	// aggregator id before delivery is attempted.
	FailSend func(aggID string) error
}

// NewNetwork returns an empty network.
func NewNetwork() *Network { return &Network{aggs: make(map[string]*Aggregator)} }

// Register makes an aggregator reachable.
func (n *Network) Register(a *Aggregator) {
	n.mu.Lock()
	n.aggs[a.ID] = a
	n.mu.Unlock()
}

// Send delivers a batch to the aggregator with the given id.
func (n *Network) Send(aggID string, batch []Entry) error {
	n.mu.Lock()
	a := n.aggs[aggID]
	fail := n.FailSend
	n.mu.Unlock()
	if fail != nil {
		if err := fail(aggID); err != nil {
			return err
		}
	}
	if a == nil {
		return fmt.Errorf("%w: %s unknown", ErrAggregatorDown, aggID)
	}
	return a.Append(batch)
}

// DaemonStats counts daemon activity.
type DaemonStats struct {
	Accepted       int64 // messages handed to Log
	Delivered      int64 // messages acked by an aggregator
	Spooled        int64 // messages currently in the local spool
	SpoolHighWater int64
	SendFailures   int64
	Rediscoveries  int64
}

// Daemon is the per-host Scribe client. Log buffers entries; batches are
// delivered to a discovered aggregator, spooling locally on failure.
type Daemon struct {
	Host string
	// BatchSize triggers an automatic flush when the pending batch reaches
	// this many entries.
	BatchSize int

	zkServer *zk.Server
	conn     *zk.Conn
	net      *Network
	rng      *rand.Rand

	mu      sync.Mutex
	spool   []Entry // undelivered entries, oldest first
	current string  // cached aggregator id, "" when unknown
	stats   DaemonStats
}

// NewDaemon creates a daemon for the given host. The seed drives aggregator
// selection so tests are deterministic.
func NewDaemon(host string, zkServer *zk.Server, net *Network, seed int64) *Daemon {
	return &Daemon{
		Host:      host,
		BatchSize: 200,
		zkServer:  zkServer,
		conn:      zkServer.Connect(zkSessionTimeout),
		net:       net,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Log accepts one message for delivery. Entries are flushed automatically
// once BatchSize accumulate; call Flush to force delivery.
func (d *Daemon) Log(category string, message []byte) {
	d.mu.Lock()
	msg := make([]byte, len(message))
	copy(msg, message)
	d.spool = append(d.spool, Entry{Category: category, Message: msg})
	d.stats.Accepted++
	tmDaemonAccept.Inc()
	d.stats.Spooled = int64(len(d.spool))
	if d.stats.Spooled > d.stats.SpoolHighWater {
		d.stats.SpoolHighWater = d.stats.Spooled
		tmSpoolHigh.SetMax(d.stats.Spooled)
	}
	flush := len(d.spool) >= d.BatchSize
	d.mu.Unlock()
	if flush {
		d.Flush() //nolint:errcheck // spooled entries are retried next flush
	}
}

// Flush attempts to deliver everything in the spool. On transport failure
// it rediscovers an aggregator via ZooKeeper and retries; entries remain
// spooled if no aggregator accepts them.
func (d *Daemon) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.spool) == 0 {
		return nil
	}
	const maxAttempts = 3
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if d.current == "" {
			id, err := d.discoverLocked()
			if err != nil {
				return fmt.Errorf("%w: %v", ErrSpilled, err)
			}
			d.current = id
		}
		batch := d.spool
		if err := d.net.Send(d.current, batch); err != nil {
			d.stats.SendFailures++
			tmSendFailures.Inc()
			d.current = "" // force rediscovery
			continue
		}
		d.stats.Delivered += int64(len(batch))
		d.spool = nil
		d.stats.Spooled = 0
		return nil
	}
	return fmt.Errorf("%w: %d entries after %d attempts", ErrSpilled, len(d.spool), maxAttempts)
}

// discoverLocked picks a random live aggregator from ZooKeeper — "the same
// mechanism is used for balancing load across aggregators" (§2).
func (d *Daemon) discoverLocked() (string, error) {
	d.stats.Rediscoveries++
	kids, err := d.conn.Children(AggregatorsZNode)
	if errors.Is(err, zk.ErrSessionExpired) || errors.Is(err, zk.ErrClosed) {
		// The session lapsed while the daemon was idle; reconnect, as the
		// ZooKeeper client library would after session loss.
		d.conn = d.zkServer.Connect(zkSessionTimeout)
		kids, err = d.conn.Children(AggregatorsZNode)
	}
	if err != nil {
		return "", err
	}
	if len(kids) == 0 {
		return "", ErrNoAggregators
	}
	pick := kids[d.rng.Intn(len(kids))]
	data, _, err := d.conn.Get(AggregatorsZNode + "/" + pick)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// Stats returns a snapshot of the daemon's counters.
func (d *Daemon) Stats() DaemonStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Close releases the daemon's ZooKeeper session. Spooled entries are
// reported, not silently dropped.
func (d *Daemon) Close() (spooled int64) {
	d.mu.Lock()
	spooled = int64(len(d.spool))
	d.mu.Unlock()
	d.conn.Close()
	return spooled
}

package scribe

import (
	"unilog/internal/telemetry"
)

// Telemetry instruments for the Scribe transport: process-global totals
// across every daemon and aggregator (per-instance numbers stay in
// AggregatorStats / DaemonStats), updated at batch and file granularity —
// never per message inside the hot append loop.
var (
	tmTapEntries    = telemetry.GetCounter("scribe.tap.entries")
	tmAggMessages   = telemetry.GetCounter("scribe.aggregator.messages")
	tmAggDropped    = telemetry.GetCounter("scribe.aggregator.dropped")
	tmFlushFailures = telemetry.GetCounter("scribe.staging.flush_failures")
	tmFilesWritten  = telemetry.GetCounter("scribe.staging.files")
	tmDaemonAccept  = telemetry.GetCounter("scribe.daemon.accepted")
	tmSendFailures  = telemetry.GetCounter("scribe.daemon.send_failures")
	tmSpoolHigh     = telemetry.GetGauge("scribe.daemon.spool.high_water")

	tmFlushNs = telemetry.GetHistogram("scribe.staging.flush.ns")
)

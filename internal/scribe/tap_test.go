package scribe

import (
	"errors"
	"fmt"
	"testing"
)

// TestAggregatorTap covers the realtime tap hook: kept entries are
// observed with their policy-resolved categories, policy-dropped entries
// are not, and a stopped aggregator taps nothing.
func TestAggregatorTap(t *testing.T) {
	dc, _ := newDC(t, 1, 0)
	agg := dc.Aggregators[0]
	agg.ConfigureCategory("noise", CategoryConfig{Blackhole: true})
	agg.ConfigureCategory("legacy", CategoryConfig{WriteAs: "merged"})

	var got []Entry
	agg.Tap = func(batch []Entry) { got = append(got, batch...) }

	err := agg.Append([]Entry{
		{Category: "client_events", Message: []byte("a")},
		{Category: "noise", Message: []byte("dropped")},
		{Category: "legacy", Message: []byte("b")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("tapped %d entries, want 2: %v", len(got), got)
	}
	if got[0].Category != "client_events" || string(got[0].Message) != "a" {
		t.Errorf("tapped[0] = %q/%q", got[0].Category, got[0].Message)
	}
	if got[1].Category != "merged" || string(got[1].Message) != "b" {
		t.Errorf("tapped[1] = %q/%q, want policy-resolved category merged", got[1].Category, got[1].Message)
	}

	// An empty or fully-dropped batch must not invoke the tap.
	calls := 0
	agg.Tap = func([]Entry) { calls++ }
	if err := agg.Append([]Entry{{Category: "noise", Message: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Errorf("tap invoked %d times for a fully-dropped batch", calls)
	}

	if err := agg.Stop(); err != nil {
		t.Fatal(err)
	}
	err = agg.Append([]Entry{{Category: "client_events", Message: []byte("late")}})
	if !errors.Is(err, ErrAggregatorDown) {
		t.Fatalf("Append after Stop = %v", err)
	}
	if calls != 0 {
		t.Errorf("tap invoked on a stopped aggregator")
	}
}

// TestAggregatorTapDelivery checks the tap observes exactly the messages
// that reach staging when traffic flows through daemons.
func TestAggregatorTapDelivery(t *testing.T) {
	dc, _ := newDC(t, 2, 3)
	tapped := 0
	for _, a := range dc.Aggregators {
		a.Tap = func(batch []Entry) { tapped += len(batch) }
	}
	const perDaemon = 40
	for i, d := range dc.Daemons {
		for k := 0; k < perDaemon; k++ {
			d.Log("client_events", []byte(fmt.Sprintf("msg-%d-%d", i, k)))
		}
	}
	if err := dc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	want := perDaemon * len(dc.Daemons)
	if tapped != want {
		t.Fatalf("tapped %d messages, want %d", tapped, want)
	}
	if msgs := stagingMessages(t, dc.Staging, "client_events", t0); len(msgs) != want {
		t.Fatalf("staged %d messages, want %d", len(msgs), want)
	}
}

package scribe

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"unilog/internal/hdfs"
	"unilog/internal/recordio"
	"unilog/internal/warehouse"
	"unilog/internal/zk"
)

var t0 = time.Date(2012, 8, 21, 14, 0, 0, 0, time.UTC)

func newDC(t *testing.T, nAggs, nDaemons int) (*Datacenter, *zk.ManualClock) {
	t.Helper()
	clock := zk.NewManualClock(t0)
	dc, err := NewDatacenter("dc1", hdfs.New(0), clock, nAggs, nDaemons, 42)
	if err != nil {
		t.Fatal(err)
	}
	return dc, clock
}

// stagingMessages decodes every staged message of a category-hour.
func stagingMessages(t *testing.T, fs *hdfs.FS, category string, hour time.Time) []string {
	t.Helper()
	dir := warehouse.StagingHourDir(category, hour)
	infos, err := fs.Walk(dir)
	if errors.Is(err, hdfs.ErrNotFound) {
		return nil
	}
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, fi := range infos {
		if fi.Path == dir+"/"+warehouse.SealedMarker {
			continue
		}
		data, err := fs.ReadFile(fi.Path)
		if err != nil {
			t.Fatal(err)
		}
		if err := recordio.ScanGzipFile(data, func(rec []byte) error {
			msgs = append(msgs, string(rec))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	return msgs
}

func TestDeliveryEndToEnd(t *testing.T) {
	dc, _ := newDC(t, 2, 3)
	const perDaemon = 50
	for i, d := range dc.Daemons {
		for j := 0; j < perDaemon; j++ {
			d.Log("client_events", []byte(fmt.Sprintf("msg-%d-%d", i, j)))
		}
	}
	if err := dc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	msgs := stagingMessages(t, dc.Staging, "client_events", t0)
	if len(msgs) != 3*perDaemon {
		t.Fatalf("staged %d messages, want %d", len(msgs), 3*perDaemon)
	}
	seen := make(map[string]bool)
	for _, m := range msgs {
		if seen[m] {
			t.Fatalf("duplicate message %q", m)
		}
		seen[m] = true
	}
	for _, d := range dc.Daemons {
		s := d.Stats()
		if s.Delivered != perDaemon || s.Spooled != 0 {
			t.Fatalf("daemon %s stats = %+v", d.Host, s)
		}
	}
}

func TestPerCategoryStreams(t *testing.T) {
	dc, _ := newDC(t, 1, 1)
	d := dc.Daemons[0]
	d.Log("client_events", []byte("a"))
	d.Log("search_logs", []byte("b"))
	d.Log("client_events", []byte("c"))
	if err := dc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if got := stagingMessages(t, dc.Staging, "client_events", t0); len(got) != 2 {
		t.Fatalf("client_events = %v", got)
	}
	if got := stagingMessages(t, dc.Staging, "search_logs", t0); len(got) != 1 || got[0] != "b" {
		t.Fatalf("search_logs = %v", got)
	}
}

// TestAggregatorFailover reproduces §2: "If an aggregator crashes ... Scribe
// daemons simply check ZooKeeper again to find another live aggregator."
func TestAggregatorFailover(t *testing.T) {
	dc, _ := newDC(t, 2, 1)
	d := dc.Daemons[0]
	d.Log("ce", []byte("before"))
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}

	// Stop whichever aggregator the daemon used; delivery must fail over.
	for _, a := range dc.Aggregators {
		if a.Stats().MessagesReceived > 0 {
			if err := a.Stop(); err != nil {
				t.Fatal(err)
			}
		}
	}
	d.Log("ce", []byte("after"))
	if err := d.Flush(); err != nil {
		t.Fatalf("flush after failover: %v", err)
	}
	if err := dc.FlushAll(); err != nil && !errors.Is(err, ErrAggregatorDown) {
		t.Fatal(err)
	}
	msgs := stagingMessages(t, dc.Staging, "ce", t0)
	if len(msgs) != 2 {
		t.Fatalf("messages after failover = %v", msgs)
	}
	if s := d.Stats(); s.Rediscoveries < 2 || s.SendFailures < 1 {
		t.Fatalf("daemon stats = %+v, expected rediscovery after failure", s)
	}
}

func TestAllAggregatorsDownSpools(t *testing.T) {
	dc, _ := newDC(t, 1, 1)
	if err := dc.Aggregators[0].Stop(); err != nil {
		t.Fatal(err)
	}
	d := dc.Daemons[0]
	d.Log("ce", []byte("stuck"))
	err := d.Flush()
	if !errors.Is(err, ErrSpilled) {
		t.Fatalf("err = %v, want ErrSpilled", err)
	}
	if s := d.Stats(); s.Spooled != 1 || s.Delivered != 0 {
		t.Fatalf("stats = %+v", s)
	}

	// A new aggregator comes up; the spool drains.
	a, err := NewAggregator("dc1-agg-new", dc.Staging, dc.ZooKeeper, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The datacenter's clock is manual; reuse it for determinism.
	a.clock = dc.clock
	dc.Net.Register(a)
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := a.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if msgs := stagingMessages(t, dc.Staging, "ce", t0); len(msgs) != 1 || msgs[0] != "stuck" {
		t.Fatalf("messages = %v", msgs)
	}
}

// TestStagingOutageBuffering reproduces §2: "aggregators buffer data on
// local disk in case of HDFS outages."
func TestStagingOutageBuffering(t *testing.T) {
	dc, _ := newDC(t, 1, 1)
	a := dc.Aggregators[0]
	a.RollRecords = 10
	d := dc.Daemons[0]

	dc.Staging.SetAvailable(false)
	for i := 0; i < 35; i++ {
		d.Log("ce", []byte(fmt.Sprintf("m%02d", i)))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := a.FlushAll(); !errors.Is(err, ErrSpilled) {
		t.Fatalf("FlushAll during outage err = %v, want ErrSpilled", err)
	}
	st := a.Stats()
	if st.FilesWritten != 0 || st.PendingFiles == 0 {
		t.Fatalf("stats during outage = %+v", st)
	}

	dc.Staging.SetAvailable(true)
	if err := a.FlushAll(); err != nil {
		t.Fatal(err)
	}
	msgs := stagingMessages(t, dc.Staging, "ce", t0)
	if len(msgs) != 35 {
		t.Fatalf("recovered %d messages, want 35", len(msgs))
	}
	// Order within the category stream is preserved.
	for i, m := range msgs {
		if m != fmt.Sprintf("m%02d", i) {
			t.Fatalf("msgs[%d] = %q, order not preserved", i, m)
		}
	}
}

func TestHardCrashAccountsLoss(t *testing.T) {
	dc, _ := newDC(t, 1, 1)
	a := dc.Aggregators[0]
	d := dc.Daemons[0]
	for i := 0; i < 20; i++ {
		d.Log("ce", []byte(fmt.Sprintf("m%d", i)))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	a.Crash()
	staged := stagingMessages(t, dc.Staging, "ce", t0)
	st := a.Stats()
	// Conservation: delivered = staged + dropped (nothing silently lost).
	if int64(len(staged))+st.MessagesDropped != d.Stats().Delivered {
		t.Fatalf("staged %d + dropped %d != delivered %d", len(staged), st.MessagesDropped, d.Stats().Delivered)
	}
	if err := a.Append([]Entry{{Category: "ce", Message: []byte("x")}}); err == nil {
		t.Fatal("append to crashed aggregator succeeded")
	}
}

func TestHourlyFileRolling(t *testing.T) {
	dc, clock := newDC(t, 1, 1)
	d := dc.Daemons[0]
	d.Log("ce", []byte("hour14"))
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Hour)
	d.Log("ce", []byte("hour15"))
	if err := dc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if msgs := stagingMessages(t, dc.Staging, "ce", t0); len(msgs) != 1 || msgs[0] != "hour14" {
		t.Fatalf("hour 14 = %v", msgs)
	}
	if msgs := stagingMessages(t, dc.Staging, "ce", t0.Add(time.Hour)); len(msgs) != 1 || msgs[0] != "hour15" {
		t.Fatalf("hour 15 = %v", msgs)
	}
}

func TestSealHourWritesMarkers(t *testing.T) {
	dc, _ := newDC(t, 1, 1)
	dc.Daemons[0].Log("ce", []byte("x"))
	if err := dc.SealHour([]string{"ce", "empty_cat"}, t0); err != nil {
		t.Fatal(err)
	}
	for _, cat := range []string{"ce", "empty_cat"} {
		marker := warehouse.StagingHourDir(cat, t0) + "/" + warehouse.SealedMarker
		if !dc.Staging.Exists(marker) {
			t.Fatalf("missing seal marker for %s", cat)
		}
	}
	// Sealing twice is idempotent.
	if err := dc.SealHour([]string{"ce"}, t0); err != nil {
		t.Fatal(err)
	}
}

func TestBatchSizeAutoFlush(t *testing.T) {
	dc, _ := newDC(t, 1, 1)
	d := dc.Daemons[0]
	d.BatchSize = 5
	for i := 0; i < 12; i++ {
		d.Log("ce", []byte{byte(i)})
	}
	if s := d.Stats(); s.Delivered != 10 || s.Spooled != 2 {
		t.Fatalf("stats = %+v, want 10 delivered 2 spooled", s)
	}
}

func TestLoadBalancing(t *testing.T) {
	dc, _ := newDC(t, 4, 16)
	for _, d := range dc.Daemons {
		d.Log("ce", []byte(d.Host))
		if err := d.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	busy := 0
	for _, a := range dc.Aggregators {
		if a.Stats().MessagesReceived > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d of 4 aggregators used by 16 daemons; random discovery not balancing", busy)
	}
}

func TestNetworkFailureInjection(t *testing.T) {
	dc, _ := newDC(t, 2, 1)
	calls := 0
	dc.Net.FailSend = func(aggID string) error {
		calls++
		if calls == 1 {
			return errors.New("injected transport failure")
		}
		return nil
	}
	d := dc.Daemons[0]
	d.Log("ce", []byte("x"))
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.SendFailures != 1 || s.Delivered != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDaemonCloseReportsSpool(t *testing.T) {
	dc, _ := newDC(t, 1, 1)
	if err := dc.Aggregators[0].Stop(); err != nil {
		t.Fatal(err)
	}
	d := dc.Daemons[0]
	d.Log("ce", []byte("orphan"))
	_ = d.Flush()
	if n := d.Close(); n != 1 {
		t.Fatalf("Close reported %d spooled, want 1", n)
	}
}

package scribe

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"unilog/internal/hdfs"
	"unilog/internal/recordio"
	"unilog/internal/warehouse"
	"unilog/internal/zk"
)

// countStaged decodes every staged message across all hours of a category.
func countStaged(t *testing.T, fs *hdfs.FS, category string) (int64, map[string]int) {
	t.Helper()
	infos, err := fs.Walk(warehouse.StagingRoot)
	if errors.Is(err, hdfs.ErrNotFound) {
		return 0, nil
	}
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	seen := make(map[string]int)
	for _, fi := range infos {
		if warehouse.IsAuxiliary(fi.Path) {
			continue
		}
		data, err := fs.ReadFile(fi.Path)
		if err != nil {
			t.Fatal(err)
		}
		if err := recordio.ScanGzipFile(data, func(rec []byte) error {
			n++
			seen[string(rec)]++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	return n, seen
}

// TestRandomFaultScheduleConservation drives the delivery layer through
// randomized fault schedules (aggregator stops, crashes, staging outages,
// transient network failures) and checks the conservation invariant on
// every run:
//
//	staged + spooled(daemons) + dropped(crashes) + buffered(pending) = accepted
//
// with no message duplicated in staging.
func TestRandomFaultScheduleConservation(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)))
			clock := zk.NewManualClock(time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC))
			staging := hdfs.New(0)
			dc, err := NewDatacenter("dc", staging, clock, 1+rng.Intn(3), 1+rng.Intn(4), int64(trial)*7+1)
			if err != nil {
				t.Fatal(err)
			}
			// Random transient network failures.
			dc.Net.FailSend = func(aggID string) error {
				if rng.Intn(10) == 0 {
					return errors.New("transient network blip")
				}
				return nil
			}

			var accepted int64
			aliveAggs := len(dc.Aggregators)
			for step := 0; step < 300; step++ {
				switch rng.Intn(20) {
				case 0: // staging outage toggle
					staging.SetAvailable(!staging.Available())
				case 1: // graceful stop of a random live aggregator
					if aliveAggs > 1 {
						a := dc.Aggregators[rng.Intn(len(dc.Aggregators))]
						if err := a.FlushAll(); err == nil || errors.Is(err, ErrSpilled) {
							_ = a.Stop()
							aliveAggs--
						}
					}
				case 2: // hard crash of a random live aggregator
					if aliveAggs > 1 {
						dc.Aggregators[rng.Intn(len(dc.Aggregators))].Crash()
						aliveAggs--
					}
				case 3:
					clock.Advance(time.Duration(rng.Intn(90)) * time.Minute)
				}
				d := dc.Daemons[rng.Intn(len(dc.Daemons))]
				d.Log("ce", []byte(fmt.Sprintf("t%02d-m%04d", trial, step)))
				accepted++
				if rng.Intn(5) == 0 {
					_ = d.Flush() // failures leave entries spooled; that's fine
				}
			}
			staging.SetAvailable(true)
			for _, d := range dc.Daemons {
				_ = d.Flush()
			}
			for _, a := range dc.Aggregators {
				_ = a.FlushAll()
			}

			staged, seen := countStaged(t, staging, "ce")
			for msg, n := range seen {
				if n > 1 {
					t.Fatalf("message %q staged %d times", msg, n)
				}
			}
			var spooled, delivered int64
			for _, d := range dc.Daemons {
				s := d.Stats()
				spooled += s.Spooled
				delivered += s.Delivered
			}
			var dropped, pending int64
			for _, a := range dc.Aggregators {
				s := a.Stats()
				dropped += s.MessagesDropped
				pending += s.PendingMessages
				for _, f := range a.pendingFilesSnapshot() {
					pending += f
				}
			}
			if got := staged + spooled + dropped + pending; got != accepted {
				t.Fatalf("conservation violated: staged %d + spooled %d + dropped %d + pending %d = %d, accepted %d",
					staged, spooled, dropped, pending, got, accepted)
			}
			if delivered != staged+dropped+pending {
				t.Fatalf("delivered %d != staged %d + dropped %d + pending %d", delivered, staged, dropped, pending)
			}
		})
	}
}

// pendingFilesSnapshot exposes queued-file message counts for the
// conservation check.
func (a *Aggregator) pendingFilesSnapshot() []int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]int64, 0, len(a.pending))
	for _, f := range a.pending {
		out = append(out, f.count)
	}
	return out
}

package scribe

import (
	"fmt"
	"time"

	"unilog/internal/hdfs"
	"unilog/internal/warehouse"
	"unilog/internal/zk"
)

// Datacenter wires one datacenter of Figure 1 together: a ZooKeeper
// ensemble, a staging HDFS cluster, a set of aggregators co-located with
// it, and Scribe daemons on the production hosts.
type Datacenter struct {
	Name        string
	Staging     *hdfs.FS
	ZooKeeper   *zk.Server
	Net         *Network
	Aggregators []*Aggregator
	Daemons     []*Daemon

	clock zk.Clock
}

// NewDatacenter builds a datacenter with the given numbers of aggregators
// and daemons. All randomness derives from seed.
func NewDatacenter(name string, staging *hdfs.FS, clock zk.Clock, nAggs, nDaemons int, seed int64) (*Datacenter, error) {
	if clock == nil {
		clock = zk.SystemClock{}
	}
	dc := &Datacenter{
		Name:      name,
		Staging:   staging,
		ZooKeeper: zk.NewServer(clock),
		Net:       NewNetwork(),
		clock:     clock,
	}
	for i := 0; i < nAggs; i++ {
		a, err := NewAggregator(fmt.Sprintf("%s-agg%02d", name, i), staging, dc.ZooKeeper, clock)
		if err != nil {
			return nil, err
		}
		dc.Net.Register(a)
		dc.Aggregators = append(dc.Aggregators, a)
	}
	for i := 0; i < nDaemons; i++ {
		d := NewDaemon(fmt.Sprintf("%s-host%03d", name, i), dc.ZooKeeper, dc.Net, seed+int64(i))
		dc.Daemons = append(dc.Daemons, d)
	}
	return dc, nil
}

// FlushAll drains every daemon spool and every aggregator buffer to the
// staging cluster. The first error is returned but all components are
// attempted.
func (dc *Datacenter) FlushAll() error {
	var first error
	for _, d := range dc.Daemons {
		if err := d.Flush(); err != nil && first == nil {
			first = err
		}
	}
	for _, a := range dc.Aggregators {
		if err := a.FlushAll(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SealHour flushes everything and writes the _SEALED marker for each given
// category-hour, signalling to the log mover that this datacenter has
// transferred all its logs for the hour (§2: the mover "ensures that ...
// all datacenters that produce a given log category have transferred their
// logs").
func (dc *Datacenter) SealHour(categories []string, hour time.Time) error {
	if err := dc.FlushAll(); err != nil {
		return err
	}
	for _, cat := range categories {
		dir := warehouse.StagingHourDir(cat, hour)
		if err := dc.Staging.MkdirAll(dir); err != nil {
			return err
		}
		marker := dir + "/" + warehouse.SealedMarker
		if dc.Staging.Exists(marker) {
			continue
		}
		if err := dc.Staging.WriteFile(marker, nil); err != nil {
			return err
		}
	}
	return nil
}

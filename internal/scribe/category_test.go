package scribe

import (
	"fmt"
	"testing"
)

func TestCategoryBlackhole(t *testing.T) {
	dc, _ := newDC(t, 1, 1)
	a := dc.Aggregators[0]
	a.ConfigureCategory("decommissioned", CategoryConfig{Blackhole: true})
	d := dc.Daemons[0]
	for i := 0; i < 10; i++ {
		d.Log("decommissioned", []byte("x"))
		d.Log("live", []byte("y"))
	}
	if err := dc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if msgs := stagingMessages(t, dc.Staging, "decommissioned", t0); len(msgs) != 0 {
		t.Fatalf("blackholed messages staged: %d", len(msgs))
	}
	if msgs := stagingMessages(t, dc.Staging, "live", t0); len(msgs) != 10 {
		t.Fatalf("live messages = %d", len(msgs))
	}
	if st := a.Stats(); st.PolicyDropped != 10 {
		t.Fatalf("PolicyDropped = %d", st.PolicyDropped)
	}
}

func TestCategorySampling(t *testing.T) {
	dc, _ := newDC(t, 1, 1)
	a := dc.Aggregators[0]
	a.ConfigureCategory("hot", CategoryConfig{SampleKeepOneIn: 5})
	d := dc.Daemons[0]
	const n = 53
	for i := 0; i < n; i++ {
		d.Log("hot", []byte(fmt.Sprintf("m%02d", i)))
	}
	if err := dc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	msgs := stagingMessages(t, dc.Staging, "hot", t0)
	want := (n + 4) / 5 // exactly one per window of five
	if len(msgs) != want {
		t.Fatalf("sampled %d of %d, want %d", len(msgs), n, want)
	}
	if st := a.Stats(); st.PolicyDropped != int64(n-want) {
		t.Fatalf("PolicyDropped = %d", st.PolicyDropped)
	}
}

func TestCategoryWriteAs(t *testing.T) {
	dc, _ := newDC(t, 1, 1)
	dc.Aggregators[0].ConfigureCategory("old_name", CategoryConfig{WriteAs: "new_name"})
	d := dc.Daemons[0]
	d.Log("old_name", []byte("payload"))
	if err := dc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if msgs := stagingMessages(t, dc.Staging, "old_name", t0); len(msgs) != 0 {
		t.Fatalf("old category received data: %v", msgs)
	}
	if msgs := stagingMessages(t, dc.Staging, "new_name", t0); len(msgs) != 1 || msgs[0] != "payload" {
		t.Fatalf("redirected = %v", msgs)
	}
}

func TestCategoryRollOverride(t *testing.T) {
	dc, _ := newDC(t, 1, 1)
	a := dc.Aggregators[0]
	a.RollRecords = 1000
	a.ConfigureCategory("small_files", CategoryConfig{RollRecords: 3})
	d := dc.Daemons[0]
	for i := 0; i < 9; i++ {
		d.Log("small_files", []byte("x"))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	// Three files rolled at 3 records each, before any FlushAll.
	if st := a.Stats(); st.FilesWritten != 3 {
		t.Fatalf("FilesWritten = %d, want 3", st.FilesWritten)
	}
}

func TestUnconfiguredCategoriesUnaffected(t *testing.T) {
	dc, _ := newDC(t, 1, 1)
	dc.Aggregators[0].ConfigureCategory("other", CategoryConfig{Blackhole: true})
	d := dc.Daemons[0]
	d.Log("normal", []byte("m"))
	if err := dc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if msgs := stagingMessages(t, dc.Staging, "normal", t0); len(msgs) != 1 {
		t.Fatalf("normal = %v", msgs)
	}
}

package scribe

// CategoryConfig is the §2 "configuration metadata" associated with a
// Scribe category, which determines "among other things, where the data is
// written". Unconfigured categories get default behaviour.
type CategoryConfig struct {
	// WriteAs redirects the category's staging output under a different
	// category name — how renamed or consolidated categories keep flowing
	// without touching producers.
	WriteAs string
	// RollRecords overrides the aggregator's default file-roll threshold
	// for this category (high-volume categories roll sooner).
	RollRecords int64
	// SampleKeepOneIn keeps only every Nth message (0 and 1 keep all) —
	// the escape hatch for categories too hot to log in full.
	SampleKeepOneIn int64
	// Blackhole drops the category entirely (decommissioned producers).
	Blackhole bool
}

// ConfigureCategory installs configuration metadata for a category on this
// aggregator. In production this lived in the config store every
// aggregator read; here it is set per aggregator by the test or operator.
func (a *Aggregator) ConfigureCategory(category string, cfg CategoryConfig) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.catConfigs == nil {
		a.catConfigs = make(map[string]CategoryConfig)
	}
	a.catConfigs[category] = cfg
	if a.catSampleCounters == nil {
		a.catSampleCounters = make(map[string]int64)
	}
}

// applyCategoryPolicyLocked resolves the effective category, roll
// threshold, and whether this message should be kept. Counters make
// sampling deterministic: exactly one in every N consecutive messages of
// the category survives.
func (a *Aggregator) applyCategoryPolicyLocked(category string) (effective string, rollRecords int64, keep bool) {
	effective, rollRecords, keep = category, a.RollRecords, true
	cfg, ok := a.catConfigs[category]
	if !ok {
		return
	}
	if cfg.Blackhole {
		a.stats.PolicyDropped++
		return "", 0, false
	}
	if cfg.SampleKeepOneIn > 1 {
		a.catSampleCounters[category]++
		if a.catSampleCounters[category]%cfg.SampleKeepOneIn != 1 {
			a.stats.PolicyDropped++
			return "", 0, false
		}
	}
	if cfg.WriteAs != "" {
		effective = cfg.WriteAs
	}
	if cfg.RollRecords > 0 {
		rollRecords = cfg.RollRecords
	}
	return effective, rollRecords, true
}

// Package workload generates deterministic synthetic Twitter-like traffic,
// standing in for the production logs the paper's infrastructure ingested
// (~100 TB/day; we cannot obtain them).
//
// The generator plants *known ground truth* so every analytics experiment
// verifies recovery of configured values rather than eyeballing noise:
//
//   - event popularity is Zipf-skewed (frequent events dominate, which is
//     what makes the frequency-ordered dictionary effective);
//   - each engagement feature (who-to-follow, search results, trends,
//     discover stories) has a configured click-through and follow-through
//     rate, recovered in experiment E7;
//   - signup sessions walk a five-stage funnel with configured per-stage
//     continuation probabilities, recovered in experiment E6;
//   - page navigation is Markovian, so n-gram models find real temporal
//     signal (experiment E8);
//   - one event pair ("tweet expand" → "profile click") is planted as a
//     strong collocation (experiment E9);
//   - sessions per client and country, logged-in/out mix, and exact session
//     boundaries (>30-minute gaps) are all recorded in the returned Truth.
//
// All randomness flows from Config.Seed; identical configs produce
// byte-identical event streams.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"unilog/internal/events"
	"unilog/internal/geo"
	"unilog/internal/hdfs"
	"unilog/internal/warehouse"
)

// Feature keys used in Config.CTR / Config.FTR and Truth maps.
const (
	FeatureWhoToFollow = "who_to_follow"
	FeatureSearch      = "search_results"
	FeatureTrends      = "trends"
	FeatureDiscover    = "discover_stories"
)

// userAgents approximates the per-client user-agent header logged with
// every frontend event; verbose but highly compressible, like the real
// thing.
var userAgents = map[string]string{
	"web":        "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_7_4) AppleWebKit/536.11 (KHTML, like Gecko) Chrome/20.0.1132.47 Safari/536.11",
	"iphone":     "Twitter-iPhone/4.3.2 iOS/5.1.1 (Apple;iPhone4,1;;;;;1)",
	"android":    "TwitterAndroid/3.2.1 (240) ICS/15 (samsung;GT-I9100;;;;;0)",
	"ipad":       "Twitter-iPad/4.3.2 iOS/5.1.1 (Apple;iPad2,1;;;;;1)",
	"mobile_web": "Mozilla/5.0 (Linux; U; Android 4.0.4; en-us; Galaxy Nexus) AppleWebKit/534.30 Mobile Safari/534.30",
}

// splitmix64 mixes a user id into a stable pseudo-random cookie value.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Clients and their traffic shares; the consistent design language of §3.2
// means the same sections/components exist on every client.
var defaultClients = []weighted{
	{"web", 45}, {"iphone", 25}, {"android", 20}, {"ipad", 5}, {"mobile_web", 5},
}

var defaultCountries = []weighted{
	{"us", 35}, {"jp", 15}, {"uk", 10}, {"br", 10}, {"in", 10}, {"de", 8}, {"id", 7}, {"mx", 5},
}

type weighted struct {
	key    string
	weight int
}

func pick(rng *rand.Rand, ws []weighted) string {
	total := 0
	for _, w := range ws {
		total += w.weight
	}
	n := rng.Intn(total)
	for _, w := range ws {
		n -= w.weight
		if n < 0 {
			return w.key
		}
	}
	return ws[len(ws)-1].key
}

// Config parameterizes a generated day of traffic.
type Config struct {
	Seed int64
	// Day is the UTC day events fall into.
	Day time.Time
	// Users is the logged-in population size.
	Users int
	// MaxSessionsPerUser bounds how many sessions a user starts (>= 1).
	MaxSessionsPerUser int
	// MeanPageVisits controls session length (pages visited per session).
	MeanPageVisits int
	// LoggedOutSessions adds sessions with user id 0 (unique cookies).
	LoggedOutSessions int
	// SignupFraction of logged-out sessions enter the signup funnel.
	SignupFraction float64
	// FunnelContinue[i] is P(reach stage i+1 | reached stage i).
	FunnelContinue []float64
	// CTR is the planted click-through rate per feature.
	CTR map[string]float64
	// FTR is the planted follow-through rate per feature.
	FTR map[string]float64
	// CollocationProb is P(profile click immediately after tweet expand).
	CollocationProb float64
}

// DefaultConfig returns the standard experiment workload for the given day.
func DefaultConfig(day time.Time) Config {
	return Config{
		Seed:               2012,
		Day:                day.UTC().Truncate(24 * time.Hour),
		Users:              500,
		MaxSessionsPerUser: 3,
		MeanPageVisits:     8,
		LoggedOutSessions:  150,
		SignupFraction:     0.6,
		FunnelContinue:     []float64{0.65, 0.75, 0.80, 0.90},
		CTR: map[string]float64{
			FeatureWhoToFollow: 0.12,
			FeatureSearch:      0.35,
			FeatureTrends:      0.08,
			FeatureDiscover:    0.18,
		},
		FTR: map[string]float64{
			FeatureWhoToFollow: 0.05,
		},
		CollocationProb: 0.70,
	}
}

// Truth is the generator's ground truth, used to verify analytics results.
type Truth struct {
	Events             int64
	Sessions           int64
	UniqueUsers        int64
	LoggedOutSessions  int64
	SessionsPerClient  map[string]int64
	SessionsPerCountry map[string]int64
	// FeatureImpressions / Clicks / Follows count planted engagement.
	FeatureImpressions map[string]int64
	FeatureClicks      map[string]int64
	FeatureFollows     map[string]int64
	// FunnelStage[i] counts sessions that reached funnel stage i.
	FunnelStage []int64
	// UserCountry and UserClient record each logged-in user's attributes —
	// the "users table" data scientists join against (§4.1).
	UserCountry map[int64]string
	UserClient  map[int64]string
	// ExpandEvents and ExpandThenProfileClick track the planted collocation.
	ExpandEvents           int64
	ExpandThenProfileClick int64
}

func newTruth() *Truth {
	return &Truth{
		SessionsPerClient:  make(map[string]int64),
		SessionsPerCountry: make(map[string]int64),
		FeatureImpressions: make(map[string]int64),
		FeatureClicks:      make(map[string]int64),
		FeatureFollows:     make(map[string]int64),
		FunnelStage:        make([]int64, 5),
		UserCountry:        make(map[int64]string),
		UserClient:         make(map[int64]string),
	}
}

// FunnelStages returns the five signup-funnel event names for a client, in
// order. Stage names are identical across clients modulo the client
// component, per the paper's consistent design language.
func FunnelStages(client string) []string {
	stages := []string{"start:view", "form:submit", "interests:select", "follow_suggestions:view", "complete:view"}
	out := make([]string, len(stages))
	for i, s := range stages {
		out[i] = client + ":signup:flow:step:" + s
	}
	return out
}

// FeaturePatterns maps each feature to the (impression, click) event-name
// suffixes analytics use to measure CTR.
var featureEvents = map[string]struct{ section, component, element string }{
	FeatureWhoToFollow: {"who_to_follow", "module", "user"},
	FeatureSearch:      {"results", "stream", "result"},
	FeatureTrends:      {"trends", "module", "trend"},
	FeatureDiscover:    {"stories", "stream", "story"},
}

// featurePage maps features to the page they live on.
var featurePage = map[string]string{
	FeatureWhoToFollow: "home",
	FeatureSearch:      "search",
	FeatureTrends:      "home",
	FeatureDiscover:    "discover",
}

// FeatureImpressionName returns the full impression event name of a feature
// on a client.
func FeatureImpressionName(client, feature string) string {
	fe := featureEvents[feature]
	return fmt.Sprintf("%s:%s:%s:%s:%s:impression", client, featurePage[feature], fe.section, fe.component, fe.element)
}

// FeatureClickName returns the full click event name of a feature.
func FeatureClickName(client, feature string) string {
	fe := featureEvents[feature]
	return fmt.Sprintf("%s:%s:%s:%s:%s:click", client, featurePage[feature], fe.section, fe.component, fe.element)
}

// FeatureFollowName returns the follow event name of a feature.
func FeatureFollowName(client, feature string) string {
	fe := featureEvents[feature]
	return fmt.Sprintf("%s:%s:%s:%s:%s:follow", client, featurePage[feature], fe.section, fe.component, fe.element)
}

// Markov page-navigation transition table: page → candidate next pages.
// The structure gives bigram models real predictive power (E8).
var pageTransitions = map[string][]weighted{
	"home":     {{"home", 40}, {"search", 15}, {"profile", 15}, {"discover", 20}, {"connect", 10}},
	"search":   {{"search", 30}, {"home", 40}, {"profile", 20}, {"discover", 10}},
	"profile":  {{"home", 50}, {"profile", 25}, {"search", 15}, {"connect", 10}},
	"discover": {{"home", 45}, {"discover", 35}, {"search", 10}, {"profile", 10}},
	"connect":  {{"home", 60}, {"profile", 30}, {"connect", 10}},
}

// Generator produces one day of traffic. A Generator is single-use: call
// Generate or GenerateTo exactly once.
type Generator struct {
	cfg   Config
	rng   *rand.Rand
	truth *Truth
	sink  func(*events.ClientEvent) error
	err   error // first sink error; generation short-circuits on it
}

// New returns a generator for the given config.
func New(cfg Config) *Generator {
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), truth: newTruth()}
}

// sessionPlan is one scheduled session: everything decided up front so
// sessions can then be emitted in start-time order.
type sessionPlan struct {
	userID  int64
	cookie  string
	client  string
	country string
	ip      string
	start   time.Time
	signup  bool
}

// GenerateTo streams the day's events into sink — sessions in start-time
// order, each session's events in time order — without ever materializing
// a []events.ClientEvent, which is what lets benchrunner synthesize days
// orders of magnitude past the shared corpus. Planning (user attributes
// and session start times) happens first and is cheap: one schedule entry
// per session, not per event. The emitted stream is only approximately
// timestamp-ordered globally (concurrent sessions interleave at session
// granularity); the warehouse writer buckets by each event's own hour, and
// every downstream consumer orders or windows by the event timestamp.
// Generate wraps this with a slice sink and a final stable sort for
// callers that need the exact global order. A sink error aborts generation
// and is returned.
func (g *Generator) GenerateTo(sink func(*events.ClientEvent) error) (*Truth, error) {
	g.sink = sink
	var plans []sessionPlan
	// Logged-in users.
	for u := 1; u <= g.cfg.Users; u++ {
		userID := int64(u)
		client := pick(g.rng, defaultClients)
		country := pick(g.rng, defaultCountries)
		g.truth.UserCountry[userID] = country
		g.truth.UserClient[userID] = client
		ip := geo.IPFor(country, userID)
		cookie := fmt.Sprintf("%016x", splitmix64(uint64(userID)))
		nSessions := 1 + g.rng.Intn(g.cfg.MaxSessionsPerUser)
		for _, start := range g.sessionStarts(nSessions) {
			plans = append(plans, sessionPlan{userID: userID, cookie: cookie, client: client, country: country, ip: ip, start: start})
		}
	}
	// Logged-out sessions: half browse, SignupFraction enter the funnel.
	for s := 0; s < g.cfg.LoggedOutSessions; s++ {
		client := pick(g.rng, defaultClients)
		country := pick(g.rng, defaultCountries)
		plans = append(plans, sessionPlan{
			cookie:  fmt.Sprintf("%016x", splitmix64(uint64(1<<40+s))),
			client:  client,
			country: country,
			ip:      geo.IPFor(country, int64(1e6+s)),
			start:   g.randomStart(),
			signup:  g.rng.Float64() < g.cfg.SignupFraction,
		})
	}
	// Emit sessions in start order. The stable sort keeps the schedule —
	// and therefore the RNG draw order — deterministic for a given seed.
	sort.SliceStable(plans, func(i, j int) bool { return plans[i].start.Before(plans[j].start) })
	users := make(map[int64]bool)
	for i := range plans {
		if g.err != nil {
			break
		}
		p := &plans[i]
		if p.signup {
			g.signupSession(p.cookie, p.client, p.country, p.ip, p.start)
		} else {
			g.browseSessionAs(p.userID, p.cookie, p.client, p.country, p.ip, p.start)
			if p.userID != 0 {
				users[p.userID] = true
			}
		}
	}
	g.truth.UniqueUsers = int64(len(users))
	if g.err != nil {
		return nil, g.err
	}
	return g.truth, nil
}

// Generate produces the full day of events, sorted by timestamp, together
// with the ground truth. It is a thin materializing wrapper around
// GenerateTo; out-of-core callers should stream through GenerateTo
// instead.
func (g *Generator) Generate() ([]events.ClientEvent, *Truth) {
	var out []events.ClientEvent
	truth, err := g.GenerateTo(func(e *events.ClientEvent) error {
		out = append(out, *e)
		return nil
	})
	if err != nil {
		panic(err) // unreachable: the slice sink cannot fail
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Timestamp < out[j].Timestamp })
	return out, truth
}

// sessionStarts returns nSessions start times separated by well over the
// 30-minute inactivity gap, so ground-truth session counts are exact.
func (g *Generator) sessionStarts(n int) []time.Time {
	// Slot the day into n equal windows, leaving the last 2 hours free so
	// sessions cannot spill past midnight.
	usable := 22 * time.Hour
	slot := usable / time.Duration(n)
	starts := make([]time.Time, n)
	for i := range starts {
		jitter := time.Duration(g.rng.Int63n(int64(slot / 2)))
		starts[i] = g.cfg.Day.Add(time.Duration(i)*slot + jitter)
	}
	return starts
}

func (g *Generator) randomStart() time.Time {
	return g.cfg.Day.Add(time.Duration(g.rng.Int63n(int64(22 * time.Hour))))
}

// emit appends one event, enriching its details the way production
// clients do: a unique request id (high entropy — this is what keeps raw
// logs big even after gzip), the user agent, and client build metadata.
// Session sequences discard all of it, which is where the §4.2 compression
// factor comes from.
func (g *Generator) emit(userID int64, cookie, client, ip string, at time.Time, name string, details map[string]string) {
	if g.err != nil {
		return
	}
	if details == nil {
		details = make(map[string]string, 4)
	}
	details["request_id"] = fmt.Sprintf("%016x%016x", g.rng.Uint64(), g.rng.Uint64())
	details["ua"] = userAgents[client]
	details["lang"] = "en"
	details["render_ms"] = fmt.Sprint(10 + g.rng.Intn(400))
	e := events.ClientEvent{
		Initiator: events.InitiatorClientUser,
		Name:      events.MustParseName(name),
		UserID:    userID,
		SessionID: cookie,
		IP:        ip,
		Timestamp: at.UnixMilli(),
		Details:   details,
	}
	if err := g.sink(&e); err != nil {
		g.err = err
		return
	}
	g.truth.Events++
}

// snowflake fabricates a Twitter-style 18-digit object id — the kind of
// high-entropy payload production event details are full of.
func (g *Generator) snowflake() string {
	return fmt.Sprint(100000000000000000 + g.rng.Int63n(899999999999999999))
}

// step advances the session clock by a few seconds — always far below the
// inactivity gap.
func (g *Generator) step(at *time.Time) {
	*at = at.Add(time.Duration(2+g.rng.Intn(28)) * time.Second)
}

// browseSessionAs emits one browsing session: a Markov walk over pages with
// per-page feature engagement.
func (g *Generator) browseSessionAs(userID int64, cookie, client, country, ip string, start time.Time) {
	g.truth.Sessions++
	g.truth.SessionsPerClient[client]++
	g.truth.SessionsPerCountry[country]++
	if userID == 0 {
		g.truth.LoggedOutSessions++
	}
	at := start
	page := "home"
	visits := 1 + g.rng.Intn(2*g.cfg.MeanPageVisits)
	// Session open event.
	g.emit(userID, cookie, client, ip, at, client+":"+page+":::page:open", nil)
	for v := 0; v < visits; v++ {
		g.visitPage(userID, cookie, client, ip, &at, page)
		next := pick(g.rng, pageTransitions[page])
		if next != page {
			g.step(&at)
			g.emit(userID, cookie, client, ip, at, client+":"+next+":::page:open", nil)
		}
		page = next
	}
}

// visitPage emits the engagement events of one page visit.
func (g *Generator) visitPage(userID int64, cookie, client, ip string, at *time.Time, page string) {
	switch page {
	case "home":
		// Timeline tweets: the dominant (Zipf head) event.
		nTweets := 1 + g.rng.Intn(6)
		for i := 0; i < nTweets; i++ {
			g.step(at)
			g.emit(userID, cookie, client, ip, *at, client+":home:timeline:stream:tweet:impression",
				map[string]string{"tweet_id": g.snowflake(), "author_id": fmt.Sprint(g.rng.Intn(5000000))})
		}
		// Planted collocation: expand → profile click.
		if g.rng.Float64() < 0.35 {
			g.step(at)
			g.emit(userID, cookie, client, ip, *at, client+":home:timeline:stream:tweet:expand", nil)
			g.truth.ExpandEvents++
			if g.rng.Float64() < g.cfg.CollocationProb {
				g.step(at)
				g.emit(userID, cookie, client, ip, *at, client+":home:timeline:stream:avatar:profile_click",
					map[string]string{"profile_id": fmt.Sprint(g.rng.Intn(100000))})
				g.truth.ExpandThenProfileClick++
			}
		}
		g.engageFeature(userID, cookie, client, ip, at, FeatureWhoToFollow, 0.5)
		g.engageFeature(userID, cookie, client, ip, at, FeatureTrends, 0.6)
	case "search":
		g.step(at)
		g.emit(userID, cookie, client, ip, *at, client+":search:::search_box:query",
			map[string]string{"q": fmt.Sprintf("q%03d", g.rng.Intn(500))})
		g.engageFeature(userID, cookie, client, ip, at, FeatureSearch, 1.0)
	case "discover":
		g.engageFeature(userID, cookie, client, ip, at, FeatureDiscover, 0.9)
	case "profile":
		g.step(at)
		g.emit(userID, cookie, client, ip, *at, client+":profile:tweets:stream:tweet:impression",
			map[string]string{"tweet_id": g.snowflake()})
		if g.rng.Float64() < 0.15 {
			g.step(at)
			g.emit(userID, cookie, client, ip, *at, client+":profile:::follow_button:follow", nil)
		}
	case "connect":
		g.step(at)
		g.emit(userID, cookie, client, ip, *at, client+":connect:mentions:stream:tweet:impression",
			map[string]string{"tweet_id": g.snowflake()})
	}
}

// engageFeature shows a feature with probability show, then clicks/follows
// per the planted CTR/FTR.
func (g *Generator) engageFeature(userID int64, cookie, client, ip string, at *time.Time, feature string, show float64) {
	if g.rng.Float64() >= show {
		return
	}
	g.step(at)
	g.emit(userID, cookie, client, ip, *at, FeatureImpressionName(client, feature),
		map[string]string{"item_id": g.snowflake()})
	g.truth.FeatureImpressions[feature]++
	if g.rng.Float64() < g.cfg.CTR[feature] {
		g.step(at)
		g.emit(userID, cookie, client, ip, *at, FeatureClickName(client, feature),
			map[string]string{"rank": fmt.Sprint(1 + g.rng.Intn(10))})
		g.truth.FeatureClicks[feature]++
	}
	if ftr, ok := g.cfg.FTR[feature]; ok && g.rng.Float64() < ftr {
		g.step(at)
		g.emit(userID, cookie, client, ip, *at, FeatureFollowName(client, feature), nil)
		g.truth.FeatureFollows[feature]++
	}
}

// signupSession walks the signup funnel, dropping out per FunnelContinue.
func (g *Generator) signupSession(cookie, client, country, ip string, start time.Time) {
	g.truth.Sessions++
	g.truth.SessionsPerClient[client]++
	g.truth.SessionsPerCountry[country]++
	g.truth.LoggedOutSessions++
	stages := FunnelStages(client)
	at := start
	for i, stage := range stages {
		g.emit(0, cookie, client, ip, at, stage, nil)
		g.truth.FunnelStage[i]++
		if i < len(g.cfg.FunnelContinue) && g.rng.Float64() >= g.cfg.FunnelContinue[i] {
			return
		}
		g.step(&at)
	}
}

// WriteWarehouse sorts the events by time and writes them into warehouse
// layout on fs — the fast path used when the delivery pipeline itself is
// not under test.
func WriteWarehouse(fs *hdfs.FS, evs []events.ClientEvent) error {
	w := warehouse.NewWriter(fs, events.Category)
	for i := range evs {
		if err := w.Append(&evs[i]); err != nil {
			return err
		}
	}
	return w.Close()
}

package workload

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"unilog/internal/events"
	"unilog/internal/geo"
	"unilog/internal/hdfs"
	"unilog/internal/session"
	"unilog/internal/warehouse"
)

var day = time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)

func smallConfig() Config {
	cfg := DefaultConfig(day)
	cfg.Users = 100
	cfg.LoggedOutSessions = 40
	return cfg
}

func TestDeterminism(t *testing.T) {
	evs1, truth1 := New(smallConfig()).Generate()
	evs2, truth2 := New(smallConfig()).Generate()
	if len(evs1) != len(evs2) || truth1.Events != truth2.Events || truth1.Sessions != truth2.Sessions {
		t.Fatalf("non-deterministic: %d/%d events", len(evs1), len(evs2))
	}
	for i := range evs1 {
		if evs1[i].Name != evs2[i].Name || evs1[i].Timestamp != evs2[i].Timestamp || evs1[i].UserID != evs2[i].UserID {
			t.Fatalf("event %d differs", i)
		}
	}
	// A different seed produces different traffic.
	cfg := smallConfig()
	cfg.Seed = 99
	evs3, _ := New(cfg).Generate()
	same := len(evs3) == len(evs1)
	if same {
		diff := false
		for i := range evs1 {
			if evs1[i].Name != evs3[i].Name {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Fatal("different seeds produced identical traffic")
	}
}

func TestEventsValidAndOrdered(t *testing.T) {
	evs, truth := New(smallConfig()).Generate()
	if int64(len(evs)) != truth.Events {
		t.Fatalf("len = %d, truth = %d", len(evs), truth.Events)
	}
	var prev int64
	for i := range evs {
		if err := evs[i].Name.Validate(); err != nil {
			t.Fatalf("event %d invalid: %v", i, err)
		}
		if evs[i].Timestamp < prev {
			t.Fatalf("events not time-ordered at %d", i)
		}
		prev = evs[i].Timestamp
		// Every event stays inside the generated day.
		at := time.UnixMilli(evs[i].Timestamp).UTC()
		if at.Before(day) || !at.Before(day.Add(24*time.Hour)) {
			t.Fatalf("event %d at %v outside day", i, at)
		}
	}
}

// TestSessionCountMatchesSessionizer: the generator's ground-truth session
// count must agree with the 30-minute-gap sessionizer applied to its own
// output — the linchpin of every session-level experiment.
func TestSessionCountMatchesSessionizer(t *testing.T) {
	evs, truth := New(smallConfig()).Generate()
	hist := make(map[string]int64)
	for i := range evs {
		hist[evs[i].Name.String()]++
	}
	dict, err := session.Build(hist)
	if err != nil {
		t.Fatal(err)
	}
	b := session.NewBuilder(dict)
	for i := range evs {
		b.Add(&evs[i])
	}
	recs, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(recs)) != truth.Sessions {
		t.Fatalf("sessionizer found %d sessions, truth says %d", len(recs), truth.Sessions)
	}
}

func TestPlantedCTRRecoverable(t *testing.T) {
	cfg := DefaultConfig(day)
	cfg.Users = 400
	evs, truth := New(cfg).Generate()
	// Count impressions and clicks per feature from the raw stream.
	for _, feature := range []string{FeatureWhoToFollow, FeatureSearch, FeatureTrends, FeatureDiscover} {
		var imps, clicks int64
		for i := range evs {
			n := evs[i].Name
			fe := featureEvents[feature]
			if n.Section == fe.section && n.Component == fe.component && n.Element == fe.element && n.Page == featurePage[feature] {
				switch n.Action {
				case "impression":
					imps++
				case "click":
					clicks++
				}
			}
		}
		if imps != truth.FeatureImpressions[feature] || clicks != truth.FeatureClicks[feature] {
			t.Fatalf("%s: stream counts %d/%d != truth %d/%d", feature, imps, clicks,
				truth.FeatureImpressions[feature], truth.FeatureClicks[feature])
		}
		if imps < 100 {
			t.Fatalf("%s: only %d impressions, workload too small to test CTR", feature, imps)
		}
		got := float64(clicks) / float64(imps)
		want := cfg.CTR[feature]
		if math.Abs(got-want) > 0.05 {
			t.Fatalf("%s: measured CTR %.3f, planted %.3f", feature, got, want)
		}
	}
}

func TestFunnelMonotoneAndCalibrated(t *testing.T) {
	cfg := DefaultConfig(day)
	cfg.LoggedOutSessions = 2000
	_, truth := New(cfg).Generate()
	for i := 1; i < len(truth.FunnelStage); i++ {
		if truth.FunnelStage[i] > truth.FunnelStage[i-1] {
			t.Fatalf("funnel not monotone: %v", truth.FunnelStage)
		}
		if truth.FunnelStage[i-1] == 0 {
			continue
		}
		got := float64(truth.FunnelStage[i]) / float64(truth.FunnelStage[i-1])
		want := cfg.FunnelContinue[i-1]
		if math.Abs(got-want) > 0.06 {
			t.Fatalf("stage %d continuation = %.3f, planted %.3f", i, got, want)
		}
	}
	if truth.FunnelStage[0] < 500 {
		t.Fatalf("funnel entries = %d, too few", truth.FunnelStage[0])
	}
}

func TestCollocationPlanted(t *testing.T) {
	cfg := DefaultConfig(day)
	_, truth := New(cfg).Generate()
	if truth.ExpandEvents < 100 {
		t.Fatalf("expand events = %d", truth.ExpandEvents)
	}
	rate := float64(truth.ExpandThenProfileClick) / float64(truth.ExpandEvents)
	if math.Abs(rate-cfg.CollocationProb) > 0.08 {
		t.Fatalf("collocation rate = %.3f, planted %.3f", rate, cfg.CollocationProb)
	}
}

func TestCountryIPsResolve(t *testing.T) {
	evs, truth := New(smallConfig()).Generate()
	byCountry := make(map[string]bool)
	for i := range evs {
		c := geo.CountryOf(evs[i].IP)
		if c == geo.Unknown {
			t.Fatalf("event %d IP %s unresolvable", i, evs[i].IP)
		}
		byCountry[c] = true
	}
	if len(byCountry) < 4 {
		t.Fatalf("only %d countries in traffic", len(byCountry))
	}
	var sum int64
	for _, n := range truth.SessionsPerCountry {
		sum += n
	}
	if sum != truth.Sessions {
		t.Fatalf("per-country sessions sum %d != %d", sum, truth.Sessions)
	}
}

// TestGenerateToMatchesGenerate: Generate is a thin wrapper — streaming
// the same config through GenerateTo yields the same events (modulo the
// wrapper's final global sort) and the same ground truth.
func TestGenerateToMatchesGenerate(t *testing.T) {
	var streamed []events.ClientEvent
	truthStream, err := New(smallConfig()).GenerateTo(func(e *events.ClientEvent) error {
		streamed = append(streamed, *e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	evs, truth := New(smallConfig()).Generate()
	if int64(len(streamed)) != truthStream.Events || len(streamed) != len(evs) {
		t.Fatalf("streamed %d events, Generate produced %d (truth %d)", len(streamed), len(evs), truthStream.Events)
	}
	sortByTimestamp := func(s []events.ClientEvent) {
		sort.SliceStable(s, func(i, j int) bool { return s[i].Timestamp < s[j].Timestamp })
	}
	sortByTimestamp(streamed)
	for i := range evs {
		if evs[i].Name != streamed[i].Name || evs[i].Timestamp != streamed[i].Timestamp ||
			evs[i].UserID != streamed[i].UserID || evs[i].SessionID != streamed[i].SessionID {
			t.Fatalf("event %d differs between Generate and GenerateTo", i)
		}
	}
	if truth.Events != truthStream.Events || truth.Sessions != truthStream.Sessions ||
		truth.UniqueUsers != truthStream.UniqueUsers || truth.LoggedOutSessions != truthStream.LoggedOutSessions {
		t.Fatalf("truth diverged: %+v vs %+v", truth, truthStream)
	}
	for i := range truth.FunnelStage {
		if truth.FunnelStage[i] != truthStream.FunnelStage[i] {
			t.Fatalf("funnel truth diverged at stage %d", i)
		}
	}
}

// TestGenerateToSessionsStreamInStartOrder: the streamed sessions arrive
// in start order with each session's events time-ordered, so the
// warehouse writer sees at most session-boundary hour regressions.
func TestGenerateToSessionsStreamInStartOrder(t *testing.T) {
	var lastOfSession = map[string]int64{}
	var lastStart int64
	_, err := New(smallConfig()).GenerateTo(func(e *events.ClientEvent) error {
		sess := fmt.Sprintf("%d/%s", e.UserID, e.SessionID)
		if prev, ok := lastOfSession[sess]; ok {
			if e.Timestamp < prev {
				t.Fatalf("session %s went backwards: %d after %d", sess, e.Timestamp, prev)
			}
		} else {
			// A session's first event: session starts must be non-decreasing.
			if e.Timestamp < lastStart {
				t.Fatalf("session %s started at %d after a session starting %d", sess, e.Timestamp, lastStart)
			}
			lastStart = e.Timestamp
		}
		lastOfSession[sess] = e.Timestamp
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGenerateToStreamsIntoWarehouse: the emit-callback path feeds the
// warehouse writer directly, and the sessionizer recovers the exact
// ground truth from what landed — the benchrunner E16/E17 path.
func TestGenerateToStreamsIntoWarehouse(t *testing.T) {
	fs := hdfs.New(0)
	w := warehouse.NewWriter(fs, events.Category)
	truth, err := New(smallConfig()).GenerateTo(func(e *events.ClientEvent) error {
		return w.Append(e)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Written() != truth.Events {
		t.Fatalf("wrote %d events, truth %d", w.Written(), truth.Events)
	}
	_, hist, stats, err := session.BuildDay(fs, day, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hist.Events != truth.Events || stats.Sessions != truth.Sessions {
		t.Fatalf("warehouse day = %d events / %d sessions, truth %d / %d",
			hist.Events, stats.Sessions, truth.Events, truth.Sessions)
	}
}

// TestGenerateToSinkErrorAborts: a failing sink stops generation and
// surfaces the error.
func TestGenerateToSinkErrorAborts(t *testing.T) {
	boom := errors.New("disk full")
	n := 0
	_, err := New(smallConfig()).GenerateTo(func(*events.ClientEvent) error {
		n++
		if n >= 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sink's error", err)
	}
	if n > 10 {
		t.Fatalf("sink called %d times after failing", n)
	}
}

func TestWriteWarehouse(t *testing.T) {
	evs, truth := New(smallConfig()).Generate()
	fs := hdfs.New(0)
	if err := WriteWarehouse(fs, evs); err != nil {
		t.Fatal(err)
	}
	_, hist, stats, err := session.BuildDay(fs, day, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hist.Events != truth.Events {
		t.Fatalf("warehouse events = %d, truth = %d", hist.Events, truth.Events)
	}
	if stats.Sessions != truth.Sessions {
		t.Fatalf("warehouse sessions = %d, truth = %d", stats.Sessions, truth.Sessions)
	}
}

func TestFunnelStagesConsistentAcrossClients(t *testing.T) {
	web := FunnelStages("web")
	iphone := FunnelStages("iphone")
	if len(web) != 5 || len(iphone) != 5 {
		t.Fatal("funnel must have 5 stages")
	}
	for i := range web {
		nw := events.MustParseName(web[i])
		ni := events.MustParseName(iphone[i])
		if nw.Client != "web" || ni.Client != "iphone" {
			t.Fatalf("stage %d clients wrong", i)
		}
		nw.Client, ni.Client = "", ""
		if nw != ni {
			t.Fatalf("stage %d differs across clients: %v vs %v", i, nw, ni)
		}
	}
}

func TestFeatureNamesParse(t *testing.T) {
	for _, f := range []string{FeatureWhoToFollow, FeatureSearch, FeatureTrends, FeatureDiscover} {
		for _, c := range []string{"web", "iphone"} {
			for _, name := range []string{FeatureImpressionName(c, f), FeatureClickName(c, f), FeatureFollowName(c, f)} {
				if _, err := events.ParseName(name); err != nil {
					t.Errorf("%s: %v", name, err)
				}
			}
		}
	}
}

// Package proto implements the Protocol Buffers wire format, the second of
// the two serialization frameworks §3 describes: "Protocol Buffers and
// Thrift are two language-neutral data interchange formats that provide
// compact encoding of structured data ... both protobufs and Thrift are
// extensible, allowing messages to gradually evolve over time while
// preserving backwards compatibility."
//
// The encoding is the standard one: each field is a varint key
// (field_number << 3 | wire_type) followed by a payload in one of four
// wire types — varint, 64-bit, length-delimited, 32-bit. Unknown fields
// are skippable, which is what makes messages forward-compatible.
//
// Twitter preferred Thrift for logging (it doubled as the RPC framework),
// so client events are Thrift; this package exists because parts of the
// legacy logging zoo and Elephant Bird's record readers handled protobuf
// too.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// WireType is the low three bits of a field key.
type WireType byte

// Wire types of proto2/proto3.
const (
	WireVarint  WireType = 0
	WireFixed64 WireType = 1
	WireBytes   WireType = 2
	WireFixed32 WireType = 5
)

// String names the wire type.
func (w WireType) String() string {
	switch w {
	case WireVarint:
		return "varint"
	case WireFixed64:
		return "fixed64"
	case WireBytes:
		return "bytes"
	case WireFixed32:
		return "fixed32"
	}
	return fmt.Sprintf("wire(%d)", byte(w))
}

// Errors reported by the decoder.
var (
	ErrTruncated = errors.New("proto: truncated message")
	ErrBadWire   = errors.New("proto: invalid wire type")
	ErrOverflow  = errors.New("proto: varint overflows")
)

// Encoder appends protobuf-encoded fields to a buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded message (aliases the internal buffer).
func (e *Encoder) Bytes() []byte { return e.buf }

// Len reports encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards buffered output.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

func (e *Encoder) key(field int, w WireType) {
	e.buf = binary.AppendUvarint(e.buf, uint64(field)<<3|uint64(w))
}

// Varint writes an unsigned varint field.
func (e *Encoder) Varint(field int, v uint64) {
	e.key(field, WireVarint)
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Int64 writes a signed int64 as a (non-zigzag) varint, as proto int64.
func (e *Encoder) Int64(field int, v int64) { e.Varint(field, uint64(v)) }

// SInt64 writes a zigzag-encoded signed varint, as proto sint64.
func (e *Encoder) SInt64(field int, v int64) {
	e.Varint(field, uint64(v<<1)^uint64(v>>63))
}

// Bool writes a bool as a varint 0/1.
func (e *Encoder) Bool(field int, v bool) {
	if v {
		e.Varint(field, 1)
	} else {
		e.Varint(field, 0)
	}
}

// Double writes an IEEE-754 double as fixed64.
func (e *Encoder) Double(field int, v float64) {
	e.key(field, WireFixed64)
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// Fixed32 writes a little-endian 32-bit value.
func (e *Encoder) Fixed32(field int, v uint32) {
	e.key(field, WireFixed32)
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// String writes a length-delimited UTF-8 string.
func (e *Encoder) String(field int, v string) {
	e.key(field, WireBytes)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// Bytes2 writes a length-delimited byte field. (Named to avoid clashing
// with the Bytes accessor.)
func (e *Encoder) Bytes2(field int, v []byte) {
	e.key(field, WireBytes)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// Embedded writes a length-delimited nested message.
func (e *Encoder) Embedded(field int, enc func(*Encoder)) {
	var nested Encoder
	enc(&nested)
	e.Bytes2(field, nested.buf)
}

// Decoder consumes a protobuf message field by field.
type Decoder struct {
	data []byte
	pos  int
}

// NewDecoder returns a decoder over data.
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Remaining reports undecoded bytes.
func (d *Decoder) Remaining() int { return len(d.data) - d.pos }

// Next returns the next field number and wire type, or ok=false at a clean
// end of message.
func (d *Decoder) Next() (field int, w WireType, ok bool, err error) {
	if d.pos >= len(d.data) {
		return 0, 0, false, nil
	}
	key, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, 0, false, ErrTruncated
	}
	d.pos += n
	w = WireType(key & 7)
	field = int(key >> 3)
	switch w {
	case WireVarint, WireFixed64, WireBytes, WireFixed32:
		return field, w, true, nil
	}
	return 0, 0, false, fmt.Errorf("%w: %d", ErrBadWire, key&7)
}

// Varint reads an unsigned varint payload.
func (d *Decoder) Varint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.pos += n
	return v, nil
}

// Int64 reads a proto int64 payload.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Varint()
	return int64(v), err
}

// SInt64 reads a zigzag sint64 payload.
func (d *Decoder) SInt64() (int64, error) {
	v, err := d.Varint()
	return int64(v>>1) ^ -int64(v&1), err
}

// Bool reads a varint bool payload.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Varint()
	return v != 0, err
}

// Double reads a fixed64 IEEE-754 payload.
func (d *Decoder) Double() (float64, error) {
	if d.pos+8 > len(d.data) {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(d.data[d.pos:])
	d.pos += 8
	return math.Float64frombits(v), nil
}

// Fixed32 reads a little-endian 32-bit payload.
func (d *Decoder) Fixed32() (uint32, error) {
	if d.pos+4 > len(d.data) {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint32(d.data[d.pos:])
	d.pos += 4
	return v, nil
}

// Bytes reads a length-delimited payload; the slice aliases the input.
func (d *Decoder) Bytes() ([]byte, error) {
	n, err := d.Varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.data)-d.pos) {
		return nil, fmt.Errorf("%w: declared %d bytes", ErrTruncated, n)
	}
	out := d.data[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return out, nil
}

// String reads a length-delimited payload as a string.
func (d *Decoder) String() (string, error) {
	b, err := d.Bytes()
	return string(b), err
}

// Skip discards a payload of the given wire type — the §3 extensibility
// property ("messages can be augmented with additional fields in a
// completely transparent way").
func (d *Decoder) Skip(w WireType) error {
	switch w {
	case WireVarint:
		_, err := d.Varint()
		return err
	case WireFixed64:
		if d.pos+8 > len(d.data) {
			return ErrTruncated
		}
		d.pos += 8
		return nil
	case WireFixed32:
		if d.pos+4 > len(d.data) {
			return ErrTruncated
		}
		d.pos += 4
		return nil
	case WireBytes:
		_, err := d.Bytes()
		return err
	}
	return fmt.Errorf("%w: %v", ErrBadWire, w)
}

package proto

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripAllTypes(t *testing.T) {
	e := NewEncoder()
	e.Varint(1, 300)
	e.Int64(2, -5)
	e.SInt64(3, -5)
	e.Bool(4, true)
	e.Double(5, 3.25)
	e.String(6, "client_events")
	e.Bytes2(7, []byte{0, 1, 2})
	e.Fixed32(8, 0xDEADBEEF)

	d := NewDecoder(e.Bytes())
	expect := func(wantField int, wantWire WireType) {
		t.Helper()
		f, w, ok, err := d.Next()
		if err != nil || !ok || f != wantField || w != wantWire {
			t.Fatalf("Next = %d %v %v %v, want %d %v", f, w, ok, err, wantField, wantWire)
		}
	}
	expect(1, WireVarint)
	if v, _ := d.Varint(); v != 300 {
		t.Fatalf("varint = %d", v)
	}
	expect(2, WireVarint)
	if v, _ := d.Int64(); v != -5 {
		t.Fatalf("int64 = %d", v)
	}
	expect(3, WireVarint)
	if v, _ := d.SInt64(); v != -5 {
		t.Fatalf("sint64 = %d", v)
	}
	expect(4, WireVarint)
	if v, _ := d.Bool(); !v {
		t.Fatal("bool = false")
	}
	expect(5, WireFixed64)
	if v, _ := d.Double(); v != 3.25 {
		t.Fatalf("double = %f", v)
	}
	expect(6, WireBytes)
	if v, _ := d.String(); v != "client_events" {
		t.Fatalf("string = %q", v)
	}
	expect(7, WireBytes)
	if v, _ := d.Bytes(); len(v) != 3 || v[2] != 2 {
		t.Fatalf("bytes = %v", v)
	}
	expect(8, WireFixed32)
	if v, _ := d.Fixed32(); v != 0xDEADBEEF {
		t.Fatalf("fixed32 = %x", v)
	}
	if _, _, ok, err := d.Next(); ok || err != nil {
		t.Fatalf("trailing field: %v %v", ok, err)
	}
}

// TestSInt64VsInt64Size: zigzag is the right choice for negatives — the
// "compact encoding" §3 credits both frameworks with.
func TestSInt64VsInt64Size(t *testing.T) {
	plain, zig := NewEncoder(), NewEncoder()
	plain.Int64(1, -1)
	zig.SInt64(1, -1)
	if plain.Len() <= zig.Len() {
		t.Fatalf("int64(-1) %d bytes <= sint64(-1) %d bytes", plain.Len(), zig.Len())
	}
}

func TestSkipUnknownFields(t *testing.T) {
	// A "v2" message with fields a v1 reader does not know.
	e := NewEncoder()
	e.String(1, "keep")
	e.Varint(99, 12345)                                 // unknown varint
	e.Double(98, 2.5)                                   // unknown fixed64
	e.Bytes2(97, []byte("unknown payload"))             // unknown bytes
	e.Fixed32(96, 7)                                    // unknown fixed32
	e.Embedded(95, func(n *Encoder) { n.Varint(1, 1) }) // unknown message
	e.Int64(2, 42)

	d := NewDecoder(e.Bytes())
	var got string
	var gotInt int64
	for {
		f, w, ok, err := d.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		switch f {
		case 1:
			got, err = d.String()
		case 2:
			gotInt, err = d.Int64()
		default:
			err = d.Skip(w)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if got != "keep" || gotInt != 42 {
		t.Fatalf("decoded %q %d", got, gotInt)
	}
}

func TestTruncation(t *testing.T) {
	e := NewEncoder()
	e.String(1, "hello world")
	data := e.Bytes()
	for cut := 1; cut < len(data)-1; cut++ {
		d := NewDecoder(data[:cut])
		_, _, ok, err := d.Next()
		if err != nil {
			continue
		}
		if !ok {
			continue
		}
		if _, err := d.String(); err == nil {
			t.Fatalf("decode of %d/%d prefix succeeded", cut, len(data))
		}
	}
}

func TestBadWireType(t *testing.T) {
	// Key with wire type 3 (deprecated group) is rejected.
	d := NewDecoder([]byte{1<<3 | 3})
	if _, _, _, err := d.Next(); !errors.Is(err, ErrBadWire) {
		t.Fatalf("err = %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(u uint64, s int64, str string, fl float64, b bool) bool {
		if math.IsNaN(fl) {
			return true
		}
		e := NewEncoder()
		e.Varint(1, u)
		e.SInt64(2, s)
		e.String(3, str)
		e.Double(4, fl)
		e.Bool(5, b)
		d := NewDecoder(e.Bytes())
		var err error
		read := func() {
			if _, _, ok, nerr := d.Next(); !ok || nerr != nil {
				err = ErrTruncated
			}
		}
		read()
		gu, _ := d.Varint()
		read()
		gs, _ := d.SInt64()
		read()
		gstr, _ := d.String()
		read()
		gfl, _ := d.Double()
		read()
		gb, _ := d.Bool()
		return err == nil && gu == u && gs == s && gstr == str && gfl == fl && gb == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEmbedded(t *testing.T) {
	e := NewEncoder()
	e.Embedded(1, func(n *Encoder) {
		n.String(1, "inner")
		n.Varint(2, 9)
	})
	d := NewDecoder(e.Bytes())
	_, w, ok, err := d.Next()
	if err != nil || !ok || w != WireBytes {
		t.Fatal("embedded header wrong")
	}
	inner, err := d.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	id := NewDecoder(inner)
	if _, _, ok, _ := id.Next(); !ok {
		t.Fatal("inner empty")
	}
	if s, _ := id.String(); s != "inner" {
		t.Fatalf("inner string = %q", s)
	}
}

package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// summaryMaxEntries bounds one summary line: beyond this many changed
// series the line ends with a "+N more" marker instead of growing
// unreadably wide.
const summaryMaxEntries = 16

// Summary renders one line of the registry's current state: every
// nonzero series, sorted, plus p99s for every non-empty ".ns" histogram,
// capped at summaryMaxEntries entries. This is the line the periodic
// logger emits and what a command prints as its parting shot.
func (r *Registry) Summary() string {
	return summarize(r.Snapshot(), Snap{})
}

// summarize renders the series of cur that changed relative to prev
// (prev zero-valued means "everything nonzero"). Durations (".ns"
// histograms) render their p99 with time.Duration formatting.
func summarize(cur, prev Snap) string {
	var parts []string
	keys := make([]string, 0, len(cur.Series))
	for k := range cur.Series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := cur.Series[k]
		if v == prev.Series[k] {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%d", k, v))
	}
	hkeys := make([]string, 0, len(cur.Histograms))
	for k := range cur.Histograms {
		hkeys = append(hkeys, k)
	}
	sort.Strings(hkeys)
	for _, k := range hkeys {
		h := cur.Histograms[k]
		if h.Count == 0 || h.Count == prev.Histograms[k].Count {
			continue
		}
		if strings.HasSuffix(k, ".ns") {
			parts = append(parts, fmt.Sprintf("%s.p99=%s", strings.TrimSuffix(k, ".ns"), time.Duration(h.P99)))
		} else {
			parts = append(parts, fmt.Sprintf("%s.p99=%d", k, h.P99))
		}
	}
	if len(parts) == 0 {
		return "telemetry: idle"
	}
	extra := ""
	if len(parts) > summaryMaxEntries {
		extra = fmt.Sprintf(" +%d more", len(parts)-summaryMaxEntries)
		parts = parts[:summaryMaxEntries]
	}
	return "telemetry: " + strings.Join(parts, " ") + extra
}

// SummaryLogger emits one summary line per tick covering the series that
// changed since the previous tick — quiet when the pipeline is quiet.
type SummaryLogger struct {
	r     *Registry
	w     io.Writer
	stop  chan struct{}
	done  chan struct{}
	mu    sync.Mutex // serializes emit against Stop's final flush
	prev  Snap
	ticks int
}

// StartSummaryLogger starts a goroutine logging a one-line summary to w
// every interval. Stop it with Stop, which emits a final line covering
// anything that changed since the last tick.
func (r *Registry) StartSummaryLogger(w io.Writer, every time.Duration) *SummaryLogger {
	l := &SummaryLogger{
		r:    r,
		w:    w,
		stop: make(chan struct{}),
		done: make(chan struct{}),
		prev: r.Snapshot(),
	}
	go func() {
		defer close(l.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				l.emit()
			case <-l.stop:
				return
			}
		}
	}()
	return l
}

func (l *SummaryLogger) emit() {
	l.mu.Lock()
	defer l.mu.Unlock()
	cur := l.r.Snapshot()
	line := summarize(cur, l.prev)
	l.prev = cur
	l.ticks++
	if line != "telemetry: idle" {
		fmt.Fprintln(l.w, line)
	}
}

// Stop halts the ticker, emits one final delta line, and waits for the
// logging goroutine to exit.
func (l *SummaryLogger) Stop() {
	close(l.stop)
	<-l.done
	l.emit()
}

package telemetry

import "time"

// Span times one pipeline stage. Starting a span resolves its histogram
// ("<name>.ns") once; End is two time calls and an atomic add, so spans
// are cheap enough to wrap every batch apply or merge pass. Span is a
// value type — no allocation, nothing to release beyond calling End.
//
// Stages nest by name: a child span appends ".<stage>" to its parent's
// name, so a recovery that loads a snapshot then replays the WAL records
// into realtime.recovery.ns, realtime.recovery.snapshot.ns, and
// realtime.recovery.wal.ns.
type Span struct {
	h     *Histogram
	r     *Registry
	name  string
	start time.Time
}

// StartSpan opens a span on this registry; its duration will be recorded
// into the "<name>.ns" histogram when End is called.
func (r *Registry) StartSpan(name string) Span {
	return Span{h: r.Histogram(name + ".ns"), r: r, name: name, start: time.Now()}
}

// StartSpan opens a span on the Default registry.
func StartSpan(name string) Span { return Default.StartSpan(name) }

// Child opens a sub-stage span named "<parent>.<stage>", started now.
func (s Span) Child(stage string) Span {
	return s.r.StartSpan(s.name + "." + stage)
}

// Name returns the span's stage name (without the ".ns" suffix).
func (s Span) Name() string { return s.name }

// End records the elapsed time and returns it.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	if d < 0 {
		d = 0
	}
	s.h.Observe(int64(d))
	return d
}

package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent hammers register/increment/snapshot from many
// goroutines; run under -race -shuffle=on this is the data-race gate for
// the whole registry.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		iters   = 2000
	)
	names := []string{"a.x.events", "b.y.bytes", "c.z.ns"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n := names[i%len(names)]
				r.Counter(n).Inc()
				r.Gauge(n + ".gauge").SetMax(int64(i))
				r.Histogram(n + ".hist").Observe(int64(i))
				if i%64 == 0 {
					r.GaugeFunc("fn."+n, func() int64 { return int64(w) })
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	var total int64
	for _, n := range names {
		total += s.Series[n]
	}
	if want := int64(workers * iters); total != want {
		t.Fatalf("counter total = %d, want %d", total, want)
	}
	var htotal int64
	for _, n := range names {
		htotal += s.Histograms[n+".hist"].Count
	}
	if want := int64(workers * iters); htotal != want {
		t.Fatalf("histogram total = %d, want %d", htotal, want)
	}
}

// TestCounterIdentity verifies get-or-create returns the same instrument
// for the same name.
func TestCounterIdentity(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c1.Add(5)
	if got := r.Counter("x").Value(); got != 5 {
		t.Fatalf("second lookup saw %d, want 5", got)
	}
	if r.Counter("x") != c1 {
		t.Fatal("same name returned distinct counters")
	}
}

// TestGaugeFuncLastWins verifies re-registration replaces the function —
// the contract a recovered subsystem relies on to re-publish.
func TestGaugeFuncLastWins(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("g", func() int64 { return 1 })
	r.GaugeFunc("g", func() int64 { return 2 })
	if got := r.Snapshot().Series["g"]; got != 2 {
		t.Fatalf("gauge func = %d, want 2 (last registration)", got)
	}
}

// TestHistogramBuckets is the bucket-boundary property test: every
// recorded value must land in the bucket whose bounds contain it, and
// bounds must tile the axis without gaps.
func TestHistogramBuckets(t *testing.T) {
	// Bounds tile: bucket i's hi is bucket i+1's lo.
	for i := 0; i < histBuckets-1; i++ {
		_, hi := bucketBounds(i)
		lo, _ := bucketBounds(i + 1)
		if hi != lo {
			t.Fatalf("gap between bucket %d (hi=%d) and %d (lo=%d)", i, hi, i+1, lo)
		}
	}
	// Deterministic sweep over boundaries and random values: the index's
	// bounds must contain the value.
	rng := rand.New(rand.NewSource(1))
	check := func(v int64) {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		lo, hi := bucketBounds(i)
		// The top bucket's hi saturates at MaxInt64, which makes its
		// range inclusive on the right.
		if v < lo || (v >= hi && hi != math.MaxInt64) {
			t.Fatalf("value %d mapped to bucket %d [%d,%d)", v, i, lo, hi)
		}
	}
	for e := 0; e < 63; e++ {
		p := int64(1) << e
		for _, v := range []int64{p - 1, p, p + 1} {
			if v >= 0 {
				check(v)
			}
		}
	}
	for n := 0; n < 10000; n++ {
		check(rng.Int63n(1 << uint(4+rng.Intn(59))))
	}
	check(math.MaxInt64)
}

// TestHistogramQuantile records a known distribution and checks the
// quantile estimate lands within one bucket width of the exact order
// statistic.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram()
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 5000)
	for i := range vals {
		// Log-uniform-ish latencies from 100ns to ~100ms.
		vals[i] = int64(100 * math.Pow(10, rng.Float64()*6))
		h.Observe(vals[i])
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.95, 0.99} {
		rank := int(math.Ceil(q*float64(len(vals)))) - 1
		exact := vals[rank]
		got := h.Quantile(q)
		lo, hi := bucketBounds(bucketIndex(exact))
		width := hi - lo
		if got < exact-width || got > exact+width {
			t.Fatalf("q%.2f: estimate %d not within one bucket width (%d) of exact %d", q, got, width, exact)
		}
	}
	if h.Summary().Min != vals[0] || h.Summary().Max != vals[len(vals)-1] {
		t.Fatalf("min/max = %d/%d, want %d/%d", h.Summary().Min, h.Summary().Max, vals[0], vals[len(vals)-1])
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := newHistogram()
	s := h.Summary()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.P99 != 0 {
		t.Fatalf("empty histogram summary = %+v", s)
	}
}

// TestSpanNesting verifies child spans compose dotted stage names and
// every level records into its own histogram.
func TestSpanNesting(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("job.run")
	scan := root.Child("scan")
	if scan.Name() != "job.run.scan" {
		t.Fatalf("child name = %q", scan.Name())
	}
	inner := scan.Child("split")
	time.Sleep(time.Millisecond)
	if d := inner.End(); d <= 0 {
		t.Fatalf("inner duration = %v", d)
	}
	scan.End()
	root.End()
	s := r.Snapshot()
	for _, name := range []string{"job.run.ns", "job.run.scan.ns", "job.run.scan.split.ns"} {
		h, ok := s.Histograms[name]
		if !ok || h.Count != 1 {
			t.Fatalf("histogram %s: ok=%v count=%d", name, ok, h.Count)
		}
	}
	// Nesting implies containment: the parent's time covers the child's.
	if s.Histograms["job.run.ns"].Max < s.Histograms["job.run.scan.split.ns"].Max {
		t.Fatal("parent span shorter than nested child")
	}
}

// TestHandler exercises both endpoint formats.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("realtime.ingest.events").Add(42)
	r.Histogram("realtime.apply.batch.ns").Observe(1000)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snap
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatalf("decode JSON: %v", err)
	}
	res.Body.Close()
	if snap.Series["realtime.ingest.events"] != 42 {
		t.Fatalf("series = %+v", snap.Series)
	}
	if snap.Histograms["realtime.apply.batch.ns"].Count != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}

	res, err = srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "realtime.ingest.events 42") {
		t.Fatalf("text output missing series:\n%s", body)
	}
}

// TestSummaryLogger checks the delta behavior: only changed series show
// up, and an idle tick logs nothing.
func TestSummaryLogger(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b.events").Add(3)
	var mu sync.Mutex
	var sb strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	l := r.StartSummaryLogger(w, 10*time.Millisecond)
	time.Sleep(35 * time.Millisecond)
	r.Counter("a.b.events").Add(4)
	l.Stop()
	mu.Lock()
	out := sb.String()
	mu.Unlock()
	if !strings.Contains(out, "a.b.events=7") {
		t.Fatalf("summary output missing delta line:\n%q", out)
	}
	// The line for the first tick reflects the counter at 3 (changed from
	// the start-time snapshot taken... at 3), so the only guaranteed line
	// is the final one; just ensure no "idle" lines leaked.
	if strings.Contains(out, "idle") {
		t.Fatalf("idle line emitted:\n%q", out)
	}
}

func TestSummaryLine(t *testing.T) {
	r := NewRegistry()
	r.Counter("x.y.events").Add(1)
	r.Gauge("x.y.depth").Set(0) // zero gauges stay off the line
	r.Histogram("x.y.ns").Observe(2000)
	line := r.Summary()
	if !strings.Contains(line, "x.y.events=1") || strings.Contains(line, "x.y.depth") {
		t.Fatalf("summary line = %q", line)
	}
	if !strings.Contains(line, "x.y.p99=") {
		t.Fatalf("summary line missing histogram p99: %q", line)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestRegistryReset: Reset must zero every instrument in place — handles
// fetched before the reset keep working, instruments stay registered, and
// gauge funcs survive — because subsystems cache handles at package init
// and the scenario harness resets between experiment cells.
func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.events")
	g := r.Gauge("x.depth")
	h := r.Histogram("x.ns")
	r.GaugeFunc("x.live", func() int64 { return 7 })
	c.Add(5)
	g.Set(3)
	h.Observe(100)

	r.Reset()

	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("reset left values: counter=%d gauge=%d hist=%d", c.Value(), g.Value(), h.Count())
	}
	s := h.Summary()
	if s.Min != 0 || s.Max != 0 || s.Sum != 0 {
		t.Fatalf("histogram summary not zeroed: %+v", s)
	}

	// The old handles must still be the registered instruments.
	c.Inc()
	h.Observe(50)
	snap := r.Snapshot()
	if snap.Series["x.events"] != 1 {
		t.Fatalf("pre-reset counter handle disconnected: %+v", snap.Series)
	}
	if snap.Series["x.live"] != 7 {
		t.Fatalf("gauge func lost by reset: %+v", snap.Series)
	}
	if got := snap.Histograms["x.ns"].Count; got != 1 {
		t.Fatalf("pre-reset histogram handle disconnected: count=%d", got)
	}
	if r.Histogram("x.ns") != h {
		t.Fatal("reset replaced the histogram instance")
	}
}

// TestHistogramBucketDump checks the raw-bucket view: occupied buckets
// only, ascending, counts summing to Count(), with bounds that actually
// contain the recorded values — and that the buckets survive the trip
// through SnapshotBuckets and the ?buckets=1 endpoint.
func TestHistogramBucketDump(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x.ns")
	vals := []int64{3, 3, 17, 1000, 1000, 1000, 1 << 40}
	for _, v := range vals {
		h.Observe(v)
	}

	b := h.Buckets()
	if len(b) == 0 {
		t.Fatal("no buckets from non-empty histogram")
	}
	var total int64
	for i, bc := range b {
		if bc.Count <= 0 {
			t.Fatalf("bucket %d has count %d — empty buckets must be elided", i, bc.Count)
		}
		if i > 0 && bc.Lo < b[i-1].Hi {
			t.Fatalf("buckets out of order: [%d,%d) after [%d,%d)", bc.Lo, bc.Hi, b[i-1].Lo, b[i-1].Hi)
		}
		total += bc.Count
	}
	if total != h.Count() {
		t.Fatalf("bucket counts sum to %d, histogram count is %d", total, h.Count())
	}
	covered := func(v int64) bool {
		for _, bc := range b {
			if v >= bc.Lo && v < bc.Hi {
				return true
			}
		}
		return false
	}
	for _, v := range vals {
		if !covered(v) {
			t.Fatalf("recorded value %d not covered by any dumped bucket", v)
		}
	}

	// Plain snapshots stay summary-sized; SnapshotBuckets carries the dump.
	if s := r.Snapshot(); s.HistogramBuckets != nil {
		t.Fatal("plain Snapshot leaked raw buckets")
	}
	s := r.SnapshotBuckets()
	if got := s.HistogramBuckets["x.ns"]; len(got) != len(b) {
		t.Fatalf("SnapshotBuckets has %d buckets, want %d", len(got), len(b))
	}

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "?format=json&buckets=1")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snap
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatalf("decode JSON: %v", err)
	}
	res.Body.Close()
	if len(snap.HistogramBuckets["x.ns"]) != len(b) {
		t.Fatalf("endpoint returned %d buckets, want %d", len(snap.HistogramBuckets["x.ns"]), len(b))
	}

	res, err = srv.Client().Get(srv.URL + "?buckets=1")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "x.ns.bucket ") {
		t.Fatalf("text output missing bucket lines:\n%s", body)
	}
	if strings.Count(string(body), "x.ns.bucket ") != len(b) {
		t.Fatalf("text output bucket line count mismatch:\n%s", body)
	}
}

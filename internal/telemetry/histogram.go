package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-linear, the layout HDR-style recorders use:
// values below 2^histSubBits are exact, and every power of two above
// that is split into histSub linear sub-buckets. Relative error is
// bounded by one sub-bucket, about 1/histSub (6.25%), across the whole
// int64 range — fine-grained enough for latency percentiles, small
// enough (histBuckets fixed slots) to allocate once and update with a
// single atomic add per observation.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits
	// Index layout: [0, 2*histSub) is linear; each further power of two
	// adds histSub buckets. The top index is reached at values just
	// below 2^63.
	histBuckets = (64 - histSubBits) * histSub
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	k := uint(bits.Len64(u) - 1)
	return int(k-histSubBits)*histSub + int(u>>(k-histSubBits))
}

// bucketBounds returns the half-open value range [lo, hi) of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i < 2*histSub {
		return int64(i), int64(i + 1)
	}
	e := uint(i/histSub - 1)
	m := int64(i%histSub + histSub)
	lo = m << e
	hi = (m + 1) << e
	if hi < lo { // top bucket: (m+1)<<e overflows past MaxInt64
		hi = math.MaxInt64
	}
	return lo, hi
}

// Histogram records a distribution of non-negative int64 values —
// durations in nanoseconds by convention (the ".ns" suffix), but any
// unit works. Recording is allocation-free: one atomic add into a fixed
// bucket plus atomic count/sum/min/max maintenance.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveSince records the elapsed time since t0 in nanoseconds — the
// usual way to time a code path:
//
//	defer h.ObserveSince(time.Now())
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(int64(time.Since(t0)))
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.count.Load() }

// reset zeroes the histogram in place (see Registry.Reset). Not
// synchronized against concurrent Observe calls.
func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Quantile estimates the q-th quantile (0 < q <= 1) as the midpoint of
// the bucket holding that rank, so the estimate is within one bucket
// width of the exact order statistic. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			lo, hi := bucketBounds(i)
			return lo + (hi-lo)/2
		}
	}
	// Concurrent observers can leave count ahead of the bucket sums for
	// an instant; fall back to the max seen.
	return h.max.Load()
}

// BucketCount is one occupied histogram bucket: the half-open value
// range [Lo, Hi) and how many observations landed in it.
type BucketCount struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// Buckets returns the occupied buckets in ascending value order. The
// summary percentiles are midpoint estimates; the raw buckets are for
// callers that want the distribution itself — cross-run latency-shape
// comparison, histogram plots, or recomputing quantiles at other ranks.
// Empty buckets are elided, so the slice is short for typical latency
// distributions even though the backing array spans all of int64.
func (h *Histogram) Buckets() []BucketCount {
	var out []BucketCount
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		out = append(out, BucketCount{Lo: lo, Hi: hi, Count: n})
	}
	return out
}

// HistogramSummary is the snapshot form of a histogram.
type HistogramSummary struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
}

// Summary captures count, sum, min/max, and the standard percentiles.
func (h *Histogram) Summary() HistogramSummary {
	s := HistogramSummary{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Min:   h.min.Load(),
		Max:   h.max.Load(),
	}
	if s.Count == 0 {
		s.Min = 0
		return s
	}
	s.P50 = h.Quantile(0.50)
	s.P95 = h.Quantile(0.95)
	s.P99 = h.Quantile(0.99)
	return s
}
